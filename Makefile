GO ?= go

# Pin the linter so local runs and CI agree on the finding set.
STATICCHECK_VERSION ?= 2024.1.1
STATICCHECK ?= staticcheck

.PHONY: build test race vet lint check bench chaos pipeline warm scrub slo restart federation diurnal

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# lint runs staticcheck at the pinned version. Install it once with:
#   go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)
lint:
	@command -v $(STATICCHECK) >/dev/null 2>&1 || { \
		echo "lint: staticcheck not found; install with:" >&2; \
		echo "  go install honnef.co/go/tools/cmd/staticcheck@$(STATICCHECK_VERSION)" >&2; \
		exit 1; }
	$(STATICCHECK) ./...

# check is the full pre-merge gate: build, vet, and the test suite
# under the race detector (instrumentation runs concurrently with the
# debug HTTP endpoints, so -race is part of the bar).
check: scripts/check.sh
	./scripts/check.sh

bench:
	$(GO) run ./cmd/vmbench -series smoke

# chaos is the failure-recovery smoke: a short deterministic run under
# the default fault mix that exits nonzero unless every request
# eventually succeeds, nothing is orphaned or leaked, and a same-seed
# rerun reproduces byte-identical results.
chaos:
	$(GO) run ./cmd/vmbench -exp chaos -series smoke

# pipeline is the batched-creation smoke: throughput at batch sizes
# 1/4/16 plus the serial-vs-batch determinism check; exits nonzero if
# batch-16 speedup over batch-1 drops below 3x or determinism breaks.
pipeline:
	$(GO) run ./cmd/vmbench -exp pipeline -series smoke

# warm is the warehouse learning-loop smoke: a Zipf request stream with
# checkpoint publish-back enabled must cut warm-half mean creation time
# >= 30% vs the cold half, stay within the derived-image byte budget
# (with retirements observed, seeds intact), and replay byte-identically
# on the same seed.
warm:
	$(GO) run ./cmd/vmbench -exp warm -series smoke

# scrub is the data-integrity smoke: a Zipf stream under injected
# corruption (corrupt-extent on clone and scrub reads, torn-write on
# publish) must complete every request from verified state, quarantine
# every detected corruption, repair or retire it, keep seeds intact,
# finish with a clean deep audit, and replay byte-identically on the
# same seed.
scrub:
	$(GO) run ./cmd/vmbench -exp scrub -series smoke

# slo is the observability smoke: a warm batch plus a chaos burst in
# which every creation must yield exactly one rooted span tree crossing
# shop, plant and clone layers, a complete flight-recorder timeline,
# and SLO objectives that hold, with same-seed reruns byte-identical.
slo:
	$(GO) run ./cmd/vmbench -exp slo -series smoke

# restart is the kill-9 crash-restart smoke: shop daemons are killed at
# the write-ahead protocol's worst instants (intent durable but
# undispatched; VM built but uncommitted), plants crash and the
# warehouse restarts with an image quarantined. Exits nonzero unless
# every creation is exactly-once (zero lost, zero duplicated), the
# quarantine survives, and a same-seed rerun is byte-identical.
restart:
	$(GO) run ./cmd/vmbench -exp restart -series smoke

# federation is the multi-shop smoke: 3 shops of 6 plants each must
# serve a skewed create-hold-destroy stream at >= 2.5x the goodput of 1
# shop of 6 plants, with hierarchical forwards exactly-once across a
# mid-run shop kill, catalog gossip cloning a derived image warm in
# another cell, and byte-identical same-seed reruns.
federation:
	$(GO) run ./cmd/vmbench -exp federation -series smoke

# diurnal is the elastic-fleet smoke: a compressed two-day day/night
# cycle with flash crowds and maintenance windows, one of them crossing
# a kill -9 mid-drain. Exits nonzero unless SLOs hold, the fleet scales
# up >= 2x and drains/retires >= 2 plants, every shed is retryable,
# nothing is orphaned or leaked, and same-seed reruns are byte-identical.
diurnal:
	$(GO) run ./cmd/vmbench -exp diurnal -series smoke
