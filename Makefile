GO ?= go

.PHONY: build test race vet check bench chaos

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full pre-merge gate: build, vet, and the test suite
# under the race detector (instrumentation runs concurrently with the
# debug HTTP endpoints, so -race is part of the bar).
check: scripts/check.sh
	./scripts/check.sh

bench:
	$(GO) run ./cmd/vmbench -series smoke

# chaos is the failure-recovery smoke: a short deterministic run under
# the default fault mix that exits nonzero unless every request
# eventually succeeds, nothing is orphaned or leaked, and a same-seed
# rerun reproduces byte-identical results.
chaos:
	$(GO) run ./cmd/vmbench -exp chaos -series smoke
