GO ?= go

.PHONY: build test race vet check bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

# check is the full pre-merge gate: build, vet, and the test suite
# under the race detector (instrumentation runs concurrently with the
# debug HTTP endpoints, so -race is part of the bar).
check: scripts/check.sh
	./scripts/check.sh

bench:
	$(GO) run ./cmd/vmbench -series smoke
