package vmplants

// The benchmark harness: one benchmark per table/figure of the paper's
// evaluation (see EXPERIMENTS.md for the index). Each benchmark runs
// the corresponding simulated experiment, reports its headline numbers
// as custom benchmark metrics, and prints the paper-style rows/series
// once per run.
//
//	go test -bench=. -benchmem
//
// Wall-clock cost is seconds per benchmark: the experiments run under a
// discrete-event kernel, so the "8-node cluster hours" complete in
// simulation time.

import (
	"fmt"
	"sync"
	"testing"

	"vmplants/internal/guestbench"
	"vmplants/internal/stats"
	"vmplants/internal/workload"
)

// printOnce guards the paper-style table dumps so repeated benchmark
// iterations do not spam the output.
var printOnce sync.Map

func printTable(key, table string) {
	if _, loaded := printOnce.LoadOrStore(key, true); !loaded {
		fmt.Printf("\n===== %s =====\n%s\n", key, table)
	}
}

// creationExperiment caches the (deterministic) Figure 4–6 run across
// the three benchmarks that view it.
var (
	expOnce sync.Once
	expData *workload.CreationExperiment
	expErr  error
)

func creationExperiment() (*workload.CreationExperiment, error) {
	expOnce.Do(func() {
		expData, expErr = workload.RunCreationExperiment(42, workload.PaperSeries())
	})
	return expData, expErr
}

// BenchmarkFigure4CreationLatency regenerates Figure 4: the normalized
// distribution of end-to-end VM creation latencies for 32/64/256 MB
// golden machines (128/128/40 sequential requests over 8 plants).
func BenchmarkFigure4CreationLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := creationExperiment()
		if err != nil {
			b.Fatal(err)
		}
		hists, order := exp.Figure4()
		printTable("Figure 4: overall VM creation latency distribution",
			stats.MultiHistogramTable("latency (s, bucket center)", hists, order))
		sums := exp.SummaryBySize()
		b.ReportMetric(sums[32].Mean, "mean-create-32MB-s")
		b.ReportMetric(sums[64].Mean, "mean-create-64MB-s")
		b.ReportMetric(sums[256].Mean, "mean-create-256MB-s")
		// Paper's observations: VMs instantiate on average in 25–48 s,
		// larger memory → larger creation time; envelope 17–85 s.
		if !(sums[32].Mean < sums[64].Mean && sums[64].Mean < sums[256].Mean) {
			b.Fatalf("means not ordered by memory size: %v / %v / %v",
				sums[32].Mean, sums[64].Mean, sums[256].Mean)
		}
		if sums[32].Min < 15 || sums[256].Max > 90 {
			b.Fatalf("latencies outside the paper envelope: min=%v max=%v",
				sums[32].Min, sums[256].Max)
		}
	}
}

// BenchmarkFigure5CloningLatency regenerates Figure 5: the distribution
// of PPP cloning latencies (clone request → resume complete).
func BenchmarkFigure5CloningLatency(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := creationExperiment()
		if err != nil {
			b.Fatal(err)
		}
		hists, order := exp.Figure5()
		printTable("Figure 5: VM cloning latency distribution",
			stats.MultiHistogramTable("cloning time (s, bucket center)", hists, order))
		for _, s := range exp.Series {
			sum := stats.Summarize(workload.CloneTimes(exp.Records[s.MemoryMB]))
			b.ReportMetric(sum.Mean, fmt.Sprintf("mean-clone-%dMB-s", s.MemoryMB))
		}
	}
}

// BenchmarkFigure6CloningVsSequence regenerates Figure 6: cloning time
// as a function of VM sequence number, showing the memory-pressure
// growth the paper reports for the 64 MB and 256 MB series.
func BenchmarkFigure6CloningVsSequence(b *testing.B) {
	for i := 0; i < b.N; i++ {
		exp, err := creationExperiment()
		if err != nil {
			b.Fatal(err)
		}
		series := exp.Figure6()
		var down []*stats.Series
		for _, s := range series {
			down = append(down, s.Downsample(8))
		}
		printTable("Figure 6: cloning time vs VM sequence number (every 8th request)",
			stats.MultiSeriesTable("sequence", down...))
		var slope64, slope256 float64
		for _, s := range series {
			slope := s.TrendSlope()
			b.ReportMetric(slope, "slope-"+s.Name[:len(s.Name)-3]+"MB-s/req")
			switch s.Name {
			case "64 MB":
				slope64 = slope
			case "256 MB":
				slope256 = slope
			}
		}
		// Paper: "cloning times tend to increase when the VMPlant hosts a
		// large number of VMs … most noticeable in the 64MB and 256MB
		// cases".
		if slope64 <= 0 || slope256 <= slope64 {
			b.Fatalf("pressure growth missing: slope64=%v slope256=%v", slope64, slope256)
		}
	}
}

// BenchmarkFullCopyVsLinkClone regenerates the §4.3 comparison: a full
// copy of the 2 GB golden disk (≈210 s) versus the average link-clone
// time of a 256 MB VM ("around 4 times slower").
func BenchmarkFullCopyVsLinkClone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.RunCopyBaseline(42)
		if err != nil {
			b.Fatal(err)
		}
		printTable("§4.3 link-clone vs full-copy", fmt.Sprintf(
			"golden disk: %d bytes in %d extent files\nfull copy over NFS: %.1f s\naverage 256MB link clone: %.1f s\nslowdown factor: %.1f× (paper: ≈4×)\n",
			res.GoldenDiskBytes, res.GoldenSpanFiles, res.FullCopySecs, res.AvgClone256Secs, res.SlowdownFactor))
		b.ReportMetric(res.FullCopySecs, "full-copy-s")
		b.ReportMetric(res.AvgClone256Secs, "avg-clone-256MB-s")
		b.ReportMetric(res.SlowdownFactor, "slowdown-x")
		if res.SlowdownFactor < 2.5 || res.SlowdownFactor > 6.5 {
			b.Fatalf("slowdown factor %.2f outside ≈4× band", res.SlowdownFactor)
		}
	}
}

// BenchmarkUMLBootClone regenerates the §4.3 UML production-line
// measurement: 32 MB UML VMs instantiated via a full reboot average
// ≈76 s per clone.
func BenchmarkUMLBootClone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.RunUML(42, 40)
		if err != nil {
			b.Fatal(err)
		}
		printTable("§4.3 UML production line (32MB, full boot)",
			fmt.Sprintf("clones: %s\n(paper: average cloning time 76 s)\n", res.CloneSummary))
		b.ReportMetric(res.CloneSummary.Mean, "mean-uml-clone-s")
		if res.CloneSummary.Mean < 65 || res.CloneSummary.Mean > 90 {
			b.Fatalf("UML mean clone %.1f s outside ≈76 s band", res.CloneSummary.Mean)
		}
	}
}

// BenchmarkCostFunctionCrossover regenerates the §3.4 walk-through: two
// plants, network cost 50, compute cost 4×VMs — the client's first 13
// VMs stay on one plant, the 14th crosses over.
func BenchmarkCostFunctionCrossover(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.RunCostCrossover(42, 16)
		if err != nil {
			b.Fatal(err)
		}
		table := "request  plant\n"
		for j, pl := range res.Assignments {
			table += fmt.Sprintf("%7d  %s\n", j+1, pl)
		}
		table += fmt.Sprintf("crossover at request %d (paper: 14)\n", res.Crossover)
		printTable("§3.4 cost-function crossover", table)
		b.ReportMetric(float64(res.Crossover), "crossover-request")
		if res.Crossover != 14 {
			b.Fatalf("crossover at %d, want 14", res.Crossover)
		}
	}
}

// BenchmarkRuntimeOverhead regenerates the §4.3 run-time overhead table
// (cited constants: SPEC INT2000 2 %/3 %/≈0 % under VMware/UML/Xen;
// SPECseis ≈6 % under VMware; LSS ≈13 %).
func BenchmarkRuntimeOverhead(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows := guestbench.Table()
		printTable("§4.3 run-time virtualization overheads", guestbench.FormatTable(rows))
		b.ReportMetric(guestbench.OverheadPercent(guestbench.VMware, guestbench.SPECINT), "vmware-specint-%")
		b.ReportMetric(guestbench.OverheadPercent(guestbench.UML, guestbench.SPECINT), "uml-specint-%")
		b.ReportMetric(guestbench.OverheadPercent(guestbench.VMware, guestbench.LSS), "vmware-lss-%")
	}
}

// BenchmarkAblationNoPartialMatch measures design ablation A1: partial
// matching disabled, every creation provisioned from a blank image.
func BenchmarkAblationNoPartialMatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.RunAblationNoPartialMatch(42, 4)
		if err != nil {
			b.Fatal(err)
		}
		printTable("Ablation A1: no partial matching", fmt.Sprintf(
			"baseline (DAG partial match): mean %.1f s\nvariant (blank install):      mean %.1f s\nfactor: %.1f×\n",
			res.BaselineSecs.Mean, res.VariantSecs.Mean, res.Factor))
		b.ReportMetric(res.Factor, "slowdown-x")
	}
}

// BenchmarkAblationCopyClone measures design ablation A3: link cloning
// replaced by full disk copies under the standard workload.
func BenchmarkAblationCopyClone(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.RunAblationCopyClone(42, 4)
		if err != nil {
			b.Fatal(err)
		}
		printTable("Ablation A3: copy-clone instead of link-clone", fmt.Sprintf(
			"baseline (link clone): mean %.1f s\nvariant (copy clone):  mean %.1f s\nfactor: %.1f×\n",
			res.BaselineSecs.Mean, res.VariantSecs.Mean, res.Factor))
		b.ReportMetric(res.Factor, "slowdown-x")
	}
}

// BenchmarkAblationTemplateVsDAG measures design ablation A2: exact
// template matching (VirtualCenter-style) versus DAG partial matching
// over a mixed generic/personalized workload.
func BenchmarkAblationTemplateVsDAG(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.RunTemplateVsDAG(42, 8)
		if err != nil {
			b.Fatal(err)
		}
		printTable("Ablation A2: template matching vs DAG matching", fmt.Sprintf(
			"requests: %d (alternating generic/personalized)\ntemplate: %d cache hits, mean %.1f s\nDAG:      %d cache hits, mean %.1f s\n",
			res.Requests, res.TemplateHits, res.TemplateSummary.Mean, res.DAGHits, res.DAGSummary.Mean))
		b.ReportMetric(float64(res.TemplateHits), "template-hits")
		b.ReportMetric(float64(res.DAGHits), "dag-hits")
		b.ReportMetric(res.TemplateSummary.Mean/res.DAGSummary.Mean, "template-slowdown-x")
	}
}

// BenchmarkExtensionPrecreation measures the §4.3/§6 latency-hiding
// extension: requests served by resuming speculatively pre-created
// clones versus cloning on demand.
func BenchmarkExtensionPrecreation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.RunPrecreation(42, 6)
		if err != nil {
			b.Fatal(err)
		}
		printTable("Extension E9: speculative pre-creation", fmt.Sprintf(
			"on-demand cloning:  mean %.1f s\npre-created pool:   mean %.1f s (%d/%d pool hits)\nspeedup: %.1f×\n",
			res.ColdSummary.Mean, res.WarmSummary.Mean, res.Hits, 6, res.Speedup))
		b.ReportMetric(res.Speedup, "speedup-x")
		if res.Speedup < 1.15 {
			b.Fatalf("speedup %.2f, want visible latency hiding", res.Speedup)
		}
	}
}

// BenchmarkExtensionMigration measures the §6 future-work extension:
// relocating an active VM between plants versus re-creating it.
func BenchmarkExtensionMigration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.RunMigration(42, 4)
		if err != nil {
			b.Fatal(err)
		}
		printTable("Extension E10: VM migration across plants", fmt.Sprintf(
			"migrate (suspend+stream+resume): mean %.1f s\nre-create from golden image:     mean %.1f s\nspeedup: %.1f×\n",
			res.MigrateSecs.Mean, res.RecreateSecs.Mean, res.Speedup))
		b.ReportMetric(res.MigrateSecs.Mean, "migrate-s")
		b.ReportMetric(res.Speedup, "speedup-x")
	}
}

// BenchmarkExtensionUMLCheckpoint measures the SBUML study the paper
// left open: UML clones resumed from checkpoints versus full boots.
func BenchmarkExtensionUMLCheckpoint(b *testing.B) {
	for i := 0; i < b.N; i++ {
		res, err := workload.RunPrecreationBackend(42, 4, "uml")
		if err != nil {
			b.Fatal(err)
		}
		printTable("Extension E11: SBUML-style UML checkpoint resume", fmt.Sprintf(
			"full boot per clone:        mean %.1f s\ncheckpoint resume per clone: mean %.1f s\nspeedup: %.1f×\n",
			res.ColdSummary.Mean, res.WarmSummary.Mean, res.Speedup))
		b.ReportMetric(res.Speedup, "speedup-x")
		if res.Speedup < 2 {
			b.Fatalf("UML checkpoint speedup %.2f, want ≫2×", res.Speedup)
		}
	}
}
