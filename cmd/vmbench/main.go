// Command vmbench regenerates every table and figure of the paper's
// evaluation from the simulated testbed and prints them in the paper's
// layout. See EXPERIMENTS.md for the experiment index.
//
// Usage:
//
//	vmbench                 # run everything at paper scale
//	vmbench -exp fig4       # one experiment
//	vmbench -series smoke   # scaled-down quick run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"vmplants/internal/guestbench"
	"vmplants/internal/stats"
	"vmplants/internal/telemetry"
	"vmplants/internal/workload"
)

func main() {
	var (
		exp       = flag.String("exp", "all", "experiment: all, fig4, fig5, fig6, copy, uml, cost, overhead, anatomy, trace, ablations, extensions, chaos, pipeline, warm, scrub, slo, restart, federation, diurnal")
		seed      = flag.Int64("seed", 42, "random seed")
		series    = flag.String("series", "paper", "request series scale: paper or smoke")
		traceOut  = flag.String("trace", "", "write the trace experiment's spans as JSONL — or the slo experiment's spans as Chrome trace-event JSON — to this file")
		artifacts = flag.String("artifacts", "", "directory to dump journal segments and Chrome traces into (CI uploads it when an experiment gate fails)")
	)
	flag.Parse()

	specs := workload.PaperSeries()
	if *series == "smoke" {
		specs = workload.SmokeSeries()
	}

	var creation *workload.CreationExperiment
	needCreation := func() *workload.CreationExperiment {
		if creation == nil {
			var err error
			creation, err = workload.RunCreationExperiment(*seed, specs)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
		}
		return creation
	}

	run := map[string]func(){
		"fig4": func() {
			e := needCreation()
			hists, order := e.Figure4()
			header("Figure 4: distribution of overall VM creation latencies")
			fmt.Println(stats.MultiHistogramTable("latency (s, bucket center)", hists, order))
			for _, s := range e.Series {
				recs := e.Records[s.MemoryMB]
				fmt.Printf("%3d MB: %d/%d created, %s\n", s.MemoryMB,
					workload.Succeeded(recs), len(recs), stats.Summarize(workload.CreateTimes(recs)))
			}
			fmt.Println("\npaper: VMs instantiated on average in 25–48 s; envelope 17–85 s;")
			fmt.Println("creation times larger for larger memory sizes; 121/124/40 VMs created.")
		},
		"fig5": func() {
			e := needCreation()
			hists, order := e.Figure5()
			header("Figure 5: distribution of VM cloning latencies")
			fmt.Println(stats.MultiHistogramTable("cloning time (s, bucket center)", hists, order))
			for _, s := range e.Series {
				fmt.Printf("%3d MB clone: %s\n", s.MemoryMB,
					stats.Summarize(workload.CloneTimes(e.Records[s.MemoryMB])))
			}
		},
		"fig6": func() {
			e := needCreation()
			header("Figure 6: cloning time vs VM sequence number")
			var down []*stats.Series
			for _, s := range e.Figure6() {
				down = append(down, s.Downsample(8))
			}
			fmt.Println(stats.MultiSeriesTable("sequence", down...))
			for _, s := range e.Figure6() {
				fmt.Printf("%s trend: %+.3f s/request\n", s.Name, s.TrendSlope())
			}
			fmt.Println("\npaper: cloning times increase as plants fill; most noticeable for 64 MB and 256 MB.")
		},
		"copy": func() {
			res, err := workload.RunCopyBaseline(*seed)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			header("§4.3: link-clone vs explicit full copy")
			fmt.Printf("golden disk: %d bytes across %d extent files\n", res.GoldenDiskBytes, res.GoldenSpanFiles)
			fmt.Printf("full copy over NFS:        %6.1f s   (paper: ≈210 s)\n", res.FullCopySecs)
			fmt.Printf("average 256 MB link clone: %6.1f s\n", res.AvgClone256Secs)
			fmt.Printf("slowdown factor:           %6.1f×   (paper: ≈4×)\n", res.SlowdownFactor)
		},
		"uml": func() {
			res, err := workload.RunUML(*seed, 40)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			header("§4.3: UML production line (32 MB, full boot per clone)")
			fmt.Printf("clones: %s\n", res.CloneSummary)
			fmt.Println("paper: average cloning time 76 s")
		},
		"cost": func() {
			res, err := workload.RunCostCrossover(*seed, 16)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			header("§3.4: cost-function crossover (2 plants, network cost 50, compute 4×VMs)")
			fmt.Println("request  plant")
			for i, pl := range res.Assignments {
				fmt.Printf("%7d  %s\n", i+1, pl)
			}
			fmt.Printf("\ncrossover at request %d (paper: the 14th request switches plants)\n", res.Crossover)
		},
		"overhead": func() {
			header("§4.3: run-time virtualization overheads (cited constants)")
			fmt.Println(guestbench.FormatTable(guestbench.Table()))
			fmt.Println("paper: SPEC INT2000 ≈2 % (VMware), 3 % (UML), ≈0 % (Xen);")
			fmt.Println("SPECseis ≈6 % under VMware; I/O-heavy LSS ≈13 %.")
		},
		"anatomy": func() {
			res, err := workload.RunAnatomy(*seed, 32)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			header("Anatomy of a 64 MB creation (stage means over 32 requests)")
			fmt.Printf("state copy over NFS:    %6.1f s\n", res.CopySecs.Mean)
			fmt.Printf("resume (read + VMM):    %6.1f s\n", res.ResumeSecs.Mean)
			fmt.Printf("residual configuration: %6.1f s\n", res.ConfigSecs.Mean)
			fmt.Printf("plant-side total:       %6.1f s\n", res.TotalSecs.Mean)
			fmt.Printf("client end-to-end:      %6.1f s (adds discovery/bidding/transport)\n", res.ClientSecs.Mean)
		},
		"extensions": func() {
			pre, err := workload.RunPrecreation(*seed, 6)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			mig, err := workload.RunMigration(*seed, 4)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			uml, err := workload.RunPrecreationBackend(*seed, 4, "uml")
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			park, err := workload.RunParking(*seed, 5)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			header("Extensions: the paper's §6 future work, implemented")
			fmt.Printf("E9 speculative pre-creation: %.1f s → %.1f s per create (%.1f× faster, %d/6 pool hits)\n",
				pre.ColdSummary.Mean, pre.WarmSummary.Mean, pre.Speedup, pre.Hits)
			fmt.Printf("E10 VM migration:            %.1f s to migrate vs %.1f s to re-create (%.1f× faster)\n",
				mig.MigrateSecs.Mean, mig.RecreateSecs.Mean, mig.Speedup)
			fmt.Printf("E11 SBUML-style UML resume:  %.1f s boot → %.1f s checkpoint resume (%.1f× faster)\n",
				uml.ColdSummary.Mean, uml.WarmSummary.Mean, uml.Speedup)
			fmt.Printf("E13 workspace parking:       suspend %.1f s, resume %.1f s (vs %.1f s re-create); %d MB → %d MB committed while parked\n",
				park.SuspendSecs.Mean, park.ResumeSecs.Mean, park.CreateSecs.Mean,
				park.CommittedBefore, park.CommittedParked)
		},
		"trace": func() {
			hub := telemetry.New()
			d, err := workload.NewDeployment(workload.Options{Seed: *seed, Telemetry: hub})
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			recs, err := d.RunCreationSeries(16, 64)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			header("Telemetry: per-stage creation-time breakdown from traces (virtual seconds)")
			spans := hub.Tracer.Spans()
			byStage := make(map[string][]float64)
			for _, s := range spans {
				byStage[s.Name] = append(byStage[s.Name], s.Virtual().Seconds())
			}
			// Creation pipeline stages first, in execution order, then
			// anything else a run happened to trace.
			stages := []string{"shop.create", "shop.bid", "plant.create", "plan",
				"clone", "clone.copy", "clone.resume", "clone.boot", "configure", "action"}
			var rest []string
			for name := range byStage {
				known := false
				for _, s := range stages {
					if s == name {
						known = true
						break
					}
				}
				if !known {
					rest = append(rest, name)
				}
			}
			sort.Strings(rest)
			fmt.Printf("%-16s %5s %8s %8s %8s %8s\n", "stage", "n", "mean", "p50", "p90", "max")
			for _, name := range append(stages, rest...) {
				samples, ok := byStage[name]
				if !ok {
					continue
				}
				sum := stats.Summarize(samples)
				fmt.Printf("%-16s %5d %8.2f %8.2f %8.2f %8.2f\n",
					name, sum.N, sum.Mean, sum.P50, sum.P90, sum.Max)
			}
			fmt.Printf("\n%d spans from %d/%d successful creations; %d metrics registered\n",
				len(spans), workload.Succeeded(recs), len(recs), len(hub.Metrics.Snapshot()))
			if *traceOut != "" {
				f, err := os.Create(*traceOut)
				if err != nil {
					log.Fatalf("vmbench: %v", err)
				}
				if err := hub.Tracer.WriteJSONL(f); err != nil {
					log.Fatalf("vmbench: trace export: %v", err)
				}
				if err := f.Close(); err != nil {
					log.Fatalf("vmbench: trace export: %v", err)
				}
				fmt.Printf("trace written to %s\n", *traceOut)
			}
		},
		"chaos": func() {
			n := 32
			if *series == "smoke" {
				n = 16
			}
			res, err := workload.RunChaos(*seed, workload.ChaosOptions{Requests: n})
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			header("Chaos: fault injection and failure recovery (§3.1 soft-state design)")
			for _, line := range res.Report() {
				fmt.Println(line)
			}
			again, err := workload.RunChaos(*seed, workload.ChaosOptions{Requests: n})
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			reproducible := again.Fingerprint == res.Fingerprint
			fmt.Printf("\nsame-seed rerun byte-identical: %v\n", reproducible)
			if res.Succeeded != res.Requests || res.OrphanVMs != 0 || res.LeakedNets != 0 || !reproducible {
				log.Fatalf("vmbench: chaos run failed its invariants (succeeded %d/%d, orphans %d, leaks %d, reproducible %v)",
					res.Succeeded, res.Requests, res.OrphanVMs, res.LeakedNets, reproducible)
			}
		},
		"pipeline": func() {
			opts := workload.PipelineOptions{}
			if *series == "smoke" {
				opts.Sizes = []int{1, 4, 16}
			}
			res, err := workload.RunPipeline(*seed, opts)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			header("Pipeline: batched creation throughput (8 plants, 64 MB workspaces)")
			fmt.Printf("%5s %4s %4s %12s %14s %10s %14s %12s\n",
				"batch", "ok", "fail", "makespan(s)", "thruput(vm/s)", "cache h/m", "adm-wait p99", "max-inflight")
			for _, bp := range res.Batches {
				fmt.Printf("%5d %4d %4d %12.1f %14.4f %6d/%-4d %13.1fs %12d\n",
					bp.Size, bp.OK, bp.Failed, bp.MakespanSecs, bp.Throughput,
					bp.CacheHits, bp.CacheMisses, bp.AdmissionWait.P99, bp.MaxInflight)
			}
			speedup := res.SpeedupOver(16, 1)
			fmt.Printf("\nbatch-16 vs batch-1 throughput: %.1f×\n", speedup)
			fmt.Printf("serial vs batch single-request creation log byte-identical: %v\n", res.DeterminismOK)

			vms := 8
			if *series == "smoke" {
				vms = 4
			}
			cmp, err := workload.RunCloneComparison(*seed, vms, 64)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			fmt.Println("\nLazy vs eager cloning (content-addressed extent store):")
			for _, line := range cmp.Report() {
				fmt.Println(line)
			}
			if *artifacts != "" {
				if err := dumpPipelineArtifacts(*artifacts, res, cmp); err != nil {
					log.Fatalf("vmbench: artifacts: %v", err)
				}
				fmt.Printf("artifacts written to %s\n", *artifacts)
			}
			if speedup < 3 || !res.DeterminismOK {
				log.Fatalf("vmbench: pipeline run failed its invariants (speedup %.2f× < 3, deterministic %v)",
					speedup, res.DeterminismOK)
			}
			if cmp.ResumeSpeedup < 2 || !cmp.HashesMatch || !cmp.AllHydrated || !cmp.DeterminismOK {
				log.Fatalf("vmbench: lazy-clone comparison failed its invariants (resume speedup %.2f× < 2, hashes %v, hydrated %v, deterministic %v)",
					cmp.ResumeSpeedup, cmp.HashesMatch, cmp.AllHydrated, cmp.DeterminismOK)
			}
		},
		"warm": func() {
			opts := workload.WarmOptions{}
			if *series == "smoke" {
				opts = workload.SmokeWarmOptions()
			}
			res, err := workload.RunWarm(*seed, opts)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			header("Warm: the warehouse learning loop (derived images, utility retirement)")
			for _, line := range res.Report() {
				fmt.Println(line)
			}
			again, err := workload.RunWarm(*seed, opts)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			reproducible := again.Fingerprint == res.Fingerprint
			fmt.Printf("\nsame-seed rerun byte-identical: %v\n", reproducible)
			overBudget := res.Capacity > 0 && res.BytesUsed > res.Capacity
			if res.Improvement < 0.30 || res.Retirements == 0 || overBudget ||
				!res.SeedsIntact || res.Failed != 0 || !reproducible {
				log.Fatalf("vmbench: warm run failed its invariants (improvement %.1f%% < 30%%, retirements %d, over-budget %v, seeds intact %v, failed %d, reproducible %v)",
					100*res.Improvement, res.Retirements, overBudget, res.SeedsIntact, res.Failed, reproducible)
			}
			if res.ExtentSavedBytes <= 0 {
				log.Fatalf("vmbench: warm run saved no extent bytes (logical %d, physical %d) — content-addressed dedup is not engaging",
					res.ExtentLogicalBytes, res.ExtentPhysicalBytes)
			}
		},
		"scrub": func() {
			opts := workload.ScrubOptions{}
			if *series == "smoke" {
				opts = workload.SmokeScrubOptions()
			}
			res, err := workload.RunScrub(*seed, opts)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			header("Scrub: end-to-end data integrity under corruption injection")
			for _, line := range res.Report() {
				fmt.Println(line)
			}
			if err := res.Check(); err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			again, err := workload.RunScrub(*seed, opts)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			reproducible := again.Fingerprint == res.Fingerprint
			fmt.Printf("\nsame-seed rerun byte-identical: %v\n", reproducible)
			if !reproducible {
				log.Fatalf("vmbench: scrub run is not deterministic across same-seed reruns")
			}
		},
		"slo": func() {
			opts := workload.SLOOptions{}
			if *series == "smoke" {
				opts = workload.SLOOptions{WarmBatch: 8, ChaosRequests: 8}
			}
			res, err := workload.RunSLO(*seed, opts)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			header("SLO: causal tracing, flight recorder and objectives under chaos")
			for _, line := range res.Report() {
				fmt.Println(line)
			}
			again, err := workload.RunSLO(*seed, opts)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			reproducible := again.Fingerprint == res.Fingerprint
			fmt.Printf("\nsame-seed rerun byte-identical: %v\n", reproducible)
			if res.Succeeded != res.Requests || !res.TreeOK() || !res.SLOsHold || !reproducible {
				log.Fatalf("vmbench: slo run failed its invariants (succeeded %d/%d, tree ok %v, slos hold %v, reproducible %v)",
					res.Succeeded, res.Requests, res.TreeOK(), res.SLOsHold, reproducible)
			}
			if *traceOut != "" {
				f, err := os.Create(*traceOut)
				if err != nil {
					log.Fatalf("vmbench: %v", err)
				}
				if err := telemetry.WriteChromeTrace(f, res.Spans); err != nil {
					log.Fatalf("vmbench: chrome trace export: %v", err)
				}
				if err := f.Close(); err != nil {
					log.Fatalf("vmbench: chrome trace export: %v", err)
				}
				fmt.Printf("chrome trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *traceOut)
			}
		},
		"restart": func() {
			opts := workload.RestartOptions{}
			if *series == "smoke" {
				opts.Requests = 12
			}
			res, err := workload.RunRestart(*seed, opts)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			header("Restart: kill-9 crash-restart gate for the journaled control plane")
			for _, line := range res.Report() {
				fmt.Println(line)
			}
			again, err := workload.RunRestart(*seed, opts)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			reproducible := again.Fingerprint == res.Fingerprint
			fmt.Printf("\nsame-seed rerun byte-identical: %v\n", reproducible)
			if res.Succeeded != res.Requests || res.Lost != 0 || res.Duplicated != 0 ||
				res.ShopKills == 0 || !res.QuarantineSurvived || !reproducible {
				log.Fatalf("vmbench: restart run failed its invariants (succeeded %d/%d, lost %d, dup %d, kills %d, quarantine %v, reproducible %v)",
					res.Succeeded, res.Requests, res.Lost, res.Duplicated, res.ShopKills, res.QuarantineSurvived, reproducible)
			}
		},
		"diurnal": func() {
			opts := workload.DiurnalOptions{}
			if *series == "smoke" {
				opts = workload.SmokeDiurnalOptions()
			}
			res, err := workload.RunDiurnal(*seed, opts)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			header("Diurnal: elastic fleet under a simulated week of day/night load")
			for _, line := range res.Report() {
				fmt.Println(line)
			}
			again, err := workload.RunDiurnal(*seed, opts)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			reproducible := again.Fingerprint == res.Fingerprint
			fmt.Printf("\nsame-seed rerun byte-identical: %v\n", reproducible)
			if *artifacts != "" {
				if err := dumpDiurnalArtifacts(*artifacts, res); err != nil {
					log.Fatalf("vmbench: artifacts: %v", err)
				}
				fmt.Printf("artifacts written to %s\n", *artifacts)
			}
			violations := res.GateViolations(true)
			if !reproducible {
				violations = append(violations, "same-seed rerun not byte-identical")
			}
			if len(violations) != 0 {
				log.Fatalf("vmbench: diurnal run failed its gate:\n  %s", strings.Join(violations, "\n  "))
			}
		},
		"federation": func() {
			opts := workload.FederationOptions{}
			if *series == "smoke" {
				opts = workload.SmokeFederationOptions()
			}
			res, err := workload.RunFederation(*seed, opts)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			header("Federation: multi-shop control plane with hierarchical bidding")
			for _, line := range res.Report() {
				fmt.Println(line)
			}
			again, err := workload.RunFederation(*seed, opts)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			reproducible := again.Fingerprint == res.Fingerprint
			fmt.Printf("\nsame-seed rerun byte-identical: %v\n", reproducible)
			if *artifacts != "" {
				if err := dumpFederationArtifacts(*artifacts, res); err != nil {
					log.Fatalf("vmbench: artifacts: %v", err)
				}
				fmt.Printf("artifacts written to %s\n", *artifacts)
			}
			// The federation must serve the entire offered stream; the
			// single shop is allowed to shed load (that is the point),
			// but must serve something or the ratio is meaningless.
			if res.FederatedSucceeded != res.ThroughputRequests || res.BaselineSucceeded == 0 ||
				res.Succeeded != res.Requests || res.Speedup < 2.5 || res.Forwarded == 0 ||
				res.Lost != 0 || res.Duplicated != 0 || res.ShopKills == 0 ||
				!res.GossipOK || !res.WarmCloneOK || !reproducible {
				log.Fatalf("vmbench: federation run failed its invariants (stream: base %d/%d, fed %d/%d; integrity %d/%d; speedup %.2fx < 2.5, forwarded %d, lost %d, dup %d, kills %d, gossip %v, warm clone %v, reproducible %v)",
					res.BaselineSucceeded, res.ThroughputRequests,
					res.FederatedSucceeded, res.ThroughputRequests,
					res.Succeeded, res.Requests, res.Speedup, res.Forwarded, res.Lost,
					res.Duplicated, res.ShopKills, res.GossipOK, res.WarmCloneOK, reproducible)
			}
		},
		"ablations": func() {
			a1, err := workload.RunAblationNoPartialMatch(*seed, 4)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			a2, err := workload.RunTemplateVsDAG(*seed, 8)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			a3, err := workload.RunAblationCopyClone(*seed, 4)
			if err != nil {
				log.Fatalf("vmbench: %v", err)
			}
			header("Ablations: what each mechanism buys")
			fmt.Printf("A1 no partial matching: %.1f s → %.1f s per create (%.0f× slower)\n",
				a1.BaselineSecs.Mean, a1.VariantSecs.Mean, a1.Factor)
			fmt.Printf("A2 template matching:   %d/%d cache hits vs %d/%d with DAGs; mean %.1f s vs %.1f s\n",
				a2.TemplateHits, a2.Requests, a2.DAGHits, a2.Requests,
				a2.TemplateSummary.Mean, a2.DAGSummary.Mean)
			fmt.Printf("A3 copy-clone:          %.1f s → %.1f s per create (%.0f× slower)\n",
				a3.BaselineSecs.Mean, a3.VariantSecs.Mean, a3.Factor)
		},
	}

	order := []string{"fig4", "fig5", "fig6", "copy", "uml", "cost", "overhead", "anatomy", "trace", "ablations", "extensions", "chaos", "pipeline", "warm", "scrub", "slo", "restart", "federation", "diurnal"}
	switch *exp {
	case "all":
		for _, name := range order {
			run[name]()
		}
	default:
		fn, ok := run[*exp]
		if !ok {
			log.Fatalf("vmbench: unknown experiment %q (want %s)", *exp, strings.Join(append(order, "all"), ", "))
		}
		fn()
	}
}

func header(title string) {
	fmt.Printf("\n===== %s =====\n\n", title)
}

// dumpFederationArtifacts writes the run's per-cell journal records and
// its full span set as a Chrome trace into dir, so a red CI matrix job
// can upload them and stay debuggable without a local repro.
func dumpFederationArtifacts(dir string, res *workload.FederationResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	cells := make([]string, 0, len(res.Journals))
	for cell := range res.Journals {
		cells = append(cells, cell)
	}
	sort.Strings(cells)
	for _, cell := range cells {
		f, err := os.Create(filepath.Join(dir, "journal-"+cell+".jsonl"))
		if err != nil {
			return err
		}
		enc := json.NewEncoder(f)
		for _, rec := range res.Journals[cell] {
			if err := enc.Encode(rec); err != nil {
				f.Close()
				return err
			}
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	f, err := os.Create(filepath.Join(dir, "trace.json"))
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(f, res.Spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dumpDiurnalArtifacts writes the shop's journal and the week's span
// set as a Chrome trace into dir, so a red CI matrix job can upload
// them and stay debuggable without a local repro.
func dumpDiurnalArtifacts(dir string, res *workload.DiurnalResult) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "journal-shop.jsonl"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	for _, rec := range res.Journal {
		if err := enc.Encode(rec); err != nil {
			f.Close()
			return err
		}
	}
	if err := f.Close(); err != nil {
		return err
	}
	f, err = os.Create(filepath.Join(dir, "trace.json"))
	if err != nil {
		return err
	}
	if err := telemetry.WriteChromeTrace(f, res.Spans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// dumpPipelineArtifacts writes the batch sweep and the lazy-vs-eager
// clone comparison (dedup ratio, hydration lag, per-VM hashes) as JSON
// into dir, so a red CI matrix job stays debuggable without a local
// repro.
func dumpPipelineArtifacts(dir string, res *workload.PipelineResult, cmp *workload.CloneComparison) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.Create(filepath.Join(dir, "pipeline-metrics.json"))
	if err != nil {
		return err
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	payload := struct {
		Batches    []workload.BatchPoint
		Comparison *workload.CloneComparison
	}{res.Batches, cmp}
	if err := enc.Encode(payload); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
