// Command vmctl is the VMShop client: it submits XML creation requests
// and queries or destroys VMs.
//
// Usage:
//
//	vmctl -shop localhost:7000 create -spec request.xml
//	vmctl -shop localhost:7000 create -example > request.xml
//	vmctl -shop localhost:7000 query vm-shop-1
//	vmctl -shop localhost:7000 destroy vm-shop-1
//	vmctl stats -debug localhost:7070
//	vmctl trace vm-shop-1 -debug localhost:7070,localhost:7071
//	vmctl queue -debug localhost:7070,localhost:7071
//	vmctl fleet -debug localhost:7070
package main

import (
	"encoding/json"
	"encoding/xml"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sort"
	"strings"
	"time"

	"vmplants/internal/proto"
	"vmplants/internal/service"
	"vmplants/internal/telemetry"
	"vmplants/internal/workload"
)

func main() {
	shopAddr := flag.String("shop", "localhost:7000", "VMShop address")
	timeout := flag.Duration("timeout", 60*time.Second, "request timeout")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
	}
	switch args[0] {
	case "create":
		doCreate(*shopAddr, *timeout, args[1:])
	case "query":
		requireID(args)
		doSimple(*shopAddr, *timeout, &proto.Message{Kind: proto.KindQueryRequest,
			Query: &proto.QueryRequest{VMID: args[1]}})
	case "destroy":
		requireID(args)
		doSimple(*shopAddr, *timeout, &proto.Message{Kind: proto.KindDestroyRequest,
			Destroy: &proto.DestroyRequest{VMID: args[1]}})
	case "suspend", "resume":
		requireID(args)
		doSimple(*shopAddr, *timeout, &proto.Message{Kind: proto.KindLifecycleRequest,
			Lifecycle: &proto.LifecycleRequest{VMID: args[1], Op: args[0]}})
	case "ping":
		doSimple(*shopAddr, *timeout, &proto.Message{Kind: proto.KindPingRequest,
			Ping: &proto.PingRequest{}})
	case "dot":
		doDot(args[1:])
	case "stats":
		doStats(args[1:])
	case "trace":
		requireID(args)
		doTrace(args[1], args[2:])
	case "queue":
		doQueue(args[1:])
	case "warehouse":
		doWarehouse(args[1:])
	case "scrub":
		doScrub(args[1:])
	case "journal":
		doJournal(args[1:])
	case "federation":
		doFederation(args[1:])
	case "fleet":
		doFleet(args[1:])
	case "publish":
		if len(args) < 3 {
			usage()
		}
		doSimple(*shopAddr, *timeout, &proto.Message{Kind: proto.KindPublishRequest,
			Publish: &proto.PublishRequest{VMID: args[1], Image: args[2]}})
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: vmctl [-shop addr] create [-spec file | -example] | query <vmid> | destroy <vmid> | suspend <vmid> | resume <vmid> | publish <vmid> <image> | ping | dot [-spec file] | stats [-debug addr] [-traces n] | trace <vmid> [-debug addr,addr...] | queue [-debug addr,addr...] | warehouse [-debug addr,addr...] | scrub [-debug addr,addr...] | journal [-debug addr,addr...] [-n k] [-verify] | federation [-debug addr,addr...] | fleet [-debug addr,addr...]")
	os.Exit(2)
}

func requireID(args []string) {
	if len(args) < 2 {
		usage()
	}
}

func doCreate(shopAddr string, timeout time.Duration, args []string) {
	fs := flag.NewFlagSet("create", flag.ExitOnError)
	specPath := fs.String("spec", "-", "XML creation request file ('-' = stdin)")
	example := fs.Bool("example", false, "print an example request and exit")
	fs.Parse(args)

	if *example {
		printExample()
		return
	}
	var src io.Reader = os.Stdin
	if *specPath != "-" {
		f, err := os.Open(*specPath)
		if err != nil {
			log.Fatalf("vmctl: %v", err)
		}
		defer f.Close()
		src = f
	}
	blob, err := io.ReadAll(src)
	if err != nil {
		log.Fatalf("vmctl: read spec: %v", err)
	}
	var req proto.CreateRequest
	if err := xml.Unmarshal(blob, &req); err != nil {
		log.Fatalf("vmctl: parse spec: %v", err)
	}
	if _, err := req.Spec(); err != nil {
		log.Fatalf("vmctl: invalid spec: %v", err)
	}
	doSimple(shopAddr, timeout, &proto.Message{Kind: proto.KindCreateRequest, Create: &req})
}

func doSimple(shopAddr string, timeout time.Duration, m *proto.Message) {
	c, err := proto.Dial(shopAddr, timeout)
	if err != nil {
		log.Fatalf("vmctl: %v", err)
	}
	defer c.Close()
	// Idempotent requests (query, ping) ride the standard retry policy;
	// mutating kinds are never retransmitted.
	c.Retry = service.DefaultRetry
	resp, err := c.Call(m)
	if err != nil {
		log.Fatalf("vmctl: %v", err)
	}
	switch resp.Kind {
	case proto.KindLifecycleResponse:
		fmt.Printf("%s is now %s\n", resp.Lifecycled.VMID, resp.Lifecycled.State)
	case proto.KindPublishResponse:
		fmt.Printf("published %s as image %q\n", resp.Published.VMID, resp.Published.Image)
	case proto.KindCreateResponse:
		fmt.Printf("created %s\n%s\n", resp.Created.VMID, resp.Created.Ad)
	case proto.KindQueryResponse:
		fmt.Printf("%s\n", resp.Queried.Ad)
	case proto.KindDestroyResponse:
		fmt.Printf("destroyed %s\n", resp.Destroyed.VMID)
	case proto.KindPingResponse:
		fmt.Printf("%s is alive\n", resp.Pong.Service)
	default:
		log.Fatalf("vmctl: unexpected response %q", resp.Kind)
	}
}

// doStats fetches a daemon's /metrics snapshot and pretty-prints it;
// with -traces N it also dumps the N most recent spans from
// /debug/traces.
func doStats(args []string) {
	fs := flag.NewFlagSet("stats", flag.ExitOnError)
	debugAddr := fs.String("debug", "localhost:7070", "daemon debug HTTP address (vmshopd :7070, vmplantd :7071)")
	traces := fs.Int("traces", 0, "also print the N most recent trace spans (0 = none)")
	fs.Parse(args)

	body, err := httpGet(fmt.Sprintf("http://%s/metrics", *debugAddr))
	if err != nil {
		log.Fatalf("vmctl: %v", err)
	}
	var snap map[string]any
	if err := json.Unmarshal(body, &snap); err != nil {
		log.Fatalf("vmctl: bad /metrics response: %v", err)
	}
	names := make([]string, 0, len(snap))
	for n := range snap {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		switch v := snap[n].(type) {
		case map[string]any:
			fmt.Printf("%-32s count=%v mean=%s p50=%s p90=%s p99=%s max=%s\n", n,
				v["count"], num(v["mean"]), num(v["p50"]), num(v["p90"]), num(v["p99"]), num(v["max"]))
		default:
			fmt.Printf("%-32s %v\n", n, v)
		}
	}
	// Span-ring accounting rides the /debug/traces meta line; limit=0
	// fetches the header without the span payload.
	if body, err := httpGet(fmt.Sprintf("http://%s/debug/traces?limit=0", *debugAddr)); err == nil {
		var meta telemetry.TraceMeta
		line, _, _ := strings.Cut(string(body), "\n")
		if json.Unmarshal([]byte(line), &meta) == nil && meta.Meta {
			fmt.Printf("%-32s %d\n", "tracer.dropped", meta.Dropped)
		}
	}
	if body, err := httpGet(fmt.Sprintf("http://%s/debug/health", *debugAddr)); err == nil {
		var hr telemetry.HealthReport
		if json.Unmarshal(body, &hr) == nil {
			fmt.Printf("\n# slo health at %.3fs virtual: healthy=%v\n", hr.VSecs, hr.Healthy)
			for _, o := range hr.Objectives {
				fmt.Printf("%-32s ok=%-5v value=%s bound=%s burn=%s samples=%d\n",
					o.Name, o.OK, num(o.Value), num(o.Bound), num(o.Burn), o.Samples)
			}
		}
	}
	if *traces > 0 {
		body, err := httpGet(fmt.Sprintf("http://%s/debug/traces?limit=%d", *debugAddr, *traces))
		if err != nil {
			log.Fatalf("vmctl: %v", err)
		}
		meta, rest, _ := strings.Cut(string(body), "\n")
		var tm telemetry.TraceMeta
		if json.Unmarshal([]byte(meta), &tm) == nil && tm.Meta {
			fmt.Printf("\n# %d most recent spans (%d evicted from ring, JSONL)\n%s", tm.Spans, tm.Dropped, rest)
		} else {
			fmt.Printf("\n# most recent %d spans (JSONL)\n%s", *traces, body)
		}
	}
}

// doTrace reconstructs one creation's end-to-end timeline by merging
// the /debug/creation/<id> payloads of every listed daemon: the
// flight-recorder events in virtual-time order, then the span tree
// rooted at shop.create with the plant-side subtree — joined across the
// process boundary by the propagated trace context — attached beneath.
func doTrace(vmid string, args []string) {
	fs := flag.NewFlagSet("trace", flag.ExitOnError)
	debugAddrs := fs.String("debug", "localhost:7070,localhost:7071", "comma-separated daemon debug HTTP addresses")
	fs.Parse(args)

	var (
		events  []telemetry.FlightRecord
		spans   []telemetry.SpanRecord
		dropped uint64
		seen    = map[uint64]bool{}
		daemons int
	)
	for _, addr := range strings.Split(*debugAddrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		body, err := httpGet(fmt.Sprintf("http://%s/debug/creation/%s", addr, vmid))
		if err != nil {
			log.Fatalf("vmctl: %v", err)
		}
		var rep telemetry.CreationReport
		if err := json.Unmarshal(body, &rep); err != nil {
			log.Fatalf("vmctl: bad /debug/creation response from %s: %v", addr, err)
		}
		daemons++
		events = append(events, rep.Events...)
		for _, s := range rep.Spans {
			if !seen[s.ID] {
				seen[s.ID] = true
				spans = append(spans, s)
			}
		}
		dropped += rep.Dropped
	}
	if len(events) == 0 && len(spans) == 0 {
		log.Fatalf("vmctl: no trace for %s on %d daemon(s)", vmid, daemons)
	}

	fmt.Printf("creation %s: %d flight events, %d spans from %d daemon(s)\n",
		vmid, len(events), len(spans), daemons)
	if dropped > 0 {
		fmt.Printf("warning: %d spans evicted from daemon rings; the tree may be incomplete\n", dropped)
	}
	sort.Slice(events, func(i, j int) bool {
		if events[i].VSecs != events[j].VSecs {
			return events[i].VSecs < events[j].VSecs
		}
		return events[i].Seq < events[j].Seq
	})
	for _, ev := range events {
		fmt.Printf("  %10.3fs  %-14s %s\n", ev.VSecs, ev.Kind, ev.Detail)
	}

	// Parents referencing spans no daemon returned (evicted, or the
	// daemon was not listed) degrade to roots instead of vanishing.
	children := map[uint64][]telemetry.SpanRecord{}
	for _, s := range spans {
		parent := s.Parent
		if !seen[parent] {
			parent = 0
		}
		children[parent] = append(children[parent], s)
	}
	for _, kids := range children {
		sort.Slice(kids, func(i, j int) bool {
			if kids[i].VStart != kids[j].VStart {
				return kids[i].VStart < kids[j].VStart
			}
			return kids[i].ID < kids[j].ID
		})
	}
	fmt.Println("span tree:")
	var walk func(id uint64, depth int)
	walk = func(id uint64, depth int) {
		for _, s := range children[id] {
			status := ""
			if s.Err != "" {
				status = "  ERR: " + s.Err
			}
			fmt.Printf("  %10.3fs  %s%s (%.3fs)%s\n",
				s.VStart, strings.Repeat("  ", depth), s.Name, s.VSecs, status)
			walk(s.ID, depth+1)
		}
	}
	walk(0, 0)
}

// doQueue summarizes the creation pipeline's admission state across one
// or more daemons: per-plant in-flight clones and admission queue depth,
// plus the shop-side batch backlog where those gauges exist.
func doQueue(args []string) {
	fs := flag.NewFlagSet("queue", flag.ExitOnError)
	debugAddrs := fs.String("debug", "localhost:7070", "comma-separated daemon debug HTTP addresses")
	fs.Parse(args)

	// Only the admission-control surface; everything else is `stats`.
	gauges := []string{
		"shop.batch_queue_depth",
		"shop.inflight_creates",
		"plant.clone_inflight",
		"plant.clone_inflight_max",
		"plant.admission_queue",
	}
	for _, addr := range strings.Split(*debugAddrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		body, err := httpGet(fmt.Sprintf("http://%s/metrics", addr))
		if err != nil {
			log.Fatalf("vmctl: %v", err)
		}
		var snap map[string]any
		if err := json.Unmarshal(body, &snap); err != nil {
			log.Fatalf("vmctl: bad /metrics response from %s: %v", addr, err)
		}
		fmt.Printf("%s:\n", addr)
		found := false
		for _, n := range gauges {
			if v, ok := snap[n]; ok {
				fmt.Printf("  %-26s %v\n", n, v)
				found = true
			}
		}
		if v, ok := snap["plant.admission_wait_secs"].(map[string]any); ok {
			fmt.Printf("  %-26s count=%v mean=%s p99=%s max=%s\n",
				"plant.admission_wait_secs", v["count"], num(v["mean"]), num(v["p99"]), num(v["max"]))
			found = true
		}
		if !found {
			fmt.Println("  no pipeline metrics (daemon runs neither a shop nor a plant?)")
		}
	}
}

// doWarehouse summarizes the image store across one or more daemons:
// published and derived image counts, byte accounting against the
// capacity budget, retirement churn, and the hot clone cache.
func doWarehouse(args []string) {
	fs := flag.NewFlagSet("warehouse", flag.ExitOnError)
	debugAddrs := fs.String("debug", "localhost:7070", "comma-separated daemon debug HTTP addresses")
	fs.Parse(args)

	instruments := []string{
		"warehouse.images",
		"warehouse.derived_images",
		"warehouse.bytes_used",
		"warehouse.publishes",
		"warehouse.retirements",
		"plant.publish_backs",
		"warehouse.cache_size",
		"warehouse.cache_hits",
		"warehouse.cache_misses",
		"warehouse.corruptions_detected",
		"warehouse.quarantined",
		"warehouse.quarantine_size",
	}
	for _, addr := range strings.Split(*debugAddrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		body, err := httpGet(fmt.Sprintf("http://%s/metrics", addr))
		if err != nil {
			log.Fatalf("vmctl: %v", err)
		}
		var snap map[string]any
		if err := json.Unmarshal(body, &snap); err != nil {
			log.Fatalf("vmctl: bad /metrics response from %s: %v", addr, err)
		}
		fmt.Printf("%s:\n", addr)
		found := false
		for _, n := range instruments {
			if v, ok := snap[n]; ok {
				fmt.Printf("  %-26s %v\n", n, v)
				found = true
			}
		}
		if !found {
			fmt.Println("  no warehouse metrics (daemon runs no plant?)")
		}
	}
}

// doScrub summarizes the warehouse's data-integrity state across one or
// more daemons: scrub cadence and verification counts, detected
// corruptions, quarantine and repair activity, plus the current
// quarantine list from /debug/warehouse where the daemon exposes it.
func doScrub(args []string) {
	fs := flag.NewFlagSet("scrub", flag.ExitOnError)
	debugAddrs := fs.String("debug", "localhost:7071", "comma-separated daemon debug HTTP addresses")
	fs.Parse(args)

	instruments := []string{
		"warehouse.scrub_passes",
		"warehouse.scrub_verified",
		"warehouse.corruptions_detected",
		"warehouse.quarantined",
		"warehouse.quarantine_size",
		"warehouse.repairs",
		"warehouse.repair_bytes",
		"warehouse.scrub_retirements",
		"plant.verified_clones",
		"fault.injections.corrupt-extent",
		"fault.injections.torn-write",
	}
	for _, addr := range strings.Split(*debugAddrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		body, err := httpGet(fmt.Sprintf("http://%s/metrics", addr))
		if err != nil {
			log.Fatalf("vmctl: %v", err)
		}
		var snap map[string]any
		if err := json.Unmarshal(body, &snap); err != nil {
			log.Fatalf("vmctl: bad /metrics response from %s: %v", addr, err)
		}
		fmt.Printf("%s:\n", addr)
		found := false
		for _, n := range instruments {
			if v, ok := snap[n]; ok {
				fmt.Printf("  %-32s %v\n", n, v)
				found = true
			}
		}
		if !found {
			fmt.Println("  no integrity metrics (daemon runs no warehouse?)")
		}
		// The quarantine list lives on its own endpoint; daemons without
		// a warehouse simply do not serve it.
		if body, err := httpGet(fmt.Sprintf("http://%s/debug/warehouse", addr)); err == nil {
			var state struct {
				Quarantine []struct {
					Image  string `json:"image"`
					Reason string `json:"reason"`
				} `json:"quarantine"`
			}
			if json.Unmarshal(body, &state) == nil {
				if len(state.Quarantine) == 0 {
					fmt.Println("  quarantine: empty")
				}
				for _, q := range state.Quarantine {
					fmt.Printf("  quarantine: %s (%s)\n", q.Image, q.Reason)
				}
			}
		}
	}
}

// doJournal tails and verifies each daemon's control-plane event log
// over its /debug/journal endpoint.
func doJournal(args []string) {
	fs := flag.NewFlagSet("journal", flag.ExitOnError)
	debugAddrs := fs.String("debug", "localhost:7070,localhost:7071", "comma-separated daemon debug HTTP addresses")
	tail := fs.Int("n", 20, "records to tail per daemon (0 = all)")
	verify := fs.Bool("verify", false, "only print checksum verification counts")
	fs.Parse(args)

	bad := 0
	for _, addr := range strings.Split(*debugAddrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		body, err := httpGet(fmt.Sprintf("http://%s/debug/journal?n=%d", addr, *tail))
		if err != nil {
			fmt.Printf("%s: no journal (%v)\n", addr, err)
			continue
		}
		var st struct {
			Dir      string `json:"dir"`
			Seq      uint64 `json:"seq"`
			Segments int    `json:"segments"`
			Bytes    int64  `json:"bytes"`
			Good     int    `json:"good_records"`
			Bad      int    `json:"bad_records"`
			Records  []struct {
				Seq    uint64            `json:"seq"`
				Kind   string            `json:"kind"`
				Key    string            `json:"key"`
				Fields map[string]string `json:"fields"`
			} `json:"records"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			log.Fatalf("vmctl: bad /debug/journal response from %s: %v", addr, err)
		}
		fmt.Printf("%s: %s seq=%d segments=%d bytes=%d verified %d good / %d bad\n",
			addr, st.Dir, st.Seq, st.Segments, st.Bytes, st.Good, st.Bad)
		bad += st.Bad
		if *verify {
			continue
		}
		for _, r := range st.Records {
			line := fmt.Sprintf("  %6d %-18s %s", r.Seq, r.Kind, r.Key)
			keys := make([]string, 0, len(r.Fields))
			for k := range r.Fields {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			for _, k := range keys {
				line += fmt.Sprintf(" %s=%q", k, r.Fields[k])
			}
			fmt.Println(line)
		}
	}
	if bad > 0 {
		log.Fatalf("vmctl: %d journal records failed checksum verification", bad)
	}
}

// doFederation summarizes each shop daemon's federation state from its
// /debug/federation endpoint: the cell's peers, cross-cell forwarding
// routes, and the forwarding counters from /metrics.
func doFederation(args []string) {
	fs := flag.NewFlagSet("federation", flag.ExitOnError)
	debugAddrs := fs.String("debug", "localhost:7070", "comma-separated shop daemon debug HTTP addresses")
	fs.Parse(args)

	counters := []string{
		"shop.peer_bid_rounds",
		"shop.forwarded_creates",
		"shop.forward_failures",
		"shop.served_forwards",
	}
	for _, addr := range strings.Split(*debugAddrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		body, err := httpGet(fmt.Sprintf("http://%s/debug/federation", addr))
		if err != nil {
			fmt.Printf("%s: no federation state (%v)\n", addr, err)
			continue
		}
		var st struct {
			Shop      string `json:"shop"`
			Peers     []string
			Forwarded []struct {
				LocalID  string `json:"local_id"`
				Peer     string `json:"peer"`
				RemoteID string `json:"remote_id"`
			} `json:"forwarded"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			log.Fatalf("vmctl: bad /debug/federation response from %s: %v", addr, err)
		}
		fmt.Printf("%s: cell %q, peers %s\n", addr, st.Shop, strings.Join(st.Peers, ","))
		for _, f := range st.Forwarded {
			fmt.Printf("  %s -> %s as %s\n", f.LocalID, f.Peer, f.RemoteID)
		}
		if body, err := httpGet(fmt.Sprintf("http://%s/metrics", addr)); err == nil {
			var snap map[string]any
			if json.Unmarshal(body, &snap) == nil {
				for _, n := range counters {
					if v, ok := snap[n]; ok {
						fmt.Printf("  %-26s %v\n", n, v)
					}
				}
			}
		}
	}
}

// doFleet summarizes each shop daemon's elastic-fleet state from its
// /debug/fleet endpoint: every plant's drain state, VM and in-flight
// counts, plus the admission gate and overload/retirement counters.
func doFleet(args []string) {
	fs := flag.NewFlagSet("fleet", flag.ExitOnError)
	debugAddrs := fs.String("debug", "localhost:7070", "comma-separated shop daemon debug HTTP addresses")
	fs.Parse(args)

	for _, addr := range strings.Split(*debugAddrs, ",") {
		addr = strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		body, err := httpGet(fmt.Sprintf("http://%s/debug/fleet", addr))
		if err != nil {
			fmt.Printf("%s: no fleet state (%v)\n", addr, err)
			continue
		}
		var st struct {
			Shop   string `json:"shop"`
			Plants []struct {
				Name      string `json:"name"`
				State     string `json:"state"`
				ActiveVMs int    `json:"active_vms"`
				Inflight  int    `json:"inflight"`
			} `json:"plants"`
			AdmissionQueue int   `json:"admission_queue"`
			InflightAtGate int   `json:"inflight_at_gate"`
			ShedCreates    int64 `json:"shed_creates"`
			StaleBids      int64 `json:"stale_bids"`
			Drains         int64 `json:"drains"`
			Retirements    int64 `json:"retirements"`
		}
		if err := json.Unmarshal(body, &st); err != nil {
			log.Fatalf("vmctl: bad /debug/fleet response from %s: %v", addr, err)
		}
		fmt.Printf("%s: shop %q, gate queue=%d inflight=%d, shed=%d stale_bids=%d drains=%d retired=%d\n",
			addr, st.Shop, st.AdmissionQueue, st.InflightAtGate,
			st.ShedCreates, st.StaleBids, st.Drains, st.Retirements)
		for _, pl := range st.Plants {
			vms := fmt.Sprintf("%d", pl.ActiveVMs)
			if pl.ActiveVMs < 0 {
				vms = "?"
			}
			fmt.Printf("  %-12s %-9s vms=%-4s inflight=%d\n", pl.Name, pl.State, vms, pl.Inflight)
		}
	}
}

func num(v any) string {
	f, ok := v.(float64)
	if !ok {
		return fmt.Sprintf("%v", v)
	}
	return fmt.Sprintf("%.4g", f)
}

func httpGet(url string) ([]byte, error) {
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: %s", url, resp.Status)
	}
	return io.ReadAll(resp.Body)
}

// doDot renders a request's configuration DAG in Graphviz dot syntax.
func doDot(args []string) {
	fs := flag.NewFlagSet("dot", flag.ExitOnError)
	specPath := fs.String("spec", "-", "XML creation request file ('-' = stdin)")
	fs.Parse(args)
	var src io.Reader = os.Stdin
	if *specPath != "-" {
		f, err := os.Open(*specPath)
		if err != nil {
			log.Fatalf("vmctl: %v", err)
		}
		defer f.Close()
		src = f
	}
	blob, err := io.ReadAll(src)
	if err != nil {
		log.Fatalf("vmctl: %v", err)
	}
	var req proto.CreateRequest
	if err := xml.Unmarshal(blob, &req); err != nil {
		log.Fatalf("vmctl: parse spec: %v", err)
	}
	if req.Graph == nil {
		log.Fatal("vmctl: spec has no DAG")
	}
	fmt.Print(req.Graph.DOT())
}

// printExample emits a complete In-VIGO-style workspace request.
func printExample() {
	g, err := workload.InVigoDAG("alice", "00:50:56:00:00:2a", "10.1.0.42")
	if err != nil {
		log.Fatalf("vmctl: %v", err)
	}
	req := proto.CreateRequest{
		Name:     "workspace-alice",
		Arch:     "x86",
		MemoryMB: 64,
		DiskMB:   2048,
		Domain:   "ufl.edu",
		Graph:    g,
	}
	enc := xml.NewEncoder(os.Stdout)
	enc.Indent("", "  ")
	if err := enc.Encode(req); err != nil {
		log.Fatalf("vmctl: %v", err)
	}
	fmt.Println()
}
