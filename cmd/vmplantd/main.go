// Command vmplantd runs one VMPlant daemon: it serves the plant-side
// protocol (estimate, create, query, collect) on a TCP port, optionally
// exposes a VNET server for client-domain overlay bridging, and hosts
// the simulated node substrate beneath. Golden In-VIGO workspace images
// of the requested memory sizes are published at startup.
//
// Usage:
//
//	vmplantd -listen :7001 -name plantA -golden 32,64,256
//	vmplantd -listen :7001 -vnet :7101 -creds ufl.edu=secret
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strconv"
	"strings"
	"time"

	"vmplants/internal/cluster"
	"vmplants/internal/core"
	"vmplants/internal/cost"
	"vmplants/internal/journal"
	"vmplants/internal/plant"
	"vmplants/internal/proto"
	"vmplants/internal/service"
	"vmplants/internal/sim"
	"vmplants/internal/simnet"
	"vmplants/internal/storage"
	"vmplants/internal/telemetry"
	"vmplants/internal/vnet"
	"vmplants/internal/warehouse"
	"vmplants/internal/workload"
)

func main() {
	var (
		listen   = flag.String("listen", ":7001", "plant service listen address")
		name     = flag.String("name", "plant0", "plant name")
		cell     = flag.String("cell", "", "federation cell this plant serves (prefixes the plant name, e.g. cellA/plant0)")
		seed     = flag.Int64("seed", 1, "substrate random seed")
		maxVMs   = flag.Int("maxvms", 32, "maximum hosted VMs (0 = unlimited)")
		networks = flag.Int("networks", 4, "host-only network pool size")
		costName = flag.String("cost", "free-memory", "cost model: free-memory or network+compute")
		golden   = flag.String("golden", "32,64,256", "comma-separated golden image memory sizes (MB)")
		diskMB   = flag.Int("disk", 2048, "golden image disk size (MB)")
		vnetAddr = flag.String("vnet", "", "VNET server listen address (empty = disabled)")
		creds    = flag.String("creds", "", "VNET credentials, comma-separated domain=token pairs")
		debug    = flag.String("debug", ":7071", "debug HTTP listen address for /metrics and /debug/traces (empty = disabled)")
		pubBack  = flag.Bool("publish-back", false, "checkpoint long-residual creations back to the warehouse as derived golden images")
		pubMin   = flag.Int("publish-threshold", 0, "minimum residual ops before a creation is checkpointed (0 = default)")
		budgetMB = flag.Int64("warehouse-budget", 0, "warehouse byte budget in MB beyond the seed images (0 = unlimited)")
		scrubInt = flag.Duration("scrub", 0, "wall-clock interval between warehouse integrity scrub passes (0 = disabled)")
		replica  = flag.Bool("replica", false, "mirror seed extents to a replica device so the scrubber can repair them")
		durable  = flag.Bool("journal", true, "journal VM lifecycle and warehouse catalog/quarantine events for crash-restart recovery")
	)
	flag.Parse()

	model, err := cost.ByName(*costName)
	if err != nil {
		log.Fatalf("vmplantd: %v", err)
	}
	if *cell != "" {
		// Cell-qualified names keep plants distinct when several cells
		// run the same node naming scheme (node00, node01, …).
		*name = *cell + "/" + *name
	}
	hub := telemetry.New()
	// Distinct per-instance ID bases keep cross-process span merges
	// (shop + several plants) free of ID collisions.
	hub.T().SetIDBase(telemetry.IDBaseForInstance(*name))
	k := sim.NewKernel()
	k.SetTelemetry(hub)
	tb := cluster.NewTestbed(k, 1, cluster.DefaultParams(), *seed)
	wh := warehouse.New(tb.Warehouse)
	wh.SetTelemetry(hub)
	for _, field := range strings.Split(*golden, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		mem, err := strconv.Atoi(field)
		if err != nil {
			log.Fatalf("vmplantd: bad golden size %q", field)
		}
		hw := core.HardwareSpec{Arch: "x86", MemoryMB: mem, DiskMB: *diskMB}
		im, err := warehouse.BuildGolden(workload.GoldenName(mem, warehouse.BackendVMware),
			hw, warehouse.BackendVMware, workload.InVigoGoldenHistory())
		if err != nil {
			log.Fatalf("vmplantd: golden %d MB: %v", mem, err)
		}
		if err := wh.Publish(im); err != nil {
			log.Fatalf("vmplantd: publish: %v", err)
		}
		log.Printf("published golden image %s", im.Name)
	}

	if *budgetMB > 0 {
		wh.SetCapacity(wh.BytesUsed() + *budgetMB<<20)
	}
	pl := plant.New(*name, tb.Nodes[0], wh, plant.Config{
		MaxVMs:               *maxVMs,
		HostOnlyNetworks:     *networks,
		CostModel:            model,
		Telemetry:            hub,
		PublishBack:          *pubBack,
		PublishBackThreshold: *pubMin,
	})
	runner := service.NewRunner(k)
	hub.VClock = runner
	hub.SLO = telemetry.NewSLOEngine(hub.M(), workload.DefaultSLOObjectives()...)

	var jnl *journal.Journal
	if *durable {
		// One event log per node, shared by the plant daemon and its
		// warehouse view: VM lifecycle, catalog and quarantine records
		// interleave in one stream on the node's local disk. Attaching
		// after publish imports the already-published catalog.
		jnl = journal.Open(tb.Nodes[0].LocalDisk(), "journal/"+*name)
		jnl.SetTelemetry(hub)
		pl.SetJournal(jnl)
		wh.SetJournal(jnl)
		log.Printf("journaling plant and warehouse events to %s", jnl.Dir())
	}

	if *replica {
		wh.SetReplica(storage.NewVolume("replica",
			storage.NewDevice("replica-disk", 40<<20, 2*time.Millisecond)))
	}
	if *scrubInt > 0 {
		// The daemon kernel runs to quiescence per request, so the
		// scrubber cannot live there as a forever process; a wall-clock
		// ticker drives one bounded pass at a time through the runner.
		go func() {
			for range time.Tick(*scrubInt) {
				if err := runner.Do("warehouse/scrub", func(p *sim.Proc) {
					wh.ScrubPass(p)
				}); err != nil {
					log.Printf("vmplantd: scrub pass: %v", err)
				}
			}
		}()
		log.Printf("warehouse scrubber every %v (replica=%v)", *scrubInt, *replica)
	}

	if *debug != "" {
		mux := hub.DebugMux()
		mux.Handle("/debug/warehouse", wh.DebugHandler())
		if jnl != nil {
			mux.Handle("/debug/journal", jnl.DebugHandler())
		}
		addr, err := telemetry.Serve(*debug, mux)
		if err != nil {
			log.Fatalf("vmplantd: %v", err)
		}
		log.Printf("debug endpoints on http://%s/metrics, /debug/traces, /debug/creation/<id>, /debug/health, /debug/warehouse and /debug/journal", addr)
	}

	if *vnetAddr != "" {
		credTable := vnet.Credentials{}
		for _, pair := range strings.Split(*creds, ",") {
			if pair == "" {
				continue
			}
			domain, token, ok := strings.Cut(pair, "=")
			if !ok {
				log.Fatalf("vmplantd: bad credential %q (want domain=token)", pair)
			}
			credTable[domain] = token
		}
		srv := vnet.NewServer(credTable, func(domain string) (*simnet.Switch, bool) {
			// Resolve the domain's host-only network on this plant.
			pool := pl.Networks()
			if !pool.HasDomain(domain) {
				return nil, false
			}
			net, _, err := pool.Acquire(domain) // returns the held network
			if err != nil {
				return nil, false
			}
			pool.Release(domain) // Acquire bumped the VM count; undo
			return net.Switch, true
		})
		vl, err := net.Listen("tcp", *vnetAddr)
		if err != nil {
			log.Fatalf("vmplantd: vnet listen: %v", err)
		}
		log.Printf("VNET server on %s (%d domains)", vl.Addr(), len(credTable))
		go srv.Serve(vl)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("vmplantd: listen: %v", err)
	}
	fmt.Printf("vmplantd %s serving on %s (cost model %s, %d networks, max %d VMs)\n",
		*name, l.Addr(), model.Name(), *networks, *maxVMs)
	proto.Serve(l, service.NewPlantHandler(runner, pl))
}
