// Command vmshopd runs the VMShop daemon: the client-facing front end
// that collects bids from the configured VMPlant daemons and routes
// create/query/destroy requests.
//
// Usage:
//
//	vmshopd -listen :7000 -plants plantA=host1:7001,plantB=host2:7001
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"strings"
	"time"

	"vmplants/internal/journal"
	"vmplants/internal/proto"
	"vmplants/internal/service"
	"vmplants/internal/shop"
	"vmplants/internal/sim"
	"vmplants/internal/storage"
	"vmplants/internal/telemetry"
	"vmplants/internal/workload"
)

func main() {
	var (
		listen  = flag.String("listen", ":7000", "shop service listen address")
		plants  = flag.String("plants", "", "comma-separated name=addr plant endpoints")
		cell    = flag.String("cell", "shop", "federation cell name (the shop's identity)")
		peers   = flag.String("peers", "", "comma-separated name=addr peer shop endpoints for hierarchical bidding")
		seed    = flag.Int64("seed", 1, "tie-break random seed")
		timeout = flag.Duration("timeout", 30*time.Second, "per-plant call timeout")
		cache   = flag.Bool("cache", true, "cache classads to serve queries when plants are down")
		debug   = flag.String("debug", ":7070", "debug HTTP listen address for /metrics and /debug/traces (empty = disabled)")
		durable = flag.Bool("journal", true, "journal creation intents/commits and route changes for crash-restart recovery")
	)
	flag.Parse()

	hub := telemetry.New()
	// Span IDs minted here must never collide with the plant daemons'
	// when vmctl merges /debug/creation payloads across processes.
	hub.T().SetIDBase(telemetry.IDBaseForInstance(*cell))
	var handles []shop.PlantHandle
	for _, pair := range strings.Split(*plants, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, addr, ok := strings.Cut(pair, "=")
		if !ok {
			log.Fatalf("vmshopd: bad plant %q (want name=addr)", pair)
		}
		handles = append(handles, &service.RemotePlant{PlantName: name, Addr: addr, Timeout: *timeout, Telemetry: hub})
	}
	if len(handles) == 0 {
		log.Fatal("vmshopd: no plants configured (-plants name=addr,...)")
	}

	s := shop.New(*cell, handles, *seed)
	s.CacheAds = *cache
	s.SetTelemetry(hub)
	var peerHandles []shop.PeerHandle
	for _, pair := range strings.Split(*peers, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, addr, ok := strings.Cut(pair, "=")
		if !ok {
			log.Fatalf("vmshopd: bad peer %q (want name=addr)", pair)
		}
		if name == *cell {
			log.Fatalf("vmshopd: peer %q is this cell", name)
		}
		peerHandles = append(peerHandles, &service.RemotePeer{PeerName: name, Addr: addr, Timeout: *timeout, Telemetry: hub})
	}
	s.SetPeers(peerHandles)
	k := sim.NewKernel()
	k.SetTelemetry(hub)
	runner := service.NewRunner(k)
	hub.VClock = runner
	hub.SLO = telemetry.NewSLOEngine(hub.M(), workload.DefaultSLOObjectives()...)

	var jnl *journal.Journal
	if *durable {
		// The write-ahead event log lives on its own volume, apart from
		// any image storage, the way a real deployment separates WAL and
		// data devices.
		vol := storage.NewVolume("shop-log",
			storage.NewDevice("shop-log-disk", 64<<20, 100*time.Microsecond))
		jnl = journal.Open(vol, "journal/shop")
		jnl.SetTelemetry(hub)
		s.SetJournal(jnl)
		log.Printf("journaling control-plane events to %s", jnl.Dir())
	}

	if *debug != "" {
		mux := hub.DebugMux()
		if jnl != nil {
			mux.Handle("/debug/journal", jnl.DebugHandler())
		}
		mux.HandleFunc("/debug/federation", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(s.Federation())
		})
		mux.HandleFunc("/debug/fleet", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(s.Fleet())
		})
		addr, err := telemetry.Serve(*debug, mux)
		if err != nil {
			log.Fatalf("vmshopd: %v", err)
		}
		log.Printf("debug endpoints on http://%s/metrics, /debug/traces, /debug/creation/<id>, /debug/health, /debug/journal, /debug/federation and /debug/fleet", addr)
	}

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("vmshopd: listen: %v", err)
	}
	fmt.Printf("vmshopd cell %q serving on %s with %d plants, %d peers\n", *cell, l.Addr(), len(handles), len(peerHandles))
	proto.Serve(l, service.NewShopHandler(runner, s))
}
