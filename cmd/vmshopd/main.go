// Command vmshopd runs the VMShop daemon: the client-facing front end
// that collects bids from the configured VMPlant daemons and routes
// create/query/destroy requests.
//
// Usage:
//
//	vmshopd -listen :7000 -plants plantA=host1:7001,plantB=host2:7001
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"vmplants/internal/proto"
	"vmplants/internal/service"
	"vmplants/internal/shop"
	"vmplants/internal/sim"
)

func main() {
	var (
		listen  = flag.String("listen", ":7000", "shop service listen address")
		plants  = flag.String("plants", "", "comma-separated name=addr plant endpoints")
		seed    = flag.Int64("seed", 1, "tie-break random seed")
		timeout = flag.Duration("timeout", 30*time.Second, "per-plant call timeout")
		cache   = flag.Bool("cache", true, "cache classads to serve queries when plants are down")
	)
	flag.Parse()

	var handles []shop.PlantHandle
	for _, pair := range strings.Split(*plants, ",") {
		pair = strings.TrimSpace(pair)
		if pair == "" {
			continue
		}
		name, addr, ok := strings.Cut(pair, "=")
		if !ok {
			log.Fatalf("vmshopd: bad plant %q (want name=addr)", pair)
		}
		handles = append(handles, &service.RemotePlant{PlantName: name, Addr: addr, Timeout: *timeout})
	}
	if len(handles) == 0 {
		log.Fatal("vmshopd: no plants configured (-plants name=addr,...)")
	}

	s := shop.New("shop", handles, *seed)
	s.CacheAds = *cache
	runner := service.NewRunner(sim.NewKernel())

	l, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("vmshopd: listen: %v", err)
	}
	fmt.Printf("vmshopd serving on %s with %d plants\n", l.Addr(), len(handles))
	proto.Serve(l, service.NewShopHandler(runner, s))
}
