// The §3.4 cost-function walk-through as a runnable scenario: two
// plants, four host-only networks each, at most 32 VMs per plant,
// network cost 50 and compute cost 4 per hosted VM. One client domain
// requests VM after VM; the bid history shows the first plant winning
// until its load charge (4 × 13 = 52) exceeds the second plant's
// one-time network charge (50) — the crossover at request 14.
package main

import (
	"fmt"
	"log"

	"vmplants"
)

func main() {
	sys, err := vmplants.New(vmplants.Config{
		Plants:                   2,
		Seed:                     3,
		CostModel:                "network+compute",
		MaxVMsPerPlant:           32,
		HostOnlyNetworksPerPlant: 4,
	})
	if err != nil {
		log.Fatal(err)
	}
	hw := vmplants.Hardware{Arch: "x86", MemoryMB: 32, DiskMB: 2048}
	history := []vmplants.Action{
		{Op: "install-os", Target: vmplants.Guest, Params: map[string]string{"distro": "redhat-8.0"}},
	}
	if err := sys.PublishGolden("base", hw, vmplants.BackendVMware, history); err != nil {
		log.Fatal(err)
	}

	fmt.Println("request  bids (plant=cost)            winner")
	for i := 1; i <= 16; i++ {
		g, err := vmplants.NewGraph().
			Add("os", vmplants.Action{Op: "install-os", Target: vmplants.Guest,
				Params: map[string]string{"distro": "redhat-8.0"}}).
			Add("user", vmplants.Action{Op: "create-user", Target: vmplants.Guest,
				Params: map[string]string{"name": fmt.Sprintf("user%02d", i)}}, "os").
			Build()
		if err != nil {
			log.Fatal(err)
		}
		_, ad, err := sys.CreateVM(&vmplants.Spec{
			Name:     fmt.Sprintf("vm-%02d", i),
			Hardware: hw,
			Domain:   "ufl.edu",
			Graph:    g,
		})
		if err != nil {
			log.Fatal(err)
		}
		bids := sys.Bids()
		last := bids[len(bids)-1]
		bidStr := ""
		for plant, c := range last.Costs {
			bidStr += fmt.Sprintf("%s=%.0f ", plant, float64(c))
		}
		fmt.Printf("%7d  %-28s → %s\n", i, bidStr, ad.GetString("Plant", "?"))
	}
	fmt.Println("\npaper: the same client keeps landing on one plant for 13 VMs;")
	fmt.Println("the 14th request crosses over to the second plant.")
}
