// The full wire path in one process: two VMPlant daemons and a VMShop
// daemon listening on loopback TCP, a registry providing discovery, and
// the typed ShopClient driving create/suspend/resume/publish/destroy —
// exactly what `vmplantd`, `vmshopd` and `vmctl` do across machines.
package main

import (
	"fmt"
	"log"
	"net"
	"strings"
	"time"

	"vmplants/internal/cluster"
	"vmplants/internal/core"
	"vmplants/internal/plant"
	"vmplants/internal/proto"
	"vmplants/internal/registry"
	"vmplants/internal/service"
	"vmplants/internal/shop"
	"vmplants/internal/sim"
	"vmplants/internal/warehouse"
	"vmplants/internal/workload"
)

// startPlant brings up one plant daemon on a loopback port.
func startPlant(name string, seed int64) (addr string, closer func(), err error) {
	k := sim.NewKernel()
	tb := cluster.NewTestbed(k, 1, cluster.DefaultParams(), seed)
	wh := warehouse.New(tb.Warehouse)
	hw := core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048}
	im, err := warehouse.BuildGolden(workload.GoldenName(64, warehouse.BackendVMware),
		hw, warehouse.BackendVMware, workload.InVigoGoldenHistory())
	if err != nil {
		return "", nil, err
	}
	if err := wh.Publish(im); err != nil {
		return "", nil, err
	}
	pl := plant.New(name, tb.Nodes[0], wh, plant.Config{MaxVMs: 16})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return "", nil, err
	}
	go proto.Serve(l, service.NewPlantHandler(service.NewRunner(k), pl))
	return l.Addr().String(), func() { l.Close() }, nil
}

func main() {
	// Plants publish themselves in the registry (Figure 1's "Publish").
	reg := registry.New()
	for i, name := range []string{"plantA", "plantB"} {
		addr, closer, err := startPlant(name, int64(i+1))
		if err != nil {
			log.Fatal(err)
		}
		defer closer()
		if err := service.PublishPlant(reg, name, addr, time.Minute); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s serving on %s\n", name, addr)
	}

	// The shop discovers them ("Discover"/"Bind") and serves clients.
	handles := service.DiscoverPlants(reg, 5*time.Second)
	s := shop.New("shop", handles, 7)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go proto.Serve(l, service.NewShopHandler(service.NewRunner(sim.NewKernel()), s))
	fmt.Printf("vmshop serving on %s with %d discovered plants\n\n", l.Addr(), len(handles))

	// A typed client drives the whole lifecycle over real sockets.
	sc, err := service.DialShop(l.Addr().String(), 10*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	defer sc.Close()

	g, err := workload.InVigoDAG("grace", "00:50:56:00:00:77", "10.1.0.77")
	if err != nil {
		log.Fatal(err)
	}
	spec := &core.Spec{
		Name:     "workspace-grace",
		Hardware: core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048},
		Domain:   "ufl.edu",
		Graph:    g,
	}
	id, ad, err := sc.Create(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %s on %s (clone %.1f s of virtual time)\n",
		id, ad.GetString(core.AttrPlant, "?"), ad.GetReal(core.AttrCloneSecs, 0))

	if err := sc.Suspend(id); err != nil {
		log.Fatal(err)
	}
	fmt.Println("suspended (workspace parked, host memory freed)")
	if err := sc.Resume(id); err != nil {
		log.Fatal(err)
	}
	fmt.Println("resumed")

	if err := sc.Publish(id, "grace-workspace"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("published the configured workspace as a new golden image")

	if err := sc.Destroy(id); err != nil {
		log.Fatal(err)
	}
	fmt.Println("destroyed", id)

	// DAGs ship as XML on the wire; show a fragment.
	blob, _ := proto.Marshal(&proto.Message{Kind: proto.KindCreateRequest,
		Create: proto.FromSpec(spec, "")})
	fmt.Printf("\nwire format sample (%d bytes of XML); first node:\n", len(blob))
	fmt.Println(firstLineContaining(string(blob), "<node"))
}

func firstLineContaining(s, sub string) string {
	if i := strings.Index(s, sub); i >= 0 {
		end := strings.IndexByte(s[i:], '>')
		if end < 0 {
			return s[i:]
		}
		return s[i : i+end+1]
	}
	return ""
}
