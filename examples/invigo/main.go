// The Figure 3 walk-through: the In-VIGO virtual-workspace DAG is
// matched against the warehouse's cached golden description (operations
// A, B, C), the PPP clones the golden machine and executes only the
// residual personalization D–I, and the returned classad carries the
// workspace's access data. Run three workspaces in a row to see the
// cache amortize.
package main

import (
	"fmt"
	"log"
	"time"

	"vmplants"
	"vmplants/internal/match"
	"vmplants/internal/workload"
)

func main() {
	sys, err := vmplants.New(vmplants.Config{Plants: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	hw := vmplants.Hardware{Arch: "x86", MemoryMB: 64, DiskMB: 2048}

	// 2. VM Warehouse cached description: Red Hat 8.0 + VNC server +
	// web file manager, checkpointed post-boot.
	history := workload.InVigoGoldenHistory()
	if err := sys.PublishGolden("invigo-workspace", hw, vmplants.BackendVMware, history); err != nil {
		log.Fatal(err)
	}
	fmt.Println("golden image published with history:")
	for i, a := range history {
		fmt.Printf("  %c: %s %v\n", 'A'+i, a.Op, a.Params)
	}

	for i, user := range []string{"arijit", "ivan", "jian"} {
		// 1. Client-specified DAG (Figure 3).
		ip := fmt.Sprintf("10.1.0.%d", 7+i)
		g, err := workload.InVigoDAG(user, fmt.Sprintf("00:50:56:00:00:%02x", i+1), ip)
		if err != nil {
			log.Fatal(err)
		}

		// 3. Topological sort + partial match (shown explicitly here;
		// the plant does the same internally).
		res := match.Evaluate(g, history)
		fmt.Printf("\n%s: matched %v, residual %v\n", user, res.Matched, res.Residual)

		// 4–5. PPP cloning and configuration, via the shop.
		start := sys.Now()
		id, ad, err := sys.CreateVM(&vmplants.Spec{
			Name:     "workspace-" + user,
			Hardware: hw,
			Domain:   "ufl.edu",
			Graph:    g,
		})
		if err != nil {
			log.Fatal(err)
		}
		took := sys.Now() - start
		fmt.Printf("  %s on %s in %.1f s (clone %.1f s); VNC at %s, user %s\n",
			id,
			ad.GetString("Plant", "?"),
			took.Seconds(),
			ad.GetReal("CloneSecs", 0),
			ad.GetString("IP", "?"),
			ad.GetString("Out_user", "?"))
	}

	// Workspaces stay up; the monitor-visible uptime grows.
	if err := sys.Advance(5 * time.Minute); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nvirtual time now %v; all workspaces running\n", sys.Now())

	// The installer workflow (paper §1): arijit installs an application
	// in his workspace and publishes the result back to the warehouse,
	// so collaborators instantiate it without repeating the install.
	fmt.Println("\n--- installer publish workflow ---")
	g2, err := workload.InVigoDAG("renato", "00:50:56:00:00:10", "10.1.0.20")
	if err != nil {
		log.Fatal(err)
	}
	id, _, err := sys.CreateVM(&vmplants.Spec{
		Name: "workspace-renato", Hardware: hw, Domain: "ufl.edu", Graph: g2,
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.PublishVM(id, "invigo-renato-published"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("published %s as %q; warehouse now holds: %v\n",
		id, "invigo-renato-published", sys.GoldenImages())

	// Idle-time speculation: pre-create a clone so the next matching
	// request skips the state copy entirely.
	plantName := sys.Plants()[0]
	if err := sys.Precreate(plantName, "invigo-workspace", 1); err != nil {
		log.Fatal(err)
	}
	start := sys.Now()
	g3, _ := workload.InVigoDAG("jose", "00:50:56:00:00:11", "10.1.0.21")
	if _, ad, err := sys.CreateVM(&vmplants.Spec{
		Name: "workspace-jose", Hardware: hw, Domain: "ufl.edu", Graph: g3,
	}); err == nil {
		fmt.Printf("pre-created pool served jose's workspace on %s in %.1f s\n",
			ad.GetString("Plant", "?"), (sys.Now() - start).Seconds())
	}
}
