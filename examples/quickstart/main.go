// Quickstart: stand up an in-process VMPlants deployment, publish a
// golden image, create a VM from a configuration DAG, inspect its
// classad, and tear it down.
package main

import (
	"fmt"
	"log"

	"vmplants"
)

func main() {
	// A site with two plants (two simulated cluster nodes).
	sys, err := vmplants.New(vmplants.Config{Plants: 2, Seed: 1})
	if err != nil {
		log.Fatal(err)
	}

	// Publish a golden machine: Red Hat plus a VNC server, checkpointed.
	hw := vmplants.Hardware{Arch: "x86", MemoryMB: 64, DiskMB: 2048}
	history := []vmplants.Action{
		{Op: "install-os", Target: vmplants.Guest, Params: map[string]string{"distro": "redhat-8.0"}},
		{Op: "install-package", Target: vmplants.Guest, Params: map[string]string{"name": "vnc-server"}},
	}
	if err := sys.PublishGolden("redhat-vnc", hw, vmplants.BackendVMware, history); err != nil {
		log.Fatal(err)
	}

	// The creation request: the golden prefix plus personalization. The
	// Production Process Planner will match A,B against the golden image
	// and execute only the remaining two actions after cloning.
	graph, err := vmplants.NewGraph().
		Add("A", vmplants.Action{Op: "install-os", Target: vmplants.Guest,
			Params: map[string]string{"distro": "redhat-8.0"}}).
		Add("B", vmplants.Action{Op: "install-package", Target: vmplants.Guest,
			Params: map[string]string{"name": "vnc-server"}}, "A").
		Add("C", vmplants.Action{Op: "configure-network", Target: vmplants.Guest,
			Params: map[string]string{"ip": "10.1.0.7"}}, "B").
		Add("D", vmplants.Action{Op: "create-user", Target: vmplants.Guest,
			Params: map[string]string{"name": "alice"}}, "C").
		Build()
	if err != nil {
		log.Fatal(err)
	}

	id, ad, err := sys.CreateVM(&vmplants.Spec{
		Name:     "alice-workspace",
		Hardware: hw,
		Domain:   "example.edu",
		Graph:    graph,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("created %s in %v of virtual time\n", id, sys.Now())
	fmt.Printf("  plant:   %s\n", ad.GetString("Plant", "?"))
	fmt.Printf("  golden:  %s (%d ops matched)\n", ad.GetString("GoldenImage", "?"), ad.GetInt("MatchedOps", 0))
	fmt.Printf("  IP:      %s\n", ad.GetString("IP", "?"))
	fmt.Printf("  cloning: %.1f s\n", ad.GetReal("CloneSecs", 0))

	// The guest answers Ethernet-level probes on its host-only network.
	alive, err := sys.GuestProbe(id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  guest answers probe: %v\n", alive)

	if err := sys.DestroyVM(id); err != nil {
		log.Fatal(err)
	}
	fmt.Println("destroyed", id)
}
