// Multi-domain networking (§3.3): two client domains obtain VMs on the
// same plant; the plant keeps them on separate host-only networks, and
// each domain bridges its own network back to its LAN through a
// VNET-style TCP tunnel. An Ethernet-level probe from each client LAN
// reaches only that domain's VM.
//
// This example drives the subsystem layer directly (plant, vnet,
// simnet) to show the data path; the other examples use the public
// facade.
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"vmplants/internal/actions"
	"vmplants/internal/cluster"
	"vmplants/internal/core"
	"vmplants/internal/dag"
	"vmplants/internal/plant"
	"vmplants/internal/sim"
	"vmplants/internal/simnet"
	"vmplants/internal/vnet"
	"vmplants/internal/warehouse"
)

func main() {
	k := sim.NewKernel()
	tb := cluster.NewTestbed(k, 1, cluster.DefaultParams(), 5)
	wh := warehouse.New(tb.Warehouse)
	hw := core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048}
	im, err := warehouse.BuildGolden("base", hw, warehouse.BackendVMware, []dag.Action{
		{Op: actions.OpInstallOS, Target: dag.Guest, Params: map[string]string{"distro": "redhat-8.0"}},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := wh.Publish(im); err != nil {
		log.Fatal(err)
	}
	pl := plant.New("plant0", tb.Nodes[0], wh, plant.Config{HostOnlyNetworks: 4})

	// Create one VM per domain, directly on the plant.
	domains := []string{"ufl.edu", "northwestern.edu"}
	vmIDs := map[string]core.VMID{}
	k.Spawn("client", func(p *sim.Proc) {
		for i, domain := range domains {
			g, err := dag.NewBuilder().
				Add("os", dag.Action{Op: actions.OpInstallOS, Target: dag.Guest,
					Params: map[string]string{"distro": "redhat-8.0"}}).
				Add("net", dag.Action{Op: actions.OpConfigureNetwork, Target: dag.Guest,
					Params: map[string]string{"ip": fmt.Sprintf("10.%d.0.2", i+1)}}, "os").
				Build()
			if err != nil {
				p.Failf("%v", err)
			}
			id := core.VMID(fmt.Sprintf("vm-x-%d", i+1))
			ad, err := pl.Create(p, id, &core.Spec{
				Name: "backend-" + domain, Hardware: hw, Domain: domain, Graph: g,
			})
			if err != nil {
				p.Failf("%v", err)
			}
			vmIDs[domain] = id
			fmt.Printf("%-18s → %s on host-only network %s\n",
				domain, id, ad.GetString(core.AttrNetwork, "?"))
		}
	})
	if res := k.Run(0); len(res.Stranded) != 0 {
		log.Fatalf("stranded: %v", res.Stranded)
	}

	// Plant-side VNET server with per-domain credentials.
	creds := vnet.Credentials{"ufl.edu": "gator", "northwestern.edu": "wildcat"}
	srv := vnet.NewServer(creds, func(domain string) (*simnet.Switch, bool) {
		pool := pl.Networks()
		if !pool.HasDomain(domain) {
			return nil, false
		}
		n, _, err := pool.Acquire(domain)
		if err != nil {
			return nil, false
		}
		pool.Release(domain)
		return n.Switch, true
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	defer srv.Close()
	fmt.Printf("\nVNET server listening on %s\n", l.Addr())

	// Each domain's proxy bridges its LAN to the plant over TCP, then
	// probes its VM at the Ethernet layer.
	for _, domain := range domains {
		lan := simnet.NewSwitch(domain + "-lan")
		conn, err := net.Dial("tcp", l.Addr().String())
		if err != nil {
			log.Fatal(err)
		}
		bridge, err := vnet.Dial(lan, domain, creds[domain], conn)
		if err != nil {
			log.Fatalf("%s: %v", domain, err)
		}
		vm, _ := pl.VM(vmIDs[domain])
		ws := lan.Attach("workstation")
		ws.Send(simnet.Frame{
			Src:       simnet.MAC{0x02, 0, 0, 0, 0, 0x42},
			Dst:       vm.MAC(),
			EtherType: simnet.EtherTypeTest,
			Payload:   []byte("hello from " + domain),
		})
		reply := awaitFrame(ws)
		fmt.Printf("%-18s probe across the tunnel: %q\n", domain, reply)
		bridge.Close()
	}

	// Cross-domain isolation: a wrong credential is refused.
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		log.Fatal(err)
	}
	if _, err := vnet.Dial(simnet.NewSwitch("evil-lan"), "ufl.edu", "wrong", conn); err != nil {
		fmt.Printf("\nwrong credential rejected: %v\n", err)
	}
}

// awaitFrame polls the port for the tunneled reply (the answer crosses
// a real TCP connection, so give it wall-clock time).
func awaitFrame(p *simnet.Port) string {
	for i := 0; i < 2000; i++ {
		if f, ok := p.Poll(); ok {
			return string(f.Payload)
		}
		time.Sleep(time.Millisecond)
	}
	return "(no reply)"
}
