module vmplants

go 1.22
