// Package actions is the catalog of configuration operations that DAG
// nodes can name. Each operation has a semantic effect on the simulated
// guest operating-system state (install a package, create a user, …), a
// calibrated duration model used by the discrete-event substrate, and
// validation rules (a user cannot be created twice; guest actions other
// than the OS install require an installed OS).
//
// The catalog covers the operations in the paper's Figure 3 In-VIGO
// virtual-workspace walk-through (install Red Hat, install VNC server,
// install web file manager, configure MAC/IP, create user, mount home
// directory, configure/start services) plus generic host-side device
// operations and custom scripts.
package actions

import (
	"fmt"
	"sort"
	"strconv"
	"time"

	"vmplants/internal/dag"
)

// Operation names in the catalog.
const (
	OpInstallOS        = "install-os"        // params: distro
	OpInstallPackage   = "install-package"   // params: name [, seconds]
	OpConfigureNetwork = "configure-network" // params: mac, ip
	OpCreateUser       = "create-user"       // params: name [, password]
	OpMountFS          = "mount-fs"          // params: source, mountpoint
	OpConfigureService = "configure-service" // params: name
	OpStartService     = "start-service"     // params: name
	OpRunScript        = "run-script"        // params: script [, seconds]
	OpSetCredential    = "set-credential"    // params: kind (ssh|x509), user
	OpAttachDevice     = "attach-device"     // host; params: device, image
	OpDetachDevice     = "detach-device"     // host; params: device
)

// State is the configuration-relevant state of a guest operating system.
// Golden images record a State snapshot; executing actions mutates it.
type State struct {
	OS          string            // installed distribution, "" for a blank machine
	Packages    map[string]bool   // installed packages
	Users       map[string]bool   // local user accounts
	Mounts      map[string]string // mountpoint → source
	Services    map[string]string // service → "configured" or "running"
	MAC, IP     string            // network identity
	Credentials map[string]string // credential kind → principal
	Devices     map[string]string // host-attached devices: device → image
	Outputs     map[string]string // accumulated action outputs (→ classad)
}

// NewState returns the state of a blank machine (the DAG START node).
func NewState() *State {
	return &State{
		Packages:    make(map[string]bool),
		Users:       make(map[string]bool),
		Mounts:      make(map[string]string),
		Services:    make(map[string]string),
		Credentials: make(map[string]string),
		Devices:     make(map[string]string),
		Outputs:     make(map[string]string),
	}
}

// Clone returns an independent deep copy.
func (s *State) Clone() *State {
	c := NewState()
	c.OS, c.MAC, c.IP = s.OS, s.MAC, s.IP
	for k, v := range s.Packages {
		c.Packages[k] = v
	}
	for k, v := range s.Users {
		c.Users[k] = v
	}
	for k, v := range s.Mounts {
		c.Mounts[k] = v
	}
	for k, v := range s.Services {
		c.Services[k] = v
	}
	for k, v := range s.Credentials {
		c.Credentials[k] = v
	}
	for k, v := range s.Devices {
		c.Devices[k] = v
	}
	for k, v := range s.Outputs {
		c.Outputs[k] = v
	}
	return c
}

// Summary renders a deterministic one-line description, for logs/tests.
func (s *State) Summary() string {
	pkgs := keys(s.Packages)
	users := keys(s.Users)
	return fmt.Sprintf("os=%s pkgs=%v users=%v ip=%s", orDash(s.OS), pkgs, users, orDash(s.IP))
}

func orDash(s string) string {
	if s == "" {
		return "-"
	}
	return s
}

func keys(m map[string]bool) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// spec is one catalog entry.
type spec struct {
	target   dag.Target
	baseSecs float64 // mean duration in seconds
	jitter   float64 // lognormal sigma applied by Duration
	apply    func(st *State, p map[string]string) error
}

// catalog maps operation name → behaviour. Durations follow DESIGN.md
// §4: cheap identity operations are seconds; package installs tens of
// seconds; a full OS install is ~20 minutes and is only ever paid when
// partial matching misses entirely.
var catalog = map[string]spec{
	OpInstallOS: {target: dag.Guest, baseSecs: 1200, jitter: 0.10, apply: func(st *State, p map[string]string) error {
		distro := p["distro"]
		if distro == "" {
			return fmt.Errorf("install-os: missing distro parameter")
		}
		if st.OS != "" {
			return fmt.Errorf("install-os: OS %q already installed", st.OS)
		}
		st.OS = distro
		st.Outputs["os"] = distro
		return nil
	}},
	OpInstallPackage: {target: dag.Guest, baseSecs: 25, jitter: 0.20, apply: func(st *State, p map[string]string) error {
		name := p["name"]
		if name == "" {
			return fmt.Errorf("install-package: missing name parameter")
		}
		if st.OS == "" {
			return fmt.Errorf("install-package %q: no operating system installed", name)
		}
		if st.Packages[name] {
			return fmt.Errorf("install-package: %q already installed", name)
		}
		st.Packages[name] = true
		return nil
	}},
	OpConfigureNetwork: {target: dag.Guest, baseSecs: 2, jitter: 0.15, apply: func(st *State, p map[string]string) error {
		if st.OS == "" {
			return fmt.Errorf("configure-network: no operating system installed")
		}
		if p["ip"] == "" {
			return fmt.Errorf("configure-network: missing ip parameter")
		}
		st.MAC, st.IP = p["mac"], p["ip"]
		st.Outputs["ip"] = p["ip"]
		if p["mac"] != "" {
			st.Outputs["mac"] = p["mac"]
		}
		return nil
	}},
	OpCreateUser: {target: dag.Guest, baseSecs: 1, jitter: 0.15, apply: func(st *State, p map[string]string) error {
		name := p["name"]
		if name == "" {
			return fmt.Errorf("create-user: missing name parameter")
		}
		if st.OS == "" {
			return fmt.Errorf("create-user %q: no operating system installed", name)
		}
		if st.Users[name] {
			return fmt.Errorf("create-user: %q already exists", name)
		}
		st.Users[name] = true
		st.Outputs["user"] = name
		return nil
	}},
	OpMountFS: {target: dag.Guest, baseSecs: 3, jitter: 0.25, apply: func(st *State, p map[string]string) error {
		src, mp := p["source"], p["mountpoint"]
		if src == "" || mp == "" {
			return fmt.Errorf("mount-fs: need source and mountpoint parameters")
		}
		if st.OS == "" {
			return fmt.Errorf("mount-fs: no operating system installed")
		}
		if prev, busy := st.Mounts[mp]; busy {
			return fmt.Errorf("mount-fs: %q already mounts %q", mp, prev)
		}
		st.Mounts[mp] = src
		return nil
	}},
	OpConfigureService: {target: dag.Guest, baseSecs: 2, jitter: 0.15, apply: func(st *State, p map[string]string) error {
		name := p["name"]
		if name == "" {
			return fmt.Errorf("configure-service: missing name parameter")
		}
		if st.OS == "" {
			return fmt.Errorf("configure-service %q: no operating system installed", name)
		}
		st.Services[name] = "configured"
		return nil
	}},
	OpStartService: {target: dag.Guest, baseSecs: 2, jitter: 0.20, apply: func(st *State, p map[string]string) error {
		name := p["name"]
		if name == "" {
			return fmt.Errorf("start-service: missing name parameter")
		}
		if st.OS == "" {
			return fmt.Errorf("start-service %q: no operating system installed", name)
		}
		if st.Services[name] == "running" {
			return fmt.Errorf("start-service: %q already running", name)
		}
		st.Services[name] = "running"
		return nil
	}},
	OpRunScript: {target: dag.Guest, baseSecs: 5, jitter: 0.30, apply: func(st *State, p map[string]string) error {
		if p["script"] == "" {
			return fmt.Errorf("run-script: missing script parameter")
		}
		if st.OS == "" {
			return fmt.Errorf("run-script: no operating system installed")
		}
		st.Outputs["script:"+p["script"]] = "ok"
		return nil
	}},
	OpSetCredential: {target: dag.Guest, baseSecs: 1, jitter: 0.10, apply: func(st *State, p map[string]string) error {
		kind, user := p["kind"], p["user"]
		if kind != "ssh" && kind != "x509" {
			return fmt.Errorf("set-credential: kind must be ssh or x509, got %q", kind)
		}
		if st.OS == "" {
			return fmt.Errorf("set-credential: no operating system installed")
		}
		st.Credentials[kind] = user
		st.Outputs["credential:"+kind] = user
		return nil
	}},
	OpAttachDevice: {target: dag.Host, baseSecs: 1, jitter: 0.10, apply: func(st *State, p map[string]string) error {
		dev := p["device"]
		if dev == "" {
			return fmt.Errorf("attach-device: missing device parameter")
		}
		if _, busy := st.Devices[dev]; busy {
			return fmt.Errorf("attach-device: %q already attached", dev)
		}
		st.Devices[dev] = p["image"]
		return nil
	}},
	OpDetachDevice: {target: dag.Host, baseSecs: 0.5, jitter: 0.10, apply: func(st *State, p map[string]string) error {
		dev := p["device"]
		if _, ok := st.Devices[dev]; !ok {
			return fmt.Errorf("detach-device: %q not attached", dev)
		}
		delete(st.Devices, dev)
		return nil
	}},
}

// Known reports whether op is in the catalog.
func Known(op string) bool {
	_, ok := catalog[op]
	return ok
}

// Ops returns every catalog operation name, sorted.
func Ops() []string {
	out := make([]string, 0, len(catalog))
	for op := range catalog {
		out = append(out, op)
	}
	sort.Strings(out)
	return out
}

// DefaultTarget reports where the catalog says op runs.
func DefaultTarget(op string) (dag.Target, error) {
	s, ok := catalog[op]
	if !ok {
		return dag.Guest, fmt.Errorf("actions: unknown operation %q", op)
	}
	return s.target, nil
}

// Apply executes the action's semantic effect on st, validating
// preconditions. It does not model time; see Duration.
func Apply(st *State, a dag.Action) error {
	s, ok := catalog[a.Op]
	if !ok {
		return fmt.Errorf("actions: unknown operation %q", a.Op)
	}
	return s.apply(st, nonNil(a.Params))
}

func nonNil(m map[string]string) map[string]string {
	if m == nil {
		return map[string]string{}
	}
	return m
}

// Sampler is the subset of sim.RNG the duration model needs.
type Sampler interface {
	LogNormalMean(mean, sigma float64) float64
}

// Duration samples how long the action takes. A "seconds" parameter
// overrides the catalog's base duration (the paper's DAG actions carry
// client-provided scripts of arbitrary cost). A nil sampler returns the
// mean deterministically.
func Duration(a dag.Action, rng Sampler) (time.Duration, error) {
	s, ok := catalog[a.Op]
	if !ok {
		return 0, fmt.Errorf("actions: unknown operation %q", a.Op)
	}
	mean := s.baseSecs
	if ov := a.Params["seconds"]; ov != "" {
		f, err := strconv.ParseFloat(ov, 64)
		if err != nil || f < 0 {
			return 0, fmt.Errorf("actions: bad seconds override %q", ov)
		}
		mean = f
	}
	if rng == nil {
		return time.Duration(mean * float64(time.Second)), nil
	}
	return time.Duration(rng.LogNormalMean(mean, s.jitter) * float64(time.Second)), nil
}

// Validate checks that every action node in g names a known catalog
// operation and runs on the catalog's target.
func Validate(g *dag.Graph) error {
	for _, id := range g.ActionIDs() {
		n, _ := g.Node(id)
		s, ok := catalog[n.Action.Op]
		if !ok {
			return fmt.Errorf("actions: node %q: unknown operation %q", id, n.Action.Op)
		}
		if n.Action.Target != s.target {
			return fmt.Errorf("actions: node %q: operation %q runs on %s, not %s",
				id, n.Action.Op, s.target, n.Action.Target)
		}
		for _, h := range n.OnError.Handler {
			if !Known(h.Op) {
				return fmt.Errorf("actions: node %q: unknown handler operation %q", id, h.Op)
			}
		}
	}
	return nil
}

// Replay applies a sequence of actions to a fresh blank state, returning
// the resulting state. It is how golden-image states are reconstructed
// from their recorded action history.
func Replay(seq []dag.Action) (*State, error) {
	st := NewState()
	for i, a := range seq {
		if err := Apply(st, a); err != nil {
			return nil, fmt.Errorf("actions: replay step %d (%s): %w", i, a.Op, err)
		}
	}
	return st, nil
}
