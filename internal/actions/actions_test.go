package actions

import (
	"strings"
	"testing"
	"time"

	"vmplants/internal/dag"
	"vmplants/internal/sim"
)

func act(op string, kv ...string) dag.Action {
	p := map[string]string{}
	for i := 0; i+1 < len(kv); i += 2 {
		p[kv[i]] = kv[i+1]
	}
	tgt, _ := DefaultTarget(op)
	return dag.Action{Op: op, Target: tgt, Params: p}
}

func TestInstallOSThenPackages(t *testing.T) {
	st := NewState()
	if err := Apply(st, act(OpInstallOS, "distro", "redhat-8.0")); err != nil {
		t.Fatal(err)
	}
	if st.OS != "redhat-8.0" {
		t.Errorf("OS = %q", st.OS)
	}
	if err := Apply(st, act(OpInstallPackage, "name", "vnc-server")); err != nil {
		t.Fatal(err)
	}
	if !st.Packages["vnc-server"] {
		t.Error("package not recorded")
	}
}

func TestGuestActionsRequireOS(t *testing.T) {
	ops := []dag.Action{
		act(OpInstallPackage, "name", "x"),
		act(OpCreateUser, "name", "u"),
		act(OpMountFS, "source", "nfs:/h", "mountpoint", "/home/u"),
		act(OpConfigureService, "name", "vnc"),
		act(OpStartService, "name", "vnc"),
		act(OpRunScript, "script", "s.sh"),
		act(OpSetCredential, "kind", "ssh", "user", "u"),
		act(OpConfigureNetwork, "ip", "10.0.0.1"),
	}
	for _, a := range ops {
		if err := Apply(NewState(), a); err == nil {
			t.Errorf("%s succeeded on blank machine", a.Op)
		}
	}
}

func TestDoubleOSInstallFails(t *testing.T) {
	st := NewState()
	Apply(st, act(OpInstallOS, "distro", "a"))
	if err := Apply(st, act(OpInstallOS, "distro", "b")); err == nil {
		t.Error("second install-os succeeded")
	}
}

func TestIdempotencyViolationsFail(t *testing.T) {
	st := NewState()
	Apply(st, act(OpInstallOS, "distro", "linux"))
	steps := []dag.Action{
		act(OpInstallPackage, "name", "p"),
		act(OpCreateUser, "name", "u"),
		act(OpMountFS, "source", "s", "mountpoint", "/m"),
		act(OpStartService, "name", "svc"),
	}
	for _, a := range steps {
		if err := Apply(st, a); err != nil {
			t.Fatalf("first %s: %v", a.Op, err)
		}
		if err := Apply(st, a); err == nil {
			t.Errorf("duplicate %s succeeded", a.Op)
		}
	}
}

func TestMissingParamsFail(t *testing.T) {
	st := NewState()
	Apply(st, act(OpInstallOS, "distro", "linux"))
	for _, a := range []dag.Action{
		act(OpInstallOS),
		act(OpInstallPackage),
		act(OpCreateUser),
		act(OpMountFS, "source", "s"),
		act(OpConfigureNetwork, "mac", "aa:bb"),
		act(OpRunScript),
		act(OpSetCredential, "kind", "pigeon", "user", "u"),
		act(OpAttachDevice),
	} {
		if err := Apply(st, a); err == nil {
			t.Errorf("%s with missing/bad params succeeded", a.Op)
		}
	}
}

func TestHostDeviceLifecycle(t *testing.T) {
	st := NewState()
	if err := Apply(st, act(OpAttachDevice, "device", "cdrom0", "image", "cfg.iso")); err != nil {
		t.Fatal(err)
	}
	if st.Devices["cdrom0"] != "cfg.iso" {
		t.Errorf("devices = %v", st.Devices)
	}
	if err := Apply(st, act(OpAttachDevice, "device", "cdrom0", "image", "x.iso")); err == nil {
		t.Error("double attach succeeded")
	}
	if err := Apply(st, act(OpDetachDevice, "device", "cdrom0")); err != nil {
		t.Fatal(err)
	}
	if err := Apply(st, act(OpDetachDevice, "device", "cdrom0")); err == nil {
		t.Error("double detach succeeded")
	}
}

func TestUnknownOperation(t *testing.T) {
	if err := Apply(NewState(), dag.Action{Op: "format-moon"}); err == nil {
		t.Error("unknown op accepted")
	}
	if _, err := Duration(dag.Action{Op: "format-moon"}, nil); err == nil {
		t.Error("unknown op duration accepted")
	}
	if _, err := DefaultTarget("format-moon"); err == nil {
		t.Error("unknown op target accepted")
	}
}

func TestDurationDeterministicWithoutRNG(t *testing.T) {
	d, err := Duration(act(OpInstallOS, "distro", "x"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d != 1200*time.Second {
		t.Errorf("install-os mean = %v, want 20m", d)
	}
}

func TestDurationSecondsOverride(t *testing.T) {
	d, err := Duration(act(OpRunScript, "script", "s", "seconds", "42"), nil)
	if err != nil {
		t.Fatal(err)
	}
	if d != 42*time.Second {
		t.Errorf("override = %v", d)
	}
	if _, err := Duration(act(OpRunScript, "script", "s", "seconds", "-3"), nil); err == nil {
		t.Error("negative override accepted")
	}
	if _, err := Duration(act(OpRunScript, "script", "s", "seconds", "soon"), nil); err == nil {
		t.Error("non-numeric override accepted")
	}
}

func TestDurationJitterIsPositiveAndNearMean(t *testing.T) {
	g := sim.NewRNG(3)
	var sum time.Duration
	const n = 2000
	for i := 0; i < n; i++ {
		d, err := Duration(act(OpInstallPackage, "name", "p"), g)
		if err != nil {
			t.Fatal(err)
		}
		if d <= 0 {
			t.Fatalf("non-positive duration %v", d)
		}
		sum += d
	}
	mean := sum / n
	if mean < 22*time.Second || mean > 28*time.Second {
		t.Errorf("mean duration %v, want ≈25s", mean)
	}
}

func TestStateCloneIndependent(t *testing.T) {
	st := NewState()
	Apply(st, act(OpInstallOS, "distro", "linux"))
	Apply(st, act(OpCreateUser, "name", "arijit"))
	c := st.Clone()
	Apply(c, act(OpCreateUser, "name", "ivan"))
	if st.Users["ivan"] {
		t.Error("clone shares users map")
	}
	if !c.Users["arijit"] || c.OS != "linux" {
		t.Error("clone lost state")
	}
}

func TestReplayReconstructsState(t *testing.T) {
	seq := []dag.Action{
		act(OpInstallOS, "distro", "redhat-8.0"),
		act(OpInstallPackage, "name", "vnc-server"),
		act(OpCreateUser, "name", "arijit"),
	}
	st, err := Replay(seq)
	if err != nil {
		t.Fatal(err)
	}
	if st.OS != "redhat-8.0" || !st.Packages["vnc-server"] || !st.Users["arijit"] {
		t.Errorf("replayed state: %s", st.Summary())
	}
}

func TestReplayPropagatesErrorsWithStep(t *testing.T) {
	_, err := Replay([]dag.Action{act(OpCreateUser, "name", "u")})
	if err == nil || !strings.Contains(err.Error(), "step 0") {
		t.Errorf("err = %v", err)
	}
}

func TestValidateGraph(t *testing.T) {
	good := dag.NewBuilder().
		Add("A", act(OpInstallOS, "distro", "x")).
		Add("B", act(OpAttachDevice, "device", "cdrom0"), "A").
		MustBuild()
	if err := Validate(good); err != nil {
		t.Errorf("valid graph rejected: %v", err)
	}

	unknown := dag.NewBuilder().
		Add("A", dag.Action{Op: "nope"}).
		MustBuild()
	if err := Validate(unknown); err == nil {
		t.Error("unknown op accepted")
	}

	wrongTarget := dag.NewBuilder().
		Add("A", dag.Action{Op: OpInstallOS, Target: dag.Host, Params: map[string]string{"distro": "x"}}).
		MustBuild()
	if err := Validate(wrongTarget); err == nil {
		t.Error("wrong target accepted")
	}

	badHandler := dag.NewBuilder().
		AddWithPolicy("A", act(OpInstallOS, "distro", "x"),
			dag.ErrorPolicy{Handler: []dag.Action{{Op: "nope"}}}).
		MustBuild()
	if err := Validate(badHandler); err == nil {
		t.Error("unknown handler op accepted")
	}
}

func TestOpsAndKnown(t *testing.T) {
	ops := Ops()
	if len(ops) != 11 {
		t.Errorf("catalog has %d ops: %v", len(ops), ops)
	}
	for _, op := range ops {
		if !Known(op) {
			t.Errorf("Known(%q) = false", op)
		}
	}
	if Known("bogus") {
		t.Error("Known(bogus) = true")
	}
}

func TestOutputsAccumulate(t *testing.T) {
	st := NewState()
	Apply(st, act(OpInstallOS, "distro", "linux"))
	Apply(st, act(OpConfigureNetwork, "ip", "10.1.2.3", "mac", "aa:bb:cc"))
	Apply(st, act(OpSetCredential, "kind", "ssh", "user", "ivan"))
	if st.Outputs["ip"] != "10.1.2.3" || st.Outputs["mac"] != "aa:bb:cc" || st.Outputs["credential:ssh"] != "ivan" {
		t.Errorf("outputs = %v", st.Outputs)
	}
}
