package classad

import (
	"encoding/xml"
	"fmt"
	"sort"
	"strings"
)

// Ad is a classified advertisement: an ordered collection of attribute
// definitions. Attribute names are case-insensitive (stored with their
// first-seen spelling, matched case-insensitively), as in Condor.
type Ad struct {
	names []string        // insertion order, original spelling
	attrs map[string]Expr // lower-case name -> expression
}

// New returns an empty ad.
func New() *Ad {
	return &Ad{attrs: make(map[string]Expr)}
}

// Len reports the number of attributes.
func (a *Ad) Len() int { return len(a.names) }

// Names returns attribute names in insertion order.
func (a *Ad) Names() []string {
	return append([]string(nil), a.names...)
}

// Set binds name to the given expression, replacing any previous
// binding but keeping the original position and spelling.
func (a *Ad) Set(name string, e Expr) *Ad {
	key := strings.ToLower(name)
	if _, ok := a.attrs[key]; !ok {
		a.names = append(a.names, name)
	}
	a.attrs[key] = e
	return a
}

// Convenience setters for literal values.

// SetInt binds name to an integer literal.
func (a *Ad) SetInt(name string, v int64) *Ad { return a.Set(name, Lit(Int(v))) }

// SetReal binds name to a real literal.
func (a *Ad) SetReal(name string, v float64) *Ad { return a.Set(name, Lit(Real(v))) }

// SetString binds name to a string literal.
func (a *Ad) SetString(name, v string) *Ad { return a.Set(name, Lit(Str(v))) }

// SetBool binds name to a boolean literal.
func (a *Ad) SetBool(name string, v bool) *Ad { return a.Set(name, Lit(Bool(v))) }

// SetStrings binds name to a list of string literals.
func (a *Ad) SetStrings(name string, vs ...string) *Ad {
	elems := make([]Value, len(vs))
	for i, s := range vs {
		elems[i] = Str(s)
	}
	return a.Set(name, Lit(List(elems...)))
}

// SetExprString parses src as an expression and binds it to name.
func (a *Ad) SetExprString(name, src string) error {
	e, err := ParseExpr(src)
	if err != nil {
		return err
	}
	a.Set(name, e)
	return nil
}

// Delete removes an attribute; it reports whether it was present.
func (a *Ad) Delete(name string) bool {
	key := strings.ToLower(name)
	if _, ok := a.attrs[key]; !ok {
		return false
	}
	delete(a.attrs, key)
	for i, n := range a.names {
		if strings.ToLower(n) == key {
			a.names = append(a.names[:i], a.names[i+1:]...)
			break
		}
	}
	return true
}

// Lookup returns the unevaluated expression bound to name.
func (a *Ad) Lookup(name string) (Expr, bool) {
	if a == nil {
		return nil, false
	}
	e, ok := a.attrs[strings.ToLower(name)]
	return e, ok
}

// Eval evaluates the named attribute in the ad's own scope.
func (a *Ad) Eval(name string) Value {
	return a.EvalAgainst(name, nil)
}

// EvalAgainst evaluates the named attribute with other available as the
// TARGET scope (and as fallback for unscoped references).
func (a *Ad) EvalAgainst(name string, other *Ad) Value {
	e, ok := a.Lookup(name)
	if !ok {
		return Undefined()
	}
	en := &env{self: a, target: other}
	if !en.push("my", name) {
		return Errorf("cyclic reference to %q", name)
	}
	defer en.pop()
	return e.eval(en)
}

// EvalExpr evaluates an arbitrary expression in the ad's scope.
func (a *Ad) EvalExpr(e Expr, other *Ad) Value {
	return e.eval(&env{self: a, target: other})
}

// Typed accessors with defaults, for the common protocol plumbing.

// GetString returns the attribute as a string, or def when absent or of
// another type.
func (a *Ad) GetString(name, def string) string {
	if s, ok := a.Eval(name).StringVal(); ok {
		return s
	}
	return def
}

// GetInt returns the attribute as an int64, or def.
func (a *Ad) GetInt(name string, def int64) int64 {
	v := a.Eval(name)
	if i, ok := v.IntVal(); ok {
		return i
	}
	if f, ok := v.RealVal(); ok {
		return int64(f)
	}
	return def
}

// GetReal returns the attribute as a float64, or def.
func (a *Ad) GetReal(name string, def float64) float64 {
	if f, ok := a.Eval(name).Number(); ok {
		return f
	}
	return def
}

// GetBool returns the attribute as a bool, or def.
func (a *Ad) GetBool(name string, def bool) bool {
	if b, ok := a.Eval(name).BoolVal(); ok {
		return b
	}
	return def
}

// GetStrings returns the attribute as a []string; nil when absent or
// when any element is not a string.
func (a *Ad) GetStrings(name string) []string {
	l, ok := a.Eval(name).ListVal()
	if !ok {
		return nil
	}
	out := make([]string, len(l))
	for i, v := range l {
		s, ok := v.StringVal()
		if !ok {
			return nil
		}
		out[i] = s
	}
	return out
}

// Clone returns a deep-enough copy: expressions are immutable once
// parsed, so sharing them is safe; the attribute table is copied.
func (a *Ad) Clone() *Ad {
	c := New()
	for _, n := range a.names {
		c.Set(n, a.attrs[strings.ToLower(n)])
	}
	return c
}

// Merge copies every attribute of b into a, overwriting duplicates.
func (a *Ad) Merge(b *Ad) *Ad {
	for _, n := range b.names {
		a.Set(n, b.attrs[strings.ToLower(n)])
	}
	return a
}

// Match reports whether both ads' Requirements expressions evaluate to
// true against each other — the symmetric matchmaking test. An ad with
// no Requirements attribute imposes no constraint.
func Match(a, b *Ad) bool {
	return halfMatch(a, b) && halfMatch(b, a)
}

func halfMatch(a, b *Ad) bool {
	if _, ok := a.Lookup("Requirements"); !ok {
		return true
	}
	return a.EvalAgainst("Requirements", b).IsTrue()
}

// Rank evaluates a's Rank expression against b, returning 0 when absent
// or non-numeric. Higher is better, as in matchmaking.
func Rank(a, b *Ad) float64 {
	f, ok := a.EvalAgainst("Rank", b).Number()
	if !ok {
		return 0
	}
	return f
}

// String renders the ad in classad source syntax:
//
//	[ Name = "vm1"; Memory = 64; Requirements = other.Disk > 100 ]
func (a *Ad) String() string {
	var b strings.Builder
	b.WriteString("[ ")
	for i, n := range a.names {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s = %s", n, a.attrs[strings.ToLower(n)].String())
	}
	b.WriteString(" ]")
	return b.String()
}

// Parse parses an ad in classad source syntax.
func Parse(src string) (*Ad, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	if _, err := p.expect(tokLBracket, "'['"); err != nil {
		return nil, err
	}
	ad := New()
	for {
		if p.peek().kind == tokRBracket {
			p.advance()
			break
		}
		nameTok, err := p.expect(tokIdent, "attribute name")
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokAssign, "'='"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ad.Set(nameTok.text, e)
		switch p.peek().kind {
		case tokSemi:
			p.advance()
		case tokRBracket:
		default:
			return nil, fmt.Errorf("classad: offset %d: expected ';' or ']'", p.peek().pos)
		}
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("classad: trailing input at offset %d", p.peek().pos)
	}
	return ad, nil
}

// MustParse is Parse, panicking on error.
func MustParse(src string) *Ad {
	ad, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return ad
}

// xmlAd is the wire form used by the service protocol: each attribute
// carried as classad source text so arbitrary expressions round-trip.
type xmlAd struct {
	XMLName xml.Name  `xml:"classad"`
	Attrs   []xmlAttr `xml:"attr"`
}

type xmlAttr struct {
	Name string `xml:"name,attr"`
	Expr string `xml:",chardata"`
}

// MarshalXML encodes the ad as <classad><attr name=...>expr</attr>...</classad>.
func (a *Ad) MarshalXML(e *xml.Encoder, start xml.StartElement) error {
	x := xmlAd{}
	for _, n := range a.names {
		x.Attrs = append(x.Attrs, xmlAttr{Name: n, Expr: a.attrs[strings.ToLower(n)].String()})
	}
	start.Name = xml.Name{Local: "classad"}
	return e.EncodeElement(x, start)
}

// UnmarshalXML decodes the wire form produced by MarshalXML.
func (a *Ad) UnmarshalXML(d *xml.Decoder, start xml.StartElement) error {
	var x xmlAd
	if err := d.DecodeElement(&x, &start); err != nil {
		return err
	}
	if a.attrs == nil {
		a.attrs = make(map[string]Expr)
	}
	for _, at := range x.Attrs {
		ex, err := ParseExpr(at.Expr)
		if err != nil {
			return fmt.Errorf("classad: attribute %q: %w", at.Name, err)
		}
		a.Set(at.Name, ex)
	}
	return nil
}

// SortedDebugString renders attributes sorted by name; handy in tests
// where insertion order is incidental.
func (a *Ad) SortedDebugString() string {
	names := a.Names()
	sort.Slice(names, func(i, j int) bool {
		return strings.ToLower(names[i]) < strings.ToLower(names[j])
	})
	var b strings.Builder
	b.WriteString("[ ")
	for i, n := range names {
		if i > 0 {
			b.WriteString("; ")
		}
		fmt.Fprintf(&b, "%s = %s", n, a.attrs[strings.ToLower(n)].String())
	}
	b.WriteString(" ]")
	return b.String()
}
