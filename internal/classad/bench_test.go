package classad

import "testing"

func BenchmarkParseExpr(b *testing.B) {
	src := `TARGET.FreeMemory >= MY.Memory && member("vnc", TARGET.Packages) && (MY.Rank * 2 + 1) > 3`
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ParseExpr(src); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMatch(b *testing.B) {
	job := MustParse(`[ Memory = 64; OS = "linux"; Requirements = TARGET.FreeMemory >= MY.Memory && TARGET.OS == MY.OS ]`)
	machine := MustParse(`[ FreeMemory = 256; OS = "linux"; MaxJobs = 4; RunningJobs = 1; Requirements = MY.RunningJobs < MY.MaxJobs ]`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !Match(job, machine) {
			b.Fatal("no match")
		}
	}
}

func BenchmarkAdString(b *testing.B) {
	ad := MustParse(`[ VMID = "vm-1"; Memory = 64; Tags = {"a","b","c"}; Req = TARGET.X > 1 ]`)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = ad.String()
	}
}
