package classad

import (
	"encoding/xml"
	"strings"
	"testing"
	"testing/quick"
)

// evalStr parses and evaluates an expression with no ad context.
func evalStr(t *testing.T, src string) Value {
	t.Helper()
	e, err := ParseExpr(src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	return New().EvalExpr(e, nil)
}

func TestArithmetic(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"1 + 2", Int(3)},
		{"2 * 3 + 4", Int(10)},
		{"2 + 3 * 4", Int(14)},
		{"(2 + 3) * 4", Int(20)},
		{"10 / 4", Int(2)},
		{"10 % 4", Int(2)},
		{"10.0 / 4", Real(2.5)},
		{"1 + 2.5", Real(3.5)},
		{"-3 + 1", Int(-2)},
		{"- 3 * 2", Int(-6)},
		{"\"foo\" + \"bar\"", Str("foobar")},
		{"2e3", Real(2000)},
		{"1.5e-1", Real(0.15)},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src); !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestDivideByZeroIsError(t *testing.T) {
	for _, src := range []string{"1/0", "1%0", "1.0/0.0"} {
		if got := evalStr(t, src); !got.IsError() {
			t.Errorf("%s = %v, want error", src, got)
		}
	}
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		src  string
		want bool
	}{
		{"1 < 2", true},
		{"2 <= 2", true},
		{"3 > 2.5", true},
		{"2 >= 3", false},
		{"2 == 2.0", true},
		{"2 != 2", false},
		{"\"abc\" == \"ABC\"", true}, // case-insensitive
		{"\"abc\" < \"abd\"", true},
		{"true == true", true},
		{"true != false", true},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src); !got.Equal(Bool(c.want)) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestThreeValuedLogic(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{"false && undefined", Bool(false)},
		{"undefined && false", Bool(false)},
		{"true && undefined", Undefined()},
		{"true || undefined", Bool(true)},
		{"undefined || true", Bool(true)},
		{"false || undefined", Undefined()},
		{"!undefined", Undefined()},
		{"undefined + 1", Undefined()},
		{"undefined == undefined", Undefined()},
		{"undefined =?= undefined", Bool(true)},
		{"undefined =!= undefined", Bool(false)},
		{"1 =?= 1.0", Bool(false)}, // is-identical is strict on type
		{"1 == 1.0", Bool(true)},
		{"error && false", Errorf("")},
		{"true && error", Errorf("")},
	}
	for _, c := range cases {
		got := evalStr(t, c.src)
		if got.Kind() != c.want.Kind() {
			t.Errorf("%s = %v (%v), want kind %v", c.src, got, got.Kind(), c.want.Kind())
			continue
		}
		if c.want.Kind() == KindBool && !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestConditionalExpr(t *testing.T) {
	if got := evalStr(t, "1 < 2 ? \"yes\" : \"no\""); !got.Equal(Str("yes")) {
		t.Errorf("got %v", got)
	}
	if got := evalStr(t, "undefined ? 1 : 2"); !got.IsUndefined() {
		t.Errorf("undefined condition → %v, want undefined", got)
	}
}

func TestBuiltins(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{`member("b", {"a", "b", "c"})`, Bool(true)},
		{`member("B", {"a", "b"})`, Bool(true)}, // case-insensitive
		{`member(2, {1, 2, 3})`, Bool(true)},
		{`member(4, {1, 2, 3})`, Bool(false)},
		{`size({1,2,3})`, Int(3)},
		{`size("hello")`, Int(5)},
		{`strcat("a", "b", "c")`, Str("abc")},
		{`toLower("ABC")`, Str("abc")},
		{`toUpper("abc")`, Str("ABC")},
		{`int(3.7)`, Int(3)},
		{`real(3)`, Real(3)},
		{`floor(3.7)`, Int(3)},
		{`ceiling(3.2)`, Int(4)},
		{`min(3, 1, 2)`, Int(1)},
		{`max({3, 1, 2})`, Int(3)},
		{`min(1, 2.5)`, Real(1)},
		{`ifThenElse(true, 1, 2)`, Int(1)},
		{`ifThenElse(false, 1, 2)`, Int(2)},
		{`isUndefined(undefined)`, Bool(true)},
		{`isUndefined(1)`, Bool(false)},
		{`isError(1/0)`, Bool(true)},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src); !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
}

func TestUnknownFunctionIsParseError(t *testing.T) {
	if _, err := ParseExpr("bogus(1)"); err == nil {
		t.Error("expected parse error for unknown function")
	}
}

func TestParseErrors(t *testing.T) {
	for _, src := range []string{
		"1 +", "(1", "{1, 2", `"unterminated`, "a & b", "a | b",
		"1 ? 2", "foo.bar", "=?", "@",
	} {
		if _, err := ParseExpr(src); err == nil {
			t.Errorf("ParseExpr(%q) succeeded, want error", src)
		}
	}
}

func TestAttributeResolution(t *testing.T) {
	ad := MustParse(`[ Memory = 64; Doubled = Memory * 2; Name = "vm" ]`)
	if got := ad.Eval("Doubled"); !got.Equal(Int(128)) {
		t.Errorf("Doubled = %v", got)
	}
	// Case-insensitive lookup.
	if got := ad.Eval("mEmOrY"); !got.Equal(Int(64)) {
		t.Errorf("case-insensitive lookup = %v", got)
	}
	if got := ad.Eval("Missing"); !got.IsUndefined() {
		t.Errorf("missing attr = %v, want undefined", got)
	}
}

func TestCyclicReferenceIsError(t *testing.T) {
	ad := MustParse(`[ A = B; B = A ]`)
	if got := ad.Eval("A"); !got.IsError() {
		t.Errorf("cyclic eval = %v, want error", got)
	}
	self := MustParse(`[ X = X + 1 ]`)
	if got := self.Eval("X"); !got.IsError() {
		t.Errorf("self-recursive eval = %v, want error", got)
	}
}

func TestScopedReferences(t *testing.T) {
	vm := MustParse(`[ Memory = 64; Requirements = TARGET.FreeMemory >= MY.Memory ]`)
	host := MustParse(`[ FreeMemory = 128 ]`)
	if got := vm.EvalAgainst("Requirements", host); !got.IsTrue() {
		t.Errorf("Requirements = %v, want true", got)
	}
	small := MustParse(`[ FreeMemory = 32 ]`)
	if got := vm.EvalAgainst("Requirements", small); got.IsTrue() {
		t.Errorf("Requirements against small host = %v, want false", got)
	}
	// self/other aliases.
	alt := MustParse(`[ Memory = 64; Requirements = other.FreeMemory >= self.Memory ]`)
	if got := alt.EvalAgainst("Requirements", host); !got.IsTrue() {
		t.Errorf("alias Requirements = %v", got)
	}
}

func TestUnscopedFallbackToTarget(t *testing.T) {
	req := MustParse(`[ Requirements = FreeMemory > 100 ]`)
	host := MustParse(`[ FreeMemory = 128 ]`)
	if got := req.EvalAgainst("Requirements", host); !got.IsTrue() {
		t.Errorf("fallback resolution = %v, want true", got)
	}
}

func TestSymmetricMatch(t *testing.T) {
	job := MustParse(`[ Memory = 64; OS = "linux"; Requirements = TARGET.FreeMemory >= MY.Memory && TARGET.OS == MY.OS ]`)
	machine := MustParse(`[ FreeMemory = 256; OS = "Linux"; MaxJobs = 4; RunningJobs = 1; Requirements = MY.RunningJobs < MY.MaxJobs ]`)
	if !Match(job, machine) {
		t.Error("job/machine should match")
	}
	busy := MustParse(`[ FreeMemory = 256; OS = "Linux"; MaxJobs = 4; RunningJobs = 4; Requirements = MY.RunningJobs < MY.MaxJobs ]`)
	if Match(job, busy) {
		t.Error("busy machine should not match")
	}
}

func TestMatchUndefinedRequirementsFails(t *testing.T) {
	a := MustParse(`[ Requirements = TARGET.Nonexistent > 1 ]`)
	b := MustParse(`[ X = 1 ]`)
	if Match(a, b) {
		t.Error("undefined Requirements must not match")
	}
}

func TestRank(t *testing.T) {
	a := MustParse(`[ Rank = TARGET.Speed * 2 ]`)
	b := MustParse(`[ Speed = 10 ]`)
	if got := Rank(a, b); got != 20 {
		t.Errorf("Rank = %v, want 20", got)
	}
	if got := Rank(b, a); got != 0 {
		t.Errorf("missing Rank = %v, want 0", got)
	}
}

func TestAdSettersAndGetters(t *testing.T) {
	ad := New().
		SetString("Name", "vm1").
		SetInt("Memory", 64).
		SetReal("Load", 0.5).
		SetBool("Active", true).
		SetStrings("Tags", "a", "b")
	if ad.GetString("Name", "") != "vm1" {
		t.Error("GetString")
	}
	if ad.GetInt("Memory", 0) != 64 {
		t.Error("GetInt")
	}
	if ad.GetReal("Load", 0) != 0.5 {
		t.Error("GetReal")
	}
	if !ad.GetBool("Active", false) {
		t.Error("GetBool")
	}
	tags := ad.GetStrings("Tags")
	if len(tags) != 2 || tags[0] != "a" || tags[1] != "b" {
		t.Errorf("GetStrings = %v", tags)
	}
	if ad.GetString("Missing", "dflt") != "dflt" {
		t.Error("default not returned")
	}
	if ad.GetInt("Name", -1) != -1 {
		t.Error("type-mismatch default not returned")
	}
}

func TestSetOverwritesKeepingOrder(t *testing.T) {
	ad := New().SetInt("A", 1).SetInt("B", 2)
	ad.SetInt("a", 10)
	names := ad.Names()
	if len(names) != 2 || names[0] != "A" {
		t.Errorf("names = %v", names)
	}
	if ad.GetInt("A", 0) != 10 {
		t.Error("overwrite failed")
	}
}

func TestDelete(t *testing.T) {
	ad := New().SetInt("A", 1).SetInt("B", 2)
	if !ad.Delete("a") {
		t.Error("Delete reported false")
	}
	if ad.Len() != 1 || ad.Names()[0] != "B" {
		t.Errorf("after delete: %v", ad.Names())
	}
	if ad.Delete("a") {
		t.Error("double delete reported true")
	}
}

func TestCloneIsIndependent(t *testing.T) {
	a := New().SetInt("X", 1)
	b := a.Clone()
	b.SetInt("X", 2)
	b.SetInt("Y", 3)
	if a.GetInt("X", 0) != 1 || a.Len() != 1 {
		t.Error("clone mutated original")
	}
}

func TestMergeOverwrites(t *testing.T) {
	a := New().SetInt("X", 1).SetInt("Y", 2)
	b := New().SetInt("Y", 20).SetInt("Z", 30)
	a.Merge(b)
	if a.GetInt("Y", 0) != 20 || a.GetInt("Z", 0) != 30 || a.GetInt("X", 0) != 1 {
		t.Errorf("merge result: %s", a)
	}
}

func TestAdStringRoundTrip(t *testing.T) {
	src := `[ Name = "vm-1"; Memory = 64; Req = (TARGET.FreeMemory >= MY.Memory); Tags = {"x", "y"}; Score = (Memory * 2) ]`
	ad := MustParse(src)
	back, err := Parse(ad.String())
	if err != nil {
		t.Fatalf("re-parse %q: %v", ad.String(), err)
	}
	if back.Len() != ad.Len() {
		t.Fatalf("round trip lost attrs: %s vs %s", back, ad)
	}
	if got := back.Eval("Score"); !got.Equal(Int(128)) {
		t.Errorf("Score after round trip = %v", got)
	}
}

func TestXMLRoundTrip(t *testing.T) {
	ad := New().
		SetString("VMID", "vm-42").
		SetInt("Memory", 256).
		SetStrings("Actions", "install-os", "create-user")
	ad.SetExprString("Requirements", "TARGET.Disk >= 2048")

	blob, err := xml.Marshal(ad)
	if err != nil {
		t.Fatal(err)
	}
	got := New()
	if err := xml.Unmarshal(blob, got); err != nil {
		t.Fatalf("unmarshal %s: %v", blob, err)
	}
	if got.GetString("VMID", "") != "vm-42" || got.GetInt("Memory", 0) != 256 {
		t.Errorf("round trip: %s", got)
	}
	if ex, ok := got.Lookup("Requirements"); !ok || !strings.Contains(ex.String(), ">=") {
		t.Errorf("Requirements lost: %v", ex)
	}
	if tags := got.GetStrings("Actions"); len(tags) != 2 {
		t.Errorf("Actions = %v", tags)
	}
}

func TestXMLSpecialCharsInStrings(t *testing.T) {
	ad := New().SetString("Weird", `a<b&"c"\n`)
	blob, err := xml.Marshal(ad)
	if err != nil {
		t.Fatal(err)
	}
	got := New()
	if err := xml.Unmarshal(blob, got); err != nil {
		t.Fatal(err)
	}
	if got.GetString("Weird", "") != `a<b&"c"\n` {
		t.Errorf("got %q", got.GetString("Weird", ""))
	}
}

func TestExprStringParseEvalAgreement(t *testing.T) {
	// Property: printing a parsed expression and re-parsing yields the
	// same value. Drive with a grammar of random arithmetic exprs.
	cfg := &quick.Config{MaxCount: 200}
	f := func(a, b int16, c uint8) bool {
		src := ""
		switch c % 5 {
		case 0:
			src = "(%d + %d)"
		case 1:
			src = "(%d - %d)"
		case 2:
			src = "(%d * %d)"
		case 3:
			src = "(%d < %d)"
		default:
			src = "(%d >= %d)"
		}
		src = strings.ReplaceAll(src, "%d", "")
		_ = src
		return true
	}
	_ = f
	check := func(a, b int16, op uint8) bool {
		ops := []string{"+", "-", "*", "<", ">=", "==", "!="}
		src := "(" + Int(int64(a)).String() + " " + ops[int(op)%len(ops)] + " " + Int(int64(b)).String() + ")"
		e1, err := ParseExpr(src)
		if err != nil {
			return false
		}
		e2, err := ParseExpr(e1.String())
		if err != nil {
			return false
		}
		v1 := New().EvalExpr(e1, nil)
		v2 := New().EvalExpr(e2, nil)
		return v1.Equal(v2)
	}
	if err := quick.Check(check, cfg); err != nil {
		t.Error(err)
	}
}

func TestValueStringForms(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Undefined(), "undefined"},
		{Bool(true), "true"},
		{Int(-3), "-3"},
		{Real(2.5), "2.5"},
		{Str("a\"b"), `"a\"b"`},
		{List(Int(1), Str("x")), `{1, "x"}`},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	ad, err := Parse("[ // a comment\n  A = 1; // trailing\n  B = 2 ]")
	if err != nil {
		t.Fatal(err)
	}
	if ad.GetInt("A", 0) != 1 || ad.GetInt("B", 0) != 2 {
		t.Errorf("parsed %s", ad)
	}
}

// Property: the parser never panics and, when it accepts input,
// printing and re-parsing yields an expression that evaluates to an
// equal value — over adversarial byte soup built from language tokens.
func TestParserRobustnessProperty(t *testing.T) {
	fragments := []string{
		"(", ")", "[", "]", "{", "}", "&&", "||", "==", "!=", "=?=", "=!=",
		"<", "<=", ">", ">=", "+", "-", "*", "/", "%", "?", ":", ";", ",",
		"1", "2.5", `"str"`, "true", "false", "undefined", "error",
		"Memory", "TARGET.x", "MY.y", "member", "size", " ", "\n", "//c\n",
		"\"", "\\", "=", ".", "1e9", "0x", "@",
	}
	check := func(picks []uint8) bool {
		var b strings.Builder
		for _, p := range picks {
			b.WriteString(fragments[int(p)%len(fragments)])
		}
		src := b.String()
		e1, err := ParseExpr(src)
		if err != nil {
			return true // rejection is fine; panics are not
		}
		e2, err := ParseExpr(e1.String())
		if err != nil {
			t.Logf("accepted %q but rejected its own print %q: %v", src, e1.String(), err)
			return false
		}
		v1 := New().EvalExpr(e1, nil)
		v2 := New().EvalExpr(e2, nil)
		if v1.Kind() != v2.Kind() {
			return false
		}
		if v1.Kind() != KindError && !v1.Equal(v2) {
			return false
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// Property: Ad.Parse never panics on token soup either.
func TestAdParserRobustnessProperty(t *testing.T) {
	check := func(s string) bool {
		Parse(s) // must not panic
		Parse("[" + s + "]")
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestRegexpBuiltin(t *testing.T) {
	cases := []struct {
		src  string
		want Value
	}{
		{`regexp("^vm-", "vm-shop-1")`, Bool(true)},
		{`regexp("^vm-", "shop-1")`, Bool(false)},
		{`regexp("\\.edu$", "ufl.edu")`, Bool(true)},
	}
	for _, c := range cases {
		if got := evalStr(t, c.src); !got.Equal(c.want) {
			t.Errorf("%s = %v, want %v", c.src, got, c.want)
		}
	}
	if got := evalStr(t, `regexp("(", "x")`); !got.IsError() {
		t.Errorf("bad pattern = %v, want error", got)
	}
	if got := evalStr(t, `regexp(1, "x")`); !got.IsError() {
		t.Errorf("non-string pattern = %v, want error", got)
	}
}
