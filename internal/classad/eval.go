package classad

import (
	"math"
	"regexp"
	"strings"
)

// env is the evaluation environment: the ad in whose scope evaluation
// started (self), the candidate it is being matched against (target,
// possibly nil), and a stack of in-progress attribute lookups for cycle
// detection.
type env struct {
	self   *Ad
	target *Ad
	stack  []string // "scope\x00name" entries currently being evaluated
}

func (e *env) push(scope, name string) bool {
	key := scope + "\x00" + strings.ToLower(name)
	for _, k := range e.stack {
		if k == key {
			return false // cycle
		}
	}
	e.stack = append(e.stack, key)
	return true
}

func (e *env) pop() { e.stack = e.stack[:len(e.stack)-1] }

func (e litExpr) eval(*env) Value { return e.v }

func (e attrExpr) eval(en *env) Value {
	lookup := func(ad *Ad, scope string) (Value, bool) {
		if ad == nil {
			return Undefined(), false
		}
		ex, ok := ad.Lookup(e.name)
		if !ok {
			return Undefined(), false
		}
		if !en.push(scope, e.name) {
			return Errorf("cyclic reference to %q", e.name), true
		}
		defer en.pop()
		// Attribute bodies evaluate with "self" rebound to the ad that
		// defines them, per classad scoping.
		sub := &env{self: ad, target: en.otherOf(ad), stack: en.stack}
		v := ex.eval(sub)
		return v, true
	}
	switch e.scope {
	case "my":
		v, _ := lookup(en.self, "my")
		return v
	case "target":
		v, _ := lookup(en.target, "target")
		return v
	default:
		if v, ok := lookup(en.self, "my"); ok {
			return v
		}
		if v, ok := lookup(en.target, "target"); ok {
			return v
		}
		return Undefined()
	}
}

// otherOf returns the counterpart ad of ad within this environment.
func (e *env) otherOf(ad *Ad) *Ad {
	if ad == e.self {
		return e.target
	}
	return e.self
}

func (e unaryExpr) eval(env *env) Value {
	v := e.x.eval(env)
	if v.IsError() {
		return v
	}
	switch e.op {
	case "!":
		if v.IsUndefined() {
			return v
		}
		if b, ok := v.BoolVal(); ok {
			return Bool(!b)
		}
		return Errorf("! applied to %s", v.Kind())
	case "-":
		if v.IsUndefined() {
			return v
		}
		if i, ok := v.IntVal(); ok {
			return Int(-i)
		}
		if r, ok := v.RealVal(); ok {
			return Real(-r)
		}
		return Errorf("unary - applied to %s", v.Kind())
	}
	return Errorf("unknown unary op %q", e.op)
}

func (e binaryExpr) eval(env *env) Value {
	switch e.op {
	case "&&":
		return evalAnd(e.x.eval(env), func() Value { return e.y.eval(env) })
	case "||":
		return evalOr(e.x.eval(env), func() Value { return e.y.eval(env) })
	case "=?=":
		return Bool(e.x.eval(env).Equal(e.y.eval(env)))
	case "=!=":
		return Bool(!e.x.eval(env).Equal(e.y.eval(env)))
	}
	x, y := e.x.eval(env), e.y.eval(env)
	if x.IsError() {
		return x
	}
	if y.IsError() {
		return y
	}
	if x.IsUndefined() || y.IsUndefined() {
		return Undefined()
	}
	switch e.op {
	case "+", "-", "*", "/", "%":
		return evalArith(e.op, x, y)
	case "==", "!=", "<", "<=", ">", ">=":
		return evalCompare(e.op, x, y)
	}
	return Errorf("unknown binary op %q", e.op)
}

// evalAnd implements classad three-valued conjunction: false dominates
// UNDEFINED, ERROR dominates everything.
func evalAnd(x Value, ry func() Value) Value {
	if x.IsError() {
		return x
	}
	if b, ok := x.BoolVal(); ok && !b {
		return Bool(false)
	}
	y := ry()
	if y.IsError() {
		return y
	}
	if b, ok := y.BoolVal(); ok && !b {
		return Bool(false)
	}
	if x.IsUndefined() || y.IsUndefined() {
		return Undefined()
	}
	bx, okx := x.BoolVal()
	by, oky := y.BoolVal()
	if !okx || !oky {
		return Errorf("&& applied to %s and %s", x.Kind(), y.Kind())
	}
	return Bool(bx && by)
}

// evalOr implements three-valued disjunction: true dominates UNDEFINED.
func evalOr(x Value, ry func() Value) Value {
	if x.IsError() {
		return x
	}
	if b, ok := x.BoolVal(); ok && b {
		return Bool(true)
	}
	y := ry()
	if y.IsError() {
		return y
	}
	if b, ok := y.BoolVal(); ok && b {
		return Bool(true)
	}
	if x.IsUndefined() || y.IsUndefined() {
		return Undefined()
	}
	bx, okx := x.BoolVal()
	by, oky := y.BoolVal()
	if !okx || !oky {
		return Errorf("|| applied to %s and %s", x.Kind(), y.Kind())
	}
	return Bool(bx || by)
}

func evalArith(op string, x, y Value) Value {
	xi, xIsInt := x.IntVal()
	yi, yIsInt := y.IntVal()
	if xIsInt && yIsInt {
		switch op {
		case "+":
			return Int(xi + yi)
		case "-":
			return Int(xi - yi)
		case "*":
			return Int(xi * yi)
		case "/":
			if yi == 0 {
				return Errorf("division by zero")
			}
			return Int(xi / yi)
		case "%":
			if yi == 0 {
				return Errorf("modulo by zero")
			}
			return Int(xi % yi)
		}
	}
	// String concatenation via +.
	if op == "+" {
		if xs, ok := x.StringVal(); ok {
			if ys, ok := y.StringVal(); ok {
				return Str(xs + ys)
			}
		}
	}
	xf, okx := x.Number()
	yf, oky := y.Number()
	if !okx || !oky {
		return Errorf("%s applied to %s and %s", op, x.Kind(), y.Kind())
	}
	switch op {
	case "+":
		return Real(xf + yf)
	case "-":
		return Real(xf - yf)
	case "*":
		return Real(xf * yf)
	case "/":
		if yf == 0 {
			return Errorf("division by zero")
		}
		return Real(xf / yf)
	case "%":
		if yf == 0 {
			return Errorf("modulo by zero")
		}
		return Real(math.Mod(xf, yf))
	}
	return Errorf("unknown arithmetic op %q", op)
}

func evalCompare(op string, x, y Value) Value {
	// Numeric comparison with int/real coercion.
	if xf, ok := x.Number(); ok {
		yf, ok := y.Number()
		if !ok {
			return Errorf("%s applied to %s and %s", op, x.Kind(), y.Kind())
		}
		return cmpResult(op, compareFloats(xf, yf))
	}
	if xs, ok := x.StringVal(); ok {
		ys, ok := y.StringVal()
		if !ok {
			return Errorf("%s applied to %s and %s", op, x.Kind(), y.Kind())
		}
		// Classad string comparison is case-insensitive.
		return cmpResult(op, strings.Compare(strings.ToLower(xs), strings.ToLower(ys)))
	}
	if xb, ok := x.BoolVal(); ok {
		yb, ok := y.BoolVal()
		if !ok {
			return Errorf("%s applied to %s and %s", op, x.Kind(), y.Kind())
		}
		switch op {
		case "==":
			return Bool(xb == yb)
		case "!=":
			return Bool(xb != yb)
		}
		return Errorf("%s not defined on booleans", op)
	}
	return Errorf("%s applied to %s and %s", op, x.Kind(), y.Kind())
}

func compareFloats(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpResult(op string, c int) Value {
	switch op {
	case "==":
		return Bool(c == 0)
	case "!=":
		return Bool(c != 0)
	case "<":
		return Bool(c < 0)
	case "<=":
		return Bool(c <= 0)
	case ">":
		return Bool(c > 0)
	case ">=":
		return Bool(c >= 0)
	}
	return Errorf("unknown comparison %q", op)
}

func (e condExpr) eval(env *env) Value {
	c := e.c.eval(env)
	if c.IsError() || c.IsUndefined() {
		return c
	}
	b, ok := c.BoolVal()
	if !ok {
		return Errorf("condition of ?: is %s", c.Kind())
	}
	if b {
		return e.a.eval(env)
	}
	return e.b.eval(env)
}

func (e listExpr) eval(env *env) Value {
	vs := make([]Value, len(e.elems))
	for i, x := range e.elems {
		vs[i] = x.eval(env)
	}
	return List(vs...)
}

// builtins maps lower-case function names to implementations.
var builtins = map[string]func(args []Value) Value{
	"member": func(args []Value) Value {
		if len(args) != 2 {
			return Errorf("member wants 2 args")
		}
		l, ok := args[1].ListVal()
		if !ok {
			return Errorf("member: second arg is %s, want list", args[1].Kind())
		}
		for _, e := range l {
			if looseEqual(args[0], e) {
				return Bool(true)
			}
		}
		return Bool(false)
	},
	"size": func(args []Value) Value {
		if len(args) != 1 {
			return Errorf("size wants 1 arg")
		}
		if l, ok := args[0].ListVal(); ok {
			return Int(int64(len(l)))
		}
		if s, ok := args[0].StringVal(); ok {
			return Int(int64(len(s)))
		}
		return Errorf("size: arg is %s", args[0].Kind())
	},
	"strcat": func(args []Value) Value {
		var b strings.Builder
		for _, a := range args {
			s, ok := a.StringVal()
			if !ok {
				return Errorf("strcat: arg is %s", a.Kind())
			}
			b.WriteString(s)
		}
		return Str(b.String())
	},
	"tolower": func(args []Value) Value {
		if len(args) != 1 {
			return Errorf("tolower wants 1 arg")
		}
		s, ok := args[0].StringVal()
		if !ok {
			return Errorf("tolower: arg is %s", args[0].Kind())
		}
		return Str(strings.ToLower(s))
	},
	"toupper": func(args []Value) Value {
		if len(args) != 1 {
			return Errorf("toupper wants 1 arg")
		}
		s, ok := args[0].StringVal()
		if !ok {
			return Errorf("toupper: arg is %s", args[0].Kind())
		}
		return Str(strings.ToUpper(s))
	},
	"int": func(args []Value) Value {
		if len(args) != 1 {
			return Errorf("int wants 1 arg")
		}
		if f, ok := args[0].Number(); ok {
			return Int(int64(f))
		}
		return Errorf("int: arg is %s", args[0].Kind())
	},
	"real": func(args []Value) Value {
		if len(args) != 1 {
			return Errorf("real wants 1 arg")
		}
		if f, ok := args[0].Number(); ok {
			return Real(f)
		}
		return Errorf("real: arg is %s", args[0].Kind())
	},
	"floor": func(args []Value) Value {
		if len(args) != 1 {
			return Errorf("floor wants 1 arg")
		}
		if f, ok := args[0].Number(); ok {
			return Int(int64(math.Floor(f)))
		}
		return Errorf("floor: arg is %s", args[0].Kind())
	},
	"ceiling": func(args []Value) Value {
		if len(args) != 1 {
			return Errorf("ceiling wants 1 arg")
		}
		if f, ok := args[0].Number(); ok {
			return Int(int64(math.Ceil(f)))
		}
		return Errorf("ceiling: arg is %s", args[0].Kind())
	},
	"min": func(args []Value) Value { return minMax(args, -1) },
	"max": func(args []Value) Value { return minMax(args, 1) },
	"ifthenelse": func(args []Value) Value {
		if len(args) != 3 {
			return Errorf("ifThenElse wants 3 args")
		}
		if args[0].IsError() || args[0].IsUndefined() {
			return args[0]
		}
		b, ok := args[0].BoolVal()
		if !ok {
			return Errorf("ifThenElse: condition is %s", args[0].Kind())
		}
		if b {
			return args[1]
		}
		return args[2]
	},
	"regexp": func(args []Value) Value {
		if len(args) != 2 {
			return Errorf("regexp wants 2 args (pattern, string)")
		}
		pat, ok := args[0].StringVal()
		if !ok {
			return Errorf("regexp: pattern is %s", args[0].Kind())
		}
		s, ok := args[1].StringVal()
		if !ok {
			return Errorf("regexp: subject is %s", args[1].Kind())
		}
		re, err := regexp.Compile(pat)
		if err != nil {
			return Errorf("regexp: bad pattern: %v", err)
		}
		return Bool(re.MatchString(s))
	},
	"isundefined": func(args []Value) Value {
		if len(args) != 1 {
			return Errorf("isUndefined wants 1 arg")
		}
		return Bool(args[0].IsUndefined())
	},
	"iserror": func(args []Value) Value {
		if len(args) != 1 {
			return Errorf("isError wants 1 arg")
		}
		return Bool(args[0].IsError())
	},
}

func minMax(args []Value, dir int) Value {
	if len(args) == 0 {
		return Errorf("min/max wants at least 1 arg")
	}
	vals := args
	if len(args) == 1 {
		if l, ok := args[0].ListVal(); ok {
			vals = l
		}
	}
	if len(vals) == 0 {
		return Undefined()
	}
	best, ok := vals[0].Number()
	if !ok {
		return Errorf("min/max: arg is %s", vals[0].Kind())
	}
	isInt := vals[0].Kind() == KindInt
	for _, v := range vals[1:] {
		f, ok := v.Number()
		if !ok {
			return Errorf("min/max: arg is %s", v.Kind())
		}
		if v.Kind() != KindInt {
			isInt = false
		}
		if (dir < 0 && f < best) || (dir > 0 && f > best) {
			best = f
		}
	}
	if isInt {
		return Int(int64(best))
	}
	return Real(best)
}

// looseEqual compares with the numeric coercion of ==, falling back to
// strict equality for non-numerics; string comparison is
// case-insensitive as in the language.
func looseEqual(a, b Value) bool {
	if af, ok := a.Number(); ok {
		if bf, ok := b.Number(); ok {
			return af == bf
		}
		return false
	}
	if as, ok := a.StringVal(); ok {
		if bs, ok := b.StringVal(); ok {
			return strings.EqualFold(as, bs)
		}
		return false
	}
	return a.Equal(b)
}

func (e callExpr) eval(env *env) Value {
	fn := builtins[e.name]
	if fn == nil {
		return Errorf("unknown function %q", e.name)
	}
	// isUndefined/isError must see raw values, which eval already
	// produces; evaluate args eagerly.
	args := make([]Value, len(e.args))
	for i, a := range e.args {
		args[i] = a.eval(env)
	}
	return fn(args)
}
