package classad

import (
	"fmt"
	"strconv"
	"strings"
)

// Expr is a parsed classad expression.
type Expr interface {
	// String renders the expression in classad source syntax.
	String() string
	// eval computes the expression's value in the given environment.
	eval(env *env) Value
}

// litExpr is a literal value.
type litExpr struct{ v Value }

func (e litExpr) String() string { return e.v.String() }

// attrExpr is an attribute reference, optionally scoped: x, MY.x,
// TARGET.x (self/other are accepted as aliases for MY/TARGET).
type attrExpr struct {
	scope string // "", "my", or "target" (normalized lower-case)
	name  string
}

func (e attrExpr) String() string {
	if e.scope == "" {
		return e.name
	}
	return e.scope + "." + e.name
}

// unaryExpr is !x or -x.
type unaryExpr struct {
	op string
	x  Expr
}

func (e unaryExpr) String() string { return e.op + e.x.String() }

// binaryExpr is a binary operation.
type binaryExpr struct {
	op   string
	x, y Expr
}

func (e binaryExpr) String() string {
	return "(" + e.x.String() + " " + e.op + " " + e.y.String() + ")"
}

// condExpr is c ? a : b.
type condExpr struct{ c, a, b Expr }

func (e condExpr) String() string {
	return "(" + e.c.String() + " ? " + e.a.String() + " : " + e.b.String() + ")"
}

// listExpr is {a, b, c}.
type listExpr struct{ elems []Expr }

func (e listExpr) String() string {
	parts := make([]string, len(e.elems))
	for i, x := range e.elems {
		parts[i] = x.String()
	}
	return "{" + strings.Join(parts, ", ") + "}"
}

// callExpr is a builtin function call.
type callExpr struct {
	name string
	args []Expr
}

func (e callExpr) String() string {
	parts := make([]string, len(e.args))
	for i, x := range e.args {
		parts[i] = x.String()
	}
	return e.name + "(" + strings.Join(parts, ", ") + ")"
}

// Lit wraps a Value as a constant expression, for building ads in code.
func Lit(v Value) Expr { return litExpr{v} }

// Attr returns an unscoped attribute-reference expression.
func Attr(name string) Expr { return attrExpr{name: name} }

// ParseExpr parses a single classad expression from source text.
func ParseExpr(src string) (Expr, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	e, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokEOF {
		return nil, fmt.Errorf("classad: trailing input at offset %d", p.peek().pos)
	}
	return e, nil
}

// MustParseExpr is ParseExpr, panicking on error; for constants in code.
func MustParseExpr(src string) Expr {
	e, err := ParseExpr(src)
	if err != nil {
		panic(err)
	}
	return e
}

// parser is a recursive-descent parser over a token stream.
type parser struct {
	toks []token
	pos  int
}

func (p *parser) peek() token { return p.toks[p.pos] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if t.kind != tokEOF {
		p.pos++
	}
	return t
}

func (p *parser) expect(k tokKind, what string) (token, error) {
	t := p.peek()
	if t.kind != k {
		return t, fmt.Errorf("classad: offset %d: expected %s, got %q", t.pos, what, t.text)
	}
	return p.advance(), nil
}

// Grammar, lowest to highest precedence:
//
//	expr     := or ('?' expr ':' expr)?
//	or       := and ('||' and)*
//	and      := cmp ('&&' cmp)*
//	cmp      := add (('=='|'!='|'<'|'<='|'>'|'>='|'=?='|'=!=') add)*
//	add      := mul (('+'|'-') mul)*
//	mul      := unary (('*'|'/'|'%') unary)*
//	unary    := ('!'|'-')* primary
//	primary  := literal | list | '(' expr ')' | call | ref
func (p *parser) parseExpr() (Expr, error) {
	c, err := p.parseOr()
	if err != nil {
		return nil, err
	}
	if p.peek().kind != tokQuestion {
		return c, nil
	}
	p.advance()
	a, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokColon, "':'"); err != nil {
		return nil, err
	}
	b, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return condExpr{c: c, a: a, b: b}, nil
}

func (p *parser) parseOr() (Expr, error) {
	x, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokOr {
		p.advance()
		y, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		x = binaryExpr{op: "||", x: x, y: y}
	}
	return x, nil
}

func (p *parser) parseAnd() (Expr, error) {
	x, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.peek().kind == tokAnd {
		p.advance()
		y, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		x = binaryExpr{op: "&&", x: x, y: y}
	}
	return x, nil
}

var cmpOps = map[tokKind]string{
	tokEq: "==", tokNe: "!=", tokLt: "<", tokLe: "<=",
	tokGt: ">", tokGe: ">=", tokMetaEq: "=?=", tokMetaNe: "=!=",
}

func (p *parser) parseCmp() (Expr, error) {
	x, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := cmpOps[p.peek().kind]
		if !ok {
			return x, nil
		}
		p.advance()
		y, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		x = binaryExpr{op: op, x: x, y: y}
	}
}

func (p *parser) parseAdd() (Expr, error) {
	x, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokPlus:
			op = "+"
		case tokMinus:
			op = "-"
		default:
			return x, nil
		}
		p.advance()
		y, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		x = binaryExpr{op: op, x: x, y: y}
	}
}

func (p *parser) parseMul() (Expr, error) {
	x, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		switch p.peek().kind {
		case tokStar:
			op = "*"
		case tokSlash:
			op = "/"
		case tokPercent:
			op = "%"
		default:
			return x, nil
		}
		p.advance()
		y, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		x = binaryExpr{op: op, x: x, y: y}
	}
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.peek().kind {
	case tokNot:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: "!", x: x}, nil
	case tokMinus:
		p.advance()
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return unaryExpr{op: "-", x: x}, nil
	}
	return p.parsePrimary()
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.peek()
	switch t.kind {
	case tokInt:
		p.advance()
		i, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("classad: offset %d: bad integer %q", t.pos, t.text)
		}
		return litExpr{Int(i)}, nil
	case tokReal:
		p.advance()
		r, err := strconv.ParseFloat(t.text, 64)
		if err != nil {
			return nil, fmt.Errorf("classad: offset %d: bad real %q", t.pos, t.text)
		}
		return litExpr{Real(r)}, nil
	case tokString:
		p.advance()
		return litExpr{Str(t.text)}, nil
	case tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, "')'"); err != nil {
			return nil, err
		}
		return e, nil
	case tokLBrace:
		return p.parseList()
	case tokIdent:
		return p.parseRefOrCall()
	}
	return nil, fmt.Errorf("classad: offset %d: unexpected %q", t.pos, t.text)
}

func (p *parser) parseList() (Expr, error) {
	p.advance() // {
	var elems []Expr
	if p.peek().kind == tokRBrace {
		p.advance()
		return listExpr{}, nil
	}
	for {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		elems = append(elems, e)
		switch p.peek().kind {
		case tokComma:
			p.advance()
		case tokRBrace:
			p.advance()
			return listExpr{elems: elems}, nil
		default:
			return nil, fmt.Errorf("classad: offset %d: expected ',' or '}' in list", p.peek().pos)
		}
	}
}

func (p *parser) parseRefOrCall() (Expr, error) {
	t := p.advance() // ident
	switch strings.ToLower(t.text) {
	case "true":
		return litExpr{Bool(true)}, nil
	case "false":
		return litExpr{Bool(false)}, nil
	case "undefined":
		return litExpr{Undefined()}, nil
	case "error":
		return litExpr{Errorf("literal error")}, nil
	}
	// Scoped reference: MY.x, TARGET.x, self.x, other.x.
	if p.peek().kind == tokDot {
		scope := normalizeScope(t.text)
		if scope == "" {
			return nil, fmt.Errorf("classad: offset %d: unknown scope %q (want MY/TARGET/self/other)", t.pos, t.text)
		}
		p.advance() // .
		nameTok, err := p.expect(tokIdent, "attribute name")
		if err != nil {
			return nil, err
		}
		return attrExpr{scope: scope, name: nameTok.text}, nil
	}
	// Function call.
	if p.peek().kind == tokLParen {
		name := strings.ToLower(t.text)
		if _, ok := builtins[name]; !ok {
			return nil, fmt.Errorf("classad: offset %d: unknown function %q", t.pos, t.text)
		}
		p.advance() // (
		var args []Expr
		if p.peek().kind == tokRParen {
			p.advance()
			return callExpr{name: name}, nil
		}
		for {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			args = append(args, a)
			switch p.peek().kind {
			case tokComma:
				p.advance()
			case tokRParen:
				p.advance()
				return callExpr{name: name, args: args}, nil
			default:
				return nil, fmt.Errorf("classad: offset %d: expected ',' or ')' in call", p.peek().pos)
			}
		}
	}
	return attrExpr{name: t.text}, nil
}

func normalizeScope(s string) string {
	switch strings.ToLower(s) {
	case "my", "self":
		return "my"
	case "target", "other":
		return "target"
	}
	return ""
}
