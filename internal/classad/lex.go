package classad

import (
	"fmt"
	"strings"
	"unicode"
)

// tokKind enumerates lexical token types of the classad language.
type tokKind int

const (
	tokEOF tokKind = iota
	tokIdent
	tokInt
	tokReal
	tokString
	tokLParen   // (
	tokRParen   // )
	tokLBrace   // {
	tokRBrace   // }
	tokLBracket // [
	tokRBracket // ]
	tokComma    // ,
	tokSemi     // ;
	tokDot      // .
	tokAssign   // =
	tokPlus     // +
	tokMinus    // -
	tokStar     // *
	tokSlash    // /
	tokPercent  // %
	tokNot      // !
	tokAnd      // &&
	tokOr       // ||
	tokEq       // ==
	tokNe       // !=
	tokLt       // <
	tokLe       // <=
	tokGt       // >
	tokGe       // >=
	tokMetaEq   // =?=  is-identical-to
	tokMetaNe   // =!=  is-not-identical-to
	tokQuestion // ?
	tokColon    // :
)

type token struct {
	kind tokKind
	text string
	pos  int
}

// lexer splits classad source text into tokens.
type lexer struct {
	src  string
	pos  int
	toks []token
}

// lex tokenizes src, returning an error with position on bad input.
func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		l.toks = append(l.toks, t)
		if t.kind == tokEOF {
			return l.toks, nil
		}
	}
}

func (l *lexer) errf(pos int, format string, args ...any) error {
	return fmt.Errorf("classad: offset %d: %s", pos, fmt.Sprintf(format, args...))
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) next() (token, error) {
	// Skip whitespace and comments.
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
	start := l.pos
	if l.pos >= len(l.src) {
		return token{kind: tokEOF, pos: start}, nil
	}
	c := l.src[l.pos]
	switch {
	case isIdentStart(rune(c)):
		for l.pos < len(l.src) && isIdentCont(rune(l.src[l.pos])) {
			l.pos++
		}
		return token{kind: tokIdent, text: l.src[start:l.pos], pos: start}, nil
	case c >= '0' && c <= '9':
		return l.lexNumber(start)
	case c == '"':
		return l.lexString(start)
	}
	l.pos++
	two := ""
	if l.pos < len(l.src) {
		two = l.src[start : l.pos+1]
	}
	switch c {
	case '(':
		return token{kind: tokLParen, text: "(", pos: start}, nil
	case ')':
		return token{kind: tokRParen, text: ")", pos: start}, nil
	case '{':
		return token{kind: tokLBrace, text: "{", pos: start}, nil
	case '}':
		return token{kind: tokRBrace, text: "}", pos: start}, nil
	case '[':
		return token{kind: tokLBracket, text: "[", pos: start}, nil
	case ']':
		return token{kind: tokRBracket, text: "]", pos: start}, nil
	case ',':
		return token{kind: tokComma, text: ",", pos: start}, nil
	case ';':
		return token{kind: tokSemi, text: ";", pos: start}, nil
	case '.':
		return token{kind: tokDot, text: ".", pos: start}, nil
	case '+':
		return token{kind: tokPlus, text: "+", pos: start}, nil
	case '-':
		return token{kind: tokMinus, text: "-", pos: start}, nil
	case '*':
		return token{kind: tokStar, text: "*", pos: start}, nil
	case '/':
		return token{kind: tokSlash, text: "/", pos: start}, nil
	case '%':
		return token{kind: tokPercent, text: "%", pos: start}, nil
	case '?':
		return token{kind: tokQuestion, text: "?", pos: start}, nil
	case ':':
		return token{kind: tokColon, text: ":", pos: start}, nil
	case '!':
		if two == "!=" {
			l.pos++
			return token{kind: tokNe, text: "!=", pos: start}, nil
		}
		return token{kind: tokNot, text: "!", pos: start}, nil
	case '&':
		if two == "&&" {
			l.pos++
			return token{kind: tokAnd, text: "&&", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected %q (did you mean &&?)", c)
	case '|':
		if two == "||" {
			l.pos++
			return token{kind: tokOr, text: "||", pos: start}, nil
		}
		return token{}, l.errf(start, "unexpected %q (did you mean ||?)", c)
	case '=':
		switch two {
		case "==":
			l.pos++
			return token{kind: tokEq, text: "==", pos: start}, nil
		case "=?":
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.pos += 2
				return token{kind: tokMetaEq, text: "=?=", pos: start}, nil
			}
			return token{}, l.errf(start, "malformed =?= operator")
		case "=!":
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '=' {
				l.pos += 2
				return token{kind: tokMetaNe, text: "=!=", pos: start}, nil
			}
			return token{}, l.errf(start, "malformed =!= operator")
		}
		return token{kind: tokAssign, text: "=", pos: start}, nil
	case '<':
		if two == "<=" {
			l.pos++
			return token{kind: tokLe, text: "<=", pos: start}, nil
		}
		return token{kind: tokLt, text: "<", pos: start}, nil
	case '>':
		if two == ">=" {
			l.pos++
			return token{kind: tokGe, text: ">=", pos: start}, nil
		}
		return token{kind: tokGt, text: ">", pos: start}, nil
	}
	return token{}, l.errf(start, "unexpected character %q", c)
}

func (l *lexer) lexNumber(start int) (token, error) {
	isReal := false
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c >= '0' && c <= '9' {
			l.pos++
			continue
		}
		if c == '.' && !isReal && l.pos+1 < len(l.src) && l.src[l.pos+1] >= '0' && l.src[l.pos+1] <= '9' {
			isReal = true
			l.pos++
			continue
		}
		if (c == 'e' || c == 'E') && l.pos+1 < len(l.src) {
			next := l.src[l.pos+1]
			if next >= '0' && next <= '9' || ((next == '+' || next == '-') && l.pos+2 < len(l.src) && l.src[l.pos+2] >= '0' && l.src[l.pos+2] <= '9') {
				isReal = true
				l.pos += 2
				for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
					l.pos++
				}
			}
		}
		break
	}
	kind := tokInt
	if isReal {
		kind = tokReal
	}
	return token{kind: kind, text: l.src[start:l.pos], pos: start}, nil
}

func (l *lexer) lexString(start int) (token, error) {
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		switch c {
		case '"':
			l.pos++
			return token{kind: tokString, text: b.String(), pos: start}, nil
		case '\\':
			l.pos++
			if l.pos >= len(l.src) {
				return token{}, l.errf(start, "unterminated string")
			}
			switch e := l.src[l.pos]; e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '"':
				b.WriteByte('"')
			case '\\':
				b.WriteByte('\\')
			default:
				return token{}, l.errf(l.pos, "unknown escape \\%c", e)
			}
			l.pos++
		default:
			b.WriteByte(c)
			l.pos++
		}
	}
	return token{}, l.errf(start, "unterminated string")
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentCont(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}
