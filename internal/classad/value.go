// Package classad implements the classified-advertisement (classad)
// data model of Raman, Livny and Solomon's Matchmaking framework (HPDC
// 1998), which the VMPlants paper uses to describe virtual machines:
// creation returns "a classad with (attribute,value) pairs" and the VM
// Information System stores classads for active machines.
//
// A classad is an ordered set of attribute definitions whose values are
// expressions over a small language with three-valued logic: evaluation
// may yield UNDEFINED (an attribute reference that resolves nowhere) or
// ERROR (a type mismatch) in addition to ordinary values. Two ads match
// when each ad's Requirements expression evaluates to true in the
// context of the other.
package classad

import (
	"fmt"
	"strconv"
	"strings"
)

// Kind enumerates the runtime types of classad values.
type Kind int

// Value kinds.
const (
	KindUndefined Kind = iota
	KindError
	KindBool
	KindInt
	KindReal
	KindString
	KindList
)

func (k Kind) String() string {
	switch k {
	case KindUndefined:
		return "undefined"
	case KindError:
		return "error"
	case KindBool:
		return "bool"
	case KindInt:
		return "int"
	case KindReal:
		return "real"
	case KindString:
		return "string"
	case KindList:
		return "list"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Value is the result of evaluating a classad expression.
type Value struct {
	kind Kind
	b    bool
	i    int64
	r    float64
	s    string
	l    []Value
	msg  string // for KindError: what went wrong
}

// Constructors.

// Undefined returns the UNDEFINED value.
func Undefined() Value { return Value{kind: KindUndefined} }

// Errorf returns an ERROR value carrying a diagnostic message.
func Errorf(format string, args ...any) Value {
	return Value{kind: KindError, msg: fmt.Sprintf(format, args...)}
}

// Bool returns a boolean value.
func Bool(b bool) Value { return Value{kind: KindBool, b: b} }

// Int returns an integer value.
func Int(i int64) Value { return Value{kind: KindInt, i: i} }

// Real returns a floating-point value.
func Real(r float64) Value { return Value{kind: KindReal, r: r} }

// Str returns a string value.
func Str(s string) Value { return Value{kind: KindString, s: s} }

// List returns a list value.
func List(vs ...Value) Value { return Value{kind: KindList, l: vs} }

// Kind reports the value's runtime type.
func (v Value) Kind() Kind { return v.kind }

// IsUndefined reports whether v is UNDEFINED.
func (v Value) IsUndefined() bool { return v.kind == KindUndefined }

// IsError reports whether v is ERROR.
func (v Value) IsError() bool { return v.kind == KindError }

// ErrMsg returns the diagnostic carried by an ERROR value.
func (v Value) ErrMsg() string { return v.msg }

// BoolVal returns the boolean and ok=true if v is a bool.
func (v Value) BoolVal() (bool, bool) { return v.b, v.kind == KindBool }

// IntVal returns the integer and ok=true if v is an int.
func (v Value) IntVal() (int64, bool) { return v.i, v.kind == KindInt }

// RealVal returns the float and ok=true if v is a real.
func (v Value) RealVal() (float64, bool) { return v.r, v.kind == KindReal }

// StringVal returns the string and ok=true if v is a string.
func (v Value) StringVal() (string, bool) { return v.s, v.kind == KindString }

// ListVal returns the elements and ok=true if v is a list.
func (v Value) ListVal() ([]Value, bool) { return v.l, v.kind == KindList }

// Number returns v as a float64 when v is numeric (int or real).
func (v Value) Number() (float64, bool) {
	switch v.kind {
	case KindInt:
		return float64(v.i), true
	case KindReal:
		return v.r, true
	}
	return 0, false
}

// IsTrue reports whether v is the boolean true.
func (v Value) IsTrue() bool { return v.kind == KindBool && v.b }

// Equal reports strict structural equality (same kind, same contents).
// Unlike the == operator in the expression language it never coerces,
// and UNDEFINED equals UNDEFINED.
func (v Value) Equal(w Value) bool {
	if v.kind != w.kind {
		return false
	}
	switch v.kind {
	case KindUndefined, KindError:
		return true
	case KindBool:
		return v.b == w.b
	case KindInt:
		return v.i == w.i
	case KindReal:
		return v.r == w.r
	case KindString:
		return v.s == w.s
	case KindList:
		if len(v.l) != len(w.l) {
			return false
		}
		for i := range v.l {
			if !v.l[i].Equal(w.l[i]) {
				return false
			}
		}
		return true
	}
	return false
}

// String renders the value in classad literal syntax.
func (v Value) String() string {
	switch v.kind {
	case KindUndefined:
		return "undefined"
	case KindError:
		return "error"
	case KindBool:
		if v.b {
			return "true"
		}
		return "false"
	case KindInt:
		return strconv.FormatInt(v.i, 10)
	case KindReal:
		return strconv.FormatFloat(v.r, 'g', -1, 64)
	case KindString:
		return strconv.Quote(v.s)
	case KindList:
		parts := make([]string, len(v.l))
		for i, e := range v.l {
			parts[i] = e.String()
		}
		return "{" + strings.Join(parts, ", ") + "}"
	}
	return "error"
}
