// Package cluster models the paper's physical testbed (§4.2): an 8-node
// IBM e1350 xSeries cluster (dual 2.4 GHz Pentium-4, 1.5 GB RAM, 18 GB
// SCSI disk per node), a shared NFS storage server holding the VM
// Warehouse, 100 Mbit/s switched Ethernet to the server, and the host
// memory-pressure behaviour responsible for Figure 6's growth of cloning
// time with plant occupancy.
package cluster

import (
	"fmt"
	"time"

	"vmplants/internal/sim"
	"vmplants/internal/storage"
)

// Params are the calibrated constants of the timing model (DESIGN.md §4).
type Params struct {
	// NFSClientBps is the per-node NFS throughput: 100 Mbit/s Ethernet
	// minus protocol overhead ≈ 11 MB/s. It reproduces the paper's
	// ≈210 s full copy of the 2 GB golden disk.
	NFSClientBps float64
	// NFSServerStreams caps concurrent NFS transfers server-side.
	NFSServerStreams int
	// LocalDiskBps is each node's SCSI disk throughput.
	LocalDiskBps float64
	// GigabitBps is node-to-node throughput over the cluster's gigabit
	// interconnect (paper §4.2: "the cluster nodes are interconnected by
	// an Ethernet gigabit switch"), used by VM migration.
	GigabitBps float64
	// TransferOverhead is the fixed per-file cost (open, protocol
	// round-trips); the golden disk spans 16 extent files, so per-file
	// overhead is visible in full copies.
	TransferOverhead time.Duration
	// NodeRAMMB is physical memory per node (1536 MB).
	NodeRAMMB int
	// VMMOverheadMB is host memory consumed per running VM beyond its
	// guest RAM (VMM data structures, host-side caches).
	VMMOverheadMB int
	// PressureThresholdMB is the committed-memory level past which
	// state I/O degrades ("an aggregate of more than 1 GB of host
	// memory", paper §4.3).
	PressureThresholdMB int
	// PressurePerGB is the latency multiplier added per GB of committed
	// memory beyond the threshold.
	PressurePerGB float64
	// JitterSigma is the lognormal spread applied to state-I/O stages.
	JitterSigma float64
}

// DefaultParams returns the calibration used by the experiments.
func DefaultParams() Params {
	return Params{
		NFSClientBps:        11e6,
		NFSServerStreams:    4,
		LocalDiskBps:        35e6,
		GigabitBps:          90e6,
		TransferOverhead:    120 * time.Millisecond,
		NodeRAMMB:           1536,
		VMMOverheadMB:       32,
		PressureThresholdMB: 1024,
		PressurePerGB:       1.6,
		JitterSigma:         0.18,
	}
}

// Node is one physical cluster machine hosting a VMPlant.
type Node struct {
	name        string
	params      Params
	localDisk   *storage.Volume
	lan         *storage.Device // gigabit interconnect to peer nodes
	nfs         *storage.Volume // the shared warehouse volume, via this node's mount
	committedMB int
	vms         int
	rng         *sim.RNG
}

// Name returns the node name.
func (n *Node) Name() string { return n.name }

// LocalDisk returns the node's private volume.
func (n *Node) LocalDisk() *storage.Volume { return n.localDisk }

// Warehouse returns the shared NFS volume as seen from this node.
func (n *Node) Warehouse() *storage.Volume { return n.nfs }

// RNG returns the node's private random stream.
func (n *Node) RNG() *sim.RNG { return n.rng }

// Params returns the node's timing constants.
func (n *Node) Params() Params { return n.params }

// CommittedMB reports guest+VMM memory currently committed on the node.
func (n *Node) CommittedMB() int { return n.committedMB }

// VMs reports how many VMs the node hosts.
func (n *Node) VMs() int { return n.vms }

// FreeMB reports RAM not yet committed (can go negative: hosts
// overcommit and page).
func (n *Node) FreeMB() int { return n.params.NodeRAMMB - n.committedMB }

// Commit reserves host memory for a VM with the given guest RAM.
func (n *Node) Commit(guestMB int) {
	n.committedMB += guestMB + n.params.VMMOverheadMB
	n.vms++
}

// Release returns a VM's memory.
func (n *Node) Release(guestMB int) error {
	if n.vms == 0 {
		return fmt.Errorf("cluster: release on %s with no VMs", n.name)
	}
	n.committedMB -= guestMB + n.params.VMMOverheadMB
	n.vms--
	if n.committedMB < 0 {
		return fmt.Errorf("cluster: negative committed memory on %s", n.name)
	}
	return nil
}

// PressureScale returns the current state-I/O latency multiplier:
// 1.0 while committed memory is under the threshold, then growing
// linearly — the host starts paging VM state, so reading a memory image
// back (a VMware resume) slows down. extraMB lets callers price an
// operation as if a further VM were already committed.
func (n *Node) PressureScale(extraMB int) float64 {
	over := n.committedMB + extraMB - n.params.PressureThresholdMB
	if over <= 0 {
		return 1
	}
	return 1 + n.params.PressurePerGB*float64(over)/1024
}

// SendTo streams size bytes to another node over the gigabit
// interconnect, charging this node's LAN path (receivers keep up: the
// destination disk is faster than the wire for migration-sized state).
func (n *Node) SendTo(p *sim.Proc, dst *Node, size int64) {
	if dst == n || size <= 0 {
		return
	}
	n.lan.Transfer(p, size, n.Jitter())
}

// Jitter samples a multiplicative latency factor with mean 1.
func (n *Node) Jitter() float64 {
	return n.rng.LogNormalMean(1, n.params.JitterSigma)
}

// Testbed is the simulated deployment: nodes plus the shared warehouse
// volume on the storage server.
type Testbed struct {
	Kernel    *sim.Kernel
	Params    Params
	Nodes     []*Node
	Warehouse *storage.Volume // server-side view (for publishing images)
	nfsServer *storage.Device
}

// NewTestbed builds a cluster of n nodes matching the paper's setup.
// All randomness derives from seed.
func NewTestbed(k *sim.Kernel, n int, params Params, seed int64) *Testbed {
	if n <= 0 {
		panic("cluster: need at least one node")
	}
	root := sim.NewRNG(seed)
	server := storage.NewServer("nfs-server", params.NFSClientBps*float64(params.NFSServerStreams),
		params.TransferOverhead, params.NFSServerStreams)
	tb := &Testbed{
		Kernel:    k,
		Params:    params,
		Warehouse: storage.NewVolume("warehouse", server),
		nfsServer: server,
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("node%02d", i)
		// Each node's NFS mount is its own 100 Mbit/s path; the shared
		// server device above bounds aggregate throughput.
		mount := storage.NewDevice(name+".nfs", params.NFSClientBps, params.TransferOverhead)
		mount.ShareSlots(server)
		local := storage.NewDevice(name+".scsi", params.LocalDiskBps, 20*time.Millisecond)
		node := &Node{
			name:      name,
			params:    params,
			localDisk: storage.NewVolume(name+"/disk", local),
			lan:       storage.NewDevice(name+".lan", params.GigabitBps, 5*time.Millisecond),
			nfs:       newMountView(tb.Warehouse, mount),
			rng:       root.Child(),
		}
		tb.Nodes = append(tb.Nodes, node)
	}
	return tb
}

// newMountView wraps the warehouse namespace behind a per-node device:
// the same files, but transfers costed against the node's own NFS path.
// storage.Volume has no view concept, so the mount shares the map via a
// second Volume over the same underlying storage — implemented by
// re-pointing the files map.
func newMountView(server *storage.Volume, dev *storage.Device) *storage.Volume {
	return server.ViewOn(dev)
}
