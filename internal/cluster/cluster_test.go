package cluster

import (
	"testing"
	"time"

	"vmplants/internal/sim"
)

func TestTestbedShape(t *testing.T) {
	k := sim.NewKernel()
	tb := NewTestbed(k, 8, DefaultParams(), 1)
	if len(tb.Nodes) != 8 {
		t.Fatalf("%d nodes", len(tb.Nodes))
	}
	names := map[string]bool{}
	for _, n := range tb.Nodes {
		if names[n.Name()] {
			t.Errorf("duplicate node name %s", n.Name())
		}
		names[n.Name()] = true
		if n.FreeMB() != DefaultParams().NodeRAMMB {
			t.Errorf("node %s free = %d", n.Name(), n.FreeMB())
		}
	}
}

func TestWarehouseVisibleFromEveryNode(t *testing.T) {
	k := sim.NewKernel()
	tb := NewTestbed(k, 3, DefaultParams(), 1)
	tb.Warehouse.WriteMeta("golden/disk.vmdk", 2<<30)
	for _, n := range tb.Nodes {
		if !n.Warehouse().Exists("golden/disk.vmdk") {
			t.Errorf("node %s cannot see warehouse file", n.Name())
		}
	}
}

func TestNFSCopySpeedMatchesPaper(t *testing.T) {
	// The paper's 2 GB golden disk takes ≈210 s to copy in full.
	k := sim.NewKernel()
	tb := NewTestbed(k, 1, DefaultParams(), 1)
	tb.Warehouse.WriteMeta("disk", 2<<30)
	node := tb.Nodes[0]
	var took time.Duration
	k.Spawn("copy", func(p *sim.Proc) {
		start := p.Now()
		if _, err := node.Warehouse().CopyTo(p, "disk", node.LocalDisk(), "disk", 1); err != nil {
			t.Error(err)
		}
		took = p.Now() - start
	})
	k.Run(0)
	secs := took.Seconds()
	if secs < 180 || secs > 230 {
		t.Errorf("2 GB NFS copy took %.1fs, want ≈195-215s", secs)
	}
}

func TestCommitReleaseAccounting(t *testing.T) {
	k := sim.NewKernel()
	tb := NewTestbed(k, 1, DefaultParams(), 1)
	n := tb.Nodes[0]
	n.Commit(256)
	if n.VMs() != 1 || n.CommittedMB() != 256+DefaultParams().VMMOverheadMB {
		t.Errorf("after commit: vms=%d committed=%d", n.VMs(), n.CommittedMB())
	}
	if err := n.Release(256); err != nil {
		t.Fatal(err)
	}
	if n.VMs() != 0 || n.CommittedMB() != 0 {
		t.Errorf("after release: vms=%d committed=%d", n.VMs(), n.CommittedMB())
	}
	if err := n.Release(256); err == nil {
		t.Error("release with no VMs accepted")
	}
}

func TestPressureScaleKicksInPastThreshold(t *testing.T) {
	k := sim.NewKernel()
	p := DefaultParams()
	tb := NewTestbed(k, 1, p, 1)
	n := tb.Nodes[0]
	if got := n.PressureScale(0); got != 1 {
		t.Errorf("idle scale = %v", got)
	}
	// Commit up to just under the threshold: still no pressure.
	for n.CommittedMB()+64+p.VMMOverheadMB <= p.PressureThresholdMB {
		n.Commit(64)
	}
	if got := n.PressureScale(0); got != 1 {
		t.Errorf("sub-threshold scale = %v (committed %d)", got, n.CommittedMB())
	}
	// Push well past: scale grows monotonically.
	prev := n.PressureScale(0)
	for i := 0; i < 6; i++ {
		n.Commit(256)
		s := n.PressureScale(0)
		if s < prev {
			t.Errorf("pressure scale decreased: %v → %v", prev, s)
		}
		prev = s
	}
	if prev <= 1.2 {
		t.Errorf("heavily loaded scale = %v, want visibly > 1", prev)
	}
	// extraMB prices the next VM's own footprint.
	if n.PressureScale(512) <= n.PressureScale(0) {
		t.Error("extraMB ignored")
	}
}

func TestJitterIsMeanOne(t *testing.T) {
	k := sim.NewKernel()
	tb := NewTestbed(k, 1, DefaultParams(), 7)
	n := tb.Nodes[0]
	var sum float64
	const N = 20000
	for i := 0; i < N; i++ {
		j := n.Jitter()
		if j <= 0 {
			t.Fatalf("non-positive jitter %v", j)
		}
		sum += j
	}
	if m := sum / N; m < 0.97 || m > 1.03 {
		t.Errorf("jitter mean = %v", m)
	}
}

func TestNodesHaveIndependentRNGStreams(t *testing.T) {
	k := sim.NewKernel()
	tb := NewTestbed(k, 2, DefaultParams(), 42)
	a, b := tb.Nodes[0].RNG(), tb.Nodes[1].RNG()
	same := true
	for i := 0; i < 10; i++ {
		if a.Float64() != b.Float64() {
			same = false
			break
		}
	}
	if same {
		t.Error("node RNG streams identical")
	}
}

func TestTestbedDeterministicAcrossRuns(t *testing.T) {
	sample := func() []float64 {
		k := sim.NewKernel()
		tb := NewTestbed(k, 4, DefaultParams(), 99)
		var out []float64
		for _, n := range tb.Nodes {
			out = append(out, n.Jitter())
		}
		return out
	}
	a, b := sample(), sample()
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("testbed RNG not reproducible")
		}
	}
}
