// Package core holds the domain model shared by every VMPlants
// subsystem: virtual-machine identifiers and lifecycle states, hardware
// and creation specifications, and the well-known classad attribute
// names that creation results and the VM Information System use.
package core

import (
	"errors"
	"fmt"
	"strings"

	"vmplants/internal/dag"
)

// VMID uniquely identifies a virtual machine instance across the whole
// deployment; it is assigned by VMShop at creation (paper §3.1).
type VMID string

// ParseVMID validates the "vm-<shop>-<n>" shape VMShop mints.
func ParseVMID(s string) (VMID, error) {
	if !strings.HasPrefix(s, "vm-") || len(s) < 5 {
		return "", fmt.Errorf("core: malformed VMID %q", s)
	}
	return VMID(s), nil
}

// VMState is the lifecycle state of a VM instance.
type VMState int

// VM lifecycle states.
const (
	StatePlanned     VMState = iota // accepted, production not started
	StateCloning                    // state files being cloned
	StateConfiguring                // DAG actions executing
	StateRunning                    // configured and serving
	StateFailed                     // creation failed
	StateCollected                  // destroyed and reclaimed
)

var stateNames = [...]string{"planned", "cloning", "configuring", "running", "failed", "collected"}

func (s VMState) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return fmt.Sprintf("VMState(%d)", int(s))
}

// ParseVMState inverts String.
func ParseVMState(s string) (VMState, error) {
	for i, n := range stateNames {
		if n == s {
			return VMState(i), nil
		}
	}
	return 0, fmt.Errorf("core: unknown VM state %q", s)
}

// ErrTransient marks a failure of the environment rather than of the
// request: a crashed plant, a dropped message, a clone I/O error. The
// same request is expected to succeed elsewhere or later, so the shop
// fails transient creation errors over to the next bidder instead of
// surfacing them. Configuration failures — a DAG action exhausting its
// error policy — are never transient: they would fail identically on
// every plant.
var ErrTransient = errors.New("transient failure")

// HardwareSpec is the hardware part of a creation request: the paper's
// "specifications of hardware … such as the VM's instruction set, memory
// and disk space".
type HardwareSpec struct {
	Arch     string // instruction set, e.g. "x86"
	MemoryMB int    // guest memory size
	DiskMB   int    // virtual disk size
}

// Validate rejects nonsensical hardware.
func (h HardwareSpec) Validate() error {
	if h.MemoryMB <= 0 {
		return errors.New("core: hardware spec needs positive memory")
	}
	if h.DiskMB <= 0 {
		return errors.New("core: hardware spec needs positive disk")
	}
	if h.Arch == "" {
		return errors.New("core: hardware spec needs an instruction-set architecture")
	}
	return nil
}

// Satisfies reports whether a machine with hardware h can host a request
// for want: identical architecture, identical memory (the checkpointed
// memory image fixes the guest's RAM), and at least the requested disk.
func (h HardwareSpec) Satisfies(want HardwareSpec) bool {
	return h.Arch == want.Arch && h.MemoryMB == want.MemoryMB && h.DiskMB >= want.DiskMB
}

// Spec is a complete VM creation request.
type Spec struct {
	// Name is a client-chosen label, echoed in the result classad.
	Name string
	// Hardware constrains plant selection and warehouse matching.
	Hardware HardwareSpec
	// Domain identifies the client's network domain; VMs of the same
	// domain on one plant share a host-only network (paper §3.3–3.4).
	Domain string
	// ProxyAddr is the client domain's VNET proxy endpoint ("host:port"),
	// empty when the client does not request overlay networking.
	ProxyAddr string
	// Backend selects the production line ("vmware" or "uml"); empty
	// means the plant's default.
	Backend string
	// Requirements is an optional classad expression evaluated against
	// each candidate plant's resource classad during bidding (classad
	// matchmaking, Raman et al.); plants whose ads do not satisfy it are
	// excluded regardless of their bids. Example:
	//
	//	TARGET.FreeMemoryMB >= 512 && TARGET.Site == "ufl"
	Requirements string
	// RequestID is the client's idempotency token: resubmitting a spec
	// with the same RequestID after a shop failure returns the original
	// creation's VMID instead of building a second VM. Empty disables
	// deduplication (every submission is a fresh request).
	RequestID string
	// Origin names the shop cell that re-auctioned this request across
	// the federation; empty means the request came straight from a
	// client. A forwarded request is never forwarded again (one-hop
	// hierarchy), so cells cannot bounce a creation between themselves.
	Origin string
	// Graph is the configuration DAG.
	Graph *dag.Graph
}

// Validate checks the spec is complete and its DAG well-formed.
func (s *Spec) Validate() error {
	if s == nil {
		return errors.New("core: nil spec")
	}
	if s.Name == "" {
		return errors.New("core: spec needs a name")
	}
	if err := s.Hardware.Validate(); err != nil {
		return err
	}
	if s.Domain == "" {
		return errors.New("core: spec needs a client domain")
	}
	if s.Graph == nil {
		return errors.New("core: spec needs a configuration DAG")
	}
	return s.Graph.Validate()
}

// Well-known classad attribute names used in results and the VM
// Information System.
const (
	AttrVMID        = "VMID"
	AttrName        = "Name"
	AttrState       = "State"
	AttrMemoryMB    = "MemoryMB"
	AttrDiskMB      = "DiskMB"
	AttrArch        = "Arch"
	AttrDomain      = "Domain"
	AttrPlant       = "Plant"
	AttrBackend     = "Backend"
	AttrIP          = "IP"
	AttrMAC         = "MAC"
	AttrNetwork     = "HostOnlyNetwork"
	AttrCreatedAt   = "CreatedAt"   // virtual seconds since epoch
	AttrCloneSecs   = "CloneSecs"   // PPP clone latency
	AttrCreateSecs  = "CreateSecs"  // end-to-end creation latency
	AttrGoldenImage = "GoldenImage" // warehouse image matched
	AttrMatchedOps  = "MatchedOps"  // actions satisfied by the golden image
	AttrCPULoad     = "CPULoad"     // updated by the VM monitor
	AttrUptimeSecs  = "UptimeSecs"  // updated by the VM monitor
)

// Cost is the unit-free bid value plants return from Estimate (paper
// §3.1: "costs are generically represented as numbers").
type Cost float64

// Infeasible marks a bid for a request the plant cannot satisfy at all.
const Infeasible Cost = -1

// OK reports whether the cost represents a feasible bid.
func (c Cost) OK() bool { return c >= 0 }
