package core

import (
	"testing"

	"vmplants/internal/dag"
)

func TestParseVMID(t *testing.T) {
	good := []string{"vm-shop-1", "vm-x-42"}
	for _, s := range good {
		if _, err := ParseVMID(s); err != nil {
			t.Errorf("ParseVMID(%q): %v", s, err)
		}
	}
	bad := []string{"", "vm-", "shop-1", "VM-shop-1"}
	for _, s := range bad {
		if _, err := ParseVMID(s); err == nil {
			t.Errorf("ParseVMID(%q) succeeded", s)
		}
	}
}

func TestVMStateStringRoundTrip(t *testing.T) {
	for s := StatePlanned; s <= StateCollected; s++ {
		back, err := ParseVMState(s.String())
		if err != nil || back != s {
			t.Errorf("round trip %v: %v, %v", s, back, err)
		}
	}
	if _, err := ParseVMState("nirvana"); err == nil {
		t.Error("unknown state parsed")
	}
	if VMState(99).String() == "" {
		t.Error("out-of-range state has empty String")
	}
}

func TestHardwareValidate(t *testing.T) {
	good := HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	for _, bad := range []HardwareSpec{
		{Arch: "", MemoryMB: 64, DiskMB: 2048},
		{Arch: "x86", MemoryMB: 0, DiskMB: 2048},
		{Arch: "x86", MemoryMB: 64, DiskMB: -1},
	} {
		if err := bad.Validate(); err == nil {
			t.Errorf("%+v accepted", bad)
		}
	}
}

func TestHardwareSatisfies(t *testing.T) {
	host := HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 4096}
	cases := []struct {
		want HardwareSpec
		ok   bool
	}{
		{HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 4096}, true},
		{HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048}, true},  // bigger disk fine
		{HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 8192}, false}, // too little disk
		{HardwareSpec{Arch: "x86", MemoryMB: 32, DiskMB: 4096}, false}, // memory must be exact
		{HardwareSpec{Arch: "sparc", MemoryMB: 64, DiskMB: 4096}, false},
	}
	for _, c := range cases {
		if got := host.Satisfies(c.want); got != c.ok {
			t.Errorf("Satisfies(%+v) = %v, want %v", c.want, got, c.ok)
		}
	}
}

func TestSpecValidate(t *testing.T) {
	g := dag.NewBuilder().Add("a", dag.Action{Op: "x"}).MustBuild()
	good := &Spec{
		Name:     "ws",
		Hardware: HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048},
		Domain:   "d",
		Graph:    g,
	}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	var nilSpec *Spec
	if err := nilSpec.Validate(); err == nil {
		t.Error("nil spec accepted")
	}
	cases := []func(*Spec){
		func(s *Spec) { s.Name = "" },
		func(s *Spec) { s.Domain = "" },
		func(s *Spec) { s.Graph = nil },
		func(s *Spec) { s.Hardware.MemoryMB = 0 },
	}
	for i, mutate := range cases {
		s := *good
		mutate(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestCostOK(t *testing.T) {
	if Infeasible.OK() {
		t.Error("Infeasible is OK")
	}
	if !Cost(0).OK() || !Cost(50).OK() {
		t.Error("valid costs not OK")
	}
}
