// Package cost implements the bid cost models VMPlants quote to the
// VMShop (paper §3.4). Costs are unit-free numbers; the shop picks the
// lowest bid. Two models from the paper are provided:
//
//   - NetworkCompute: the §3.4 two-component model — a one-time "network
//     cost" charged only when a fresh host-only network must be
//     allocated to the client's domain, plus a "compute cycles cost"
//     proportional to the number of VMs already operating on the plant.
//     With the paper's constants (network 50, compute 4/VM) a single
//     domain's requests stay on one plant for exactly 13 VMs before the
//     crossover to a second plant.
//
//   - FreeMemory: the prototype's model (§4.1) — "a cost model that is
//     based on the amount of host memory available for cloned VMs".
//
// Both are pure functions of a PlantView snapshot, so the same model
// runs inside simulated plants and real daemons.
package cost

import (
	"fmt"

	"vmplants/internal/core"
)

// PlantView is the plant-state snapshot a model prices against.
type PlantView struct {
	// VMs is the number of VMs currently operating on the plant.
	VMs int
	// MaxVMs is the plant's configured VM capacity (0 = unlimited).
	MaxVMs int
	// FreeMemoryMB is host memory not yet committed to VMs.
	FreeMemoryMB int
	// DomainHasNetwork reports whether the requesting client's domain
	// already owns a host-only network on this plant.
	DomainHasNetwork bool
	// FreeNetworks is the number of unassigned host-only networks.
	FreeNetworks int
}

// Model prices a creation request against a plant snapshot, returning
// core.Infeasible when the plant cannot take the VM at all.
type Model interface {
	// Estimate returns the bid for creating a VM with the given guest
	// memory on a plant in state v.
	Estimate(v PlantView, memoryMB int) core.Cost
	// Name identifies the model in logs and experiment output.
	Name() string
}

// NetworkCompute is the paper's §3.4 model.
type NetworkCompute struct {
	// NetworkCost is the one-time charge for allocating a host-only
	// network to a new client domain (paper example: 50).
	NetworkCost float64
	// ComputePerVM scales the load estimate (paper example: 4).
	ComputePerVM float64
}

// DefaultNetworkCompute returns the model with the paper's constants.
func DefaultNetworkCompute() NetworkCompute {
	return NetworkCompute{NetworkCost: 50, ComputePerVM: 4}
}

// Name implements Model.
func (m NetworkCompute) Name() string { return "network+compute" }

// Estimate implements Model. Feasibility: the plant must have VM
// capacity left, and either the domain already holds a network here or
// a free network must exist.
func (m NetworkCompute) Estimate(v PlantView, memoryMB int) core.Cost {
	if v.MaxVMs > 0 && v.VMs >= v.MaxVMs {
		return core.Infeasible
	}
	if !v.DomainHasNetwork && v.FreeNetworks == 0 {
		return core.Infeasible
	}
	c := m.ComputePerVM * float64(v.VMs)
	if !v.DomainHasNetwork {
		c += m.NetworkCost
	}
	return core.Cost(c)
}

// FreeMemory is the prototype's memory-availability model: scarcer free
// host memory means a higher bid. A plant without enough free memory
// for the requested guest is infeasible.
type FreeMemory struct {
	// ReserveMB is host memory the plant never commits to guests.
	ReserveMB int
}

// Name implements Model.
func (m FreeMemory) Name() string { return "free-memory" }

// Estimate implements Model.
func (m FreeMemory) Estimate(v PlantView, memoryMB int) core.Cost {
	if v.MaxVMs > 0 && v.VMs >= v.MaxVMs {
		return core.Infeasible
	}
	usable := v.FreeMemoryMB - m.ReserveMB
	if usable < memoryMB {
		return core.Infeasible
	}
	// Cost grows as free memory shrinks relative to the request.
	return core.Cost(float64(memoryMB) / float64(usable) * 1000)
}

// ByName returns a model by its experiment-config name.
func ByName(name string) (Model, error) {
	switch name {
	case "", "network+compute":
		return DefaultNetworkCompute(), nil
	case "free-memory":
		// No reserve: the paper's plants host 16 × 64 MB guests on
		// 1.5 GB nodes, i.e. guests plus VMM overhead may consume all
		// host memory (paging absorbs the overcommit).
		return FreeMemory{}, nil
	}
	return nil, fmt.Errorf("cost: unknown model %q", name)
}
