package cost

import (
	"testing"
	"testing/quick"

	"vmplants/internal/core"
)

func TestNetworkComputePaperWalkthrough(t *testing.T) {
	// Paper §3.4: two plants A and B, 4 host-only networks each, max 32
	// VMs; network cost 50, compute cost 4×VMs; one client domain. The
	// shop should keep picking A until the client has 13 VMs there, and
	// B wins the 14th request.
	m := DefaultNetworkCompute()
	viewA := func(vms int) PlantView {
		return PlantView{VMs: vms, MaxVMs: 32, DomainHasNetwork: vms > 0, FreeNetworks: 4 - btoi(vms > 0)}
	}
	viewB := PlantView{VMs: 0, MaxVMs: 32, DomainHasNetwork: false, FreeNetworks: 4}

	// Request #1: both bid the network cost of 50.
	if a, b := m.Estimate(viewA(0), 32), m.Estimate(viewB, 32); a != 50 || b != 50 {
		t.Fatalf("initial bids %v, %v", a, b)
	}
	// Requests #2..#13: A (4×VMs) undercuts B (50).
	for vms := 1; vms <= 12; vms++ {
		a := m.Estimate(viewA(vms), 32)
		b := m.Estimate(viewB, 32)
		if !(a < b) {
			t.Errorf("request with %d VMs on A: a=%v b=%v, want A cheaper", vms, a, b)
		}
	}
	// Request #14 (13 VMs already on A): 4×13=52 > 50, B wins.
	a := m.Estimate(viewA(13), 32)
	b := m.Estimate(viewB, 32)
	if !(b < a) {
		t.Errorf("crossover: a=%v b=%v, want B cheaper", a, b)
	}
}

func btoi(b bool) int {
	if b {
		return 1
	}
	return 0
}

func TestNetworkComputeInfeasibility(t *testing.T) {
	m := DefaultNetworkCompute()
	full := PlantView{VMs: 32, MaxVMs: 32, DomainHasNetwork: true}
	if c := m.Estimate(full, 32); c.OK() {
		t.Errorf("full plant bid %v", c)
	}
	noNets := PlantView{VMs: 1, MaxVMs: 32, DomainHasNetwork: false, FreeNetworks: 0}
	if c := m.Estimate(noNets, 32); c.OK() {
		t.Errorf("network-exhausted plant bid %v", c)
	}
	// Domain already present: no free networks needed.
	held := PlantView{VMs: 1, MaxVMs: 32, DomainHasNetwork: true, FreeNetworks: 0}
	if c := m.Estimate(held, 32); !c.OK() || c != 4 {
		t.Errorf("held-network bid %v", c)
	}
}

func TestFreeMemoryModel(t *testing.T) {
	m := FreeMemory{ReserveMB: 256}
	rich := PlantView{FreeMemoryMB: 1536}
	poor := PlantView{FreeMemoryMB: 512}
	cr := m.Estimate(rich, 64)
	cp := m.Estimate(poor, 64)
	if !cr.OK() || !cp.OK() || !(cr < cp) {
		t.Errorf("rich=%v poor=%v, want rich cheaper", cr, cp)
	}
	broke := PlantView{FreeMemoryMB: 300}
	if c := m.Estimate(broke, 64); c.OK() {
		t.Errorf("infeasible memory bid %v", c)
	}
	full := PlantView{FreeMemoryMB: 4096, VMs: 2, MaxVMs: 2}
	if c := m.Estimate(full, 64); c.OK() {
		t.Errorf("at-capacity bid %v", c)
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"", "network+compute", "free-memory"} {
		m, err := ByName(name)
		if err != nil || m == nil {
			t.Errorf("ByName(%q) = %v, %v", name, m, err)
		}
	}
	if _, err := ByName("astrology"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestCostOK(t *testing.T) {
	if core.Infeasible.OK() {
		t.Error("Infeasible.OK() = true")
	}
	if !core.Cost(0).OK() {
		t.Error("zero cost not OK")
	}
}

// Property: the network+compute bid is monotonically non-decreasing in
// plant load, and holding a network never costs more than not holding
// one.
func TestNetworkComputeMonotonicityProperty(t *testing.T) {
	m := DefaultNetworkCompute()
	check := func(vms uint8, hasNet bool) bool {
		v := PlantView{VMs: int(vms), MaxVMs: 0, DomainHasNetwork: hasNet, FreeNetworks: 1}
		c1 := m.Estimate(v, 64)
		v.VMs++
		c2 := m.Estimate(v, 64)
		if !(c1.OK() && c2.OK() && c2 >= c1) {
			return false
		}
		held := PlantView{VMs: int(vms), DomainHasNetwork: true, FreeNetworks: 0}
		free := PlantView{VMs: int(vms), DomainHasNetwork: false, FreeNetworks: 1}
		return m.Estimate(held, 64) <= m.Estimate(free, 64)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: the free-memory bid never prefers a plant with less free
// memory.
func TestFreeMemoryMonotonicityProperty(t *testing.T) {
	m := FreeMemory{}
	check := func(freeA, freeB uint16) bool {
		a := PlantView{FreeMemoryMB: int(freeA)%4096 + 64}
		b := PlantView{FreeMemoryMB: int(freeB)%4096 + 64}
		ca, cb := m.Estimate(a, 64), m.Estimate(b, 64)
		if !ca.OK() || !cb.OK() {
			return true
		}
		if a.FreeMemoryMB >= b.FreeMemoryMB {
			return ca <= cb
		}
		return cb <= ca
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}
