package dag

import (
	"bytes"
	"fmt"
	"testing"
)

// benchGraph builds a 64-node layered DAG.
func benchGraph(b *testing.B) *Graph {
	bld := NewBuilder()
	var prev []string
	for layer := 0; layer < 16; layer++ {
		var cur []string
		for j := 0; j < 4; j++ {
			id := fmt.Sprintf("n%02d_%d", layer, j)
			bld.Add(id, Action{Op: "op", Params: map[string]string{"k": id}}, prev...)
			cur = append(cur, id)
		}
		prev = cur
	}
	g, err := bld.Build()
	if err != nil {
		b.Fatal(err)
	}
	return g
}

func BenchmarkTopoSort64Nodes(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.TopoSort(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXMLRoundTrip64Nodes(b *testing.B) {
	g := benchGraph(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := g.Encode(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := Decode(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
