package dag

import "fmt"

// Builder assembles configuration DAGs with less ceremony than raw
// AddNode/AddEdge calls: dependencies are declared inline, and nodes
// without explicit predecessors or successors are wired to START and
// FINISH automatically at Build time.
//
//	b := dag.NewBuilder()
//	b.Add("A", dag.Action{Op: "install-os", Params: ...})
//	b.Add("B", dag.Action{Op: "install-package", ...}, "A")
//	g, err := b.Build()
type Builder struct {
	g    *Graph
	errs []error
	deps map[string][]string
}

// NewBuilder returns an empty builder.
func NewBuilder() *Builder {
	return &Builder{g: NewGraph(), deps: make(map[string][]string)}
}

// Add declares an action node that must run after every node in deps.
// Errors are accumulated and reported by Build.
func (b *Builder) Add(id string, a Action, deps ...string) *Builder {
	if err := b.g.AddNode(&Node{ID: id, Action: a}); err != nil {
		b.errs = append(b.errs, err)
		return b
	}
	b.deps[id] = deps
	return b
}

// AddWithPolicy is Add with an explicit error-handling policy.
func (b *Builder) AddWithPolicy(id string, a Action, pol ErrorPolicy, deps ...string) *Builder {
	if err := b.g.AddNode(&Node{ID: id, Action: a, OnError: pol}); err != nil {
		b.errs = append(b.errs, err)
		return b
	}
	b.deps[id] = deps
	return b
}

// Chain declares a linear sequence of nodes: each entry depends on the
// previous one, and the first on the given deps.
func (b *Builder) Chain(ids []string, acts []Action, deps ...string) *Builder {
	if len(ids) != len(acts) {
		b.errs = append(b.errs, fmt.Errorf("dag: Chain with %d ids and %d actions", len(ids), len(acts)))
		return b
	}
	prev := deps
	for i, id := range ids {
		b.Add(id, acts[i], prev...)
		prev = []string{id}
	}
	return b
}

// Build wires declared dependencies, connects sources to START and sinks
// to FINISH, validates, and returns the graph.
func (b *Builder) Build() (*Graph, error) {
	if len(b.errs) > 0 {
		return nil, b.errs[0]
	}
	for id, deps := range b.deps {
		for _, d := range deps {
			if err := b.g.AddEdge(d, id); err != nil {
				return nil, err
			}
		}
	}
	for _, id := range b.g.ActionIDs() {
		if len(b.g.pred[id]) == 0 {
			if err := b.g.AddEdge(StartID, id); err != nil {
				return nil, err
			}
		}
		if len(b.g.succ[id]) == 0 {
			if err := b.g.AddEdge(id, FinishID); err != nil {
				return nil, err
			}
		}
	}
	// Degenerate but legal: a DAG with no actions at all.
	if b.g.Len() == 0 {
		if err := b.g.AddEdge(StartID, FinishID); err != nil {
			return nil, err
		}
	}
	if err := b.g.Validate(); err != nil {
		return nil, err
	}
	return b.g, nil
}

// MustBuild is Build, panicking on error; for fixed graphs in examples
// and tests.
func (b *Builder) MustBuild() *Graph {
	g, err := b.Build()
	if err != nil {
		panic(err)
	}
	return g
}
