// Package dag implements the configuration directed-acyclic-graph model
// of VMPlants (paper §3.1): clients describe how a virtual machine is to
// be configured as a DAG whose nodes are configuration actions and whose
// edges impose ordering. A special START node denotes a blank machine,
// FINISH denotes the fully configured machine, and every action node has
// an implicit error node that may be overridden by a client-supplied
// error-handling policy.
//
// The DAG serves two purposes in the system: it is the specification the
// Production Process Planner executes, and it is the structure against
// which cached "golden" images are partially matched (package match).
package dag

import (
	"errors"
	"fmt"
	"sort"
	"strings"
)

// Reserved node identifiers.
const (
	StartID  = "START"
	FinishID = "FINISH"
)

// Target says where an action executes.
type Target int

const (
	// Guest actions run inside the virtual machine (e.g. create a user).
	Guest Target = iota
	// Host actions run on the hosting VMPlant (e.g. attach an ISO image
	// or a network interface to the VM).
	Host
)

// String returns "guest" or "host".
func (t Target) String() string {
	if t == Host {
		return "host"
	}
	return "guest"
}

// ParseTarget converts "guest"/"host" to a Target.
func ParseTarget(s string) (Target, error) {
	switch strings.ToLower(s) {
	case "guest", "":
		return Guest, nil
	case "host":
		return Host, nil
	}
	return Guest, fmt.Errorf("dag: unknown target %q", s)
}

// ErrorPolicy is a client-configurable error-handling sub-graph for one
// action node (paper §3.1: "a special error node is implicitly
// associated with each action node, and the client can also explicitly
// configure custom error-handling sub-graphs"). The implicit error node
// corresponds to the zero value: no retries, no handler, abort.
type ErrorPolicy struct {
	// Retries re-runs the failing action up to this many extra times.
	Retries int
	// Handler is a linear chain of recovery actions executed when
	// retries are exhausted.
	Handler []Action
	// Continue, when true, lets configuration proceed past the failure
	// after the handler runs; otherwise creation aborts.
	Continue bool
}

// Action describes one configuration operation: a named action from the
// action catalog with string parameters.
type Action struct {
	Op     string            // catalog operation name, e.g. "install-package"
	Target Target            // where it runs
	Params map[string]string // operation-specific parameters
}

// Key returns a canonical identity string for matching: the operation
// name plus its parameters in sorted order. Two actions with equal keys
// are considered the same operation by the partial-matching tests.
func (a Action) Key() string {
	if len(a.Params) == 0 {
		return a.Op
	}
	keys := make([]string, 0, len(a.Params))
	for k := range a.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(a.Op)
	for _, k := range keys {
		b.WriteByte('|')
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(a.Params[k])
	}
	return b.String()
}

// Param returns a parameter value, or "" when absent.
func (a Action) Param(name string) string { return a.Params[name] }

// Node is one vertex of a configuration DAG.
type Node struct {
	ID      string
	Action  Action
	OnError ErrorPolicy
}

// IsStart reports whether the node is the START marker.
func (n *Node) IsStart() bool { return n.ID == StartID }

// IsFinish reports whether the node is the FINISH marker.
func (n *Node) IsFinish() bool { return n.ID == FinishID }

// Graph is a configuration DAG. Construct with NewGraph or Builder; a
// Graph must pass Validate before being submitted or matched.
type Graph struct {
	nodes map[string]*Node
	order []string            // node insertion order (determinism)
	succ  map[string][]string // edges out, in insertion order
	pred  map[string][]string // edges in, in insertion order
}

// NewGraph returns a graph containing only the START and FINISH markers.
func NewGraph() *Graph {
	g := &Graph{
		nodes: make(map[string]*Node),
		succ:  make(map[string][]string),
		pred:  make(map[string][]string),
	}
	g.nodes[StartID] = &Node{ID: StartID, Action: Action{Op: "start"}}
	g.nodes[FinishID] = &Node{ID: FinishID, Action: Action{Op: "finish"}}
	g.order = []string{StartID, FinishID}
	return g
}

// AddNode inserts an action node. The ID must be unique and not a
// reserved marker.
func (g *Graph) AddNode(n *Node) error {
	if n.ID == "" {
		return errors.New("dag: node with empty ID")
	}
	if n.ID == StartID || n.ID == FinishID {
		return fmt.Errorf("dag: node ID %q is reserved", n.ID)
	}
	if _, ok := g.nodes[n.ID]; ok {
		return fmt.Errorf("dag: duplicate node ID %q", n.ID)
	}
	g.nodes[n.ID] = n
	g.order = append(g.order, n.ID)
	return nil
}

// AddEdge inserts a directed ordering constraint from → to. Both nodes
// must exist; duplicate edges are rejected.
func (g *Graph) AddEdge(from, to string) error {
	if _, ok := g.nodes[from]; !ok {
		return fmt.Errorf("dag: edge from unknown node %q", from)
	}
	if _, ok := g.nodes[to]; !ok {
		return fmt.Errorf("dag: edge to unknown node %q", to)
	}
	if from == to {
		return fmt.Errorf("dag: self edge on %q", from)
	}
	for _, s := range g.succ[from] {
		if s == to {
			return fmt.Errorf("dag: duplicate edge %s→%s", from, to)
		}
	}
	g.succ[from] = append(g.succ[from], to)
	g.pred[to] = append(g.pred[to], from)
	return nil
}

// Node returns the node with the given ID.
func (g *Graph) Node(id string) (*Node, bool) {
	n, ok := g.nodes[id]
	return n, ok
}

// Len reports the number of action nodes (START/FINISH excluded).
func (g *Graph) Len() int { return len(g.nodes) - 2 }

// NodeIDs returns all node IDs including markers, in insertion order.
func (g *Graph) NodeIDs() []string { return append([]string(nil), g.order...) }

// ActionIDs returns action node IDs (markers excluded), insertion order.
func (g *Graph) ActionIDs() []string {
	out := make([]string, 0, g.Len())
	for _, id := range g.order {
		if id != StartID && id != FinishID {
			out = append(out, id)
		}
	}
	return out
}

// Successors returns the IDs with an edge from id, in insertion order.
func (g *Graph) Successors(id string) []string {
	return append([]string(nil), g.succ[id]...)
}

// Predecessors returns the IDs with an edge to id, in insertion order.
func (g *Graph) Predecessors(id string) []string {
	return append([]string(nil), g.pred[id]...)
}

// Edges returns every edge as [from, to] pairs in deterministic order.
func (g *Graph) Edges() [][2]string {
	var out [][2]string
	for _, from := range g.order {
		for _, to := range g.succ[from] {
			out = append(out, [2]string{from, to})
		}
	}
	return out
}

// Validate checks the structural invariants the paper's model requires:
// START is the unique source, FINISH the unique sink, the graph is
// acyclic, and every action node lies on some START→FINISH path.
func (g *Graph) Validate() error {
	for _, id := range g.order {
		if id == StartID {
			if len(g.pred[id]) != 0 {
				return errors.New("dag: START has incoming edges")
			}
			continue
		}
		if id == FinishID {
			if len(g.succ[id]) != 0 {
				return errors.New("dag: FINISH has outgoing edges")
			}
			continue
		}
		if len(g.pred[id]) == 0 {
			return fmt.Errorf("dag: node %q unreachable (no incoming edges; connect it to START)", id)
		}
		if len(g.succ[id]) == 0 {
			return fmt.Errorf("dag: node %q is a dead end (no outgoing edges; connect it to FINISH)", id)
		}
	}
	if _, err := g.TopoSort(); err != nil {
		return err
	}
	// Reachability from START and co-reachability from FINISH.
	fwd := g.reach(StartID, g.succ)
	back := g.reach(FinishID, g.pred)
	for _, id := range g.order {
		if !fwd[id] {
			return fmt.Errorf("dag: node %q not reachable from START", id)
		}
		if !back[id] {
			return fmt.Errorf("dag: FINISH not reachable from node %q", id)
		}
	}
	return nil
}

func (g *Graph) reach(from string, adj map[string][]string) map[string]bool {
	seen := map[string]bool{from: true}
	stack := []string{from}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, next := range adj[id] {
			if !seen[next] {
				seen[next] = true
				stack = append(stack, next)
			}
		}
	}
	return seen
}

// TopoSort returns every node ID in a deterministic topological order
// (Kahn's algorithm; ties broken by node insertion order, so the same
// graph always sorts the same way). It returns an error naming a node on
// a cycle if the graph is cyclic.
func (g *Graph) TopoSort() ([]string, error) {
	indeg := make(map[string]int, len(g.nodes))
	for id := range g.nodes {
		indeg[id] = len(g.pred[id])
	}
	pos := make(map[string]int, len(g.order))
	for i, id := range g.order {
		pos[id] = i
	}
	var ready []string
	for _, id := range g.order {
		if indeg[id] == 0 {
			ready = append(ready, id)
		}
	}
	var out []string
	for len(ready) > 0 {
		// Pick the ready node earliest in insertion order.
		best := 0
		for i := 1; i < len(ready); i++ {
			if pos[ready[i]] < pos[ready[best]] {
				best = i
			}
		}
		id := ready[best]
		ready = append(ready[:best], ready[best+1:]...)
		out = append(out, id)
		for _, next := range g.succ[id] {
			indeg[next]--
			if indeg[next] == 0 {
				ready = append(ready, next)
			}
		}
	}
	if len(out) != len(g.nodes) {
		for _, id := range g.order {
			if indeg[id] > 0 {
				return nil, fmt.Errorf("dag: cycle involving node %q", id)
			}
		}
		return nil, errors.New("dag: cycle detected")
	}
	return out, nil
}

// Ancestors returns the set of node IDs from which id is reachable
// (excluding id itself).
func (g *Graph) Ancestors(id string) map[string]bool {
	seen := g.reach(id, g.pred)
	delete(seen, id)
	return seen
}

// Descendants returns the set of node IDs reachable from id (excluding
// id itself).
func (g *Graph) Descendants(id string) map[string]bool {
	seen := g.reach(id, g.succ)
	delete(seen, id)
	return seen
}

// Before reports whether the DAG orders a strictly before b (a is an
// ancestor of b).
func (g *Graph) Before(a, b string) bool {
	return g.Descendants(a)[b]
}

// IsLinearExtension reports whether seq — a sequence of action node IDs
// — is consistent with the DAG's partial order: for every pair of nodes
// both present in seq, if the DAG orders one before the other, seq lists
// them in that order. Nodes absent from the DAG make it false.
func (g *Graph) IsLinearExtension(seq []string) bool {
	index := make(map[string]int, len(seq))
	for i, id := range seq {
		if _, ok := g.nodes[id]; !ok {
			return false
		}
		if _, dup := index[id]; dup {
			return false
		}
		index[id] = i
	}
	for _, id := range seq {
		for anc := range g.Ancestors(id) {
			if anc == StartID {
				continue
			}
			if j, ok := index[anc]; ok && j > index[id] {
				return false
			}
		}
	}
	return true
}

// ActionKeys maps node ID → action key for every action node.
func (g *Graph) ActionKeys() map[string]string {
	out := make(map[string]string, g.Len())
	for _, id := range g.ActionIDs() {
		out[id] = g.nodes[id].Action.Key()
	}
	return out
}

// Clone returns a deep copy of the graph.
func (g *Graph) Clone() *Graph {
	c := &Graph{
		nodes: make(map[string]*Node, len(g.nodes)),
		order: append([]string(nil), g.order...),
		succ:  make(map[string][]string, len(g.succ)),
		pred:  make(map[string][]string, len(g.pred)),
	}
	for id, n := range g.nodes {
		cp := *n
		if n.Action.Params != nil {
			cp.Action.Params = make(map[string]string, len(n.Action.Params))
			for k, v := range n.Action.Params {
				cp.Action.Params[k] = v
			}
		}
		if n.OnError.Handler != nil {
			cp.OnError.Handler = append([]Action(nil), n.OnError.Handler...)
		}
		c.nodes[id] = &cp
	}
	for id, s := range g.succ {
		c.succ[id] = append([]string(nil), s...)
	}
	for id, p := range g.pred {
		c.pred[id] = append([]string(nil), p...)
	}
	return c
}

// String renders a compact description: a topological listing of nodes
// and edge count, for logs and debugging.
func (g *Graph) String() string {
	topo, err := g.TopoSort()
	if err != nil {
		topo = g.order
	}
	var b strings.Builder
	b.WriteString("dag(")
	for i, id := range topo {
		if i > 0 {
			b.WriteString("→")
		}
		b.WriteString(id)
	}
	fmt.Fprintf(&b, ", %d edges)", len(g.Edges()))
	return b.String()
}
