package dag

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

// diamond builds START → A → {B, C} → D → FINISH.
func diamond(t *testing.T) *Graph {
	t.Helper()
	return NewBuilder().
		Add("A", Action{Op: "install-os"}).
		Add("B", Action{Op: "install-package", Params: map[string]string{"name": "vnc"}}, "A").
		Add("C", Action{Op: "install-package", Params: map[string]string{"name": "wfm"}}, "A").
		Add("D", Action{Op: "start-service"}, "B", "C").
		MustBuild()
}

func TestBuilderWiresStartAndFinish(t *testing.T) {
	g := diamond(t)
	if got := g.Successors(StartID); len(got) != 1 || got[0] != "A" {
		t.Errorf("START successors = %v", got)
	}
	if got := g.Predecessors(FinishID); len(got) != 1 || got[0] != "D" {
		t.Errorf("FINISH predecessors = %v", got)
	}
	if g.Len() != 4 {
		t.Errorf("Len = %d", g.Len())
	}
}

func TestEmptyDAGIsValid(t *testing.T) {
	g, err := NewBuilder().Build()
	if err != nil {
		t.Fatal(err)
	}
	topo, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	if len(topo) != 2 || topo[0] != StartID || topo[1] != FinishID {
		t.Errorf("topo = %v", topo)
	}
}

func TestTopoSortRespectsEdges(t *testing.T) {
	g := diamond(t)
	topo, err := g.TopoSort()
	if err != nil {
		t.Fatal(err)
	}
	pos := map[string]int{}
	for i, id := range topo {
		pos[id] = i
	}
	for _, e := range g.Edges() {
		if pos[e[0]] >= pos[e[1]] {
			t.Errorf("edge %v violated in topo %v", e, topo)
		}
	}
	// Deterministic tie-break by insertion order: B before C.
	if pos["B"] >= pos["C"] {
		t.Errorf("insertion-order tie break violated: %v", topo)
	}
}

func TestTopoSortDeterministic(t *testing.T) {
	g := diamond(t)
	a, _ := g.TopoSort()
	for i := 0; i < 10; i++ {
		b, _ := g.TopoSort()
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("topo not deterministic: %v vs %v", a, b)
			}
		}
	}
}

func TestCycleDetection(t *testing.T) {
	g := NewGraph()
	g.AddNode(&Node{ID: "A", Action: Action{Op: "x"}})
	g.AddNode(&Node{ID: "B", Action: Action{Op: "y"}})
	g.AddEdge(StartID, "A")
	g.AddEdge("A", "B")
	g.AddEdge("B", "A")
	g.AddEdge("B", FinishID)
	if _, err := g.TopoSort(); err == nil {
		t.Error("cycle not detected")
	}
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted a cyclic graph")
	}
}

func TestValidateRejectsUnreachable(t *testing.T) {
	g := NewGraph()
	g.AddNode(&Node{ID: "A", Action: Action{Op: "x"}})
	g.AddEdge(StartID, FinishID)
	// A has no edges at all.
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted orphan node")
	}
}

func TestValidateRejectsEdgesIntoStart(t *testing.T) {
	g := NewGraph()
	g.AddNode(&Node{ID: "A", Action: Action{Op: "x"}})
	g.AddEdge("A", StartID)
	g.AddEdge(StartID, FinishID)
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted edge into START")
	}
}

func TestAddNodeErrors(t *testing.T) {
	g := NewGraph()
	if err := g.AddNode(&Node{ID: StartID}); err == nil {
		t.Error("reserved ID accepted")
	}
	if err := g.AddNode(&Node{ID: ""}); err == nil {
		t.Error("empty ID accepted")
	}
	g.AddNode(&Node{ID: "A"})
	if err := g.AddNode(&Node{ID: "A"}); err == nil {
		t.Error("duplicate ID accepted")
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := NewGraph()
	g.AddNode(&Node{ID: "A"})
	if err := g.AddEdge("A", "missing"); err == nil {
		t.Error("edge to unknown node accepted")
	}
	if err := g.AddEdge("A", "A"); err == nil {
		t.Error("self edge accepted")
	}
	g.AddEdge(StartID, "A")
	if err := g.AddEdge(StartID, "A"); err == nil {
		t.Error("duplicate edge accepted")
	}
}

func TestAncestorsDescendants(t *testing.T) {
	g := diamond(t)
	anc := g.Ancestors("D")
	for _, want := range []string{"A", "B", "C", StartID} {
		if !anc[want] {
			t.Errorf("Ancestors(D) missing %s: %v", want, anc)
		}
	}
	if anc["D"] || anc[FinishID] {
		t.Errorf("Ancestors(D) contains D or FINISH: %v", anc)
	}
	desc := g.Descendants("A")
	for _, want := range []string{"B", "C", "D", FinishID} {
		if !desc[want] {
			t.Errorf("Descendants(A) missing %s", want)
		}
	}
	if !g.Before("A", "D") || g.Before("D", "A") || g.Before("B", "C") {
		t.Error("Before relation wrong")
	}
}

func TestIsLinearExtension(t *testing.T) {
	g := diamond(t)
	cases := []struct {
		seq  []string
		want bool
	}{
		{[]string{"A", "B", "C", "D"}, true},
		{[]string{"A", "C", "B", "D"}, true}, // B,C unordered
		{[]string{"B", "A"}, false},          // violates A before B
		{[]string{"A", "B"}, true},           // prefixes are fine
		{[]string{"A", "A"}, false},          // duplicates
		{[]string{"A", "Z"}, false},          // unknown node
		{nil, true},
	}
	for _, c := range cases {
		if got := g.IsLinearExtension(c.seq); got != c.want {
			t.Errorf("IsLinearExtension(%v) = %v, want %v", c.seq, got, c.want)
		}
	}
}

func TestActionKeyCanonicalOrder(t *testing.T) {
	a := Action{Op: "install", Params: map[string]string{"b": "2", "a": "1"}}
	b := Action{Op: "install", Params: map[string]string{"a": "1", "b": "2"}}
	if a.Key() != b.Key() {
		t.Errorf("keys differ: %q vs %q", a.Key(), b.Key())
	}
	c := Action{Op: "install", Params: map[string]string{"a": "1", "b": "3"}}
	if a.Key() == c.Key() {
		t.Error("different params produced equal keys")
	}
	bare := Action{Op: "install"}
	if bare.Key() != "install" {
		t.Errorf("bare key = %q", bare.Key())
	}
}

func TestCloneIsDeep(t *testing.T) {
	g := diamond(t)
	c := g.Clone()
	n, _ := c.Node("B")
	n.Action.Params["name"] = "mutated"
	orig, _ := g.Node("B")
	if orig.Action.Params["name"] != "vnc" {
		t.Error("clone shares params map")
	}
	c.AddNode(&Node{ID: "E", Action: Action{Op: "z"}})
	if _, ok := g.Node("E"); ok {
		t.Error("clone shares node map")
	}
}

func TestChainBuilder(t *testing.T) {
	g := NewBuilder().Chain(
		[]string{"A", "B", "C"},
		[]Action{{Op: "a"}, {Op: "b"}, {Op: "c"}},
	).MustBuild()
	if !g.Before("A", "B") || !g.Before("B", "C") {
		t.Error("chain order missing")
	}
}

func TestChainLengthMismatch(t *testing.T) {
	if _, err := NewBuilder().Chain([]string{"A"}, nil).Build(); err == nil {
		t.Error("mismatched chain accepted")
	}
}

func TestXMLRoundTrip(t *testing.T) {
	g := NewBuilder().
		AddWithPolicy("A", Action{Op: "install-os", Target: Guest, Params: map[string]string{"distro": "redhat-8.0"}},
			ErrorPolicy{Retries: 2, Continue: true, Handler: []Action{{Op: "run-script", Params: map[string]string{"script": "fix.sh"}}}}).
		Add("B", Action{Op: "attach-iso", Target: Host}, "A").
		MustBuild()

	var buf bytes.Buffer
	if err := g.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatalf("decode: %v\nxml was:\n%s", err, buf.String())
	}
	if back.Len() != 2 {
		t.Fatalf("round trip lost nodes: %v", back.NodeIDs())
	}
	a, _ := back.Node("A")
	if a.Action.Params["distro"] != "redhat-8.0" {
		t.Errorf("params lost: %+v", a.Action)
	}
	if a.OnError.Retries != 2 || !a.OnError.Continue || len(a.OnError.Handler) != 1 {
		t.Errorf("error policy lost: %+v", a.OnError)
	}
	if a.OnError.Handler[0].Params["script"] != "fix.sh" {
		t.Errorf("handler params lost: %+v", a.OnError.Handler)
	}
	b, _ := back.Node("B")
	if b.Action.Target != Host {
		t.Errorf("target lost: %v", b.Action.Target)
	}
	if !back.Before("A", "B") {
		t.Error("edges lost")
	}
}

func TestDecodeRejectsInvalidGraph(t *testing.T) {
	// Cycle in the XML must be rejected at decode time.
	bad := `<dag>
	  <node id="A" action="x"/><node id="B" action="y"/>
	  <edge from="START" to="A"/><edge from="A" to="B"/>
	  <edge from="B" to="A"/><edge from="B" to="FINISH"/>
	</dag>`
	if _, err := Decode(strings.NewReader(bad)); err == nil {
		t.Error("cyclic XML accepted")
	}
	if _, err := Decode(strings.NewReader(`<dag><node id="A" action="x" target="mars"/></dag>`)); err == nil {
		t.Error("bad target accepted")
	}
}

func TestTopoSortIsLinearExtensionProperty(t *testing.T) {
	// Property: for random DAGs, TopoSort always yields a linear
	// extension, and each node appears exactly once.
	check := func(seed int64, nNodes uint8, density uint8) bool {
		n := int(nNodes%8) + 2
		b := NewBuilder()
		ids := make([]string, n)
		for i := 0; i < n; i++ {
			ids[i] = string(rune('A' + i))
			// Edges only from lower to higher index → always acyclic.
			var deps []string
			for j := 0; j < i; j++ {
				if (seed>>(uint(i*7+j)%60))&1 == 1 && int(density)%3 != 0 {
					deps = append(deps, ids[j])
				}
			}
			b.Add(ids[i], Action{Op: "op"}, deps...)
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		topo, err := g.TopoSort()
		if err != nil {
			return false
		}
		if len(topo) != n+2 {
			return false
		}
		var acts []string
		for _, id := range topo {
			if id != StartID && id != FinishID {
				acts = append(acts, id)
			}
		}
		return g.IsLinearExtension(acts)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestStringMentionsNodes(t *testing.T) {
	g := diamond(t)
	s := g.String()
	for _, id := range []string{"START", "A", "D", "FINISH"} {
		if !strings.Contains(s, id) {
			t.Errorf("String() %q missing %s", s, id)
		}
	}
}

func TestDOTOutput(t *testing.T) {
	g := NewBuilder().
		Add("A", Action{Op: "install-os"}).
		Add("B", Action{Op: "install-package", Params: map[string]string{"name": `we"ird`}}, "A").
		MustBuild()
	dot := g.DOT()
	for _, want := range []string{
		"digraph config", `"START" [shape=circle]`, `"FINISH" [shape=doublecircle]`,
		`label="A\ninstall-os"`, `"A" -> "B"`, `we'ird`,
	} {
		if !strings.Contains(dot, want) {
			t.Errorf("DOT missing %q:\n%s", want, dot)
		}
	}
	if strings.Contains(dot, `we"ird`) {
		t.Error("unescaped quote in DOT label")
	}
}
