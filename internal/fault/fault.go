// Package fault is a deterministic, seeded fault-injection registry
// for the VMPlants stack. GridSim-style simulation substrates are
// exactly the place to model resource failure: because every draw
// comes from one seeded stream and the kernel serializes processes,
// a fault schedule replays bit-for-bit with the simulation it disturbs.
//
// A Registry holds rules keyed by (site, kind, op): per-site
// probabilities for recurring faults and one-shot triggers for scripted
// scenarios. Sites are plant names (or "*" for every site); ops qualify
// the injection point within a site — a DAG action op for action
// failures, "rpc" or "create" for crash points — with "" as the
// site-wide default. Injection points across the stack ask the registry
// whether to fail (Should), or how long to stall (DelayFor), and the
// registry counts every injection so experiments can report exactly
// what they survived.
//
// A nil *Registry answers every query with "no fault" at zero cost, so
// wiring is unconditional, like the telemetry hub's.
package fault

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"vmplants/internal/sim"
	"vmplants/internal/telemetry"
)

// Kind names one fault class.
type Kind string

// The fault taxonomy. Each kind is injected at a specific layer:
// PlantCrash and RPCDrop/RPCDelay at the shop↔plant transport, SlowBid
// on the plant's estimate path, CloneIO inside the production line's
// clone stage, ActionFail inside DAG configuration actions.
const (
	// PlantCrash kills the plant daemon: soft state (the VM Information
	// System) is lost until Recover rebuilds it; calls fail meanwhile.
	PlantCrash Kind = "plant-crash"
	// RPCDrop loses a control message: the caller sees a transport
	// error after a timeout's worth of virtual time.
	RPCDrop Kind = "rpc-drop"
	// RPCDelay stalls a control message without losing it.
	RPCDelay Kind = "rpc-delay"
	// CloneIO fails the clone's state copy mid-way (bad NFS read,
	// full local disk); the partial clone is destroyed.
	CloneIO Kind = "clone-io"
	// SlowBid stalls a plant's cost estimate past the shop's patience.
	SlowBid Kind = "slow-bid"
	// ActionFail fails one configuration action attempt, subject to the
	// DAG node's error policy (retries / handler / continue).
	ActionFail Kind = "action-fail"
	// CorruptExtent silently scrambles the recorded checksum of one
	// stored artifact at the storage layer — bit rot or a stale read
	// surfacing on a warehouse read path (clone open, scrub).
	CorruptExtent Kind = "corrupt-extent"
	// TornWrite corrupts an artifact as it is laid down: a publish that
	// reported success but left one file's content inconsistent with
	// its recorded checksum.
	TornWrite Kind = "torn-write"
	// DaemonKill hard-kills a control-plane daemon (kill -9) at a named
	// point in its protocol — site "shop" with op "intent" (after the
	// creation intent is journaled, before dispatch) or "commit" (after
	// the plant succeeded, before the commit record lands). The daemon's
	// journal loses its unsynced tail; soft state evaporates.
	DaemonKill Kind = "daemon-kill"
)

// Kinds lists every exported fault kind. Telemetry wiring derives its
// counter set from this slice, so a newly added kind cannot silently
// miss its injection counter.
var Kinds = []Kind{PlantCrash, RPCDrop, RPCDelay, CloneIO, SlowBid, ActionFail, CorruptExtent, TornWrite, DaemonKill}

// Wildcard matches every site in a rule key.
const Wildcard = "*"

// rule is one injection rule.
type rule struct {
	prob  float64       // recurring: per-check probability
	delay time.Duration // for delay kinds
	armed int           // one-shot trigger count (fires before prob)
}

type key struct {
	site string
	kind Kind
	op   string
}

// Registry decides fault injections deterministically. Safe for
// concurrent use; in-kernel callers are already serialized, and the
// mutex covers out-of-kernel observers (tests, debug endpoints).
type Registry struct {
	mu     sync.Mutex
	rng    *sim.RNG
	rules  map[key]*rule
	counts map[string]int64 // "site/kind/op" → injections

	tel map[Kind]*telemetry.Counter
}

// NewRegistry returns a registry drawing from a private stream seeded
// with seed.
func NewRegistry(seed int64) *Registry {
	return NewWithRNG(sim.NewRNG(seed))
}

// NewWithRNG returns a registry drawing from an existing stream — how
// the plant's FailProb adapter preserves the legacy draw sequence.
func NewWithRNG(rng *sim.RNG) *Registry {
	return &Registry{
		rng:    rng,
		rules:  make(map[key]*rule),
		counts: make(map[string]int64),
	}
}

// SetTelemetry wires per-kind injection counters
// ("fault.injections.<kind>"). Passing nil detaches them.
func (r *Registry) SetTelemetry(h *telemetry.Hub) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h == nil {
		r.tel = nil
		return
	}
	r.tel = make(map[Kind]*telemetry.Counter)
	for _, k := range Kinds {
		r.tel[k] = h.Counter("fault.injections." + string(k))
	}
}

// SetProb installs a recurring rule: every Should check at (site, kind,
// op) fires with probability prob. op "" makes the rule the site-wide
// default for the kind; site Wildcard applies to every site. A prob of
// 0 removes the recurring rule (any armed one-shots stay).
func (r *Registry) SetProb(site string, kind Kind, op string, prob float64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.upsert(site, kind, op).prob = prob
}

// SetDelay sets the stall duration rules at (site, kind, op) inject
// when they fire.
func (r *Registry) SetDelay(site string, kind Kind, op string, d time.Duration) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.upsert(site, kind, op).delay = d
}

// Arm adds times one-shot triggers at (site, kind, op): the next times
// matching checks fire unconditionally, before any probability draw.
func (r *Registry) Arm(site string, kind Kind, op string, times int) {
	if r == nil || times <= 0 {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	r.upsert(site, kind, op).armed += times
}

func (r *Registry) upsert(site string, kind Kind, op string) *rule {
	k := key{site, kind, op}
	ru, ok := r.rules[k]
	if !ok {
		ru = &rule{}
		r.rules[k] = ru
	}
	return ru
}

// lookup resolves the most specific matching rule:
// (site, op) → (*, op) → (site, "") → (*, "").
func (r *Registry) lookup(site string, kind Kind, op string) *rule {
	if op != "" {
		if ru, ok := r.rules[key{site, kind, op}]; ok {
			return ru
		}
		if ru, ok := r.rules[key{Wildcard, kind, op}]; ok {
			return ru
		}
	}
	if ru, ok := r.rules[key{site, kind, ""}]; ok {
		return ru
	}
	if ru, ok := r.rules[key{Wildcard, kind, ""}]; ok {
		return ru
	}
	return nil
}

// decide applies the matched rule: armed one-shots fire first, then the
// probability draw. Exactly one RNG draw is consumed per check whose
// rule has 0 < prob, and none otherwise, so adding never-firing rules
// does not perturb unrelated draws.
func (r *Registry) decide(site string, kind Kind, op string) bool {
	ru := r.lookup(site, kind, op)
	if ru == nil {
		return false
	}
	if ru.armed > 0 {
		ru.armed--
		r.record(site, kind, op)
		return true
	}
	if ru.prob > 0 && r.rng.Bernoulli(ru.prob) {
		r.record(site, kind, op)
		return true
	}
	return false
}

// Should reports whether the fault at (site, kind, op) fires now. Use
// op "" for checks with no finer qualifier.
func (r *Registry) Should(site string, kind Kind, op string) bool {
	if r == nil {
		return false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.decide(site, kind, op)
}

// DelayFor reports how long the delay fault at (site, kind, op) stalls
// the caller: the matched rule's delay when the check fires, 0
// otherwise.
func (r *Registry) DelayFor(site string, kind Kind, op string) time.Duration {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.decide(site, kind, op) {
		return 0
	}
	if ru := r.lookup(site, kind, op); ru != nil {
		return ru.delay
	}
	return 0
}

// record counts one injection under the registry's mutex.
func (r *Registry) record(site string, kind Kind, op string) {
	label := site + "/" + string(kind)
	if op != "" {
		label += "/" + op
	}
	r.counts[label]++
	r.tel[kind].Inc()
}

// Count reports injections recorded at exactly (site, kind, op).
func (r *Registry) Count(site string, kind Kind, op string) int64 {
	if r == nil {
		return 0
	}
	label := site + "/" + string(kind)
	if op != "" {
		label += "/" + op
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[label]
}

// Total reports injections of one kind across all sites and ops.
func (r *Registry) Total(kind Kind) int64 {
	if r == nil {
		return 0
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	var n int64
	for label, c := range r.counts {
		if matchKind(label, kind) {
			n += c
		}
	}
	return n
}

func matchKind(label string, kind Kind) bool {
	// label is "site/kind" or "site/kind/op"; the site never contains
	// a slash.
	rest := label
	for i := 0; i < len(rest); i++ {
		if rest[i] == '/' {
			rest = rest[i+1:]
			break
		}
	}
	if rest == string(kind) {
		return true
	}
	return len(rest) > len(kind) && rest[:len(kind)] == string(kind) && rest[len(kind)] == '/'
}

// Counts returns a copy of all injection counts, keyed
// "site/kind[/op]" — deterministic inputs produce deterministic counts,
// so experiments report them directly.
func (r *Registry) Counts() map[string]int64 {
	out := make(map[string]int64)
	if r == nil {
		return out
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for k, v := range r.counts {
		out[k] = v
	}
	return out
}

// Summary renders the injection counts as sorted "label=n" lines for
// logs and experiment tables.
func (r *Registry) Summary() []string {
	counts := r.Counts()
	labels := make([]string, 0, len(counts))
	for l := range counts {
		labels = append(labels, l)
	}
	sort.Strings(labels)
	out := make([]string, len(labels))
	for i, l := range labels {
		out[i] = fmt.Sprintf("%s=%d", l, counts[l])
	}
	return out
}
