package fault

import (
	"testing"
	"time"

	"vmplants/internal/sim"
	"vmplants/internal/telemetry"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	r.SetProb("p", ActionFail, "x", 1)
	r.Arm("p", PlantCrash, "", 3)
	if r.Should("p", ActionFail, "x") {
		t.Fatal("nil registry injected a fault")
	}
	if d := r.DelayFor("p", RPCDelay, ""); d != 0 {
		t.Fatalf("nil registry delay = %v", d)
	}
	if n := r.Total(ActionFail); n != 0 {
		t.Fatalf("nil registry Total = %d", n)
	}
	if got := len(r.Counts()); got != 0 {
		t.Fatalf("nil registry Counts has %d entries", got)
	}
}

func TestOneShotTriggersFireBeforeProbability(t *testing.T) {
	r := NewRegistry(1)
	r.Arm("plant00", PlantCrash, "create", 2)
	for i := 0; i < 2; i++ {
		if !r.Should("plant00", PlantCrash, "create") {
			t.Fatalf("armed trigger %d did not fire", i)
		}
	}
	if r.Should("plant00", PlantCrash, "create") {
		t.Fatal("trigger fired more times than armed")
	}
	if got := r.Count("plant00", PlantCrash, "create"); got != 2 {
		t.Fatalf("Count = %d, want 2", got)
	}
}

func TestProbabilityZeroAndOne(t *testing.T) {
	r := NewRegistry(7)
	r.SetProb("p", CloneIO, "", 1)
	r.SetProb("q", CloneIO, "", 0)
	for i := 0; i < 50; i++ {
		if !r.Should("p", CloneIO, "") {
			t.Fatal("prob 1 did not fire")
		}
		if r.Should("q", CloneIO, "") {
			t.Fatal("prob 0 fired")
		}
	}
	if got := r.Total(CloneIO); got != 50 {
		t.Fatalf("Total = %d, want 50", got)
	}
}

func TestLookupSpecificity(t *testing.T) {
	r := NewRegistry(3)
	r.SetProb(Wildcard, ActionFail, "", 0)       // site-wide default everywhere
	r.SetProb("p", ActionFail, "", 0)            // site default
	r.SetProb(Wildcard, ActionFail, "config", 0) // op on every site
	r.SetProb("p", ActionFail, "config", 1)      // most specific

	if !r.Should("p", ActionFail, "config") {
		t.Fatal("most specific rule not selected")
	}
	if r.Should("p", ActionFail, "other") { // falls to site default (0)
		t.Fatal("site default should not fire")
	}
	if r.Should("q", ActionFail, "other") { // falls to wildcard default (0)
		t.Fatal("wildcard default should not fire")
	}

	r2 := NewRegistry(3)
	r2.SetProb(Wildcard, ActionFail, "config", 1)
	if !r2.Should("anything", ActionFail, "config") {
		t.Fatal("wildcard op rule not selected")
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() []bool {
		r := NewRegistry(99)
		r.SetProb(Wildcard, RPCDrop, "", 0.3)
		out := make([]bool, 200)
		for i := range out {
			out[i] = r.Should("plant01", RPCDrop, "")
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d diverged between identical runs", i)
		}
	}
	fired := 0
	for _, v := range a {
		if v {
			fired++
		}
	}
	if fired == 0 || fired == len(a) {
		t.Fatalf("fired %d/%d with prob 0.3 — degenerate stream", fired, len(a))
	}
}

// A miss (no matching rule) and a zero-prob rule must both consume zero
// RNG draws, so arming new never-firing rules cannot perturb the draw
// sequence of unrelated checks — the property the FailProb adapter
// depends on for byte-identical legacy replays.
func TestRuleMissConsumesNoDraws(t *testing.T) {
	rng1 := sim.NewRNG(5)
	rng2 := sim.NewRNG(5)
	r := NewWithRNG(rng2)
	r.SetProb("p", ActionFail, "fires", 0.5)
	r.SetProb("p", CloneIO, "", 0)

	for i := 0; i < 100; i++ {
		r.Should("p", ActionFail, "no-such-rule") // miss: no draw
		r.Should("p", CloneIO, "")                // zero prob: no draw
		want := rng1.Bernoulli(0.5)
		if got := r.Should("p", ActionFail, "fires"); got != want {
			t.Fatalf("draw %d: registry %v, reference %v — extra draws consumed", i, got, want)
		}
	}
}

func TestDelayFor(t *testing.T) {
	r := NewRegistry(11)
	r.SetProb("p", RPCDelay, "", 1)
	r.SetDelay("p", RPCDelay, "", 250*time.Millisecond)
	if d := r.DelayFor("p", RPCDelay, ""); d != 250*time.Millisecond {
		t.Fatalf("DelayFor = %v, want 250ms", d)
	}
	if d := r.DelayFor("q", RPCDelay, ""); d != 0 {
		t.Fatalf("unmatched DelayFor = %v, want 0", d)
	}
	r.SetProb("p", RPCDelay, "", 0)
	if d := r.DelayFor("p", RPCDelay, ""); d != 0 {
		t.Fatalf("disabled DelayFor = %v, want 0", d)
	}
}

func TestCountsAndSummary(t *testing.T) {
	r := NewRegistry(2)
	r.Arm("p", PlantCrash, "create", 1)
	r.Arm("q", RPCDrop, "", 2)
	r.Should("p", PlantCrash, "create")
	r.Should("q", RPCDrop, "")
	r.Should("q", RPCDrop, "")

	counts := r.Counts()
	if counts["p/plant-crash/create"] != 1 || counts["q/rpc-drop"] != 2 {
		t.Fatalf("Counts = %v", counts)
	}
	if got := r.Total(PlantCrash); got != 1 {
		t.Fatalf("Total(PlantCrash) = %d", got)
	}
	sum := r.Summary()
	want := []string{"p/plant-crash/create=1", "q/rpc-drop=2"}
	if len(sum) != len(want) {
		t.Fatalf("Summary = %v", sum)
	}
	for i := range want {
		if sum[i] != want[i] {
			t.Fatalf("Summary[%d] = %q, want %q", i, sum[i], want[i])
		}
	}
}

func TestTelemetryCounters(t *testing.T) {
	hub := telemetry.New()
	r := NewRegistry(4)
	r.SetTelemetry(hub)
	r.Arm("p", CloneIO, "", 3)
	for i := 0; i < 3; i++ {
		r.Should("p", CloneIO, "")
	}
	if got := hub.Counter("fault.injections." + string(CloneIO)).Value(); got != 3 {
		t.Fatalf("telemetry counter = %d, want 3", got)
	}
}

// Regression: SetTelemetry used to hard-code the kind list, so a newly
// added kind silently missed its injection counter. The counter set is
// now derived from Kinds; every exported kind must register and count.
func TestTelemetryCoversAllKinds(t *testing.T) {
	exported := []Kind{PlantCrash, RPCDrop, RPCDelay, CloneIO, SlowBid, ActionFail, CorruptExtent, TornWrite, DaemonKill}
	if len(Kinds) != len(exported) {
		t.Fatalf("Kinds lists %d kinds, exported are %d — keep the slice in sync", len(Kinds), len(exported))
	}
	listed := map[Kind]bool{}
	for _, k := range Kinds {
		listed[k] = true
	}
	for _, k := range exported {
		if !listed[k] {
			t.Fatalf("exported kind %q missing from Kinds", k)
		}
	}

	hub := telemetry.New()
	r := NewRegistry(9)
	r.SetTelemetry(hub)
	for _, k := range Kinds {
		r.Arm("site", k, "op", 1)
		if !r.Should("site", k, "op") {
			t.Fatalf("armed %q did not fire", k)
		}
		if got := hub.Counter("fault.injections." + string(k)).Value(); got != 1 {
			t.Errorf("kind %q: telemetry counter = %d, want 1", k, got)
		}
	}
}
