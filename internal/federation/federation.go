// Package federation coordinates a multi-cell VMPlants deployment: one
// shop + warehouse per cell, published in a shared service registry and
// wired into each other's peer lists for hierarchical bidding.
//
// The coordinator owns the federation's background liveness machinery,
// all under the simulation clock:
//
//   - Heartbeat: every cell's "vmshop" registry binding is re-published
//     on a short lease. A cell that dies (Suspend, or a daemon kill)
//     stops heartbeating and its lease lapses, so peers' pre-call lease
//     checks fail fast instead of burning call timeouts — a vanished
//     cell drops out of bid rounds within one lease TTL.
//   - Catalog gossip: on a slower tick, every live cell's derived-image
//     catalog is exchanged with every other live cell
//     (warehouse.ExportCatalog/ImportCatalog), so a configuration
//     checkpointed in one cell becomes clone-warm federation-wide, and
//     a quarantine verdict raised anywhere poisons the image
//     everywhere.
//
// The tick loop re-schedules itself forever; simulations that run to
// quiescence must Stop it before the last foreground process exits
// (same contract as warehouse.Scrubber).
package federation

import (
	"fmt"
	"sort"
	"time"

	"vmplants/internal/registry"
	"vmplants/internal/shop"
	"vmplants/internal/sim"
	"vmplants/internal/telemetry"
	"vmplants/internal/warehouse"
)

// Defaults for the liveness machinery. The lease outlives two
// heartbeats, so a single delayed tick never fails over a healthy cell.
const (
	DefaultLeaseTTL       = 5 * time.Second
	DefaultHeartbeatEvery = 2 * time.Second
	DefaultGossipEvery    = 10 * time.Second
)

// Service is the registry service type federation cells publish under.
const Service = "vmshop"

// Cell is one federated site: a shop and the warehouse behind it.
type Cell struct {
	Name      string
	Shop      *shop.Shop
	Warehouse *warehouse.Warehouse
	// Meta is published on the cell's registry binding (site,
	// architecture, …).
	Meta map[string]string
}

// Federation wires cells together and runs their liveness loop.
type Federation struct {
	Registry *registry.Registry
	// LeaseTTL bounds how stale a dead cell's binding can look.
	LeaseTTL time.Duration
	// HeartbeatEvery is the re-publish (and registry sweep) period.
	HeartbeatEvery time.Duration
	// GossipEvery is the catalog-exchange period.
	GossipEvery time.Duration

	cells     []*Cell
	suspended map[string]bool
	stopped   bool
	proc      *sim.Proc

	mHeartbeats *telemetry.Counter
	mGossips    *telemetry.Counter
	mImports    *telemetry.Counter
	mPoisoned   *telemetry.Counter
}

// New builds a federation whose registry runs on the kernel's virtual
// clock (epoch = simulation time zero).
func New(k *sim.Kernel) *Federation {
	reg := registry.New()
	reg.Now = func() time.Time { return time.Unix(0, 0).UTC().Add(k.Now()) }
	return &Federation{
		Registry:       reg,
		LeaseTTL:       DefaultLeaseTTL,
		HeartbeatEvery: DefaultHeartbeatEvery,
		GossipEvery:    DefaultGossipEvery,
		suspended:      make(map[string]bool),
	}
}

// SetTelemetry wires the coordinator's instruments
// ("federation.heartbeats", "federation.gossip_rounds",
// "federation.images_imported", "federation.images_poisoned").
func (f *Federation) SetTelemetry(h *telemetry.Hub) {
	f.mHeartbeats = h.Counter("federation.heartbeats")
	f.mGossips = h.Counter("federation.gossip_rounds")
	f.mImports = h.Counter("federation.images_imported")
	f.mPoisoned = h.Counter("federation.images_poisoned")
}

// AddCell registers a cell. Call Wire after the last AddCell.
func (f *Federation) AddCell(c *Cell) error {
	if c.Name == "" || c.Shop == nil {
		return fmt.Errorf("federation: cell needs a name and a shop")
	}
	for _, have := range f.cells {
		if have.Name == c.Name {
			return fmt.Errorf("federation: duplicate cell %q", c.Name)
		}
	}
	f.cells = append(f.cells, c)
	return nil
}

// Cells returns the registered cells in registration order.
func (f *Federation) Cells() []*Cell { return append([]*Cell(nil), f.cells...) }

// Cell looks a cell up by name.
func (f *Federation) Cell(name string) (*Cell, bool) {
	for _, c := range f.cells {
		if c.Name == name {
			return c, true
		}
	}
	return nil, false
}

// Wire publishes every cell's binding and installs each shop's peer
// list: every other cell, reached through a LocalPeerHandle that checks
// the registry lease before each call. Deterministic: peers are wired
// in registration order.
func (f *Federation) Wire() {
	for _, c := range f.cells {
		f.publish(c)
	}
	for _, c := range f.cells {
		var peers []shop.PeerHandle
		for _, o := range f.cells {
			if o == c {
				continue
			}
			peers = append(peers, shop.NewLocalPeerHandle(o.Shop, f.Registry))
		}
		c.Shop.SetPeers(peers)
	}
}

// publish (re-)leases one cell's registry binding.
func (f *Federation) publish(c *Cell) {
	meta := map[string]string{"cell": c.Name}
	for k, v := range c.Meta {
		meta[k] = v
	}
	// Publish cannot fail here: service and name are always set.
	_ = f.Registry.Publish(registry.Binding{
		Service: Service,
		Name:    c.Name,
		Addr:    "inproc:" + c.Name,
		Meta:    meta,
	}, f.LeaseTTL)
}

// Start spawns the heartbeat/gossip loop on the kernel.
func (f *Federation) Start(k *sim.Kernel) {
	nextGossip := k.Now() + f.GossipEvery
	f.proc = k.Spawn("federation/coordinator", func(p *sim.Proc) {
		for {
			if f.stopped {
				return
			}
			f.heartbeat()
			if p.Now() >= nextGossip {
				f.GossipNow(p)
				nextGossip = p.Now() + f.GossipEvery
			}
			if f.stopped {
				return
			}
			p.Wait(f.HeartbeatEvery)
		}
	})
}

// Stop ends the loop and wakes the proc so the kernel can quiesce.
// Must be called from a running proc.
func (f *Federation) Stop() {
	f.stopped = true
	if f.proc != nil {
		f.proc.WakeUp()
	}
}

// heartbeat re-leases every live cell's binding and sweeps lapsed ones.
// A suspended or killed cell is not renewed: its binding expires on its
// own within one LeaseTTL.
func (f *Federation) heartbeat() {
	for _, c := range f.cells {
		if f.suspended[c.Name] || c.Shop.Down() {
			continue
		}
		f.publish(c)
	}
	f.Registry.Sweep()
	f.mHeartbeats.Inc()
}

// Suspend takes a cell out of the federation: its binding is withdrawn
// immediately (peers fail fast on the next lease check) and heartbeats
// stop renewing it.
func (f *Federation) Suspend(name string) {
	f.suspended[name] = true
	f.Registry.Withdraw(Service, name)
}

// Resume returns a suspended cell to service and re-leases its binding
// immediately.
func (f *Federation) Resume(name string) {
	delete(f.suspended, name)
	if c, ok := f.Cell(name); ok {
		f.publish(c)
	}
}

// GossipStats aggregates one gossip round across all importing cells.
type GossipStats struct {
	Cells    int // cells that participated
	Imported int // derived images materialized somewhere
	Poisoned int // quarantine verdicts newly applied somewhere
	Deferred int // entries waiting on a parent seed
	Rejected int // entries that failed parse or publication
}

// GossipNow runs one catalog-exchange round immediately: every live
// cell's derived catalog is exported once, then every other live cell
// imports it. Deterministic: cells exchange in registration order.
// Cells that are suspended or down neither export nor import.
func (f *Federation) GossipNow(p *sim.Proc) GossipStats {
	var st GossipStats
	type export struct {
		from    string
		entries []warehouse.CatalogEntry
	}
	var exports []export
	for _, c := range f.cells {
		if f.suspended[c.Name] || c.Shop.Down() || c.Warehouse == nil {
			continue
		}
		st.Cells++
		entries, err := c.Warehouse.ExportCatalog()
		if err != nil {
			// An unexportable image is a local defect; the cell still
			// imports from its peers this round.
			continue
		}
		exports = append(exports, export{from: c.Name, entries: entries})
	}
	for _, c := range f.cells {
		if f.suspended[c.Name] || c.Shop.Down() || c.Warehouse == nil {
			continue
		}
		for _, ex := range exports {
			if ex.from == c.Name {
				continue
			}
			ist := c.Warehouse.ImportCatalog(ex.entries, p.Now())
			st.Imported += ist.Imported
			st.Poisoned += ist.Quarantined
			st.Deferred += ist.Deferred
			st.Rejected += ist.Rejected
		}
	}
	f.mGossips.Inc()
	f.mImports.Add(int64(st.Imported))
	f.mPoisoned.Add(int64(st.Poisoned))
	return st
}

// Status is a JSON-ready snapshot of the federation for debug
// endpoints and vmctl.
type Status struct {
	Cells  []CellStatus `json:"cells"`
	Leases []string     `json:"leases"` // live registry bindings, sorted
}

// CellStatus is one cell's row in Status.
type CellStatus struct {
	Name      string `json:"name"`
	Down      bool   `json:"down,omitempty"`
	Suspended bool   `json:"suspended,omitempty"`
	Images    int    `json:"images"`
	Derived   int    `json:"derived"`
	Forwarded int    `json:"forwarded"`
}

// StatusNow snapshots the federation.
func (f *Federation) StatusNow() Status {
	var st Status
	for _, c := range f.cells {
		cs := CellStatus{
			Name:      c.Name,
			Down:      c.Shop.Down(),
			Suspended: f.suspended[c.Name],
			Forwarded: len(c.Shop.Federation().Forwarded),
		}
		if c.Warehouse != nil {
			cs.Images = len(c.Warehouse.List())
			cs.Derived = c.Warehouse.DerivedCount()
		}
		st.Cells = append(st.Cells, cs)
	}
	sort.Slice(st.Cells, func(i, j int) bool { return st.Cells[i].Name < st.Cells[j].Name })
	for _, b := range f.Registry.Discover(Service) {
		st.Leases = append(st.Leases, b.Name)
	}
	return st
}
