// Package fleet is the telemetry-driven autoscaler for a cell's plant
// fleet: a controller process that watches the shop's admission gate
// (queue depth and in-flight creations), the SLO engine's error-budget
// burn, and the spread of the latest bidding round, and grows or
// shrinks the plant set in response.
//
// Growing provisions a new plant through a caller-supplied factory,
// wires it into the shop's rotation and publishes its registry lease;
// shrinking runs the shop's safe drain protocol (shop.DrainAndRetire)
// against the emptiest plant and withdraws its lease once retired.
// Both directions are damped: scale decisions respect a cooldown, and
// shrinking additionally demands a run of consecutive calm ticks —
// classic hysteresis, so a sawtooth load cannot flap the fleet.
//
// The controller also owns brownout: when the watched SLO objective's
// burn crosses the configured threshold, every plant is switched into
// its degraded mode (publish-back and background hydration pause, the
// warehouse scrubber parks) until the burn falls back below the clear
// threshold. Enter and clear thresholds are distinct — hysteresis
// again — so the fleet does not oscillate around one line.
package fleet

import (
	"fmt"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/registry"
	"vmplants/internal/shop"
	"vmplants/internal/sim"
	"vmplants/internal/telemetry"
)

// Config tunes the controller. The zero value of any field selects the
// listed default.
type Config struct {
	// MinPlants/MaxPlants bound the fleet size (defaults 1 and 8).
	MinPlants int
	MaxPlants int
	// Tick is the control loop period (default 30s of virtual time).
	Tick time.Duration
	// Cooldown is the minimum virtual time between scaling actions in
	// either direction (default 2m).
	Cooldown time.Duration
	// ScaleUpDepth grows the fleet when admission queue depth (waiting
	// plus in-flight beyond one slot each) reaches it (default 4).
	ScaleUpDepth int
	// ScaleUpFailures grows the fleet when the shop's creation-failure
	// plus admission-shed count rose by at least this many since the
	// last tick (default 2, -1 disables). Capacity starvation does not
	// queue — an infeasible round fails fast — and a full admission gate
	// refuses without queueing either, so the depth trigger alone is
	// blind to both; failures and sheds are the starving fleet's
	// distress signals, and being deltas they cannot slip between two
	// tick samples the way a transient queue can.
	ScaleUpFailures int
	// ScaleDownDepth permits shrinking only while total admission
	// pressure is at or below it (default 0: a fully idle gate).
	ScaleDownDepth int
	// QuietTicks is how many consecutive calm ticks must pass before a
	// shrink (default 4) — the hysteresis band.
	QuietTicks int
	// BidSpread, when positive, also grows the fleet whenever the last
	// bidding round's cheapest and dearest feasible bids differ by at
	// least this much: a wide spread means the cheap capacity is nearly
	// gone and arrivals are about to pay the expensive tail.
	BidSpread core.Cost
	// BrownoutObjective names the SLO objective whose burn drives
	// brownout ("" disables brownout control).
	BrownoutObjective string
	// BrownoutBurn enters brownout at or above this burn (default 1.0:
	// the error budget is spent); BrownoutClear leaves it at or below
	// (default half of BrownoutBurn).
	BrownoutBurn  float64
	BrownoutClear float64
	// LeaseTTL is the registry lease published for provisioned plants
	// (default 0: immortal, for runs without a heartbeat process).
	LeaseTTL time.Duration
}

func (c Config) withDefaults() Config {
	if c.MinPlants <= 0 {
		c.MinPlants = 1
	}
	if c.MaxPlants <= 0 {
		c.MaxPlants = 8
	}
	if c.Tick <= 0 {
		c.Tick = 30 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * time.Minute
	}
	if c.ScaleUpDepth <= 0 {
		c.ScaleUpDepth = 4
	}
	if c.ScaleUpFailures == 0 {
		c.ScaleUpFailures = 2
	}
	if c.QuietTicks <= 0 {
		c.QuietTicks = 4
	}
	if c.BrownoutBurn <= 0 {
		c.BrownoutBurn = 1.0
	}
	if c.BrownoutClear <= 0 {
		c.BrownoutClear = c.BrownoutBurn / 2
	}
	return c
}

// Provisioner builds the next plant when the controller scales up. idx
// counts provisioned plants from 0; the returned handle must carry a
// name unique across the fleet's history (retired names stay dead).
type Provisioner func(p *sim.Proc, idx int) (shop.PlantHandle, error)

// brownouter is the optional handle capability the brownout switch
// uses (shop.LocalHandle implements it).
type brownouter interface {
	SetBrownout(on bool)
}

// vmCounter reports a plant's hosted-VM count without a round trip.
type vmCounter interface {
	ActiveVMs() int
}

// suspender is anything with a Suspend(bool) — the warehouse scrubber.
type suspender interface {
	Suspend(on bool)
}

// Status is the controller's snapshot for tests, experiments and the
// /debug/fleet endpoint.
type Status struct {
	Active     int  `json:"active"`
	Draining   int  `json:"draining"`
	ScaleUps   int  `json:"scale_ups"`
	ScaleDowns int  `json:"scale_downs"`
	Brownouts  int  `json:"brownouts"`
	InBrownout bool `json:"in_brownout"`
}

// Controller is one cell's autoscaler.
type Controller struct {
	cfg       Config
	shop      *shop.Shop
	hub       *telemetry.Hub
	reg       *registry.Registry
	provision Provisioner
	scrub     suspender

	stopped    bool
	proc       *sim.Proc
	idx        int // next provision index
	lastScale  time.Duration
	lastFails  int64 // shop failures + sheds at the previous tick
	calm       int   // consecutive calm ticks
	inBrownout bool
	draining   int // drains this controller started, not yet finished

	scaleUps   int
	scaleDowns int
	brownouts  int

	mScaleUps   *telemetry.Counter
	mScaleDowns *telemetry.Counter
	mBrownouts  *telemetry.Counter
	gPlants     *telemetry.Gauge
}

// New builds a controller over the shop. hub supplies the SLO engine
// for brownout (and receives the controller's own metrics); reg, when
// non-nil, gets a lease per provisioned plant and an Unpublish per
// retirement; provision is required for scale-up (nil pins the fleet
// at its current size).
func New(cfg Config, s *shop.Shop, hub *telemetry.Hub, reg *registry.Registry, provision Provisioner) *Controller {
	c := &Controller{
		cfg:       cfg.withDefaults(),
		shop:      s,
		hub:       hub,
		reg:       reg,
		provision: provision,
	}
	c.mScaleUps = hub.Counter("fleet.scale_ups")
	c.mScaleDowns = hub.Counter("fleet.scale_downs")
	c.mBrownouts = hub.Counter("fleet.brownouts")
	c.gPlants = hub.Gauge("fleet.plants")
	return c
}

// SetScrubber wires the warehouse scrubber into the brownout switch.
func (c *Controller) SetScrubber(s suspender) { c.scrub = s }

// Start spawns the control loop. Like the scrubber, the loop runs
// until Stop — a simulation that must reach quiescence has to stop it.
func (c *Controller) Start(k *sim.Kernel) {
	c.proc = k.Spawn("fleet/controller", func(p *sim.Proc) {
		for {
			if c.stopped {
				return
			}
			c.tick(p)
			if c.stopped {
				return
			}
			p.Wait(c.cfg.Tick)
		}
	})
}

// Stop ends the control loop and lifts any brownout (parked hydrators
// must be released or they strand the kernel at quiescence). Drains
// already in flight run to completion on their own procs.
func (c *Controller) Stop() {
	c.stopped = true
	if c.inBrownout {
		c.setBrownout(false)
	}
	if c.proc != nil {
		c.proc.WakeUp()
	}
}

// Status snapshots the controller.
func (c *Controller) Status() Status {
	return Status{
		Active:     len(c.shop.Plants()),
		Draining:   c.draining,
		ScaleUps:   c.scaleUps,
		ScaleDowns: c.scaleDowns,
		Brownouts:  c.brownouts,
		InBrownout: c.inBrownout,
	}
}

// tick is one control decision: read the signals, maybe toggle
// brownout, maybe scale.
func (c *Controller) tick(p *sim.Proc) {
	queued := c.shop.AdmissionQueueLen()
	inflight := c.shop.InflightCreates()
	depth := queued + inflight
	active := len(c.shop.Plants())
	c.gPlants.Set(int64(active))

	c.tickBrownout(p)

	// Scale up: the gate is backing up, creations started failing or
	// being shed (both fail fast without queueing, so depth alone would
	// miss them), or the last auction's bid spread says the cheap
	// capacity is exhausted.
	fails := c.hub.Counter("shop.create_failures").Value() +
		c.hub.Counter("shop.shed_creates").Value()
	failDelta := fails - c.lastFails
	c.lastFails = fails
	pressure := queued >= c.cfg.ScaleUpDepth
	if !pressure && c.cfg.ScaleUpFailures > 0 {
		pressure = failDelta >= int64(c.cfg.ScaleUpFailures)
	}
	if !pressure && c.cfg.BidSpread > 0 {
		pressure = c.lastBidSpread() >= c.cfg.BidSpread
	}
	if pressure {
		c.calm = 0
		if active+c.draining < c.cfg.MaxPlants && c.cooledDown(p) && c.provision != nil {
			c.scaleUp(p)
		}
		return
	}

	// Scale down: sustained calm, and only down to the floor. The drain
	// runs on its own proc — a tick must not block for the minutes an
	// evacuation can take.
	if depth <= c.cfg.ScaleDownDepth {
		c.calm++
	} else {
		c.calm = 0
	}
	if c.calm >= c.cfg.QuietTicks && active-c.draining > c.cfg.MinPlants && c.cooledDown(p) {
		c.scaleDown(p)
	}
}

func (c *Controller) cooledDown(p *sim.Proc) bool {
	return c.lastScale == 0 || p.Now()-c.lastScale >= c.cfg.Cooldown
}

// lastBidSpread is the cheapest-to-dearest gap of the most recent
// bidding round with at least two feasible bids (0 when none).
func (c *Controller) lastBidSpread() core.Cost {
	bids := c.shop.Bids()
	for i := len(bids) - 1; i >= 0; i-- {
		if len(bids[i].Costs) < 2 {
			continue
		}
		var min, max core.Cost
		first := true
		for _, cost := range bids[i].Costs {
			if first {
				min, max = cost, cost
				first = false
				continue
			}
			if cost < min {
				min = cost
			}
			if cost > max {
				max = cost
			}
		}
		return max - min
	}
	return 0
}

func (c *Controller) scaleUp(p *sim.Proc) {
	h, err := c.provision(p, c.idx)
	if err != nil {
		return
	}
	c.idx++
	if err := c.shop.AddPlant(h); err != nil {
		return
	}
	if c.reg != nil {
		_ = c.reg.Publish(registry.Binding{
			Service: "vmplant", Name: h.Name(), Addr: h.Name(),
		}, c.cfg.LeaseTTL)
	}
	c.lastScale = p.Now()
	c.scaleUps++
	c.mScaleUps.Inc()
	c.calm = 0
}

// scaleDown picks the emptiest active plant and drains it on a
// dedicated proc: migration can take minutes of virtual time.
func (c *Controller) scaleDown(p *sim.Proc) {
	victim := c.victim()
	if victim == "" {
		return
	}
	c.lastScale = p.Now()
	c.scaleDowns++
	c.mScaleDowns.Inc()
	c.calm = 0
	c.draining++
	p.Kernel().Spawn(fmt.Sprintf("fleet/drain/%s", victim), func(dp *sim.Proc) {
		defer func() { c.draining-- }()
		if err := c.shop.DrainAndRetire(dp, victim); err != nil {
			return
		}
		if c.reg != nil {
			c.reg.Unpublish("vmplant", victim)
		}
	})
}

// victim selects the plant to retire: the fewest hosted VMs (cheapest
// evacuation), name-ordered ties, skipping plants already draining.
func (c *Controller) victim() string {
	var best string
	bestVMs := 0
	for _, h := range c.shop.Plants() {
		name := h.Name()
		if c.shop.Draining(name) {
			continue
		}
		vms := 0
		if vc, ok := h.(vmCounter); ok {
			vms = vc.ActiveVMs()
		}
		if best == "" || vms < bestVMs || (vms == bestVMs && name < best) {
			best, bestVMs = name, vms
		}
	}
	return best
}

// tickBrownout reads the watched objective's burn and flips the
// fleet-wide degraded mode across its hysteresis band.
func (c *Controller) tickBrownout(p *sim.Proc) {
	if c.cfg.BrownoutObjective == "" || c.hub == nil || c.hub.SLO == nil {
		return
	}
	var burn float64
	found := false
	for _, st := range c.hub.SLO.Evaluate(p.Now()) {
		if st.Name == c.cfg.BrownoutObjective {
			burn, found = st.Burn, true
			break
		}
	}
	if !found {
		return
	}
	if !c.inBrownout && burn >= c.cfg.BrownoutBurn {
		c.setBrownout(true)
		c.brownouts++
		c.mBrownouts.Inc()
	} else if c.inBrownout && burn <= c.cfg.BrownoutClear {
		c.setBrownout(false)
	}
}

// setBrownout flips every plant (draining ones included — their
// background work competes for the same disks) and the scrubber.
func (c *Controller) setBrownout(on bool) {
	c.inBrownout = on
	for _, h := range c.shop.Plants() {
		if b, ok := h.(brownouter); ok {
			b.SetBrownout(on)
		}
	}
	if c.scrub != nil {
		c.scrub.Suspend(on)
	}
}
