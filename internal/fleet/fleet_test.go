package fleet_test

import (
	"testing"
	"time"

	"vmplants/internal/fleet"
	"vmplants/internal/registry"
	"vmplants/internal/shop"
	"vmplants/internal/sim"
	"vmplants/internal/telemetry"
	"vmplants/internal/workload"
)

// elastic builds a deployment with one active plant and standby
// plants to provision from, plus a controller over it.
func elastic(t *testing.T, total, standby int, hub *telemetry.Hub, cfg fleet.Config) (*workload.Deployment, *fleet.Controller, *registry.Registry) {
	t.Helper()
	d, err := workload.NewDeployment(workload.Options{
		Plants:        total,
		StandbyPlants: standby,
		Seed:          7,
		GoldenSizesMB: []int{32},
		Telemetry:     hub,
	})
	if err != nil {
		t.Fatalf("deployment: %v", err)
	}
	reg := registry.New()
	reg.Now = func() time.Time { return time.Unix(0, 0).Add(d.Kernel.Now()) }
	base := total - standby
	c := fleet.New(cfg, d.Shop, hub, reg, func(p *sim.Proc, idx int) (shop.PlantHandle, error) {
		return d.Handles[base+idx], nil
	})
	return d, c, reg
}

// TestScaleUpOnQueueDepth: a burst of concurrent creations backs up
// the admission gate; the controller provisions standby plants until
// the pressure clears or the fleet cap is hit.
func TestScaleUpOnQueueDepth(t *testing.T) {
	hub := telemetry.New()
	d, c, reg := elastic(t, 3, 2, hub, fleet.Config{
		MinPlants:    1,
		MaxPlants:    3,
		Tick:         5 * time.Second,
		Cooldown:     10 * time.Second,
		ScaleUpDepth: 2,
	})
	d.Shop.SetAdmission(shop.AdmissionConfig{MaxInflight: 1})
	c.Start(d.Kernel)

	const clients = 4
	done := 0
	err := d.Run(func(p *sim.Proc) {
		for i := 0; i < clients; i++ {
			seq := i + 1
			p.Kernel().Spawn("burst", func(wp *sim.Proc) {
				spec, err := d.WorkspaceSpec(seq, 32)
				if err != nil {
					t.Errorf("spec: %v", err)
				}
				if _, _, err := d.Shop.Create(wp, spec); err != nil {
					t.Errorf("create %d: %v", seq, err)
				}
				done++
			})
		}
		for done < clients {
			p.Sleep(time.Minute)
		}
		c.Stop()
	})
	if err != nil {
		t.Fatal(err)
	}

	st := c.Status()
	if st.ScaleUps == 0 {
		t.Fatalf("no scale-ups under a %d-deep backlog: %+v", clients, st)
	}
	if got := len(d.Shop.Plants()); got < 2 {
		t.Errorf("fleet still %d plants after scale-up", got)
	}
	if got := len(reg.Discover("vmplant")); got != st.ScaleUps {
		t.Errorf("registry has %d vmplant bindings, want %d (one per scale-up)", got, st.ScaleUps)
	}
	if hub.Counter("fleet.scale_ups").Value() != int64(st.ScaleUps) {
		t.Errorf("fleet.scale_ups counter %d != status %d",
			hub.Counter("fleet.scale_ups").Value(), st.ScaleUps)
	}
}

// TestScaleDownWhenCalm: a sustained idle gate shrinks the fleet to
// the floor via the safe drain protocol, and no further.
func TestScaleDownWhenCalm(t *testing.T) {
	hub := telemetry.New()
	d, c, reg := elastic(t, 2, 0, hub, fleet.Config{
		MinPlants:  1,
		MaxPlants:  2,
		Tick:       10 * time.Second,
		Cooldown:   time.Second,
		QuietTicks: 3,
	})
	if err := reg.Publish(registry.Binding{Service: "vmplant", Name: "node00", Addr: "node00"}, 0); err != nil {
		t.Fatalf("publish: %v", err)
	}
	c.Start(d.Kernel)

	err := d.Run(func(p *sim.Proc) {
		p.Sleep(5 * time.Minute)
		c.Stop()
	})
	if err != nil {
		t.Fatal(err)
	}

	st := c.Status()
	if st.ScaleDowns != 1 {
		t.Fatalf("scale-downs = %d, want exactly 1 (floor is MinPlants=1): %+v", st.ScaleDowns, st)
	}
	if got := len(d.Shop.Plants()); got != 1 {
		t.Errorf("fleet is %d plants, want 1", got)
	}
	// Victim selection is deterministic: empty plants tie on VM count,
	// node00 wins by name, and its lease is withdrawn on retirement.
	if !d.Shop.Retired("node00") {
		t.Error("node00 not retired")
	}
	if got := len(reg.Discover("vmplant")); got != 0 {
		t.Errorf("retired plant's lease still published (%d bindings)", got)
	}
}

// TestBrownoutFollowsSLOBurn: budget burn over the watched objective
// flips the fleet into brownout; recovery clears it (distinct enter
// and clear thresholds — the hysteresis band).
func TestBrownoutFollowsSLOBurn(t *testing.T) {
	hub := telemetry.New()
	hub.SLO = telemetry.NewSLOEngine(hub.M(), telemetry.Objective{
		Name: "create.success", Good: "fleet_test.good", Bad: "fleet_test.bad", MinRatio: 0.9,
	})
	d, c, _ := elastic(t, 1, 0, hub, fleet.Config{
		MinPlants:         1,
		MaxPlants:         1,
		Tick:              10 * time.Second,
		BrownoutObjective: "create.success",
		BrownoutBurn:      2.0,
		BrownoutClear:     0.5,
	})
	scrub := d.Warehouse.NewScrubber(time.Minute)
	scrub.Start(d.Kernel)
	c.SetScrubber(scrub)
	c.Start(d.Kernel)

	good, bad := hub.Counter("fleet_test.good"), hub.Counter("fleet_test.bad")
	err := d.Run(func(p *sim.Proc) {
		// Half the requests failing: burn = 0.5/0.1 = 5 ≥ 2 → brownout.
		good.Add(5)
		bad.Add(5)
		p.Sleep(30 * time.Second)
		if st := c.Status(); !st.InBrownout {
			t.Errorf("burn 5.0 did not enter brownout: %+v", st)
		}
		if !d.Plants[0].Brownout() {
			t.Error("plant not in brownout mode")
		}
		// Recovery: flood of successes drops burn to 0.05 ≤ 0.5 → clear.
		good.Add(990)
		p.Sleep(30 * time.Second)
		if st := c.Status(); st.InBrownout {
			t.Errorf("burn 0.05 did not clear brownout: %+v", st)
		}
		if d.Plants[0].Brownout() {
			t.Error("plant still in brownout mode after clear")
		}
		c.Stop()
		scrub.Stop()
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Status().Brownouts; got != 1 {
		t.Errorf("brownout entries = %d, want 1", got)
	}
}
