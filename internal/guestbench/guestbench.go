// Package guestbench reproduces the run-time overhead numbers the paper
// cites in §4.3: SPEC INT2000 under VMware/UML/Xen (≈2 %, 3 %, ≈0 %,
// from Barham et al.), SPECseis/SPECchem under VMware (≈6 %, from
// Figueiredo et al.), and the I/O-heavy Light Scattering Spectroscopy
// application (≈13 %, from Paladugula et al.). The paper does not
// measure these itself — they are published constants — so this package
// models them: each platform has CPU and I/O virtualization overhead
// factors, each workload a compute/I/O mix, and running a workload on a
// platform dilates its execution time accordingly.
package guestbench

import (
	"fmt"
	"sort"
	"time"

	"vmplants/internal/sim"
)

// Platform is a virtualization platform's overhead profile.
type Platform struct {
	Name string
	// CPUOverhead is the fractional slowdown of pure computation.
	CPUOverhead float64
	// IOOverhead is the fractional slowdown of I/O and system activity
	// ("application domains involving more of I/O and system activity …
	// may incur a higher performance overhead").
	IOOverhead float64
}

// The platforms of §4.3. Calibration: SPEC INT (pure compute) sees the
// CPUOverhead directly; LSS (I/O fraction 0.75) under VMware must come
// out at ≈13 %, fixing VMware's IOOverhead at ≈0.166; SPECseis (I/O
// fraction 0.30) then lands at ≈6 % as published.
var (
	Physical = Platform{Name: "physical", CPUOverhead: 0, IOOverhead: 0}
	VMware   = Platform{Name: "vmware", CPUOverhead: 0.02, IOOverhead: 0.166}
	UML      = Platform{Name: "uml", CPUOverhead: 0.03, IOOverhead: 0.30}
	Xen      = Platform{Name: "xen", CPUOverhead: 0.004, IOOverhead: 0.03}
)

// Platforms lists all modeled platforms in presentation order.
func Platforms() []Platform { return []Platform{Physical, Xen, VMware, UML} }

// Workload is a synthetic application profile.
type Workload struct {
	Name string
	// BaseSeconds is execution time on physical hardware.
	BaseSeconds float64
	// IOFraction is the share of execution dominated by I/O and system
	// activity (0 = pure compute).
	IOFraction float64
}

// The workloads of §4.3.
var (
	SPECINT  = Workload{Name: "spec-int2000", BaseSeconds: 1000, IOFraction: 0}
	SPECseis = Workload{Name: "spec-seis", BaseSeconds: 1500, IOFraction: 0.30}
	LSS      = Workload{Name: "lss-parallel", BaseSeconds: 800, IOFraction: 0.75}
)

// Workloads lists all modeled workloads in presentation order.
func Workloads() []Workload { return []Workload{SPECINT, SPECseis, LSS} }

// Slowdown returns the multiplicative execution-time dilation of w on p
// (1.0 = no overhead).
func Slowdown(p Platform, w Workload) float64 {
	return 1 + p.CPUOverhead*(1-w.IOFraction) + p.IOOverhead*w.IOFraction
}

// OverheadPercent returns the overhead of w on p relative to physical
// hardware, in percent.
func OverheadPercent(p Platform, w Workload) float64 {
	return (Slowdown(p, w) - 1) * 100
}

// Run executes the workload on the platform inside the simulation,
// consuming dilated virtual time, and returns the execution time.
func Run(proc *sim.Proc, p Platform, w Workload, rng *sim.RNG) time.Duration {
	secs := w.BaseSeconds * Slowdown(p, w)
	if rng != nil {
		secs = rng.LogNormalMean(secs, 0.01)
	}
	start := proc.Now()
	proc.Sleep(sim.Seconds(secs))
	return proc.Now() - start
}

// Row is one line of the overhead table.
type Row struct {
	Workload string
	Platform string
	Percent  float64
}

// Table computes the full §4.3 overhead table (virtual platforms only).
func Table() []Row {
	var rows []Row
	for _, w := range Workloads() {
		for _, p := range Platforms() {
			if p.Name == Physical.Name {
				continue
			}
			rows = append(rows, Row{Workload: w.Name, Platform: p.Name, Percent: OverheadPercent(p, w)})
		}
	}
	sort.SliceStable(rows, func(i, j int) bool {
		if rows[i].Workload != rows[j].Workload {
			return rows[i].Workload < rows[j].Workload
		}
		return rows[i].Platform < rows[j].Platform
	})
	return rows
}

// FormatTable renders the table for the experiment harness.
func FormatTable(rows []Row) string {
	out := fmt.Sprintf("%-14s %-10s %s\n", "workload", "platform", "overhead")
	for _, r := range rows {
		out += fmt.Sprintf("%-14s %-10s %5.1f%%\n", r.Workload, r.Platform, r.Percent)
	}
	return out
}
