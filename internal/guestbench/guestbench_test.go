package guestbench

import (
	"math"
	"strings"
	"testing"

	"vmplants/internal/sim"
)

func near(got, want, tol float64) bool { return math.Abs(got-want) <= tol }

func TestPublishedOverheadsReproduced(t *testing.T) {
	// §4.3: "the overheads relative to a physical machine are very
	// small – 3% for UML, 2% for VMware and negligible for Xen" (SPEC
	// INT2000); "SPECseis … showed a 6% overhead running under VMware";
	// "LSS … demonstrate an overhead of 13%".
	cases := []struct {
		p    Platform
		w    Workload
		want float64
		tol  float64
	}{
		{VMware, SPECINT, 2, 0.3},
		{UML, SPECINT, 3, 0.3},
		{Xen, SPECINT, 0.4, 0.5},
		{VMware, SPECseis, 6, 0.8},
		{VMware, LSS, 13, 1.0},
	}
	for _, c := range cases {
		got := OverheadPercent(c.p, c.w)
		if !near(got, c.want, c.tol) {
			t.Errorf("%s on %s: %.2f%%, want ≈%.1f%%", c.w.Name, c.p.Name, got, c.want)
		}
	}
}

func TestPhysicalHasZeroOverhead(t *testing.T) {
	for _, w := range Workloads() {
		if OverheadPercent(Physical, w) != 0 {
			t.Errorf("physical overhead on %s nonzero", w.Name)
		}
	}
}

func TestIOHeavyWorseThanComputeBound(t *testing.T) {
	for _, p := range []Platform{VMware, UML, Xen} {
		if !(Slowdown(p, LSS) > Slowdown(p, SPECINT)) {
			t.Errorf("%s: IO-heavy not slower than compute-bound", p.Name)
		}
	}
}

func TestRunConsumesDilatedTime(t *testing.T) {
	k := sim.NewKernel()
	var phys, vmw float64
	k.Spawn("bench", func(p *sim.Proc) {
		phys = Run(p, Physical, SPECINT, nil).Seconds()
		vmw = Run(p, VMware, SPECINT, nil).Seconds()
	})
	k.Run(0)
	if phys != SPECINT.BaseSeconds {
		t.Errorf("physical run = %vs", phys)
	}
	ratio := vmw / phys
	if !near(ratio, 1.02, 0.001) {
		t.Errorf("vmware dilation = %v", ratio)
	}
}

func TestTableShape(t *testing.T) {
	rows := Table()
	if len(rows) != 9 { // 3 workloads × 3 virtual platforms
		t.Fatalf("%d rows", len(rows))
	}
	s := FormatTable(rows)
	for _, want := range []string{"spec-int2000", "lss-parallel", "vmware", "uml", "xen"} {
		if !strings.Contains(s, want) {
			t.Errorf("table missing %q:\n%s", want, s)
		}
	}
}
