package isofs

import (
	"fmt"
	"testing"
)

func BenchmarkWriteRead32Scripts(b *testing.B) {
	im := New()
	for i := 0; i < 32; i++ {
		im.Add(fmt.Sprintf("scripts/%03d.sh", i), []byte("#!vmplant-action\nop=create-user\nparam.name=u\n"))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob := im.Bytes()
		if _, err := Read(blob); err != nil {
			b.Fatal(err)
		}
	}
}
