// Package isofs implements the miniature single-session CD-ROM image
// format the production line uses to deliver configuration scripts into
// guests (paper §4.1: "The DAG actions are converted into Perl scripts,
// and the Production Line writes each such script to one or more CD/ISO
// images that are then connected to the cloned VM as virtual CD-ROMs").
//
// The format is deliberately tiny but real — a magic header, a file
// table of (path, data) entries, and a CRC32 trailer — so that guests
// actually parse bytes produced by the host and corruption is detected.
//
// Layout (all integers little-endian):
//
//	magic   [8]byte  "VMPISO1\n"
//	count   uint32
//	entries count × { pathLen uint16, path, dataLen uint32, data }
//	crc32   uint32   (IEEE, over everything before it)
package isofs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sort"
	"strings"
)

var magic = [8]byte{'V', 'M', 'P', 'I', 'S', 'O', '1', '\n'}

// Limits keep hostile or buggy images from exhausting memory.
const (
	MaxFiles    = 4096
	MaxPathLen  = 255
	MaxFileSize = 64 << 20 // 64 MiB per file
)

// File is one entry in an image.
type File struct {
	Path string
	Data []byte
}

// Image is a parsed or under-construction CD image.
type Image struct {
	files []File
	index map[string]int
}

// New returns an empty image.
func New() *Image {
	return &Image{index: make(map[string]int)}
}

// validatePath enforces the path rules: non-empty, relative, clean,
// ASCII printable, and at most MaxPathLen bytes.
func validatePath(p string) error {
	if p == "" {
		return errors.New("isofs: empty path")
	}
	if len(p) > MaxPathLen {
		return fmt.Errorf("isofs: path %q exceeds %d bytes", p[:32]+"…", MaxPathLen)
	}
	if strings.HasPrefix(p, "/") {
		return fmt.Errorf("isofs: absolute path %q", p)
	}
	for _, seg := range strings.Split(p, "/") {
		if seg == "" || seg == "." || seg == ".." {
			return fmt.Errorf("isofs: path %q has empty or dot segment", p)
		}
	}
	for i := 0; i < len(p); i++ {
		if p[i] < 0x20 || p[i] == 0x7f {
			return fmt.Errorf("isofs: path %q has control character", p)
		}
	}
	return nil
}

// Add inserts a file, replacing any previous entry at the same path.
func (im *Image) Add(path string, data []byte) error {
	if err := validatePath(path); err != nil {
		return err
	}
	if len(data) > MaxFileSize {
		return fmt.Errorf("isofs: file %q exceeds %d bytes", path, MaxFileSize)
	}
	if i, ok := im.index[path]; ok {
		im.files[i].Data = append([]byte(nil), data...)
		return nil
	}
	if len(im.files) >= MaxFiles {
		return fmt.Errorf("isofs: image full (%d files)", MaxFiles)
	}
	im.index[path] = len(im.files)
	im.files = append(im.files, File{Path: path, Data: append([]byte(nil), data...)})
	return nil
}

// Lookup returns a file's content.
func (im *Image) Lookup(path string) ([]byte, bool) {
	i, ok := im.index[path]
	if !ok {
		return nil, false
	}
	return im.files[i].Data, true
}

// Len reports the number of files.
func (im *Image) Len() int { return len(im.files) }

// Paths returns all paths, sorted.
func (im *Image) Paths() []string {
	out := make([]string, 0, len(im.files))
	for _, f := range im.files {
		out = append(out, f.Path)
	}
	sort.Strings(out)
	return out
}

// WriteTo serializes the image. Entries are written in sorted path
// order so identical content always produces identical bytes.
func (im *Image) WriteTo(w io.Writer) (int64, error) {
	var buf bytes.Buffer
	buf.Write(magic[:])
	files := append([]File(nil), im.files...)
	sort.Slice(files, func(i, j int) bool { return files[i].Path < files[j].Path })
	var n4 [4]byte
	binary.LittleEndian.PutUint32(n4[:], uint32(len(files)))
	buf.Write(n4[:])
	var n2 [2]byte
	for _, f := range files {
		binary.LittleEndian.PutUint16(n2[:], uint16(len(f.Path)))
		buf.Write(n2[:])
		buf.WriteString(f.Path)
		binary.LittleEndian.PutUint32(n4[:], uint32(len(f.Data)))
		buf.Write(n4[:])
		buf.Write(f.Data)
	}
	binary.LittleEndian.PutUint32(n4[:], crc32.ChecksumIEEE(buf.Bytes()))
	buf.Write(n4[:])
	return buf.WriteTo(w)
}

// Bytes serializes the image into a fresh slice.
func (im *Image) Bytes() []byte {
	var buf bytes.Buffer
	im.WriteTo(&buf) // writing to a bytes.Buffer cannot fail
	return buf.Bytes()
}

// SizeBytes is the serialized size, used by the storage timing model.
func (im *Image) SizeBytes() int64 { return int64(len(im.Bytes())) }

// Read parses an image, verifying the magic and CRC.
func Read(blob []byte) (*Image, error) {
	if len(blob) < len(magic)+8 {
		return nil, errors.New("isofs: image too short")
	}
	if !bytes.Equal(blob[:len(magic)], magic[:]) {
		return nil, errors.New("isofs: bad magic")
	}
	body, trailer := blob[:len(blob)-4], blob[len(blob)-4:]
	if crc32.ChecksumIEEE(body) != binary.LittleEndian.Uint32(trailer) {
		return nil, errors.New("isofs: CRC mismatch (corrupt image)")
	}
	r := bytes.NewReader(body[len(magic):])
	var count uint32
	if err := binary.Read(r, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("isofs: truncated header: %w", err)
	}
	if count > MaxFiles {
		return nil, fmt.Errorf("isofs: file count %d exceeds limit", count)
	}
	im := New()
	for i := uint32(0); i < count; i++ {
		var plen uint16
		if err := binary.Read(r, binary.LittleEndian, &plen); err != nil {
			return nil, fmt.Errorf("isofs: truncated entry %d: %w", i, err)
		}
		if int(plen) > MaxPathLen {
			return nil, fmt.Errorf("isofs: entry %d path too long", i)
		}
		pbuf := make([]byte, plen)
		if _, err := io.ReadFull(r, pbuf); err != nil {
			return nil, fmt.Errorf("isofs: truncated path of entry %d: %w", i, err)
		}
		var dlen uint32
		if err := binary.Read(r, binary.LittleEndian, &dlen); err != nil {
			return nil, fmt.Errorf("isofs: truncated entry %d: %w", i, err)
		}
		if dlen > MaxFileSize {
			return nil, fmt.Errorf("isofs: entry %d data too large", i)
		}
		data := make([]byte, dlen)
		if _, err := io.ReadFull(r, data); err != nil {
			return nil, fmt.Errorf("isofs: truncated data of entry %d: %w", i, err)
		}
		if err := im.Add(string(pbuf), data); err != nil {
			return nil, err
		}
	}
	if r.Len() != 0 {
		return nil, fmt.Errorf("isofs: %d trailing bytes", r.Len())
	}
	return im, nil
}
