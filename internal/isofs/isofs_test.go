package isofs

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"
)

func TestRoundTrip(t *testing.T) {
	im := New()
	files := map[string]string{
		"scripts/00-network.sh": "#!/bin/sh\nifconfig eth0 10.1.0.7\n",
		"scripts/01-user.sh":    "useradd arijit\n",
		"manifest.xml":          "<manifest/>",
		"data/empty":            "",
	}
	for p, d := range files {
		if err := im.Add(p, []byte(d)); err != nil {
			t.Fatal(err)
		}
	}
	back, err := Read(im.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != len(files) {
		t.Fatalf("got %d files", back.Len())
	}
	for p, d := range files {
		got, ok := back.Lookup(p)
		if !ok || string(got) != d {
			t.Errorf("file %q = %q, ok=%v", p, got, ok)
		}
	}
}

func TestEmptyImageRoundTrip(t *testing.T) {
	back, err := Read(New().Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Errorf("len = %d", back.Len())
	}
}

func TestDeterministicSerialization(t *testing.T) {
	a, b := New(), New()
	a.Add("x", []byte("1"))
	a.Add("y", []byte("2"))
	b.Add("y", []byte("2"))
	b.Add("x", []byte("1"))
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("insertion order changed serialization")
	}
}

func TestCorruptionDetected(t *testing.T) {
	im := New()
	im.Add("a", []byte("hello"))
	blob := im.Bytes()
	// Flip one payload byte.
	blob[len(blob)-6] ^= 0xFF
	if _, err := Read(blob); err == nil || !strings.Contains(err.Error(), "CRC") {
		t.Errorf("corruption not detected: %v", err)
	}
}

func TestBadMagicAndTruncation(t *testing.T) {
	if _, err := Read([]byte("short")); err == nil {
		t.Error("short blob accepted")
	}
	blob := New().Bytes()
	blob[0] = 'X'
	if _, err := Read(blob); err == nil {
		t.Error("bad magic accepted")
	}
	good := func() []byte {
		im := New()
		im.Add("a", []byte("data"))
		return im.Bytes()
	}()
	// Truncations anywhere must error, never panic.
	for cut := 1; cut < len(good); cut++ {
		if _, err := Read(good[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestPathValidation(t *testing.T) {
	im := New()
	bad := []string{
		"", "/abs", "a//b", "a/./b", "a/../b", "..", strings.Repeat("x", 300),
		"ctl\x01char",
	}
	for _, p := range bad {
		if err := im.Add(p, nil); err == nil {
			t.Errorf("path %q accepted", p)
		}
	}
	if err := im.Add("ok/nested-path_1.sh", []byte("x")); err != nil {
		t.Errorf("good path rejected: %v", err)
	}
}

func TestAddReplaces(t *testing.T) {
	im := New()
	im.Add("a", []byte("1"))
	im.Add("a", []byte("2"))
	if im.Len() != 1 {
		t.Fatalf("len = %d", im.Len())
	}
	d, _ := im.Lookup("a")
	if string(d) != "2" {
		t.Errorf("data = %q", d)
	}
}

func TestAddCopiesData(t *testing.T) {
	im := New()
	buf := []byte("mutable")
	im.Add("a", buf)
	buf[0] = 'X'
	d, _ := im.Lookup("a")
	if string(d) != "mutable" {
		t.Error("image aliases caller buffer")
	}
}

func TestOversizeFileRejected(t *testing.T) {
	im := New()
	if err := im.Add("big", make([]byte, MaxFileSize+1)); err == nil {
		t.Error("oversize file accepted")
	}
}

func TestPathsSorted(t *testing.T) {
	im := New()
	im.Add("z", nil)
	im.Add("a", nil)
	im.Add("m", nil)
	p := im.Paths()
	if p[0] != "a" || p[1] != "m" || p[2] != "z" {
		t.Errorf("paths = %v", p)
	}
}

func TestRoundTripProperty(t *testing.T) {
	check := func(names []uint16, payload []byte) bool {
		im := New()
		want := map[string][]byte{}
		for i, n := range names {
			p := "f" + string(rune('a'+int(n)%26)) + "/" + string(rune('a'+i%26))
			data := payload
			if len(payload) > i {
				data = payload[i:]
			}
			if err := im.Add(p, data); err != nil {
				return false
			}
			want[p] = append([]byte(nil), data...)
		}
		back, err := Read(im.Bytes())
		if err != nil {
			return false
		}
		if back.Len() != len(want) {
			return false
		}
		for p, d := range want {
			got, ok := back.Lookup(p)
			if !ok || !bytes.Equal(got, d) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestSizeBytesMatchesSerialized(t *testing.T) {
	im := New()
	im.Add("a/b", []byte("hello"))
	if im.SizeBytes() != int64(len(im.Bytes())) {
		t.Error("SizeBytes mismatch")
	}
}
