package journal

import (
	"encoding/json"
	"net/http"
	"strconv"
)

// debugRecord is the JSON rendering of one record.
type debugRecord struct {
	Seq    uint64            `json:"seq"`
	Kind   string            `json:"kind"`
	Key    string            `json:"key"`
	Fields map[string]string `json:"fields,omitempty"`
}

// debugState is the /debug/journal payload.
type debugState struct {
	Dir      string        `json:"dir"`
	Seq      uint64        `json:"seq"`
	Segments int           `json:"segments"`
	Bytes    int64         `json:"bytes"`
	Good     int           `json:"good_records"`
	Bad      int           `json:"bad_records"`
	Records  []debugRecord `json:"records"`
}

// DebugHandler serves the journal's state as JSON for vmctl journal:
// verification counts plus the record tail (?n=K bounds it, default
// 50, n=0 means everything).
func (j *Journal) DebugHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := 50
		if q := r.URL.Query().Get("n"); q != "" {
			if v, err := strconv.Atoi(q); err == nil && v >= 0 {
				n = v
			}
		}
		good, bad := j.Verify()
		recs := j.Records()
		if n > 0 && len(recs) > n {
			recs = recs[len(recs)-n:]
		}
		st := debugState{
			Dir:      j.dir,
			Seq:      j.seq,
			Segments: len(j.segs),
			Bytes:    j.Bytes(),
			Good:     good,
			Bad:      bad,
		}
		for _, rec := range recs {
			st.Records = append(st.Records, debugRecord{
				Seq: rec.Seq, Kind: string(rec.Kind), Key: rec.Key, Fields: rec.Fields,
			})
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
}
