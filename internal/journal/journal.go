// Package journal is the durable event log under the control plane's
// state: an append-only, per-record-checksummed, segment-rotated log
// layered on a storage.Volume, replayed on daemon restart. Every state
// transition that matters — creation intents and commits, image
// publishes and retirements, quarantine entries, route changes, plant
// crashes — is appended as a typed record; a restarted daemon replays
// the log to rebuild its soft state, then reconciles against the world
// (journal-replay-then-reconcile, replacing best-effort re-scrape).
//
// Durability follows fsync semantics deterministically under the sim
// kernel: Append buffers a record and charges the device's write cost,
// Sync makes everything appended so far durable, and Crash — a kill -9
// — drops the unsynced suffix, leaving a torn remnant of the first
// unsynced record exactly the way a half-flushed page does. Replay
// verifies each record's checksum and truncates the log at the first
// bad record, surfacing the damage through the journal.torn_tails
// counter.
//
// The simulated Volume carries file metadata, not bytes, so the
// Journal keeps its own encoded record bytes as the model of on-disk
// content — the same split the plant uses for host state — while every
// append and fsync pays real virtual time through the volume's device.
package journal

import (
	"fmt"
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
	"time"

	"vmplants/internal/sim"
	"vmplants/internal/storage"
	"vmplants/internal/telemetry"
)

// Kind names one record type.
type Kind string

// The record taxonomy. Shop records track the creation protocol and
// routing; warehouse records track the catalog and quarantine set;
// plant records track hosted VMs across daemon crashes.
const (
	// CreationIntent is written (and synced) before a creation is
	// dispatched to any plant: the write-ahead half of exactly-once.
	CreationIntent Kind = "creation-intent"
	// CreationCommit records the plant that holds the finished VM; it
	// is synced before the client is answered.
	CreationCommit Kind = "creation-commit"
	// CreationAbort closes an intent whose creation failed permanently.
	CreationAbort Kind = "creation-abort"
	// CreationForward closes an intent that was re-auctioned to a peer
	// shop: the VM lives in another cell under the peer's own VMID. The
	// record carries the peer's name and the remote VMID, so replay
	// rebuilds the cross-cell forwarding table the way commits rebuild
	// local routes.
	CreationForward Kind = "creation-forward"
	// ImagePublish records a (seed or derived) image entering the
	// warehouse catalog.
	ImagePublish Kind = "image-publish"
	// ImageRetire records an image leaving the catalog — capacity
	// retirement, operator removal, or a scrubber giving up.
	ImageRetire Kind = "image-retire"
	// QuarantineEnter takes an image out of matching.
	QuarantineEnter Kind = "quarantine-enter"
	// QuarantineExit returns a repaired image to service.
	QuarantineExit Kind = "quarantine-exit"
	// RouteChange records a VM's route moving or being re-learned. The
	// record's "endpoint" field says what kind of endpoint now serves
	// the VM — "plant" (default when absent, for records written before
	// federation) or "peer" for a peer shop in another cell, in which
	// case "peer" names the shop and "remote" carries the VMID the peer
	// knows the VM by.
	RouteChange Kind = "route-change"
	// RouteDrop records a VM leaving the shop's routing table (destroy).
	RouteDrop Kind = "route-drop"
	// PlantCrash records an observed plant daemon death.
	PlantCrash Kind = "plant-crash"
	// PlantDrainBegin is written (and synced) before any drain side
	// effect: the named plant stops winning bids and its VMs are being
	// migrated away. A restart that replays this record without a
	// matching PlantRetired resumes the drain instead of routing new
	// work to the plant.
	PlantDrainBegin Kind = "plant-drain-begin"
	// PlantRetired closes a drain: the plant has left the fleet for
	// good. Replay and restart reconciliation must never route a
	// creation to a retired plant.
	PlantRetired Kind = "plant-retired"
	// PlantRecover records a plant daemon restart with the number of
	// VMs its information system was rebuilt from.
	PlantRecover Kind = "plant-recover"
	// VMCreated records a VM landing in a plant's information system.
	VMCreated Kind = "vm-created"
	// VMCollected records a VM leaving a plant (collect or migration).
	VMCollected Kind = "vm-collected"
	// ExtentPut records one reference taken on a content-addressed
	// extent in the warehouse's extent store (key = content key, hex);
	// "size" and "sum" carry what replay needs to rebuild the entry.
	ExtentPut Kind = "extent-put"
	// ExtentRelease records one reference released; a key whose puts and
	// releases balance has left the store (and the volume).
	ExtentRelease Kind = "extent-release"
)

// Endpoint kinds carried in a route-change record's "endpoint" field.
// Records written before federation carry no endpoint field; readers
// treat that as EndpointPlant.
const (
	// EndpointPlant marks a route served by a local plant.
	EndpointPlant = "plant"
	// EndpointPeer marks a route served by a peer shop in another cell
	// (the record's "peer" field names it, "remote" carries the VMID
	// the peer knows the VM by).
	EndpointPeer = "peer"
)

// Record is one journal entry. Key is the record's primary subject — a
// VMID, an image name, a plant name — and Fields carry the rest in
// deterministic order.
type Record struct {
	Seq    uint64
	Kind   Kind
	Key    string
	Fields map[string]string
}

// Field returns a named field ("" when absent).
func (r Record) Field(name string) string { return r.Fields[name] }

// DefaultSegmentBytes is the rotation threshold: an active segment that
// reaches it is closed and a new one opened.
const DefaultSegmentBytes = 16 << 10

// DefaultSyncLatency is the virtual-time cost of one fsync barrier on
// the journal device (a small battery-backed write hitting the platter).
const DefaultSyncLatency = 2 * time.Millisecond

// segment is one on-volume log file: a sequence of encoded records,
// plus possibly a torn trailing remnant left by a crash.
type segment struct {
	path  string
	recs  [][]byte
	bytes int64
}

// Journal is one daemon's event log on a volume.
type Journal struct {
	vol *storage.Volume
	dir string

	// SegmentBytes is the rotation threshold (DefaultSegmentBytes when
	// zero at Open).
	SegmentBytes int64
	// SyncLatency is the per-Sync fsync cost.
	SyncLatency time.Duration

	seq      uint64
	segs     []*segment
	segSeq   int // segment name counter, monotonic across rotations
	unsynced int // records appended since the last Sync

	mAppends  *telemetry.Counter
	mBytes    *telemetry.Counter
	mSyncs    *telemetry.Counter
	mReplays  *telemetry.Counter
	mReplayed *telemetry.Counter
	mTorn     *telemetry.Counter
	gSegments *telemetry.Gauge
	gRecords  *telemetry.Gauge
}

// Open creates a journal rooted at dir on the volume. The returned
// Journal models the daemon's log directory: the Go object holds the
// record bytes (the volume carries no content), the volume namespace
// holds the segment files and pays the device costs.
func Open(vol *storage.Volume, dir string) *Journal {
	return &Journal{
		vol:          vol,
		dir:          strings.TrimSuffix(dir, "/"),
		SegmentBytes: DefaultSegmentBytes,
		SyncLatency:  DefaultSyncLatency,
	}
}

// SetTelemetry wires the journal's instruments ("journal.appends",
// "journal.bytes", "journal.syncs", "journal.replays",
// "journal.replayed_records", "journal.torn_tails",
// "journal.segments", "journal.records"). Passing nil detaches them.
func (j *Journal) SetTelemetry(h *telemetry.Hub) {
	j.mAppends = h.Counter("journal.appends")
	j.mBytes = h.Counter("journal.bytes")
	j.mSyncs = h.Counter("journal.syncs")
	j.mReplays = h.Counter("journal.replays")
	j.mReplayed = h.Counter("journal.replayed_records")
	j.mTorn = h.Counter("journal.torn_tails")
	j.gSegments = h.Gauge("journal.segments")
	j.gRecords = h.Gauge("journal.records")
}

// Dir returns the journal's directory on the volume.
func (j *Journal) Dir() string { return j.dir }

// segPath names one segment file.
func (j *Journal) segPath(n int) string {
	return fmt.Sprintf("%s/seg-%06d.log", j.dir, n)
}

// active returns the open tail segment, rotating first when the
// current one is full (or none exists yet).
func (j *Journal) active() *segment {
	if n := len(j.segs); n > 0 && j.segs[n-1].bytes < j.SegmentBytes {
		return j.segs[n-1]
	}
	// Rotation is only legal at a sync boundary; Append syncs an
	// overflowing tail before rotating, so unsynced is always 0 here.
	j.segSeq++
	s := &segment{path: j.segPath(j.segSeq)}
	j.vol.WriteMeta(s.path, 0)
	j.segs = append(j.segs, s)
	j.gSegments.Set(int64(len(j.segs)))
	return s
}

// encode renders a record as one checksummed line:
//
//	seq=N kind=K key="..." f1="..." ... #<fnv64a-hex>\n
//
// Field keys are sorted, so encoding is deterministic; the checksum
// covers everything before " #".
func encode(r Record) []byte {
	var b strings.Builder
	fmt.Fprintf(&b, "seq=%d kind=%s key=%q", r.Seq, r.Kind, r.Key)
	keys := make([]string, 0, len(r.Fields))
	for k := range r.Fields {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%q", k, r.Fields[k])
	}
	payload := b.String()
	h := fnv.New64a()
	h.Write([]byte(payload))
	return []byte(fmt.Sprintf("%s #%016x\n", payload, h.Sum64()))
}

// decode parses and verifies one encoded record.
func decode(b []byte) (Record, error) {
	line := strings.TrimSuffix(string(b), "\n")
	i := strings.LastIndex(line, " #")
	if i < 0 || len(line)-i-2 != 16 {
		return Record{}, fmt.Errorf("journal: no checksum")
	}
	payload, sumHex := line[:i], line[i+2:]
	want, err := strconv.ParseUint(sumHex, 16, 64)
	if err != nil {
		return Record{}, fmt.Errorf("journal: bad checksum field: %w", err)
	}
	h := fnv.New64a()
	h.Write([]byte(payload))
	if h.Sum64() != want {
		return Record{}, fmt.Errorf("journal: checksum mismatch")
	}
	var r Record
	rest := payload
	for len(rest) > 0 {
		rest = strings.TrimLeft(rest, " ")
		eq := strings.Index(rest, "=")
		if eq < 0 {
			return Record{}, fmt.Errorf("journal: malformed record")
		}
		k := rest[:eq]
		rest = rest[eq+1:]
		var v string
		if strings.HasPrefix(rest, `"`) {
			var err error
			v, err = strconv.Unquote(quotedPrefix(rest))
			if err != nil {
				return Record{}, fmt.Errorf("journal: bad quoted value: %w", err)
			}
			rest = rest[len(quotedPrefix(rest)):]
		} else {
			sp := strings.Index(rest, " ")
			if sp < 0 {
				sp = len(rest)
			}
			v, rest = rest[:sp], rest[sp:]
		}
		switch k {
		case "seq":
			n, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return Record{}, err
			}
			r.Seq = n
		case "kind":
			r.Kind = Kind(v)
		case "key":
			r.Key = v
		default:
			if r.Fields == nil {
				r.Fields = make(map[string]string)
			}
			r.Fields[k] = v
		}
	}
	return r, nil
}

// quotedPrefix returns the leading Go-quoted string of s (s starts
// with a double quote).
func quotedPrefix(s string) string {
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			return s[:i+1]
		}
	}
	return s
}

// Append assigns the next sequence number, encodes the record, and
// buffers it on the active segment, paying the device's write cost. The
// record is NOT durable until Sync; a crash in between leaves at most a
// torn remnant. A nil proc appends without charging — setup-time events
// written outside the kernel (seed image publishes) — and such appends
// are treated as synced, since nothing racing them can crash.
func (j *Journal) Append(p *sim.Proc, r Record) Record {
	// "seq", "kind" and "key" are wire keys of the record envelope; a
	// field named after one would silently overwrite the envelope on
	// decode. That is a programming error, not a runtime condition.
	for _, reserved := range []string{"seq", "kind", "key"} {
		if _, clash := r.Fields[reserved]; clash {
			panic(fmt.Sprintf("journal: field name %q is reserved", reserved))
		}
	}
	// Rotating mid-unsynced-batch would tear the batch across files;
	// real loggers sync before rolling, and so does this one.
	if n := len(j.segs); n > 0 && j.segs[n-1].bytes >= j.SegmentBytes && j.unsynced > 0 {
		j.Sync(p)
	}
	j.seq++
	r.Seq = j.seq
	b := encode(r)
	seg := j.active()
	seg.recs = append(seg.recs, b)
	seg.bytes += int64(len(b))
	// The volume tracks the segment file's size; Append charges the
	// device for the new suffix (free for nil procs).
	_, _ = j.vol.Append(p, seg.path, int64(len(b)), 1)
	if p != nil {
		j.unsynced++
	}
	j.mAppends.Inc()
	j.mBytes.Add(int64(len(b)))
	j.gRecords.Set(int64(j.recordCount()))
	return r
}

// Sync makes every buffered record durable, paying one fsync barrier of
// virtual time (nil procs pay nothing). A no-op when nothing is
// buffered.
func (j *Journal) Sync(p *sim.Proc) {
	if j.unsynced == 0 {
		return
	}
	if p != nil && j.SyncLatency > 0 {
		p.Sleep(j.SyncLatency)
	}
	j.unsynced = 0
	j.mSyncs.Inc()
}

// AppendSync appends one record and makes it durable — the write-ahead
// pattern for records that must survive before the caller proceeds.
func (j *Journal) AppendSync(p *sim.Proc, r Record) Record {
	out := j.Append(p, r)
	j.Sync(p)
	return out
}

// Crash models kill -9 between fsyncs: the synced prefix survives
// byte-for-byte; of the unsynced suffix, the first record remains as a
// torn remnant (half its bytes, checksum now impossible) and the rest
// never reached the disk at all. Deterministic, so chaos runs replay
// bit-for-bit.
func (j *Journal) Crash() {
	if j.unsynced == 0 {
		return
	}
	seg := j.segs[len(j.segs)-1]
	keep := len(seg.recs) - j.unsynced
	torn := seg.recs[keep]
	cut := len(torn) / 2
	if cut == 0 {
		cut = 1
	}
	var dropped int64
	for _, b := range seg.recs[keep:] {
		dropped += int64(len(b))
	}
	seg.recs = append(seg.recs[:keep:keep], torn[:cut])
	seg.bytes += int64(cut) - dropped
	_ = j.vol.Truncate(seg.path, seg.bytes)
	j.seq -= uint64(j.unsynced)
	j.unsynced = 0
	j.gRecords.Set(int64(j.recordCount()))
}

func (j *Journal) recordCount() int {
	n := 0
	for _, s := range j.segs {
		n += len(s.recs)
	}
	return n
}

// ReplayStats reports what a replay found.
type ReplayStats struct {
	// Records is how many valid records were replayed.
	Records int
	// Segments is how many segment files were scanned.
	Segments int
	// TornTails is how many damaged records were found and truncated
	// (at most one per replay: scanning stops at the first).
	TornTails int
	// TruncatedBytes is how much damaged tail was discarded.
	TruncatedBytes int64
}

// Replay scans the log from the beginning, verifying every record's
// checksum and calling fn for each valid one in order. At the first
// record that fails to verify — a torn tail from a crash, or a
// bit-flipped body — the log is truncated to the consistent prefix:
// the damaged record, the rest of its segment, and every later segment
// are discarded, so subsequent appends extend the good prefix. The
// journal's sequence counter resumes from the last valid record.
func (j *Journal) Replay(fn func(Record) error) (ReplayStats, error) {
	var st ReplayStats
	st.Segments = len(j.segs)
	j.mReplays.Inc()
	var lastSeq uint64
	for si, seg := range j.segs {
		for ri, b := range seg.recs {
			rec, err := decode(b)
			if err != nil {
				st.TornTails++
				st.TruncatedBytes += j.truncateAt(si, ri)
				j.mTorn.Inc()
				j.seq = lastSeq
				j.unsynced = 0
				j.gRecords.Set(int64(j.recordCount()))
				j.mReplayed.Add(int64(st.Records))
				return st, nil
			}
			lastSeq = rec.Seq
			if fn != nil {
				if ferr := fn(rec); ferr != nil {
					return st, ferr
				}
			}
			st.Records++
		}
	}
	j.seq = lastSeq
	j.unsynced = 0
	j.mReplayed.Add(int64(st.Records))
	return st, nil
}

// truncateAt discards segment si's records from index ri on, plus every
// later segment, returning the discarded byte count. The truncated
// segment stays the active tail (possibly empty — the crash-after-
// rotate shape), so appends continue the consistent prefix.
func (j *Journal) truncateAt(si, ri int) int64 {
	var dropped int64
	seg := j.segs[si]
	for _, b := range seg.recs[ri:] {
		dropped += int64(len(b))
	}
	seg.recs = seg.recs[:ri:ri]
	seg.bytes -= dropped
	_ = j.vol.Truncate(seg.path, seg.bytes)
	for _, s := range j.segs[si+1:] {
		dropped += s.bytes
		if j.vol.Exists(s.path) {
			_ = j.vol.Delete(s.path)
		}
	}
	j.segs = j.segs[:si+1]
	j.gSegments.Set(int64(len(j.segs)))
	return dropped
}

// Records decodes and returns every currently valid record, stopping at
// the first damaged one — the read-only scan behind the debug endpoint
// and vmctl journal. It does not mutate the log.
func (j *Journal) Records() []Record {
	var out []Record
	for _, seg := range j.segs {
		for _, b := range seg.recs {
			rec, err := decode(b)
			if err != nil {
				return out
			}
			out = append(out, rec)
		}
	}
	return out
}

// Verify scans the whole log without mutating it and reports how many
// records verify and how many are damaged.
func (j *Journal) Verify() (good, bad int) {
	for _, seg := range j.segs {
		for _, b := range seg.recs {
			if _, err := decode(b); err != nil {
				bad++
			} else {
				good++
			}
		}
	}
	return good, bad
}

// Seq returns the last assigned sequence number.
func (j *Journal) Seq() uint64 { return j.seq }

// SegmentCount reports how many segment files the log spans.
func (j *Journal) SegmentCount() int { return len(j.segs) }

// Bytes reports the log's current on-volume size.
func (j *Journal) Bytes() int64 {
	var n int64
	for _, s := range j.segs {
		n += s.bytes
	}
	return n
}

// CorruptRecord flips bytes in the middle of one stored record — the
// bit-rot injection the torn-tail tests (and corruption experiments)
// use. Indexes are (segment, record) from the start of the log.
func (j *Journal) CorruptRecord(seg, rec int) error {
	if seg < 0 || seg >= len(j.segs) {
		return fmt.Errorf("journal: no segment %d", seg)
	}
	s := j.segs[seg]
	if rec < 0 || rec >= len(s.recs) {
		return fmt.Errorf("journal: segment %d has no record %d", seg, rec)
	}
	b := s.recs[rec]
	b[len(b)/2] ^= 0x5a
	return nil
}

// TruncateTail shortens the final record's bytes to n, simulating a
// partially flushed page discovered on restart.
func (j *Journal) TruncateTail(n int) error {
	if len(j.segs) == 0 {
		return fmt.Errorf("journal: empty")
	}
	seg := j.segs[len(j.segs)-1]
	if len(seg.recs) == 0 {
		return fmt.Errorf("journal: active segment empty")
	}
	last := seg.recs[len(seg.recs)-1]
	if n < 0 || n >= len(last) {
		return fmt.Errorf("journal: truncate to %d of %d", n, len(last))
	}
	seg.bytes -= int64(len(last) - n)
	seg.recs[len(seg.recs)-1] = last[:n]
	_ = j.vol.Truncate(seg.path, seg.bytes)
	return nil
}

// AppendEmptySegment force-rotates to a fresh, empty segment — the
// crash-right-after-rotate shape the torn-tail tests cover.
func (j *Journal) AppendEmptySegment() {
	j.Sync(nil)
	j.segSeq++
	s := &segment{path: j.segPath(j.segSeq)}
	j.vol.WriteMeta(s.path, 0)
	j.segs = append(j.segs, s)
	j.gSegments.Set(int64(len(j.segs)))
}
