package journal

import (
	"fmt"
	"testing"
	"time"

	"vmplants/internal/sim"
	"vmplants/internal/storage"
	"vmplants/internal/telemetry"
)

func testVol() *storage.Volume {
	return storage.NewVolume("jdisk",
		storage.NewDevice("jdisk", 80<<20, 100*time.Microsecond))
}

// run executes body as the sole kernel process.
func run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	k := sim.NewKernel()
	k.Spawn("test", body)
	if res := k.Run(0); len(res.Stranded) != 0 {
		t.Fatalf("stranded procs: %v", res.Stranded)
	}
}

func rec(kind Kind, key string, kv ...string) Record {
	r := Record{Kind: kind, Key: key}
	if len(kv) > 0 {
		r.Fields = make(map[string]string)
		for i := 0; i+1 < len(kv); i += 2 {
			r.Fields[kv[i]] = kv[i+1]
		}
	}
	return r
}

func TestAppendReplayRoundTrip(t *testing.T) {
	j := Open(testVol(), "journal/test")
	run(t, func(p *sim.Proc) {
		j.AppendSync(p, rec(CreationIntent, "vm-1", "req", "r-1", "spec", `<a b="c"/>`))
		j.AppendSync(p, rec(CreationCommit, "vm-1", "plant", "plant3"))
		j.AppendSync(p, rec(QuarantineEnter, "img-64", "reason", "scrub: checksum mismatch"))
	})
	var got []Record
	st, err := j.Replay(func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if st.Records != 3 || st.TornTails != 0 {
		t.Fatalf("stats = %+v, want 3 records, 0 torn", st)
	}
	if got[0].Kind != CreationIntent || got[0].Field("spec") != `<a b="c"/>` {
		t.Fatalf("record 0 round-trip broken: %+v", got[0])
	}
	if got[1].Field("plant") != "plant3" || got[2].Field("reason") != "scrub: checksum mismatch" {
		t.Fatalf("fields lost: %+v / %+v", got[1], got[2])
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) {
			t.Fatalf("record %d has seq %d", i, r.Seq)
		}
	}
}

func TestAppendChargesDeviceAndSyncCostsTime(t *testing.T) {
	j := Open(testVol(), "journal/test")
	var appended, synced time.Duration
	run(t, func(p *sim.Proc) {
		t0 := p.Now()
		j.Append(p, rec(VMCreated, "vm-9"))
		appended = p.Now() - t0
		t0 = p.Now()
		j.Sync(p)
		synced = p.Now() - t0
	})
	if appended <= 0 {
		t.Fatalf("append charged no virtual time")
	}
	if synced != DefaultSyncLatency {
		t.Fatalf("sync cost %v, want %v", synced, DefaultSyncLatency)
	}
}

func TestSegmentRotation(t *testing.T) {
	j := Open(testVol(), "journal/test")
	j.SegmentBytes = 256
	run(t, func(p *sim.Proc) {
		for i := 0; i < 20; i++ {
			j.AppendSync(p, rec(VMCreated, fmt.Sprintf("vm-%d", i), "plant", "p0"))
		}
	})
	if j.SegmentCount() < 2 {
		t.Fatalf("expected rotation, got %d segment(s)", j.SegmentCount())
	}
	st, err := j.Replay(nil)
	if err != nil || st.Records != 20 || st.TornTails != 0 {
		t.Fatalf("replay after rotation: %+v, %v", st, err)
	}
}

func TestCrashDropsUnsyncedLeavingTornTail(t *testing.T) {
	j := Open(testVol(), "journal/test")
	run(t, func(p *sim.Proc) {
		j.AppendSync(p, rec(CreationIntent, "vm-1"))
		j.AppendSync(p, rec(CreationCommit, "vm-1", "plant", "p1"))
		// Buffered but never synced: these die with the daemon.
		j.Append(p, rec(CreationIntent, "vm-2"))
		j.Append(p, rec(CreationCommit, "vm-2", "plant", "p2"))
	})
	j.Crash()
	var got []Record
	st, err := j.Replay(func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if st.Records != 2 {
		t.Fatalf("replayed %d records, want the 2 synced ones", st.Records)
	}
	if st.TornTails != 1 {
		t.Fatalf("torn tails = %d, want 1 (the half-flushed intent)", st.TornTails)
	}
	if got[1].Kind != CreationCommit || got[1].Key != "vm-1" {
		t.Fatalf("durable prefix wrong: %+v", got)
	}
	// The log is consistent again: appends extend the good prefix and
	// sequence numbers continue from the last durable record.
	run(t, func(p *sim.Proc) {
		r := j.AppendSync(p, rec(CreationAbort, "vm-3"))
		if r.Seq != 3 {
			t.Fatalf("post-replay seq = %d, want 3", r.Seq)
		}
	})
	if st, _ := j.Replay(nil); st.Records != 3 || st.TornTails != 0 {
		t.Fatalf("post-truncate replay: %+v", st)
	}
}

func TestCrashWithNothingUnsyncedIsLossless(t *testing.T) {
	j := Open(testVol(), "journal/test")
	run(t, func(p *sim.Proc) {
		j.AppendSync(p, rec(RouteDrop, "vm-1"))
	})
	j.Crash()
	if st, _ := j.Replay(nil); st.Records != 1 || st.TornTails != 0 {
		t.Fatalf("clean crash lost data: %+v", st)
	}
}

// Torn-tail trio, case 1: the final record's bytes were only partially
// flushed.
func TestReplayTruncatedFinalRecord(t *testing.T) {
	hub := telemetry.New()
	j := Open(testVol(), "journal/test")
	j.SetTelemetry(hub)
	run(t, func(p *sim.Proc) {
		for i := 0; i < 5; i++ {
			j.AppendSync(p, rec(VMCreated, fmt.Sprintf("vm-%d", i)))
		}
	})
	if err := j.TruncateTail(7); err != nil {
		t.Fatal(err)
	}
	st, err := j.Replay(nil)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if st.Records != 4 || st.TornTails != 1 {
		t.Fatalf("stats = %+v, want 4 records + 1 torn tail", st)
	}
	if got := hub.Counter("journal.torn_tails").Value(); got != 1 {
		t.Fatalf("journal.torn_tails = %d, want 1", got)
	}
	if j.Seq() != 4 {
		t.Fatalf("seq = %d, want 4", j.Seq())
	}
}

// Torn-tail trio, case 2: a bit flip in the middle of the log. Replay
// keeps the prefix and discards everything from the damage on — a
// consistent prefix, not a hole.
func TestReplayBitFlippedMidSegmentRecord(t *testing.T) {
	hub := telemetry.New()
	j := Open(testVol(), "journal/test")
	j.SetTelemetry(hub)
	run(t, func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			j.AppendSync(p, rec(VMCreated, fmt.Sprintf("vm-%d", i)))
		}
	})
	if err := j.CorruptRecord(0, 3); err != nil {
		t.Fatal(err)
	}
	var got []Record
	st, err := j.Replay(func(r Record) error { got = append(got, r); return nil })
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if st.Records != 3 || st.TornTails != 1 {
		t.Fatalf("stats = %+v, want 3-record prefix + 1 torn", st)
	}
	if got[len(got)-1].Key != "vm-2" {
		t.Fatalf("prefix ends at %q, want vm-2", got[len(got)-1].Key)
	}
	if hub.Counter("journal.torn_tails").Value() != 1 {
		t.Fatalf("torn_tails counter not bumped")
	}
	// Re-replay of the truncated log is clean and stable.
	if st, _ := j.Replay(nil); st.Records != 3 || st.TornTails != 0 {
		t.Fatalf("second replay not clean: %+v", st)
	}
}

// Torn-tail trio, case 3: a crash immediately after segment rotation
// leaves an empty active segment; replay must treat it as a consistent
// (if boring) tail.
func TestReplayEmptySegment(t *testing.T) {
	j := Open(testVol(), "journal/test")
	run(t, func(p *sim.Proc) {
		j.AppendSync(p, rec(ImagePublish, "img-a"))
	})
	j.AppendEmptySegment()
	st, err := j.Replay(nil)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if st.Records != 1 || st.TornTails != 0 || st.Segments != 2 {
		t.Fatalf("stats = %+v, want 1 record over 2 segments, 0 torn", st)
	}
	// The empty segment stays usable as the active tail.
	run(t, func(p *sim.Proc) {
		if r := j.AppendSync(p, rec(ImagePublish, "img-b")); r.Seq != 2 {
			t.Fatalf("seq = %d, want 2", r.Seq)
		}
	})
}

// A bit flip in an earlier segment discards the later segments too:
// the replayed state is a prefix of history, never a gappy subsequence.
func TestCorruptionInEarlierSegmentDropsLaterSegments(t *testing.T) {
	j := Open(testVol(), "journal/test")
	j.SegmentBytes = 128
	run(t, func(p *sim.Proc) {
		for i := 0; i < 12; i++ {
			j.AppendSync(p, rec(VMCreated, fmt.Sprintf("vm-%02d", i)))
		}
	})
	if j.SegmentCount() < 3 {
		t.Fatalf("need ≥3 segments, got %d", j.SegmentCount())
	}
	if err := j.CorruptRecord(1, 0); err != nil {
		t.Fatal(err)
	}
	st, err := j.Replay(nil)
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if st.TornTails != 1 {
		t.Fatalf("torn = %d, want 1", st.TornTails)
	}
	if j.SegmentCount() != 2 {
		t.Fatalf("later segments not discarded: %d remain", j.SegmentCount())
	}
	if good, bad := j.Verify(); bad != 0 || good != st.Records {
		t.Fatalf("verify after truncate: good=%d bad=%d want good=%d bad=0", good, bad, st.Records)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	build := func() string {
		j := Open(testVol(), "journal/test")
		run(t, func(p *sim.Proc) {
			j.AppendSync(p, rec(CreationIntent, "vm-1", "req", "r-1"))
			j.Append(p, rec(CreationCommit, "vm-1", "plant", "p0"))
		})
		j.Crash()
		_, _ = j.Replay(nil)
		var out string
		for _, r := range j.Records() {
			out += fmt.Sprintf("%d/%s/%s;", r.Seq, r.Kind, r.Key)
		}
		return fmt.Sprintf("%s seq=%d bytes=%d", out, j.Seq(), j.Bytes())
	}
	if a, b := build(), build(); a != b {
		t.Fatalf("crash/replay not deterministic:\n%s\n%s", a, b)
	}
}

// A field named after an envelope wire key ("seq", "kind", "key") would
// silently overwrite the envelope on decode; Append refuses it loudly.
func TestReservedFieldNamePanics(t *testing.T) {
	j := Open(testVol(), "journal/reserved")
	defer func() {
		if recover() == nil {
			t.Fatal("Append accepted a field named \"kind\"")
		}
	}()
	j.Append(nil, Record{Kind: ImagePublish, Key: "x", Fields: map[string]string{"kind": "seed"}})
}
