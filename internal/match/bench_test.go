package match

import (
	"testing"

	"vmplants/internal/actions"
)

func BenchmarkEvaluateFigure3(b *testing.B) {
	g := invigoGraph(b)
	perf := cachedABC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := Evaluate(g, perf)
		if !r.OK {
			b.Fatal(r.Reason)
		}
	}
}

func BenchmarkBestOver32Candidates(b *testing.B) {
	g := invigoGraph(b)
	var cands []Candidate
	for i := 0; i < 32; i++ {
		n := i % 4
		cands = append(cands, Candidate{
			ID:        string(rune('a' + i)),
			Hardware:  hw(64, 4096),
			Performed: cachedABC()[:n],
		})
	}
	_ = actions.Ops
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, ok := Best(hw(64, 4096), g, cands); !ok {
			b.Fatal("no match")
		}
	}
}
