package match

import (
	"testing"

	"vmplants/internal/actions"
	"vmplants/internal/dag"
)

// Regression (duplicate-key binding bugfix): when two DAG nodes carry
// the same action key, a performed action must bind to a node whose
// predecessors are already matched. The pre-fix greedy binding took the
// first unmatched node in graph order, which could be the one whose
// prerequisites the image lacks, spuriously failing the prefix test
// for a history the DAG plainly allows.
func TestDuplicateKeysBindInAncestorOrder(t *testing.T) {
	// X2 and X1 run the same script; X2 (declared first, so the greedy
	// binder sees it first) depends on package B, X1 only on the OS.
	g, err := dag.NewBuilder().
		Add("A", act(actions.OpInstallOS, "distro", "redhat-8.0")).
		Add("B", act(actions.OpInstallPackage, "name", "octave"), "A").
		Add("X2", act(actions.OpRunScript, "path", "/opt/setup.sh"), "B").
		Add("X1", act(actions.OpRunScript, "path", "/opt/setup.sh"), "A").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	// A cached image that installed the OS and ran the script once: a
	// history only X1 can account for.
	performed := []dag.Action{
		act(actions.OpInstallOS, "distro", "redhat-8.0"),
		act(actions.OpRunScript, "path", "/opt/setup.sh"),
	}
	r := Evaluate(g, performed)
	if !r.OK {
		t.Fatalf("match failed: %s (%s)", r.Failed, r.Reason)
	}
	if len(r.Matched) != 2 || r.Matched[0] != "A" || r.Matched[1] != "X1" {
		t.Errorf("matched %v, want [A X1]", r.Matched)
	}
	if len(r.Residual) != 2 {
		t.Errorf("residual %v, want B and X2", r.Residual)
	}
}

// With every same-key node's prerequisites satisfied, binding falls
// back to graph order and stays deterministic.
func TestDuplicateKeysExhaustInGraphOrder(t *testing.T) {
	g, err := dag.NewBuilder().
		Add("A", act(actions.OpInstallOS, "distro", "redhat-8.0")).
		Add("S1", act(actions.OpRunScript, "path", "/opt/setup.sh"), "A").
		Add("S2", act(actions.OpRunScript, "path", "/opt/setup.sh"), "A").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	performed := []dag.Action{
		act(actions.OpInstallOS, "distro", "redhat-8.0"),
		act(actions.OpRunScript, "path", "/opt/setup.sh"),
		act(actions.OpRunScript, "path", "/opt/setup.sh"),
	}
	r := Evaluate(g, performed)
	if !r.OK {
		t.Fatalf("match failed: %s (%s)", r.Failed, r.Reason)
	}
	if len(r.Matched) != 3 || r.Matched[1] != "S1" || r.Matched[2] != "S2" {
		t.Errorf("matched %v, want [A S1 S2]", r.Matched)
	}
}
