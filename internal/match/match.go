// Package match implements the Production Process Planner's partial
// matching of configuration DAGs against cached "golden" images — the
// three tests the paper defines in §3.2:
//
//   - Subset Test: every operation performed on the cached image is also
//     required by the requested machine's DAG.
//   - Prefix Test: an operation may appear on the cached image only if
//     all of its DAG predecessors were also performed.
//   - Partial Order Test: the order in which the cached image's
//     operations were performed is a linear extension of the DAG's
//     partial order restricted to those operations.
//
// A successful match yields a residual plan: the topologically sorted
// actions still to execute after cloning (Figure 3 steps 3–5).
package match

import (
	"fmt"

	"vmplants/internal/core"
	"vmplants/internal/dag"
)

// Test identifies which of the paper's matching tests failed.
type Test string

// Failure reasons.
const (
	TestHardware     Test = "hardware"
	TestSubset       Test = "subset"
	TestPrefix       Test = "prefix"
	TestPartialOrder Test = "partial-order"
)

// Result reports the outcome of matching one cached image against one
// requested DAG.
type Result struct {
	// OK is true when all tests pass.
	OK bool
	// Failed names the first test that failed (zero when OK).
	Failed Test
	// Reason is a human-readable explanation of a failure.
	Reason string
	// Matched lists the DAG node IDs satisfied by the cached image, in
	// the image's performed order.
	Matched []string
	// Residual lists the DAG node IDs still to execute, in a
	// deterministic topological order consistent with Matched as prefix.
	Residual []string
}

// Score is the matcher's preference value: the number of requested
// operations the image already has performed. The PPP picks the
// feasible image with the highest score (most configuration work
// already done); ties break toward smaller disk (cheaper state).
func (r Result) Score() int { return len(r.Matched) }

// Evaluate runs the three DAG tests for a cached image whose recorded
// configuration history is performed (in execution order) against the
// requested graph g. Hardware is checked separately; see Best.
func Evaluate(g *dag.Graph, performed []dag.Action) Result {
	keys := g.ActionKeys() // node ID -> action key
	// Index unmatched nodes by action key. Several nodes may share a
	// key; each performed action consumes one.
	byKey := make(map[string][]string)
	for _, id := range g.ActionIDs() {
		k := keys[id]
		byKey[k] = append(byKey[k], id)
	}

	// Subset test: bind each performed action to a distinct DAG node.
	// When several unmatched nodes share the action's key, bind in an
	// ancestor-respecting order — prefer the first node whose DAG
	// predecessors are all matched already. A valid history lists every
	// node after its ancestors, so a greedy first-unmatched binding
	// could pick a same-key node whose prerequisites the image lacks
	// and spuriously fail the prefix test.
	matched := make([]string, 0, len(performed))
	matchedSet := make(map[string]bool, len(performed))
	for i, a := range performed {
		k := a.Key()
		ids := byKey[k]
		if len(ids) == 0 {
			return Result{
				Failed: TestSubset,
				Reason: fmt.Sprintf("image operation %d (%s) is not required by the request", i, a.Op),
			}
		}
		pick := 0
		for j, id := range ids {
			ready := true
			for anc := range g.Ancestors(id) {
				if anc != dag.StartID && !matchedSet[anc] {
					ready = false
					break
				}
			}
			if ready {
				pick = j
				break
			}
		}
		id := ids[pick]
		rest := make([]string, 0, len(ids)-1)
		rest = append(rest, ids[:pick]...)
		byKey[k] = append(rest, ids[pick+1:]...)
		matched = append(matched, id)
		matchedSet[id] = true
	}

	// Prefix test: every matched node's action ancestors must be matched.
	for _, id := range matched {
		for anc := range g.Ancestors(id) {
			if anc == dag.StartID {
				continue
			}
			if !matchedSet[anc] {
				return Result{
					Failed: TestPrefix,
					Reason: fmt.Sprintf("image has %s but not its prerequisite %s", id, anc),
				}
			}
		}
	}

	// Partial order test: performed order must be a linear extension.
	if !g.IsLinearExtension(matched) {
		return Result{
			Failed: TestPartialOrder,
			Reason: "image operations were performed in an order the DAG forbids",
		}
	}

	// Residual plan: topological order of unmatched nodes. Because the
	// matched set is ancestor-closed (prefix test), removing it leaves a
	// well-formed suffix; a full topo sort filtered to unmatched nodes is
	// a valid execution order.
	topo, err := g.TopoSort()
	if err != nil {
		return Result{Failed: TestPartialOrder, Reason: "request DAG is cyclic"}
	}
	var residual []string
	for _, id := range topo {
		if id == dag.StartID || id == dag.FinishID || matchedSet[id] {
			continue
		}
		residual = append(residual, id)
	}
	return Result{OK: true, Matched: matched, Residual: residual}
}

// Candidate pairs a cached image's identity with what the matcher needs
// to know about it.
type Candidate struct {
	// ID names the golden image (warehouse key).
	ID string
	// Hardware is the image's checkpointed hardware configuration.
	Hardware core.HardwareSpec
	// Performed is the image's recorded configuration history, in
	// execution order, starting from a blank machine.
	Performed []dag.Action
}

// Ranked is a candidate together with its evaluation.
type Ranked struct {
	Candidate Candidate
	Result    Result
}

// Best evaluates every candidate against the request and returns the
// feasible matches sorted best-first: highest score, then smallest disk,
// then lexicographically smallest ID for determinism. The boolean is
// false when no candidate passes all tests.
func Best(spec core.HardwareSpec, g *dag.Graph, cands []Candidate) (Ranked, []Ranked, bool) {
	var feasible []Ranked
	for _, c := range cands {
		if !c.Hardware.Satisfies(spec) {
			continue
		}
		r := Evaluate(g, c.Performed)
		if !r.OK {
			continue
		}
		feasible = append(feasible, Ranked{Candidate: c, Result: r})
	}
	if len(feasible) == 0 {
		return Ranked{}, nil, false
	}
	sortRanked(feasible)
	return feasible[0], feasible, true
}

func sortRanked(rs []Ranked) {
	// Insertion sort: candidate lists are small and this avoids pulling
	// in sort for a three-key comparison.
	for i := 1; i < len(rs); i++ {
		for j := i; j > 0 && better(rs[j], rs[j-1]); j-- {
			rs[j], rs[j-1] = rs[j-1], rs[j]
		}
	}
}

func better(a, b Ranked) bool {
	if a.Result.Score() != b.Result.Score() {
		return a.Result.Score() > b.Result.Score()
	}
	if a.Candidate.Hardware.DiskMB != b.Candidate.Hardware.DiskMB {
		return a.Candidate.Hardware.DiskMB < b.Candidate.Hardware.DiskMB
	}
	return a.Candidate.ID < b.Candidate.ID
}

// TemplateEvaluate is the ablation baseline modeled on template-based
// provisioning (VMware VirtualCenter server templates, paper §5): a
// cached image is usable only when its configuration history covers the
// requested DAG *exactly* — same operations, nothing left to configure.
// There is no partial credit: the result is either a full match with an
// empty residual, or a miss.
func TemplateEvaluate(g *dag.Graph, performed []dag.Action) Result {
	r := Evaluate(g, performed)
	if !r.OK {
		return r
	}
	if len(r.Residual) != 0 {
		return Result{
			Failed: TestSubset,
			Reason: fmt.Sprintf("template match requires exact configuration; %d operations missing", len(r.Residual)),
		}
	}
	return r
}
