package match

import (
	"strings"
	"testing"
	"testing/quick"

	"vmplants/internal/actions"
	"vmplants/internal/core"
	"vmplants/internal/dag"
)

func act(op string, kv ...string) dag.Action {
	p := map[string]string{}
	for i := 0; i+1 < len(kv); i += 2 {
		p[kv[i]] = kv[i+1]
	}
	tgt, _ := actions.DefaultTarget(op)
	return dag.Action{Op: op, Target: tgt, Params: p}
}

// invigoGraph reproduces the paper's Figure 3 In-VIGO virtual-workspace
// DAG: A installs the OS, B/C install servers, D-F personalize, G
// configures VNC, H and I start the services.
func invigoGraph(t testing.TB) *dag.Graph {
	t.Helper()
	g, err := dag.NewBuilder().
		Add("A", act(actions.OpInstallOS, "distro", "redhat-8.0")).
		Add("B", act(actions.OpInstallPackage, "name", "vnc-server"), "A").
		Add("C", act(actions.OpInstallPackage, "name", "web-file-manager"), "B").
		Add("D", act(actions.OpConfigureNetwork, "mac", "00:50:56:01", "ip", "10.1.0.7"), "C").
		Add("E", act(actions.OpCreateUser, "name", "arijit"), "D").
		Add("F", act(actions.OpMountFS, "source", "nfs:/home/arijit", "mountpoint", "/home/arijit"), "E").
		Add("G", act(actions.OpConfigureService, "name", "vnc"), "F").
		Add("I", act(actions.OpStartService, "name", "file-manager"), "F").
		Add("H", act(actions.OpStartService, "name", "vnc"), "G").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// cachedABC is the warehouse image of Figure 3: a machine with the OS
// and both servers installed (operations A, B, C).
func cachedABC() []dag.Action {
	return []dag.Action{
		act(actions.OpInstallOS, "distro", "redhat-8.0"),
		act(actions.OpInstallPackage, "name", "vnc-server"),
		act(actions.OpInstallPackage, "name", "web-file-manager"),
	}
}

func TestFigure3PartialMatch(t *testing.T) {
	g := invigoGraph(t)
	r := Evaluate(g, cachedABC())
	if !r.OK {
		t.Fatalf("match failed: %s (%s)", r.Failed, r.Reason)
	}
	if len(r.Matched) != 3 || r.Matched[0] != "A" || r.Matched[1] != "B" || r.Matched[2] != "C" {
		t.Errorf("Matched = %v", r.Matched)
	}
	// Residual per Figure 3 step 5: D E F then G I H (topological).
	want := []string{"D", "E", "F", "G", "I", "H"}
	if len(r.Residual) != len(want) {
		t.Fatalf("Residual = %v, want %v", r.Residual, want)
	}
	for i := range want {
		if r.Residual[i] != want[i] {
			t.Errorf("Residual = %v, want %v", r.Residual, want)
			break
		}
	}
	if r.Score() != 3 {
		t.Errorf("Score = %d", r.Score())
	}
}

func TestEmptyImageMatchesEverything(t *testing.T) {
	g := invigoGraph(t)
	r := Evaluate(g, nil)
	if !r.OK {
		t.Fatalf("blank image failed: %s", r.Reason)
	}
	if r.Score() != 0 || len(r.Residual) != 9 {
		t.Errorf("blank image score=%d residual=%v", r.Score(), r.Residual)
	}
}

func TestFullMatchHasEmptyResidual(t *testing.T) {
	g := invigoGraph(t)
	full := append(cachedABC(),
		act(actions.OpConfigureNetwork, "mac", "00:50:56:01", "ip", "10.1.0.7"),
		act(actions.OpCreateUser, "name", "arijit"),
		act(actions.OpMountFS, "source", "nfs:/home/arijit", "mountpoint", "/home/arijit"),
		act(actions.OpConfigureService, "name", "vnc"),
		act(actions.OpStartService, "name", "file-manager"),
		act(actions.OpStartService, "name", "vnc"),
	)
	r := Evaluate(g, full)
	if !r.OK {
		t.Fatalf("full match failed: %s (%s)", r.Failed, r.Reason)
	}
	if len(r.Residual) != 0 {
		t.Errorf("Residual = %v, want empty", r.Residual)
	}
}

func TestSubsetTestFails(t *testing.T) {
	g := invigoGraph(t)
	// Image has an operation the request does not want.
	perf := append(cachedABC(), act(actions.OpInstallPackage, "name", "matlab"))
	r := Evaluate(g, perf)
	if r.OK || r.Failed != TestSubset {
		t.Errorf("got %+v, want subset failure", r)
	}
	if !strings.Contains(r.Reason, "not required") {
		t.Errorf("reason = %q", r.Reason)
	}
}

func TestSubsetDiffersByParams(t *testing.T) {
	g := invigoGraph(t)
	// Same op, different parameters: a different operation for matching.
	perf := []dag.Action{act(actions.OpInstallOS, "distro", "debian-3.0")}
	r := Evaluate(g, perf)
	if r.OK || r.Failed != TestSubset {
		t.Errorf("got %+v, want subset failure on param mismatch", r)
	}
}

func TestPrefixTestFails(t *testing.T) {
	g := invigoGraph(t)
	// Image has B (VNC server) without its prerequisite A (the OS) —
	// impossible history, and exactly what the prefix test rejects.
	perf := []dag.Action{act(actions.OpInstallPackage, "name", "vnc-server")}
	r := Evaluate(g, perf)
	if r.OK || r.Failed != TestPrefix {
		t.Errorf("got %+v, want prefix failure", r)
	}
}

func TestPartialOrderTestFails(t *testing.T) {
	// Parallel-capable graph where the image recorded an order the DAG
	// forbids. Use a graph with X before Y, image performed Y then X.
	g := dag.NewBuilder().
		Add("OS", act(actions.OpInstallOS, "distro", "linux")).
		Add("X", act(actions.OpInstallPackage, "name", "x"), "OS").
		Add("Y", act(actions.OpInstallPackage, "name", "y"), "X").
		MustBuild()
	perf := []dag.Action{
		act(actions.OpInstallOS, "distro", "linux"),
		act(actions.OpInstallPackage, "name", "y"),
		act(actions.OpInstallPackage, "name", "x"),
	}
	r := Evaluate(g, perf)
	if r.OK || r.Failed != TestPartialOrder {
		t.Errorf("got %+v, want partial-order failure", r)
	}
}

func TestUnorderedSiblingsEitherOrder(t *testing.T) {
	// X and Y unordered in the DAG: both performed orders must match.
	g := dag.NewBuilder().
		Add("OS", act(actions.OpInstallOS, "distro", "linux")).
		Add("X", act(actions.OpInstallPackage, "name", "x"), "OS").
		Add("Y", act(actions.OpInstallPackage, "name", "y"), "OS").
		MustBuild()
	for _, order := range [][]string{{"x", "y"}, {"y", "x"}} {
		perf := []dag.Action{act(actions.OpInstallOS, "distro", "linux")}
		for _, n := range order {
			perf = append(perf, act(actions.OpInstallPackage, "name", n))
		}
		r := Evaluate(g, perf)
		if !r.OK {
			t.Errorf("order %v rejected: %s (%s)", order, r.Failed, r.Reason)
		}
	}
}

func TestDuplicateKeyNodesBindDistinctly(t *testing.T) {
	// Two DAG nodes with identical action keys: one performed instance
	// must match only one of them.
	g := dag.NewBuilder().
		Add("OS", act(actions.OpInstallOS, "distro", "linux")).
		Add("R1", act(actions.OpRunScript, "script", "tune.sh"), "OS").
		Add("R2", act(actions.OpRunScript, "script", "tune.sh"), "R1").
		MustBuild()
	perf := []dag.Action{
		act(actions.OpInstallOS, "distro", "linux"),
		act(actions.OpRunScript, "script", "tune.sh"),
	}
	r := Evaluate(g, perf)
	if !r.OK {
		t.Fatalf("match failed: %s (%s)", r.Failed, r.Reason)
	}
	if len(r.Matched) != 2 || len(r.Residual) != 1 {
		t.Errorf("matched=%v residual=%v", r.Matched, r.Residual)
	}
	// Three performed instances of a twice-required op: subset failure.
	perf = append(perf, act(actions.OpRunScript, "script", "tune.sh"), act(actions.OpRunScript, "script", "tune.sh"))
	if r := Evaluate(g, perf); r.OK || r.Failed != TestSubset {
		t.Errorf("over-performed image: %+v", r)
	}
}

func hw(mem, disk int) core.HardwareSpec {
	return core.HardwareSpec{Arch: "x86", MemoryMB: mem, DiskMB: disk}
}

func TestBestPrefersLongestMatch(t *testing.T) {
	g := invigoGraph(t)
	cands := []Candidate{
		{ID: "blank", Hardware: hw(64, 4096)},
		{ID: "os-only", Hardware: hw(64, 4096), Performed: cachedABC()[:1]},
		{ID: "workspace", Hardware: hw(64, 4096), Performed: cachedABC()},
	}
	best, all, ok := Best(hw(64, 4096), g, cands)
	if !ok {
		t.Fatal("no feasible candidate")
	}
	if best.Candidate.ID != "workspace" {
		t.Errorf("best = %s", best.Candidate.ID)
	}
	if len(all) != 3 {
		t.Errorf("feasible count = %d", len(all))
	}
	if all[1].Candidate.ID != "os-only" || all[2].Candidate.ID != "blank" {
		t.Errorf("ranking = %v, %v", all[1].Candidate.ID, all[2].Candidate.ID)
	}
}

func TestBestHardwareFiltering(t *testing.T) {
	g := invigoGraph(t)
	cands := []Candidate{
		{ID: "wrong-mem", Hardware: hw(32, 4096), Performed: cachedABC()},
		{ID: "small-disk", Hardware: hw(64, 1024), Performed: cachedABC()},
		{ID: "wrong-arch", Hardware: core.HardwareSpec{Arch: "sparc", MemoryMB: 64, DiskMB: 4096}, Performed: cachedABC()},
	}
	if _, _, ok := Best(hw(64, 4096), g, cands); ok {
		t.Error("infeasible hardware matched")
	}
	// Bigger disk than requested is fine.
	cands = append(cands, Candidate{ID: "big-disk", Hardware: hw(64, 8192), Performed: cachedABC()})
	best, _, ok := Best(hw(64, 4096), g, cands)
	if !ok || best.Candidate.ID != "big-disk" {
		t.Errorf("best = %+v ok=%v", best.Candidate.ID, ok)
	}
}

func TestBestTieBreaks(t *testing.T) {
	g := invigoGraph(t)
	cands := []Candidate{
		{ID: "b", Hardware: hw(64, 8192), Performed: cachedABC()},
		{ID: "a", Hardware: hw(64, 8192), Performed: cachedABC()},
		{ID: "lean", Hardware: hw(64, 4096), Performed: cachedABC()},
	}
	best, all, ok := Best(hw(64, 4096), g, cands)
	if !ok {
		t.Fatal("no match")
	}
	if best.Candidate.ID != "lean" {
		t.Errorf("disk tie-break failed: best = %s", best.Candidate.ID)
	}
	if all[1].Candidate.ID != "a" || all[2].Candidate.ID != "b" {
		t.Errorf("ID tie-break failed: %s, %s", all[1].Candidate.ID, all[2].Candidate.ID)
	}
}

func TestTemplateEvaluateRequiresExactCover(t *testing.T) {
	g := invigoGraph(t)
	if r := TemplateEvaluate(g, cachedABC()); r.OK {
		t.Error("template match accepted partial image")
	}
	full := append(cachedABC(),
		act(actions.OpConfigureNetwork, "mac", "00:50:56:01", "ip", "10.1.0.7"),
		act(actions.OpCreateUser, "name", "arijit"),
		act(actions.OpMountFS, "source", "nfs:/home/arijit", "mountpoint", "/home/arijit"),
		act(actions.OpConfigureService, "name", "vnc"),
		act(actions.OpStartService, "name", "file-manager"),
		act(actions.OpStartService, "name", "vnc"),
	)
	if r := TemplateEvaluate(g, full); !r.OK {
		t.Errorf("template rejected exact image: %s (%s)", r.Failed, r.Reason)
	}
}

// Property: for any valid prefix of any topological order of a random
// chain-with-branches DAG, Evaluate must succeed and matched+residual
// must partition the action set.
func TestEvaluateAcceptsTopoPrefixesProperty(t *testing.T) {
	check := func(seed int64, cut uint8) bool {
		b := dag.NewBuilder()
		b.Add("OS", act(actions.OpInstallOS, "distro", "linux"))
		prev := "OS"
		n := int(seed%5) + 2
		if n < 2 {
			n = 2
		}
		for i := 0; i < n; i++ {
			id := "P" + string(rune('a'+i))
			b.Add(id, act(actions.OpInstallPackage, "name", id), prev)
			if seed>>(uint(i)%30)&1 == 0 {
				prev = id // extend the chain
			}
		}
		g, err := b.Build()
		if err != nil {
			return false
		}
		topo, err := g.TopoSort()
		if err != nil {
			return false
		}
		var actsInOrder []dag.Action
		for _, id := range topo {
			if id == dag.StartID || id == dag.FinishID {
				continue
			}
			node, _ := g.Node(id)
			actsInOrder = append(actsInOrder, node.Action)
		}
		k := int(cut) % (len(actsInOrder) + 1)
		r := Evaluate(g, actsInOrder[:k])
		if !r.OK {
			return false
		}
		return len(r.Matched)+len(r.Residual) == g.Len()
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: matched set of a successful Evaluate is always
// ancestor-closed and a linear extension.
func TestMatchedSetInvariantsProperty(t *testing.T) {
	g := invigoGraph(t)
	prefixes := [][]dag.Action{
		nil,
		cachedABC()[:1],
		cachedABC()[:2],
		cachedABC(),
	}
	for _, p := range prefixes {
		r := Evaluate(g, p)
		if !r.OK {
			t.Fatalf("prefix of len %d rejected: %s", len(p), r.Reason)
		}
		if !g.IsLinearExtension(r.Matched) {
			t.Errorf("matched %v is not a linear extension", r.Matched)
		}
		set := map[string]bool{}
		for _, id := range r.Matched {
			set[id] = true
		}
		for _, id := range r.Matched {
			for anc := range g.Ancestors(id) {
				if anc != dag.StartID && !set[anc] {
					t.Errorf("matched set not ancestor-closed: %s missing %s", id, anc)
				}
			}
		}
	}
}
