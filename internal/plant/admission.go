package plant

import (
	"vmplants/internal/sim"
)

// Admission control for the clone stage (the parallel creation
// pipeline's per-plant throttle): at most K clone state-copies may be in
// flight on one plant at a time. The cap keeps a batch of creations
// from thrashing the host — each in-flight VMware clone holds a redo
// copy, an NFS memory-image stream and a local read-back, so unbounded
// concurrency would just queue deeper inside the disk pipes while
// pinning memory for every partially built VM.
//
// The gate is a FIFO sim.Resource, so admission order is deterministic
// and an uncontended acquire costs zero virtual time: a single request
// on an idle plant takes exactly the path (and the timing) it took
// before the gate existed.

// cloneSlotBytesPerMB and cloneSlotDiskBps calibrate the derived cap:
// one slot per ~384 MB of free RAM (a 64 MB guest plus its copied
// state and daemon overhead) and one per 10 MB/s of local disk
// bandwidth, whichever is scarcer.
const (
	cloneSlotFreeMBPer = 384
	cloneSlotDiskBps   = 10e6
	cloneSlotMin       = 1
	cloneSlotMax       = 8
)

// deriveCloneSlots computes the admission cap from the host's classad
// attributes when Config.CloneSlots is unset:
//
//	K = clamp(min(FreeMemoryMB/384, LocalDiskBps/10MBps), 1, 8)
//
// On the default testbed node (1536 MB RAM, 35 MB/s local disk) this
// yields min(4, 3) = 3.
func (pl *Plant) deriveCloneSlots() int {
	byMem := pl.node.FreeMB() / cloneSlotFreeMBPer
	byDisk := int(pl.node.Params().LocalDiskBps / cloneSlotDiskBps)
	k := byMem
	if byDisk < k {
		k = byDisk
	}
	if k < cloneSlotMin {
		k = cloneSlotMin
	}
	if k > cloneSlotMax {
		k = cloneSlotMax
	}
	return k
}

// CloneSlots reports the plant's admission cap K.
func (pl *Plant) CloneSlots() int { return pl.cloneGate.Capacity() }

// InflightClones reports how many clones currently hold a slot.
func (pl *Plant) InflightClones() int { return pl.cloneGate.InUse() }

// AdmissionQueueLen reports how many creations are waiting for a slot.
func (pl *Plant) AdmissionQueueLen() int { return pl.cloneGate.QueueLen() }

// MaxInflightClones reports the high-water mark of concurrently
// admitted clones over the plant's lifetime.
func (pl *Plant) MaxInflightClones() int {
	return int(pl.gCloneInflightMax.Value())
}

// admitClone takes one clone slot, recording queue depth and the wait
// it cost in virtual time. The returned release function gives the slot
// back and must be called exactly once, on success and error paths
// alike.
func (pl *Plant) admitClone(p *sim.Proc) (release func()) {
	pl.gAdmissionQueue.Set(int64(pl.cloneGate.QueueLen() + 1))
	waitStart := p.Now()
	pl.cloneGate.Acquire(p, 1)
	pl.hAdmissionWait.Observe((p.Now() - waitStart).Seconds())
	pl.gAdmissionQueue.Set(int64(pl.cloneGate.QueueLen()))
	pl.gCloneInflight.Set(int64(pl.cloneGate.InUse()))
	pl.gCloneInflightMax.SetMax(int64(pl.cloneGate.InUse()))
	released := false
	return func() {
		if released {
			return
		}
		released = true
		pl.cloneGate.Release(p, 1)
		pl.gCloneInflight.Set(int64(pl.cloneGate.InUse()))
	}
}
