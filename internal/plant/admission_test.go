package plant

import (
	"fmt"
	"testing"

	"vmplants/internal/core"
	"vmplants/internal/fault"
	"vmplants/internal/sim"
	"vmplants/internal/telemetry"
)

func TestDerivedCloneSlots(t *testing.T) {
	r := newRig(t, Config{})
	// Default testbed node: 1536 MB RAM → 4 slots by memory, 35 MB/s
	// local disk → 3 by disk; the scarcer resource wins.
	if got := r.pl.CloneSlots(); got != 3 {
		t.Errorf("derived CloneSlots = %d, want 3", got)
	}
	ad := r.pl.ResourceAd()
	if got := ad.GetInt("CloneSlots", -1); got != 3 {
		t.Errorf("ad CloneSlots = %d", got)
	}
	if got := ad.GetInt("InflightClones", -1); got != 0 {
		t.Errorf("ad InflightClones = %d", got)
	}
}

func TestAdmissionCapUnderBurst(t *testing.T) {
	hub := telemetry.New()
	const slots, burst = 2, 64
	r := newRig(t, Config{CloneSlots: slots, Telemetry: hub})
	errs := make([]error, burst)
	for i := 0; i < burst; i++ {
		i := i
		r.k.Spawn(fmt.Sprintf("burst-%d", i), func(p *sim.Proc) {
			id := core.VMID(fmt.Sprintf("vm-b-%d", i))
			_, errs[i] = r.pl.Create(p, id, spec(t, fmt.Sprintf("user%02d", i)))
		})
	}
	res := r.k.Run(0)
	if len(res.Stranded) != 0 {
		t.Fatalf("stranded: %v", res.Stranded)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
	}
	if got := r.pl.ActiveVMs(); got != burst {
		t.Errorf("%d active VMs, want %d", got, burst)
	}
	// The cap saturated — real concurrency happened — but was never
	// exceeded: the high-water gauge is updated at every admission.
	if got := r.pl.MaxInflightClones(); got != slots {
		t.Errorf("max in-flight clones = %d, want exactly %d", got, slots)
	}
	if got := r.pl.InflightClones(); got != 0 {
		t.Errorf("%d clones still admitted after the run", got)
	}
	if got := r.pl.AdmissionQueueLen(); got != 0 {
		t.Errorf("%d creations still queued after the run", got)
	}
	// Every creation went through the gate, and queuing was real: with
	// 64 requests and 2 slots most of them waited.
	wait := hub.Histogram("plant.admission_wait_secs").Snapshot()
	if wait.N != burst {
		t.Errorf("admission waits recorded = %d, want %d", wait.N, burst)
	}
	if wait.Max <= 0 {
		t.Errorf("admission wait max = %v, expected queuing under the burst", wait.Max)
	}
}

// TestAdmissionGateReleasedOnError drives a creation into an injected
// clone I/O failure and checks the slot is returned: with a single slot
// a leak would deadlock every later creation.
func TestAdmissionGateReleasedOnError(t *testing.T) {
	reg := fault.NewRegistry(11)
	reg.Arm("node00", fault.CloneIO, "", 1)
	r := newRig(t, Config{CloneSlots: 1, Faults: reg})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.pl.Create(p, "vm-g-1", spec(t, "gate")); err == nil {
			t.Fatal("create survived the injected clone I/O fault")
		}
		if got := r.pl.InflightClones(); got != 0 {
			t.Fatalf("slot leaked by the failed create: %d held", got)
		}
		if _, err := r.pl.Create(p, "vm-g-2", spec(t, "gate")); err != nil {
			t.Fatalf("create after failure: %v", err)
		}
		if got := r.pl.InflightClones(); got != 0 {
			t.Errorf("slot still held after create: %d", got)
		}
	})
}
