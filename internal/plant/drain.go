// Drain and brownout: the plant-side half of the elastic fleet.
//
// Draining is the graceful exit from the fleet: a draining plant stops
// bidding (its Estimate refuses, and its resource ad carries a
// Draining marker so shops filter it even on a stale ad), refuses new
// production orders with a transient error so the shop fails the
// creation over, and lets in-flight work finish. The shop-side drain
// protocol (shop/drain.go) migrates or awaits the hosted VMs and
// journals the retirement.
//
// Brownout is the load-shedding degraded mode: when admission pressure
// burns the SLO budget, the fleet controller browns the plant out —
// publish-back checkpoints and background hydration pause so every
// disk and NFS byte serves foreground creations — and lifts it when
// pressure clears.
package plant

import (
	"fmt"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/sim"
)

// SetDraining marks (or unmarks) the plant as draining. A draining
// plant keeps serving queries, collects, migrations and in-flight
// creations; it only stops accepting new work.
func (pl *Plant) SetDraining(on bool) {
	pl.mu.Lock()
	pl.draining = on
	pl.mu.Unlock()
}

// Draining reports whether the plant is draining.
func (pl *Plant) Draining() bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.draining
}

// Retire marks the plant permanently retired. A retired plant is also
// draining (it never takes new work again); the flag is one-way.
func (pl *Plant) Retire() {
	pl.mu.Lock()
	pl.draining = true
	pl.retired = true
	pl.mu.Unlock()
}

// RetiredPlant reports whether the plant has been retired.
func (pl *Plant) RetiredPlant() bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.retired
}

// refuseIfDraining is the production-order gate: a creation dispatched
// to a plant that began draining after the bid round is a stale-bid
// race, and the transient error sends the shop to its next bidder.
func (pl *Plant) refuseIfDraining() error {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	if pl.draining {
		return fmt.Errorf("plant %s: %w: draining", pl.name, core.ErrTransient)
	}
	return nil
}

// SetBrownout switches the plant's degraded mode. Entering brownout
// pauses publish-back and background hydration; leaving it wakes the
// parked hydrators.
func (pl *Plant) SetBrownout(on bool) {
	pl.mu.Lock()
	was := pl.brownout
	pl.brownout = on
	var wake []*sim.Proc
	if was && !on {
		wake = pl.brownoutWait
		pl.brownoutWait = nil
	}
	pl.mu.Unlock()
	if was != on {
		if on {
			pl.mBrownouts.Inc()
			pl.gBrownout.Set(1)
		} else {
			pl.gBrownout.Set(0)
		}
	}
	for _, w := range wake {
		w.WakeUp()
	}
}

// Brownout reports whether the plant is in brownout.
func (pl *Plant) Brownout() bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.brownout
}

// brownoutPark parks p once if a brownout is in effect and returns
// after it is woken — by the brownout lifting or by any other WakeUp
// (a hydration cancel, say). Callers loop, re-checking their own exit
// conditions alongside Brownout(), so a cancel can always pull a
// parked proc out. Immediately returns outside a brownout.
func (pl *Plant) brownoutPark(p *sim.Proc) {
	pl.mu.Lock()
	if !pl.brownout {
		pl.mu.Unlock()
		return
	}
	pl.brownoutWait = append(pl.brownoutWait, p)
	pl.mu.Unlock()
	p.Wait(time.Hour)
}
