// Lazy-clone hydration: under vdisk.CloneByLazy the production line
// resumes a clone after copying only its private state (config, redo
// log, memory image) — the 2 GB of golden disk extents are NOT on the
// node yet. This file materializes them afterwards, two ways:
//
//   - a background hydrator (one virtual-time proc per lazy clone,
//     admission-gated like the clone state-copies themselves) walks the
//     extents in order and copies each from the warehouse's NFS view to
//     the clone's local disk directory;
//   - a demand fault: when the guest's action DAG writes a block whose
//     extent has not landed yet, the guest blocks and the touched extent
//     is copied synchronously on the faulting proc (jumping the queue —
//     foreground I/O).
//
// Every materialized extent re-checks the clone's integrity context
// (warehouse.VerifyClone), extending PR 5's epoch gate to late-arriving
// state: an image quarantined or repaired after the VM resumed must not
// have its suspect bytes land under a running guest.
package plant

import (
	"fmt"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/sim"
	"vmplants/internal/vdisk"
	"vmplants/internal/vmm"
	"vmplants/internal/warehouse"
)

// Per-extent hydration states.
const (
	hAbsent  = iota // not local; nobody is copying it
	hCopying        // a proc is copying it now
	hPresent        // local (or hydration failed — h.failed is the verdict)
)

// HydrationStats is one lazy clone's hydration record, appended to the
// plant's log when the last extent lands (or the hydration aborts).
type HydrationStats struct {
	VMID    core.VMID
	Extents int
	// DemandFaults is how many extents the guest touched before the
	// background hydrator reached them.
	DemandFaults int
	// ResumeSecs is the creation's critical-path latency (VM usable);
	// CompleteSecs is when the last extent landed — both measured from
	// the creation's start, so their gap is what laziness moved off the
	// critical path.
	ResumeSecs   float64
	CompleteSecs float64
	// Aborted is true when the hydration ended without materializing
	// every extent (integrity failure or VM collected mid-hydration).
	Aborted bool
}

// hydration tracks one lazy clone's extent materialization. All fields
// are touched only by kernel procs (the hydrator, guest actions, and
// Collect runs on procs), so kernel serialization is the lock.
type hydration struct {
	pl   *Plant
	vm   *vmm.VM
	cctx *warehouse.CloneContext
	dir  string

	state   []int
	waiters [][]*sim.Proc
	left    int // extents not yet present

	start     time.Duration // virtual time hydration began (VM resumed)
	createdAt time.Duration // virtual time the creation started
	faulted   int
	cancelled bool
	failed    error // sticky integrity failure; guest touches surface it
	proc      *sim.Proc
	logged    bool
}

// startHydration installs the demand-fault hook on a freshly resumed
// lazy clone and spawns its background hydrator.
func (pl *Plant) startHydration(p *sim.Proc, vm *vmm.VM, cctx *warehouse.CloneContext, createdAt time.Duration) *hydration {
	n := len(cctx.Image.ExtentPaths)
	h := &hydration{
		pl:        pl,
		vm:        vm,
		cctx:      cctx,
		dir:       "vms/" + string(vm.ID()) + "/",
		state:     make([]int, n),
		waiters:   make([][]*sim.Proc, n),
		left:      n,
		start:     p.Now(),
		createdAt: createdAt,
	}
	vm.SetBlockTouchHook(h.touch)
	pl.mu.Lock()
	pl.live[vm.ID()] = h
	pl.mu.Unlock()
	h.proc = p.Kernel().Spawn(pl.name+"/hydrate/"+string(vm.ID()), h.run)
	return h
}

// run is the background hydrator: extents are materialized in order,
// each copy admission-gated so a batch of lazy clones cannot saturate
// the host's disk pipes any harder than the clone stage itself could.
func (h *hydration) run(p *sim.Proc) {
	for i := range h.state {
		// Brownout pauses background hydration at extent boundaries;
		// demand faults still copy synchronously (the guest is blocked on
		// them — that is foreground I/O).
		for h.pl.Brownout() && !h.cancelled && h.failed == nil {
			h.pl.brownoutPark(p)
		}
		if h.cancelled || h.failed != nil {
			return
		}
		if h.state[i] != hAbsent {
			continue // a demand fault got there first
		}
		h.state[i] = hCopying
		h.pl.hydrateGate.Acquire(p, 1)
		err := h.copyExtent(p, i)
		h.pl.hydrateGate.Release(p, 1)
		h.land(p, i, err, false)
	}
}

// touch is the guest's pre-write hook: resolve the touched block to its
// extent and block the guest until that extent is local, copying it on
// demand when the background hydrator has not reached it yet.
func (h *hydration) touch(p *sim.Proc, block int64) error {
	blocks := h.vm.Disk().Base().SizeBytes() / vdisk.BlockSize
	i := int(block * int64(len(h.state)) / blocks)
	if i >= len(h.state) {
		i = len(h.state) - 1
	}
	for {
		if h.failed != nil {
			return h.failed
		}
		switch h.state[i] {
		case hPresent:
			return nil
		case hCopying:
			// The background hydrator (or another guest proc) is on it:
			// park until it lands and re-check.
			h.waiters[i] = append(h.waiters[i], p)
			p.Wait(time.Hour)
		case hAbsent:
			// Demand fault: claim the extent and copy it on this proc —
			// the guest pays the foreground I/O, like a page fault.
			h.state[i] = hCopying
			h.faulted++
			h.pl.mDemandFaults.Inc()
			err := h.copyExtent(p, i)
			h.land(p, i, err, true)
			if err != nil {
				return err
			}
			return nil
		}
	}
}

// copyExtent streams one extent from the warehouse's NFS view to the
// clone's local directory and re-checks the clone's integrity context:
// state arriving after the resume must pass the same epoch gate the
// eager copy passed before it.
func (h *hydration) copyExtent(p *sim.Proc, i int) error {
	node := h.vm.Node()
	src := h.cctx.Image.ExtentPaths[i]
	dst := fmt.Sprintf("%sdisk-s%03d.vmdk", h.dir, i)
	if _, err := node.Warehouse().CopyTo(p, src, node.LocalDisk(), dst, node.Jitter()); err != nil {
		return fmt.Errorf("hydrate extent %d: %w", i, err)
	}
	if err := h.pl.wh.VerifyClone(h.cctx); err != nil {
		return fmt.Errorf("hydrate extent %d: %w", i, err)
	}
	return nil
}

// land settles one extent copy: success marks it present and records
// the lag; failure poisons the whole hydration (the image went suspect
// under us — no further extents may land, and guest touches fail).
// Either way every parked waiter is woken to re-check.
func (h *hydration) land(p *sim.Proc, i int, err error, demand bool) {
	if err != nil {
		h.failed = err
		h.state[i] = hPresent // settled — nobody else should copy it
		h.finish(p, true)
	} else {
		h.state[i] = hPresent
		h.left--
		h.pl.mHydratedExtents.Inc()
		if !demand {
			h.pl.hHydrationLag.Observe((p.Now() - h.start).Seconds())
		}
		if h.left == 0 {
			h.finish(p, false)
		}
	}
	for _, w := range h.waiters[i] {
		w.WakeUp()
	}
	h.waiters[i] = nil
}

// finish closes out the hydration record exactly once.
func (h *hydration) finish(p *sim.Proc, aborted bool) {
	if h.logged {
		return
	}
	h.logged = true
	if aborted {
		h.pl.mHydrationAborts.Inc()
	}
	complete := (p.Now() - h.createdAt).Seconds()
	h.pl.hHydrationComplete.Observe(complete)
	h.pl.mu.Lock()
	h.pl.hydrations = append(h.pl.hydrations, HydrationStats{
		VMID:         h.vm.ID(),
		Extents:      len(h.state),
		DemandFaults: h.faulted,
		ResumeSecs:   (h.start - h.createdAt).Seconds(),
		CompleteSecs: complete,
		Aborted:      aborted,
	})
	h.pl.mu.Unlock()
}

// cancel stops the hydration (VM collected, creation failed): the
// background hydrator exits at its next extent boundary — an in-flight
// copy finishes, it is not torn mid-stream — and parked guest procs are
// woken into the sticky error.
func (h *hydration) cancel(p *sim.Proc) {
	if h.cancelled {
		return
	}
	h.cancelled = true
	h.pl.mu.Lock()
	delete(h.pl.live, h.vm.ID())
	h.pl.mu.Unlock()
	if h.failed == nil && h.left > 0 {
		h.failed = fmt.Errorf("hydration cancelled: VM %s collected", h.vm.ID())
		h.finish(p, true)
	}
	for i, ws := range h.waiters {
		for _, w := range ws {
			w.WakeUp()
		}
		h.waiters[i] = nil
	}
	if h.proc != nil {
		h.proc.WakeUp()
	}
}

// Done reports whether every extent is local (false after an abort).
func (h *hydration) Done() bool { return h.left == 0 && h.failed == nil }

// HydrationLog returns a copy of the plant's completed hydration
// records.
func (pl *Plant) HydrationLog() []HydrationStats {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return append([]HydrationStats(nil), pl.hydrations...)
}

// AllHydrated reports whether every lazy clone the plant ever resumed
// finished hydrating (vacuously true without lazy cloning) — the
// experiment-side proof that laziness converges to the eager end state.
func (pl *Plant) AllHydrated() bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	for _, hs := range pl.hydrations {
		if hs.Aborted {
			return false
		}
	}
	for _, h := range pl.live {
		if !h.Done() {
			return false
		}
	}
	return true
}
