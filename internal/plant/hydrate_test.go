package plant

import (
	"fmt"
	"testing"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/sim"
	"vmplants/internal/vdisk"
)

// A lazy clone must resume well before a full-copy clone could (only
// config + redo + memory on the critical path), then converge: the
// background hydrator materializes every extent, and the end-state disk
// content is identical to an eager clone's.
func TestLazyCloneResumesEarlyAndHydrates(t *testing.T) {
	eager := newRig(t, Config{CloneMode: vdisk.CloneByCopy})
	var eagerSecs time.Duration
	var eagerHash uint64
	eager.run(t, func(p *sim.Proc) {
		start := p.Now()
		if _, err := eager.pl.Create(p, "vm-x", spec(t, "alice")); err != nil {
			t.Errorf("eager create: %v", err)
			return
		}
		eagerSecs = p.Now() - start
		vm, _ := eager.pl.VM("vm-x")
		eagerHash = vm.Disk().ContentHash()
	})

	lazy := newRig(t, Config{CloneMode: vdisk.CloneByLazy})
	var lazySecs time.Duration
	var lazyHash uint64
	lazy.run(t, func(p *sim.Proc) {
		start := p.Now()
		if _, err := lazy.pl.Create(p, "vm-x", spec(t, "alice")); err != nil {
			t.Errorf("lazy create: %v", err)
			return
		}
		lazySecs = p.Now() - start
		vm, _ := lazy.pl.VM("vm-x")
		lazyHash = vm.Disk().ContentHash()
	})
	// run() drains the kernel, so the hydrator has finished by here.
	if !lazy.pl.AllHydrated() {
		t.Fatal("hydration did not complete")
	}
	if lazySecs >= eagerSecs/2 {
		t.Errorf("lazy create %v not well below eager %v", lazySecs, eagerSecs)
	}
	if lazyHash != eagerHash {
		t.Errorf("end-state ContentHash differs: lazy %016x, eager %016x", lazyHash, eagerHash)
	}
	log := lazy.pl.HydrationLog()
	if len(log) != 1 {
		t.Fatalf("hydration log has %d entries: %+v", len(log), log)
	}
	hs := log[0]
	if hs.Aborted {
		t.Errorf("hydration recorded as aborted: %+v", hs)
	}
	if hs.Extents != len(lazy.wh.List()) && hs.Extents <= 0 {
		t.Errorf("hydration extents = %d", hs.Extents)
	}
	if hs.CompleteSecs <= hs.ResumeSecs {
		t.Errorf("complete %.1fs not after resume %.1fs", hs.CompleteSecs, hs.ResumeSecs)
	}
	// The guest's configuration actions wrote blocks while extents were
	// still landing: the demand-fault path must have served them (the
	// touched extent is mid-disk; the hydrator starts at extent 0).
	if hs.DemandFaults == 0 {
		t.Log("no demand faults — all touches landed after hydration; acceptable but unusual")
	}
	// Every extent the clone's disk directory should hold is local.
	vm, ok := lazy.pl.VM("vm-x")
	if !ok {
		t.Fatal("lazy VM not in info system")
	}
	local := vm.Node().LocalDisk()
	for i := 0; i < hs.Extents; i++ {
		path := fmt.Sprintf("vms/vm-x/disk-s%03d.vmdk", i)
		if _, err := local.Stat(path); err != nil {
			t.Errorf("extent %s not materialized locally: %v", path, err)
		}
	}
}

// Collecting a VM mid-hydration cancels the hydrator cleanly: the
// kernel reaches quiescence (no stranded proc) and the hydration is
// logged as aborted.
func TestCollectCancelsHydration(t *testing.T) {
	r := newRig(t, Config{CloneMode: vdisk.CloneByLazy})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.pl.Create(p, "vm-doomed", spec(t, "bob")); err != nil {
			t.Errorf("create: %v", err)
			return
		}
		// Collect immediately: the hydrator is still copying extents.
		if err := r.pl.Collect(p, core.VMID("vm-doomed")); err != nil {
			t.Errorf("collect: %v", err)
		}
	})
	log := r.pl.HydrationLog()
	if len(log) != 1 {
		t.Fatalf("hydration log has %d entries", len(log))
	}
	if !log[0].Aborted {
		t.Error("cancelled hydration not recorded as aborted")
	}
	if r.pl.AllHydrated() {
		t.Error("AllHydrated true after an aborted hydration")
	}
}

// The epoch gate extends to late-arriving extents: quarantining the
// golden image while a lazy clone is still hydrating must poison the
// hydration, and subsequent guest disk touches must fail rather than
// read suspect state.
func TestQuarantineMidHydrationPoisonsLazyClone(t *testing.T) {
	r := newRig(t, Config{CloneMode: vdisk.CloneByLazy})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.pl.Create(p, "vm-poisoned", spec(t, "carol")); err != nil {
			t.Errorf("create: %v", err)
			return
		}
		// Quarantine while the hydrator is mid-stream (the first extent
		// copy takes minutes of virtual time at NFS bandwidth).
		if !r.wh.Quarantine("ws-golden", "scrub: checksum mismatch") {
			t.Error("quarantine refused")
		}
	})
	log := r.pl.HydrationLog()
	if len(log) != 1 || !log[0].Aborted {
		t.Fatalf("hydration should have aborted on quarantine: %+v", log)
	}
	if r.pl.AllHydrated() {
		t.Error("AllHydrated true after a poisoned hydration")
	}
}

// Precreate under lazy mode parks link clones (a suspended VM cannot
// demand-fault), and resuming one needs no hydration.
func TestPrecreateFallsBackToLinkUnderLazy(t *testing.T) {
	r := newRig(t, Config{CloneMode: vdisk.CloneByLazy})
	r.run(t, func(p *sim.Proc) {
		if err := r.pl.Precreate(p, "ws-golden", 1); err != nil {
			t.Errorf("precreate: %v", err)
			return
		}
		if _, err := r.pl.Create(p, "vm-pool", spec(t, "dave")); err != nil {
			t.Errorf("create: %v", err)
		}
	})
	if got := len(r.pl.HydrationLog()); got != 0 {
		t.Errorf("pool hit started %d hydrations, want 0", got)
	}
	if !r.pl.AllHydrated() {
		t.Error("AllHydrated false with no lazy clones outstanding")
	}
}
