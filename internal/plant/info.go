package plant

import (
	"sort"
	"time"

	"vmplants/internal/classad"
	"vmplants/internal/core"
	"vmplants/internal/sim"
	"vmplants/internal/vmm"
	"vmplants/internal/warehouse"
)

// record is one VM tracked by the plant's information system.
type record struct {
	vm        *vmm.VM
	ad        *classad.Ad
	domain    string
	golden    *warehouse.Image // the image this VM's disk links into
	createdAt time.Duration    // virtual time of creation
}

// InfoSystem is the VM Information System of Figure 2: it "maintains
// state about currently active machines (including dynamic information
// gathered by a VM monitor)". Classads live here, not in the shop.
type InfoSystem struct {
	records map[core.VMID]*record
}

// NewInfoSystem returns an empty information system.
func NewInfoSystem() *InfoSystem {
	return &InfoSystem{records: make(map[core.VMID]*record)}
}

// store registers a newly created VM.
func (is *InfoSystem) store(r *record) {
	is.records[r.vm.ID()] = r
}

// get looks a VM up.
func (is *InfoSystem) get(id core.VMID) (*record, bool) {
	r, ok := is.records[id]
	return r, ok
}

// remove drops a collected VM.
func (is *InfoSystem) remove(id core.VMID) {
	delete(is.records, id)
}

// Count reports active VMs.
func (is *InfoSystem) Count() int { return len(is.records) }

// IDs returns active VM IDs, sorted.
func (is *InfoSystem) IDs() []core.VMID {
	out := make([]core.VMID, 0, len(is.records))
	for id := range is.records {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Monitor is the plant's VM monitor process body: it periodically
// refreshes each active VM's dynamic classad attributes (CPU load,
// uptime). Run it with kernel.Spawn; it performs at most ticks
// iterations so that bounded simulations quiesce (the real daemon runs
// it with a large tick budget).
func (pl *Plant) Monitor(interval time.Duration, ticks int) func(p *sim.Proc) {
	return func(p *sim.Proc) {
		for i := 0; i < ticks; i++ {
			p.Sleep(interval)
			pl.MonitorTick(p)
		}
	}
}

// MonitorTick performs one monitor pass over all active VMs.
func (pl *Plant) MonitorTick(p *sim.Proc) {
	for _, id := range pl.info.IDs() {
		r, ok := pl.info.get(id)
		if !ok {
			continue
		}
		// CPU load: a stationary noisy signal per VM; enough dynamics to
		// exercise update-and-query paths.
		load := pl.rng.LogNormalMean(0.3, 0.5)
		if load > 1 {
			load = 1
		}
		r.ad.SetReal(core.AttrCPULoad, load)
		r.ad.SetInt(core.AttrUptimeSecs, int64((p.Now()-r.createdAt)/time.Second))
	}
}
