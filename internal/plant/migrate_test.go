package plant

import (
	"testing"
	"time"

	"vmplants/internal/cluster"
	"vmplants/internal/core"
	"vmplants/internal/sim"
	"vmplants/internal/warehouse"
)

// twoPlantRig builds two plants sharing one warehouse.
func twoPlantRig(t *testing.T, cfg Config) (*sim.Kernel, *cluster.Testbed, *Plant, *Plant) {
	t.Helper()
	k := sim.NewKernel()
	tb := cluster.NewTestbed(k, 2, cluster.DefaultParams(), 13)
	wh := warehouse.New(tb.Warehouse)
	hw := core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048}
	im, err := warehouse.BuildGolden("ws-golden", hw, warehouse.BackendVMware, goldenHistory())
	if err != nil {
		t.Fatal(err)
	}
	if err := wh.Publish(im); err != nil {
		t.Fatal(err)
	}
	a := New("plantA", tb.Nodes[0], wh, cfg)
	b := New("plantB", tb.Nodes[1], wh, cfg)
	return k, tb, a, b
}

func runK(t *testing.T, k *sim.Kernel, body func(p *sim.Proc)) {
	t.Helper()
	k.Spawn("test", body)
	res := k.Run(0)
	if len(res.Stranded) != 0 {
		t.Fatalf("stranded: %v", res.Stranded)
	}
}

func TestMigrateMovesVMAndResources(t *testing.T) {
	k, tb, a, b := twoPlantRig(t, Config{})
	runK(t, k, func(p *sim.Proc) {
		if _, err := a.Create(p, "vm-m-1", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
		vm, _ := a.VM("vm-m-1")
		macBefore := vm.MAC()
		guestIP := vm.Guest().IP

		start := p.Now()
		if err := a.MigrateTo(p, "vm-m-1", b); err != nil {
			t.Fatal(err)
		}
		migTime := p.Now() - start

		// Ownership moved.
		if a.ActiveVMs() != 0 || b.ActiveVMs() != 1 {
			t.Errorf("VM counts: a=%d b=%d", a.ActiveVMs(), b.ActiveVMs())
		}
		if _, ok := a.VM("vm-m-1"); ok {
			t.Error("source still holds the VM")
		}
		moved, ok := b.VM("vm-m-1")
		if !ok {
			t.Fatal("destination does not hold the VM")
		}
		// Memory accounting moved between nodes.
		if tb.Nodes[0].VMs() != 0 || tb.Nodes[1].VMs() != 1 {
			t.Errorf("node commits: %d, %d", tb.Nodes[0].VMs(), tb.Nodes[1].VMs())
		}
		// Guest state, identity and MAC preserved.
		if moved.Guest().IP != guestIP || moved.MAC() != macBefore {
			t.Error("guest identity lost in migration")
		}
		// Source's host-only network freed, destination's allocated.
		if a.Networks().FreeCount() != a.Networks().Size() {
			t.Error("source network leaked")
		}
		if !b.Networks().HasDomain("ufl.edu") {
			t.Error("destination network missing")
		}
		// Migration is seconds (state streams over gigabit), not a
		// full re-creation.
		if migTime <= 0 || migTime > 30*time.Second {
			t.Errorf("migration took %v", migTime)
		}
		// The classad follows the VM.
		ad, ok := b.Query(p, "vm-m-1")
		if !ok || ad.GetString(core.AttrPlant, "") != "plantB" {
			t.Errorf("ad after migration: %v", ad)
		}
		// The VM still serves guest actions on the new node.
		if err := moved.ExecGuestAction(p, act("run-script", "script", "post-migrate.sh", "seconds", "1")); err != nil {
			t.Errorf("guest dead after migration: %v", err)
		}
		// And can be collected on the destination.
		if err := b.Collect(p, "vm-m-1"); err != nil {
			t.Fatal(err)
		}
		if tb.Nodes[1].VMs() != 0 {
			t.Error("destination memory leaked after collect")
		}
	})
}

func TestMigrateErrors(t *testing.T) {
	k, _, a, b := twoPlantRig(t, Config{MaxVMs: 1})
	runK(t, k, func(p *sim.Proc) {
		if err := a.MigrateTo(p, "vm-ghost", b); err == nil {
			t.Error("migrate of unknown VM succeeded")
		}
		if _, err := a.Create(p, "vm-1", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
		// Destination at capacity.
		if _, err := b.Create(p, "vm-2", spec(t, "u2")); err != nil {
			t.Fatal(err)
		}
		if err := a.MigrateTo(p, "vm-1", b); err == nil {
			t.Error("migrate into a full plant succeeded")
		}
		// Self-migration is a no-op.
		if err := a.MigrateTo(p, "vm-1", a); err != nil {
			t.Errorf("self migration: %v", err)
		}
		if a.ActiveVMs() != 1 {
			t.Error("self migration lost the VM")
		}
	})
}

func TestMigrateRespectsDomainIsolation(t *testing.T) {
	// Destination has a single host-only network held by another domain:
	// migration must fail cleanly and leave the source untouched.
	k, _, a, b := twoPlantRig(t, Config{HostOnlyNetworks: 1})
	runK(t, k, func(p *sim.Proc) {
		if _, err := a.Create(p, "vm-1", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
		other := spec(t, "u2")
		other.Domain = "nwu.edu"
		if _, err := b.Create(p, "vm-2", other); err != nil {
			t.Fatal(err)
		}
		if err := a.MigrateTo(p, "vm-1", b); err == nil {
			t.Error("migration into a domain-exhausted plant succeeded")
		}
		if a.ActiveVMs() != 1 {
			t.Error("failed migration lost the source VM")
		}
		vm, _ := a.VM("vm-1")
		if vm.State().String() != "running" {
			// The abort path leaves the VM suspended on the source; the
			// plant record is intact either way — assert it still exists
			// and can be collected.
			t.Logf("VM left %s after aborted migration", vm.State())
		}
	})
}
