// Package plant implements the VMPlant service (paper §3.2, Figure 2):
// the per-node daemon whose Production Process Planner (PPP) matches
// creation requests against the VM Warehouse, drives the production
// line to clone and configure golden machines, maintains the VM
// Information System, allocates host-only networks to client domains,
// and answers the VMShop's cost-estimate (bid) requests.
package plant

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"time"

	"vmplants/internal/classad"
	"vmplants/internal/cluster"
	"vmplants/internal/core"
	"vmplants/internal/cost"
	"vmplants/internal/dag"
	"vmplants/internal/fault"
	"vmplants/internal/journal"
	"vmplants/internal/match"
	"vmplants/internal/sim"
	"vmplants/internal/simnet"
	"vmplants/internal/telemetry"
	"vmplants/internal/vdisk"
	"vmplants/internal/vmm"
	"vmplants/internal/warehouse"
)

// Config tunes one plant.
type Config struct {
	// MaxVMs caps hosted VMs (the paper's §3.4 example uses 32);
	// 0 means unlimited.
	MaxVMs int
	// HostOnlyNetworks is the number of statically installed vmnet
	// switches (the paper's example uses 4).
	HostOnlyNetworks int
	// CostModel prices Estimate requests; nil selects the paper's
	// network+compute model.
	CostModel cost.Model
	// CloneMode selects link cloning (default) or the full-copy
	// ablation baseline.
	CloneMode vdisk.CloneMode
	// Backends are the available production lines; nil selects both
	// defaults.
	Backends vmm.Registry
	// FailProb injects per-operation configuration failures: map of
	// action op → probability.
	//
	// Deprecated: superseded by Faults. The field keeps working — New
	// installs each entry as an ActionFail rule on a registry sharing
	// the plant's RNG stream, so legacy failure experiments and tests
	// replay byte-identically — but new code should configure a
	// fault.Registry, which covers crashes, RPC faults, and clone I/O
	// errors as well.
	FailProb map[string]float64
	// Faults is the fault-injection registry every injection point in
	// the plant consults: DAG action failures, clone I/O errors,
	// mid-creation crashes, slow bids. nil disables injection.
	Faults *fault.Registry
	// DisablePartialMatch forces the PPP to ignore cached configuration
	// work and clone only from images with no performed actions — the
	// A1 ablation.
	DisablePartialMatch bool
	// TemplateMatch makes the PPP accept only exact-configuration
	// template hits (VirtualCenter-style), the A2 ablation.
	TemplateMatch bool
	// PolicyAd is an optional administrator-supplied classad merged
	// into the plant's resource ad; its Requirements expression lets a
	// site refuse requests during matchmaking (e.g.
	// `TARGET.MemoryMB <= 256 && TARGET.Domain != "banned.example"`).
	PolicyAd *classad.Ad
	// CloneSlots caps concurrently admitted clone state-copies (the
	// creation pipeline's per-plant admission control). 0 derives the
	// cap from the host's free memory and local disk bandwidth; see
	// deriveCloneSlots.
	CloneSlots int
	// PublishBack enables the warehouse learning loop: after a
	// creation whose residual plan ran at least PublishBackThreshold
	// actions, the plant checkpoints the configured VM copy-on-write
	// and publishes it to the warehouse as a derived golden image, so
	// the next similar request clones instead of reconfiguring.
	PublishBack bool
	// PublishBackThreshold is the minimum residual-plan length that
	// triggers a publish-back; 0 selects DefaultPublishBackThreshold.
	PublishBackThreshold int
	// Telemetry receives the plant's spans and metrics; nil disables
	// instrumentation at zero cost.
	Telemetry *telemetry.Hub
}

// precreated is the plant's pool of speculatively pre-created clones
// (paper §4.3/§6: "latency-hiding optimizations such as speculative
// pre-creation of VMs can be conceived"): suspended, unconfigured
// clones of golden images that a matching creation request can resume
// instead of paying the full state copy.
type precreated struct {
	vm    *vmm.VM
	clone vmm.CloneStats // the cost paid off the critical path
}

// Plant is one VMPlant instance.
type Plant struct {
	name   string
	cfg    Config
	node   *cluster.Node
	wh     *warehouse.Warehouse
	nets   *simnet.NetPool
	macs   *simnet.MACPool
	info   *InfoSystem
	rng    *sim.RNG
	faults *fault.Registry

	// mu guards the fields below: the creation log and the pre-created
	// pool are read by out-of-kernel observers (debug endpoints, tests)
	// while kernel processes append to them.
	mu        sync.Mutex
	pool      map[string][]precreated
	poolSeq   int
	creations []CreateStats
	down      bool
	// creating reserves capacity for in-flight creations so a batch of
	// concurrent orders cannot overshoot MaxVMs between the capacity
	// check and info.store.
	creating int
	// draining/retired is the elastic-fleet exit state (drain.go): a
	// draining plant refuses new work but finishes what it has; retired
	// is the one-way terminal state.
	draining bool
	retired  bool
	// brownout pauses publish-back and background hydration while the
	// fleet sheds load; brownoutWait holds procs parked until it lifts.
	brownout     bool
	brownoutWait []*sim.Proc

	// cloneGate is the admission-control semaphore: at most K clone
	// state-copies in flight (see admission.go). Only kernel processes
	// touch it, so it needs no lock.
	cloneGate *sim.Resource
	// hydrateGate is the sibling gate for lazy-clone background
	// hydration (see hydrate.go): the deferred extent copies contend on
	// the same host disk pipes the clone stage does, so they are bounded
	// the same way — without stealing the clone gate's slots from
	// foreground creations.
	hydrateGate *sim.Resource
	// live tracks the in-service lazy clones' hydrations (guarded by mu;
	// hydrations is the closed-out log).
	live       map[core.VMID]*hydration
	hydrations []HydrationStats
	// host models the host-side runtime state that survives a daemon
	// death: the production line's VM processes keep running when the
	// management daemon dies. It is maintained continuously — a record
	// enters at creation and leaves at collect/migration — never copied
	// at crash time, so Recover always rebuilds the information system
	// from exactly what the host still runs. Classads are soft state
	// and are re-derived, not kept.
	host map[core.VMID]*record
	// jnl, when attached, receives the plant's lifecycle events
	// (vm-created, vm-collected, plant-crash, plant-recover) — the same
	// durability mechanism the shop and warehouse replay. Recovery
	// cross-checks its replay against the host scan.
	jnl *journal.Journal

	// Telemetry instruments, resolved once in New; all nil (no-op)
	// when cfg.Telemetry is nil.
	tel             *telemetry.Hub
	flight          *telemetry.FlightRecorder
	mCreates        *telemetry.Counter
	mCreateFails    *telemetry.Counter
	mCollects       *telemetry.Counter
	mMigrations     *telemetry.Counter
	mPrecreateHit   *telemetry.Counter
	mImageHits      *telemetry.Counter
	mImageMisses    *telemetry.Counter
	mCloneBytes     *telemetry.Counter
	mCloneLinks     *telemetry.Counter
	mCrashes        *telemetry.Counter
	mRecoveries     *telemetry.Counter
	mPublishBacks   *telemetry.Counter
	mVerifiedClones *telemetry.Counter
	gActiveVMs      *telemetry.Gauge
	hCreateSecs     *telemetry.Histogram
	hCloneSecs      *telemetry.Histogram
	hConfigSecs     *telemetry.Histogram

	gCloneInflight    *telemetry.Gauge
	gCloneInflightMax *telemetry.Gauge
	gAdmissionQueue   *telemetry.Gauge
	hAdmissionWait    *telemetry.Histogram

	mDemandFaults      *telemetry.Counter
	mHydratedExtents   *telemetry.Counter
	mHydrationAborts   *telemetry.Counter
	hHydrationLag      *telemetry.Histogram
	hHydrationComplete *telemetry.Histogram

	mBrownouts *telemetry.Counter
	gBrownout  *telemetry.Gauge
}

// CreateStats records one successful creation's breakdown.
type CreateStats struct {
	VMID        core.VMID
	MemoryMB    int
	Clone       vmm.CloneStats
	ConfigTime  time.Duration
	Total       time.Duration // plant-side create latency
	MatchedOps  int
	ResidualOps int
	Golden      string
	// PrecreateHit is true when the request was served by resuming a
	// speculatively pre-created clone instead of cloning on demand.
	PrecreateHit bool
}

// New creates a plant on the given node, serving images from wh.
func New(name string, node *cluster.Node, wh *warehouse.Warehouse, cfg Config) *Plant {
	if cfg.CostModel == nil {
		cfg.CostModel = cost.DefaultNetworkCompute()
	}
	if cfg.Backends == nil {
		cfg.Backends = vmm.DefaultRegistry()
	}
	if cfg.HostOnlyNetworks <= 0 {
		cfg.HostOnlyNetworks = 4
	}
	tel := cfg.Telemetry
	rng := node.RNG().Child()
	// FailProb adapter: legacy per-op probabilities become ActionFail
	// rules. The registry draws from the plant's own RNG stream and
	// consumes exactly one draw per check with a matching rule — the
	// same draw pattern as the old inline Bernoulli — so existing
	// failure experiments replay byte-identically.
	faults := cfg.Faults
	if len(cfg.FailProb) > 0 {
		if faults == nil {
			faults = fault.NewWithRNG(rng)
		}
		for op, prob := range cfg.FailProb {
			faults.SetProb(name, fault.ActionFail, op, prob)
		}
	}
	pl := &Plant{
		name:   name,
		cfg:    cfg,
		node:   node,
		wh:     wh,
		nets:   simnet.NewNetPool(name+"/vmnet", cfg.HostOnlyNetworks),
		macs:   simnet.NewMACPool(),
		info:   NewInfoSystem(),
		pool:   make(map[string][]precreated),
		host:   make(map[core.VMID]*record),
		live:   make(map[core.VMID]*hydration),
		rng:    rng,
		faults: faults,

		tel:             tel,
		flight:          tel.F(),
		mCreates:        tel.Counter("plant.creations"),
		mCreateFails:    tel.Counter("plant.create_failures"),
		mCollects:       tel.Counter("plant.collections"),
		mMigrations:     tel.Counter("plant.migrations"),
		mPrecreateHit:   tel.Counter("plant.precreate_hits"),
		mImageHits:      tel.Counter("warehouse.image_hits"),
		mImageMisses:    tel.Counter("warehouse.image_misses"),
		mCloneBytes:     tel.Counter("vmm.clone_bytes_copied"),
		mCloneLinks:     tel.Counter("vmm.clone_extents_linked"),
		mCrashes:        tel.Counter("plant.crashes"),
		mRecoveries:     tel.Counter("plant.recoveries"),
		mPublishBacks:   tel.Counter("plant.publish_backs"),
		mVerifiedClones: tel.Counter("plant.verified_clones"),
		gActiveVMs:      tel.Gauge("plant.active_vms"),
		hCreateSecs:     tel.Histogram("plant.create_secs"),
		hCloneSecs:      tel.Histogram("plant.clone_secs"),
		hConfigSecs:     tel.Histogram("plant.configure_secs"),

		gCloneInflight:    tel.Gauge("plant.clone_inflight"),
		gCloneInflightMax: tel.Gauge("plant.clone_inflight_max"),
		gAdmissionQueue:   tel.Gauge("plant.admission_queue"),
		hAdmissionWait:    tel.Histogram("plant.admission_wait_secs"),

		mBrownouts: tel.Counter("plant.brownouts"),
		gBrownout:  tel.Gauge("plant.brownout"),

		mDemandFaults:      tel.Counter("plant.demand_faults"),
		mHydratedExtents:   tel.Counter("plant.hydrated_extents"),
		mHydrationAborts:   tel.Counter("plant.hydration_aborts"),
		hHydrationLag:      tel.Histogram("plant.hydration_lag_secs"),
		hHydrationComplete: tel.Histogram("plant.hydration_complete_secs"),
	}
	slots := cfg.CloneSlots
	if slots <= 0 {
		slots = pl.deriveCloneSlots()
	}
	pl.cloneGate = sim.NewResource(name+"/clone-slots", slots)
	pl.hydrateGate = sim.NewResource(name+"/hydrate-slots", slots)
	return pl
}

// Name returns the plant's name.
func (pl *Plant) Name() string { return pl.name }

// Node returns the hosting node.
func (pl *Plant) Node() *cluster.Node { return pl.node }

// ActiveVMs reports how many VMs the plant currently hosts.
func (pl *Plant) ActiveVMs() int { return pl.info.Count() }

// VMIDs lists the active VMs.
func (pl *Plant) VMIDs() []core.VMID { return pl.info.IDs() }

// Networks exposes the host-only network pool (the VNET server uses it
// to resolve a domain's switch).
func (pl *Plant) Networks() *simnet.NetPool { return pl.nets }

// CreationLog returns a defensive copy of the accumulated per-creation
// statistics, taken under the plant's mutex so concurrent observers
// (debug endpoints, tests) never race with an in-flight creation.
func (pl *Plant) CreationLog() []CreateStats {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return append([]CreateStats(nil), pl.creations...)
}

// view snapshots the plant for the cost model. In-flight creations
// count against capacity: a bid must price the plant as it will be when
// the order lands, or a concurrent burst wins slots that are already
// spoken for.
func (pl *Plant) view(domain string) cost.PlantView {
	pl.mu.Lock()
	creating := pl.creating
	pl.mu.Unlock()
	return cost.PlantView{
		VMs:              pl.info.Count() + creating,
		MaxVMs:           pl.cfg.MaxVMs,
		FreeMemoryMB:     pl.node.FreeMB(),
		DomainHasNetwork: pl.nets.HasDomain(domain),
		FreeNetworks:     pl.nets.FreeCount(),
	}
}

// ResourceAd describes the plant as a classad for matchmaking during
// bidding: capacity and load attributes, plus the administrator's
// policy ad (including any site Requirements).
func (pl *Plant) ResourceAd() *classad.Ad {
	ad := classad.New().
		SetString("Plant", pl.name).
		SetString("Arch", "x86").
		SetInt("FreeMemoryMB", int64(pl.node.FreeMB())).
		SetInt("VMs", int64(pl.info.Count())).
		SetInt("MaxVMs", int64(pl.cfg.MaxVMs)).
		SetInt("FreeNetworks", int64(pl.nets.FreeCount())).
		SetInt("CloneSlots", int64(pl.cloneGate.Capacity())).
		SetInt("InflightClones", int64(pl.cloneGate.InUse())).
		SetBool("Draining", pl.Draining()).
		SetStrings("GoldenImages", pl.wh.List()...)
	if pl.cfg.PolicyAd != nil {
		ad.Merge(pl.cfg.PolicyAd)
	}
	return ad
}

// Estimate prices a creation request (the bid of §3.4). Infeasible when
// the cost model refuses or no golden image can serve the request.
func (pl *Plant) Estimate(p *sim.Proc, spec *core.Spec) core.Cost {
	// Bid computation latency: small, but real on the wire.
	p.Sleep(sim.Seconds(0.02 * pl.node.Jitter()))
	// Slow-bid fault: an overloaded plant stalls its estimate past the
	// shop's patience; the bidding round proceeds without it.
	if d := pl.faults.DelayFor(pl.name, fault.SlowBid, ""); d > 0 {
		p.Sleep(d)
	}
	// A draining plant stops bidding: the classad marker covers shops
	// holding a stale ad, and the infeasible bid covers everyone else.
	if pl.Draining() {
		return core.Infeasible
	}
	if _, err := pl.plan(spec); err != nil {
		return core.Infeasible
	}
	return pl.cfg.CostModel.Estimate(pl.view(spec.Domain), spec.Hardware.MemoryMB)
}

// plan runs warehouse matching for a spec without side effects.
func (pl *Plant) plan(spec *core.Spec) (match.Ranked, error) {
	backend, err := pl.cfg.Backends.Get(spec.Backend)
	if err != nil {
		return match.Ranked{}, err
	}
	cands := pl.wh.Candidates(backend.Name())
	if pl.cfg.DisablePartialMatch {
		var blank []match.Candidate
		for _, c := range cands {
			if len(c.Performed) == 0 {
				blank = append(blank, c)
			}
		}
		cands = blank
	}
	if pl.cfg.TemplateMatch {
		// Template provisioning: either an exact-configuration template
		// hit, or fall back to bare installation from a blank image —
		// there is no partial credit.
		var usable []match.Candidate
		for _, c := range cands {
			exact := c.Hardware.Satisfies(spec.Hardware) && match.TemplateEvaluate(spec.Graph, c.Performed).OK
			if exact || len(c.Performed) == 0 {
				usable = append(usable, c)
			}
		}
		cands = usable
	}
	best, _, ok := match.Best(spec.Hardware, spec.Graph, cands)
	if !ok {
		return match.Ranked{}, fmt.Errorf("plant %s: no golden machine matches the request", pl.name)
	}
	return best, nil
}

// Create is the PPP's production order (Figure 2): match, clone,
// configure, classad. The id is minted by the shop. The whole order is
// traced as a "plant.create" span with "plan", "clone" and "configure"
// children, so a trace reconstructs the paper's creation-time
// decomposition in virtual time.
func (pl *Plant) Create(p *sim.Proc, id core.VMID, spec *core.Spec) (_ *classad.Ad, err error) {
	start := p.Now()
	// Joins the creation trace stamped on the proc (by the shop's
	// in-process call or by the daemon handler from the RPC envelope), or
	// roots its own when called directly.
	sp := pl.tel.T().StartCtx(p, "plant.create", p.Trace()).
		Set("plant", pl.name).
		Set("vmid", string(id))
	prevTrace := p.SetTrace(sp.Context())
	defer func() {
		p.SetTrace(prevTrace)
		sp.EndErr(p, err)
		if err != nil {
			pl.mCreateFails.Inc()
		}
	}()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	// Stale-bid race: the plant may have begun draining after its bid
	// was collected. Refuse the order transiently so the shop re-bids.
	if err := pl.refuseIfDraining(); err != nil {
		return nil, err
	}
	// Capacity check with reservation: concurrent pipeline orders each
	// hold a slot in `creating` until their VM lands in the information
	// system, so a burst cannot overshoot MaxVMs between check and
	// store. Serially this is the same comparison as before.
	if pl.cfg.MaxVMs > 0 {
		pl.mu.Lock()
		if pl.info.Count()+pl.creating >= pl.cfg.MaxVMs {
			pl.mu.Unlock()
			// Transient: the winning bid raced another order into the
			// last slot. The shop fails over to its next bidder — or, in
			// a federation, re-auctions among peer cells — instead of
			// reporting a dead-end to the client.
			return nil, fmt.Errorf("plant %s: %w: at VM capacity (%d)", pl.name, core.ErrTransient, pl.cfg.MaxVMs)
		}
		pl.creating++
		pl.mu.Unlock()
		defer func() {
			pl.mu.Lock()
			pl.creating--
			pl.mu.Unlock()
		}()
	}
	planSp := sp.Child(p, "plan")
	best, err := pl.plan(spec)
	if err != nil {
		planSp.EndErr(p, err)
		pl.mImageMisses.Inc()
		return nil, err
	}
	planSp.Set("golden", best.Candidate.ID).
		SetInt("matched_ops", int64(len(best.Result.Matched))).
		SetInt("residual_ops", int64(len(best.Result.Residual))).
		End(p)
	if len(best.Result.Matched) > 0 {
		pl.mImageHits.Inc()
	} else {
		pl.mImageMisses.Inc()
	}
	// Open the matched image through the warehouse's hot clone cache:
	// repeat clones of the same golden machine skip the descriptor
	// re-parse and extent walk.
	cctx, err := pl.wh.OpenClone(best.Candidate.ID)
	if err != nil {
		return nil, fmt.Errorf("plant %s: matched image %q unavailable: %w", pl.name, best.Candidate.ID, err)
	}
	golden := cctx.Image
	backend, err := pl.cfg.Backends.Get(spec.Backend)
	if err != nil {
		return nil, err
	}

	// Host-only network for the client's domain.
	honet, _, err := pl.nets.Acquire(spec.Domain)
	if err != nil {
		return nil, fmt.Errorf("plant %s: %w", pl.name, err)
	}
	releaseNet := func() { pl.nets.Release(spec.Domain) }

	golden.Ref() // the clone's disk links into the image's state
	releaseRef := func() { golden.Unref() }

	// Clone — or resume a speculatively pre-created clone of the same
	// golden image, paying only the resume instead of the state copy.
	// The admission gate bounds in-flight state copies on this host; an
	// uncontended acquire costs zero virtual time.
	admitSp := sp.Child(p, "admission")
	releaseSlot := pl.admitClone(p)
	admitSp.End(p)
	pl.flight.Record(p, string(id), telemetry.EvAdmitted, pl.name)
	pl.flight.Record(p, string(id), telemetry.EvCloneStart, golden.Name)
	cloneSp := sp.Child(p, "clone").
		Set("golden", golden.Name).
		Set("backend", backend.Name())
	cloneStart := p.Now()
	var vm *vmm.VM
	var cloneStats vmm.CloneStats
	hit := false
	if pre, ok := pl.takePrecreated(golden.Name); ok {
		if err := pre.vm.Rebrand(id, spec.Name); err == nil {
			if err := pre.vm.Resume(p); err == nil {
				vm = pre.vm
				cloneStats = pre.clone // off-critical-path cost, for the record
				cloneStats.Total = p.Now() - cloneStart
				hit = true
				pl.mPrecreateHit.Inc()
				// The pool's own image reference is superseded by the
				// one this creation took above.
				golden.Unref()
			}
		}
	}
	if vm == nil {
		var err error
		vm, cloneStats, err = backend.Clone(p, pl.node, golden, id, pl.cfg.CloneMode)
		if err != nil {
			releaseSlot()
			releaseNet()
			releaseRef()
			cerr := fmt.Errorf("plant %s: clone: %w", pl.name, err)
			cloneSp.EndErr(p, cerr)
			return nil, cerr
		}
		// Clone I/O fault: the state copy went bad (stale NFS read,
		// full local disk). The partial clone is destroyed and the
		// error marked transient so the shop fails over.
		if pl.faults.Should(pl.name, fault.CloneIO, "") {
			pl.flight.Record(p, string(id), telemetry.EvFaultInjected, "clone-io")
			vm.Collect(p)
			releaseSlot()
			releaseNet()
			releaseRef()
			cerr := fmt.Errorf("plant %s: clone: %w: injected I/O error", pl.name, core.ErrTransient)
			cloneSp.EndErr(p, cerr)
			return nil, cerr
		}
		// Integrity gate: the state copy slept in virtual time, so the
		// image may have been quarantined or repaired underneath it. A
		// clone that read suspect bytes is destroyed and the transient
		// error re-bids the creation rather than resuming corrupt state.
		verifySp := cloneSp.Child(p, "verify").Set("golden", golden.Name)
		if err := pl.wh.VerifyClone(cctx); err != nil {
			verifySp.EndErr(p, err)
			pl.flight.Record(p, string(id), telemetry.EvQuarantineHit, golden.Name)
			vm.Collect(p)
			releaseSlot()
			releaseNet()
			releaseRef()
			cerr := fmt.Errorf("plant %s: clone: %w", pl.name, err)
			cloneSp.EndErr(p, cerr)
			return nil, cerr
		}
		verifySp.End(p)
		pl.mVerifiedClones.Inc()
	}
	pl.recordClone(cloneSp, cloneStart, cloneStats, backend.Name(), hit)
	cloneSp.End(p)
	pl.flight.Record(p, string(id), telemetry.EvCloneDone, golden.Name)
	// The state copy is done: free the slot before configuration, which
	// contends on guest CPU rather than host disk.
	releaseSlot()
	// Lazy clone: the VM resumed without its disk extents. Hand the rest
	// of the state copy to the background hydrator and install the
	// demand-fault hook before any guest action can touch the disk.
	// (Pool hits were parked as link clones and need neither.)
	var hyd *hydration
	if cloneStats.Mode == vdisk.CloneByLazy && !hit {
		hyd = pl.startHydration(p, vm, cctx, start)
	}
	cancelHyd := func() {
		if hyd != nil {
			hyd.cancel(p)
		}
	}
	if err := vm.AttachNIC(honet, pl.macs.Next()); err != nil {
		cancelHyd()
		vm.Collect(p)
		releaseNet()
		releaseRef()
		return nil, err
	}
	// Crash fault, mid-creation: the daemon dies between clone and
	// configuration. The production line reaps the half-built clone, so
	// nothing is orphaned; the plant stays down until Recover.
	if pl.faults.Should(pl.name, fault.PlantCrash, "create") {
		pl.flight.Record(p, string(id), telemetry.EvFaultInjected, "plant-crash")
		cancelHyd()
		vm.Collect(p)
		releaseNet()
		releaseRef()
		pl.Crash()
		return nil, fmt.Errorf("plant %s: %w: plant crashed during creation", pl.name, core.ErrTransient)
	}

	// Configure the residual sub-graph.
	cfgSp := sp.Child(p, "configure").
		SetInt("nodes", int64(len(best.Result.Residual)))
	cfgStart := p.Now()
	if err := pl.configure(p, vm, spec.Graph, best.Result.Residual, cfgSp); err != nil {
		cancelHyd()
		vm.Collect(p)
		releaseNet()
		releaseRef()
		cerr := fmt.Errorf("plant %s: configure: %w", pl.name, err)
		cfgSp.EndErr(p, cerr)
		return nil, cerr
	}
	cfgSp.End(p)
	cfgTime := p.Now() - cfgStart

	// Classad for the information system and the client. The record
	// also enters the host map: that is the runtime state a daemon
	// crash cannot take down.
	ad := pl.buildAd(p, id, spec, vm, golden, best, cloneStats)
	rec := &record{vm: vm, ad: ad, domain: spec.Domain, golden: golden, createdAt: p.Now()}
	pl.info.store(rec)
	pl.mu.Lock()
	pl.host[id] = rec
	pl.mu.Unlock()
	pl.journalVM(p, id, true)
	total := p.Now() - start
	pl.mu.Lock()
	pl.creations = append(pl.creations, CreateStats{
		VMID:         id,
		MemoryMB:     spec.Hardware.MemoryMB,
		Clone:        cloneStats,
		ConfigTime:   cfgTime,
		Total:        total,
		MatchedOps:   len(best.Result.Matched),
		ResidualOps:  len(best.Result.Residual),
		Golden:       golden.Name,
		PrecreateHit: hit,
	})
	pl.mu.Unlock()
	pl.mCreates.Inc()
	pl.gActiveVMs.Set(int64(pl.info.Count()))
	pl.hCreateSecs.Observe(total.Seconds())
	pl.hCloneSecs.Observe(cloneStats.Total.Seconds())
	pl.hConfigSecs.Observe(cfgTime.Seconds())
	pl.wh.NoteUse(golden.Name, len(best.Result.Matched), p.Now())
	pl.maybePublishBack(p, sp, vm, golden, len(best.Result.Residual))
	return ad.Clone(), nil
}

// DefaultPublishBackThreshold is the residual-plan length at which a
// creation is deemed expensive enough to checkpoint back (an In-VIGO
// workspace's first personalization runs 6 residual actions).
const DefaultPublishBackThreshold = 4

// maybePublishBack closes the warehouse learning loop after a
// successful creation: if the residual plan was long enough and the
// resulting configuration is not in the warehouse yet, the plant stuns
// the VM briefly for a copy-on-write checkpoint, then uploads and
// publishes the derived golden image off the critical path (a spawned
// kernel process charges the NFS transfer). Races between concurrent
// creations of the same configuration resolve at publish time: the
// loser's duplicate is simply dropped.
func (pl *Plant) maybePublishBack(p *sim.Proc, sp *telemetry.Span, vm *vmm.VM, golden *warehouse.Image, residual int) {
	if !pl.cfg.PublishBack {
		return
	}
	// Brownout: every spare disk/NFS byte serves foreground creations;
	// the checkpoint opportunity is simply forgone, not deferred.
	if pl.Brownout() {
		return
	}
	threshold := pl.cfg.PublishBackThreshold
	if threshold <= 0 {
		threshold = DefaultPublishBackThreshold
	}
	if residual < threshold {
		return
	}
	history := vm.History()
	name := warehouse.DerivedName(vm.Backend(), history)
	if _, exists := pl.wh.Lookup(name); exists {
		return
	}
	// Derived images root at a seed: a checkpoint of a clone of a
	// derived image shares the same seed extents, so the seed is the
	// parent either way.
	parent := golden.Name
	if golden.Derived {
		parent = golden.Parent
	}
	// Brief stun while the copy-on-write checkpoint is taken.
	p.Sleep(sim.Seconds(0.5 * pl.node.Jitter()))
	snap := vm.Disk().Snapshot(name)
	im := &warehouse.Image{
		Name:      name,
		Hardware:  vm.Hardware(),
		Backend:   vm.Backend(),
		Performed: history,
		Guest:     vm.Guest().Clone(),
		Disk:      snap,
		Derived:   true,
		Parent:    parent,
	}
	sp.Set("publish_back", name)
	upload := im.CheckpointBytes()
	p.Kernel().Spawn(pl.name+"/publish-back/"+name, func(bp *sim.Proc) {
		// The derived state (redo log + memory checkpoint) streams to
		// the shared warehouse over the node's NFS path; the extents
		// are already there — the checkpoint shares the parent's.
		pl.node.Warehouse().Charge(bp, upload, pl.node.Jitter())
		if err := pl.wh.PublishDerived(im, bp.Now()); err != nil {
			// Lost a race to an identical checkpoint, or the budget is
			// full of referenced images: drop the checkpoint.
			return
		}
		pl.mPublishBacks.Inc()
		pl.flight.Record(bp, string(vm.ID()), telemetry.EvPublished, name)
	})
}

// Warehouse returns the plant's image store (the daemon's publish-image
// handler publishes remote derived images into it).
func (pl *Plant) Warehouse() *warehouse.Warehouse { return pl.wh }

// recordClone decomposes the clone stage into "clone.copy" and
// "clone.resume"/"clone.boot" child spans from the backend's measured
// CloneStats, and feeds the byte counters. Phase spans are attached
// retroactively because the vmm.Backend interface reports stage
// timings rather than accepting a tracer.
func (pl *Plant) recordClone(cloneSp *telemetry.Span, cloneStart time.Duration, cs vmm.CloneStats, backend string, hit bool) {
	phase := "clone.resume" // vmware line: checkpoint resume
	if backend == "uml" {
		phase = "clone.boot" // uml line: fresh boot
	}
	if hit {
		cloneSp.Set("precreate_hit", "true")
		// Resume of a parked clone is the whole on-critical-path cost.
		cloneSp.RecordChild(phase, cloneStart, cloneStart+cs.Total)
	} else {
		copyEnd := cloneStart + cs.CopyTime
		cloneSp.RecordChild("clone.copy", cloneStart, copyEnd)
		cloneSp.RecordChild(phase, copyEnd, copyEnd+cs.ResumeTime)
	}
	cloneSp.SetInt("bytes_copied", cs.CopiedBytes)
	pl.mCloneBytes.Add(cs.CopiedBytes)
	pl.mCloneLinks.Add(int64(cs.LinkedFiles))
}

// configure executes the residual plan: guest actions are delivered via
// a configuration CD-ROM parsed by the guest agent, host actions run on
// the production line directly. Error policies (retries, handler
// sub-graphs, continue) follow the DAG's per-node declarations. Each
// node executes under an "action" child span of parent (nil disables
// tracing).
func (pl *Plant) configure(p *sim.Proc, vm *vmm.VM, g *dag.Graph, residual []string, parent *telemetry.Span) error {
	if len(residual) == 0 {
		return nil
	}
	// Burn every residual guest action onto one CD, in plan order. The
	// guest agent parses it; we then execute in plan order, interleaving
	// host actions at the right positions.
	var guestActs []dag.Action
	for _, nid := range residual {
		n, ok := g.Node(nid)
		if !ok {
			return fmt.Errorf("residual node %q missing from DAG", nid)
		}
		if n.Action.Target == dag.Guest {
			guestActs = append(guestActs, n.Action)
		}
	}
	if len(guestActs) > 0 {
		cd, err := vmm.BuildConfigCD(guestActs)
		if err != nil {
			return err
		}
		if err := vm.AttachCD(p, cd.Bytes()); err != nil {
			return err
		}
		defer vm.DetachCD(p)
		// Cross-check what the guest agent read back.
		if got := vm.CDActions(); len(got) != len(guestActs) {
			return fmt.Errorf("guest agent parsed %d scripts, burned %d", len(got), len(guestActs))
		}
	}
	for _, nid := range residual {
		n, _ := g.Node(nid)
		asp := parent.Child(p, "action").
			Set("node", nid).
			Set("op", n.Action.Op)
		err := pl.runWithPolicy(p, vm, n)
		asp.EndErr(p, err)
		if err != nil {
			return fmt.Errorf("action %q (%s): %w", nid, n.Action.Op, err)
		}
	}
	return nil
}

// runWithPolicy executes one DAG node with its error policy: the action
// itself with injected-failure checks, retries, then the handler chain,
// then continue-or-abort.
func (pl *Plant) runWithPolicy(p *sim.Proc, vm *vmm.VM, n *dag.Node) error {
	attempt := func() error {
		if pl.faults.Should(pl.name, fault.ActionFail, n.Action.Op) {
			// The action consumed its time before failing.
			p.Sleep(sim.Seconds(0.5 * pl.node.Jitter()))
			return fmt.Errorf("injected failure in %s", n.Action.Op)
		}
		return pl.exec(p, vm, n.Action)
	}
	err := attempt()
	for r := 0; err != nil && r < n.OnError.Retries; r++ {
		err = attempt()
	}
	if err == nil {
		return nil
	}
	// Retries exhausted: run the error-handling sub-graph.
	for _, h := range n.OnError.Handler {
		if herr := pl.exec(p, vm, h); herr != nil {
			return fmt.Errorf("%w; error handler %s also failed: %v", err, h.Op, herr)
		}
	}
	if n.OnError.Continue {
		return nil
	}
	return err
}

func (pl *Plant) exec(p *sim.Proc, vm *vmm.VM, a dag.Action) error {
	if a.Target == dag.Host {
		return vm.ExecHostAction(p, a)
	}
	return vm.ExecGuestAction(p, a)
}

// buildAd assembles the creation classad: identity, configuration
// outputs (IP, MAC, credentials), and production metrics.
func (pl *Plant) buildAd(p *sim.Proc, id core.VMID, spec *core.Spec, vm *vmm.VM, golden *warehouse.Image, best match.Ranked, cs vmm.CloneStats) *classad.Ad {
	ad := classad.New().
		SetString(core.AttrVMID, string(id)).
		SetString(core.AttrName, spec.Name).
		SetString(core.AttrState, core.StateRunning.String()).
		SetInt(core.AttrMemoryMB, int64(spec.Hardware.MemoryMB)).
		SetInt(core.AttrDiskMB, int64(spec.Hardware.DiskMB)).
		SetString(core.AttrArch, spec.Hardware.Arch).
		SetString(core.AttrDomain, spec.Domain).
		SetString(core.AttrPlant, pl.name).
		SetString(core.AttrBackend, vm.Backend()).
		SetString(core.AttrNetwork, vm.Network().ID).
		SetString(core.AttrGoldenImage, golden.Name).
		SetInt(core.AttrMatchedOps, int64(len(best.Result.Matched))).
		SetReal(core.AttrCloneSecs, cs.Total.Seconds()).
		SetInt(core.AttrCreatedAt, int64(p.Now()/time.Second))
	if ip := vm.Guest().IP; ip != "" {
		ad.SetString(core.AttrIP, ip)
	}
	ad.SetString(core.AttrMAC, vm.MAC().String())
	// Action outputs (paper: "configuration-specific data resulting from
	// the output of action DAG nodes").
	for _, k := range sortedKeys(vm.Guest().Outputs) {
		ad.SetString("Out_"+sanitizeAttr(k), vm.Guest().Outputs[k])
	}
	return ad
}

func sortedKeys(m map[string]string) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && out[j] < out[j-1]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// sanitizeAttr maps an output key to a legal classad attribute name.
func sanitizeAttr(s string) string {
	var b strings.Builder
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// Query returns a copy of an active VM's classad.
func (pl *Plant) Query(p *sim.Proc, id core.VMID) (*classad.Ad, bool) {
	p.Sleep(sim.Seconds(0.01 * pl.node.Jitter()))
	r, ok := pl.info.get(id)
	if !ok {
		return nil, false
	}
	r.ad.SetInt(core.AttrUptimeSecs, int64((p.Now()-r.createdAt)/time.Second))
	return r.ad.Clone(), true
}

// Collect destroys an active VM and reclaims its resources, including
// the domain's host-only network slot.
func (pl *Plant) Collect(p *sim.Proc, id core.VMID) error {
	r, ok := pl.info.get(id)
	if !ok {
		return fmt.Errorf("plant %s: no VM %s", pl.name, id)
	}
	pl.mu.Lock()
	hyd := pl.live[id]
	pl.mu.Unlock()
	if hyd != nil {
		// Stop hydrating state nobody will read; the hydrator finishes
		// its in-flight extent and exits.
		hyd.cancel(p)
	}
	if err := r.vm.Collect(p); err != nil {
		return err
	}
	if err := pl.nets.Release(r.domain); err != nil {
		return err
	}
	if r.golden != nil {
		if err := r.golden.Unref(); err != nil {
			return err
		}
	}
	pl.info.remove(id)
	pl.mu.Lock()
	delete(pl.host, id)
	pl.mu.Unlock()
	pl.journalVM(p, id, false)
	pl.mCollects.Inc()
	pl.gActiveVMs.Set(int64(pl.info.Count()))
	return nil
}

// SuspendVM checkpoints an active VM and releases its host memory — how
// In-VIGO parks idle virtual workspaces. The classad tracks the state.
func (pl *Plant) SuspendVM(p *sim.Proc, id core.VMID) error {
	r, ok := pl.info.get(id)
	if !ok {
		return fmt.Errorf("plant %s: no VM %s", pl.name, id)
	}
	if err := r.vm.Suspend(p); err != nil {
		return err
	}
	r.ad.SetString(core.AttrState, "suspended")
	return nil
}

// ResumeVM brings a suspended VM back to running.
func (pl *Plant) ResumeVM(p *sim.Proc, id core.VMID) error {
	r, ok := pl.info.get(id)
	if !ok {
		return fmt.Errorf("plant %s: no VM %s", pl.name, id)
	}
	if err := r.vm.Resume(p); err != nil {
		return err
	}
	r.ad.SetString(core.AttrState, core.StateRunning.String())
	return nil
}

// MigrateTo moves an active VM to another plant (paper §6 future work:
// "migration of active VMs across plants"): suspend, stream the private
// state over the cluster interconnect, re-home the NIC on a host-only
// network of the destination's matching domain, resume, and hand the
// information-system record over. The VMID is preserved; the shop's
// soft routing heals on its next query.
func (pl *Plant) MigrateTo(p *sim.Proc, id core.VMID, dst *Plant) (err error) {
	if dst == pl {
		return nil
	}
	sp := pl.tel.T().Start(p, "plant.migrate").
		Set("plant", pl.name).
		Set("dst", dst.name).
		Set("vmid", string(id))
	defer func() {
		sp.EndErr(p, err)
		if err == nil {
			pl.mMigrations.Inc()
			pl.gActiveVMs.Set(int64(pl.info.Count()))
			dst.gActiveVMs.Set(int64(dst.info.Count()))
		}
	}()
	r, ok := pl.info.get(id)
	if !ok {
		return fmt.Errorf("plant %s: no VM %s", pl.name, id)
	}
	if dst.cfg.MaxVMs > 0 && dst.info.Count() >= dst.cfg.MaxVMs {
		return fmt.Errorf("plant %s: destination %s at VM capacity", pl.name, dst.name)
	}
	vm := r.vm
	if vm.State() != vmm.Running {
		return fmt.Errorf("plant %s: VM %s is %s; cannot migrate", pl.name, id, vm.State())
	}
	pl.mu.Lock()
	hyd := pl.live[id]
	pl.mu.Unlock()
	if hyd != nil && !hyd.Done() {
		// A lazy clone still hydrating has extents landing on this node's
		// local disk; moving it mid-stream would strand them. Migration
		// waits for the hydrator (or the caller retries).
		return fmt.Errorf("plant %s: VM %s still hydrating; cannot migrate", pl.name, id)
	}
	dstNet, _, err := dst.nets.Acquire(r.domain)
	if err != nil {
		return fmt.Errorf("plant %s: destination network: %w", pl.name, err)
	}
	abort := func(cause error) error {
		dst.nets.Release(r.domain)
		return cause
	}
	mac := vm.MAC()
	if err := vm.Suspend(p); err != nil {
		return abort(err)
	}
	if err := vm.Migrate(p, dst.node); err != nil {
		return abort(err)
	}
	vm.DetachNIC()
	if err := vm.Resume(p); err != nil {
		return abort(err)
	}
	if err := vm.AttachNIC(dstNet, mac); err != nil {
		return abort(err)
	}
	// Hand over bookkeeping: record moves, source network slot freed.
	pl.info.remove(id)
	pl.mu.Lock()
	delete(pl.host, id)
	pl.mu.Unlock()
	pl.journalVM(p, id, false)
	if err := pl.nets.Release(r.domain); err != nil {
		return err
	}
	r.ad.SetString(core.AttrPlant, dst.name)
	r.ad.SetString(core.AttrNetwork, dstNet.ID)
	dst.info.store(r)
	dst.mu.Lock()
	dst.host[id] = r
	dst.mu.Unlock()
	dst.journalVM(p, id, true)
	return nil
}

// takePrecreated pops a pooled clone of the named image.
func (pl *Plant) takePrecreated(image string) (precreated, bool) {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	q := pl.pool[image]
	if len(q) == 0 {
		return precreated{}, false
	}
	pre := q[0]
	pl.pool[image] = q[1:]
	return pre, true
}

// PoolSize reports how many pre-created clones of the image are parked.
func (pl *Plant) PoolSize(image string) int {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return len(pl.pool[image])
}

// Precreate speculatively clones the named golden image count times and
// parks the clones suspended, so later matching requests resume them
// instead of paying the state copy on the critical path (paper §4.3:
// "latency-hiding optimizations such as speculative pre-creation of VMs
// can be conceived"). It is meant to run during plant idle time.
func (pl *Plant) Precreate(p *sim.Proc, image string, count int) (err error) {
	sp := pl.tel.T().Start(p, "plant.precreate").
		Set("plant", pl.name).
		Set("golden", image).
		SetInt("count", int64(count))
	defer func() { sp.EndErr(p, err) }()
	// Open through the clone cache like Create does: a quarantined image
	// refuses (speculation must not park clones of suspect state), and
	// the cold verification cost is paid here, off the critical path.
	cctx, err := pl.wh.OpenClone(image)
	if err != nil {
		return fmt.Errorf("plant %s: precreate %q: %w", pl.name, image, err)
	}
	golden := cctx.Image
	backend, err := pl.cfg.Backends.Get(golden.Backend)
	if err != nil {
		return err
	}
	// A parked clone has no hydrator (nothing should be copying under a
	// suspended VM), so speculation under lazy mode falls back to link
	// cloning — still off the critical path, just eager.
	mode := pl.cfg.CloneMode
	if mode == vdisk.CloneByLazy {
		mode = vdisk.CloneByLink
	}
	for i := 0; i < count; i++ {
		pl.mu.Lock()
		pl.poolSeq++
		seq := pl.poolSeq
		pl.mu.Unlock()
		id := core.VMID(fmt.Sprintf("pre-%s-%d", pl.name, seq))
		vm, cs, err := backend.Clone(p, pl.node, golden, id, mode)
		if err != nil {
			return fmt.Errorf("plant %s: precreate: %w", pl.name, err)
		}
		if err := vm.Suspend(p); err != nil {
			return fmt.Errorf("plant %s: precreate suspend: %w", pl.name, err)
		}
		golden.Ref() // the parked clone links into the image
		pl.mCloneBytes.Add(cs.CopiedBytes)
		pl.mCloneLinks.Add(int64(cs.LinkedFiles))
		pl.mu.Lock()
		pl.pool[image] = append(pl.pool[image], precreated{vm: vm, clone: cs})
		pl.mu.Unlock()
	}
	return nil
}

// PublishImage checkpoints an active VM and publishes it to the VM
// Warehouse as a new golden image under newName — the paper's §3.2
// installer workflow ("providing VM installers with the capability of
// publishing a VM image to the Warehouse, for subsequent instantiations
// through VMPlant"). The VM briefly pauses while its state is
// snapshotted and the image's state files are uploaded to the shared
// warehouse over the node's NFS path; it keeps running afterwards.
func (pl *Plant) PublishImage(p *sim.Proc, id core.VMID, newName string) error {
	r, ok := pl.info.get(id)
	if !ok {
		return fmt.Errorf("plant %s: no VM %s", pl.name, id)
	}
	vm := r.vm
	if vm.State() != vmm.Running {
		return fmt.Errorf("plant %s: VM %s is %s; cannot publish", pl.name, id, vm.State())
	}
	// Brief stun while the checkpoint is taken.
	p.Sleep(sim.Seconds(1.0 * pl.node.Jitter()))
	snap := vm.Disk().Snapshot(newName)
	im := &warehouse.Image{
		Name:      newName,
		Hardware:  vm.Hardware(),
		Backend:   vm.Backend(),
		Performed: vm.History(),
		Guest:     vm.Guest().Clone(),
		Disk:      snap,
	}
	// Upload the image's per-clone state (memory checkpoint and redo
	// logs) to the warehouse over NFS; the base extents are already
	// there (this VM link-cloned them) or are accounted at full size
	// for copy-cloned disks.
	upload := snap.RedoBytes() + im.MemImageBytes()
	pl.node.Warehouse().Charge(p, upload, pl.node.Jitter())
	if err := pl.wh.Publish(im); err != nil {
		return fmt.Errorf("plant %s: publish %s: %w", pl.name, newName, err)
	}
	// Resume stun.
	p.Sleep(sim.Seconds(1.0 * pl.node.Jitter()))
	return nil
}

// VM returns the runtime object for an active VM (tests and the VNET
// server use it).
func (pl *Plant) VM(id core.VMID) (*vmm.VM, bool) {
	r, ok := pl.info.get(id)
	if !ok {
		return nil, false
	}
	return r.vm, true
}

// ErrNoGolden is a sentinel match failure cause.
var ErrNoGolden = errors.New("plant: no golden machine matches")
