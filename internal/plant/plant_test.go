package plant

import (
	"strings"
	"testing"
	"time"

	"vmplants/internal/actions"
	"vmplants/internal/cluster"
	"vmplants/internal/core"
	"vmplants/internal/dag"
	"vmplants/internal/sim"
	"vmplants/internal/vdisk"
	"vmplants/internal/warehouse"
)

func act(op string, kv ...string) dag.Action {
	p := map[string]string{}
	for i := 0; i+1 < len(kv); i += 2 {
		p[kv[i]] = kv[i+1]
	}
	tgt, _ := actions.DefaultTarget(op)
	return dag.Action{Op: op, Target: tgt, Params: p}
}

// workspaceGraph is the request DAG: golden history (OS+VNC) plus
// per-instance personalization.
func workspaceGraph(t testing.TB, user string) *dag.Graph {
	t.Helper()
	g, err := dag.NewBuilder().
		Add("os", act(actions.OpInstallOS, "distro", "mandrake-8.1")).
		Add("vnc", act(actions.OpInstallPackage, "name", "vnc-server"), "os").
		Add("net", act(actions.OpConfigureNetwork, "ip", "10.1.0.7"), "vnc").
		Add("user", act(actions.OpCreateUser, "name", user), "net").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func goldenHistory() []dag.Action {
	return []dag.Action{
		act(actions.OpInstallOS, "distro", "mandrake-8.1"),
		act(actions.OpInstallPackage, "name", "vnc-server"),
	}
}

type rig struct {
	k  *sim.Kernel
	tb *cluster.Testbed
	wh *warehouse.Warehouse
	pl *Plant
}

func newRig(t *testing.T, cfg Config) *rig {
	t.Helper()
	k := sim.NewKernel()
	tb := cluster.NewTestbed(k, 1, cluster.DefaultParams(), 5)
	wh := warehouse.New(tb.Warehouse)
	hw := core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048}
	im, err := warehouse.BuildGolden("ws-golden", hw, warehouse.BackendVMware, goldenHistory())
	if err != nil {
		t.Fatal(err)
	}
	if err := wh.Publish(im); err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, tb: tb, wh: wh, pl: New("node00", tb.Nodes[0], wh, cfg)}
}

func (r *rig) run(t *testing.T, body func(p *sim.Proc)) time.Duration {
	t.Helper()
	r.k.Spawn("test", body)
	res := r.k.Run(0)
	if len(res.Stranded) != 0 {
		t.Fatalf("stranded: %v", res.Stranded)
	}
	return res.End
}

func spec(t testing.TB, user string) *core.Spec {
	return &core.Spec{
		Name:     "ws-" + user,
		Hardware: core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048},
		Domain:   "ufl.edu",
		Graph:    workspaceGraph(t, user),
	}
}

func TestCreateProducesConfiguredVM(t *testing.T) {
	r := newRig(t, Config{})
	r.run(t, func(p *sim.Proc) {
		ad, err := r.pl.Create(p, "vm-s-1", spec(t, "arijit"))
		if err != nil {
			t.Fatal(err)
		}
		// Classad carries identity and configuration outputs.
		if ad.GetString(core.AttrVMID, "") != "vm-s-1" {
			t.Errorf("ad VMID = %s", ad.GetString(core.AttrVMID, ""))
		}
		if ad.GetString(core.AttrIP, "") != "10.1.0.7" {
			t.Errorf("ad IP = %q", ad.GetString(core.AttrIP, ""))
		}
		if ad.GetString(core.AttrGoldenImage, "") != "ws-golden" {
			t.Errorf("golden = %q", ad.GetString(core.AttrGoldenImage, ""))
		}
		if ad.GetInt(core.AttrMatchedOps, -1) != 2 {
			t.Errorf("matched ops = %d", ad.GetInt(core.AttrMatchedOps, -1))
		}
		// Guest really is configured.
		vm, ok := r.pl.VM("vm-s-1")
		if !ok {
			t.Fatal("VM not in info system")
		}
		if !vm.Guest().Users["arijit"] || vm.Guest().IP != "10.1.0.7" {
			t.Errorf("guest: %s", vm.Guest().Summary())
		}
		// Only the residual ran: the OS was not reinstalled (cloning kept
		// the golden OS), and install-os takes 20 min, so total time must
		// be way below that.
		if p.Now() > 3*time.Minute {
			t.Errorf("create took %v — did it reinstall the OS?", p.Now())
		}
	})
}

func TestCreateStatsRecorded(t *testing.T) {
	r := newRig(t, Config{})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.pl.Create(p, "vm-s-1", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
	})
	log := r.pl.CreationLog()
	if len(log) != 1 {
		t.Fatalf("%d log entries", len(log))
	}
	cs := log[0]
	if cs.MatchedOps != 2 || cs.ResidualOps != 2 || cs.Golden != "ws-golden" {
		t.Errorf("stats = %+v", cs)
	}
	if cs.Clone.Total <= 0 || cs.ConfigTime <= 0 || cs.Total < cs.Clone.Total+cs.ConfigTime {
		t.Errorf("times: clone=%v config=%v total=%v", cs.Clone.Total, cs.ConfigTime, cs.Total)
	}
}

func TestEstimateUsesCostModel(t *testing.T) {
	r := newRig(t, Config{MaxVMs: 32})
	r.run(t, func(p *sim.Proc) {
		// Idle plant, new domain: network cost 50.
		if c := r.pl.Estimate(p, spec(t, "u1")); c != 50 {
			t.Errorf("initial bid = %v", c)
		}
		if _, err := r.pl.Create(p, "vm-s-1", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
		// Same domain now holds a network: compute cost 4×1.
		if c := r.pl.Estimate(p, spec(t, "u2")); c != 4 {
			t.Errorf("second bid = %v", c)
		}
		// A different domain pays the network cost again.
		other := spec(t, "u3")
		other.Domain = "nwu.edu"
		if c := r.pl.Estimate(p, other); c != 50+4 {
			t.Errorf("other-domain bid = %v", c)
		}
	})
}

func TestEstimateInfeasibleWhenNoGolden(t *testing.T) {
	r := newRig(t, Config{})
	r.run(t, func(p *sim.Proc) {
		odd := spec(t, "u1")
		odd.Hardware.MemoryMB = 128 // no golden of this size
		if c := r.pl.Estimate(p, odd); c.OK() {
			t.Errorf("bid for unmatched hardware = %v", c)
		}
		if _, err := r.pl.Create(p, "vm-x", odd); err == nil {
			t.Error("create without golden succeeded")
		}
	})
}

func TestMaxVMsEnforced(t *testing.T) {
	r := newRig(t, Config{MaxVMs: 2})
	r.run(t, func(p *sim.Proc) {
		for i := 0; i < 2; i++ {
			if _, err := r.pl.Create(p, core.VMID("vm-s-"+string(rune('1'+i))), spec(t, "u"+string(rune('1'+i)))); err != nil {
				t.Fatal(err)
			}
		}
		if c := r.pl.Estimate(p, spec(t, "u9")); c.OK() {
			t.Errorf("full plant bid %v", c)
		}
		if _, err := r.pl.Create(p, "vm-s-9", spec(t, "u9")); err == nil {
			t.Error("create beyond capacity succeeded")
		}
	})
}

func TestHostOnlyNetworkExhaustion(t *testing.T) {
	r := newRig(t, Config{HostOnlyNetworks: 1})
	r.run(t, func(p *sim.Proc) {
		s1 := spec(t, "u1")
		if _, err := r.pl.Create(p, "vm-s-1", s1); err != nil {
			t.Fatal(err)
		}
		// Second domain: no free network.
		s2 := spec(t, "u2")
		s2.Domain = "nwu.edu"
		if _, err := r.pl.Create(p, "vm-s-2", s2); err == nil {
			t.Error("create without free network succeeded")
		}
		// Same domain reuses the network.
		if _, err := r.pl.Create(p, "vm-s-3", spec(t, "u3")); err != nil {
			t.Errorf("same-domain create failed: %v", err)
		}
		// Two VMs of one domain share the switch.
		vm1, _ := r.pl.VM("vm-s-1")
		vm3, _ := r.pl.VM("vm-s-3")
		if vm1.Network() != vm3.Network() {
			t.Error("same-domain VMs on different host-only networks")
		}
		// Collect both: network freed for the other domain.
		if err := r.pl.Collect(p, "vm-s-1"); err != nil {
			t.Fatal(err)
		}
		if err := r.pl.Collect(p, "vm-s-3"); err != nil {
			t.Fatal(err)
		}
		if _, err := r.pl.Create(p, "vm-s-4", s2); err != nil {
			t.Errorf("create after network freed failed: %v", err)
		}
	})
}

func TestQueryAndCollect(t *testing.T) {
	r := newRig(t, Config{})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.pl.Create(p, "vm-s-1", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
		ad, ok := r.pl.Query(p, "vm-s-1")
		if !ok || ad.GetString(core.AttrState, "") != "running" {
			t.Errorf("query: ok=%v ad=%v", ok, ad)
		}
		p.Sleep(30 * time.Second)
		ad2, _ := r.pl.Query(p, "vm-s-1")
		if ad2.GetInt(core.AttrUptimeSecs, -1) < 30 {
			t.Errorf("uptime = %d", ad2.GetInt(core.AttrUptimeSecs, -1))
		}
		if err := r.pl.Collect(p, "vm-s-1"); err != nil {
			t.Fatal(err)
		}
		if _, ok := r.pl.Query(p, "vm-s-1"); ok {
			t.Error("collected VM still queryable")
		}
		if err := r.pl.Collect(p, "vm-s-1"); err == nil {
			t.Error("double collect succeeded")
		}
		if r.tb.Nodes[0].VMs() != 0 {
			t.Error("node memory leaked")
		}
	})
}

func TestMonitorUpdatesAds(t *testing.T) {
	r := newRig(t, Config{})
	r.k.Spawn("monitor", r.pl.Monitor(10*time.Second, 5))
	r.run(t, func(p *sim.Proc) {
		if _, err := r.pl.Create(p, "vm-s-1", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
		p.Sleep(2 * time.Minute)
		ad, ok := r.pl.Query(p, "vm-s-1")
		if !ok {
			t.Fatal("query failed")
		}
		if ad.GetReal(core.AttrCPULoad, -1) < 0 {
			t.Error("monitor never set CPULoad")
		}
	})
}

func TestFailureInjectionAborts(t *testing.T) {
	r := newRig(t, Config{FailProb: map[string]float64{actions.OpCreateUser: 1.0}})
	r.run(t, func(p *sim.Proc) {
		_, err := r.pl.Create(p, "vm-s-1", spec(t, "u1"))
		if err == nil || !strings.Contains(err.Error(), "injected failure") {
			t.Fatalf("err = %v", err)
		}
		// Cleanup: no VM, no committed memory, network released.
		if r.pl.ActiveVMs() != 0 || r.tb.Nodes[0].VMs() != 0 {
			t.Error("failed create leaked resources")
		}
		if r.pl.Networks().FreeCount() != r.pl.Networks().Size() {
			t.Error("failed create leaked host-only network")
		}
	})
}

func TestErrorPolicyRetrySucceedsEventually(t *testing.T) {
	// Failure probability 0.5 with generous retries: some attempt wins.
	r := newRig(t, Config{FailProb: map[string]float64{actions.OpCreateUser: 0.5}})
	r.run(t, func(p *sim.Proc) {
		s := spec(t, "u1")
		n, _ := s.Graph.Node("user")
		n.OnError.Retries = 50
		if _, err := r.pl.Create(p, "vm-s-1", s); err != nil {
			t.Fatalf("create with retries failed: %v", err)
		}
	})
}

func TestErrorPolicyContinueSkipsFailure(t *testing.T) {
	r := newRig(t, Config{FailProb: map[string]float64{actions.OpCreateUser: 1.0}})
	r.run(t, func(p *sim.Proc) {
		s := spec(t, "u1")
		n, _ := s.Graph.Node("user")
		n.OnError.Continue = true
		n.OnError.Handler = []dag.Action{act(actions.OpRunScript, "script", "report-failure.sh", "seconds", "1")}
		ad, err := r.pl.Create(p, "vm-s-1", s)
		if err != nil {
			t.Fatalf("create with continue policy failed: %v", err)
		}
		// The VM exists; the user action was skipped but the handler ran.
		vm, _ := r.pl.VM("vm-s-1")
		if vm.Guest().Users["u1"] {
			t.Error("failed action applied anyway")
		}
		if vm.Guest().Outputs["script:report-failure.sh"] != "ok" {
			t.Error("error handler did not run")
		}
		_ = ad
	})
}

func TestTemplateMatchRequiresExactImage(t *testing.T) {
	r := newRig(t, Config{TemplateMatch: true})
	r.run(t, func(p *sim.Proc) {
		// Golden covers only a prefix → template match refuses.
		if _, err := r.pl.Create(p, "vm-s-1", spec(t, "u1")); err == nil {
			t.Error("template match accepted a partial image")
		}
	})
}

func TestDisablePartialMatchUsesBlankImage(t *testing.T) {
	r := newRig(t, Config{DisablePartialMatch: true})
	// Publish a blank image so the ablation path has a source.
	blank, err := warehouse.BuildGolden("blank", core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048}, warehouse.BackendVMware, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := r.wh.Publish(blank); err != nil {
		t.Fatal(err)
	}
	took := r.run(t, func(p *sim.Proc) {
		if _, err := r.pl.Create(p, "vm-s-1", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
	})
	// Without partial matching the OS install (~20 min) is paid.
	if took < 15*time.Minute {
		t.Errorf("ablation create took only %v", took)
	}
}

func TestCloneModeCopyAblation(t *testing.T) {
	r := newRig(t, Config{CloneMode: vdisk.CloneByCopy})
	took := r.run(t, func(p *sim.Proc) {
		if _, err := r.pl.Create(p, "vm-s-1", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
	})
	if took < 3*time.Minute {
		t.Errorf("copy-clone create took only %v", took)
	}
	if r.pl.CreationLog()[0].Clone.CopiedBytes < 2<<30 {
		t.Error("copy mode did not copy the disk")
	}
}

func TestUMLBackendSelectedBySpec(t *testing.T) {
	r := newRig(t, Config{})
	umlGolden, err := warehouse.BuildGolden("ws-uml", core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048}, warehouse.BackendUML, goldenHistory())
	if err != nil {
		t.Fatal(err)
	}
	if err := r.wh.Publish(umlGolden); err != nil {
		t.Fatal(err)
	}
	r.run(t, func(p *sim.Proc) {
		s := spec(t, "u1")
		s.Backend = "uml"
		ad, err := r.pl.Create(p, "vm-s-1", s)
		if err != nil {
			t.Fatal(err)
		}
		if ad.GetString(core.AttrBackend, "") != "uml" {
			t.Errorf("backend = %q", ad.GetString(core.AttrBackend, ""))
		}
		if ad.GetString(core.AttrGoldenImage, "") != "ws-uml" {
			t.Errorf("golden = %q", ad.GetString(core.AttrGoldenImage, ""))
		}
	})
}

func TestGoldenImageRetirement(t *testing.T) {
	r := newRig(t, Config{})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.pl.Create(p, "vm-s-1", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
		im, _ := r.wh.Lookup("ws-golden")
		if im.Refs() != 1 {
			t.Errorf("refs = %d, want 1", im.Refs())
		}
		// The image cannot be retired while a clone links into it.
		if err := r.wh.Remove("ws-golden"); err == nil {
			t.Error("removed an image with live clones")
		}
		if err := r.pl.Collect(p, "vm-s-1"); err != nil {
			t.Fatal(err)
		}
		if im.Refs() != 0 {
			t.Errorf("refs after collect = %d", im.Refs())
		}
		// Now retirement succeeds and the state files disappear.
		filesBefore := len(r.wh.Volume().List())
		if err := r.wh.Remove("ws-golden"); err != nil {
			t.Fatal(err)
		}
		if _, ok := r.wh.Lookup("ws-golden"); ok {
			t.Error("retired image still published")
		}
		if got := len(r.wh.Volume().List()); got >= filesBefore {
			t.Errorf("state files not deleted: %d -> %d", filesBefore, got)
		}
		// Creating against a retired image fails.
		if _, err := r.pl.Create(p, "vm-s-2", spec(t, "u2")); err == nil {
			t.Error("create from retired image succeeded")
		}
		if err := r.wh.Remove("ws-golden"); err == nil {
			t.Error("double remove succeeded")
		}
	})
}

func TestFailedCreateReleasesImageRef(t *testing.T) {
	r := newRig(t, Config{FailProb: map[string]float64{actions.OpCreateUser: 1.0}})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.pl.Create(p, "vm-s-1", spec(t, "u1")); err == nil {
			t.Fatal("expected failure")
		}
		im, _ := r.wh.Lookup("ws-golden")
		if im.Refs() != 0 {
			t.Errorf("failed create leaked image ref: %d", im.Refs())
		}
	})
}
