package plant

import (
	"testing"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/sim"
)

func TestPrecreateServesRequestsFaster(t *testing.T) {
	r := newRig(t, Config{})
	var coldTook, warmTook time.Duration
	r.run(t, func(p *sim.Proc) {
		// Cold creation: full clone on the critical path.
		start := p.Now()
		if _, err := r.pl.Create(p, "vm-cold", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
		coldTook = p.Now() - start

		// Speculative pre-creation during idle time.
		if err := r.pl.Precreate(p, "ws-golden", 2); err != nil {
			t.Fatal(err)
		}
		if r.pl.PoolSize("ws-golden") != 2 {
			t.Fatalf("pool size %d", r.pl.PoolSize("ws-golden"))
		}
		// Suspended pool VMs hold no host memory.
		committed := r.tb.Nodes[0].VMs()
		if committed != 1 { // only vm-cold
			t.Errorf("node hosts %d committed VMs, want 1", committed)
		}

		// Warm creation: resume + configure only.
		start = p.Now()
		ad, err := r.pl.Create(p, "vm-warm", spec(t, "u2"))
		if err != nil {
			t.Fatal(err)
		}
		warmTook = p.Now() - start
		if ad.GetString(core.AttrVMID, "") != "vm-warm" {
			t.Errorf("rebrand failed: %s", ad.GetString(core.AttrVMID, ""))
		}
		if r.pl.PoolSize("ws-golden") != 1 {
			t.Errorf("pool size after hit = %d", r.pl.PoolSize("ws-golden"))
		}
	})
	if warmTook >= coldTook*7/10 {
		t.Errorf("precreation did not hide latency: cold %v, warm %v", coldTook, warmTook)
	}
	log := r.pl.CreationLog()
	if log[0].PrecreateHit || !log[1].PrecreateHit {
		t.Errorf("hit flags = %v, %v", log[0].PrecreateHit, log[1].PrecreateHit)
	}
}

func TestPrecreateUnknownImage(t *testing.T) {
	r := newRig(t, Config{})
	r.run(t, func(p *sim.Proc) {
		if err := r.pl.Precreate(p, "ghost", 1); err == nil {
			t.Error("precreate of unknown image succeeded")
		}
	})
}

func TestPrecreatedVMFullyFunctional(t *testing.T) {
	r := newRig(t, Config{})
	r.run(t, func(p *sim.Proc) {
		if err := r.pl.Precreate(p, "ws-golden", 1); err != nil {
			t.Fatal(err)
		}
		ad, err := r.pl.Create(p, "vm-s-1", spec(t, "u1"))
		if err != nil {
			t.Fatal(err)
		}
		// Configuration ran on the resumed clone.
		if ad.GetString(core.AttrIP, "") != "10.1.0.7" {
			t.Errorf("IP = %q", ad.GetString(core.AttrIP, ""))
		}
		vm, _ := r.pl.VM("vm-s-1")
		if !vm.Guest().Users["u1"] {
			t.Error("guest not personalized")
		}
		// Collect works as usual.
		if err := r.pl.Collect(p, "vm-s-1"); err != nil {
			t.Fatal(err)
		}
		if r.tb.Nodes[0].VMs() != 0 {
			t.Error("memory leaked")
		}
	})
}

func TestPoolExhaustionFallsBackToCloning(t *testing.T) {
	r := newRig(t, Config{})
	r.run(t, func(p *sim.Proc) {
		if err := r.pl.Precreate(p, "ws-golden", 1); err != nil {
			t.Fatal(err)
		}
		if _, err := r.pl.Create(p, "vm-1", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
		// Pool empty: the next request clones on demand.
		if _, err := r.pl.Create(p, "vm-2", spec(t, "u2")); err != nil {
			t.Fatal(err)
		}
		log := r.pl.CreationLog()
		if !log[0].PrecreateHit || log[1].PrecreateHit {
			t.Errorf("hit flags = %v, %v", log[0].PrecreateHit, log[1].PrecreateHit)
		}
	})
}

func TestPoolClonesHoldImageReferences(t *testing.T) {
	r := newRig(t, Config{})
	r.run(t, func(p *sim.Proc) {
		if err := r.pl.Precreate(p, "ws-golden", 2); err != nil {
			t.Fatal(err)
		}
		im, _ := r.wh.Lookup("ws-golden")
		if im.Refs() != 2 {
			t.Errorf("pool refs = %d, want 2", im.Refs())
		}
		// An image with parked clones cannot be retired.
		if err := r.wh.Remove("ws-golden"); err == nil {
			t.Error("removed image with parked clones")
		}
		// Consuming a pool clone transfers its reference to the VM.
		if _, err := r.pl.Create(p, "vm-1", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
		if im.Refs() != 2 { // 1 pool + 1 live VM
			t.Errorf("refs after hit = %d, want 2", im.Refs())
		}
		if err := r.pl.Collect(p, "vm-1"); err != nil {
			t.Fatal(err)
		}
		if im.Refs() != 1 { // the remaining parked clone
			t.Errorf("refs after collect = %d, want 1", im.Refs())
		}
	})
}
