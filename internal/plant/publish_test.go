package plant

import (
	"testing"
	"time"

	"vmplants/internal/actions"
	"vmplants/internal/core"
	"vmplants/internal/dag"
	"vmplants/internal/sim"
)

// appSpec builds a request whose DAG extends the golden history with an
// expensive application install plus per-instance personalization.
func appSpec(t testing.TB, user string) *core.Spec {
	t.Helper()
	g, err := dag.NewBuilder().
		Add("os", act(actions.OpInstallOS, "distro", "mandrake-8.1")).
		Add("vnc", act(actions.OpInstallPackage, "name", "vnc-server"), "os").
		Add("app", act(actions.OpInstallPackage, "name", "matlab", "seconds", "300"), "vnc").
		Add("user", act(actions.OpCreateUser, "name", user), "app").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return &core.Spec{
		Name:     "app-" + user,
		Hardware: core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048},
		Domain:   "ufl.edu",
		Graph:    g,
	}
}

func TestPublishImageAcceleratesLaterCreations(t *testing.T) {
	r := newRig(t, Config{})
	var firstTook, secondTook time.Duration
	r.run(t, func(p *sim.Proc) {
		// First request pays the 300 s application install (golden covers
		// only os+vnc).
		start := p.Now()
		ad, err := r.pl.Create(p, "vm-s-1", appSpec(t, "alice"))
		if err != nil {
			t.Fatal(err)
		}
		firstTook = p.Now() - start
		if ad.GetInt(core.AttrMatchedOps, 0) != 2 {
			t.Fatalf("first create matched %d ops", ad.GetInt(core.AttrMatchedOps, 0))
		}

		// The installer publishes the configured machine.
		if err := r.pl.PublishImage(p, "vm-s-1", "mandrake-matlab"); err != nil {
			t.Fatal(err)
		}
		if _, ok := r.wh.Lookup("mandrake-matlab"); !ok {
			t.Fatal("published image not in warehouse")
		}

		// The second request for a different user matches the published
		// image: os, vnc, app AND alice's user action are all performed
		// on it — but "create-user bob" differs from "create-user alice",
		// so the subset test rejects the 4-op image... unless the new
		// image is usable. The published history includes create-user
		// alice, which bob's DAG does not request, so the matcher must
		// fall back to the original 2-op golden for bob. A request that
		// *does* include alice's user (a re-instantiation of her
		// workspace) gets the full 4-op match.
		start = p.Now()
		ad2, err := r.pl.Create(p, "vm-s-2", appSpec(t, "alice"))
		if err != nil {
			t.Fatal(err)
		}
		secondTook = p.Now() - start
		if got := ad2.GetString(core.AttrGoldenImage, ""); got != "mandrake-matlab" {
			t.Errorf("second create cloned %q, want the published image", got)
		}
		if ad2.GetInt(core.AttrMatchedOps, 0) != 4 {
			t.Errorf("second create matched %d ops, want 4", ad2.GetInt(core.AttrMatchedOps, 0))
		}
	})
	// The 300 s install is amortized away.
	if secondTook >= firstTook/2 {
		t.Errorf("publish did not amortize: first %v, second %v", firstTook, secondTook)
	}
}

func TestPublishedImageServesOtherUsersViaPartialMatch(t *testing.T) {
	// An image containing an extra action (alice's user) cannot serve
	// bob (subset test); bob falls back to the 2-op golden.
	r := newRig(t, Config{})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.pl.Create(p, "vm-s-1", appSpec(t, "alice")); err != nil {
			t.Fatal(err)
		}
		if err := r.pl.PublishImage(p, "vm-s-1", "alice-image"); err != nil {
			t.Fatal(err)
		}
		ad, err := r.pl.Create(p, "vm-s-2", appSpec(t, "bob"))
		if err != nil {
			t.Fatal(err)
		}
		if got := ad.GetString(core.AttrGoldenImage, ""); got != "ws-golden" {
			t.Errorf("bob cloned %q, want the base golden", got)
		}
	})
}

func TestPublishErrors(t *testing.T) {
	r := newRig(t, Config{})
	r.run(t, func(p *sim.Proc) {
		if err := r.pl.PublishImage(p, "vm-ghost", "x"); err == nil {
			t.Error("publish of unknown VM succeeded")
		}
		if _, err := r.pl.Create(p, "vm-s-1", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
		if err := r.pl.PublishImage(p, "vm-s-1", "img"); err != nil {
			t.Fatal(err)
		}
		// Duplicate image name.
		if err := r.pl.PublishImage(p, "vm-s-1", "img"); err == nil {
			t.Error("duplicate image name accepted")
		}
		// Collected VM cannot be published.
		if err := r.pl.Collect(p, "vm-s-1"); err != nil {
			t.Fatal(err)
		}
		if err := r.pl.PublishImage(p, "vm-s-1", "img2"); err == nil {
			t.Error("publish of collected VM succeeded")
		}
	})
}

func TestPublishedVMKeepsRunningIndependently(t *testing.T) {
	r := newRig(t, Config{})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.pl.Create(p, "vm-s-1", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
		if err := r.pl.PublishImage(p, "vm-s-1", "img"); err != nil {
			t.Fatal(err)
		}
		// The VM keeps accepting configuration after the snapshot, and
		// those writes do not leak into the published image.
		vm, _ := r.pl.VM("vm-s-1")
		if err := vm.ExecGuestAction(p, act(actions.OpCreateUser, "name", "late-user")); err != nil {
			t.Fatal(err)
		}
		im, _ := r.wh.Lookup("img")
		if im.Guest.Users["late-user"] {
			t.Error("post-publish guest state leaked into the image")
		}
		for _, a := range im.Performed {
			if a.Params["name"] == "late-user" {
				t.Error("post-publish history leaked into the image")
			}
		}
		// The image still clones cleanly.
		if _, err := r.pl.Create(p, "vm-s-2", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
	})
}
