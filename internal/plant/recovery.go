package plant

import (
	"fmt"
	"sort"
	"time"

	"vmplants/internal/classad"
	"vmplants/internal/core"
	"vmplants/internal/fault"
	"vmplants/internal/journal"
	"vmplants/internal/sim"
	"vmplants/internal/vmm"
)

// The paper's §3.1 keeps only soft state in VMShop and the VM
// Information System precisely so the system can recover from daemon
// failures. This file is the plant half of that story: Crash models
// the management daemon dying — its soft state evaporates while the
// production line's VMs, the host-only switches, and the warehouse
// references survive on the host (the plant's host map) — and Recover
// models the restarted daemon rescanning that host state to rebuild
// the information system, cross-checked against the plant's journal
// when one is attached.

// Down reports whether the plant daemon is crashed. Transports check
// it before delivering calls.
func (pl *Plant) Down() bool {
	pl.mu.Lock()
	defer pl.mu.Unlock()
	return pl.down
}

// Faults exposes the plant's effective fault registry (the configured
// one, or the one the FailProb adapter created); nil when injection is
// disabled.
func (pl *Plant) Faults() *fault.Registry { return pl.faults }

// SetJournal attaches the plant's event log: lifecycle events are
// journaled from now on, and Recover replays the log as a cross-check
// of its host scan — the same durability mechanism the shop and
// warehouse use, replacing the old copy-on-crash ledger.
func (pl *Plant) SetJournal(j *journal.Journal) { pl.jnl = j }

// Journal returns the attached journal (nil when none).
func (pl *Plant) Journal() *journal.Journal { return pl.jnl }

// journalVM appends a vm-created / vm-collected lifecycle event.
func (pl *Plant) journalVM(p *sim.Proc, id core.VMID, created bool) {
	if pl.jnl == nil {
		return
	}
	kind := journal.VMCollected
	if created {
		kind = journal.VMCreated
	}
	pl.jnl.AppendSync(p, journal.Record{
		Kind: kind, Key: string(id),
		Fields: map[string]string{"plant": pl.name},
	})
}

// Crash simulates the plant daemon dying. Subsequent calls through any
// transport fail until Recover runs. The VM Information System's
// classads are lost — they are soft state — while each VM keeps
// running on the host: nothing is copied anywhere, because the host
// map was maintained at creation time, not at crash time.
func (pl *Plant) Crash() {
	pl.mu.Lock()
	if pl.down {
		pl.mu.Unlock()
		return
	}
	pl.down = true
	pl.mu.Unlock()
	for _, id := range pl.info.IDs() {
		if r, ok := pl.info.get(id); ok {
			r.ad = nil // soft state dies with the daemon
		}
		pl.info.remove(id)
	}
	pl.mCrashes.Inc()
	pl.gActiveVMs.Set(0)
	if pl.jnl != nil {
		// Out-of-kernel observation of the death; the journal's unsynced
		// tail (none: lifecycle events are synced) dies with the daemon.
		pl.jnl.Crash()
		pl.jnl.Append(nil, journal.Record{Kind: journal.PlantCrash, Key: pl.name})
	}
}

// Recover restarts a crashed plant daemon: it rescans the host —
// running VMs, network assignments, image references — and rebuilds
// the VM Information System record by record, re-deriving each classad
// from the VM's runtime state. With a journal attached, the log is
// replayed first and its live set compared with the host scan; any
// disagreement is surfaced on the plant-recover record. It reports how
// many records were rebuilt. On a plant that never crashed it is a
// no-op.
func (pl *Plant) Recover(p *sim.Proc) (n int) {
	pl.mu.Lock()
	if !pl.down {
		pl.mu.Unlock()
		return 0
	}
	pl.down = false
	ids := make([]core.VMID, 0, len(pl.host))
	for id := range pl.host {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	recs := make([]*record, len(ids))
	for i, id := range ids {
		recs[i] = pl.host[id]
	}
	pl.mu.Unlock()

	sp := pl.tel.T().Start(p, "plant.recover").Set("plant", pl.name)
	defer func() {
		sp.SetInt("vms", int64(n))
		sp.End(p)
	}()
	// Journal replay: rebuild the set of VMs the log believes live
	// (created minus collected) to cross-check the host scan.
	mismatches := 0
	if pl.jnl != nil {
		live := make(map[core.VMID]bool)
		_, _ = pl.jnl.Replay(func(r journal.Record) error {
			switch r.Kind {
			case journal.VMCreated:
				live[core.VMID(r.Key)] = true
			case journal.VMCollected:
				delete(live, core.VMID(r.Key))
			}
			return nil
		})
		for _, id := range ids {
			if !live[id] {
				mismatches++
			}
		}
		for id := range live {
			found := false
			for _, hid := range ids {
				if hid == id {
					found = true
					break
				}
			}
			if !found {
				mismatches++
			}
		}
	}
	// Daemon restart cost: process start plus a host-state scan.
	p.Sleep(sim.Seconds(0.5 * pl.node.Jitter()))
	for _, r := range recs {
		// Per-VM probe of the production line.
		p.Sleep(sim.Seconds(0.05 * pl.node.Jitter()))
		r.ad = pl.rebuildAd(p, r)
		pl.info.store(r)
		n++
	}
	pl.mRecoveries.Inc()
	pl.gActiveVMs.Set(int64(pl.info.Count()))
	if pl.jnl != nil {
		pl.jnl.AppendSync(p, journal.Record{
			Kind: journal.PlantRecover, Key: pl.name,
			Fields: map[string]string{
				"vms":        fmt.Sprint(n),
				"mismatches": fmt.Sprint(mismatches),
			},
		})
	}
	return n
}

// rebuildAd re-derives a VM's classad from runtime state after a crash.
// Everything observable on the host comes back — identity, hardware,
// network, outputs, golden lineage. What only the dead daemon knew
// (clone latency, match counts) is gone, which is the honest shape of
// soft-state recovery; a Recovered marker says so.
func (pl *Plant) rebuildAd(p *sim.Proc, r *record) *classad.Ad {
	vm := r.vm
	hw := vm.Hardware()
	state := "suspended"
	if vm.State() == vmm.Running {
		state = core.StateRunning.String()
	}
	ad := classad.New().
		SetString(core.AttrVMID, string(vm.ID())).
		SetString(core.AttrName, vm.Name()).
		SetString(core.AttrState, state).
		SetInt(core.AttrMemoryMB, int64(hw.MemoryMB)).
		SetInt(core.AttrDiskMB, int64(hw.DiskMB)).
		SetString(core.AttrArch, hw.Arch).
		SetString(core.AttrDomain, r.domain).
		SetString(core.AttrPlant, pl.name).
		SetString(core.AttrBackend, vm.Backend()).
		SetInt(core.AttrCreatedAt, int64(r.createdAt/time.Second)).
		SetString("Recovered", "true")
	if net := vm.Network(); net != nil {
		ad.SetString(core.AttrNetwork, net.ID)
	}
	if r.golden != nil {
		ad.SetString(core.AttrGoldenImage, r.golden.Name)
	}
	if ip := vm.Guest().IP; ip != "" {
		ad.SetString(core.AttrIP, ip)
	}
	ad.SetString(core.AttrMAC, vm.MAC().String())
	for _, k := range sortedKeys(vm.Guest().Outputs) {
		ad.SetString("Out_"+sanitizeAttr(k), vm.Guest().Outputs[k])
	}
	ad.SetInt(core.AttrUptimeSecs, int64((p.Now()-r.createdAt)/time.Second))
	return ad
}
