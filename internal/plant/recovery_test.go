package plant

import (
	"fmt"
	"testing"

	"vmplants/internal/actions"
	"vmplants/internal/core"
	"vmplants/internal/fault"
	"vmplants/internal/sim"
)

func TestCrashLosesSoftStateOnly(t *testing.T) {
	r := newRig(t, Config{MaxVMs: 8})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.pl.Create(p, "vm-c-1", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
		if _, err := r.pl.Create(p, "vm-c-2", spec(t, "u2")); err != nil {
			t.Fatal(err)
		}
		r.pl.Crash()
		if !r.pl.Down() {
			t.Fatal("crashed plant not down")
		}
		// The information system (soft state) is gone...
		if r.pl.ActiveVMs() != 0 {
			t.Errorf("info system survived the crash: %d records", r.pl.ActiveVMs())
		}
		if _, ok := r.pl.Query(p, "vm-c-1"); ok {
			t.Error("classad survived the crash")
		}
		// ...but the host state is not: VMs still run, networks held.
		if got := r.tb.Nodes[0].VMs(); got != 2 {
			t.Errorf("host lost VMs with the daemon: %d running", got)
		}
		if free := r.pl.Networks().FreeCount(); free == r.pl.Networks().Size() {
			t.Error("crash released the host-only network")
		}
	})
}

func TestRecoverRebuildsInfoSystem(t *testing.T) {
	r := newRig(t, Config{MaxVMs: 8})
	r.run(t, func(p *sim.Proc) {
		ad1, err := r.pl.Create(p, "vm-c-1", spec(t, "u1"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := r.pl.Create(p, "vm-c-2", spec(t, "u2")); err != nil {
			t.Fatal(err)
		}
		r.pl.Crash()
		before := p.Now()
		if n := r.pl.Recover(p); n != 2 {
			t.Fatalf("Recover rebuilt %d records, want 2", n)
		}
		if p.Now() == before {
			t.Error("recovery was free; restart and rescan should cost virtual time")
		}
		if r.pl.Down() {
			t.Fatal("recovered plant still down")
		}
		if r.pl.ActiveVMs() != 2 {
			t.Fatalf("info system has %d records, want 2", r.pl.ActiveVMs())
		}
		ad, ok := r.pl.Query(p, "vm-c-1")
		if !ok {
			t.Fatal("recovered VM unknown")
		}
		// Host-observable attributes come back; the rebuilt ad says so.
		if ad.GetString("Recovered", "") != "true" {
			t.Error("rebuilt ad not marked Recovered")
		}
		for _, attr := range []string{core.AttrVMID, core.AttrDomain, core.AttrNetwork, core.AttrMAC} {
			if ad.GetString(attr, "") != ad1.GetString(attr, "") {
				t.Errorf("%s: rebuilt %q, original %q", attr, ad.GetString(attr, ""), ad1.GetString(attr, ""))
			}
		}
		// The requested display name was daemon soft state; the rescan
		// reports what the host actually registered (the golden's name).
		vm, _ := r.pl.VM("vm-c-1")
		if got := ad.GetString(core.AttrName, ""); got != vm.Name() {
			t.Errorf("rebuilt name %q, host name %q", got, vm.Name())
		}
		// What only the dead daemon knew is honestly gone.
		if ad.GetReal(core.AttrCloneSecs, -1) != -1 {
			t.Error("clone latency resurrected from nothing")
		}
		// The recovered daemon manages its VMs end to end.
		if err := r.pl.Collect(p, "vm-c-1"); err != nil {
			t.Fatalf("collect after recovery: %v", err)
		}
		if err := r.pl.Collect(p, "vm-c-2"); err != nil {
			t.Fatalf("collect after recovery: %v", err)
		}
		if free, size := r.pl.Networks().FreeCount(), r.pl.Networks().Size(); free != size {
			t.Errorf("networks leaked across crash/recover: %d/%d free", free, size)
		}
	})
}

func TestRecoverIsIdempotent(t *testing.T) {
	r := newRig(t, Config{MaxVMs: 8})
	r.run(t, func(p *sim.Proc) {
		if n := r.pl.Recover(p); n != 0 {
			t.Fatalf("recover on healthy plant rebuilt %d records", n)
		}
		if _, err := r.pl.Create(p, "vm-c-1", spec(t, "u1")); err != nil {
			t.Fatal(err)
		}
		r.pl.Crash()
		r.pl.Crash() // double crash is one crash
		if n := r.pl.Recover(p); n != 1 {
			t.Fatalf("Recover rebuilt %d records, want 1", n)
		}
		if n := r.pl.Recover(p); n != 0 {
			t.Fatalf("second Recover rebuilt %d records, want 0", n)
		}
	})
}

// Satellite: DAG error policies under registry-injected action failures
// must behave identically across runs with the same seed — the
// injection draws ride the plant's deterministic RNG.
func TestErrorPolicyUnderInjectionDeterministic(t *testing.T) {
	outcomes := func(seed int64) string {
		reg := fault.NewRegistry(seed)
		reg.SetProb("node00", fault.ActionFail, actions.OpCreateUser, 0.5)
		r := newRig(t, Config{MaxVMs: 16, Faults: reg})
		var out string
		r.run(t, func(p *sim.Proc) {
			for i := 0; i < 8; i++ {
				s := spec(t, fmt.Sprintf("u%d", i))
				n, _ := s.Graph.Node("user")
				n.OnError.Retries = 1
				_, err := r.pl.Create(p, core.VMID(fmt.Sprintf("vm-d-%d", i)), s)
				if err == nil {
					out += "S"
				} else {
					out += "F"
				}
			}
		})
		return out
	}
	a, b := outcomes(11), outcomes(11)
	if a != b {
		t.Fatalf("same seed diverged: %s vs %s", a, b)
	}
	if a != outcomes(11) {
		t.Fatalf("third run diverged from %s", a)
	}
	// With failure probability 0.5 and one retry, 8 requests should see
	// both outcomes; an all-S or all-F string means injection is dead.
	if a == "SSSSSSSS" || a == "FFFFFFFF" {
		t.Errorf("degenerate outcome pattern %s", a)
	}
}

// Satellite: Continue lets configuration proceed past an injected
// failure every time, regardless of seed.
func TestErrorPolicyContinueUnderInjection(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		reg := fault.NewRegistry(seed)
		reg.SetProb("node00", fault.ActionFail, actions.OpCreateUser, 1.0)
		r := newRig(t, Config{MaxVMs: 4, Faults: reg})
		r.run(t, func(p *sim.Proc) {
			s := spec(t, "u1")
			n, _ := s.Graph.Node("user")
			n.OnError.Continue = true
			if _, err := r.pl.Create(p, "vm-k-1", s); err != nil {
				t.Fatalf("seed %d: create with continue policy failed: %v", seed, err)
			}
			vm, _ := r.pl.VM("vm-k-1")
			if vm.Guest().Users["u1"] {
				t.Errorf("seed %d: failed action applied anyway", seed)
			}
		})
	}
}
