package plant

import (
	"sync"
	"testing"

	"vmplants/internal/core"
	"vmplants/internal/sim"
	"vmplants/internal/telemetry"
)

// TestCreateTraceDecomposesStages is the e2e trace assertion: one
// Plant.Create leaves a "plant.create" root span whose children
// reconstruct the creation pipeline — plan, clone (with its copy/resume
// phases), configure — and exactly one "action" span per executed DAG
// node, in topological (residual plan) order.
func TestCreateTraceDecomposesStages(t *testing.T) {
	hub := telemetry.New()
	r := newRig(t, Config{Telemetry: hub})
	r.run(t, func(p *sim.Proc) {
		if _, err := r.pl.Create(p, "vm-t-1", spec(t, "grace")); err != nil {
			t.Fatal(err)
		}
	})

	spans := hub.Tracer.Spans()
	byName := make(map[string][]telemetry.Span)
	for _, s := range spans {
		byName[s.Name] = append(byName[s.Name], s)
	}

	roots := byName["plant.create"]
	if len(roots) != 1 {
		t.Fatalf("got %d plant.create spans, want 1", len(roots))
	}
	root := roots[0]
	if root.Err != "" {
		t.Fatalf("root span failed: %s", root.Err)
	}
	if root.Attr("vmid") != "vm-t-1" || root.Attr("plant") != "node00" {
		t.Fatalf("root attrs = %v", root.Attrs)
	}

	for _, stage := range []string{"plan", "clone", "configure"} {
		ss := byName[stage]
		if len(ss) != 1 {
			t.Fatalf("got %d %q spans, want 1", len(ss), stage)
		}
		if ss[0].Parent != root.ID {
			t.Fatalf("%q span parent = %d, want root %d", stage, ss[0].Parent, root.ID)
		}
	}
	// The golden image covers os+vnc, so the plan matched 2 ops and left
	// a 2-node residual.
	plan := byName["plan"][0]
	if plan.Attr("matched_ops") != "2" || plan.Attr("residual_ops") != "2" {
		t.Fatalf("plan attrs = %v", plan.Attrs)
	}

	// Clone decomposition: vmware clones are a state copy plus a
	// checkpoint resume, and the phases tile the clone span's virtual
	// interval.
	clone := byName["clone"][0]
	cp, res := byName["clone.copy"], byName["clone.resume"]
	if len(cp) != 1 || len(res) != 1 {
		t.Fatalf("got %d clone.copy and %d clone.resume spans, want 1 each", len(cp), len(res))
	}
	if cp[0].Parent != clone.ID || res[0].Parent != clone.ID {
		t.Fatal("clone phases must be children of the clone span")
	}
	if cp[0].VStart != clone.VStart || cp[0].VEnd != res[0].VStart {
		t.Fatalf("clone phases do not tile: copy [%v, %v], resume starts %v",
			cp[0].VStart, cp[0].VEnd, res[0].VStart)
	}
	if cp[0].Virtual() <= 0 || res[0].Virtual() <= 0 {
		t.Fatal("clone phases must take virtual time")
	}

	// One "action" span per executed residual node, in topological
	// order, parented under "configure".
	cfg := byName["configure"][0]
	actionSpans := byName["action"]
	wantNodes := []string{"net", "user"} // residual after os+vnc matched
	if len(actionSpans) != len(wantNodes) {
		t.Fatalf("got %d action spans, want %d", len(actionSpans), len(wantNodes))
	}
	for i, as := range actionSpans {
		if as.Parent != cfg.ID {
			t.Fatalf("action %d parent = %d, want configure %d", i, as.Parent, cfg.ID)
		}
		if as.Attr("node") != wantNodes[i] {
			t.Fatalf("action[%d] node = %q, want %q (topological order)", i, as.Attr("node"), wantNodes[i])
		}
		if as.VStart < cfg.VStart || as.Virtual() <= 0 {
			t.Fatalf("action[%d] interval [%v, %v] outside configure", i, as.VStart, as.VEnd)
		}
	}
	// Spans publish in end order, so consecutive actions must not
	// overlap in virtual time.
	if actionSpans[0].VEnd > actionSpans[1].VStart {
		t.Fatalf("actions overlap: %v > %v", actionSpans[0].VEnd, actionSpans[1].VStart)
	}
}

// TestCreateMetrics checks the counters and histograms a creation run
// feeds.
func TestCreateMetrics(t *testing.T) {
	hub := telemetry.New()
	r := newRig(t, Config{Telemetry: hub})
	r.run(t, func(p *sim.Proc) {
		for i, user := range []string{"ada", "bob"} {
			id := core.VMID(rune('a' + i))
			if _, err := r.pl.Create(p, "vm-m-"+id, spec(t, user)); err != nil {
				t.Fatal(err)
			}
		}
	})
	m := hub.Metrics
	if got := m.Counter("plant.creations").Value(); got != 2 {
		t.Fatalf("plant.creations = %d, want 2", got)
	}
	if got := m.Counter("warehouse.image_hits").Value(); got != 2 {
		t.Fatalf("warehouse.image_hits = %d, want 2", got)
	}
	if got := m.Gauge("plant.active_vms").Value(); got != 2 {
		t.Fatalf("plant.active_vms = %d, want 2", got)
	}
	if got := m.Counter("vmm.clone_bytes_copied").Value(); got <= 0 {
		t.Fatalf("vmm.clone_bytes_copied = %d, want > 0", got)
	}
	if got := m.Histogram("plant.create_secs").Count(); got != 2 {
		t.Fatalf("plant.create_secs count = %d, want 2", got)
	}
	if s := m.Histogram("plant.create_secs").Snapshot(); s.Mean <= 0 {
		t.Fatalf("plant.create_secs mean = %v, want > 0", s.Mean)
	}
	// Kernel instruments fed through the same hub.
	r.k.SetTelemetry(hub)
	r.run(t, func(p *sim.Proc) { p.Sleep(sim.Seconds(1)) })
	if got := m.Counter("sim.events_dispatched").Value(); got <= 0 {
		t.Fatalf("sim.events_dispatched = %d, want > 0", got)
	}
}

// TestCreationLogConcurrentReads exercises the S1 fix: CreationLog must
// be safe to call from outside the kernel while creations are appending
// (run with -race).
func TestCreationLogConcurrentReads(t *testing.T) {
	r := newRig(t, Config{})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				r.pl.CreationLog()
				r.pl.PoolSize("ws-golden")
			}
		}
	}()
	r.run(t, func(p *sim.Proc) {
		for i, user := range []string{"u1", "u2", "u3"} {
			id := core.VMID(rune('0' + i))
			if _, err := r.pl.Create(p, "vm-c-"+id, spec(t, user)); err != nil {
				t.Fatal(err)
			}
		}
	})
	close(stop)
	wg.Wait()
	if got := len(r.pl.CreationLog()); got != 3 {
		t.Fatalf("creation log has %d entries, want 3", got)
	}
}
