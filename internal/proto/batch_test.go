package proto

import (
	"testing"

	"vmplants/internal/classad"
)

func sampleBatchCreate(t testing.TB) *Message {
	return &Message{
		Kind: KindBatchCreateRequest,
		Seq:  9,
		BatchCreate: &BatchCreateRequest{
			Items: []CreateRequest{
				*sampleCreate(t).Create,
				{
					Name:     "workspace-2",
					Arch:     "x86",
					MemoryMB: 256,
					DiskMB:   2048,
					Domain:   "ufl.edu",
					Graph:    sampleGraph(t),
				},
			},
		},
	}
}

func TestBatchCreateRequestRoundTrip(t *testing.T) {
	blob, err := Marshal(sampleBatchCreate(t))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindBatchCreateRequest || m.Seq != 9 {
		t.Fatalf("envelope = %s seq %d", m.Kind, m.Seq)
	}
	items := m.BatchCreate.Items
	if len(items) != 2 {
		t.Fatalf("%d items", len(items))
	}
	if items[0].Name != "workspace-1" || items[0].MemoryMB != 64 {
		t.Errorf("item 0 = %+v", items[0])
	}
	if items[1].Name != "workspace-2" || items[1].MemoryMB != 256 {
		t.Errorf("item 1 = %+v", items[1])
	}
	for i, it := range items {
		if _, err := it.Spec(); err != nil {
			t.Errorf("item %d spec: %v", i, err)
		}
	}
}

func TestBatchCreateResponseRoundTrip(t *testing.T) {
	ad := classad.New().SetString("VMID", "vm-shop-1").SetInt("MemoryMB", 64)
	in := &Message{
		Kind: KindBatchCreateResponse,
		Seq:  9,
		BatchCreated: &BatchCreateResponse{
			Items: []BatchCreateItem{
				{VMID: "vm-shop-1", Ad: ad},
				{Err: "no plant can satisfy the request"},
			},
		},
	}
	blob, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	items := m.BatchCreated.Items
	if len(items) != 2 {
		t.Fatalf("%d items", len(items))
	}
	if items[0].VMID != "vm-shop-1" || items[0].Err != "" {
		t.Errorf("item 0 = %+v", items[0])
	}
	if items[0].Ad.GetInt("MemoryMB", -1) != 64 {
		t.Errorf("item 0 ad = %s", items[0].Ad)
	}
	if items[1].VMID != "" || items[1].Err == "" {
		t.Errorf("item 1 = %+v", items[1])
	}
}

func TestBatchCreateEnvelopeValidation(t *testing.T) {
	// Kind says batch but the body is missing: must not marshal.
	if _, err := Marshal(&Message{Kind: KindBatchCreateRequest}); err == nil {
		t.Error("marshal of empty batch-create envelope succeeded")
	}
	// Batch body under the wrong kind: must not marshal either.
	m := sampleBatchCreate(t)
	m.Kind = KindCreateRequest
	if _, err := Marshal(m); err == nil {
		t.Error("marshal of mismatched envelope succeeded")
	}
}
