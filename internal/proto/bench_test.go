package proto

import (
	"bytes"
	"testing"
)

func BenchmarkCreateRequestRoundTrip(b *testing.B) {
	m := sampleCreate(b)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := WriteMessage(&buf, m); err != nil {
			b.Fatal(err)
		}
		if _, err := ReadMessage(&buf); err != nil {
			b.Fatal(err)
		}
	}
}
