package proto

import (
	"testing"

	"vmplants/internal/classad"
)

// A forwarded creation crosses cells carrying its origin and the
// forwarding token; both must survive the wire, or the peer's dedupe
// journal and the one-hop guard stop working.
func TestForwardCreateRoundTrip(t *testing.T) {
	m := sampleCreate(t)
	m.Kind = KindForwardCreateRequest
	m.Create.Origin = "cellA"
	m.Create.RequestID = "fwd-cellA-vm-cellA-7"
	m.ForwardCreate = &ForwardCreateRequest{Origin: "cellA", Create: m.Create}
	m.Create = nil
	blob, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(blob)
	if err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, blob)
	}
	if back.Kind != KindForwardCreateRequest || back.ForwardCreate == nil {
		t.Fatalf("envelope = %+v", back)
	}
	if back.ForwardCreate.Origin != "cellA" {
		t.Errorf("origin = %q", back.ForwardCreate.Origin)
	}
	spec, err := back.ForwardCreate.Create.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Origin != "cellA" || spec.RequestID != "fwd-cellA-vm-cellA-7" {
		t.Errorf("spec lost federation fields: origin=%q req=%q", spec.Origin, spec.RequestID)
	}
	if spec.Graph.Len() != 2 {
		t.Errorf("graph lost: %s", spec.Graph)
	}
}

// The probe variant is a non-creating lookup: no embedded create
// request, just the token; the response carries the verdict.
func TestForwardProbeRoundTrip(t *testing.T) {
	m := &Message{Kind: KindForwardCreateRequest, Seq: 9,
		ForwardCreate: &ForwardCreateRequest{Origin: "cellA", Probe: true, Token: "fwd-cellA-vm-cellA-7"}}
	blob, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if !back.ForwardCreate.Probe || back.ForwardCreate.Token != "fwd-cellA-vm-cellA-7" || back.ForwardCreate.Create != nil {
		t.Errorf("probe = %+v", back.ForwardCreate)
	}

	resp := &Message{Kind: KindForwardCreateResponse, Seq: 9,
		ForwardCreated: &ForwardCreateResponse{VMID: "vm-cellB-3", Found: true,
			Ad: classad.New().SetString("VMID", "vm-cellB-3")}}
	blob, err = Marshal(resp)
	if err != nil {
		t.Fatal(err)
	}
	back, err = Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.ForwardCreated.VMID != "vm-cellB-3" || !back.ForwardCreated.Found {
		t.Errorf("response = %+v", back.ForwardCreated)
	}
	if back.ForwardCreated.Ad.GetString("VMID", "") != "vm-cellB-3" {
		t.Errorf("classad lost: %s", back.ForwardCreated.Ad)
	}
}
