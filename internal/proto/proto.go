// Package proto defines the XML message protocol spoken between VMShop
// clients, the VMShop, and VMPlants (paper §4.1: "Services requested by
// VMShop clients are specified as XML strings"; §3.1: the shop↔plant
// binding protocol "uses XML-based requests").
//
// Messages are XML documents framed with a 4-byte big-endian length
// prefix. The same codec runs over real net.Conn streams (the daemons)
// and over in-memory/simulated transports (the experiments), so the
// exact bytes on the wire are identical in both settings.
package proto

import (
	"encoding/binary"
	"encoding/xml"
	"fmt"
	"io"

	"vmplants/internal/classad"
	"vmplants/internal/core"
	"vmplants/internal/dag"
)

// MaxMessageSize bounds a framed message (DAGs and classads are small;
// anything larger is a protocol error, not a workload).
const MaxMessageSize = 4 << 20

// Kind discriminates message types on the wire.
type Kind string

// Message kinds.
const (
	KindCreateRequest         Kind = "create-request"
	KindCreateResponse        Kind = "create-response"
	KindBatchCreateRequest    Kind = "batch-create-request"
	KindBatchCreateResponse   Kind = "batch-create-response"
	KindQueryRequest          Kind = "query-request"
	KindQueryResponse         Kind = "query-response"
	KindDestroyRequest        Kind = "destroy-request"
	KindDestroyResponse       Kind = "destroy-response"
	KindEstimateRequest       Kind = "estimate-request"
	KindEstimateResponse      Kind = "estimate-response"
	KindForwardCreateRequest  Kind = "forward-create-request"
	KindForwardCreateResponse Kind = "forward-create-response"
	KindPublishRequest        Kind = "publish-request"
	KindPublishResponse       Kind = "publish-response"
	KindPublishImageRequest   Kind = "publish-image-request"
	KindPublishImageResponse  Kind = "publish-image-response"
	KindLifecycleRequest      Kind = "lifecycle-request"
	KindLifecycleResponse     Kind = "lifecycle-response"
	KindListRequest           Kind = "list-request"
	KindListResponse          Kind = "list-response"
	KindPingRequest           Kind = "ping-request"
	KindPingResponse          Kind = "ping-response"
	KindError                 Kind = "error"
)

// Message is the envelope: exactly one of the pointers is non-nil,
// matching Kind.
type Message struct {
	XMLName xml.Name `xml:"message"`
	Kind    Kind     `xml:"kind,attr"`
	Seq     uint64   `xml:"seq,attr"` // request/response correlation
	// Trace context: the caller's trace ID and the span the callee's
	// work should parent under, so causality survives the process
	// boundary. Zero values mean "untraced" and are omitted from the
	// wire format, keeping the envelope backward compatible.
	TraceID        uint64                 `xml:"trace,attr,omitempty"`
	ParentSpan     uint64                 `xml:"span,attr,omitempty"`
	Create         *CreateRequest         `xml:"create-request"`
	Created        *CreateResponse        `xml:"create-response"`
	BatchCreate    *BatchCreateRequest    `xml:"batch-create-request"`
	BatchCreated   *BatchCreateResponse   `xml:"batch-create-response"`
	Query          *QueryRequest          `xml:"query-request"`
	Queried        *QueryResponse         `xml:"query-response"`
	Destroy        *DestroyRequest        `xml:"destroy-request"`
	Destroyed      *DestroyResponse       `xml:"destroy-response"`
	Estimate       *EstimateRequest       `xml:"estimate-request"`
	Bid            *EstimateResponse      `xml:"estimate-response"`
	ForwardCreate  *ForwardCreateRequest  `xml:"forward-create-request"`
	ForwardCreated *ForwardCreateResponse `xml:"forward-create-response"`
	Publish        *PublishRequest        `xml:"publish-request"`
	Published      *PublishResponse       `xml:"publish-response"`
	PublishImage   *PublishImageRequest   `xml:"publish-image-request"`
	ImagePublished *PublishImageResponse  `xml:"publish-image-response"`
	Lifecycle      *LifecycleRequest      `xml:"lifecycle-request"`
	Lifecycled     *LifecycleResponse     `xml:"lifecycle-response"`
	List           *ListRequest           `xml:"list-request"`
	Listed         *ListResponse          `xml:"list-response"`
	Ping           *PingRequest           `xml:"ping-request"`
	Pong           *PingResponse          `xml:"ping-response"`
	Err            *ErrorResponse         `xml:"error"`
}

// CreateRequest asks for a new VM built to a specification. VMID is
// empty on the client→shop leg; the shop mints it and sets it on the
// shop→plant leg.
type CreateRequest struct {
	VMID string `xml:"vmid,omitempty"`
	// RequestID is the client's idempotency token (core.Spec.RequestID):
	// a shop that journaled a committed creation under this token answers
	// a retransmission with the original VMID instead of building twice.
	RequestID string `xml:"request-id,omitempty"`
	Name      string `xml:"name"`
	Arch      string `xml:"hardware>arch"`
	MemoryMB  int    `xml:"hardware>memoryMB"`
	DiskMB    int    `xml:"hardware>diskMB"`
	Domain    string `xml:"network>domain"`
	ProxyAddr string `xml:"network>proxy,omitempty"`
	Token     string `xml:"network>token,omitempty"`
	// Origin names the shop cell that re-auctioned this request across
	// the federation (empty on client-originated requests). A shop never
	// forwards a request that already carries an origin.
	Origin  string     `xml:"origin,omitempty"`
	Backend string     `xml:"backend,omitempty"`
	Reqs    string     `xml:"requirements,omitempty"`
	Graph   *dag.Graph `xml:"dag"`
}

// Spec converts the wire request to the domain type, validating it.
func (r *CreateRequest) Spec() (*core.Spec, error) {
	s := &core.Spec{
		Name:         r.Name,
		Hardware:     core.HardwareSpec{Arch: r.Arch, MemoryMB: r.MemoryMB, DiskMB: r.DiskMB},
		Domain:       r.Domain,
		ProxyAddr:    r.ProxyAddr,
		Backend:      r.Backend,
		Requirements: r.Reqs,
		RequestID:    r.RequestID,
		Origin:       r.Origin,
		Graph:        r.Graph,
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return s, nil
}

// FromSpec builds the wire request from the domain type.
func FromSpec(s *core.Spec, token string) *CreateRequest {
	return &CreateRequest{
		RequestID: s.RequestID,
		Name:      s.Name,
		Arch:      s.Hardware.Arch,
		MemoryMB:  s.Hardware.MemoryMB,
		DiskMB:    s.Hardware.DiskMB,
		Domain:    s.Domain,
		ProxyAddr: s.ProxyAddr,
		Token:     token,
		Origin:    s.Origin,
		Backend:   s.Backend,
		Reqs:      s.Requirements,
		Graph:     s.Graph,
	}
}

// CreateResponse returns the new VM's classad (paper §3.1: "the client
// obtains in return a classad").
type CreateResponse struct {
	VMID string      `xml:"vmid"`
	Ad   *classad.Ad `xml:"classad"`
}

// BatchCreateRequest submits a batch of creation requests in one call;
// the shop drives them through its concurrent pipeline and answers when
// every request has an outcome. Not idempotent — like create-request,
// it is never retransmitted.
type BatchCreateRequest struct {
	Items []CreateRequest `xml:"items>create-request"`
}

// BatchCreateItem is one request's outcome within a batch: either a
// VMID with its classad, or an error string.
type BatchCreateItem struct {
	VMID string      `xml:"vmid,omitempty"`
	Ad   *classad.Ad `xml:"classad,omitempty"`
	Err  string      `xml:"error,omitempty"`
}

// BatchCreateResponse returns per-request outcomes in request order.
type BatchCreateResponse struct {
	Items []BatchCreateItem `xml:"items>item"`
}

// QueryRequest asks for an active VM's classad.
type QueryRequest struct {
	VMID string `xml:"vmid"`
}

// QueryResponse carries the classad, or Found=false.
type QueryResponse struct {
	VMID  string      `xml:"vmid"`
	Found bool        `xml:"found"`
	Ad    *classad.Ad `xml:"classad"`
}

// DestroyRequest collects an active VM.
type DestroyRequest struct {
	VMID string `xml:"vmid"`
}

// DestroyResponse acknowledges collection.
type DestroyResponse struct {
	VMID      string `xml:"vmid"`
	Destroyed bool   `xml:"destroyed"`
}

// EstimateRequest asks a plant to bid on a creation (shop→plant only).
type EstimateRequest struct {
	Create *CreateRequest `xml:"create-request"`
}

// EstimateResponse is a plant's bid. Cost < 0 means the plant cannot
// satisfy the request.
type EstimateResponse struct {
	Plant string      `xml:"plant"`
	Cost  float64     `xml:"cost"`
	Ad    *classad.Ad `xml:"classad"` // the plant's resource classad
}

// ForwardCreateRequest re-auctions a creation from one shop cell to a
// peer shop (hierarchical bidding). The embedded create-request carries
// the forwarding token as its RequestID — a deterministic function of
// the origin cell's intent, so a cross-cell retransmission after a
// timeout or crash dedupes against the peer's journal instead of
// building a second VM. Safe to retransmit for exactly that reason.
type ForwardCreateRequest struct {
	// Origin names the forwarding cell (also stamped on the embedded
	// request's origin field); peers refuse to forward further.
	Origin string         `xml:"origin"`
	Create *CreateRequest `xml:"create-request,omitempty"`
	// Probe, when true, turns the request into a non-creating lookup of
	// Token against the peer's dedupe journal (Create is omitted): the
	// origin's restart reconciliation asking "did my forward land?"
	// without risking a duplicate VM.
	Probe bool   `xml:"probe,omitempty"`
	Token string `xml:"token,omitempty"`
}

// ForwardCreateResponse returns the peer-minted VMID and classad of a
// creation served on behalf of another cell. For probes, Found reports
// whether the peer committed a creation under the token (false is
// authoritative: no VM exists there) and Ad is omitted.
type ForwardCreateResponse struct {
	VMID  string      `xml:"vmid"`
	Ad    *classad.Ad `xml:"classad,omitempty"`
	Found bool        `xml:"found,omitempty"`
}

// PublishRequest checkpoints an active VM and publishes it to the VM
// Warehouse as a new golden image (paper §3.2 installer workflow).
type PublishRequest struct {
	VMID  string `xml:"vmid"`
	Image string `xml:"image"`
}

// PublishResponse acknowledges publication.
type PublishResponse struct {
	VMID  string `xml:"vmid"`
	Image string `xml:"image"`
}

// PublishImageRequest pushes a derived golden image from a plant to
// the warehouse host (the learning loop's publish-back over the wire):
// the image travels as its golden-machine descriptor XML plus the name
// of the seed image whose disk extents the checkpoint shares. Not
// idempotent — never retransmitted.
type PublishImageRequest struct {
	Image      string `xml:"image"`
	Parent     string `xml:"parent"`
	Descriptor string `xml:"descriptor"` // golden-machine descriptor XML
}

// PublishImageResponse reports the publication outcome. A refused
// publication (duplicate name, budget full of referenced images) is
// Accepted=false with a Reason, not a protocol error: the sender just
// drops its checkpoint.
type PublishImageResponse struct {
	Image    string `xml:"image"`
	Accepted bool   `xml:"accepted"`
	Reason   string `xml:"reason,omitempty"`
}

// Lifecycle operations.
const (
	LifecycleSuspend = "suspend"
	LifecycleResume  = "resume"
)

// LifecycleRequest suspends or resumes an active VM (In-VIGO parks idle
// virtual workspaces and resumes them on access).
type LifecycleRequest struct {
	VMID string `xml:"vmid"`
	Op   string `xml:"op"` // LifecycleSuspend or LifecycleResume
}

// LifecycleResponse acknowledges a lifecycle transition.
type LifecycleResponse struct {
	VMID  string `xml:"vmid"`
	State string `xml:"state"`
}

// ListRequest asks a plant for its VM inventory — the shop's recovery
// sweep rebuilds routing soft state from the answers.
type ListRequest struct{}

// ListResponse enumerates the plant's active VMs.
type ListResponse struct {
	Plant string   `xml:"plant"`
	VMIDs []string `xml:"vmids>vmid"`
}

// PingRequest is a liveness probe: the cheapest idempotent request,
// used by retry probes and circuit-breaker half-open checks.
type PingRequest struct{}

// PingResponse acknowledges liveness.
type PingResponse struct {
	Service string `xml:"service"`
}

// ErrorResponse reports a failed request.
type ErrorResponse struct {
	Code   string `xml:"code"`
	Detail string `xml:"detail"`
}

// Error codes.
const (
	CodeBadRequest  = "bad-request"
	CodeNoResources = "no-resources"
	CodeNotFound    = "not-found"
	CodeInternal    = "internal"
	CodeUnavailable = "unavailable"
)

// Errorf builds an error envelope.
func Errorf(seq uint64, code, format string, args ...any) *Message {
	return &Message{Kind: KindError, Seq: seq, Err: &ErrorResponse{Code: code, Detail: fmt.Sprintf(format, args...)}}
}

// validateEnvelope checks the Kind matches the populated body.
func (m *Message) validateEnvelope() error {
	bodies := map[Kind]bool{
		KindCreateRequest:         m.Create != nil,
		KindCreateResponse:        m.Created != nil,
		KindBatchCreateRequest:    m.BatchCreate != nil,
		KindBatchCreateResponse:   m.BatchCreated != nil,
		KindQueryRequest:          m.Query != nil,
		KindQueryResponse:         m.Queried != nil,
		KindDestroyRequest:        m.Destroy != nil,
		KindDestroyResponse:       m.Destroyed != nil,
		KindEstimateRequest:       m.Estimate != nil,
		KindEstimateResponse:      m.Bid != nil,
		KindForwardCreateRequest:  m.ForwardCreate != nil,
		KindForwardCreateResponse: m.ForwardCreated != nil,
		KindPublishRequest:        m.Publish != nil,
		KindPublishResponse:       m.Published != nil,
		KindPublishImageRequest:   m.PublishImage != nil,
		KindPublishImageResponse:  m.ImagePublished != nil,
		KindLifecycleRequest:      m.Lifecycle != nil,
		KindLifecycleResponse:     m.Lifecycled != nil,
		KindListRequest:           m.List != nil,
		KindListResponse:          m.Listed != nil,
		KindPingRequest:           m.Ping != nil,
		KindPingResponse:          m.Pong != nil,
		KindError:                 m.Err != nil,
	}
	present, known := bodies[m.Kind]
	if !known {
		return fmt.Errorf("proto: unknown message kind %q", m.Kind)
	}
	if !present {
		return fmt.Errorf("proto: message kind %q without matching body", m.Kind)
	}
	n := 0
	for _, p := range bodies {
		if p {
			n++
		}
	}
	if n != 1 {
		return fmt.Errorf("proto: message carries %d bodies, want exactly 1", n)
	}
	return nil
}

// Marshal serializes a message to its XML document bytes.
func Marshal(m *Message) ([]byte, error) {
	if err := m.validateEnvelope(); err != nil {
		return nil, err
	}
	return xml.Marshal(m)
}

// Unmarshal parses and validates a message document.
func Unmarshal(blob []byte) (*Message, error) {
	var m Message
	if err := xml.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("proto: %w", err)
	}
	if err := m.validateEnvelope(); err != nil {
		return nil, err
	}
	return &m, nil
}

// WriteMessage frames and writes one message.
func WriteMessage(w io.Writer, m *Message) error {
	blob, err := Marshal(m)
	if err != nil {
		return err
	}
	if len(blob) > MaxMessageSize {
		return fmt.Errorf("proto: message of %d bytes exceeds limit", len(blob))
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(blob)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(blob)
	return err
}

// ReadMessage reads one framed message.
func ReadMessage(r io.Reader) (*Message, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxMessageSize {
		return nil, fmt.Errorf("proto: frame of %d bytes exceeds limit", n)
	}
	blob := make([]byte, n)
	if _, err := io.ReadFull(r, blob); err != nil {
		return nil, fmt.Errorf("proto: truncated frame: %w", err)
	}
	return Unmarshal(blob)
}
