package proto

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"vmplants/internal/actions"
	"vmplants/internal/classad"
	"vmplants/internal/dag"
)

func sampleGraph(t testing.TB) *dag.Graph {
	t.Helper()
	g, err := dag.NewBuilder().
		Add("A", dag.Action{Op: actions.OpInstallOS, Params: map[string]string{"distro": "redhat-8.0"}}).
		Add("B", dag.Action{Op: actions.OpCreateUser, Params: map[string]string{"name": "ivan"}}, "A").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sampleCreate(t testing.TB) *Message {
	return &Message{
		Kind: KindCreateRequest,
		Seq:  7,
		Create: &CreateRequest{
			Name:      "workspace-1",
			Arch:      "x86",
			MemoryMB:  64,
			DiskMB:    4096,
			Domain:    "ufl.edu",
			ProxyAddr: "proxy.ufl.edu:9000",
			Token:     "secret",
			Backend:   "vmware",
			Graph:     sampleGraph(t),
		},
	}
}

func TestCreateRequestRoundTrip(t *testing.T) {
	blob, err := Marshal(sampleCreate(t))
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(blob)
	if err != nil {
		t.Fatalf("unmarshal: %v\n%s", err, blob)
	}
	if m.Kind != KindCreateRequest || m.Seq != 7 {
		t.Errorf("envelope = %+v", m)
	}
	spec, err := m.Create.Spec()
	if err != nil {
		t.Fatal(err)
	}
	if spec.Name != "workspace-1" || spec.Hardware.MemoryMB != 64 || spec.Domain != "ufl.edu" {
		t.Errorf("spec = %+v", spec)
	}
	if spec.Graph.Len() != 2 || !spec.Graph.Before("A", "B") {
		t.Errorf("graph lost: %s", spec.Graph)
	}
}

func TestSpecValidation(t *testing.T) {
	m := sampleCreate(t)
	m.Create.MemoryMB = 0
	if _, err := m.Create.Spec(); err == nil {
		t.Error("zero memory accepted")
	}
	m = sampleCreate(t)
	m.Create.Graph = nil
	if _, err := m.Create.Spec(); err == nil {
		t.Error("missing DAG accepted")
	}
}

func TestCreateResponseCarriesClassad(t *testing.T) {
	ad := classad.New().SetString("VMID", "vm-shop-1").SetInt("MemoryMB", 64)
	m := &Message{Kind: KindCreateResponse, Seq: 7, Created: &CreateResponse{VMID: "vm-shop-1", Ad: ad}}
	blob, err := Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	back, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Created.Ad.GetString("VMID", "") != "vm-shop-1" {
		t.Errorf("classad lost: %s", back.Created.Ad)
	}
}

func TestEnvelopeValidation(t *testing.T) {
	// Kind without body.
	if _, err := Marshal(&Message{Kind: KindQueryRequest}); err == nil {
		t.Error("kind without body accepted")
	}
	// Body without matching kind.
	if _, err := Marshal(&Message{Kind: KindQueryRequest, Destroy: &DestroyRequest{VMID: "x"}}); err == nil {
		t.Error("mismatched body accepted")
	}
	// Two bodies.
	m := &Message{Kind: KindQueryRequest, Query: &QueryRequest{VMID: "x"}, Destroy: &DestroyRequest{VMID: "x"}}
	if _, err := Marshal(m); err == nil {
		t.Error("two bodies accepted")
	}
	// Unknown kind.
	if _, err := Marshal(&Message{Kind: "mystery"}); err == nil {
		t.Error("unknown kind accepted")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	if _, err := Unmarshal([]byte("not xml at all <<<")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestFramingRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	msgs := []*Message{
		sampleCreate(t),
		{Kind: KindQueryRequest, Seq: 1, Query: &QueryRequest{VMID: "vm-1"}},
		{Kind: KindDestroyRequest, Seq: 2, Destroy: &DestroyRequest{VMID: "vm-1"}},
		Errorf(3, CodeNotFound, "no such VM %q", "vm-9"),
	}
	for _, m := range msgs {
		if err := WriteMessage(&buf, m); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range msgs {
		got, err := ReadMessage(&buf)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if got.Kind != want.Kind || got.Seq != want.Seq {
			t.Errorf("message %d: %+v", i, got)
		}
	}
	if _, err := ReadMessage(&buf); err == nil {
		t.Error("read past end succeeded")
	}
}

func TestFramingRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	if _, err := ReadMessage(&buf); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversize frame: %v", err)
	}
}

func TestFramingTruncation(t *testing.T) {
	var buf bytes.Buffer
	WriteMessage(&buf, &Message{Kind: KindQueryRequest, Query: &QueryRequest{VMID: "x"}})
	blob := buf.Bytes()
	for cut := 1; cut < len(blob); cut += 3 {
		if _, err := ReadMessage(bytes.NewReader(blob[:cut])); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
}

func TestOverRealTCP(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	done := make(chan *Message, 1)
	go func() {
		conn, err := l.Accept()
		if err != nil {
			done <- nil
			return
		}
		defer conn.Close()
		m, err := ReadMessage(conn)
		if err != nil {
			done <- nil
			return
		}
		WriteMessage(conn, &Message{Kind: KindEstimateResponse, Seq: m.Seq, Bid: &EstimateResponse{Plant: "node00", Cost: 50}})
		done <- m
	}()
	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	req := &Message{Kind: KindEstimateRequest, Seq: 42, Estimate: &EstimateRequest{Create: sampleCreate(t).Create}}
	if err := WriteMessage(conn, req); err != nil {
		t.Fatal(err)
	}
	resp, err := ReadMessage(conn)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != KindEstimateResponse || resp.Bid.Cost != 50 || resp.Seq != 42 {
		t.Errorf("response = %+v", resp)
	}
	got := <-done
	if got == nil || got.Estimate.Create.Name != "workspace-1" {
		t.Error("server did not receive the request intact")
	}
}

func TestFromSpecInverse(t *testing.T) {
	m := sampleCreate(t)
	spec, err := m.Create.Spec()
	if err != nil {
		t.Fatal(err)
	}
	back := FromSpec(spec, "secret")
	if back.Name != m.Create.Name || back.Domain != m.Create.Domain || back.Token != "secret" {
		t.Errorf("FromSpec = %+v", back)
	}
}

func TestClientConcurrentCalls(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, func(req *Message) *Message {
		return &Message{Kind: KindQueryResponse,
			Queried: &QueryResponse{VMID: req.Query.VMID, Found: true}}
	})
	c, err := Dial(l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			id := fmt.Sprintf("vm-%d", i)
			resp, err := c.Call(&Message{Kind: KindQueryRequest, Query: &QueryRequest{VMID: id}})
			if err != nil {
				errs <- err
				return
			}
			if resp.Queried.VMID != id {
				errs <- fmt.Errorf("response for %q, want %q", resp.Queried.VMID, id)
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

func TestServeConnSurvivesHandlerPanic(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go Serve(l, func(req *Message) *Message {
		if req.Query.VMID == "boom" {
			panic("handler exploded")
		}
		return &Message{Kind: KindQueryResponse, Queried: &QueryResponse{VMID: req.Query.VMID, Found: true}}
	})
	c, err := Dial(l.Addr().String(), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// The panicking request yields an error response...
	if _, err := c.Call(&Message{Kind: KindQueryRequest, Query: &QueryRequest{VMID: "boom"}}); err == nil {
		t.Error("panicking handler returned success")
	}
	// ... and the connection keeps serving.
	resp, err := c.Call(&Message{Kind: KindQueryRequest, Query: &QueryRequest{VMID: "ok"}})
	if err != nil || !resp.Queried.Found {
		t.Errorf("connection dead after panic: %v", err)
	}
}
