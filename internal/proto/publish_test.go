package proto

import (
	"strings"
	"testing"
)

func TestPublishImageRoundTrip(t *testing.T) {
	in := &Message{
		Kind: KindPublishImageRequest,
		Seq:  4,
		PublishImage: &PublishImageRequest{
			Image:      "derived-vmware-0123456789ab",
			Parent:     "invigo-vmware-64mb",
			Descriptor: `<golden-machine name="derived-vmware-0123456789ab" backend="vmware"></golden-machine>`,
		},
	}
	blob, err := Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	m, err := Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if m.Kind != KindPublishImageRequest || m.Seq != 4 {
		t.Fatalf("envelope = %s seq %d", m.Kind, m.Seq)
	}
	if m.PublishImage.Image != in.PublishImage.Image ||
		m.PublishImage.Parent != in.PublishImage.Parent ||
		!strings.Contains(m.PublishImage.Descriptor, "golden-machine") {
		t.Errorf("body = %+v", m.PublishImage)
	}

	out := &Message{
		Kind: KindPublishImageResponse,
		Seq:  4,
		ImagePublished: &PublishImageResponse{
			Image:    "derived-vmware-0123456789ab",
			Accepted: false,
			Reason:   "every derived image is referenced",
		},
	}
	blob, err = Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	m, err = Unmarshal(blob)
	if err != nil {
		t.Fatal(err)
	}
	if m.ImagePublished.Accepted || m.ImagePublished.Reason == "" {
		t.Errorf("response = %+v", m.ImagePublished)
	}
}

func TestPublishImageEnvelopeValidation(t *testing.T) {
	if _, err := Marshal(&Message{Kind: KindPublishImageRequest}); err == nil {
		t.Error("marshal of empty publish-image envelope succeeded")
	}
	m := &Message{Kind: KindCreateRequest, PublishImage: &PublishImageRequest{Image: "x"}}
	if _, err := Marshal(m); err == nil {
		t.Error("publish-image body under create-request kind accepted")
	}
}

// Publishing mutates warehouse state, so a timed-out publish must never
// be retransmitted: the first attempt may have landed.
func TestPublishImageIsNotIdempotent(t *testing.T) {
	if idempotentKinds[KindPublishImageRequest] {
		t.Error("publish-image-request marked idempotent")
	}
	if idempotentKinds[KindPublishImageResponse] {
		t.Error("publish-image-response marked idempotent")
	}
}
