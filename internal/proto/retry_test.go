package proto

import (
	"errors"
	"net"
	"sync/atomic"
	"testing"
	"time"

	"vmplants/internal/telemetry"
)

// flakyServer answers ping requests, but each connection's first
// failRemaining requests are killed at the transport (connection
// closed mid-exchange), forcing the client to redial and retry.
func flakyServer(t *testing.T, failTotal int64) (net.Listener, *int64) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	var remaining = failTotal
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					req, err := ReadMessage(conn)
					if err != nil {
						return
					}
					if atomic.AddInt64(&remaining, -1) >= 0 {
						return // drop the connection instead of answering
					}
					WriteMessage(conn, &Message{Kind: KindPingResponse, Seq: req.Seq, Pong: &PingResponse{Service: "plant"}})
				}
			}(conn)
		}
	}()
	return l, &remaining
}

func ping() *Message { return &Message{Kind: KindPingRequest, Ping: &PingRequest{}} }

func TestRetryRecoversFromTransportFailure(t *testing.T) {
	l, _ := flakyServer(t, 2)
	c, err := Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Retry = RetryPolicy{Attempts: 4, BaseBackoff: time.Millisecond}
	hub := telemetry.New()
	c.SetTelemetry(hub)
	resp, err := c.Call(ping())
	if err != nil {
		t.Fatalf("call with retry: %v", err)
	}
	if resp.Pong == nil || resp.Pong.Service != "plant" {
		t.Fatalf("resp = %+v", resp)
	}
	if got := hub.Counter("proto.rpc_retries").Value(); got != 2 {
		t.Errorf("rpc_retries = %d, want 2", got)
	}
}

func TestRetryGivesUpAfterAttempts(t *testing.T) {
	l, _ := flakyServer(t, 1000)
	c, err := Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Retry = RetryPolicy{Attempts: 3, BaseBackoff: time.Millisecond}
	var pauses int
	c.SetSleepFunc(func(time.Duration) { pauses++ })
	if _, err := c.Call(ping()); err == nil {
		t.Fatal("call succeeded against a dead server")
	}
	if pauses != 2 {
		t.Errorf("%d pauses for 3 attempts, want 2", pauses)
	}
}

func TestNonIdempotentRequestsNeverRetried(t *testing.T) {
	l, _ := flakyServer(t, 1000)
	c, err := Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Retry = RetryPolicy{Attempts: 5, BaseBackoff: time.Millisecond}
	var pauses int
	c.SetSleepFunc(func(time.Duration) { pauses++ })
	_, err = c.Call(&Message{Kind: KindDestroyRequest, Destroy: &DestroyRequest{VMID: "vm-1"}})
	if err == nil {
		t.Fatal("destroy succeeded against a dead server")
	}
	if pauses != 0 {
		t.Errorf("non-idempotent request was retried %d times", pauses)
	}
}

func TestRemoteErrorsNeverRetried(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	var served int64
	go Serve(l, func(req *Message) *Message {
		atomic.AddInt64(&served, 1)
		return Errorf(req.Seq, CodeNotFound, "no such VM")
	})
	c, err := Dial(l.Addr().String(), time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Retry = RetryPolicy{Attempts: 5, BaseBackoff: time.Millisecond}
	_, err = c.Call(&Message{Kind: KindQueryRequest, Query: &QueryRequest{VMID: "vm-x"}})
	if err == nil {
		t.Fatal("expected remote error")
	}
	var remote *RemoteError
	if !errors.As(err, &remote) || remote.Code != CodeNotFound {
		t.Fatalf("err = %v, want RemoteError %s", err, CodeNotFound)
	}
	if got := atomic.LoadInt64(&served); got != 1 {
		t.Errorf("delivered-and-answered request retried: served %d times", got)
	}
}

func TestBackoffScheduleDoublesToCap(t *testing.T) {
	rp := RetryPolicy{Attempts: 6, BaseBackoff: 50 * time.Millisecond, MaxBackoff: 300 * time.Millisecond}
	want := []time.Duration{
		50 * time.Millisecond,
		100 * time.Millisecond,
		200 * time.Millisecond,
		300 * time.Millisecond,
		300 * time.Millisecond,
	}
	for i, w := range want {
		if got := rp.backoffFor(i+1, nil); got != w {
			t.Errorf("backoffFor(%d) = %s, want %s", i+1, got, w)
		}
	}
}

func TestBackoffJitterDeterministicPerSeed(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		l, _ := flakyServer(t, 1000)
		c, err := Dial(l.Addr().String(), time.Second)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		c.Retry = RetryPolicy{Attempts: 4, BaseBackoff: 80 * time.Millisecond, Jitter: 0.5, Seed: seed}
		var out []time.Duration
		c.SetSleepFunc(func(d time.Duration) { out = append(out, d) })
		c.Call(ping())
		return out
	}
	a, b := schedule(9), schedule(9)
	if len(a) != 3 {
		t.Fatalf("%d pauses, want 3", len(a))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at pause %d: %s vs %s", i, a[i], b[i])
		}
		base := 80 * time.Millisecond << i
		if a[i] == base {
			t.Errorf("pause %d = exactly %s; jitter not applied", i, base)
		}
	}
	if c := schedule(10); c[0] == a[0] && c[1] == a[1] && c[2] == a[2] {
		t.Error("different seeds produced identical jitter")
	}
}

// Satellite regression: resetting Timeout to 0 must clear the deadline
// a previous Timeout>0 call set, or a later slow-but-healthy exchange
// fails on the stale deadline.
func TestTimeoutResetClearsStaleDeadline(t *testing.T) {
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	var nth int64
	go Serve(l, func(req *Message) *Message {
		if atomic.AddInt64(&nth, 1) > 1 {
			// Slower than the first call's deadline, which — unless
			// cleared — is still armed on the shared connection.
			time.Sleep(150 * time.Millisecond)
		}
		return &Message{Kind: KindPingResponse, Pong: &PingResponse{Service: "plant"}}
	})
	c, err := Dial(l.Addr().String(), 50*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call(ping()); err != nil {
		t.Fatalf("fast first call: %v", err)
	}
	c.Timeout = 0
	if _, err := c.Call(ping()); err != nil {
		t.Fatalf("call with Timeout reset to 0 failed on a stale deadline: %v", err)
	}
}
