package proto

import (
	"fmt"
	"net"
	"sync"
	"time"

	"vmplants/internal/telemetry"
)

// Client is a request/response connection to a VMPlants service. It is
// safe for concurrent use; requests are serialized on the stream and
// correlated by sequence number.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	addr string // remote address, for error attribution
	seq  uint64
	// Timeout bounds each round trip (0 = no deadline).
	Timeout time.Duration

	// Telemetry instruments (nil-safe no-ops when unset).
	mCalls  *telemetry.Counter
	mErrors *telemetry.Counter
	hSecs   *telemetry.Histogram
}

// Dial connects to a service endpoint.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("proto: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, addr: addr, Timeout: timeout}, nil
}

// NewClient wraps an existing connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn}
	if ra := conn.RemoteAddr(); ra != nil {
		c.addr = ra.String()
	}
	return c
}

// SetTelemetry wires the client's RPC instruments: call and error
// counters ("proto.rpc_calls", "proto.rpc_errors") and the wall-clock
// round-trip histogram ("proto.rpc_secs"). Passing nil detaches them.
func (c *Client) SetTelemetry(h *telemetry.Hub) {
	c.mCalls = h.Counter("proto.rpc_calls")
	c.mErrors = h.Counter("proto.rpc_errors")
	c.hSecs = h.Histogram("proto.rpc_secs")
}

// RemoteAddr reports the peer's address ("" when unknown).
func (c *Client) RemoteAddr() string { return c.addr }

// Call sends m (stamping its Seq) and returns the response. A response
// whose Seq does not match is a protocol error. Errors carry the method
// (message kind) and remote address, so a failed RPC is attributable
// from the error text alone.
func (c *Client) Call(m *Message) (*Message, error) {
	resp, err := c.call(m)
	if err != nil {
		c.mErrors.Inc()
		return nil, fmt.Errorf("proto: rpc %s to %s: %w", m.Kind, c.addrLabel(), err)
	}
	return resp, nil
}

func (c *Client) addrLabel() string {
	if c.addr == "" {
		return "<unknown>"
	}
	return c.addr
}

func (c *Client) call(m *Message) (*Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	defer func() {
		c.mCalls.Inc()
		c.hSecs.Observe(time.Since(start).Seconds())
	}()
	c.seq++
	m.Seq = c.seq
	if c.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.Timeout))
	}
	if err := WriteMessage(c.conn, m); err != nil {
		return nil, err
	}
	resp, err := ReadMessage(c.conn)
	if err != nil {
		return nil, err
	}
	if resp.Seq != m.Seq {
		return nil, fmt.Errorf("response seq %d for request %d", resp.Seq, m.Seq)
	}
	if resp.Kind == KindError {
		return nil, fmt.Errorf("remote error %s: %s", resp.Err.Code, resp.Err.Detail)
	}
	return resp, nil
}

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Handler processes one request message and returns the response. The
// returned message's Seq is overwritten with the request's.
type Handler func(*Message) *Message

// Serve accepts connections on l until it is closed, running each
// connection's request loop in its own goroutine.
func Serve(l net.Listener, h Handler) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go ServeConn(conn, h)
	}
}

// ServeConn runs the request loop for one connection.
func ServeConn(conn net.Conn, h Handler) {
	defer conn.Close()
	for {
		req, err := ReadMessage(conn)
		if err != nil {
			return
		}
		resp := safeHandle(h, req)
		if resp == nil {
			resp = Errorf(req.Seq, CodeInternal, "handler returned no response")
		}
		resp.Seq = req.Seq
		if err := WriteMessage(conn, resp); err != nil {
			return
		}
	}
}

// safeHandle isolates handler panics into error responses so one bad
// request cannot kill the connection loop silently.
func safeHandle(h Handler, req *Message) (resp *Message) {
	defer func() {
		if r := recover(); r != nil {
			resp = Errorf(req.Seq, CodeInternal, "panic: %v", r)
		}
	}()
	return h(req)
}
