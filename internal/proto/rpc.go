package proto

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"vmplants/internal/telemetry"
)

// RemoteError is a decoded error response from the peer. The request
// was delivered and answered — the failure is the answer — so the
// retry machinery never retries one.
type RemoteError struct {
	Code   string
	Detail string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote error %s: %s", e.Code, e.Detail)
}

// RetryPolicy bounds retransmission of idempotent requests
// (query/estimate/list/ping) after transport failures: exponential
// backoff from BaseBackoff doubling up to MaxBackoff, with a
// deterministic jitter stream seeded by Seed so identically configured
// clients replay identical schedules.
type RetryPolicy struct {
	// Attempts is the total number of tries (first call included);
	// 0 or 1 disables retry.
	Attempts int
	// BaseBackoff is the pause before the first retry; it doubles per
	// retry up to MaxBackoff (0 = no cap).
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// Jitter is the fraction of each backoff randomized, in [0, 1]: the
	// pause becomes backoff * (1 ± Jitter*u) for uniform u.
	Jitter float64
	// Seed drives the jitter stream.
	Seed int64
}

// backoffFor computes the pause before retry number retry (1-based).
func (rp RetryPolicy) backoffFor(retry int, rng *rand.Rand) time.Duration {
	d := rp.BaseBackoff
	for i := 1; i < retry; i++ {
		d *= 2
		if rp.MaxBackoff > 0 && d >= rp.MaxBackoff {
			d = rp.MaxBackoff
			break
		}
	}
	if rp.MaxBackoff > 0 && d > rp.MaxBackoff {
		d = rp.MaxBackoff
	}
	if rp.Jitter > 0 && d > 0 && rng != nil {
		d += time.Duration(float64(d) * rp.Jitter * (2*rng.Float64() - 1))
	}
	if d < 0 {
		d = 0
	}
	return d
}

// Client is a request/response connection to a VMPlants service. It is
// safe for concurrent use; requests are serialized on the stream and
// correlated by sequence number.
type Client struct {
	mu   sync.Mutex
	conn net.Conn
	addr string // remote address, for error attribution
	seq  uint64
	// Timeout bounds each round trip (0 = no deadline).
	Timeout time.Duration
	// Retry bounds retransmission of idempotent requests after
	// transport failures; the zero value disables retry.
	Retry RetryPolicy

	retryRNG *rand.Rand // lazily seeded from Retry.Seed, under mu
	// redial re-establishes the connection between attempts; set by
	// Dial. nil retries on the existing connection.
	redial func() (net.Conn, error)
	// sleepFn pauses between attempts; time.Sleep unless a test
	// substitutes one.
	sleepFn func(time.Duration)

	// Telemetry instruments (nil-safe no-ops when unset).
	mCalls   *telemetry.Counter
	mErrors  *telemetry.Counter
	mRetries *telemetry.Counter
	hSecs    *telemetry.Histogram
	tracer   *telemetry.Tracer
}

// Dial connects to a service endpoint.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	d := net.Dialer{Timeout: timeout}
	conn, err := d.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("proto: dial %s: %w", addr, err)
	}
	c := &Client{conn: conn, addr: addr, Timeout: timeout}
	c.redial = func() (net.Conn, error) { return d.Dial("tcp", addr) }
	return c, nil
}

// NewClient wraps an existing connection.
func NewClient(conn net.Conn) *Client {
	c := &Client{conn: conn}
	if ra := conn.RemoteAddr(); ra != nil {
		c.addr = ra.String()
	}
	return c
}

// SetTelemetry wires the client's RPC instruments: call and error
// counters ("proto.rpc_calls", "proto.rpc_errors"), the wall-clock
// round-trip histogram ("proto.rpc_secs"), and the tracer per-call
// "rpc.<kind>" spans (with one "rpc.attempt" child per try) are
// recorded into. Passing nil detaches them.
func (c *Client) SetTelemetry(h *telemetry.Hub) {
	c.mCalls = h.Counter("proto.rpc_calls")
	c.mErrors = h.Counter("proto.rpc_errors")
	c.mRetries = h.Counter("proto.rpc_retries")
	c.hSecs = h.Histogram("proto.rpc_secs")
	c.tracer = h.T()
}

// RemoteAddr reports the peer's address ("" when unknown).
func (c *Client) RemoteAddr() string { return c.addr }

// Call sends m (stamping its Seq) and returns the response. A response
// whose Seq does not match is a protocol error. Errors carry the method
// (message kind) and remote address, so a failed RPC is attributable
// from the error text alone.
func (c *Client) Call(m *Message) (*Message, error) {
	resp, err := c.call(m)
	if err != nil {
		c.mErrors.Inc()
		return nil, fmt.Errorf("proto: rpc %s to %s: %w", m.Kind, c.addrLabel(), err)
	}
	return resp, nil
}

func (c *Client) addrLabel() string {
	if c.addr == "" {
		return "<unknown>"
	}
	return c.addr
}

func (c *Client) call(m *Message) (*Message, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	start := time.Now()
	defer func() {
		c.mCalls.Inc()
		c.hSecs.Observe(time.Since(start).Seconds())
	}()
	// The call span parents under the trace context stamped on the
	// envelope (if any), so a wall-clock RPC attaches to the virtual-time
	// creation tree that issued it. Guarded on the tracer so the
	// disabled path stays allocation-free.
	var sp *telemetry.Span
	if c.tracer != nil {
		sp = c.tracer.StartCtx(nil, "rpc."+string(m.Kind),
			telemetry.SpanContext{TraceID: m.TraceID, Span: m.ParentSpan}).
			Set("addr", c.addrLabel())
	}
	resp, err := c.tracedAttempt(sp, m, 1, 0, false)
	if err == nil || !c.shouldRetry(m.Kind, err) {
		sp.EndErr(nil, err)
		return resp, err
	}
	for retry := 1; retry < c.Retry.Attempts; retry++ {
		c.mRetries.Inc()
		backoff := c.Retry.backoffFor(retry, c.jitterRNG())
		c.pause(backoff)
		redialed := false
		if c.redial != nil {
			conn, derr := c.redial()
			if derr != nil {
				err = fmt.Errorf("redial: %w", derr)
				if sp != nil {
					sp.Child(nil, "rpc.attempt").
						SetInt("attempt", int64(retry+1)).
						Set("redial", "failed").
						EndErr(nil, err)
				}
				continue
			}
			c.conn.Close()
			c.conn = conn
			redialed = true
		}
		resp, err = c.tracedAttempt(sp, m, retry+1, backoff, redialed)
		if err == nil || !c.shouldRetry(m.Kind, err) {
			sp.EndErr(nil, err)
			return resp, err
		}
	}
	sp.EndErr(nil, err)
	return resp, err
}

// tracedAttempt runs one attempt under a per-attempt child span so a
// retried RPC decomposes into its tries — attempt number, the backoff
// that preceded it, and whether the connection was re-dialed — instead
// of reading as one opaque call.
func (c *Client) tracedAttempt(sp *telemetry.Span, m *Message, n int, backoff time.Duration, redialed bool) (*Message, error) {
	var at *telemetry.Span
	if sp != nil {
		at = sp.Child(nil, "rpc.attempt").SetInt("attempt", int64(n))
		if backoff > 0 {
			at.Set("backoff", backoff.String())
		}
		if redialed {
			at.Set("redial", "true")
		}
	}
	resp, err := c.attempt(m)
	at.EndErr(nil, err)
	return resp, err
}

// attempt performs one round trip under the client's lock. Each
// attempt is a fresh request with its own sequence number, so a reply
// to an abandoned earlier attempt can never be mistaken for the
// current one.
func (c *Client) attempt(m *Message) (*Message, error) {
	c.seq++
	m.Seq = c.seq
	if c.Timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.Timeout))
	} else {
		// Clear any deadline a previous Timeout>0 call left on the
		// connection; without this, resetting Timeout to 0 would leave
		// the stale deadline ticking and fail some later call.
		c.conn.SetDeadline(time.Time{})
	}
	if err := WriteMessage(c.conn, m); err != nil {
		return nil, err
	}
	resp, err := ReadMessage(c.conn)
	if err != nil {
		return nil, err
	}
	if resp.Seq != m.Seq {
		return nil, fmt.Errorf("response seq %d for request %d", resp.Seq, m.Seq)
	}
	if resp.Kind == KindError {
		return nil, &RemoteError{Code: resp.Err.Code, Detail: resp.Err.Detail}
	}
	return resp, nil
}

// idempotentKinds are the requests safe to retransmit: re-asking never
// changes service state. Create/destroy/publish/lifecycle are not —
// the first attempt may have been applied before its reply was lost.
// Forward-create is the exception among mutating kinds: its embedded
// RequestID is a deterministic forwarding token journaled by the peer
// shop, so a retransmission is answered from the peer's dedupe index
// rather than applied twice.
var idempotentKinds = map[Kind]bool{
	KindQueryRequest:         true,
	KindEstimateRequest:      true,
	KindListRequest:          true,
	KindPingRequest:          true,
	KindForwardCreateRequest: true,
}

// shouldRetry reports whether a failed attempt of the given kind is
// worth retransmitting under the client's policy.
func (c *Client) shouldRetry(kind Kind, err error) bool {
	if c.Retry.Attempts <= 1 || !idempotentKinds[kind] {
		return false
	}
	var remote *RemoteError
	return !errors.As(err, &remote)
}

func (c *Client) jitterRNG() *rand.Rand {
	if c.Retry.Jitter <= 0 {
		return nil
	}
	if c.retryRNG == nil {
		c.retryRNG = rand.New(rand.NewSource(c.Retry.Seed))
	}
	return c.retryRNG
}

func (c *Client) pause(d time.Duration) {
	if d <= 0 {
		return
	}
	if c.sleepFn != nil {
		c.sleepFn(d)
		return
	}
	time.Sleep(d)
}

// SetSleepFunc substitutes the pause between retry attempts — tests
// use it to record the backoff schedule instead of sleeping.
func (c *Client) SetSleepFunc(fn func(time.Duration)) { c.sleepFn = fn }

// SetRedialFunc substitutes how the client re-establishes its
// connection between retry attempts (nil keeps retrying on the current
// connection). Dial installs the real re-dialer.
func (c *Client) SetRedialFunc(fn func() (net.Conn, error)) { c.redial = fn }

// Close closes the underlying connection.
func (c *Client) Close() error { return c.conn.Close() }

// Handler processes one request message and returns the response. The
// returned message's Seq is overwritten with the request's.
type Handler func(*Message) *Message

// Serve accepts connections on l until it is closed, running each
// connection's request loop in its own goroutine.
func Serve(l net.Listener, h Handler) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go ServeConn(conn, h)
	}
}

// ServeConn runs the request loop for one connection.
func ServeConn(conn net.Conn, h Handler) {
	defer conn.Close()
	for {
		req, err := ReadMessage(conn)
		if err != nil {
			return
		}
		resp := safeHandle(h, req)
		if resp == nil {
			resp = Errorf(req.Seq, CodeInternal, "handler returned no response")
		}
		resp.Seq = req.Seq
		if err := WriteMessage(conn, resp); err != nil {
			return
		}
	}
}

// safeHandle isolates handler panics into error responses so one bad
// request cannot kill the connection loop silently.
func safeHandle(h Handler, req *Message) (resp *Message) {
	defer func() {
		if r := recover(); r != nil {
			resp = Errorf(req.Seq, CodeInternal, "panic: %v", r)
		}
	}()
	return h(req)
}
