package proto

import (
	"net"
	"strings"
	"testing"

	"vmplants/internal/telemetry"
)

// startErrServer serves a handler that answers every request with a
// NOT_FOUND error.
func startErrServer(t *testing.T) net.Listener {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go Serve(l, func(req *Message) *Message {
		return Errorf(req.Seq, CodeNotFound, "no such VM")
	})
	return l
}

// TestCallErrorsAreAttributable checks the S2 fix: an RPC error names
// the method (message kind) and the remote address.
func TestCallErrorsAreAttributable(t *testing.T) {
	l := startErrServer(t)
	c, err := Dial(l.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.RemoteAddr(); got != l.Addr().String() {
		t.Fatalf("RemoteAddr = %q, want %q", got, l.Addr().String())
	}
	_, err = c.Call(&Message{Kind: KindQueryRequest, Query: &QueryRequest{VMID: "vm-x"}})
	if err == nil {
		t.Fatal("expected error")
	}
	msg := err.Error()
	for _, want := range []string{string(KindQueryRequest), l.Addr().String(), string(CodeNotFound), "no such VM"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("error %q does not mention %q", msg, want)
		}
	}
}

// TestCallTelemetry checks the RPC client's instruments.
func TestCallTelemetry(t *testing.T) {
	l := startErrServer(t)
	c, err := Dial(l.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hub := telemetry.New()
	c.SetTelemetry(hub)
	for i := 0; i < 3; i++ {
		c.Call(&Message{Kind: KindQueryRequest, Query: &QueryRequest{VMID: "vm-x"}})
	}
	if got := hub.Metrics.Counter("proto.rpc_calls").Value(); got != 3 {
		t.Fatalf("proto.rpc_calls = %d, want 3", got)
	}
	if got := hub.Metrics.Counter("proto.rpc_errors").Value(); got != 3 {
		t.Fatalf("proto.rpc_errors = %d, want 3", got)
	}
	if got := hub.Metrics.Histogram("proto.rpc_secs").Count(); got != 3 {
		t.Fatalf("proto.rpc_secs count = %d, want 3", got)
	}
}
