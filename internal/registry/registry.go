// Package registry is the discovery substrate of the service
// architecture (paper §3, Figure 1): services publish bindings, clients
// discover them and bind. The paper delegates this to "standard
// mechanisms … (e.g. UDDI)" and scopes the underlying machinery out;
// this package provides the minimal equivalent the rest of the system
// needs — leased publish/discover/bind with explicit clock injection so
// it works identically under the simulation kernel and wall time.
package registry

import (
	"fmt"
	"sort"
	"sync"
	"time"
)

// Binding is one published service endpoint.
type Binding struct {
	// Service is the service type, e.g. "vmshop" or "vmplant".
	Service string
	// Name is the instance name, unique within a service.
	Name string
	// Addr is the endpoint description (host:port, or an in-process key).
	Addr string
	// Meta carries free-form attributes (site, architecture, …).
	Meta map[string]string
	// Expires is when the lease lapses (zero means no expiry).
	Expires time.Time
}

// Registry is a leased service directory, safe for concurrent use.
type Registry struct {
	// Now supplies the registry's notion of time; defaults to time.Now.
	// Simulations inject a virtual clock.
	Now func() time.Time

	mu       sync.Mutex
	bindings map[string]map[string]Binding // service → name → binding
}

// New returns an empty registry using wall time.
func New() *Registry {
	return &Registry{Now: time.Now, bindings: make(map[string]map[string]Binding)}
}

// Publish registers (or refreshes) a binding with the given lease
// duration; ttl <= 0 means the binding does not expire.
func (r *Registry) Publish(b Binding, ttl time.Duration) error {
	if b.Service == "" || b.Name == "" {
		return fmt.Errorf("registry: binding needs service and name, got %q/%q", b.Service, b.Name)
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if ttl > 0 {
		b.Expires = r.Now().Add(ttl)
	} else {
		b.Expires = time.Time{}
	}
	m := r.bindings[b.Service]
	if m == nil {
		m = make(map[string]Binding)
		r.bindings[b.Service] = m
	}
	m[b.Name] = b
	return nil
}

// Withdraw removes a binding; it reports whether it was present.
func (r *Registry) Withdraw(service, name string) bool {
	return r.Unpublish(service, name)
}

// Unpublish permanently removes a binding regardless of lease state —
// the drain/retire path: a plant leaving the fleet must disappear from
// discovery immediately, not linger until its lease lapses. It reports
// whether the binding was present.
func (r *Registry) Unpublish(service, name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	m := r.bindings[service]
	if _, ok := m[name]; !ok {
		return false
	}
	delete(m, name)
	if len(m) == 0 {
		delete(r.bindings, service)
	}
	return true
}

// live reports whether b's lease is current.
func (r *Registry) live(b Binding) bool {
	return b.Expires.IsZero() || r.Now().Before(b.Expires)
}

// Discover returns every live binding of a service, sorted by name.
// Expired bindings encountered during the scan are compacted away in
// place, so the directory does not grow without bound under plant
// churn even when nobody runs an explicit Sweep.
func (r *Registry) Discover(service string) []Binding {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []Binding
	m := r.bindings[service]
	for name, b := range m {
		if !r.live(b) {
			delete(m, name)
			continue
		}
		out = append(out, b)
	}
	if len(m) == 0 {
		delete(r.bindings, service)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Bind resolves one named instance. A lapsed binding is compacted away
// on the spot.
func (r *Registry) Bind(service, name string) (Binding, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	b, ok := r.bindings[service][name]
	if ok && !r.live(b) {
		delete(r.bindings[service], name)
		ok = false
	}
	if !ok {
		return Binding{}, fmt.Errorf("registry: no live binding %s/%s", service, name)
	}
	return b, nil
}

// Size reports how many bindings (live or lapsed) the registry holds —
// the compaction tests' window into map growth.
func (r *Registry) Size() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, m := range r.bindings {
		n += len(m)
	}
	return n
}

// Sweep drops expired bindings and returns how many were removed.
func (r *Registry) Sweep() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := 0
	for _, m := range r.bindings {
		for name, b := range m {
			if !r.live(b) {
				delete(m, name)
				n++
			}
		}
	}
	return n
}
