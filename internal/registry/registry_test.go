package registry

import (
	"vmplants/internal/sim"

	"testing"
	"time"
)

func TestPublishDiscoverBind(t *testing.T) {
	r := New()
	for _, name := range []string{"node02", "node00", "node01"} {
		if err := r.Publish(Binding{Service: "vmplant", Name: name, Addr: name + ":7001"}, 0); err != nil {
			t.Fatal(err)
		}
	}
	got := r.Discover("vmplant")
	if len(got) != 3 || got[0].Name != "node00" || got[2].Name != "node02" {
		t.Errorf("Discover = %+v", got)
	}
	b, err := r.Bind("vmplant", "node01")
	if err != nil || b.Addr != "node01:7001" {
		t.Errorf("Bind = %+v, %v", b, err)
	}
	if _, err := r.Bind("vmplant", "node09"); err == nil {
		t.Error("bind to unknown instance succeeded")
	}
	if len(r.Discover("vmshop")) != 0 {
		t.Error("unknown service discovered")
	}
}

func TestPublishValidation(t *testing.T) {
	r := New()
	if err := r.Publish(Binding{Service: "", Name: "x"}, 0); err == nil {
		t.Error("empty service accepted")
	}
	if err := r.Publish(Binding{Service: "s", Name: ""}, 0); err == nil {
		t.Error("empty name accepted")
	}
}

func TestLeaseExpiry(t *testing.T) {
	now := time.Unix(1000, 0)
	r := New()
	r.Now = func() time.Time { return now }
	r.Publish(Binding{Service: "vmplant", Name: "a", Addr: "a:1"}, 10*time.Second)
	r.Publish(Binding{Service: "vmplant", Name: "b", Addr: "b:1"}, 0) // immortal
	if len(r.Discover("vmplant")) != 2 {
		t.Fatal("fresh bindings not visible")
	}
	now = now.Add(11 * time.Second)
	got := r.Discover("vmplant")
	if len(got) != 1 || got[0].Name != "b" {
		t.Errorf("after expiry: %+v", got)
	}
	// Discover compacted the lapsed binding in place: only the immortal
	// one remains and there is nothing left for Sweep to do.
	if n := r.Size(); n != 1 {
		t.Errorf("Size after compacting Discover = %d, want 1", n)
	}
	if _, err := r.Bind("vmplant", "a"); err == nil {
		t.Error("expired binding bound")
	}
	if n := r.Sweep(); n != 0 {
		t.Errorf("Sweep removed %d, want 0 (already compacted)", n)
	}
	// Sweep still works on bindings nobody has read since they lapsed.
	r.Publish(Binding{Service: "vmplant", Name: "c", Addr: "c:1"}, time.Second)
	now = now.Add(2 * time.Second)
	if n := r.Sweep(); n != 1 {
		t.Errorf("Sweep removed %d, want 1", n)
	}
}

func TestRepublishRefreshesLease(t *testing.T) {
	now := time.Unix(0, 0)
	r := New()
	r.Now = func() time.Time { return now }
	r.Publish(Binding{Service: "s", Name: "n", Addr: "v1"}, 10*time.Second)
	now = now.Add(8 * time.Second)
	r.Publish(Binding{Service: "s", Name: "n", Addr: "v2"}, 10*time.Second)
	now = now.Add(8 * time.Second) // 16s after first publish, 8 after refresh
	b, err := r.Bind("s", "n")
	if err != nil || b.Addr != "v2" {
		t.Errorf("refresh failed: %+v, %v", b, err)
	}
}

func TestWithdraw(t *testing.T) {
	r := New()
	r.Publish(Binding{Service: "s", Name: "n", Addr: "a"}, 0)
	if !r.Withdraw("s", "n") {
		t.Error("withdraw reported false")
	}
	if r.Withdraw("s", "n") {
		t.Error("double withdraw reported true")
	}
	if len(r.Discover("s")) != 0 {
		t.Error("withdrawn binding visible")
	}
}

func TestUnpublish(t *testing.T) {
	now := time.Unix(0, 0)
	r := New()
	r.Now = func() time.Time { return now }
	r.Publish(Binding{Service: "vmplant", Name: "n", Addr: "a"}, 10*time.Second)
	if !r.Unpublish("vmplant", "n") {
		t.Error("Unpublish of live binding reported false")
	}
	if r.Unpublish("vmplant", "n") {
		t.Error("double Unpublish reported true")
	}
	if r.Size() != 0 {
		t.Errorf("Size = %d after Unpublish, want 0", r.Size())
	}
	// Unpublish removes lapsed bindings too — a retired plant leaves the
	// directory even if its lease already ran out.
	r.Publish(Binding{Service: "vmplant", Name: "m", Addr: "a"}, time.Second)
	now = now.Add(2 * time.Second)
	if !r.Unpublish("vmplant", "m") {
		t.Error("Unpublish of lapsed binding reported false")
	}
}

// Plant churn must not grow the directory without bound: every lapsed
// binding is compacted by the next read that touches it.
func TestChurnStaysBounded(t *testing.T) {
	now := time.Unix(0, 0)
	r := New()
	r.Now = func() time.Time { return now }
	for i := 0; i < 200; i++ {
		name := "node" + string(rune('a'+i%26)) + string(rune('a'+(i/26)%26))
		r.Publish(Binding{Service: "vmplant", Name: name + string(rune('0'+i%10)), Addr: "x"}, time.Second)
		now = now.Add(2 * time.Second) // each binding lapses before the next publish
		r.Discover("vmplant")
	}
	if n := r.Size(); n != 0 {
		t.Errorf("Size after churn = %d, want 0 (all lapsed bindings compacted)", n)
	}
}

// Leases under the simulation kernel: a cell that heartbeats stays
// bindable across many TTL windows; once the heartbeat stops, the lease
// lapses one TTL later in virtual time, and a re-publish resurrects it.
// This is the clock wiring the federation coordinator relies on — the
// registry never reads wall time during a simulated run.
func TestLeaseLifecycleUnderSimClock(t *testing.T) {
	k := sim.NewKernel()
	r := New()
	r.Now = func() time.Time { return time.Unix(0, 0).Add(k.Now()) }
	const ttl = 5 * time.Second
	k.Spawn("heartbeat", func(p *sim.Proc) {
		for i := 0; i < 5; i++ { // last re-publish at t=8s, lease to 13s
			if err := r.Publish(Binding{Service: "vmshop", Name: "cellA", Addr: "cellA"}, ttl); err != nil {
				t.Error(err)
			}
			p.Sleep(2 * time.Second)
		}
	})
	k.Spawn("observer", func(p *sim.Proc) {
		p.Sleep(12 * time.Second) // several TTLs in, heartbeat just stopped
		if _, err := r.Bind("vmshop", "cellA"); err != nil {
			t.Errorf("heartbeating cell not bindable at %v: %v", p.Now(), err)
		}
		p.Sleep(4 * time.Second) // t=16s: one TTL past the last re-publish
		if _, err := r.Bind("vmshop", "cellA"); err == nil {
			t.Error("lease survived the heartbeat stopping")
		}
		if got := r.Discover("vmshop"); len(got) != 0 {
			t.Errorf("lapsed cell still discoverable: %+v", got)
		}
		// The failed Bind and empty Discover above already compacted the
		// lapsed binding away.
		if n := r.Size(); n != 0 {
			t.Errorf("Size after lapse = %d, want 0", n)
		}
		if n := r.Sweep(); n != 0 {
			t.Errorf("Sweep removed %d bindings, want 0 (already compacted)", n)
		}
		// The cell comes back: one re-publish restores discovery.
		if err := r.Publish(Binding{Service: "vmshop", Name: "cellA", Addr: "cellA"}, ttl); err != nil {
			t.Error(err)
		}
		if _, err := r.Bind("vmshop", "cellA"); err != nil {
			t.Errorf("re-published cell not bindable: %v", err)
		}
	})
	if res := k.Run(0); len(res.Stranded) != 0 {
		t.Fatalf("stranded: %v", res.Stranded)
	}
}
