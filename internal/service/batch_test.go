package service

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/proto"
)

func TestBatchCreateOverTCP(t *testing.T) {
	plants := map[string]string{
		"plantA": startPlantDaemon(t, "plantA", 3),
		"plantB": startPlantDaemon(t, "plantB", 4),
	}
	shopAddr := startShopDaemon(t, plants)

	c, err := proto.Dial(shopAddr, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 4
	var items []proto.CreateRequest
	for i := 0; i < n; i++ {
		r := createReq(t)
		r.Name = fmt.Sprintf("batch%d", i)
		items = append(items, *r)
	}
	resp, err := c.Call(&proto.Message{Kind: proto.KindBatchCreateRequest,
		BatchCreate: &proto.BatchCreateRequest{Items: items}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Kind != proto.KindBatchCreateResponse {
		t.Fatalf("response kind = %s", resp.Kind)
	}
	got := resp.BatchCreated.Items
	if len(got) != n {
		t.Fatalf("%d items in response, want %d", len(got), n)
	}
	seen := make(map[string]bool)
	for i, it := range got {
		if it.Err != "" {
			t.Fatalf("item %d: %s", i, it.Err)
		}
		if !strings.HasPrefix(it.VMID, "vm-shop-") || seen[it.VMID] {
			t.Fatalf("item %d: bad or duplicate VMID %q", i, it.VMID)
		}
		seen[it.VMID] = true
		if st := it.Ad.GetString(core.AttrState, ""); st != "running" {
			t.Errorf("item %d state = %q", i, st)
		}
	}
	// The batch's VMs are live: query one through the normal path.
	q, err := c.Call(&proto.Message{Kind: proto.KindQueryRequest,
		Query: &proto.QueryRequest{VMID: got[0].VMID}})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Queried.Found {
		t.Errorf("query = %+v", q.Queried)
	}
}

func TestBatchCreateRejectsBadItem(t *testing.T) {
	plants := map[string]string{"plantA": startPlantDaemon(t, "plantA", 5)}
	shopAddr := startShopDaemon(t, plants)

	c, err := proto.Dial(shopAddr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	bad := *createReq(t)
	bad.MemoryMB = 0 // invalid hardware
	_, err = c.Call(&proto.Message{Kind: proto.KindBatchCreateRequest,
		BatchCreate: &proto.BatchCreateRequest{Items: []proto.CreateRequest{*createReq(t), bad}}})
	if err == nil {
		t.Fatal("batch with an invalid item succeeded")
	}
	if !strings.Contains(err.Error(), "item 1") {
		t.Errorf("error does not name the bad item: %v", err)
	}
}
