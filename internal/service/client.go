package service

import (
	"fmt"
	"time"

	"vmplants/internal/classad"
	"vmplants/internal/core"
	"vmplants/internal/proto"
)

// ShopClient is the typed Go client for a VMShop daemon: the
// counterpart of cmd/vmctl for programs. It wraps one protocol
// connection and is safe for concurrent use.
type ShopClient struct {
	c *proto.Client
}

// DialShop connects to a VMShop daemon.
func DialShop(addr string, timeout time.Duration) (*ShopClient, error) {
	c, err := proto.Dial(addr, timeout)
	if err != nil {
		return nil, err
	}
	return &ShopClient{c: c}, nil
}

// Close releases the connection.
func (sc *ShopClient) Close() error { return sc.c.Close() }

// Create submits a creation request and returns the assigned VMID with
// the resulting classad.
func (sc *ShopClient) Create(spec *core.Spec) (core.VMID, *classad.Ad, error) {
	if err := spec.Validate(); err != nil {
		return "", nil, err
	}
	resp, err := sc.c.Call(&proto.Message{Kind: proto.KindCreateRequest,
		Create: proto.FromSpec(spec, "")})
	if err != nil {
		return "", nil, err
	}
	return core.VMID(resp.Created.VMID), resp.Created.Ad, nil
}

// Query fetches an active VM's classad.
func (sc *ShopClient) Query(id core.VMID) (*classad.Ad, error) {
	resp, err := sc.c.Call(&proto.Message{Kind: proto.KindQueryRequest,
		Query: &proto.QueryRequest{VMID: string(id)}})
	if err != nil {
		return nil, err
	}
	if !resp.Queried.Found {
		return nil, fmt.Errorf("service: VM %s not found", id)
	}
	return resp.Queried.Ad, nil
}

// Destroy collects an active VM.
func (sc *ShopClient) Destroy(id core.VMID) error {
	resp, err := sc.c.Call(&proto.Message{Kind: proto.KindDestroyRequest,
		Destroy: &proto.DestroyRequest{VMID: string(id)}})
	if err != nil {
		return err
	}
	if !resp.Destroyed.Destroyed {
		return fmt.Errorf("service: VM %s not found", id)
	}
	return nil
}

// Suspend parks an active VM.
func (sc *ShopClient) Suspend(id core.VMID) error {
	return sc.lifecycle(id, proto.LifecycleSuspend)
}

// Resume wakes a suspended VM.
func (sc *ShopClient) Resume(id core.VMID) error {
	return sc.lifecycle(id, proto.LifecycleResume)
}

func (sc *ShopClient) lifecycle(id core.VMID, op string) error {
	_, err := sc.c.Call(&proto.Message{Kind: proto.KindLifecycleRequest,
		Lifecycle: &proto.LifecycleRequest{VMID: string(id), Op: op}})
	return err
}

// Publish checkpoints an active VM into the warehouse as a new golden
// image.
func (sc *ShopClient) Publish(id core.VMID, image string) error {
	_, err := sc.c.Call(&proto.Message{Kind: proto.KindPublishRequest,
		Publish: &proto.PublishRequest{VMID: string(id), Image: image}})
	return err
}
