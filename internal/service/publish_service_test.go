package service

import (
	"strings"
	"testing"
	"time"

	"vmplants/internal/actions"
	"vmplants/internal/core"
	"vmplants/internal/dag"
	"vmplants/internal/warehouse"
)

// buildDerivedXML builds the descriptor a publishing plant would send:
// a derived checkpoint over an image identical to the daemon's "base"
// seed, with one extra configuration action.
func buildDerivedXML(t *testing.T, extra string) (name, xml string) {
	t.Helper()
	parent, err := warehouse.BuildGolden("base",
		core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048},
		warehouse.BackendVMware,
		[]dag.Action{act(actions.OpInstallOS, "distro", "redhat-8.0")})
	if err != nil {
		t.Fatal(err)
	}
	performed := append(parent.Performed, act(actions.OpInstallPackage, "name", extra))
	name = warehouse.DerivedName(warehouse.BackendVMware, performed)
	im, err := warehouse.BuildDerived(name, parent, performed)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := im.DescriptorXML()
	if err != nil {
		t.Fatal(err)
	}
	return name, string(blob)
}

func TestPublishDerivedOverTCP(t *testing.T) {
	addr := startPlantDaemon(t, "plant-pub", 11)
	rp := &RemotePlant{PlantName: "plant-pub", Addr: addr, Timeout: 5 * time.Second}

	name, xml := buildDerivedXML(t, "octave")
	ok, reason, err := rp.PublishDerived(name, "base", xml)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("publish refused: %s", reason)
	}

	// A duplicate publication is a refusal, not a protocol error: the
	// caller lost a race to an identical checkpoint and simply drops
	// its copy.
	ok, reason, err = rp.PublishDerived(name, "base", xml)
	if err != nil {
		t.Fatalf("duplicate publish errored: %v", err)
	}
	if ok || !strings.Contains(reason, "already published") {
		t.Errorf("duplicate publish: ok=%v reason=%q", ok, reason)
	}

	// The published image is a creation candidate on the daemon side:
	// a request carrying the derived history now full-matches it.
	sc, err := DialShop(startShopDaemon(t, map[string]string{"plant-pub": addr}), 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	g, err := dag.NewBuilder().
		Add("os", act(actions.OpInstallOS, "distro", "redhat-8.0")).
		Add("pkg", act(actions.OpInstallPackage, "name", "octave"), "os").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	_, ad, err := sc.Create(&core.Spec{
		Name:     "derived-hit",
		Hardware: core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048},
		Domain:   "example.edu",
		Backend:  warehouse.BackendVMware,
		Graph:    g,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := ad.GetString(core.AttrGoldenImage, ""); got != name {
		t.Errorf("creation cloned %q, want the derived image %q", got, name)
	}
	if got := ad.GetInt(core.AttrMatchedOps, -1); got != 2 {
		t.Errorf("matched ops = %d, want 2 (full match)", got)
	}
}

func TestPublishDerivedRejectsBadRequests(t *testing.T) {
	addr := startPlantDaemon(t, "plant-pub2", 12)
	rp := &RemotePlant{PlantName: "plant-pub2", Addr: addr, Timeout: 5 * time.Second}
	name, xml := buildDerivedXML(t, "octave")

	// Unknown parent is a protocol error, not a refusal.
	if _, _, err := rp.PublishDerived(name, "no-such-seed", xml); err == nil {
		t.Error("publish over a missing parent succeeded")
	}
	// Mismatched name/descriptor pair.
	if _, _, err := rp.PublishDerived("some-other-name", "base", xml); err == nil {
		t.Error("publish with a name not matching the descriptor succeeded")
	}
	// Garbage descriptor.
	if _, _, err := rp.PublishDerived(name, "base", "<not-xml"); err == nil {
		t.Error("publish of a garbage descriptor succeeded")
	}
}
