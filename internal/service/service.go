// Package service glues the core library to the wire protocol for the
// standalone daemons (cmd/vmplantd, cmd/vmshopd): a runner that
// serializes simulation executions behind network handlers, the
// plant-side and shop-side proto.Handler implementations, and a
// shop.PlantHandle that reaches a remote plant over TCP.
//
// The daemons expose the genuine VMPlants protocol over real sockets;
// beneath each daemon the hardware substrate is the same calibrated
// discrete-event simulation the experiments use, so a "create" returns
// immediately in wall time while reporting its virtual creation latency
// in the classad (CreateSecs/CloneSecs).
package service

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"vmplants/internal/classad"
	"vmplants/internal/core"
	"vmplants/internal/plant"
	"vmplants/internal/proto"
	"vmplants/internal/registry"
	"vmplants/internal/shop"
	"vmplants/internal/sim"
	"vmplants/internal/telemetry"
	"vmplants/internal/warehouse"
)

// Runner serializes operations on one simulation kernel so concurrent
// network requests never run the kernel re-entrantly.
type Runner struct {
	mu sync.Mutex
	k  *sim.Kernel
}

// NewRunner wraps a kernel.
func NewRunner(k *sim.Kernel) *Runner { return &Runner{k: k} }

// Do executes fn as a simulation process and drives the kernel to
// quiescence, under the runner's lock.
func (r *Runner) Do(name string, fn func(p *sim.Proc)) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.k.Spawn(name, fn)
	res := r.k.Run(0)
	if len(res.Stranded) != 0 {
		return fmt.Errorf("service: stranded processes: %v", res.Stranded)
	}
	return nil
}

// Now reports the kernel's virtual time under the lock.
func (r *Runner) Now() time.Duration {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.k.Now()
}

// DoCtx is Do with a trace context installed on the spawned process
// before fn runs, so spans the server-side work starts parent under the
// remote caller's trace (the context arrives on the request envelope).
func (r *Runner) DoCtx(name string, sc telemetry.SpanContext, fn func(p *sim.Proc)) error {
	return r.Do(name, func(p *sim.Proc) {
		p.SetTrace(sc)
		fn(p)
	})
}

// traceOf extracts the trace context a request envelope carries (the
// zero context when the caller is untraced).
func traceOf(req *proto.Message) telemetry.SpanContext {
	return telemetry.SpanContext{TraceID: req.TraceID, Span: req.ParentSpan}
}

// NewPlantHandler returns the proto.Handler serving a plant's four
// operations (Figure 2: Create, Collect, Query, Estimate cost).
func NewPlantHandler(r *Runner, pl *plant.Plant) proto.Handler {
	return func(req *proto.Message) *proto.Message {
		// A crashed plant daemon answers nothing until it recovers; the
		// unavailable code maps to ErrPlantDown on the shop side.
		if pl.Down() {
			return proto.Errorf(req.Seq, proto.CodeUnavailable, "plant %s: daemon not running", pl.Name())
		}
		sc := traceOf(req)
		switch req.Kind {
		case proto.KindPingRequest:
			return &proto.Message{Kind: proto.KindPingResponse,
				Pong: &proto.PingResponse{Service: pl.Name()}}

		case proto.KindListRequest:
			ids := pl.VMIDs()
			out := make([]string, len(ids))
			for i, id := range ids {
				out[i] = string(id)
			}
			return &proto.Message{Kind: proto.KindListResponse,
				Listed: &proto.ListResponse{Plant: pl.Name(), VMIDs: out}}

		case proto.KindEstimateRequest:
			spec, err := req.Estimate.Create.Spec()
			if err != nil {
				return proto.Errorf(req.Seq, proto.CodeBadRequest, "%v", err)
			}
			var c core.Cost
			if err := r.DoCtx("estimate", sc, func(p *sim.Proc) { c = pl.Estimate(p, spec) }); err != nil {
				return proto.Errorf(req.Seq, proto.CodeInternal, "%v", err)
			}
			return &proto.Message{Kind: proto.KindEstimateResponse,
				Bid: &proto.EstimateResponse{Plant: pl.Name(), Cost: float64(c), Ad: pl.ResourceAd()}}

		case proto.KindCreateRequest:
			spec, err := req.Create.Spec()
			if err != nil {
				return proto.Errorf(req.Seq, proto.CodeBadRequest, "%v", err)
			}
			id := core.VMID(req.Create.VMID)
			if id == "" {
				return proto.Errorf(req.Seq, proto.CodeBadRequest, "plant create requires a shop-assigned vmid")
			}
			var ad *classad.Ad
			var cerr error
			if err := r.DoCtx("create", sc, func(p *sim.Proc) { ad, cerr = pl.Create(p, id, spec) }); err != nil {
				return proto.Errorf(req.Seq, proto.CodeInternal, "%v", err)
			}
			if cerr != nil {
				return proto.Errorf(req.Seq, proto.CodeNoResources, "%v", cerr)
			}
			return &proto.Message{Kind: proto.KindCreateResponse,
				Created: &proto.CreateResponse{VMID: string(id), Ad: ad}}

		case proto.KindQueryRequest:
			var ad *classad.Ad
			var found bool
			if err := r.DoCtx("query", sc, func(p *sim.Proc) { ad, found = pl.Query(p, core.VMID(req.Query.VMID)) }); err != nil {
				return proto.Errorf(req.Seq, proto.CodeInternal, "%v", err)
			}
			return &proto.Message{Kind: proto.KindQueryResponse,
				Queried: &proto.QueryResponse{VMID: req.Query.VMID, Found: found, Ad: ad}}

		case proto.KindDestroyRequest:
			var derr error
			id := core.VMID(req.Destroy.VMID)
			if err := r.DoCtx("destroy", sc, func(p *sim.Proc) { derr = pl.Collect(p, id) }); err != nil {
				return proto.Errorf(req.Seq, proto.CodeInternal, "%v", err)
			}
			destroyed := derr == nil
			return &proto.Message{Kind: proto.KindDestroyResponse,
				Destroyed: &proto.DestroyResponse{VMID: req.Destroy.VMID, Destroyed: destroyed}}

		case proto.KindPublishRequest:
			var perr error
			id := core.VMID(req.Publish.VMID)
			if err := r.DoCtx("publish", sc, func(p *sim.Proc) { perr = pl.PublishImage(p, id, req.Publish.Image) }); err != nil {
				return proto.Errorf(req.Seq, proto.CodeInternal, "%v", err)
			}
			if perr != nil {
				return proto.Errorf(req.Seq, proto.CodeNotFound, "%v", perr)
			}
			return &proto.Message{Kind: proto.KindPublishResponse,
				Published: &proto.PublishResponse{VMID: req.Publish.VMID, Image: req.Publish.Image}}

		case proto.KindLifecycleRequest:
			var lerr error
			id := core.VMID(req.Lifecycle.VMID)
			state := "suspended"
			if err := r.DoCtx("lifecycle", sc, func(p *sim.Proc) {
				switch req.Lifecycle.Op {
				case proto.LifecycleSuspend:
					lerr = pl.SuspendVM(p, id)
				case proto.LifecycleResume:
					lerr = pl.ResumeVM(p, id)
					state = "running"
				default:
					lerr = fmt.Errorf("unknown lifecycle op %q", req.Lifecycle.Op)
				}
			}); err != nil {
				return proto.Errorf(req.Seq, proto.CodeInternal, "%v", err)
			}
			if lerr != nil {
				return proto.Errorf(req.Seq, proto.CodeNotFound, "%v", lerr)
			}
			return &proto.Message{Kind: proto.KindLifecycleResponse,
				Lifecycled: &proto.LifecycleResponse{VMID: req.Lifecycle.VMID, State: state}}

		case proto.KindPublishImageRequest:
			// Learning-loop publish-back from a remote plant: the derived
			// image arrives as its descriptor XML and is rebuilt over the
			// named parent seed image in this daemon's warehouse.
			desc, performed, err := warehouse.ParseDescriptor([]byte(req.PublishImage.Descriptor))
			if err != nil {
				return proto.Errorf(req.Seq, proto.CodeBadRequest, "%v", err)
			}
			if req.PublishImage.Image != "" && req.PublishImage.Image != desc.Name {
				return proto.Errorf(req.Seq, proto.CodeBadRequest,
					"publish-image name %q does not match descriptor %q", req.PublishImage.Image, desc.Name)
			}
			wh := pl.Warehouse()
			parent, ok := wh.Lookup(req.PublishImage.Parent)
			if !ok {
				return proto.Errorf(req.Seq, proto.CodeNotFound, "no parent image %q", req.PublishImage.Parent)
			}
			im, err := warehouse.BuildDerived(desc.Name, parent, performed)
			if err != nil {
				return proto.Errorf(req.Seq, proto.CodeBadRequest, "%v", err)
			}
			var perr error
			if err := r.DoCtx("publish-image", sc, func(p *sim.Proc) {
				// The derived state streams to the warehouse volume over
				// the daemon host's NFS path before registration.
				pl.Node().Warehouse().Charge(p, im.CheckpointBytes(), pl.Node().Jitter())
				perr = wh.PublishDerived(im, p.Now())
			}); err != nil {
				return proto.Errorf(req.Seq, proto.CodeInternal, "%v", err)
			}
			resp := &proto.PublishImageResponse{Image: desc.Name, Accepted: perr == nil}
			if perr != nil {
				resp.Reason = perr.Error()
			}
			return &proto.Message{Kind: proto.KindPublishImageResponse, ImagePublished: resp}
		}
		return proto.Errorf(req.Seq, proto.CodeBadRequest, "plant does not serve %q", req.Kind)
	}
}

// RemotePlant is a shop.PlantHandle reaching a plant daemon over TCP.
// Each call dials a fresh connection, so a crashed plant surfaces as
// ErrPlantDown rather than wedging the shop.
type RemotePlant struct {
	PlantName string
	Addr      string
	Timeout   time.Duration
	// Retry bounds retransmission of idempotent calls
	// (estimate/query/list/ping); the zero value selects a default of
	// 3 attempts with 50 ms base backoff. Set Attempts to 1 to disable.
	Retry proto.RetryPolicy
	// Telemetry instruments each dialed connection's RPCs; nil disables.
	Telemetry *telemetry.Hub
}

// Name implements shop.PlantHandle.
func (rp *RemotePlant) Name() string { return rp.PlantName }

// DefaultRetry is the retry policy remote plant handles use unless
// configured otherwise.
var DefaultRetry = proto.RetryPolicy{Attempts: 3, BaseBackoff: 50 * time.Millisecond, MaxBackoff: time.Second, Jitter: 0.2}

// call dials the remote daemon and performs one RPC. p, when non-nil,
// supplies the trace context stamped onto the envelope so the daemon's
// server-side spans join the caller's creation tree.
func (rp *RemotePlant) call(p *sim.Proc, m *proto.Message) (*proto.Message, error) {
	if p != nil {
		sc := p.Trace()
		m.TraceID, m.ParentSpan = sc.TraceID, sc.Span
	}
	timeout := rp.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	c, err := proto.Dial(rp.Addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", shop.ErrPlantDown, err)
	}
	defer c.Close()
	c.Retry = rp.Retry
	if c.Retry.Attempts == 0 {
		c.Retry = DefaultRetry
	}
	c.SetTelemetry(rp.Telemetry)
	resp, err := c.Call(m)
	if err != nil {
		// An unavailable answer is a crashed daemon: let the shop's
		// recovery machinery (re-bid, failover, breakers) take over.
		var remote *proto.RemoteError
		if errors.As(err, &remote) && remote.Code == proto.CodeUnavailable {
			return nil, fmt.Errorf("%w: %v", shop.ErrPlantDown, err)
		}
		return nil, err
	}
	return resp, nil
}

// List implements shop.PlantHandle.
func (rp *RemotePlant) List(p *sim.Proc) ([]core.VMID, error) {
	resp, err := rp.call(p, &proto.Message{Kind: proto.KindListRequest, List: &proto.ListRequest{}})
	if err != nil {
		return nil, err
	}
	out := make([]core.VMID, len(resp.Listed.VMIDs))
	for i, id := range resp.Listed.VMIDs {
		out[i] = core.VMID(id)
	}
	return out, nil
}

// Ping probes the remote daemon's liveness.
func (rp *RemotePlant) Ping() error {
	_, err := rp.call(nil, &proto.Message{Kind: proto.KindPingRequest, Ping: &proto.PingRequest{}})
	return err
}

// Estimate implements shop.PlantHandle.
func (rp *RemotePlant) Estimate(p *sim.Proc, spec *core.Spec) (core.Cost, *classad.Ad, error) {
	resp, err := rp.call(p, &proto.Message{Kind: proto.KindEstimateRequest,
		Estimate: &proto.EstimateRequest{Create: proto.FromSpec(spec, "")}})
	if err != nil {
		return core.Infeasible, nil, err
	}
	return core.Cost(resp.Bid.Cost), resp.Bid.Ad, nil
}

// Create implements shop.PlantHandle.
func (rp *RemotePlant) Create(p *sim.Proc, id core.VMID, spec *core.Spec) (*classad.Ad, error) {
	cr := proto.FromSpec(spec, "")
	cr.VMID = string(id)
	resp, err := rp.call(p, &proto.Message{Kind: proto.KindCreateRequest, Create: cr})
	if err != nil {
		return nil, err
	}
	return resp.Created.Ad, nil
}

// Query implements shop.PlantHandle.
func (rp *RemotePlant) Query(p *sim.Proc, id core.VMID) (*classad.Ad, bool, error) {
	resp, err := rp.call(p, &proto.Message{Kind: proto.KindQueryRequest,
		Query: &proto.QueryRequest{VMID: string(id)}})
	if err != nil {
		return nil, false, err
	}
	return resp.Queried.Ad, resp.Queried.Found, nil
}

// Collect implements shop.PlantHandle.
func (rp *RemotePlant) Collect(p *sim.Proc, id core.VMID) (bool, error) {
	resp, err := rp.call(p, &proto.Message{Kind: proto.KindDestroyRequest,
		Destroy: &proto.DestroyRequest{VMID: string(id)}})
	if err != nil {
		return false, err
	}
	return resp.Destroyed.Destroyed, nil
}

// Publish implements shop.PlantHandle.
func (rp *RemotePlant) Publish(p *sim.Proc, id core.VMID, image string) error {
	_, err := rp.call(p, &proto.Message{Kind: proto.KindPublishRequest,
		Publish: &proto.PublishRequest{VMID: string(id), Image: image}})
	return err
}

// PublishDerived pushes a derived golden image (as its descriptor XML,
// sharing the named parent's extents) to the remote daemon's
// warehouse — the learning loop's publish-back RPC. It returns whether
// the warehouse accepted the image and, when refused, why.
func (rp *RemotePlant) PublishDerived(image, parent, descriptorXML string) (bool, string, error) {
	resp, err := rp.call(nil, &proto.Message{Kind: proto.KindPublishImageRequest,
		PublishImage: &proto.PublishImageRequest{Image: image, Parent: parent, Descriptor: descriptorXML}})
	if err != nil {
		return false, "", err
	}
	return resp.ImagePublished.Accepted, resp.ImagePublished.Reason, nil
}

// Lifecycle implements shop.PlantHandle.
func (rp *RemotePlant) Lifecycle(p *sim.Proc, id core.VMID, op string) error {
	_, err := rp.call(p, &proto.Message{Kind: proto.KindLifecycleRequest,
		Lifecycle: &proto.LifecycleRequest{VMID: string(id), Op: op}})
	return err
}

// RemotePeer is a shop.PeerHandle reaching a peer shop daemon in
// another cell over TCP. Like RemotePlant, each call dials fresh so a
// dead cell surfaces as ErrPeerDown; when a registry is wired, the
// peer's "vmshop" lease is checked first so a withdrawn or lapsed cell
// fails fast without a connection attempt.
type RemotePeer struct {
	PeerName string
	Addr     string
	Timeout  time.Duration
	// Registry, when set, gates every call on a live vmshop lease.
	Registry *registry.Registry
	// Retry bounds retransmission of idempotent calls; the zero value
	// selects DefaultRetry.
	Retry     proto.RetryPolicy
	Telemetry *telemetry.Hub
}

// Name implements shop.PeerHandle.
func (rp *RemotePeer) Name() string { return rp.PeerName }

func (rp *RemotePeer) call(p *sim.Proc, m *proto.Message) (*proto.Message, error) {
	if rp.Registry != nil {
		if _, err := rp.Registry.Bind(Service, rp.PeerName); err != nil {
			return nil, fmt.Errorf("%w: %s: no live registry lease", shop.ErrPeerDown, rp.PeerName)
		}
	}
	if p != nil {
		sc := p.Trace()
		m.TraceID, m.ParentSpan = sc.TraceID, sc.Span
	}
	timeout := rp.Timeout
	if timeout == 0 {
		timeout = 30 * time.Second
	}
	c, err := proto.Dial(rp.Addr, timeout)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", shop.ErrPeerDown, err)
	}
	defer c.Close()
	c.Retry = rp.Retry
	if c.Retry.Attempts == 0 {
		c.Retry = DefaultRetry
	}
	c.SetTelemetry(rp.Telemetry)
	resp, err := c.Call(m)
	if err != nil {
		var remote *proto.RemoteError
		if errors.As(err, &remote) && remote.Code == proto.CodeUnavailable {
			return nil, fmt.Errorf("%w: %v", shop.ErrPeerDown, err)
		}
		return nil, err
	}
	return resp, nil
}

// Estimate implements shop.PeerHandle.
func (rp *RemotePeer) Estimate(p *sim.Proc, spec *core.Spec) (core.Cost, error) {
	resp, err := rp.call(p, &proto.Message{Kind: proto.KindEstimateRequest,
		Estimate: &proto.EstimateRequest{Create: proto.FromSpec(spec, "")}})
	if err != nil {
		return core.Infeasible, err
	}
	return core.Cost(resp.Bid.Cost), nil
}

// Create implements shop.PeerHandle.
func (rp *RemotePeer) Create(p *sim.Proc, spec *core.Spec) (core.VMID, *classad.Ad, error) {
	resp, err := rp.call(p, &proto.Message{Kind: proto.KindForwardCreateRequest,
		ForwardCreate: &proto.ForwardCreateRequest{Origin: spec.Origin, Create: proto.FromSpec(spec, "")}})
	if err != nil {
		return "", nil, err
	}
	return core.VMID(resp.ForwardCreated.VMID), resp.ForwardCreated.Ad, nil
}

// LookupForward implements shop.PeerHandle.
func (rp *RemotePeer) LookupForward(p *sim.Proc, token string) (core.VMID, bool, error) {
	resp, err := rp.call(p, &proto.Message{Kind: proto.KindForwardCreateRequest,
		ForwardCreate: &proto.ForwardCreateRequest{Probe: true, Token: token}})
	if err != nil {
		return "", false, err
	}
	return core.VMID(resp.ForwardCreated.VMID), resp.ForwardCreated.Found, nil
}

// Query implements shop.PeerHandle.
func (rp *RemotePeer) Query(p *sim.Proc, id core.VMID) (*classad.Ad, bool, error) {
	resp, err := rp.call(p, &proto.Message{Kind: proto.KindQueryRequest,
		Query: &proto.QueryRequest{VMID: string(id)}})
	if err != nil {
		var remote *proto.RemoteError
		if errors.As(err, &remote) {
			return nil, false, nil // peer reachable, VM unknown there
		}
		return nil, false, err
	}
	return resp.Queried.Ad, resp.Queried.Found, nil
}

// Collect implements shop.PeerHandle.
func (rp *RemotePeer) Collect(p *sim.Proc, id core.VMID) (bool, error) {
	resp, err := rp.call(p, &proto.Message{Kind: proto.KindDestroyRequest,
		Destroy: &proto.DestroyRequest{VMID: string(id)}})
	if err != nil {
		var remote *proto.RemoteError
		if errors.As(err, &remote) {
			return false, nil
		}
		return false, err
	}
	return resp.Destroyed.Destroyed, nil
}

// Publish implements shop.PeerHandle.
func (rp *RemotePeer) Publish(p *sim.Proc, id core.VMID, image string) error {
	_, err := rp.call(p, &proto.Message{Kind: proto.KindPublishRequest,
		Publish: &proto.PublishRequest{VMID: string(id), Image: image}})
	return err
}

// Lifecycle implements shop.PeerHandle.
func (rp *RemotePeer) Lifecycle(p *sim.Proc, id core.VMID, op string) error {
	_, err := rp.call(p, &proto.Message{Kind: proto.KindLifecycleRequest,
		Lifecycle: &proto.LifecycleRequest{VMID: string(id), Op: op}})
	return err
}

// Service is the registry service type shop daemons publish under.
const Service = "vmshop"

// PublishShop announces a shop daemon (one federation cell) in the
// service registry so peer cells can discover and bind to it.
func PublishShop(reg *registry.Registry, name, addr string, meta map[string]string, ttl time.Duration) error {
	return reg.Publish(registry.Binding{Service: Service, Name: name, Addr: addr, Meta: meta}, ttl)
}

// DiscoverPeers resolves every live vmshop binding except self to a
// remote peer handle.
func DiscoverPeers(reg *registry.Registry, self string, timeout time.Duration) []shop.PeerHandle {
	var out []shop.PeerHandle
	for _, b := range reg.Discover(Service) {
		if b.Name == self {
			continue
		}
		out = append(out, &RemotePeer{PeerName: b.Name, Addr: b.Addr, Registry: reg, Timeout: timeout})
	}
	return out
}

// PublishPlant announces a plant daemon in the service registry
// (Figure 1's "Publish" arrow), so shops can discover it instead of
// being configured with a static list.
func PublishPlant(reg *registry.Registry, name, addr string, ttl time.Duration) error {
	return reg.Publish(registry.Binding{Service: "vmplant", Name: name, Addr: addr}, ttl)
}

// DiscoverPlants resolves every live vmplant binding in the registry to
// a remote handle (Figure 1's "Discover"/"Bind" arrows).
func DiscoverPlants(reg *registry.Registry, timeout time.Duration) []shop.PlantHandle {
	var out []shop.PlantHandle
	for _, b := range reg.Discover("vmplant") {
		out = append(out, &RemotePlant{PlantName: b.Name, Addr: b.Addr, Timeout: timeout})
	}
	return out
}

// NewShopHandler returns the proto.Handler serving clients through a
// shop (create without vmid, query, destroy, publish).
func NewShopHandler(r *Runner, s *shop.Shop) proto.Handler {
	return func(req *proto.Message) *proto.Message {
		sc := traceOf(req)
		switch req.Kind {
		case proto.KindPingRequest:
			return &proto.Message{Kind: proto.KindPingResponse,
				Pong: &proto.PingResponse{Service: s.Name()}}

		case proto.KindCreateRequest:
			spec, err := req.Create.Spec()
			if err != nil {
				return proto.Errorf(req.Seq, proto.CodeBadRequest, "%v", err)
			}
			var id core.VMID
			var ad *classad.Ad
			var cerr error
			if err := r.DoCtx("shop-create", sc, func(p *sim.Proc) { id, ad, cerr = s.Create(p, spec) }); err != nil {
				return proto.Errorf(req.Seq, proto.CodeInternal, "%v", err)
			}
			if cerr != nil {
				return proto.Errorf(req.Seq, proto.CodeNoResources, "%v", cerr)
			}
			return &proto.Message{Kind: proto.KindCreateResponse,
				Created: &proto.CreateResponse{VMID: string(id), Ad: ad}}

		case proto.KindBatchCreateRequest:
			specs := make([]*core.Spec, len(req.BatchCreate.Items))
			for i := range req.BatchCreate.Items {
				spec, err := req.BatchCreate.Items[i].Spec()
				if err != nil {
					return proto.Errorf(req.Seq, proto.CodeBadRequest, "item %d: %v", i, err)
				}
				specs[i] = spec
			}
			var results []shop.BatchResult
			if err := r.DoCtx("shop-batch-create", sc, func(p *sim.Proc) { results = s.CreateMany(p, specs) }); err != nil {
				return proto.Errorf(req.Seq, proto.CodeInternal, "%v", err)
			}
			resp := &proto.BatchCreateResponse{Items: make([]proto.BatchCreateItem, len(results))}
			for i, res := range results {
				if res.Err != nil {
					resp.Items[i] = proto.BatchCreateItem{Err: res.Err.Error()}
					continue
				}
				resp.Items[i] = proto.BatchCreateItem{VMID: string(res.VMID), Ad: res.Ad}
			}
			return &proto.Message{Kind: proto.KindBatchCreateResponse, BatchCreated: resp}

		case proto.KindEstimateRequest:
			// Peer-facing half of hierarchical bidding: another cell asks
			// for this shop's aggregate bid (its cheapest feasible plant).
			spec, err := req.Estimate.Create.Spec()
			if err != nil {
				return proto.Errorf(req.Seq, proto.CodeBadRequest, "%v", err)
			}
			var c core.Cost
			var eerr error
			if err := r.DoCtx("shop-estimate", sc, func(p *sim.Proc) { c, eerr = s.EstimateForward(p, spec) }); err != nil {
				return proto.Errorf(req.Seq, proto.CodeInternal, "%v", err)
			}
			if eerr != nil {
				if errors.Is(eerr, shop.ErrShopDown) {
					return proto.Errorf(req.Seq, proto.CodeUnavailable, "%v", eerr)
				}
				return proto.Errorf(req.Seq, proto.CodeBadRequest, "%v", eerr)
			}
			return &proto.Message{Kind: proto.KindEstimateResponse,
				Bid: &proto.EstimateResponse{Plant: s.Name(), Cost: float64(c)}}

		case proto.KindForwardCreateRequest:
			if req.ForwardCreate.Probe {
				// Non-creating reconcile probe: did this cell commit a
				// creation under the origin's forwarding token?
				var id core.VMID
				var found bool
				var lerr error
				if err := r.DoCtx("shop-forward-lookup", sc, func(p *sim.Proc) {
					id, found, lerr = s.ForwardLookup(p, req.ForwardCreate.Token)
				}); err != nil {
					return proto.Errorf(req.Seq, proto.CodeInternal, "%v", err)
				}
				if lerr != nil {
					if errors.Is(lerr, shop.ErrShopDown) {
						return proto.Errorf(req.Seq, proto.CodeUnavailable, "%v", lerr)
					}
					return proto.Errorf(req.Seq, proto.CodeBadRequest, "%v", lerr)
				}
				return &proto.Message{Kind: proto.KindForwardCreateResponse,
					ForwardCreated: &proto.ForwardCreateResponse{VMID: string(id), Found: found}}
			}
			if req.ForwardCreate.Create == nil {
				return proto.Errorf(req.Seq, proto.CodeBadRequest, "forward-create without a create-request")
			}
			cr := *req.ForwardCreate.Create
			cr.Origin = req.ForwardCreate.Origin
			spec, err := cr.Spec()
			if err != nil {
				return proto.Errorf(req.Seq, proto.CodeBadRequest, "%v", err)
			}
			var id core.VMID
			var ad *classad.Ad
			var cerr error
			if err := r.DoCtx("shop-forward-create", sc, func(p *sim.Proc) { id, ad, cerr = s.ForwardCreate(p, spec) }); err != nil {
				return proto.Errorf(req.Seq, proto.CodeInternal, "%v", err)
			}
			if cerr != nil {
				if errors.Is(cerr, shop.ErrShopDown) {
					return proto.Errorf(req.Seq, proto.CodeUnavailable, "%v", cerr)
				}
				return proto.Errorf(req.Seq, proto.CodeNoResources, "%v", cerr)
			}
			return &proto.Message{Kind: proto.KindForwardCreateResponse,
				ForwardCreated: &proto.ForwardCreateResponse{VMID: string(id), Ad: ad}}

		case proto.KindQueryRequest:
			var ad *classad.Ad
			var qerr error
			if err := r.DoCtx("shop-query", sc, func(p *sim.Proc) { ad, qerr = s.Query(p, core.VMID(req.Query.VMID)) }); err != nil {
				return proto.Errorf(req.Seq, proto.CodeInternal, "%v", err)
			}
			if qerr != nil {
				return proto.Errorf(req.Seq, proto.CodeNotFound, "%v", qerr)
			}
			return &proto.Message{Kind: proto.KindQueryResponse,
				Queried: &proto.QueryResponse{VMID: req.Query.VMID, Found: true, Ad: ad}}

		case proto.KindDestroyRequest:
			var derr error
			if err := r.DoCtx("shop-destroy", sc, func(p *sim.Proc) { derr = s.Destroy(p, core.VMID(req.Destroy.VMID)) }); err != nil {
				return proto.Errorf(req.Seq, proto.CodeInternal, "%v", err)
			}
			if derr != nil {
				return proto.Errorf(req.Seq, proto.CodeNotFound, "%v", derr)
			}
			return &proto.Message{Kind: proto.KindDestroyResponse,
				Destroyed: &proto.DestroyResponse{VMID: req.Destroy.VMID, Destroyed: true}}

		case proto.KindPublishRequest:
			var perr error
			if err := r.DoCtx("shop-publish", sc, func(p *sim.Proc) {
				perr = s.Publish(p, core.VMID(req.Publish.VMID), req.Publish.Image)
			}); err != nil {
				return proto.Errorf(req.Seq, proto.CodeInternal, "%v", err)
			}
			if perr != nil {
				return proto.Errorf(req.Seq, proto.CodeNotFound, "%v", perr)
			}
			return &proto.Message{Kind: proto.KindPublishResponse,
				Published: &proto.PublishResponse{VMID: req.Publish.VMID, Image: req.Publish.Image}}

		case proto.KindLifecycleRequest:
			var lerr error
			id := core.VMID(req.Lifecycle.VMID)
			state := "suspended"
			if err := r.DoCtx("shop-lifecycle", sc, func(p *sim.Proc) {
				switch req.Lifecycle.Op {
				case proto.LifecycleSuspend:
					lerr = s.Suspend(p, id)
				case proto.LifecycleResume:
					lerr = s.Resume(p, id)
					state = "running"
				default:
					lerr = fmt.Errorf("unknown lifecycle op %q", req.Lifecycle.Op)
				}
			}); err != nil {
				return proto.Errorf(req.Seq, proto.CodeInternal, "%v", err)
			}
			if lerr != nil {
				return proto.Errorf(req.Seq, proto.CodeNotFound, "%v", lerr)
			}
			return &proto.Message{Kind: proto.KindLifecycleResponse,
				Lifecycled: &proto.LifecycleResponse{VMID: req.Lifecycle.VMID, State: state}}
		}
		return proto.Errorf(req.Seq, proto.CodeBadRequest, "shop does not serve %q", req.Kind)
	}
}
