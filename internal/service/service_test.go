package service

import (
	"net"
	"strings"
	"testing"
	"time"

	"vmplants/internal/actions"
	"vmplants/internal/cluster"
	"vmplants/internal/core"
	"vmplants/internal/dag"
	"vmplants/internal/plant"
	"vmplants/internal/proto"
	"vmplants/internal/registry"
	"vmplants/internal/shop"
	"vmplants/internal/sim"
	"vmplants/internal/warehouse"
)

func act(op string, kv ...string) dag.Action {
	p := map[string]string{}
	for i := 0; i+1 < len(kv); i += 2 {
		p[kv[i]] = kv[i+1]
	}
	tgt, _ := actions.DefaultTarget(op)
	return dag.Action{Op: op, Target: tgt, Params: p}
}

// startPlantDaemon spins up one plant daemon on a loopback listener.
func startPlantDaemon(t *testing.T, name string, seed int64) (addr string) {
	t.Helper()
	k := sim.NewKernel()
	tb := cluster.NewTestbed(k, 1, cluster.DefaultParams(), seed)
	wh := warehouse.New(tb.Warehouse)
	im, err := warehouse.BuildGolden("base",
		core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048},
		warehouse.BackendVMware,
		[]dag.Action{act(actions.OpInstallOS, "distro", "redhat-8.0")})
	if err != nil {
		t.Fatal(err)
	}
	if err := wh.Publish(im); err != nil {
		t.Fatal(err)
	}
	pl := plant.New(name, tb.Nodes[0], wh, plant.Config{MaxVMs: 8})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go proto.Serve(l, NewPlantHandler(NewRunner(k), pl))
	return l.Addr().String()
}

// startShopDaemon spins up a shop daemon over the given plant daemons.
func startShopDaemon(t *testing.T, plantAddrs map[string]string) (addr string) {
	t.Helper()
	var handles []shop.PlantHandle
	for name, a := range plantAddrs {
		handles = append(handles, &RemotePlant{PlantName: name, Addr: a, Timeout: 5 * time.Second})
	}
	s := shop.New("shop", handles, 7)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go proto.Serve(l, NewShopHandler(NewRunner(sim.NewKernel()), s))
	return l.Addr().String()
}

func requestGraph(t *testing.T) *dag.Graph {
	t.Helper()
	g, err := dag.NewBuilder().
		Add("os", act(actions.OpInstallOS, "distro", "redhat-8.0")).
		Add("user", act(actions.OpCreateUser, "name", "ivan"), "os").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func createReq(t *testing.T) *proto.CreateRequest {
	return &proto.CreateRequest{
		Name:     "itest",
		Arch:     "x86",
		MemoryMB: 64,
		DiskMB:   2048,
		Domain:   "example.edu",
		Graph:    requestGraph(t),
	}
}

func TestFullStackOverTCP(t *testing.T) {
	plants := map[string]string{
		"plantA": startPlantDaemon(t, "plantA", 1),
		"plantB": startPlantDaemon(t, "plantB", 2),
	}
	shopAddr := startShopDaemon(t, plants)

	c, err := proto.Dial(shopAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Create.
	resp, err := c.Call(&proto.Message{Kind: proto.KindCreateRequest, Create: createReq(t)})
	if err != nil {
		t.Fatal(err)
	}
	id := resp.Created.VMID
	if !strings.HasPrefix(id, "vm-shop-") {
		t.Fatalf("VMID = %q", id)
	}
	ad := resp.Created.Ad
	if ad.GetString(core.AttrState, "") != "running" {
		t.Errorf("state = %q", ad.GetString(core.AttrState, ""))
	}
	if ad.GetReal(core.AttrCloneSecs, 0) <= 0 {
		t.Error("classad lost clone latency")
	}

	// Query.
	q, err := c.Call(&proto.Message{Kind: proto.KindQueryRequest, Query: &proto.QueryRequest{VMID: id}})
	if err != nil {
		t.Fatal(err)
	}
	if !q.Queried.Found || q.Queried.Ad.GetString(core.AttrName, "") != "itest" {
		t.Errorf("query = %+v", q.Queried)
	}

	// Destroy, then the VM is gone.
	d, err := c.Call(&proto.Message{Kind: proto.KindDestroyRequest, Destroy: &proto.DestroyRequest{VMID: id}})
	if err != nil {
		t.Fatal(err)
	}
	if !d.Destroyed.Destroyed {
		t.Error("destroy reported false")
	}
	if _, err := c.Call(&proto.Message{Kind: proto.KindQueryRequest, Query: &proto.QueryRequest{VMID: id}}); err == nil {
		t.Error("query after destroy succeeded")
	}
}

func TestShopSurvivesPlantCrash(t *testing.T) {
	// One live plant plus one address nobody listens on.
	plants := map[string]string{
		"alive": startPlantDaemon(t, "alive", 3),
		"dead":  "127.0.0.1:1", // nothing listens here
	}
	var handles []shop.PlantHandle
	for name, a := range plants {
		handles = append(handles, &RemotePlant{PlantName: name, Addr: a, Timeout: time.Second})
	}
	s := shop.New("shop", handles, 7)
	r := NewRunner(sim.NewKernel())

	spec, err := createReq(t).Spec()
	if err != nil {
		t.Fatal(err)
	}
	var id core.VMID
	var cerr error
	if err := r.Do("create", func(p *sim.Proc) { id, _, cerr = s.Create(p, spec) }); err != nil {
		t.Fatal(err)
	}
	if cerr != nil {
		t.Fatalf("create with one dead plant: %v", cerr)
	}
	if id == "" {
		t.Fatal("no VMID")
	}
}

func TestPlantHandlerRejectsBadRequests(t *testing.T) {
	addr := startPlantDaemon(t, "p", 4)
	c, err := proto.Dial(addr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Create without a shop-assigned VMID.
	if _, err := c.Call(&proto.Message{Kind: proto.KindCreateRequest, Create: createReq(t)}); err == nil {
		t.Error("plant accepted create without vmid")
	}
	// Invalid spec.
	bad := createReq(t)
	bad.VMID = "vm-x-1"
	bad.MemoryMB = 0
	if _, err := c.Call(&proto.Message{Kind: proto.KindCreateRequest, Create: bad}); err == nil {
		t.Error("plant accepted invalid spec")
	}
	// Wrong service.
	if _, err := c.Call(&proto.Message{Kind: proto.KindEstimateResponse, Bid: &proto.EstimateResponse{}}); err == nil {
		t.Error("plant served a response kind")
	}
}

func TestEstimateOverTCP(t *testing.T) {
	addr := startPlantDaemon(t, "p", 5)
	rp := &RemotePlant{PlantName: "p", Addr: addr, Timeout: 5 * time.Second}
	r := NewRunner(sim.NewKernel())
	spec, err := createReq(t).Spec()
	if err != nil {
		t.Fatal(err)
	}
	var c core.Cost
	var eerr error
	if err := r.Do("est", func(p *sim.Proc) { c, _, eerr = rp.Estimate(p, spec) }); err != nil {
		t.Fatal(err)
	}
	if eerr != nil || !c.OK() {
		t.Errorf("estimate = %v, %v", c, eerr)
	}
}

func TestDiscoverPlantsFromRegistry(t *testing.T) {
	reg := registry.New()
	addrA := startPlantDaemon(t, "regA", 31)
	addrB := startPlantDaemon(t, "regB", 32)
	if err := PublishPlant(reg, "regA", addrA, 0); err != nil {
		t.Fatal(err)
	}
	if err := PublishPlant(reg, "regB", addrB, 0); err != nil {
		t.Fatal(err)
	}
	handles := DiscoverPlants(reg, 5*time.Second)
	if len(handles) != 2 {
		t.Fatalf("discovered %d plants", len(handles))
	}
	s := shop.New("shop", handles, 7)
	r := NewRunner(sim.NewKernel())
	spec, err := createReq(t).Spec()
	if err != nil {
		t.Fatal(err)
	}
	var cerr error
	if err := r.Do("create", func(p *sim.Proc) { _, _, cerr = s.Create(p, spec) }); err != nil {
		t.Fatal(err)
	}
	if cerr != nil {
		t.Fatalf("create through discovered plants: %v", cerr)
	}
}

func TestLifecycleOverTCP(t *testing.T) {
	plants := map[string]string{"p": startPlantDaemon(t, "p", 41)}
	shopAddr := startShopDaemon(t, plants)
	c, err := proto.Dial(shopAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	resp, err := c.Call(&proto.Message{Kind: proto.KindCreateRequest, Create: createReq(t)})
	if err != nil {
		t.Fatal(err)
	}
	id := resp.Created.VMID
	sus, err := c.Call(&proto.Message{Kind: proto.KindLifecycleRequest,
		Lifecycle: &proto.LifecycleRequest{VMID: id, Op: proto.LifecycleSuspend}})
	if err != nil {
		t.Fatal(err)
	}
	if sus.Lifecycled.State != "suspended" {
		t.Errorf("state = %q", sus.Lifecycled.State)
	}
	res, err := c.Call(&proto.Message{Kind: proto.KindLifecycleRequest,
		Lifecycle: &proto.LifecycleRequest{VMID: id, Op: proto.LifecycleResume}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Lifecycled.State != "running" {
		t.Errorf("state = %q", res.Lifecycled.State)
	}
	if _, err := c.Call(&proto.Message{Kind: proto.KindLifecycleRequest,
		Lifecycle: &proto.LifecycleRequest{VMID: id, Op: "defenestrate"}}); err == nil {
		t.Error("unknown lifecycle op accepted")
	}
}

func TestShopClientFullLifecycle(t *testing.T) {
	plants := map[string]string{"p": startPlantDaemon(t, "p", 51)}
	shopAddr := startShopDaemon(t, plants)
	sc, err := DialShop(shopAddr, 5*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()

	spec, err := createReq(t).Spec()
	if err != nil {
		t.Fatal(err)
	}
	id, ad, err := sc.Create(spec)
	if err != nil {
		t.Fatal(err)
	}
	if ad.GetString(core.AttrState, "") != "running" {
		t.Errorf("state = %q", ad.GetString(core.AttrState, ""))
	}
	if _, err := sc.Query(id); err != nil {
		t.Fatal(err)
	}
	if err := sc.Suspend(id); err != nil {
		t.Fatal(err)
	}
	if err := sc.Resume(id); err != nil {
		t.Fatal(err)
	}
	if err := sc.Publish(id, "client-published"); err != nil {
		t.Fatal(err)
	}
	if err := sc.Destroy(id); err != nil {
		t.Fatal(err)
	}
	if _, err := sc.Query(id); err == nil {
		t.Error("query after destroy succeeded")
	}
	if err := sc.Destroy(id); err == nil {
		t.Error("double destroy succeeded")
	}
	// Invalid spec rejected client-side.
	bad := *spec
	bad.Domain = ""
	if _, _, err := sc.Create(&bad); err == nil {
		t.Error("invalid spec accepted")
	}
}
