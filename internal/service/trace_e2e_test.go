package service

import (
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"vmplants/internal/actions"
	"vmplants/internal/cluster"
	"vmplants/internal/core"
	"vmplants/internal/dag"
	"vmplants/internal/plant"
	"vmplants/internal/proto"
	"vmplants/internal/shop"
	"vmplants/internal/sim"
	"vmplants/internal/telemetry"
	"vmplants/internal/warehouse"
)

// dropListener closes the first drops accepted connections before the
// protocol can answer — the transient network failure the client's
// retry-with-redial policy exists for.
type dropListener struct {
	net.Listener
	mu    sync.Mutex
	drops int
}

func (l *dropListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return c, err
		}
		l.mu.Lock()
		drop := l.drops > 0
		if drop {
			l.drops--
		}
		l.mu.Unlock()
		if !drop {
			return c, nil
		}
		c.Close()
	}
}

// startTracedPlantDaemon is startPlantDaemon with a telemetry hub and,
// when drops > 0, a listener that kills the first connections.
func startTracedPlantDaemon(t *testing.T, name string, seed int64, drops int) (string, *telemetry.Hub) {
	t.Helper()
	hub := telemetry.New()
	hub.T().SetIDBase(telemetry.IDBaseForInstance(name))
	k := sim.NewKernel()
	k.SetTelemetry(hub)
	tb := cluster.NewTestbed(k, 1, cluster.DefaultParams(), seed)
	wh := warehouse.New(tb.Warehouse)
	im, err := warehouse.BuildGolden("base",
		core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048},
		warehouse.BackendVMware,
		[]dag.Action{act(actions.OpInstallOS, "distro", "redhat-8.0")})
	if err != nil {
		t.Fatal(err)
	}
	if err := wh.Publish(im); err != nil {
		t.Fatal(err)
	}
	pl := plant.New(name, tb.Nodes[0], wh, plant.Config{MaxVMs: 8, Telemetry: hub})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	var lis net.Listener = l
	if drops > 0 {
		lis = &dropListener{Listener: l, drops: drops}
	}
	go proto.Serve(lis, NewPlantHandler(NewRunner(k), pl))
	return l.Addr().String(), hub
}

// startTracedShopDaemon is startShopDaemon with a telemetry hub wired
// through the shop and its remote plant handles.
func startTracedShopDaemon(t *testing.T, plantAddrs map[string]string) (string, *telemetry.Hub) {
	t.Helper()
	hub := telemetry.New()
	hub.T().SetIDBase(telemetry.IDBaseForInstance("shop"))
	var handles []shop.PlantHandle
	for name, a := range plantAddrs {
		handles = append(handles, &RemotePlant{PlantName: name, Addr: a, Timeout: 5 * time.Second, Telemetry: hub})
	}
	s := shop.New("shop", handles, 7)
	s.SetTelemetry(hub)
	k := sim.NewKernel()
	k.SetTelemetry(hub)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	go proto.Serve(l, NewShopHandler(NewRunner(k), s))
	return l.Addr().String(), hub
}

// TestBatchCreateSpanTreesOverTCP drives a batch creation through real
// TCP daemons — one of which drops its first connections — and checks
// the end-to-end observability contract: spans merged across all three
// processes form exactly one rooted tree per creation, the plant-side
// subtree joins through the trace context on the message envelope, and
// the dropped connections surface as rpc.attempt retry spans inside
// those trees rather than as broken traces.
func TestBatchCreateSpanTreesOverTCP(t *testing.T) {
	addrA, hubA := startTracedPlantDaemon(t, "plantA", 1, 2)
	addrB, hubB := startTracedPlantDaemon(t, "plantB", 2, 0)
	shopAddr, shopHub := startTracedShopDaemon(t,
		map[string]string{"plantA": addrA, "plantB": addrB})

	c, err := proto.Dial(shopAddr, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const n = 4
	batch := &proto.BatchCreateRequest{}
	for i := 0; i < n; i++ {
		r := createReq(t)
		r.Name = fmt.Sprintf("trace-%d", i)
		batch.Items = append(batch.Items, *r)
	}
	resp, err := c.Call(&proto.Message{Kind: proto.KindBatchCreateRequest, BatchCreate: batch})
	if err != nil {
		t.Fatal(err)
	}
	var ids []string
	for i, item := range resp.BatchCreated.Items {
		if item.Err != "" {
			t.Fatalf("batch item %d failed: %s", i, item.Err)
		}
		ids = append(ids, item.VMID)
	}

	// Merge the three processes' span sets; the per-instance ID bases
	// must keep them disjoint.
	var spans []telemetry.Span
	for _, h := range []*telemetry.Hub{shopHub, hubA, hubB} {
		spans = append(spans, h.T().Spans()...)
	}
	inSet := map[uint64]bool{}
	for _, s := range spans {
		if inSet[s.ID] {
			t.Fatalf("span ID %d minted by two daemons", s.ID)
		}
		inSet[s.ID] = true
	}

	groups := map[uint64][]telemetry.Span{}
	for _, s := range spans {
		groups[s.TraceID] = append(groups[s.TraceID], s)
	}
	traceOf := map[string]uint64{}
	retried := false
	for _, s := range spans {
		if s.Name == "shop.create" {
			traceOf[s.Attr("vmid")] = s.TraceID
		}
		if s.Name == "rpc.attempt" && s.Attr("attempt") != "" && s.Attr("attempt") != "1" {
			retried = true
		}
	}
	if !retried {
		t.Error("dropped connections produced no rpc.attempt retry spans")
	}

	for _, id := range ids {
		trace, ok := traceOf[id]
		if !ok {
			t.Errorf("%s: no shop.create span", id)
			continue
		}
		group := groups[trace]
		inGroup := map[uint64]bool{}
		for _, s := range group {
			inGroup[s.ID] = true
		}
		roots := 0
		names := map[string]int{}
		for _, s := range group {
			names[s.Name]++
			if s.Parent == 0 {
				roots++
				if s.Name != "shop.create" {
					t.Errorf("%s: root span is %q, want shop.create", id, s.Name)
				}
			} else if !inGroup[s.Parent] {
				t.Errorf("%s: orphan span %q (parent %d not in trace %d)", id, s.Name, s.Parent, trace)
			}
		}
		if roots != 1 {
			t.Errorf("%s: trace %d has %d roots, want 1", id, trace, roots)
		}
		// The tree must cross all three layers: shop, the RPC boundary,
		// and the plant's clone pipeline.
		for _, want := range []string{"rpc.create-request", "plant.create", "clone"} {
			if names[want] == 0 {
				t.Errorf("%s: trace lacks a %q span", id, want)
			}
		}
	}
}
