package shop

import (
	"fmt"

	"vmplants/internal/classad"
	"vmplants/internal/core"
	"vmplants/internal/sim"
)

// The batched creation pipeline: CreateMany fans a batch of requests
// out over a bounded pool of worker processes, each running the full
// bid/dispatch/create flow concurrently in virtual time. Bidding rounds
// of different requests overlap with clone I/O of earlier ones, and
// per-plant admission control (the CloneSlots attribute plants
// advertise, tracked against the shop's own in-flight ledger) steers
// winners away from saturated plants so the batch spreads across the
// cluster instead of piling onto the one cheapest bidder.

// PipelineConfig tunes CreateMany.
type PipelineConfig struct {
	// Workers bounds how many creations are driven concurrently.
	// 0 derives 2× the plant count — enough to keep every plant's
	// admission slots fed without flooding bidding rounds.
	Workers int
}

// BatchResult is one request's outcome within a batch.
type BatchResult struct {
	// Index is the request's position in the specs slice.
	Index int
	VMID  core.VMID
	Ad    *classad.Ad
	Err   error
	// WaitSecs is the virtual time the request sat queued before a
	// worker picked it up.
	WaitSecs float64
}

// CreateMany creates a batch of VMs through the concurrent pipeline and
// returns per-request results in input order. A single-request batch
// takes the plain Create path inline, so it is byte-identical to a
// serial Create of the same spec under the same seed.
func (s *Shop) CreateMany(p *sim.Proc, specs []*core.Spec) []BatchResult {
	results := make([]BatchResult, len(specs))
	if len(specs) == 0 {
		return results
	}
	if len(specs) == 1 {
		id, ad, err := s.Create(p, specs[0])
		results[0] = BatchResult{VMID: id, Ad: ad, Err: err}
		return results
	}
	workers := s.Pipeline.Workers
	if workers <= 0 {
		workers = 2 * len(s.plants)
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	if workers < 1 {
		workers = 1
	}
	sp := s.tel.T().Start(p, "shop.batch_create").
		Set("shop", s.name).
		SetInt("requests", int64(len(specs))).
		SetInt("workers", int64(workers))

	// Shared dispatch state. Workers are kernel processes: exactly one
	// runs at a time and claim/advance happens without an intervening
	// yield, so plain ints are safe and the claim order — hence the
	// whole run — is deterministic.
	queued := p.Now()
	next, done := 0, 0
	client := p
	s.gBatchQueue.Set(int64(len(specs)))
	for w := 0; w < workers; w++ {
		p.Kernel().Spawn(fmt.Sprintf("%s/batch-worker-%d", s.name, w), func(wp *sim.Proc) {
			for {
				if next >= len(specs) {
					return
				}
				i := next
				next++
				s.gBatchQueue.Set(int64(len(specs) - next))
				wait := (wp.Now() - queued).Seconds()
				s.hBatchWait.Observe(wait)
				id, ad, err := s.Create(wp, specs[i])
				results[i] = BatchResult{Index: i, VMID: id, Ad: ad, Err: err, WaitSecs: wait}
				done++
				client.WakeUp()
			}
		})
	}
	for done < len(specs) {
		p.Wait(-1)
	}
	sp.End(p)
	return results
}

// noteDispatch records that a creation order is in flight on the named
// plant; the returned function retires it. The ledger backs the
// admission-aware winner filter in pickWinner.
func (s *Shop) noteDispatch(plant string) func() {
	s.mu.Lock()
	s.inflight[plant]++
	total := 0
	for _, n := range s.inflight {
		total += n
	}
	s.mu.Unlock()
	s.gInflight.Set(int64(total))
	return func() {
		s.mu.Lock()
		s.inflight[plant]--
		if s.inflight[plant] <= 0 {
			delete(s.inflight, plant)
		}
		total := 0
		for _, n := range s.inflight {
			total += n
		}
		s.mu.Unlock()
		s.gInflight.Set(int64(total))
	}
}

// InflightByPlant snapshots the shop's in-flight creation ledger.
func (s *Shop) InflightByPlant() map[string]int {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int, len(s.inflight))
	for n, c := range s.inflight {
		out[n] = c
	}
	return out
}

// admissible filters bids down to plants with a free advertised clone
// slot. Bids that don't advertise CloneSlots (older plants) are never
// filtered. With nothing in flight the filter passes every bid, so the
// serial path draws from exactly the pre-pipeline candidate set.
func (s *Shop) admissible(feasible []bid) []bid {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []bid
	for _, b := range feasible {
		if b.slots <= 0 || s.inflight[b.h.Name()] < b.slots {
			out = append(out, b)
		}
	}
	return out
}
