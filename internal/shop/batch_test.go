package shop

import (
	"fmt"
	"testing"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/plant"
	"vmplants/internal/sim"
)

func TestCreateManyAllSucceed(t *testing.T) {
	d := newDeployment(t, 4, plant.Config{MaxVMs: 32})
	d.shop.BidTimeout = time.Second
	specs := make([]*core.Spec, 12)
	for i := range specs {
		specs[i] = wsSpec(t, fmt.Sprintf("user%02d", i), "ufl.edu")
	}
	d.run(t, func(p *sim.Proc) {
		results := d.shop.CreateMany(p, specs)
		if len(results) != len(specs) {
			t.Fatalf("%d results for %d specs", len(results), len(specs))
		}
		seen := make(map[core.VMID]bool)
		for i, r := range results {
			if r.Err != nil {
				t.Fatalf("request %d: %v", i, r.Err)
			}
			if r.VMID == "" || seen[r.VMID] {
				t.Fatalf("request %d: bad or duplicate VMID %q", i, r.VMID)
			}
			seen[r.VMID] = true
			// Each VM is queryable afterwards — routes were recorded.
			if _, err := d.shop.Query(p, r.VMID); err != nil {
				t.Errorf("query %s: %v", r.VMID, err)
			}
		}
	})
	if got := d.shop.InflightByPlant(); len(got) != 0 {
		t.Errorf("in-flight ledger not drained: %v", got)
	}
}

// TestCreateManySpreadsLoad checks the admission-aware winner filter:
// under the free-memory cost model every idle plant bids the same, and
// a batch must land across plants rather than queuing on one.
func TestCreateManySpreadsLoad(t *testing.T) {
	d := newDeployment(t, 4, plant.Config{MaxVMs: 32, CloneSlots: 1})
	d.shop.BidTimeout = time.Second
	specs := make([]*core.Spec, 8)
	for i := range specs {
		specs[i] = wsSpec(t, fmt.Sprintf("user%02d", i), "ufl.edu")
	}
	d.run(t, func(p *sim.Proc) {
		for _, r := range d.shop.CreateMany(p, specs) {
			if r.Err != nil {
				t.Fatalf("batch create: %v", r.Err)
			}
		}
	})
	hosting := 0
	for _, pl := range d.plants {
		if pl.ActiveVMs() > 0 {
			hosting++
		}
	}
	if hosting < 2 {
		t.Errorf("batch of 8 landed on %d plant(s); admission filter should spread it", hosting)
	}
}

// TestCreateManySingleMatchesSerial is the shop-level determinism
// check: a one-element batch takes the identical code path as a serial
// Create, so same-seed runs must produce identical audit records.
func TestCreateManySingleMatchesSerial(t *testing.T) {
	render := func(batch bool) string {
		d := newDeployment(t, 4, plant.Config{MaxVMs: 32})
		var out string
		d.run(t, func(p *sim.Proc) {
			spec := wsSpec(t, "det", "ufl.edu")
			var id core.VMID
			var err error
			if batch {
				r := d.shop.CreateMany(p, []*core.Spec{spec})[0]
				id, err = r.VMID, r.Err
			} else {
				id, _, err = d.shop.Create(p, spec)
			}
			out = fmt.Sprintf("id=%s err=%v end=%s", id, err, p.Now())
		})
		for _, rec := range d.shop.Bids() {
			out += fmt.Sprintf("\nwinner=%s bids=%d", rec.Winner, len(rec.Costs))
		}
		return out
	}
	serial, batch := render(false), render(true)
	if serial != batch {
		t.Errorf("serial and single-batch runs diverged:\n--- serial ---\n%s\n--- batch ---\n%s", serial, batch)
	}
}

func TestCreateManyEmptyAndErrors(t *testing.T) {
	d := newDeployment(t, 2, plant.Config{MaxVMs: 1})
	d.shop.BidTimeout = time.Second
	d.run(t, func(p *sim.Proc) {
		if got := d.shop.CreateMany(p, nil); len(got) != 0 {
			t.Errorf("empty batch returned %d results", len(got))
		}
		// 2 plants × MaxVMs 1: a batch of 4 can place at most 2.
		specs := make([]*core.Spec, 4)
		for i := range specs {
			specs[i] = wsSpec(t, fmt.Sprintf("cap%d", i), "ufl.edu")
		}
		ok, failed := 0, 0
		for _, r := range d.shop.CreateMany(p, specs) {
			if r.Err != nil {
				failed++
			} else {
				ok++
			}
		}
		if ok != 2 || failed != 2 {
			t.Errorf("ok=%d failed=%d, want 2/2 with 2 one-VM plants", ok, failed)
		}
	})
}
