package shop

import (
	"time"
)

// BreakerConfig tunes the shop's per-plant circuit breakers. The
// breaker spares bidding rounds the cost of timing out against a plant
// that has failed repeatedly: after Threshold consecutive transport
// failures the plant is skipped outright (open), and after Cooldown of
// virtual time a single probe is allowed through (half-open) to find
// out whether it came back.
type BreakerConfig struct {
	// Threshold is the number of consecutive transport failures that
	// opens the breaker; 0 disables breakers entirely (the default, and
	// the legacy behavior).
	Threshold int
	// Cooldown is how long an open breaker refuses calls before
	// half-opening for a probe.
	Cooldown time.Duration
}

type breakerState int

const (
	breakerClosed breakerState = iota
	breakerOpen
	breakerHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is the per-plant failure gate. It is touched only by kernel
// processes (which the kernel serializes), so it needs no lock.
type breaker struct {
	cfg      BreakerConfig
	state    breakerState
	failures int           // consecutive, while closed
	openedAt time.Duration // virtual time the breaker last opened
}

// allow reports whether a call to the plant may proceed at virtual time
// now, half-opening an open breaker whose cooldown has elapsed.
func (b *breaker) allow(now time.Duration) bool {
	if b == nil || b.cfg.Threshold <= 0 {
		return true
	}
	switch b.state {
	case breakerOpen:
		if now-b.openedAt >= b.cfg.Cooldown {
			b.state = breakerHalfOpen
			return true
		}
		return false
	default: // closed or half-open (the probe is in flight)
		return true
	}
}

// onSuccess records a successful call: the probe (or any call) closes
// the breaker and clears the failure streak.
func (b *breaker) onSuccess() {
	if b == nil || b.cfg.Threshold <= 0 {
		return
	}
	b.state = breakerClosed
	b.failures = 0
}

// onFailure records a transport failure at virtual time now and reports
// whether the breaker transitioned to open.
func (b *breaker) onFailure(now time.Duration) bool {
	if b == nil || b.cfg.Threshold <= 0 {
		return false
	}
	switch b.state {
	case breakerHalfOpen:
		// The probe failed: straight back to open for another cooldown.
		b.state = breakerOpen
		b.openedAt = now
		return true
	default:
		b.failures++
		if b.failures >= b.cfg.Threshold {
			b.state = breakerOpen
			b.openedAt = now
			return true
		}
	}
	return false
}

// breakerFor returns (lazily creating) the named plant's breaker.
func (s *Shop) breakerFor(name string) *breaker {
	if s.Breaker.Threshold <= 0 {
		return nil
	}
	b, ok := s.breakers[name]
	if !ok {
		b = &breaker{cfg: s.Breaker}
		s.breakers[name] = b
	}
	return b
}

// noteSuccess closes the plant's breaker after a successful call.
func (s *Shop) noteSuccess(name string) {
	s.breakerFor(name).onSuccess()
}

// noteFailure records a transport failure against the plant's breaker
// and emits the transition counter when it opens.
func (s *Shop) noteFailure(now time.Duration, name string) {
	if s.breakerFor(name).onFailure(now) {
		s.mBreakerOpens.Inc()
		s.gOpenBreakers.Set(int64(s.openBreakers()))
	}
}

// openBreakers counts breakers currently refusing traffic.
func (s *Shop) openBreakers() int {
	n := 0
	for _, b := range s.breakers {
		if b.state == breakerOpen {
			n++
		}
	}
	return n
}

// BreakerState reports the named plant's breaker state — "closed",
// "open" or "half-open" — for tests and debug endpoints.
func (s *Shop) BreakerState(name string) string {
	if b, ok := s.breakers[name]; ok {
		return b.state.String()
	}
	return breakerClosed.String()
}
