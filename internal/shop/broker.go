package shop

import (
	"fmt"

	"vmplants/internal/classad"
	"vmplants/internal/core"
	"vmplants/internal/sim"
)

// Broker is a VMBroker (paper §3.1: the shop collects bids from plants
// "directly, or indirectly through VMBrokers"): it fronts a group of
// plants — typically a site or sub-cluster — behind the PlantHandle
// interface. Its bid is the best bid among its plants; a creation order
// is forwarded to whichever of them produced it, and queries and
// collections fan out to the plant holding the VM.
type Broker struct {
	name   string
	plants []PlantHandle
	routes map[core.VMID]PlantHandle
}

// NewBroker fronts the given plants.
func NewBroker(name string, plants []PlantHandle) *Broker {
	return &Broker{name: name, plants: plants, routes: make(map[core.VMID]PlantHandle)}
}

// Name implements PlantHandle.
func (b *Broker) Name() string { return b.name }

// Plants returns the fronted handles.
func (b *Broker) Plants() []PlantHandle { return append([]PlantHandle(nil), b.plants...) }

// bestBid collects the fronted plants' bids and returns the cheapest
// feasible one with its plant and resource ad.
func (b *Broker) bestBid(p *sim.Proc, spec *core.Spec) (PlantHandle, core.Cost, *classad.Ad) {
	var winner PlantHandle
	var winnerAd *classad.Ad
	best := core.Infeasible
	for _, h := range b.plants {
		c, ad, err := h.Estimate(p, spec)
		if err != nil || !c.OK() {
			continue
		}
		if winner == nil || c < best {
			winner, best, winnerAd = h, c, ad
		}
	}
	return winner, best, winnerAd
}

// Estimate implements PlantHandle: the broker's bid is its best
// internal bid, carrying the winning plant's resource ad.
func (b *Broker) Estimate(p *sim.Proc, spec *core.Spec) (core.Cost, *classad.Ad, error) {
	winner, best, ad := b.bestBid(p, spec)
	if winner == nil {
		return core.Infeasible, nil, nil
	}
	return best, ad, nil
}

// Create implements PlantHandle: the order goes to the current best
// internal bidder (bids are re-collected, since load may have moved
// between the shop's estimate round and the order).
func (b *Broker) Create(p *sim.Proc, id core.VMID, spec *core.Spec) (*classad.Ad, error) {
	winner, _, _ := b.bestBid(p, spec)
	if winner == nil {
		return nil, fmt.Errorf("broker %s: no feasible plant", b.name)
	}
	ad, err := winner.Create(p, id, spec)
	if err != nil {
		return nil, err
	}
	b.routes[id] = winner
	return ad, nil
}

// resolve finds the plant holding id, checking the broker's route cache
// and falling back to a sweep.
func (b *Broker) resolve(p *sim.Proc, id core.VMID) (PlantHandle, bool) {
	if h, ok := b.routes[id]; ok {
		return h, true
	}
	for _, h := range b.plants {
		if _, found, err := h.Query(p, id); err == nil && found {
			b.routes[id] = h
			return h, true
		}
	}
	return nil, false
}

// Query implements PlantHandle.
func (b *Broker) Query(p *sim.Proc, id core.VMID) (*classad.Ad, bool, error) {
	h, ok := b.resolve(p, id)
	if !ok {
		return nil, false, nil
	}
	return h.Query(p, id)
}

// Collect implements PlantHandle.
func (b *Broker) Collect(p *sim.Proc, id core.VMID) (bool, error) {
	h, ok := b.resolve(p, id)
	if !ok {
		return false, nil
	}
	found, err := h.Collect(p, id)
	if err == nil {
		delete(b.routes, id)
	}
	return found, err
}

// Publish implements PlantHandle.
func (b *Broker) Publish(p *sim.Proc, id core.VMID, image string) error {
	h, ok := b.resolve(p, id)
	if !ok {
		return fmt.Errorf("broker %s: no plant holds VM %s", b.name, id)
	}
	return h.Publish(p, id, image)
}

// Lifecycle implements PlantHandle.
func (b *Broker) Lifecycle(p *sim.Proc, id core.VMID, op string) error {
	h, ok := b.resolve(p, id)
	if !ok {
		return fmt.Errorf("broker %s: no plant holds VM %s", b.name, id)
	}
	return h.Lifecycle(p, id, op)
}

// List implements PlantHandle: the union of the fronted plants'
// inventories. Unreachable plants contribute nothing; the broker only
// errors when every fronted plant is unreachable, since a partial
// inventory is still useful for route recovery.
func (b *Broker) List(p *sim.Proc) ([]core.VMID, error) {
	var out []core.VMID
	var lastErr error
	reachable := 0
	for _, h := range b.plants {
		ids, err := h.List(p)
		if err != nil {
			lastErr = err
			continue
		}
		reachable++
		out = append(out, ids...)
	}
	if reachable == 0 && lastErr != nil {
		return nil, lastErr
	}
	return out, nil
}
