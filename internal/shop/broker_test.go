package shop

import (
	"testing"

	"vmplants/internal/cluster"
	"vmplants/internal/core"
	"vmplants/internal/cost"
	"vmplants/internal/dag"
	"vmplants/internal/plant"
	"vmplants/internal/sim"
	"vmplants/internal/warehouse"
)

// brokeredDeployment builds a shop over two brokers, each fronting two
// plants (four nodes total).
func brokeredDeployment(t *testing.T) (*sim.Kernel, *Shop, []*LocalHandle) {
	t.Helper()
	k := sim.NewKernel()
	tb := cluster.NewTestbed(k, 4, cluster.DefaultParams(), 21)
	wh := warehouse.New(tb.Warehouse)
	im, err := warehouse.BuildGolden("ws-golden",
		core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048},
		warehouse.BackendVMware,
		goldenHistory())
	if err != nil {
		t.Fatal(err)
	}
	if err := wh.Publish(im); err != nil {
		t.Fatal(err)
	}
	var locals []*LocalHandle
	mk := func(node int) PlantHandle {
		model, _ := cost.ByName("free-memory")
		pl := plant.New(tb.Nodes[node].Name(), tb.Nodes[node], wh, plant.Config{MaxVMs: 4, CostModel: model})
		h := NewLocalHandle(pl)
		locals = append(locals, h)
		return h
	}
	siteA := NewBroker("site-a", []PlantHandle{mk(0), mk(1)})
	siteB := NewBroker("site-b", []PlantHandle{mk(2), mk(3)})
	return k, New("shop", []PlantHandle{siteA, siteB}, 99), locals
}

func goldenHistory() []dag.Action {
	return []dag.Action{
		act("install-os", "distro", "mandrake-8.1"),
		act("install-package", "name", "vnc-server"),
	}
}

func TestShopThroughBrokers(t *testing.T) {
	k, s, _ := brokeredDeployment(t)
	var id core.VMID
	k.Spawn("client", func(p *sim.Proc) {
		var err error
		id, _, err = s.Create(p, wsSpec(t, "u1", "ufl.edu"))
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		// Query and destroy route through the broker's resolution.
		ad, err := s.Query(p, id)
		if err != nil || ad.GetString(core.AttrVMID, "") != string(id) {
			t.Errorf("query: %v, %v", ad, err)
		}
		if err := s.Destroy(p, id); err != nil {
			t.Errorf("destroy: %v", err)
		}
	})
	if res := k.Run(0); len(res.Stranded) != 0 {
		t.Fatalf("stranded: %v", res.Stranded)
	}
}

func TestBrokerSpreadsLoadInternally(t *testing.T) {
	k, s, locals := brokeredDeployment(t)
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 8; i++ {
			if _, _, err := s.Create(p, wsSpec(t, "u"+string(rune('a'+i)), "ufl.edu")); err != nil {
				t.Errorf("create %d: %v", i, err)
				return
			}
		}
		// 8 VMs across 4 plants of capacity 4: with memory-based
		// bidding inside each broker, every plant hosts some.
		for _, h := range locals {
			if h.Plant.ActiveVMs() == 0 {
				t.Errorf("plant %s got no VMs", h.Name())
			}
		}
	})
	if res := k.Run(0); len(res.Stranded) != 0 {
		t.Fatalf("stranded: %v", res.Stranded)
	}
}

func TestBrokerCapacityExhaustion(t *testing.T) {
	k, s, _ := brokeredDeployment(t)
	k.Spawn("client", func(p *sim.Proc) {
		for i := 0; i < 16; i++ { // exactly the fleet capacity
			if _, _, err := s.Create(p, wsSpec(t, "u"+string(rune('a'+i)), "ufl.edu")); err != nil {
				t.Errorf("create %d: %v", i, err)
				return
			}
		}
		if _, _, err := s.Create(p, wsSpec(t, "uz", "ufl.edu")); err == nil {
			t.Error("create beyond fleet capacity succeeded")
		}
	})
	if res := k.Run(0); len(res.Stranded) != 0 {
		t.Fatalf("stranded: %v", res.Stranded)
	}
}

func TestBrokerPublishRoutes(t *testing.T) {
	k, s, _ := brokeredDeployment(t)
	k.Spawn("client", func(p *sim.Proc) {
		id, _, err := s.Create(p, wsSpec(t, "u1", "ufl.edu"))
		if err != nil {
			t.Errorf("create: %v", err)
			return
		}
		if err := s.Publish(p, id, "published-via-broker"); err != nil {
			t.Errorf("publish: %v", err)
		}
		if err := s.Publish(p, "vm-ghost-1", "x"); err == nil {
			t.Error("publish of unknown VM succeeded")
		}
	})
	if res := k.Run(0); len(res.Stranded) != 0 {
		t.Fatalf("stranded: %v", res.Stranded)
	}
}
