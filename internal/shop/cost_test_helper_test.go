package shop

import "vmplants/internal/cost"

// costModel resolves a model name for tests.
func costModel(name string) (cost.Model, error) { return cost.ByName(name) }
