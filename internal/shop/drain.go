// Safe drain and retirement: the shop-side half of the elastic fleet.
//
// Draining takes a plant out of the bidding rotation without dropping a
// single creation: a drain-begin record is synced before any side
// effect, the plant stops bidding (shop-side eligibility filter plus
// the plant's own Draining classad marker), dispatches already in
// flight finish normally, and the hosted VMs are migrated to the
// remaining plants — or awaited, when migration is refused (a lazy
// clone still hydrating, a suspended VM) — before a retirement record
// makes the exit durable. The two journal records bracket the protocol
// so a shop killed mid-drain resumes it on restart instead of
// forgetting it, and replay removes retired plants from the candidate
// set before any intent is reconciled or re-driven: a retired plant can
// never be routed to again.
package shop

import (
	"fmt"
	"sort"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/journal"
	"vmplants/internal/sim"
)

// Drainable is the optional capability of plant handles whose plant can
// be told to stop bidding. LocalHandle implements it; remote handles
// without it still drain correctly — the shop-side eligibility filter
// and dispatch recheck carry the protocol alone, the plant just keeps
// advertising until its ad expires.
type Drainable interface {
	// SetDraining marks (or unmarks) the plant as draining.
	SetDraining(on bool)
	// Retire marks the plant permanently retired.
	Retire()
}

// LivenessProbe is the optional capability of plant handles that can
// answer "is the daemon up right now?" without a round trip — the
// dispatch-time recheck that catches bids gone stale when a plant
// crashed after bidding.
type LivenessProbe interface {
	Alive() bool
}

// Migrator is the optional capability of plant handles that can move a
// hosted VM to another plant (both in-process under the simulation
// kernel). Drains on handles without it simply await their VMs instead
// of migrating them.
type Migrator interface {
	MigrateVM(p *sim.Proc, id core.VMID, dst PlantHandle) error
}

// drainPoll is how often a drain re-checks for in-flight work and
// unmigratable VMs while waiting them out.
const drainPoll = time.Second

// plantByName finds a wired plant handle, including one already
// draining (a drain must keep reaching the plant it is emptying).
func (s *Shop) plantByName(name string) PlantHandle {
	for _, h := range s.plants {
		if h.Name() == name {
			return h
		}
	}
	return nil
}

// Draining reports whether the named plant is draining (or retired).
func (s *Shop) Draining(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.draining[name] || s.retired[name]
}

// Retired reports whether the named plant has been retired.
func (s *Shop) Retired(name string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.retired[name]
}

// eligiblePlants is the candidate set for a bidding round: every wired
// plant that is neither draining nor retired.
func (s *Shop) eligiblePlants() []PlantHandle {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]PlantHandle, 0, len(s.plants))
	for _, h := range s.plants {
		if s.draining[h.Name()] || s.retired[h.Name()] {
			continue
		}
		out = append(out, h)
	}
	return out
}

// dispatchOK is the moment-of-dispatch recheck: a bid was collected at
// round start, but the plant may have begun draining — or died — since.
// Dispatching anyway would either park a fresh creation on a plant
// trying to empty itself or burn a call timeout on a corpse; the caller
// skips the stale bid and re-picks instead.
func (s *Shop) dispatchOK(h PlantHandle) bool {
	s.mu.Lock()
	stale := s.draining[h.Name()] || s.retired[h.Name()]
	s.mu.Unlock()
	if stale {
		return false
	}
	if probe, ok := h.(LivenessProbe); ok && !probe.Alive() {
		return false
	}
	return true
}

// BeginDrain starts draining the named plant: the drain-begin record is
// synced before any side effect, so a daemon killed at any later point
// resumes the drain on restart. Idempotent — re-beginning an open drain
// (the restart path) neither re-journals nor errors.
func (s *Shop) BeginDrain(p *sim.Proc, name string) error {
	if s.down {
		return ErrShopDown
	}
	h := s.plantByName(name)
	if h == nil {
		return fmt.Errorf("shop %s: no plant %s to drain", s.name, name)
	}
	s.mu.Lock()
	if s.retired[name] {
		s.mu.Unlock()
		return fmt.Errorf("shop %s: plant %s already retired", s.name, name)
	}
	open := s.draining[name]
	s.mu.Unlock()
	if open {
		return nil
	}
	if s.jnl != nil {
		s.jnl.AppendSync(p, journal.Record{Kind: journal.PlantDrainBegin, Key: name})
	}
	s.mu.Lock()
	s.draining[name] = true
	s.mu.Unlock()
	if d, ok := h.(Drainable); ok {
		d.SetDraining(true)
	}
	s.mDrains.Inc()
	return nil
}

// DrainAndRetire runs the full drain protocol on the named plant:
// drain-begin, wait out in-flight dispatches, migrate (or await) every
// hosted VM, then sync the retirement record and remove the plant from
// the fleet. Blocks in virtual time until the plant is empty. The
// "drain" chaos point sits right after the begin record — the widest
// crash window, which the restart-time drain resume must close.
func (s *Shop) DrainAndRetire(p *sim.Proc, name string) error {
	if err := s.BeginDrain(p, name); err != nil {
		return err
	}
	// Chaos point: the daemon dies with the drain open. Restart replays
	// the drain-begin record and ResumeDrains finishes the job.
	if s.killIf("drain") {
		return ErrShopDown
	}
	return s.finishDrain(p, name)
}

// OpenDrains lists plants whose drain began but whose retirement record
// never landed — the drains a restarted shop must resume.
func (s *Shop) OpenDrains() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var open []string
	for name := range s.draining {
		if !s.retired[name] {
			open = append(open, name)
		}
	}
	sort.Strings(open)
	return open
}

// ResumeDrains finishes every open drain — the restart-time
// continuation of DrainAndRetire calls the crash interrupted.
func (s *Shop) ResumeDrains(p *sim.Proc) error {
	for _, name := range s.OpenDrains() {
		if err := s.finishDrain(p, name); err != nil {
			return err
		}
	}
	return nil
}

// finishDrain is the back half of the protocol: empty the plant, then
// retire it durably.
func (s *Shop) finishDrain(p *sim.Proc, name string) error {
	if s.Retired(name) {
		return nil // another drainer already finished the job
	}
	h := s.plantByName(name)
	if h == nil {
		return fmt.Errorf("shop %s: no plant %s to drain", s.name, name)
	}
	// In-flight dispatches (orders handed to the plant before the drain
	// began) run to completion; the plant accepts them, it only refuses
	// new ones.
	for s.inflightOf(name) > 0 {
		if s.down {
			return ErrShopDown
		}
		p.Sleep(drainPoll)
	}
	// Evacuate: every VM routed to the draining plant is migrated to an
	// eligible plant. A refused migration (destination full, lazy clone
	// still hydrating, suspended VM) is awaited and retried — hydration
	// lands, clients collect, capacity frees — so the loop always makes
	// progress in virtual time without ever abandoning a VM.
	for {
		if s.down {
			return ErrShopDown
		}
		ids := s.routedTo(h)
		if len(ids) == 0 {
			break
		}
		moved := false
		for _, id := range ids {
			dst := s.migrationTarget(h)
			m, ok := h.(Migrator)
			if !ok || dst == nil {
				continue // no way to move it: await collection
			}
			if err := m.MigrateVM(p, id, dst); err != nil {
				continue // refused now; retry next pass
			}
			s.routes[id] = dst
			s.journalMigrate(p, id, dst.Name())
			s.mMigratedVMs.Inc()
			moved = true
		}
		if !moved {
			p.Sleep(drainPoll)
		}
	}
	// The plant is empty and invisible to new work: make the exit
	// durable, then drop it from the fleet. Replay of this record strips
	// the plant from every restart's candidate set before reconciliation
	// runs, so nothing can ever be routed to it again. A concurrent
	// drainer of the same plant may have retired it while this one slept
	// in the evacuation loop — exactly one retirement record lands.
	if s.Retired(name) {
		return nil
	}
	if s.jnl != nil {
		s.jnl.AppendSync(p, journal.Record{Kind: journal.PlantRetired, Key: name})
	}
	s.mu.Lock()
	s.retired[name] = true
	s.mu.Unlock()
	s.plants = without(s.plants, h)
	if d, ok := h.(Drainable); ok {
		d.Retire()
	}
	s.mRetires.Inc()
	return nil
}

// AddPlant wires a new plant into the fleet — the scale-up half of
// elasticity. A name collision with a wired or retired plant is
// refused: retirement is forever, and the journal's drain records are
// keyed by name.
func (s *Shop) AddPlant(h PlantHandle) error {
	name := h.Name()
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.retired[name] {
		return fmt.Errorf("shop %s: plant name %s is retired", s.name, name)
	}
	for _, cur := range s.plants {
		if cur.Name() == name {
			return fmt.Errorf("shop %s: plant %s already wired", s.name, name)
		}
	}
	s.plants = append(s.plants, h)
	return nil
}

// inflightOf reads one plant's dispatched-not-done count.
func (s *Shop) inflightOf(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.inflight[name]
}

// routedTo lists the VMs the shop routes to the given plant, in VMID
// order for deterministic migration order.
func (s *Shop) routedTo(h PlantHandle) []core.VMID {
	var ids []core.VMID
	for id, r := range s.routes {
		if r == h {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// migrationTarget picks where an evacuated VM goes: the eligible,
// reachable plant with the fewest VMs routed to it (name-ordered ties),
// spreading the refugees instead of dumping them on one node.
func (s *Shop) migrationTarget(from PlantHandle) PlantHandle {
	var best PlantHandle
	bestLoad := 0
	for _, h := range s.eligiblePlants() {
		if h == from {
			continue
		}
		if probe, ok := h.(LivenessProbe); ok && !probe.Alive() {
			continue
		}
		load := len(s.routedTo(h))
		if best == nil || load < bestLoad || (load == bestLoad && h.Name() < best.Name()) {
			best, bestLoad = h, load
		}
	}
	return best
}

// PlantFleetStatus is one plant's row in the fleet snapshot.
type PlantFleetStatus struct {
	Name string `json:"name"`
	// State is "active", "draining" or "retired".
	State string `json:"state"`
	// ActiveVMs is the plant's hosted-VM count (-1 when the handle
	// cannot report it without a round trip).
	ActiveVMs int `json:"active_vms"`
	// Inflight is this shop's dispatched-not-done count for the plant.
	Inflight int `json:"inflight"`
}

// FleetStatus is a snapshot of the shop's elastic-fleet state, served
// by the daemon's /debug/fleet endpoint and vmctl fleet.
type FleetStatus struct {
	Shop           string             `json:"shop"`
	Plants         []PlantFleetStatus `json:"plants"`
	AdmissionQueue int                `json:"admission_queue"`
	InflightAtGate int                `json:"inflight_at_gate"`
	ShedCreates    int64              `json:"shed_creates"`
	StaleBids      int64              `json:"stale_bids"`
	Drains         int64              `json:"drains"`
	Retirements    int64              `json:"retirements"`
}

// vmCounter is the optional capability of handles that can report the
// plant's hosted-VM count without a round trip (LocalHandle).
type vmCounter interface {
	ActiveVMs() int
}

// Fleet snapshots per-plant drain state, the admission gate, and the
// overload counters. Retired plants stay in the report — an operator
// asking "where did node03 go?" deserves an answer.
func (s *Shop) Fleet() FleetStatus {
	st := FleetStatus{
		Shop:           s.name,
		AdmissionQueue: s.AdmissionQueueLen(),
		InflightAtGate: s.InflightCreates(),
		ShedCreates:    s.mShedCreates.Value(),
		StaleBids:      s.mStaleBids.Value(),
		Drains:         s.mDrains.Value(),
		Retirements:    s.mRetires.Value(),
	}
	s.mu.Lock()
	seen := make(map[string]bool, len(s.plants))
	names := make([]string, 0, len(s.plants)+len(s.retired))
	for _, h := range s.plants {
		names = append(names, h.Name())
		seen[h.Name()] = true
	}
	for name := range s.retired {
		if !seen[name] {
			names = append(names, name)
		}
	}
	s.mu.Unlock()
	sort.Strings(names)
	for _, name := range names {
		row := PlantFleetStatus{Name: name, State: "active", ActiveVMs: -1}
		s.mu.Lock()
		if s.retired[name] {
			row.State = "retired"
			row.ActiveVMs = 0
		} else if s.draining[name] {
			row.State = "draining"
		}
		row.Inflight = s.inflight[name]
		s.mu.Unlock()
		if row.State != "retired" {
			if h := s.plantByName(name); h != nil {
				if vc, ok := h.(vmCounter); ok {
					row.ActiveVMs = vc.ActiveVMs()
				}
			}
		}
		st.Plants = append(st.Plants, row)
	}
	return st
}

// journalMigrate records a drain-time migration's new route, synced:
// the retirement record that follows must never be durable while the
// route still points at the retiring plant.
func (s *Shop) journalMigrate(p *sim.Proc, id core.VMID, plant string) {
	if s.jnl == nil {
		return
	}
	s.jnl.AppendSync(p, journal.Record{
		Kind: journal.RouteChange, Key: string(id),
		Fields: map[string]string{"endpoint": journal.EndpointPlant, "plant": plant},
	})
}
