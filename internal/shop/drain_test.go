package shop

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/fault"
	"vmplants/internal/plant"
	"vmplants/internal/sim"
	"vmplants/internal/telemetry"
	"vmplants/internal/vdisk"
)

// seedPlantB parks one VM of an off-domain directly on the deployment's
// second plant, so plant 0 always bids strictly cheaper for the test
// domain (plant 1 pays the same new-network cost plus one more VM of
// compute) — deterministic winners without touching the tie-break RNG.
func seedPlantB(t *testing.T, p *sim.Proc, d *deployment) {
	t.Helper()
	if _, err := d.plants[1].Create(p, "vm-seed-b", wsSpec(t, "seed", "seed.org")); err != nil {
		t.Fatal(err)
	}
}

// Regression for the stale-bid dispatch race: plant 0 bids (cheapest)
// in a concurrent round, begins draining while the round is still open
// waiting on plant 1's delayed estimate, and the round then closes with
// plant 0's now-stale bid in hand. The dispatch-time recheck must skip
// the draining winner and re-pick — counting a stale bid, not a
// failover (nothing was dispatched), and never handing the draining
// plant the order. Before the recheck existed this test failed:
// dispatch reached the draining plant, which refused with a transient
// error, and the creation burned a round trip and a failover.
func TestStaleBidRecheckedAtDispatch(t *testing.T) {
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32})
	hub := telemetry.New()
	d.shop.SetTelemetry(hub)
	d.shop.BidTimeout = 2 * time.Second
	reg := fault.NewRegistry(5)
	d.handles[1].Faults = reg
	reg.SetDelay(d.handles[1].Name(), fault.RPCDelay, "estimate", 500*time.Millisecond)
	reg.Arm(d.handles[1].Name(), fault.RPCDelay, "estimate", 1)

	d.run(t, func(p *sim.Proc) {
		seedPlantB(t, p, d)
		p.Kernel().Spawn("drainer", func(dp *sim.Proc) {
			// Plant 0's bid lands in ~8 ms; plant 1's not before 500 ms.
			// The drain begins squarely inside that window.
			dp.Sleep(250 * time.Millisecond)
			if err := d.shop.BeginDrain(dp, d.handles[0].Name()); err != nil {
				t.Error(err)
			}
		})
		id, ad, err := d.shop.Create(p, wsSpec(t, "ivan", "ufl.edu"))
		if err != nil {
			t.Fatal(err)
		}
		if got := ad.GetString(core.AttrPlant, ""); got != d.handles[1].Name() {
			t.Errorf("VM landed on %s, want the non-draining %s", got, d.handles[1].Name())
		}
		if n := hub.Counter("shop.stale_bids").Value(); n != 1 {
			t.Errorf("stale_bids = %d, want 1", n)
		}
		if n := hub.Counter("shop.failovers").Value(); n != 0 {
			t.Errorf("failovers = %d, want 0 (a stale-bid skip is not a dispatch failure)", n)
		}
		if d.shop.RouteOf(id) != d.handles[1].Name() {
			t.Errorf("route = %s", d.shop.RouteOf(id))
		}
	})
}

// Drain-vs-inflight property sweep: one creation is started on the
// plant that will win the auction, and a competing drain of that plant
// begins after every boundary of the creation pipeline — before the
// round (bid not yet won), right at dispatch, during the clone state
// copy, while the lazy clone hydrates, and during configuration. In
// every interleaving the invariant is the same: the creation completes
// (on the drained plant and is then migrated off, or failed over to the
// other plant mid-round), the drain retires an empty plant, and exactly
// the expected VMs exist afterwards — never an orphan, never a VM
// stranded on a retired plant.
func TestDrainVsInflightSweep(t *testing.T) {
	delays := []struct {
		name  string
		delay time.Duration
	}{
		{"before-round", 0},
		{"bid-won", 20 * time.Millisecond},
		{"admitted", 120 * time.Millisecond},
		{"cloning", 2 * time.Second},
		{"hydrating", 20 * time.Second},
		{"configuring", 2 * time.Minute},
	}
	for _, tc := range delays {
		t.Run(tc.name, func(t *testing.T) {
			d := newDeployment(t, 2, plant.Config{MaxVMs: 32, CloneMode: vdisk.CloneByLazy})
			target := d.handles[0].Name()
			d.run(t, func(p *sim.Proc) {
				seedPlantB(t, p, d)
				var drained bool
				p.Kernel().Spawn("drainer", func(dp *sim.Proc) {
					dp.Sleep(tc.delay)
					if err := d.shop.DrainAndRetire(dp, target); err != nil {
						t.Errorf("drain at %s: %v", tc.name, err)
					}
					drained = true
				})
				id, _, err := d.shop.Create(p, wsSpec(t, "ivan", "ufl.edu"))
				if err != nil {
					t.Fatalf("create with drain at %s: %v", tc.name, err)
				}
				// Let the drain finish before auditing.
				for !drained {
					p.Sleep(time.Second)
				}
				if !d.shop.Retired(target) {
					t.Error("plant not retired")
				}
				if n := d.plants[0].ActiveVMs(); n != 0 {
					t.Errorf("retired plant still hosts %d VMs", n)
				}
				if total := d.plants[0].ActiveVMs() + d.plants[1].ActiveVMs(); total != 2 {
					t.Errorf("%d VMs exist, want 2 (the creation and the seed)", total)
				}
				if _, err := d.shop.Query(p, id); err != nil {
					t.Errorf("created VM lost after drain: %v", err)
				}
				if r := d.shop.RouteOf(id); r == target {
					t.Errorf("route still points at retired plant %s", r)
				}
				// A retired plant never re-enters the rotation.
				if _, ad, err := d.shop.Create(p, wsSpec(t, "ana", "ufl.edu")); err != nil {
					t.Fatal(err)
				} else if got := ad.GetString(core.AttrPlant, ""); got == target {
					t.Errorf("new creation landed on retired plant %s", got)
				}
			})
		})
	}
}

// kill -9 lands immediately after the drain-begin record: the daemon
// forgets everything soft, but the journal remembers the open drain.
// Restart must resume and finish it — migrating the hosted VMs off,
// retiring the plant durably — and no re-drive or later creation may
// ever route to the retired plant, across yet another kill/restart.
func TestKillMidDrainResumesOnRestart(t *testing.T) {
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32})
	_, reg := journaled(d)
	reg.Arm("shop", fault.DaemonKill, "drain", 1)
	target := d.handles[0].Name()
	d.run(t, func(p *sim.Proc) {
		seedPlantB(t, p, d)
		var ids []core.VMID
		for i := 0; i < 3; i++ {
			id, _, err := d.shop.Create(p, wsSpec(t, fmt.Sprintf("u%d", i), "ufl.edu"))
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		if err := d.shop.DrainAndRetire(p, target); !errors.Is(err, ErrShopDown) {
			t.Fatalf("drain survived the kill: %v", err)
		}
		if _, err := d.shop.Restart(p); err != nil {
			t.Fatal(err)
		}
		open := d.shop.OpenDrains()
		if len(open) != 1 || open[0] != target {
			t.Fatalf("OpenDrains = %v, want [%s]", open, target)
		}
		if !d.plants[0].Draining() {
			t.Error("replay did not re-mark the plant draining")
		}
		if err := d.shop.ResumeDrains(p); err != nil {
			t.Fatal(err)
		}
		if !d.shop.Retired(target) || !d.plants[0].RetiredPlant() {
			t.Error("resumed drain did not retire the plant")
		}
		if n := d.plants[0].ActiveVMs(); n != 0 {
			t.Errorf("retired plant still hosts %d VMs", n)
		}
		// Every VM survived the drain: queryable, not routed to the corpse.
		for _, id := range ids {
			if _, err := d.shop.Query(p, id); err != nil {
				t.Errorf("VM %s lost across the drain: %v", id, err)
			}
			if r := d.shop.RouteOf(id); r == target || r == "" {
				t.Errorf("VM %s routed to %q after retirement", id, r)
			}
		}
		// Retirement is durable: a second kill -9 and restart must not
		// resurrect the plant, and reconciliation must not touch it.
		d.shop.Kill()
		if _, err := d.shop.Restart(p); err != nil {
			t.Fatal(err)
		}
		if !d.shop.Retired(target) {
			t.Error("retirement lost across kill/restart")
		}
		if len(d.shop.OpenDrains()) != 0 {
			t.Errorf("OpenDrains after retirement = %v", d.shop.OpenDrains())
		}
		for _, h := range d.shop.Plants() {
			if h.Name() == target {
				t.Error("retired plant re-entered the fleet on restart")
			}
		}
		if _, ad, err := d.shop.Create(p, wsSpec(t, "after", "ufl.edu")); err != nil {
			t.Fatal(err)
		} else if got := ad.GetString(core.AttrPlant, ""); got == target {
			t.Errorf("post-restart creation landed on retired plant %s", got)
		}
	})
}

// The bounded front door: a burst beyond the queue bound is shed with
// ErrOverload — transient by construction, so every shed client's
// backoff-and-retry eventually lands. Nothing is built or journaled for
// a shed request.
func TestOverloadShedsRetryably(t *testing.T) {
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32})
	hub := telemetry.New()
	d.shop.SetTelemetry(hub)
	d.shop.SetAdmission(AdmissionConfig{MaxInflight: 1, MaxQueue: 1})
	const clients = 6
	var done, shed int
	for i := 0; i < clients; i++ {
		i := i
		d.k.Spawn(fmt.Sprintf("client%d", i), func(p *sim.Proc) {
			for {
				_, _, err := d.shop.Create(p, wsSpec(t, fmt.Sprintf("u%d", i), "ufl.edu"))
				if err == nil {
					done++
					return
				}
				if !errors.Is(err, ErrOverload) {
					t.Errorf("client %d: non-overload failure: %v", i, err)
					return
				}
				if !errors.Is(err, core.ErrTransient) {
					t.Errorf("client %d: shed error is not transient: %v", i, err)
					return
				}
				shed++
				p.Sleep(30 * time.Second)
			}
		})
	}
	res := d.k.Run(0)
	if len(res.Stranded) != 0 {
		t.Fatalf("stranded: %v", res.Stranded)
	}
	if done != clients {
		t.Errorf("%d of %d clients finished", done, clients)
	}
	if shed == 0 {
		t.Error("burst of 6 against inflight 1 + queue 1 shed nothing")
	}
	if got := hub.Counter("shop.shed_creates").Value(); got != int64(shed) {
		t.Errorf("shed_creates = %d, clients saw %d", got, shed)
	}
}

// Deadline-aware shedding: even with queue slots free, an arrival whose
// projected wait blows the admission SLO is refused on the spot.
func TestOverloadShedsOnProjectedWait(t *testing.T) {
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32})
	d.shop.SetAdmission(AdmissionConfig{
		MaxInflight:     1,
		MaxQueue:        100, // queue bound alone would admit everything
		MaxWait:         time.Minute,
		ServiceEstimate: 10 * time.Minute,
	})
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		i := i
		d.k.Spawn(fmt.Sprintf("client%d", i), func(p *sim.Proc) {
			p.Sleep(time.Duration(i) * time.Second) // strict arrival order
			_, _, errs[i] = d.shop.Create(p, wsSpec(t, fmt.Sprintf("u%d", i), "ufl.edu"))
		})
	}
	if res := d.k.Run(0); len(res.Stranded) != 0 {
		t.Fatalf("stranded: %v", res.Stranded)
	}
	if errs[0] != nil {
		t.Errorf("first arrival shed with a free slot: %v", errs[0])
	}
	if !errors.Is(errs[1], ErrOverload) {
		t.Errorf("second arrival not shed on projected wait: %v", errs[1])
	}
}

// Scale-up: AddPlant wires a new plant into the rotation mid-flight,
// and a retired name can never come back.
func TestAddPlantAndRetiredNameStaysDead(t *testing.T) {
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32})
	d.run(t, func(p *sim.Proc) {
		if err := d.shop.DrainAndRetire(p, d.handles[0].Name()); err != nil {
			t.Fatal(err)
		}
		if err := d.shop.AddPlant(d.handles[0]); err == nil {
			t.Error("retired plant re-added")
		}
		if err := d.shop.AddPlant(d.handles[1]); err == nil {
			t.Error("duplicate plant added")
		}
		st := d.shop.Fleet()
		if len(st.Plants) != 2 {
			t.Fatalf("fleet rows = %d, want 2", len(st.Plants))
		}
		var states []string
		for _, row := range st.Plants {
			states = append(states, row.Name+"="+row.State)
		}
		if st.Plants[0].State != "retired" || st.Plants[1].State != "active" {
			t.Errorf("fleet states: %v", states)
		}
	})
}
