// Durable shop state: the event-journaled creation protocol and the
// kill -9 crash/restart cycle.
//
// With a journal attached (SetJournal), every creation follows a
// write-ahead protocol: a creation-intent record is synced before any
// plant sees the request, and a creation-commit record is synced before
// the client hears the answer. A shop that dies between the two leaves
// a durable intent with no commit; Restart replays the journal, then
// reconciles each open intent against the plants — a VM that was built
// before the crash is committed retroactively, one that never made it
// is re-driven through the normal bid/dispatch path under its original
// VMID. Clients that resubmit a spec with the same RequestID after a
// crash are answered from the journal (the original VMID) instead of
// getting a second VM: exactly-once creation across daemon deaths.
//
// Without a journal every method here degrades to the legacy soft-state
// behavior (Restart falls back to the Recover re-scrape), so existing
// callers see no change.
package shop

import (
	"encoding/xml"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"strings"

	"vmplants/internal/classad"
	"vmplants/internal/core"
	"vmplants/internal/fault"
	"vmplants/internal/journal"
	"vmplants/internal/proto"
	"vmplants/internal/sim"
)

// ErrShopDown is returned by shop calls while the daemon is killed and
// not yet restarted. Clients treat it like a connection refused: back
// off and retry after the daemon returns.
var ErrShopDown = errors.New("shop daemon down")

// intent is one journaled creation not yet known to be closed.
type intent struct {
	id        core.VMID
	req       string // client RequestID ("" when the client sent none)
	specXML   string // proto.CreateRequest XML, enough to re-drive
	committed bool
	plant     string
	// origin names the cell that forwarded this creation here (""
	// for client-originated requests) — journaled on the intent so
	// both sides of a cross-cell hop can reconcile it.
	origin string
	// attempts lists the peers this cell wrote a forward-attempt record
	// for (in order), so reconciliation knows exactly which cells may
	// hold the VM; fwdPeer/remote are set by the forward-commit record
	// once a peer answered.
	attempts []string
	fwdPeer  string
	remote   core.VMID
}

// SetJournal attaches the shop's durable event log. From now on every
// creation writes intent/commit records, Destroy writes route-drops,
// and Restart rebuilds state by replay instead of re-scrape.
func (s *Shop) SetJournal(j *journal.Journal) {
	s.jnl = j
}

// Journal returns the attached journal (nil when none).
func (s *Shop) Journal() *journal.Journal { return s.jnl }

// Down reports whether the shop daemon is currently dead.
func (s *Shop) Down() bool { return s.down }

// Kill is kill -9: all soft state — routes, classad cache, breakers,
// the in-memory intent table — evaporates, the journal loses its
// unsynced tail, and every call fails with ErrShopDown until Restart.
func (s *Shop) Kill() {
	s.down = true
	s.mCrashes.Inc()
	s.routes = make(map[core.VMID]PlantHandle)
	s.cache = make(map[core.VMID]*classad.Ad)
	s.breakers = make(map[string]*breaker)
	s.mu.Lock()
	s.intents = make(map[core.VMID]*intent)
	s.byReq = make(map[string]core.VMID)
	s.inflight = make(map[string]int)
	s.peerRoutes = make(map[core.VMID]peerRoute)
	s.mu.Unlock()
	if s.jnl != nil {
		s.jnl.Crash()
	}
}

// killIf fires the daemon-kill fault at one of the shop's protocol
// points ("intent", "commit", "forward", "drain") and, when it fires,
// kills the shop. The fault site is the shop's own name, so a
// federation experiment can kill one cell while its peers keep serving.
func (s *Shop) killIf(op string) bool {
	if !s.Faults.Should(s.name, fault.DaemonKill, op) {
		return false
	}
	s.Kill()
	return true
}

// RestartStats reports what a restart rebuilt and repaired.
type RestartStats struct {
	// Replayed is how many journal records the replay applied.
	Replayed int
	// TornTails is how many damaged records the replay truncated.
	TornTails int
	// Routes is how many VM routes were rebuilt from commit records.
	Routes int
	// Reconciled counts open intents whose VM turned out to exist on a
	// plant: the crash hit between plant success and the commit record.
	Reconciled int
	// Redriven counts open intents whose VM was never built: the crash
	// hit between the intent record and dispatch. Each was re-driven to
	// completion under its original VMID.
	Redriven int
	// Aborted counts open intents whose re-drive failed permanently.
	Aborted int
	// Unresolved counts open intents that could not be settled because
	// an attempted forward peer was unreachable: the VM may exist in
	// that cell, so neither a commit nor a re-drive is safe. They stay
	// open for the next restart (or the peer's return) to settle.
	Unresolved int
}

// Restart brings a killed shop back: journal replay rebuilds the route
// table, the request-dedupe index and the open-intent ledger, then each
// open intent is reconciled against the world — committed if the VM
// exists on some plant, re-driven from its journaled spec if not.
// Without a journal it falls back to the legacy Recover re-scrape.
func (s *Shop) Restart(p *sim.Proc) (RestartStats, error) {
	var st RestartStats
	s.down = false
	s.mRestarts.Inc()
	if s.jnl == nil {
		st.Routes, _ = s.Recover(p)
		return st, nil
	}
	sp := s.tel.T().Start(p, "shop.restart").Set("shop", s.name)
	defer func() {
		sp.SetInt("replayed", int64(st.Replayed)).
			SetInt("reconciled", int64(st.Reconciled)).
			SetInt("redriven", int64(st.Redriven)).
			End(p)
	}()
	s.routes = make(map[core.VMID]PlantHandle)
	s.cache = make(map[core.VMID]*classad.Ad)
	s.mu.Lock()
	s.intents = make(map[core.VMID]*intent)
	s.byReq = make(map[string]core.VMID)
	s.peerRoutes = make(map[core.VMID]peerRoute)
	// The journal is the authority on fleet membership too: drain and
	// retirement state is rebuilt from its records below.
	s.draining = make(map[string]bool)
	s.retired = make(map[string]bool)
	s.mu.Unlock()
	byName := make(map[string]PlantHandle, len(s.plants))
	for _, h := range s.plants {
		byName[h.Name()] = h
	}
	byPeer := make(map[string]PeerHandle, len(s.peers))
	for _, h := range s.peers {
		byPeer[h.Name()] = h
	}
	var maxMinted uint64
	rst, err := s.jnl.Replay(func(r journal.Record) error {
		id := core.VMID(r.Key)
		switch r.Kind {
		case journal.CreationIntent:
			in := &intent{id: id, req: r.Field("req"), specXML: r.Field("spec"), origin: r.Field("origin")}
			s.intents[id] = in
			if in.req != "" {
				s.byReq[in.req] = id
			}
			if n, ok := vmSeq(id, s.name); ok && n > maxMinted {
				maxMinted = n
			}
		case journal.CreationCommit:
			if in := s.intents[id]; in != nil {
				in.committed = true
				in.plant = r.Field("plant")
			}
			if h := byName[r.Field("plant")]; h != nil {
				s.routes[id] = h
			}
		case journal.CreationForward:
			switch r.Field("phase") {
			case "commit":
				if in := s.intents[id]; in != nil {
					in.committed = true
					in.fwdPeer = r.Field("peer")
					in.remote = core.VMID(r.Field("remote"))
				}
				if h := byPeer[r.Field("peer")]; h != nil {
					s.peerRoutes[id] = peerRoute{peer: h, remote: core.VMID(r.Field("remote"))}
				}
			default: // "attempt": the write-ahead half — a peer may hold the VM
				if in := s.intents[id]; in != nil {
					in.attempts = append(in.attempts, r.Field("peer"))
				}
			}
		case journal.PlantDrainBegin:
			s.mu.Lock()
			s.draining[r.Key] = true
			s.mu.Unlock()
		case journal.PlantRetired:
			s.mu.Lock()
			s.draining[r.Key] = true
			s.retired[r.Key] = true
			s.mu.Unlock()
		case journal.CreationAbort:
			s.dropIntent(id)
		case journal.RouteDrop:
			delete(s.routes, id)
			delete(s.peerRoutes, id)
			s.dropIntent(id)
		case journal.RouteChange:
			// Routes carry an endpoint kind: a VM can be served by a
			// local plant or live in a peer cell under its own VMID.
			// (Records written before federation have no endpoint field
			// and default to plant.)
			switch r.Field("endpoint") {
			case "", journal.EndpointPlant:
				if h := byName[r.Field("plant")]; h != nil {
					s.routes[id] = h
				}
			case journal.EndpointPeer:
				if h := byPeer[r.Field("peer")]; h != nil {
					s.peerRoutes[id] = peerRoute{peer: h, remote: core.VMID(r.Field("remote"))}
				}
			}
		}
		return nil
	})
	if err != nil {
		return st, err
	}
	st.Replayed = rst.Records
	st.TornTails = rst.TornTails
	// Apply the replayed fleet ledger before any intent is reconciled:
	// retired plants leave the candidate set (and shed any stale route
	// still naming them — a retired plant is provably empty), open
	// drains re-mark their plants, so neither the reconcile sweep nor a
	// re-drive can ever route work to a plant that already left.
	s.mu.Lock()
	retired := make(map[string]bool, len(s.retired))
	for name := range s.retired {
		retired[name] = true
	}
	draining := make([]string, 0, len(s.draining))
	for name := range s.draining {
		if !retired[name] {
			draining = append(draining, name)
		}
	}
	s.mu.Unlock()
	for name := range retired {
		if h := byName[name]; h != nil {
			s.plants = without(s.plants, h)
			if d, ok := h.(Drainable); ok {
				d.Retire()
			}
		}
		for id, h := range s.routes {
			if h != nil && h.Name() == name {
				delete(s.routes, id)
			}
		}
	}
	for _, name := range draining {
		if d, ok := byName[name].(Drainable); ok {
			d.SetDraining(true)
		}
	}
	st.Routes = len(s.routes) + len(s.peerRoutes)
	s.mRecoveredRts.Add(int64(len(s.routes)))
	// The VMID counter must never re-mint an ID that reached the journal;
	// keep the in-memory counter when it is already ahead.
	if cur := s.nextID.Load(); maxMinted > cur {
		s.nextID.Store(maxMinted)
	}
	// Reconcile open intents in deterministic (VMID) order.
	var open []core.VMID
	for id, in := range s.intents {
		if !in.committed {
			open = append(open, id)
		}
	}
	sort.Slice(open, func(i, j int) bool { return open[i] < open[j] })
	for _, id := range open {
		in := s.intents[id]
		if h, ok := s.findVM(p, id); ok {
			// The plant finished the creation before the crash; only the
			// commit record was lost. Write it now.
			s.commitCreation(p, id, h.Name())
			s.routes[id] = h
			s.mReconciled.Inc()
			st.Reconciled++
			continue
		}
		if len(in.attempts) > 0 {
			// The crash hit inside a forward window: an attempted peer
			// may hold the VM under our forwarding token. Resolve by
			// token lookup; only when every attempted peer
			// authoritatively denies it is a local re-drive safe.
			done, resolved := s.reconcileForward(p, id, in)
			if done {
				s.mReconciled.Inc()
				st.Reconciled++
				continue
			}
			if !resolved {
				st.Unresolved++
				continue
			}
			// Provably absent from every attempted peer: fall through
			// to the ordinary re-drive.
		}
		// The intent never produced a VM (the crash hit before dispatch,
		// or the partial clone died with its fault). Re-drive it under
		// the original VMID so the client's retry finds it committed.
		spec, serr := specFromXML(in.specXML)
		if serr != nil {
			_ = s.abortCreation(p, id, fmt.Errorf("shop %s: unreplayable intent: %w", s.name, serr))
			st.Aborted++
			continue
		}
		if _, cerr := s.createAs(p, id, spec); cerr != nil {
			if errors.Is(cerr, ErrShopDown) {
				// Killed again mid-reconcile; the next Restart resumes.
				return st, cerr
			}
			st.Aborted++
			continue
		}
		s.mRedrives.Inc()
		st.Redriven++
	}
	return st, nil
}

// beginCreation is the journaled front half of Create: request
// deduplication, VMID minting, and the write-ahead intent record. done
// means Create is finished (a deduped answer, an in-flight duplicate,
// or a daemon kill) without running the creation machinery.
func (s *Shop) beginCreation(p *sim.Proc, spec *core.Spec) (id core.VMID, ad *classad.Ad, done bool, err error) {
	if spec.RequestID != "" && s.jnl != nil {
		s.mu.Lock()
		prior, ok := s.byReq[spec.RequestID]
		var in *intent
		if ok {
			in = s.intents[prior]
		}
		s.mu.Unlock()
		if in != nil {
			if in.committed {
				// Retransmission of a finished creation: answer with the
				// original VMID; the classad comes from the routed plant.
				s.mDedups.Inc()
				ad, qerr := s.Query(p, prior)
				return prior, ad, true, qerr
			}
			return "", nil, true, fmt.Errorf("shop %s: request %s already in flight", s.name, spec.RequestID)
		}
	}
	id = s.mintID()
	if s.jnl != nil {
		f := map[string]string{"name": spec.Name}
		if spec.RequestID != "" {
			f["req"] = spec.RequestID
		}
		if spec.Origin != "" {
			f["origin"] = spec.Origin
		}
		var specXML string
		if x, merr := xml.Marshal(proto.FromSpec(spec, "")); merr == nil {
			specXML = string(x)
			f["spec"] = specXML
		}
		s.jnl.AppendSync(p, journal.Record{Kind: journal.CreationIntent, Key: string(id), Fields: f})
		s.mu.Lock()
		s.intents[id] = &intent{id: id, req: spec.RequestID, specXML: specXML, origin: spec.Origin}
		if spec.RequestID != "" {
			s.byReq[spec.RequestID] = id
		}
		s.mu.Unlock()
		if s.killIf("intent") {
			return "", nil, true, ErrShopDown
		}
	}
	return id, nil, false, nil
}

// commitCreation closes an intent with its winning plant: the commit
// record is synced before the caller can answer the client.
func (s *Shop) commitCreation(p *sim.Proc, id core.VMID, plant string) {
	if s.jnl != nil {
		s.jnl.AppendSync(p, journal.Record{
			Kind: journal.CreationCommit, Key: string(id),
			Fields: map[string]string{"plant": plant},
		})
	}
	s.mu.Lock()
	if in := s.intents[id]; in != nil {
		in.committed = true
		in.plant = plant
	}
	s.mu.Unlock()
}

// abortCreation closes an intent whose creation failed permanently and
// returns the error unchanged. Safe because every transient failure
// path destroys its partial clone before reporting: a failed createAs
// means no VM exists anywhere under this VMID.
func (s *Shop) abortCreation(p *sim.Proc, id core.VMID, err error) error {
	if s.jnl != nil {
		s.jnl.AppendSync(p, journal.Record{
			Kind: journal.CreationAbort, Key: string(id),
			Fields: map[string]string{"reason": err.Error()},
		})
	}
	s.mu.Lock()
	s.dropIntentLocked(id)
	s.mu.Unlock()
	return err
}

// forwardAttempt writes the write-ahead half of a cross-cell forward:
// synced BEFORE the peer sees the create, so a crash inside the forward
// window leaves a durable trail naming every cell that may hold the VM.
func (s *Shop) forwardAttempt(p *sim.Proc, id core.VMID, peer string) {
	if s.jnl != nil {
		s.jnl.AppendSync(p, journal.Record{
			Kind: journal.CreationForward, Key: string(id),
			Fields: map[string]string{"phase": "attempt", "peer": peer},
		})
	}
	s.mu.Lock()
	if in := s.intents[id]; in != nil {
		in.attempts = append(in.attempts, peer)
	}
	s.mu.Unlock()
}

// forwardCommit closes an intent that a peer cell served: the record is
// synced before the client hears the answer, and the peer route is
// installed so later Query/Destroy/Publish calls reach the remote VM.
func (s *Shop) forwardCommit(p *sim.Proc, id core.VMID, peer PeerHandle, remote core.VMID) {
	if s.jnl != nil {
		s.jnl.AppendSync(p, journal.Record{
			Kind: journal.CreationForward, Key: string(id),
			Fields: map[string]string{"phase": "commit", "peer": peer.Name(), "remote": string(remote)},
		})
	}
	s.mu.Lock()
	if in := s.intents[id]; in != nil {
		in.committed = true
		in.fwdPeer = peer.Name()
		in.remote = remote
	}
	s.peerRoutes[id] = peerRoute{peer: peer, remote: remote}
	s.mu.Unlock()
}

// reconcileForward settles an open intent whose forward-attempt records
// name peers that may hold the VM. Each attempted peer is asked — via a
// non-creating token lookup, so the probe can never mint a duplicate —
// whether it committed our forwarding token. Found on some peer: commit
// the forward here (done=true). Denied by every attempted peer:
// resolved=true and the caller may safely re-drive locally. Any peer
// unreachable or still in flight: resolved=false — the VM may exist
// there, so the intent must stay open.
func (s *Shop) reconcileForward(p *sim.Proc, id core.VMID, in *intent) (done, resolved bool) {
	token := ForwardToken(s.name, id)
	seen := make(map[string]bool, len(in.attempts))
	for _, name := range in.attempts {
		if seen[name] {
			continue
		}
		seen[name] = true
		var h PeerHandle
		for _, ph := range s.peers {
			if ph.Name() == name {
				h = ph
				break
			}
		}
		if h == nil {
			// The attempted peer is not wired into this incarnation:
			// its state cannot be ruled out.
			return false, false
		}
		remote, found, err := h.LookupForward(p, token)
		if err != nil {
			return false, false
		}
		if found {
			s.forwardCommit(p, id, h, remote)
			return true, true
		}
	}
	return false, true
}

// ForwardLookup resolves a forwarding token against this cell's dedupe
// index — the probe half of cross-cell reconciliation. It never creates
// anything: a token this cell has no committed creation for reports
// found=false, and a token still in flight is an error (the origin must
// retry once the outcome is durable here).
func (s *Shop) ForwardLookup(p *sim.Proc, token string) (core.VMID, bool, error) {
	if s.down {
		return "", false, ErrShopDown
	}
	if token == "" || s.jnl == nil {
		return "", false, nil
	}
	s.mu.Lock()
	prior, ok := s.byReq[token]
	var in *intent
	if ok {
		in = s.intents[prior]
	}
	s.mu.Unlock()
	if in == nil {
		return "", false, nil
	}
	if !in.committed {
		return "", false, fmt.Errorf("shop %s: forward %s still in flight", s.name, token)
	}
	return prior, true, nil
}

// journalRouteLearn records a route re-learned by the legacy Recover
// re-scrape. Buffered, not synced: route-learn records are soft state —
// losing one only costs another recovery sweep.
func (s *Shop) journalRouteLearn(p *sim.Proc, id core.VMID, plant string) {
	if s.jnl == nil {
		return
	}
	s.jnl.Append(p, journal.Record{
		Kind: journal.RouteChange, Key: string(id),
		Fields: map[string]string{"endpoint": journal.EndpointPlant, "plant": plant},
	})
}

// journalDrop records a VM leaving the routing table (Destroy).
func (s *Shop) journalDrop(p *sim.Proc, id core.VMID) {
	if s.jnl != nil {
		s.jnl.AppendSync(p, journal.Record{Kind: journal.RouteDrop, Key: string(id)})
	}
	s.mu.Lock()
	s.dropIntentLocked(id)
	s.mu.Unlock()
}

// dropIntent removes an intent and its dedupe entry (replay path: the
// mutex is not needed, replay is single-threaded).
func (s *Shop) dropIntent(id core.VMID) {
	if in := s.intents[id]; in != nil {
		if in.req != "" {
			delete(s.byReq, in.req)
		}
		delete(s.intents, id)
	}
}

func (s *Shop) dropIntentLocked(id core.VMID) {
	if in := s.intents[id]; in != nil {
		if in.req != "" {
			delete(s.byReq, in.req)
		}
		delete(s.intents, id)
	}
}

// findVM sweeps the plants for a VM the journal says was intended but
// not committed — the reconcile probe.
func (s *Shop) findVM(p *sim.Proc, id core.VMID) (PlantHandle, bool) {
	for _, h := range s.plants {
		if _, found, err := h.Query(p, id); err == nil && found {
			return h, true
		}
	}
	return nil, false
}

// specFromXML rebuilds a creation spec from a journaled intent's
// proto.CreateRequest XML.
func specFromXML(x string) (*core.Spec, error) {
	if x == "" {
		return nil, errors.New("intent has no spec")
	}
	var cr proto.CreateRequest
	if err := xml.Unmarshal([]byte(x), &cr); err != nil {
		return nil, err
	}
	return cr.Spec()
}

// vmSeq extracts the numeric suffix of a "vm-<shop>-<n>" VMID.
func vmSeq(id core.VMID, shop string) (uint64, bool) {
	prefix := "vm-" + shop + "-"
	sid := string(id)
	if !strings.HasPrefix(sid, prefix) {
		return 0, false
	}
	n, err := strconv.ParseUint(sid[len(prefix):], 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}
