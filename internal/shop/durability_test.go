package shop

import (
	"errors"
	"testing"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/fault"
	"vmplants/internal/journal"
	"vmplants/internal/plant"
	"vmplants/internal/sim"
	"vmplants/internal/storage"
)

// journaled attaches a fresh journal (on its own volume) and a fault
// registry to the deployment's shop.
func journaled(d *deployment) (*journal.Journal, *fault.Registry) {
	vol := storage.NewVolume("shopdisk",
		storage.NewDevice("shopdisk", 80<<20, 100*time.Microsecond))
	j := journal.Open(vol, "journal/shop")
	d.shop.SetJournal(j)
	reg := fault.NewRegistry(71)
	d.shop.Faults = reg
	return j, reg
}

// vmCount sums the VM inventories of every plant.
func vmCount(p *sim.Proc, d *deployment) int {
	n := 0
	for _, h := range d.handles {
		ids, err := h.List(p)
		if err != nil {
			continue
		}
		n += len(ids)
	}
	return n
}

// A daemon kill after the intent record but before dispatch: the VM was
// never built. Restart re-drives the journaled intent to completion
// under its original VMID, and the client's retry is answered from the
// journal — one VM, not two.
func TestKillAfterIntentRedrivesExactlyOnce(t *testing.T) {
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32})
	_, reg := journaled(d)
	reg.Arm("shop", fault.DaemonKill, "intent", 1)
	d.run(t, func(p *sim.Proc) {
		spec := wsSpec(t, "ivan", "ufl.edu")
		spec.RequestID = "req-1"
		_, _, err := d.shop.Create(p, spec)
		if !errors.Is(err, ErrShopDown) {
			t.Fatalf("create survived the kill: %v", err)
		}
		if _, _, err := d.shop.Create(p, spec); !errors.Is(err, ErrShopDown) {
			t.Fatalf("dead shop answered: %v", err)
		}
		st, err := d.shop.Restart(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Redriven != 1 || st.Reconciled != 0 {
			t.Fatalf("restart stats = %+v, want 1 redriven", st)
		}
		id, ad, err := d.shop.Create(p, spec) // client retry
		if err != nil {
			t.Fatal(err)
		}
		if ad == nil || ad.GetString(core.AttrVMID, "") != string(id) {
			t.Fatalf("deduped answer has no usable classad: %v", ad)
		}
		if n := vmCount(p, d); n != 1 {
			t.Fatalf("%d VMs exist, want exactly 1", n)
		}
	})
}

// A daemon kill after the plant built the VM but before the commit
// record: Restart's reconcile sweep finds the orphan and commits it
// retroactively; the retry dedupes onto it. One VM, not zero and not
// two.
func TestKillBeforeCommitReconcilesExactlyOnce(t *testing.T) {
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32})
	_, reg := journaled(d)
	reg.Arm("shop", fault.DaemonKill, "commit", 1)
	d.run(t, func(p *sim.Proc) {
		spec := wsSpec(t, "ana", "ufl.edu")
		spec.RequestID = "req-2"
		if _, _, err := d.shop.Create(p, spec); !errors.Is(err, ErrShopDown) {
			t.Fatalf("create survived the kill: %v", err)
		}
		if n := vmCount(p, d); n != 1 {
			t.Fatalf("plant should hold the orphaned VM, inventory = %d", n)
		}
		st, err := d.shop.Restart(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Reconciled != 1 || st.Redriven != 0 {
			t.Fatalf("restart stats = %+v, want 1 reconciled", st)
		}
		id, _, err := d.shop.Create(p, spec) // client retry
		if err != nil {
			t.Fatal(err)
		}
		if d.shop.RouteOf(id) == "" {
			t.Fatal("reconciled VM has no route")
		}
		if n := vmCount(p, d); n != 1 {
			t.Fatalf("%d VMs exist, want exactly 1", n)
		}
	})
}

// Routes are rebuilt from commit records at replay time — before any
// query forces a recovery sweep — and a journaled route-drop keeps a
// destroyed VM gone across the restart.
func TestRestartRebuildsRoutesAndHonorsDrops(t *testing.T) {
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32})
	journaled(d)
	d.run(t, func(p *sim.Proc) {
		idA, _, err := d.shop.Create(p, wsSpec(t, "ivan", "ufl.edu"))
		if err != nil {
			t.Fatal(err)
		}
		idB, _, err := d.shop.Create(p, wsSpec(t, "ana", "ufl.edu"))
		if err != nil {
			t.Fatal(err)
		}
		if err := d.shop.Destroy(p, idB); err != nil {
			t.Fatal(err)
		}
		d.shop.Kill()
		if !d.shop.Down() {
			t.Fatal("Kill did not mark the shop down")
		}
		st, err := d.shop.Restart(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Routes != 1 {
			t.Fatalf("replay rebuilt %d routes, want 1", st.Routes)
		}
		if d.shop.RouteOf(idA) == "" {
			t.Fatal("surviving VM lost its route")
		}
		if d.shop.RouteOf(idB) != "" {
			t.Fatal("destroyed VM resurrected by replay")
		}
		if _, err := d.shop.Query(p, idB); err == nil {
			t.Fatal("destroyed VM answered a query")
		}
	})
}

// Without a RequestID each submission is a fresh request — the journal
// must not dedupe distinct creations that share a spec.
func TestDistinctRequestsAreNotDeduped(t *testing.T) {
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32})
	journaled(d)
	d.run(t, func(p *sim.Proc) {
		a, _, err := d.shop.Create(p, wsSpec(t, "ivan", "ufl.edu"))
		if err != nil {
			t.Fatal(err)
		}
		b, _, err := d.shop.Create(p, wsSpec(t, "ivan", "ufl.edu"))
		if err != nil {
			t.Fatal(err)
		}
		if a == b {
			t.Fatalf("two submissions share VMID %s", a)
		}
		if n := vmCount(p, d); n != 2 {
			t.Fatalf("%d VMs, want 2", n)
		}
	})
}
