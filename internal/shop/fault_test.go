package shop

import (
	"testing"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/fault"
	"vmplants/internal/plant"
	"vmplants/internal/sim"
	"vmplants/internal/telemetry"
)

func TestBreakerStateMachine(t *testing.T) {
	b := &breaker{cfg: BreakerConfig{Threshold: 2, Cooldown: 10 * time.Second}}
	if !b.allow(0) || b.state != breakerClosed {
		t.Fatal("new breaker not closed")
	}
	b.onFailure(0)
	if b.state != breakerClosed {
		t.Fatal("opened below threshold")
	}
	if !b.onFailure(sim.Seconds(1)) {
		t.Fatal("threshold failure did not report the open transition")
	}
	if b.state != breakerOpen || b.allow(sim.Seconds(2)) {
		t.Fatal("open breaker admitted a call inside the cooldown")
	}
	// Cooldown elapsed: one probe gets through.
	if !b.allow(sim.Seconds(12)) || b.state != breakerHalfOpen {
		t.Fatalf("state %s after cooldown, want half-open", b.state)
	}
	// Half-open failure goes straight back to open...
	if !b.onFailure(sim.Seconds(12)) {
		t.Fatal("half-open failure did not report re-opening")
	}
	if b.state != breakerOpen {
		t.Fatalf("state %s after failed probe, want open", b.state)
	}
	// ...and a successful probe closes it.
	if !b.allow(sim.Seconds(23)) {
		t.Fatal("second probe refused")
	}
	b.onSuccess()
	if b.state != breakerClosed || b.failures != 0 {
		t.Fatalf("state %s failures %d after successful probe", b.state, b.failures)
	}
}

func TestBidTimeoutProceedsWithoutSlowPlant(t *testing.T) {
	// Rules are keyed by site, so a shared registry slows only node00.
	reg := fault.NewRegistry(3)
	reg.SetProb("node00", fault.SlowBid, "", 1.0)
	reg.SetDelay("node00", fault.SlowBid, "", 30*time.Second)
	d := newDeployment(t, 3, plant.Config{MaxVMs: 8, Faults: reg})
	hub := telemetry.New()
	d.shop.SetTelemetry(hub)
	d.shop.BidTimeout = time.Second
	slow := "node00"

	d.run(t, func(p *sim.Proc) {
		start := p.Now()
		id, _, err := d.shop.Create(p, wsSpec(t, "ivan", "ufl.edu"))
		if err != nil {
			t.Fatalf("create under bid timeout: %v", err)
		}
		if got := d.shop.RouteOf(id); got == slow {
			t.Errorf("slow bidder %s won the round", got)
		}
		// The round must not have waited out the 30 s laggard.
		if waited := p.Now() - start; waited > 25*time.Second {
			t.Errorf("create took %s; bid round waited for the laggard", waited)
		}
	})
	if got := hub.Counter("shop.degraded_bid_rounds").Value(); got == 0 {
		t.Error("degraded bid round not counted")
	}
	if got := hub.Gauge("shop.missing_bids").Value(); got != 1 {
		t.Errorf("missing bids gauge = %d, want 1", got)
	}
}

func TestCreateFailsOverOnTransientCloneError(t *testing.T) {
	reg := fault.NewRegistry(4)
	reg.Arm(fault.Wildcard, fault.CloneIO, "", 1)
	d := newDeployment(t, 3, plant.Config{MaxVMs: 8, Faults: reg})
	hub := telemetry.New()
	d.shop.SetTelemetry(hub)

	d.run(t, func(p *sim.Proc) {
		id, ad, err := d.shop.Create(p, wsSpec(t, "ivan", "ufl.edu"))
		if err != nil {
			t.Fatalf("create did not fail over: %v", err)
		}
		if ad.GetString(core.AttrVMID, "") != string(id) {
			t.Error("failover returned a mismatched ad")
		}
	})
	if got := hub.Counter("shop.failovers").Value(); got != 1 {
		t.Errorf("failovers = %d, want 1", got)
	}
	// Exactly one VM exists; the aborted clone left nothing behind.
	total := 0
	for _, pl := range d.plants {
		total += pl.ActiveVMs()
		if free, size := pl.Networks().FreeCount(), pl.Networks().Size(); size-free > pl.ActiveVMs() {
			t.Errorf("%s leaked a host-only network", pl.Name())
		}
	}
	if total != 1 {
		t.Errorf("%d VMs after one request", total)
	}
}

func TestCreateFailsOverWhenPlantCrashesMidCreate(t *testing.T) {
	reg := fault.NewRegistry(5)
	reg.Arm(fault.Wildcard, fault.PlantCrash, "create", 1)
	d := newDeployment(t, 3, plant.Config{MaxVMs: 8, Faults: reg})

	var crashed *plant.Plant
	d.run(t, func(p *sim.Proc) {
		id, _, err := d.shop.Create(p, wsSpec(t, "ivan", "ufl.edu"))
		if err != nil {
			t.Fatalf("create did not fail over past the crash: %v", err)
		}
		for _, pl := range d.plants {
			if pl.Down() {
				crashed = pl
			}
		}
		if crashed == nil {
			t.Fatal("no plant crashed; trigger never fired")
		}
		if d.shop.RouteOf(id) == crashed.Name() {
			t.Error("request routed to the crashed plant")
		}
		// The crashed daemon held no VM mid-create; recovery finds none.
		if n := crashed.Recover(p); n != 0 {
			t.Errorf("recovery on the crashed plant rebuilt %d records, want 0", n)
		}
		if free, size := crashed.Networks().FreeCount(), crashed.Networks().Size(); free != size {
			t.Errorf("crashed plant leaked a network: %d/%d free", free, size)
		}
	})
}

func TestBreakerShieldsRepeatedlyDeadPlant(t *testing.T) {
	d := newDeployment(t, 3, plant.Config{MaxVMs: 8})
	hub := telemetry.New()
	d.shop.SetTelemetry(hub)
	d.shop.Breaker = BreakerConfig{Threshold: 2, Cooldown: 30 * time.Second}

	flaky := d.handles[0]
	reg := fault.NewRegistry(6)
	reg.SetProb(flaky.Name(), fault.RPCDrop, "estimate", 1.0)
	flaky.Faults = reg

	d.run(t, func(p *sim.Proc) {
		// Two creates charge two transport failures; the breaker opens.
		for i := 0; i < 2; i++ {
			if _, _, err := d.shop.Create(p, wsSpec(t, "u"+string(rune('a'+i)), "ufl.edu")); err != nil {
				t.Fatalf("create %d: %v", i, err)
			}
		}
		if got := d.shop.BreakerState(flaky.Name()); got != "open" {
			t.Fatalf("breaker %s after repeated drops, want open", got)
		}
		// While open, rounds skip the plant entirely: no call reaches the
		// transport, so the drop rule fires no further injections.
		drops := reg.Count(flaky.Name(), fault.RPCDrop, "estimate")
		if _, _, err := d.shop.Create(p, wsSpec(t, "uc", "ufl.edu")); err != nil {
			t.Fatal(err)
		}
		if got := reg.Count(flaky.Name(), fault.RPCDrop, "estimate"); got != drops {
			t.Errorf("open breaker still sent a call to the dead plant (%d drops, was %d)", got, drops)
		}
		// Transport heals; after the cooldown the half-open probe closes it.
		reg.SetProb(flaky.Name(), fault.RPCDrop, "estimate", 0)
		p.Sleep(40 * time.Second)
		if _, _, err := d.shop.Create(p, wsSpec(t, "ud", "ufl.edu")); err != nil {
			t.Fatal(err)
		}
		if got := d.shop.BreakerState(flaky.Name()); got != "closed" {
			t.Errorf("breaker %s after successful probe, want closed", got)
		}
	})
	if got := hub.Counter("shop.breaker_opens").Value(); got != 1 {
		t.Errorf("breaker_opens = %d, want 1", got)
	}
}

// Satellite: shop recovery with a subset of plants down must drop the
// unreachable plants' routes — not fabricate them — and re-learn the
// routes once the plant daemon returns.
func TestShopRecoverWithSubsetOfPlantsDown(t *testing.T) {
	d := newDeployment(t, 3, plant.Config{MaxVMs: 8})
	d.run(t, func(p *sim.Proc) {
		ids := make([]core.VMID, 0, 6)
		for i := 0; i < 6; i++ {
			id, _, err := d.shop.Create(p, wsSpec(t, "u"+string(rune('a'+i)), "ufl.edu"))
			if err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		// Crash whichever plant hosts the first VM.
		victim := d.shop.RouteOf(ids[0])
		var down *plant.Plant
		lost := map[core.VMID]bool{}
		for _, pl := range d.plants {
			if pl.Name() == victim {
				down = pl
			}
		}
		for _, id := range ids {
			if d.shop.RouteOf(id) == victim {
				lost[id] = true
			}
		}
		down.Crash()

		d.shop.ForgetRoutes()
		routes, unreachable := d.shop.Recover(p)
		if len(unreachable) != 1 || unreachable[0] != victim {
			t.Fatalf("unreachable = %v, want [%s]", unreachable, victim)
		}
		if routes != len(ids)-len(lost) {
			t.Errorf("recovered %d routes, want %d", routes, len(ids)-len(lost))
		}
		for _, id := range ids {
			got := d.shop.RouteOf(id)
			if lost[id] && got != "" {
				t.Errorf("fabricated route %s for VM %s on the dead plant", got, id)
			}
			if !lost[id] && got == "" {
				t.Errorf("lost route for VM %s on a live plant", id)
			}
		}

		// The plant daemon restarts; a second sweep finds its VMs again.
		down.Recover(p)
		routes, unreachable = d.shop.Recover(p)
		if len(unreachable) != 0 {
			t.Fatalf("unreachable after restart = %v", unreachable)
		}
		if routes != len(ids) {
			t.Errorf("recovered %d routes after restart, want %d", routes, len(ids))
		}
		for id := range lost {
			if got := d.shop.RouteOf(id); got != victim {
				t.Errorf("VM %s routed to %q after restart, want %s", id, got, victim)
			}
		}
		// End to end: the re-learned routes actually work.
		for _, id := range ids {
			if err := d.shop.Destroy(p, id); err != nil {
				t.Errorf("destroy %s through recovered route: %v", id, err)
			}
		}
	})
}
