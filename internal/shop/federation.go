// Federated shops: the hierarchical half of the bidding machinery.
//
// A shop that cannot serve a creation locally — every plant infeasible,
// breaker-open, or transiently failing — re-auctions the request among
// its peer shops exactly the way it auctions among plants: collect cost
// estimates, pick the cheapest (ties at random), fail over to the next
// bidder when the winner turns out to be unreachable. A forwarded
// request carries an Origin cell and a deterministic forwarding token
// as its RequestID, so the hop is exactly-once: the peer journals the
// intent under the token and a cross-cell retry (client resubmission,
// RPC retransmit, or crash-restart re-drive) is answered from the
// peer's dedupe index instead of building a second VM. Forwarded
// requests are never forwarded again (one-hop hierarchy), so a
// saturated federation degrades to per-cell failures rather than
// creations bouncing between cells.
package shop

import (
	"errors"
	"fmt"
	"sort"

	"vmplants/internal/classad"
	"vmplants/internal/core"
	"vmplants/internal/fault"
	"vmplants/internal/registry"
	"vmplants/internal/sim"
)

// PeerHandle is one shop's view of a peer shop in another cell: the
// forward-create protocol plus the routed operations a cell serves for
// VMs it created on a peer's behalf. Implementations exist for
// in-process peers under the simulation kernel (LocalPeerHandle) and
// for remote shop daemons over TCP (service.RemotePeer).
type PeerHandle interface {
	// Name identifies the peer cell.
	Name() string
	// Estimate returns the peer's aggregate bid for serving the spec —
	// the cheapest feasible bid of its own plant round — or
	// core.Infeasible when no plant there can take it.
	Estimate(p *sim.Proc, spec *core.Spec) (core.Cost, error)
	// Create builds the VM in the peer's cell; the spec must carry
	// Origin and the forwarding-token RequestID. Returns the
	// peer-minted VMID.
	Create(p *sim.Proc, spec *core.Spec) (core.VMID, *classad.Ad, error)
	// LookupForward asks, without creating anything, whether the peer
	// committed a creation under the given forwarding token — the
	// restart-time reconcile probe. found=false is authoritative: the
	// peer holds no VM for the token.
	LookupForward(p *sim.Proc, token string) (remote core.VMID, found bool, err error)
	// Query fetches a forwarded VM's classad from the peer.
	Query(p *sim.Proc, id core.VMID) (*classad.Ad, bool, error)
	// Collect destroys a forwarded VM in the peer's cell.
	Collect(p *sim.Proc, id core.VMID) (found bool, err error)
	// Publish checkpoints a forwarded VM into the peer cell's warehouse.
	Publish(p *sim.Proc, id core.VMID, image string) error
	// Lifecycle suspends or resumes a forwarded VM.
	Lifecycle(p *sim.Proc, id core.VMID, op string) error
}

// ErrPeerDown marks an unreachable peer shop (lease lapsed, daemon
// dead, or transport failure) — the transient class of peer errors, so
// the peer auction fails over instead of reporting it to the client.
var ErrPeerDown = errors.New("shop: peer shop unreachable")

// peerRoute records where a forwarded creation lives: the peer serving
// it and the VMID that cell knows it by.
type peerRoute struct {
	peer   PeerHandle
	remote core.VMID
}

// SetPeers wires the shop's peer cells for hierarchical bidding.
func (s *Shop) SetPeers(peers []PeerHandle) {
	s.peers = append([]PeerHandle(nil), peers...)
}

// Peers returns the wired peer handles.
func (s *Shop) Peers() []PeerHandle { return append([]PeerHandle(nil), s.peers...) }

// ForwardToken derives the idempotency token a forwarded creation
// carries. It is a pure function of the origin cell and the origin-side
// VMID — a restart-time re-drive reuses the original VMID, so its
// re-forward dedupes against the peer's journal.
func ForwardToken(origin string, id core.VMID) string {
	return fmt.Sprintf("fwd-%s-%s", origin, id)
}

// peerKey namespaces peer breaker entries away from plant names.
func peerKey(name string) string { return "peer:" + name }

// tryForward runs the peer auction for a creation the local plants
// could not serve. handled=true means forwarding decided the outcome
// (success, a permanent peer-side failure already journaled as an
// abort, or a daemon kill at the forward chaos point); handled=false
// means no peer could take it and the caller should abort locally.
func (s *Shop) tryForward(p *sim.Proc, id core.VMID, spec *core.Spec) (ad *classad.Ad, handled bool, err error) {
	if spec.Origin != "" || len(s.peers) == 0 || s.down {
		return nil, false, nil
	}
	fwd := *spec
	fwd.Origin = s.name
	fwd.RequestID = ForwardToken(s.name, id)

	sp := s.tel.T().StartCtx(p, "shop.forward", p.Trace()).
		Set("shop", s.name).
		Set("vmid", string(id))
	defer func() { sp.EndErr(p, err) }()

	// Peer bidding round, breaker-gated like a plant round: skip peers
	// whose breaker is open unless that would empty the round.
	s.mPeerBidRounds.Inc()
	round := s.peers
	if s.Breaker.Threshold > 0 {
		var allowed []PeerHandle
		for _, h := range s.peers {
			if s.breakerFor(peerKey(h.Name())).allow(p.Now()) {
				allowed = append(allowed, h)
			}
		}
		if len(allowed) > 0 {
			round = allowed
		}
	}
	type peerBid struct {
		h PeerHandle
		c core.Cost
	}
	var feasible []peerBid
	for _, h := range round {
		c, eerr := h.Estimate(p, &fwd)
		if eerr != nil {
			s.noteFailure(p.Now(), peerKey(h.Name()))
			continue
		}
		s.noteSuccess(peerKey(h.Name()))
		if !c.OK() {
			continue
		}
		feasible = append(feasible, peerBid{h, c})
	}
	sp.SetInt("peers", int64(len(round))).SetInt("feasible", int64(len(feasible)))

	for len(feasible) > 0 {
		best := feasible[0].c
		for _, b := range feasible[1:] {
			if b.c < best {
				best = b.c
			}
		}
		var winners []PeerHandle
		for _, b := range feasible {
			if b.c == best {
				winners = append(winners, b.h)
			}
		}
		win := winners[s.rng.Intn(len(winners))]
		// Write-ahead: the attempt record must be durable before the
		// peer can build anything, or a crash here would strand a VM in
		// a cell the restart has no reason to ask.
		s.forwardAttempt(p, id, win.Name())
		remote, ad, cerr := win.Create(p, &fwd)
		if cerr == nil {
			// Chaos point: the origin daemon can die here — the peer
			// holds a committed VM, but the forward record never lands.
			// Restart's re-drive re-forwards under the same token and
			// the peer's dedupe answers with this same VM.
			if s.killIf("forward") {
				return nil, true, ErrShopDown
			}
			s.forwardCommit(p, id, win, remote)
			s.noteSuccess(peerKey(win.Name()))
			s.mForwards.Inc()
			if s.CacheAds {
				s.cache[id] = ad.Clone()
			}
			sp.Set("peer", win.Name()).Set("remote", string(remote))
			return ad, true, nil
		}
		if !errors.Is(cerr, ErrPeerDown) && !errors.Is(cerr, core.ErrTransient) {
			// A permanent peer-side creation failure is the request's
			// outcome: the spec would fail the same way in any cell.
			s.mForwardFails.Inc()
			return nil, true, s.abortCreation(p, id, fmt.Errorf("shop %s: peer %s: %w", s.name, win.Name(), cerr))
		}
		s.noteFailure(p.Now(), peerKey(win.Name()))
		next := feasible[:0]
		for _, b := range feasible {
			if b.h != win {
				next = append(next, b)
			}
		}
		feasible = next
	}
	s.mForwardFails.Inc()
	return nil, false, nil
}

// EstimateForward is the peer-facing half of hierarchical bidding: the
// shop runs one bidding round over its own plants and answers with the
// cheapest feasible bid, or core.Infeasible when no local plant can
// take the request. Nothing is journaled — an estimate has no effects.
func (s *Shop) EstimateForward(p *sim.Proc, spec *core.Spec) (core.Cost, error) {
	if s.down {
		return core.Infeasible, ErrShopDown
	}
	if err := spec.Validate(); err != nil {
		return core.Infeasible, err
	}
	reqAd, err := requestAd(spec)
	if err != nil {
		return core.Infeasible, err
	}
	eligible := s.eligiblePlants()
	round := eligible
	if s.Breaker.Threshold > 0 {
		var allowed []PlantHandle
		for _, h := range eligible {
			if s.breakerFor(h.Name()).allow(p.Now()) {
				allowed = append(allowed, h)
			}
		}
		if len(allowed) > 0 {
			round = allowed
		}
	}
	sp := s.tel.T().StartCtx(p, "shop.estimate_forward", p.Trace()).Set("shop", s.name)
	rec := BidRecord{Costs: make(map[string]core.Cost)}
	feasible := s.collectBids(p, round, spec, reqAd, &rec, sp)
	sp.SetInt("feasible", int64(len(feasible))).End(p)
	if len(feasible) == 0 {
		return core.Infeasible, nil
	}
	best := feasible[0].c
	for _, b := range feasible[1:] {
		if b.c < best {
			best = b.c
		}
	}
	// Price admission pressure into the quote: a forwarded creation
	// would queue at this cell's gate like any other arrival, so a
	// loaded cell bids higher and loses auctions it would only delay.
	return best + s.bidPressure(), nil
}

// ForwardCreate serves a creation on behalf of a peer cell. The spec
// must carry an Origin (set by the forwarding shop) — a request that
// already hopped once is refused rather than re-forwarded. The
// forwarding token rides in spec.RequestID, so the peer-side journal
// dedupes cross-cell retries through the ordinary beginCreation path,
// and the intent record lands with an origin field for cross-cell
// reconciliation.
func (s *Shop) ForwardCreate(p *sim.Proc, spec *core.Spec) (core.VMID, *classad.Ad, error) {
	if err := spec.Validate(); err != nil {
		return "", nil, err
	}
	if spec.Origin == "" {
		return "", nil, fmt.Errorf("shop %s: forward-create without an origin cell", s.name)
	}
	if spec.Origin == s.name {
		return "", nil, fmt.Errorf("shop %s: refusing forward-create from itself", s.name)
	}
	if s.down {
		return "", nil, ErrShopDown
	}
	// Forwarded creations pass the same admission gate as local ones —
	// capacity is capacity. A shed forward is transient, so the origin
	// cell fails it over to its next bidder.
	release, err := s.admit(p)
	if err != nil {
		return "", nil, err
	}
	defer release()
	if s.down {
		return "", nil, ErrShopDown
	}
	s.mServedForwards.Inc()
	id, ad, done, err := s.beginCreation(p, spec)
	if done {
		return id, ad, err
	}
	ad, err = s.createAs(p, id, spec)
	if err != nil {
		return "", nil, err
	}
	return id, ad, nil
}

// ForwardedTo reports where a forwarded creation went ("" when the VM
// is not a forwarded one).
func (s *Shop) ForwardedTo(id core.VMID) (peer string, remote core.VMID, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pr, ok := s.peerRoutes[id]
	if !ok {
		return "", "", false
	}
	return pr.peer.Name(), pr.remote, true
}

// ForwardedRoute is one cross-cell route, for status reporting.
type ForwardedRoute struct {
	LocalID  string `json:"local_id"`
	Peer     string `json:"peer"`
	RemoteID string `json:"remote_id"`
}

// FederationStatus is a snapshot of the shop's federation state, served
// by the daemon's /debug/federation endpoint and vmctl.
type FederationStatus struct {
	Shop      string           `json:"shop"`
	Peers     []string         `json:"peers"`
	Forwarded []ForwardedRoute `json:"forwarded"`
}

// Federation snapshots the shop's peer wiring and cross-cell routes.
func (s *Shop) Federation() FederationStatus {
	st := FederationStatus{Shop: s.name}
	for _, h := range s.peers {
		st.Peers = append(st.Peers, h.Name())
	}
	sort.Strings(st.Peers)
	s.mu.Lock()
	for id, pr := range s.peerRoutes {
		st.Forwarded = append(st.Forwarded, ForwardedRoute{
			LocalID: string(id), Peer: pr.peer.Name(), RemoteID: string(pr.remote),
		})
	}
	s.mu.Unlock()
	sort.Slice(st.Forwarded, func(i, j int) bool { return st.Forwarded[i].LocalID < st.Forwarded[j].LocalID })
	return st
}

// LocalPeerHandle adapts an in-process peer *Shop under the same
// simulation kernel, charging a cross-cell message latency and checking
// the peer's registry lease before every call: a peer whose lease has
// lapsed is authoritatively gone, so the call fails immediately instead
// of burning a timeout — a vanished peer can never stall a bid round.
type LocalPeerHandle struct {
	Target *Shop
	// Registry, when set, is consulted for a live "vmshop" lease under
	// the peer's name before every call.
	Registry *registry.Registry
	// MsgLatency is the one-way cross-cell control latency (WAN hop,
	// default 20 ms). Both directions are charged.
	MsgLatency float64
	// CallTimeout is the virtual-seconds price of a call that will
	// never be answered (dead daemon, dropped message).
	CallTimeout float64
	// Faults injects transport faults against this peer, keyed by the
	// peer's name with ops "peer-estimate", "peer-create", …
	Faults *fault.Registry
}

// NewLocalPeerHandle wraps a peer shop with default cross-cell latency.
func NewLocalPeerHandle(target *Shop, reg *registry.Registry) *LocalPeerHandle {
	return &LocalPeerHandle{Target: target, Registry: reg, MsgLatency: 0.02, CallTimeout: 1.0}
}

// Name implements PeerHandle.
func (h *LocalPeerHandle) Name() string { return h.Target.Name() }

func (h *LocalPeerHandle) timeout(p *sim.Proc) {
	t := h.CallTimeout
	if t <= 0 {
		t = 1.0
	}
	p.Sleep(sim.Seconds(t))
}

func (h *LocalPeerHandle) roundTrip(p *sim.Proc, op string) error {
	name := h.Target.Name()
	if h.Registry != nil {
		if _, err := h.Registry.Bind("vmshop", name); err != nil {
			// Fail fast: an expired lease means the cell withdrew (or
			// stopped heartbeating); no timeout is owed for a peer the
			// directory already says is gone.
			return fmt.Errorf("%w: %s: no live registry lease", ErrPeerDown, name)
		}
	}
	if h.Faults.Should(name, fault.RPCDrop, op) {
		h.timeout(p)
		return fmt.Errorf("%w: %s: %s timed out", ErrPeerDown, name, op)
	}
	if d := h.Faults.DelayFor(name, fault.RPCDelay, op); d > 0 {
		p.Sleep(d)
	}
	if h.Target.Down() {
		h.timeout(p)
		return fmt.Errorf("%w: %s: daemon not running", ErrPeerDown, name)
	}
	p.Sleep(sim.Seconds(2 * h.MsgLatency))
	return nil
}

// peerErr maps the target shop's down-state onto the transport error
// class, so the origin's failover machinery treats a mid-call death the
// same as an unreachable peer.
func peerErr(name string, err error) error {
	if errors.Is(err, ErrShopDown) {
		return fmt.Errorf("%w: %s: daemon died mid-call", ErrPeerDown, name)
	}
	return err
}

// Estimate implements PeerHandle.
func (h *LocalPeerHandle) Estimate(p *sim.Proc, spec *core.Spec) (core.Cost, error) {
	if err := h.roundTrip(p, "peer-estimate"); err != nil {
		return core.Infeasible, err
	}
	c, err := h.Target.EstimateForward(p, spec)
	if err != nil {
		return core.Infeasible, peerErr(h.Target.Name(), err)
	}
	return c, nil
}

// Create implements PeerHandle.
func (h *LocalPeerHandle) Create(p *sim.Proc, spec *core.Spec) (core.VMID, *classad.Ad, error) {
	if err := h.roundTrip(p, "peer-create"); err != nil {
		return "", nil, err
	}
	id, ad, err := h.Target.ForwardCreate(p, spec)
	if err != nil {
		return "", nil, peerErr(h.Target.Name(), err)
	}
	return id, ad, nil
}

// LookupForward implements PeerHandle.
func (h *LocalPeerHandle) LookupForward(p *sim.Proc, token string) (core.VMID, bool, error) {
	if err := h.roundTrip(p, "peer-lookup"); err != nil {
		return "", false, err
	}
	remote, found, err := h.Target.ForwardLookup(p, token)
	if err != nil {
		return "", false, peerErr(h.Target.Name(), err)
	}
	return remote, found, nil
}

// Query implements PeerHandle.
func (h *LocalPeerHandle) Query(p *sim.Proc, id core.VMID) (*classad.Ad, bool, error) {
	if err := h.roundTrip(p, "peer-query"); err != nil {
		return nil, false, err
	}
	ad, err := h.Target.Query(p, id)
	if err != nil {
		if errors.Is(err, ErrShopDown) {
			return nil, false, peerErr(h.Target.Name(), err)
		}
		return nil, false, nil // peer reachable, VM unknown there
	}
	return ad, true, nil
}

// Collect implements PeerHandle.
func (h *LocalPeerHandle) Collect(p *sim.Proc, id core.VMID) (bool, error) {
	if err := h.roundTrip(p, "peer-collect"); err != nil {
		return false, err
	}
	if err := h.Target.Destroy(p, id); err != nil {
		if errors.Is(err, ErrShopDown) {
			return false, peerErr(h.Target.Name(), err)
		}
		return false, nil
	}
	return true, nil
}

// Publish implements PeerHandle.
func (h *LocalPeerHandle) Publish(p *sim.Proc, id core.VMID, image string) error {
	if err := h.roundTrip(p, "peer-publish"); err != nil {
		return err
	}
	return peerErr(h.Target.Name(), h.Target.Publish(p, id, image))
}

// Lifecycle implements PeerHandle.
func (h *LocalPeerHandle) Lifecycle(p *sim.Proc, id core.VMID, op string) error {
	if err := h.roundTrip(p, "peer-lifecycle"); err != nil {
		return err
	}
	return peerErr(h.Target.Name(), h.Target.lifecycle(p, id, op))
}
