package shop

import (
	"strings"
	"testing"
	"time"

	"vmplants/internal/actions"
	"vmplants/internal/cluster"
	"vmplants/internal/core"
	"vmplants/internal/dag"
	"vmplants/internal/journal"
	"vmplants/internal/plant"
	"vmplants/internal/registry"
	"vmplants/internal/sim"
	"vmplants/internal/storage"
	"vmplants/internal/warehouse"
)

// newCell builds one federated cell on a shared kernel: its own testbed
// (so its own NFS server), a warehouse seeded with the golden workspace
// image, nPlants plants, and a shop named after the cell.
func newCell(t *testing.T, k *sim.Kernel, name string, nPlants int, seed int64, cfg plant.Config) (*Shop, *warehouse.Warehouse) {
	t.Helper()
	tb := cluster.NewTestbed(k, nPlants, cluster.DefaultParams(), seed)
	wh := warehouse.New(tb.Warehouse)
	im, err := warehouse.BuildGolden("ws-golden",
		core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048},
		warehouse.BackendVMware,
		[]dag.Action{
			act(actions.OpInstallOS, "distro", "mandrake-8.1"),
			act(actions.OpInstallPackage, "name", "vnc-server"),
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := wh.Publish(im); err != nil {
		t.Fatal(err)
	}
	var phs []PlantHandle
	for _, node := range tb.Nodes {
		pl := plant.New(name+"/"+node.Name(), node, wh, cfg)
		phs = append(phs, NewLocalHandle(pl))
	}
	return New(name, phs, seed+1), wh
}

// simClock wires a registry to the kernel's virtual time.
func simClock(k *sim.Kernel, r *registry.Registry) {
	r.Now = func() time.Time { return time.Unix(0, 0).Add(k.Now()) }
}

func runKernel(t *testing.T, k *sim.Kernel, body func(p *sim.Proc)) {
	t.Helper()
	k.Spawn("client", body)
	res := k.Run(0)
	if len(res.Stranded) != 0 {
		t.Fatalf("stranded: %v", res.Stranded)
	}
}

// A shop whose every plant is at capacity re-auctions the creation to
// its peer cell; the cross-cell route then serves Query and Destroy.
func TestForwardWhenLocalFull(t *testing.T) {
	k := sim.NewKernel()
	reg := registry.New()
	simClock(k, reg)
	a, _ := newCell(t, k, "cellA", 1, 11, plant.Config{MaxVMs: 1})
	b, _ := newCell(t, k, "cellB", 1, 23, plant.Config{MaxVMs: 1})
	for _, name := range []string{"cellA", "cellB"} {
		if err := reg.Publish(registry.Binding{Service: "vmshop", Name: name, Addr: name}, 0); err != nil {
			t.Fatal(err)
		}
	}
	a.SetPeers([]PeerHandle{NewLocalPeerHandle(b, reg)})
	runKernel(t, k, func(p *sim.Proc) {
		if _, _, err := a.Create(p, wsSpec(t, "ivan", "ufl.edu")); err != nil {
			t.Fatalf("local create: %v", err)
		}
		id, ad, err := a.Create(p, wsSpec(t, "ana", "ufl.edu"))
		if err != nil {
			t.Fatalf("overflow create: %v", err)
		}
		peer, remote, ok := a.ForwardedTo(id)
		if !ok || peer != "cellB" {
			t.Fatalf("ForwardedTo = %q %q %v, want a cellB route", peer, remote, ok)
		}
		if got := ad.GetString(core.AttrPlant, ""); !strings.HasPrefix(got, "cellB/") {
			t.Errorf("forwarded creation ran on %q, want a cellB plant", got)
		}
		if _, err := a.Query(p, id); err != nil {
			t.Errorf("query through peer route: %v", err)
		}
		if err := a.Destroy(p, id); err != nil {
			t.Errorf("destroy through peer route: %v", err)
		}
		if _, _, ok := a.ForwardedTo(id); ok {
			t.Error("peer route survived the destroy")
		}
	})
}

// A peer whose registry lease lapsed mid-auction is authoritatively
// gone: the bid round fails fast instead of hanging on a call timeout,
// and a re-published lease brings the peer back into the next round.
func TestPeerLeaseLapseFailsFastAndRepublishRecovers(t *testing.T) {
	k := sim.NewKernel()
	reg := registry.New()
	simClock(k, reg)
	a, _ := newCell(t, k, "cellA", 1, 11, plant.Config{MaxVMs: 1})
	b, _ := newCell(t, k, "cellB", 1, 23, plant.Config{MaxVMs: 1})
	if err := reg.Publish(registry.Binding{Service: "vmshop", Name: "cellB", Addr: "cellB"}, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	a.SetPeers([]PeerHandle{NewLocalPeerHandle(b, reg)})
	runKernel(t, k, func(p *sim.Proc) {
		if _, _, err := a.Create(p, wsSpec(t, "ivan", "ufl.edu")); err != nil {
			t.Fatalf("local create: %v", err)
		}
		p.Sleep(6 * time.Second) // cellB's lease lapses (no heartbeat)
		start := p.Now()
		if _, _, err := a.Create(p, wsSpec(t, "ana", "ufl.edu")); err == nil {
			t.Fatal("create served via a peer whose lease had lapsed")
		}
		// The peer daemon is actually alive — only the lease lapsed — so
		// a success here would mean the lease check is skipped, and a
		// slow failure would mean the round burned the 1 s call timeout
		// on a peer the directory already said was gone.
		if waited := p.Now() - start; waited > 500*time.Millisecond {
			t.Errorf("vanished peer stalled the bid round for %v", waited)
		}
		// The heartbeat resumes: a fresh lease restores forwarding.
		if err := reg.Publish(registry.Binding{Service: "vmshop", Name: "cellB", Addr: "cellB"}, 5*time.Second); err != nil {
			t.Fatal(err)
		}
		id, _, err := a.Create(p, wsSpec(t, "olga", "ufl.edu"))
		if err != nil {
			t.Fatalf("create after re-publish: %v", err)
		}
		if peer, _, ok := a.ForwardedTo(id); !ok || peer != "cellB" {
			t.Errorf("ForwardedTo = %q %v, want cellB", peer, ok)
		}
	})
}

// Regression: route-change journal records carry an endpoint kind.
// Before the fix, replay installed every route-change as a local plant
// route — a peer-endpoint record has no "plant" field, so the
// cross-cell route silently vanished on restart and the shop forgot
// which cell served the VM. Records written before federation carry no
// endpoint field at all and must keep replaying as plant routes.
func TestRouteChangeReplayHonorsEndpointKind(t *testing.T) {
	k := sim.NewKernel()
	reg := registry.New()
	simClock(k, reg)
	a, _ := newCell(t, k, "cellA", 1, 11, plant.Config{MaxVMs: 4})
	b, _ := newCell(t, k, "cellB", 1, 23, plant.Config{MaxVMs: 4})
	if err := reg.Publish(registry.Binding{Service: "vmshop", Name: "cellB", Addr: "cellB"}, 0); err != nil {
		t.Fatal(err)
	}
	a.SetPeers([]PeerHandle{NewLocalPeerHandle(b, reg)})
	vol := storage.NewVolume("cellA-log",
		storage.NewDevice("cellA-log-disk", 16<<20, 100*time.Microsecond))
	jnl := journal.Open(vol, "journal/cellA")
	a.SetJournal(jnl)
	runKernel(t, k, func(p *sim.Proc) {
		// A pre-federation record (no endpoint field) and a peer-endpoint
		// record, as a route-learn sweep would write them.
		jnl.AppendSync(p, journal.Record{
			Kind: journal.RouteChange, Key: "vm-cellA-9",
			Fields: map[string]string{"plant": "cellA/node00"},
		})
		jnl.AppendSync(p, journal.Record{
			Kind: journal.RouteChange, Key: "vm-cellA-10",
			Fields: map[string]string{"endpoint": journal.EndpointPeer, "peer": "cellB", "remote": "vm-cellB-3"},
		})
		st, err := a.Restart(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Routes != 2 {
			t.Errorf("replayed %d routes, want 2", st.Routes)
		}
		if got := a.RouteOf("vm-cellA-9"); got != "cellA/node00" {
			t.Errorf("legacy route replayed to %q, want cellA/node00", got)
		}
		peer, remote, ok := a.ForwardedTo("vm-cellA-10")
		if !ok || peer != "cellB" || remote != "vm-cellB-3" {
			t.Errorf("peer route after replay = %q %q %v, want cellB vm-cellB-3", peer, remote, ok)
		}
	})
}
