package shop

import (
	"errors"
	"fmt"

	"vmplants/internal/proto"

	"vmplants/internal/classad"
	"vmplants/internal/core"
	"vmplants/internal/plant"
	"vmplants/internal/sim"
)

// PlantHandle is the shop's view of one plant: the four operations of
// the shop↔plant binding protocol (Figure 2: Create, Collect, Query,
// Estimate cost). Implementations exist for in-process plants under the
// simulation kernel and for remote plants over TCP (cmd/vmshopd).
type PlantHandle interface {
	// Name identifies the plant.
	Name() string
	// Estimate returns the plant's bid and its resource classad, or an
	// error if unreachable.
	Estimate(p *sim.Proc, spec *core.Spec) (core.Cost, *classad.Ad, error)
	// Create builds a VM under the given shop-assigned ID.
	Create(p *sim.Proc, id core.VMID, spec *core.Spec) (*classad.Ad, error)
	// Query fetches an active VM's classad; found=false when unknown.
	Query(p *sim.Proc, id core.VMID) (ad *classad.Ad, found bool, err error)
	// Collect destroys an active VM; found=false when unknown.
	Collect(p *sim.Proc, id core.VMID) (found bool, err error)
	// Publish checkpoints an active VM into the warehouse as a new
	// golden image.
	Publish(p *sim.Proc, id core.VMID, image string) error
	// Lifecycle suspends or resumes an active VM (op is
	// proto.LifecycleSuspend or proto.LifecycleResume).
	Lifecycle(p *sim.Proc, id core.VMID, op string) error
}

// ErrPlantDown marks an unreachable plant.
var ErrPlantDown = errors.New("shop: plant unreachable")

// LocalHandle adapts an in-process *plant.Plant, charging a per-message
// network latency so that bid collection and service calls cost virtual
// time like their on-the-wire equivalents.
type LocalHandle struct {
	Plant *plant.Plant
	// MsgLatency is the one-way control-message latency (switched
	// 100 Mbit/s Ethernet: sub-millisecond transfer plus protocol
	// stack). Both directions are charged.
	MsgLatency float64 // seconds
	// Down simulates a crashed plant: every call errors.
	Down bool
}

// NewLocalHandle wraps a plant with the default control latency.
func NewLocalHandle(pl *plant.Plant) *LocalHandle {
	return &LocalHandle{Plant: pl, MsgLatency: 0.004}
}

// Name implements PlantHandle.
func (h *LocalHandle) Name() string { return h.Plant.Name() }

func (h *LocalHandle) roundTrip(p *sim.Proc) error {
	if h.Down {
		return fmt.Errorf("%w: %s", ErrPlantDown, h.Plant.Name())
	}
	p.Sleep(sim.Seconds(2 * h.MsgLatency))
	return nil
}

// Estimate implements PlantHandle.
func (h *LocalHandle) Estimate(p *sim.Proc, spec *core.Spec) (core.Cost, *classad.Ad, error) {
	if err := h.roundTrip(p); err != nil {
		return core.Infeasible, nil, err
	}
	return h.Plant.Estimate(p, spec), h.Plant.ResourceAd(), nil
}

// Create implements PlantHandle.
func (h *LocalHandle) Create(p *sim.Proc, id core.VMID, spec *core.Spec) (*classad.Ad, error) {
	if err := h.roundTrip(p); err != nil {
		return nil, err
	}
	return h.Plant.Create(p, id, spec)
}

// Query implements PlantHandle.
func (h *LocalHandle) Query(p *sim.Proc, id core.VMID) (*classad.Ad, bool, error) {
	if err := h.roundTrip(p); err != nil {
		return nil, false, err
	}
	ad, ok := h.Plant.Query(p, id)
	return ad, ok, nil
}

// Collect implements PlantHandle.
func (h *LocalHandle) Collect(p *sim.Proc, id core.VMID) (bool, error) {
	if err := h.roundTrip(p); err != nil {
		return false, err
	}
	if err := h.Plant.Collect(p, id); err != nil {
		// Distinguish "unknown VM" from plant-internal failures: the
		// shop treats unknown as found=false for routing recovery.
		if _, ok := h.Plant.VM(id); !ok {
			return false, nil
		}
		return true, err
	}
	return true, nil
}

// Publish implements PlantHandle.
func (h *LocalHandle) Publish(p *sim.Proc, id core.VMID, image string) error {
	if err := h.roundTrip(p); err != nil {
		return err
	}
	return h.Plant.PublishImage(p, id, image)
}

// Lifecycle implements PlantHandle.
func (h *LocalHandle) Lifecycle(p *sim.Proc, id core.VMID, op string) error {
	if err := h.roundTrip(p); err != nil {
		return err
	}
	switch op {
	case proto.LifecycleSuspend:
		return h.Plant.SuspendVM(p, id)
	case proto.LifecycleResume:
		return h.Plant.ResumeVM(p, id)
	}
	return fmt.Errorf("shop: unknown lifecycle op %q", op)
}
