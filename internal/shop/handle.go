package shop

import (
	"errors"
	"fmt"
	"time"

	"vmplants/internal/proto"

	"vmplants/internal/classad"
	"vmplants/internal/core"
	"vmplants/internal/fault"
	"vmplants/internal/plant"
	"vmplants/internal/sim"
)

// PlantHandle is the shop's view of one plant: the four operations of
// the shop↔plant binding protocol (Figure 2: Create, Collect, Query,
// Estimate cost). Implementations exist for in-process plants under the
// simulation kernel and for remote plants over TCP (cmd/vmshopd).
type PlantHandle interface {
	// Name identifies the plant.
	Name() string
	// Estimate returns the plant's bid and its resource classad, or an
	// error if unreachable.
	Estimate(p *sim.Proc, spec *core.Spec) (core.Cost, *classad.Ad, error)
	// Create builds a VM under the given shop-assigned ID.
	Create(p *sim.Proc, id core.VMID, spec *core.Spec) (*classad.Ad, error)
	// Query fetches an active VM's classad; found=false when unknown.
	Query(p *sim.Proc, id core.VMID) (ad *classad.Ad, found bool, err error)
	// Collect destroys an active VM; found=false when unknown.
	Collect(p *sim.Proc, id core.VMID) (found bool, err error)
	// Publish checkpoints an active VM into the warehouse as a new
	// golden image.
	Publish(p *sim.Proc, id core.VMID, image string) error
	// Lifecycle suspends or resumes an active VM (op is
	// proto.LifecycleSuspend or proto.LifecycleResume).
	Lifecycle(p *sim.Proc, id core.VMID, op string) error
	// List enumerates the VMs the plant currently hosts. Shop.Recover
	// uses it to rebuild routing soft state with one call per plant
	// instead of probing VM by VM.
	List(p *sim.Proc) ([]core.VMID, error)
}

// ErrPlantDown marks an unreachable plant.
var ErrPlantDown = errors.New("shop: plant unreachable")

// LocalHandle adapts an in-process *plant.Plant, charging a per-message
// network latency so that bid collection and service calls cost virtual
// time like their on-the-wire equivalents.
type LocalHandle struct {
	Plant *plant.Plant
	// MsgLatency is the one-way control-message latency (switched
	// 100 Mbit/s Ethernet: sub-millisecond transfer plus protocol
	// stack). Both directions are charged.
	MsgLatency float64 // seconds
	// Down simulates a crashed plant: every call errors.
	Down bool
	// CallTimeout is how long a caller waits on a lost message before
	// giving up, in virtual seconds; it is the price of an injected RPC
	// drop or a call to a crashed daemon.
	CallTimeout float64
	// Faults injects transport faults against this plant — RPC
	// drop/delay rules and crash triggers keyed by the plant's name,
	// with the calling operation as the rule op. nil disables.
	Faults *fault.Registry
	// RestartAfter, when positive, re-runs the plant daemon this much
	// virtual time after a crash is observed — the node's process
	// supervisor — by calling Plant.Recover from a spawned process.
	// Zero leaves the plant down until someone calls Recover.
	RestartAfter time.Duration
	// restartArmed is true while a supervisor restart is pending, so a
	// burst of failed calls schedules exactly one restart. Kernel
	// processes are serialized, so no lock is needed.
	restartArmed bool
}

// NewLocalHandle wraps a plant with the default control latency.
func NewLocalHandle(pl *plant.Plant) *LocalHandle {
	return &LocalHandle{Plant: pl, MsgLatency: 0.004, CallTimeout: 1.0}
}

// Name implements PlantHandle.
func (h *LocalHandle) Name() string { return h.Plant.Name() }

// scheduleRestart arms the supervisor: one process that waits
// RestartAfter of virtual time and restarts the plant daemon.
func (h *LocalHandle) scheduleRestart(p *sim.Proc) {
	if h.RestartAfter <= 0 || h.restartArmed {
		return
	}
	h.restartArmed = true
	p.Kernel().Spawn("supervisor/"+h.Plant.Name(), func(sp *sim.Proc) {
		sp.Sleep(h.RestartAfter)
		h.Plant.Recover(sp)
		h.restartArmed = false
	})
}

// timeout charges the caller a full call timeout — the cost of waiting
// on a message that will never be answered.
func (h *LocalHandle) timeout(p *sim.Proc) {
	t := h.CallTimeout
	if t <= 0 {
		t = 1.0
	}
	p.Sleep(sim.Seconds(t))
}

func (h *LocalHandle) roundTrip(p *sim.Proc, op string) error {
	name := h.Plant.Name()
	if h.Down {
		return fmt.Errorf("%w: %s", ErrPlantDown, name)
	}
	// Crash fault at the transport: the daemon dies before this call
	// reaches it.
	if h.Faults.Should(name, fault.PlantCrash, op) {
		h.Plant.Crash()
	}
	if h.Plant.Down() {
		h.scheduleRestart(p)
		h.timeout(p)
		return fmt.Errorf("%w: %s: daemon not running", ErrPlantDown, name)
	}
	// Dropped request (or dropped reply — indistinguishable to the
	// caller): burn the timeout, then report the transport failure.
	if h.Faults.Should(name, fault.RPCDrop, op) {
		h.timeout(p)
		return fmt.Errorf("%w: %s: %s timed out", ErrPlantDown, name, op)
	}
	if d := h.Faults.DelayFor(name, fault.RPCDelay, op); d > 0 {
		p.Sleep(d)
	}
	p.Sleep(sim.Seconds(2 * h.MsgLatency))
	return nil
}

// SetDraining implements Drainable.
func (h *LocalHandle) SetDraining(on bool) { h.Plant.SetDraining(on) }

// Retire implements Drainable.
func (h *LocalHandle) Retire() { h.Plant.Retire() }

// Alive implements LivenessProbe: the handle is marked up and the
// plant daemon is running. No round trip — this is the cheap
// dispatch-time recheck, not a health probe.
func (h *LocalHandle) Alive() bool { return !h.Down && !h.Plant.Down() }

// ActiveVMs reports the plant's hosted-VM count for fleet status.
func (h *LocalHandle) ActiveVMs() int { return h.Plant.ActiveVMs() }

// SetBrownout toggles the plant's load-shedding degraded mode.
func (h *LocalHandle) SetBrownout(on bool) { h.Plant.SetBrownout(on) }

// MigrateVM implements Migrator: move a hosted VM to another local
// plant, preserving its VMID.
func (h *LocalHandle) MigrateVM(p *sim.Proc, id core.VMID, dst PlantHandle) error {
	dh, ok := dst.(*LocalHandle)
	if !ok {
		return fmt.Errorf("shop: cannot migrate %s to non-local plant %s", id, dst.Name())
	}
	if err := h.roundTrip(p, "migrate"); err != nil {
		return err
	}
	return h.Plant.MigrateTo(p, id, dh.Plant)
}

// Estimate implements PlantHandle.
func (h *LocalHandle) Estimate(p *sim.Proc, spec *core.Spec) (core.Cost, *classad.Ad, error) {
	if err := h.roundTrip(p, "estimate"); err != nil {
		return core.Infeasible, nil, err
	}
	return h.Plant.Estimate(p, spec), h.Plant.ResourceAd(), nil
}

// Create implements PlantHandle.
func (h *LocalHandle) Create(p *sim.Proc, id core.VMID, spec *core.Spec) (*classad.Ad, error) {
	if err := h.roundTrip(p, "create"); err != nil {
		return nil, err
	}
	ad, err := h.Plant.Create(p, id, spec)
	if h.Plant.Down() {
		// The daemon crashed while handling the order; arm the
		// supervisor so the plant eventually returns.
		h.scheduleRestart(p)
	}
	return ad, err
}

// Query implements PlantHandle.
func (h *LocalHandle) Query(p *sim.Proc, id core.VMID) (*classad.Ad, bool, error) {
	if err := h.roundTrip(p, "query"); err != nil {
		return nil, false, err
	}
	ad, ok := h.Plant.Query(p, id)
	return ad, ok, nil
}

// List implements PlantHandle.
func (h *LocalHandle) List(p *sim.Proc) ([]core.VMID, error) {
	if err := h.roundTrip(p, "list"); err != nil {
		return nil, err
	}
	return h.Plant.VMIDs(), nil
}

// Collect implements PlantHandle.
func (h *LocalHandle) Collect(p *sim.Proc, id core.VMID) (bool, error) {
	if err := h.roundTrip(p, "collect"); err != nil {
		return false, err
	}
	if err := h.Plant.Collect(p, id); err != nil {
		// Distinguish "unknown VM" from plant-internal failures: the
		// shop treats unknown as found=false for routing recovery.
		if _, ok := h.Plant.VM(id); !ok {
			return false, nil
		}
		return true, err
	}
	return true, nil
}

// Publish implements PlantHandle.
func (h *LocalHandle) Publish(p *sim.Proc, id core.VMID, image string) error {
	if err := h.roundTrip(p, "publish"); err != nil {
		return err
	}
	return h.Plant.PublishImage(p, id, image)
}

// Lifecycle implements PlantHandle.
func (h *LocalHandle) Lifecycle(p *sim.Proc, id core.VMID, op string) error {
	if err := h.roundTrip(p, "lifecycle"); err != nil {
		return err
	}
	switch op {
	case proto.LifecycleSuspend:
		return h.Plant.SuspendVM(p, id)
	case proto.LifecycleResume:
		return h.Plant.ResumeVM(p, id)
	}
	return fmt.Errorf("shop: unknown lifecycle op %q", op)
}
