package shop

import (
	"testing"

	"vmplants/internal/classad"
	"vmplants/internal/core"
	"vmplants/internal/plant"
	"vmplants/internal/sim"
)

func TestRequestRequirementsFilterPlants(t *testing.T) {
	d := newDeployment(t, 3, plant.Config{MaxVMs: 32})
	// Name one plant in the request's Requirements; only it may win.
	want := d.handles[2].Name()
	d.run(t, func(p *sim.Proc) {
		s := wsSpec(t, "u1", "ufl.edu")
		s.Requirements = `TARGET.Plant == "` + want + `"`
		_, ad, err := d.shop.Create(p, s)
		if err != nil {
			t.Fatal(err)
		}
		if got := ad.GetString(core.AttrPlant, ""); got != want {
			t.Errorf("created on %q, want %q", got, want)
		}
		// Unsatisfiable Requirements: no plant matches.
		s2 := wsSpec(t, "u2", "ufl.edu")
		s2.Requirements = `TARGET.FreeMemoryMB > 1000000`
		if _, _, err := d.shop.Create(p, s2); err == nil {
			t.Error("unsatisfiable Requirements still created a VM")
		}
	})
}

func TestMalformedRequirementsRejected(t *testing.T) {
	d := newDeployment(t, 1, plant.Config{})
	d.run(t, func(p *sim.Proc) {
		s := wsSpec(t, "u1", "ufl.edu")
		s.Requirements = `TARGET.X >`
		if _, _, err := d.shop.Create(p, s); err == nil {
			t.Error("malformed Requirements accepted")
		}
	})
}

func TestPlantPolicyAdRefusesDomains(t *testing.T) {
	// Plant 0 refuses the banned domain via its policy ad; plant 1
	// accepts everything. Banned-domain requests must all land on 1.
	policy := classad.New()
	if err := policy.SetExprString("Requirements", `TARGET.Domain != "banned.example"`); err != nil {
		t.Fatal(err)
	}
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32})
	d.handles[0].Plant = plantWithPolicy(t, d, 0, policy)
	d.run(t, func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			s := wsSpec(t, "u"+string(rune('a'+i)), "banned.example")
			_, ad, err := d.shop.Create(p, s)
			if err != nil {
				t.Fatal(err)
			}
			if got := ad.GetString(core.AttrPlant, ""); got == d.handles[0].Name() {
				t.Errorf("banned domain landed on the refusing plant")
			}
		}
		// An allowed domain can still use plant 0.
		okSpec := wsSpec(t, "ok", "ufl.edu")
		okSpec.Requirements = `TARGET.Plant == "` + d.handles[0].Name() + `"`
		if _, _, err := d.shop.Create(p, okSpec); err != nil {
			t.Errorf("allowed domain refused: %v", err)
		}
	})
}

// plantWithPolicy rebuilds deployment plant i with a policy ad.
func plantWithPolicy(t *testing.T, d *deployment, i int, policy *classad.Ad) *plant.Plant {
	t.Helper()
	old := d.plants[i]
	pl := plant.New(old.Name(), old.Node(), d.wh, plant.Config{MaxVMs: 32, PolicyAd: policy})
	d.plants[i] = pl
	return pl
}

func TestResourceAdShape(t *testing.T) {
	d := newDeployment(t, 1, plant.Config{MaxVMs: 8})
	ad := d.plants[0].ResourceAd()
	if ad.GetString("Plant", "") != d.plants[0].Name() {
		t.Errorf("ad = %s", ad)
	}
	if ad.GetInt("FreeMemoryMB", -1) <= 0 || ad.GetInt("MaxVMs", -1) != 8 {
		t.Errorf("ad = %s", ad)
	}
	if imgs := ad.GetStrings("GoldenImages"); len(imgs) != 1 {
		t.Errorf("GoldenImages = %v", imgs)
	}
}
