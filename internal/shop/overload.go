// Overload protection: the shop's bounded front door.
//
// Without a bound, a demand spike queues every creation it cannot
// serve, admission wait grows without limit, and by the time the
// backlog drains the clients have long stopped caring — the classic
// overload collapse. The shop instead bounds how many creations it
// will work on at once (a FIFO admission gate) and how many callers
// may wait at the gate; past that, requests are shed immediately with
// ErrOverload. Shedding is deadline-aware: even with queue slots free,
// a request whose projected wait already blows the admission SLO is
// refused now, when the client's retry is still cheap, rather than
// after queueing through the whole backlog.
//
// ErrOverload is in the transient error class, so shed work is
// retryable by construction: clients back off and resubmit (the
// RequestID dedupe makes the retry safe), and a federated origin cell
// fails the creation over to its next peer. The same pressure is
// priced into the shop's federation bids — EstimateForward adds the
// projected admission wait to the quote — so loaded cells lose
// auctions they would only queue, before anyone forwards to them.
package shop

import (
	"fmt"
	"time"

	"vmplants/internal/core"
	"vmplants/internal/sim"
)

// ErrOverload marks a creation shed at the admission gate. It wraps
// core.ErrTransient: shedding is an explicit promise that a retry
// after backoff can succeed — nothing was built, nothing journaled.
var ErrOverload = fmt.Errorf("admission queue full: %w", core.ErrTransient)

// AdmissionConfig bounds the shop's front door. The zero value
// disables admission control entirely (legacy behavior).
type AdmissionConfig struct {
	// MaxInflight is how many creations may run concurrently; further
	// arrivals queue FIFO. Must be positive to enable the gate.
	MaxInflight int
	// MaxQueue is how many arrivals may wait at the gate; the next one
	// is shed. 0 means no queue-length bound.
	MaxQueue int
	// MaxWait sheds arrivals whose projected queue wait exceeds it —
	// the deadline-aware half. Requires ServiceEstimate. 0 disables.
	MaxWait time.Duration
	// ServiceEstimate is the planning estimate of one creation's
	// service time, used only for the wait projection.
	ServiceEstimate time.Duration
}

func (c AdmissionConfig) enabled() bool { return c.MaxInflight > 0 }

// SetAdmission installs (or, with a zero config, removes) the
// admission gate. Not safe to call with creations in flight.
func (s *Shop) SetAdmission(c AdmissionConfig) {
	s.admission = c
	if c.enabled() {
		s.gate = sim.NewResource(s.name+"/admission", c.MaxInflight)
	} else {
		s.gate = nil
	}
}

// AdmissionQueueLen reports how many creations are waiting at the gate.
func (s *Shop) AdmissionQueueLen() int {
	if s.gate == nil {
		return 0
	}
	return s.gate.QueueLen()
}

// InflightCreates reports how many creations hold an admission slot.
func (s *Shop) InflightCreates() int {
	if s.gate == nil {
		return 0
	}
	return s.gate.InUse()
}

// projectedWait is the planning estimate of how long one more arrival
// would queue, given the creations already holding or waiting for a
// slot: zero while a slot is free, else the backlog ahead of it served
// MaxInflight-wide.
func (s *Shop) projectedWait(pending int) time.Duration {
	if s.admission.ServiceEstimate <= 0 || s.admission.MaxInflight <= 0 {
		return 0
	}
	excess := pending + 1 - s.admission.MaxInflight
	if excess <= 0 {
		return 0
	}
	return time.Duration(excess) * s.admission.ServiceEstimate / time.Duration(s.admission.MaxInflight)
}

// admit passes one creation through the gate, shedding instead of
// queueing when the bound or the projected wait says the request
// cannot be served in time. On success the returned release must be
// called when the creation settles.
func (s *Shop) admit(p *sim.Proc) (release func(), err error) {
	if s.gate == nil {
		return func() {}, nil
	}
	queued := s.gate.QueueLen()
	if s.admission.MaxQueue > 0 && queued >= s.admission.MaxQueue {
		s.mShedCreates.Inc()
		return nil, fmt.Errorf("shop %s: %w (%d queued)", s.name, ErrOverload, queued)
	}
	if s.admission.MaxWait > 0 {
		if w := s.projectedWait(s.gate.InUse() + queued); w > s.admission.MaxWait {
			s.mShedCreates.Inc()
			return nil, fmt.Errorf("shop %s: %w (projected wait %s)", s.name, ErrOverload, w)
		}
	}
	start := p.Now()
	s.gate.Acquire(p, 1)
	s.hAdmissionWait.Observe((p.Now() - start).Seconds())
	s.gAdmissionQueue.Set(int64(s.gate.QueueLen()))
	return func() {
		s.gate.Release(p, 1)
		s.gAdmissionQueue.Set(int64(s.gate.QueueLen()))
	}, nil
}

// bidPressure is the admission-wait surcharge a loaded shop adds to
// its federation bids, in cost units (virtual seconds): the projected
// gate wait a forwarded creation would actually pay here.
func (s *Shop) bidPressure() core.Cost {
	if s.gate == nil {
		return 0
	}
	return core.Cost(s.projectedWait(s.gate.InUse() + s.gate.QueueLen()).Seconds())
}
