// Package shop implements the VMShop service (paper §3.1): the single
// logical point of contact where clients create, query and destroy
// virtual machines. The shop discovers plants, collects cost bids for
// each creation request, selects the cheapest plant (random among
// ties, as in the paper's walk-through), and routes queries and
// collections to the plant hosting each VM.
//
// Per the paper, an active VM's classad "is not part of the state that
// needs to be maintained by VMShop"; the shop keeps only a soft routing
// cache and can rebuild it by querying plants, which Recover exercises.
package shop

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"vmplants/internal/classad"
	"vmplants/internal/core"
	"vmplants/internal/fault"
	"vmplants/internal/journal"
	"vmplants/internal/proto"
	"vmplants/internal/sim"
	"vmplants/internal/telemetry"
)

// Shop is one VMShop instance.
type Shop struct {
	name   string
	plants []PlantHandle
	rng    *sim.RNG

	// nextID is atomic so concurrent Create calls (e.g. from the RPC
	// server's per-connection handlers) never mint duplicate VMIDs.
	nextID atomic.Uint64
	routes map[core.VMID]PlantHandle // soft state
	cache  map[core.VMID]*classad.Ad // optional classad cache (speeds queries)

	// peers are the other cells of the federation (SetPeers); when a
	// creation cannot be served locally it is re-auctioned among them.
	// peerRoutes maps a forwarded creation's local VMID to the peer
	// serving it (guarded by mu: debug endpoints snapshot it from
	// outside the kernel). Rebuilt from creation-forward records on
	// Restart, so forwarding tables survive daemon deaths.
	peers      []PeerHandle
	peerRoutes map[core.VMID]peerRoute

	// CacheAds enables classad caching (paper: "VMShop may, however,
	// cache classad information … to speed up queries").
	CacheAds bool

	// BidTimeout bounds how long a bidding round waits for any single
	// plant's estimate, in virtual time. When positive, bids are
	// collected concurrently and the round closes at the deadline with
	// whatever bids arrived (quorum ≥ 1: a round with no responses at
	// all keeps waiting for the first). 0 — the default — keeps the
	// legacy sequential round that waits for every plant.
	BidTimeout time.Duration

	// Breaker configures the per-plant circuit breakers; the zero value
	// disables them (legacy behavior).
	Breaker  BreakerConfig
	breakers map[string]*breaker

	// Pipeline tunes the batched creation pipeline (CreateMany).
	Pipeline PipelineConfig

	// Faults injects shop-level chaos: fault.DaemonKill at site "shop"
	// with ops "intent" (after the intent record is durable, before
	// dispatch) and "commit" (after the plant succeeded, before the
	// commit record lands). nil disables injection.
	Faults *fault.Registry

	// Durable state (durability.go). jnl is the event journal; down
	// marks a killed daemon; intents/byReq are the open-creation ledger
	// and RequestID dedupe index rebuilt by replay.
	jnl     *journal.Journal
	down    bool
	intents map[core.VMID]*intent
	byReq   map[string]core.VMID

	// mu guards the bid audit log, which out-of-kernel observers (debug
	// endpoints, tests) read while creations append to it, and the
	// in-flight creation ledger shared by concurrent pipeline workers.
	mu       sync.Mutex
	bids     []BidRecord    // audit log for experiments
	inflight map[string]int // plant name → creations dispatched, not yet done

	// draining/retired is the durable fleet-exit ledger (drain.go),
	// keyed by plant name and rebuilt from drain-begin/retired journal
	// records on Restart. Guarded by mu: debug endpoints snapshot it.
	draining map[string]bool
	retired  map[string]bool

	// admission/gate is the bounded front door (overload.go).
	admission AdmissionConfig
	gate      *sim.Resource

	// Telemetry instruments (nil-safe no-ops when unset).
	tel             *telemetry.Hub
	flight          *telemetry.FlightRecorder
	mCreates        *telemetry.Counter
	mCreateFails    *telemetry.Counter
	mBidRounds      *telemetry.Counter
	mDegradedRounds *telemetry.Counter
	mFailovers      *telemetry.Counter
	mBreakerOpens   *telemetry.Counter
	mRecoveredRts   *telemetry.Counter
	gMissingBids    *telemetry.Gauge
	gOpenBreakers   *telemetry.Gauge
	hCreateSecs     *telemetry.Histogram
	gBatchQueue     *telemetry.Gauge
	gInflight       *telemetry.Gauge
	hBatchWait      *telemetry.Histogram
	mCrashes        *telemetry.Counter
	mRestarts       *telemetry.Counter
	mDedups         *telemetry.Counter
	mRedrives       *telemetry.Counter
	mReconciled     *telemetry.Counter
	mPeerBidRounds  *telemetry.Counter
	mForwards       *telemetry.Counter
	mForwardFails   *telemetry.Counter
	mServedForwards *telemetry.Counter
	mStaleBids      *telemetry.Counter
	mShedCreates    *telemetry.Counter
	mDrains         *telemetry.Counter
	mRetires        *telemetry.Counter
	mMigratedVMs    *telemetry.Counter
	gAdmissionQueue *telemetry.Gauge
	hAdmissionWait  *telemetry.Histogram
}

// BidRecord is one bidding round's outcome.
type BidRecord struct {
	VMID   core.VMID
	Costs  map[string]core.Cost // plant name → bid (feasible ones only)
	Winner string
}

// New creates a shop over the given plants. The seed drives random
// tie-breaking deterministically.
func New(name string, plants []PlantHandle, seed int64) *Shop {
	return &Shop{
		name:       name,
		plants:     plants,
		rng:        sim.NewRNG(seed),
		routes:     make(map[core.VMID]PlantHandle),
		cache:      make(map[core.VMID]*classad.Ad),
		peerRoutes: make(map[core.VMID]peerRoute),
		breakers:   make(map[string]*breaker),
		inflight:   make(map[string]int),
		intents:    make(map[core.VMID]*intent),
		byReq:      make(map[string]core.VMID),
		draining:   make(map[string]bool),
		retired:    make(map[string]bool),
	}
}

// Name returns the shop name.
func (s *Shop) Name() string { return s.name }

// Plants returns the managed plant handles.
func (s *Shop) Plants() []PlantHandle { return append([]PlantHandle(nil), s.plants...) }

// Bids returns a defensive copy of the audit log of bidding rounds,
// taken under the shop's mutex.
func (s *Shop) Bids() []BidRecord {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]BidRecord(nil), s.bids...)
}

// logBid appends one bidding round to the audit log.
func (s *Shop) logBid(rec BidRecord) {
	s.mu.Lock()
	s.bids = append(s.bids, rec)
	s.mu.Unlock()
}

// SetTelemetry wires the shop's spans ("shop.create", "shop.bid") and
// metrics ("shop.creations", "shop.create_failures", "shop.bid_rounds",
// "shop.create_secs"). Passing nil detaches them.
func (s *Shop) SetTelemetry(h *telemetry.Hub) {
	s.tel = h
	s.flight = h.F()
	s.mCreates = h.Counter("shop.creations")
	s.mCreateFails = h.Counter("shop.create_failures")
	s.mBidRounds = h.Counter("shop.bid_rounds")
	s.mDegradedRounds = h.Counter("shop.degraded_bid_rounds")
	s.mFailovers = h.Counter("shop.failovers")
	s.mBreakerOpens = h.Counter("shop.breaker_opens")
	s.mRecoveredRts = h.Counter("shop.recovered_routes")
	s.gMissingBids = h.Gauge("shop.missing_bids")
	s.gOpenBreakers = h.Gauge("shop.open_breakers")
	s.hCreateSecs = h.Histogram("shop.create_secs")
	s.gBatchQueue = h.Gauge("shop.batch_queue_depth")
	s.gInflight = h.Gauge("shop.inflight_creates")
	s.hBatchWait = h.Histogram("shop.batch_wait_secs")
	s.mCrashes = h.Counter("shop.crashes")
	s.mRestarts = h.Counter("shop.restarts")
	s.mDedups = h.Counter("shop.deduped_creates")
	s.mRedrives = h.Counter("shop.redriven_creates")
	s.mReconciled = h.Counter("shop.reconciled_creates")
	s.mPeerBidRounds = h.Counter("shop.peer_bid_rounds")
	s.mForwards = h.Counter("shop.forwarded_creates")
	s.mForwardFails = h.Counter("shop.forward_failures")
	s.mServedForwards = h.Counter("shop.served_forwards")
	s.mStaleBids = h.Counter("shop.stale_bids")
	s.mShedCreates = h.Counter("shop.shed_creates")
	s.mDrains = h.Counter("shop.plant_drains")
	s.mRetires = h.Counter("shop.plant_retirements")
	s.mMigratedVMs = h.Counter("shop.drain_migrations")
	s.gAdmissionQueue = h.Gauge("shop.admission_queue")
	s.hAdmissionWait = h.Histogram("shop.admission_wait_secs")
}

// mintID assigns the next VMID (paper: "a VMShop-assigned unique
// identifier for the virtual machine (VMID)"). Safe under concurrent
// Create calls.
func (s *Shop) mintID() core.VMID {
	return core.VMID(fmt.Sprintf("vm-%s-%d", s.name, s.nextID.Add(1)))
}

// Create runs one full creation: validate, collect bids, pick the
// winner, dispatch, and return the VMID with the classad. With a
// journal attached (SetJournal) the creation is exactly-once across
// daemon deaths: an intent record is synced before dispatch, a commit
// record before the answer, and a resubmitted RequestID is answered
// from the journal instead of built twice.
func (s *Shop) Create(p *sim.Proc, spec *core.Spec) (core.VMID, *classad.Ad, error) {
	if err := spec.Validate(); err != nil {
		return "", nil, err
	}
	if s.down {
		return "", nil, ErrShopDown
	}
	// Bounded front door: queue, or shed with the retryable ErrOverload
	// when the gate's bounds say this request cannot be served in time.
	release, err := s.admit(p)
	if err != nil {
		return "", nil, err
	}
	defer release()
	if s.down {
		// The daemon died while this request queued at the gate.
		return "", nil, ErrShopDown
	}
	id, ad, done, err := s.beginCreation(p, spec)
	if done {
		return id, ad, err
	}
	ad, err = s.createAs(p, id, spec)
	if err != nil {
		return "", nil, err
	}
	return id, ad, nil
}

// createAs drives the bid/dispatch/failover machinery for an
// already-minted (and, when journaling, intent-journaled) VMID — the
// path shared by Create and restart-time intent re-driving.
func (s *Shop) createAs(p *sim.Proc, id core.VMID, spec *core.Spec) (_ *classad.Ad, err error) {
	start := p.Now()
	// The creation span roots a new trace — or joins the caller's (e.g.
	// a shop-daemon request that arrived with a trace context stamped on
	// the proc). Everything the creation touches downstream — bids,
	// plant dispatch, RPCs — parents under it via the proc's context.
	sp := s.tel.T().StartCtx(p, "shop.create", p.Trace()).
		Set("shop", s.name).
		Set("vmid", string(id))
	prevTrace := p.SetTrace(sp.Context())
	s.flight.Record(p, string(id), telemetry.EvSubmitted, spec.Name)
	defer func() {
		p.SetTrace(prevTrace)
		sp.EndErr(p, err)
		if err != nil {
			s.mCreateFails.Inc()
		} else {
			s.mCreates.Inc()
			s.hCreateSecs.Observe((p.Now() - start).Seconds())
		}
	}()
	// Draining and retired plants never enter the round: a drain must
	// not be handed new work, and replay guarantees a retired plant is
	// invisible to every post-restart re-drive.
	candidates := s.eligiblePlants()
	rec := BidRecord{VMID: id, Costs: make(map[string]core.Cost)}

	reqAd, err := requestAd(spec)
	if err != nil {
		return nil, s.abortCreation(p, id, fmt.Errorf("shop %s: bad Requirements: %w", s.name, err))
	}
	for len(candidates) > 0 {
		// Breaker gate: skip plants whose breaker is open. When every
		// remaining candidate is refused, probe them all anyway —
		// availability beats protection once nothing else is left.
		round := candidates
		if s.Breaker.Threshold > 0 {
			var allowed []PlantHandle
			for _, h := range candidates {
				if s.breakerFor(h.Name()).allow(p.Now()) {
					allowed = append(allowed, h)
				}
			}
			if len(allowed) > 0 {
				round = allowed
			}
		}
		// Bidding round: ask each plant in the round for an estimate.
		s.mBidRounds.Inc()
		bidSp := sp.Child(p, "shop.bid").
			SetInt("candidates", int64(len(round)))
		feasible := s.collectBids(p, round, spec, reqAd, &rec, bidSp)
		bidSp.SetInt("feasible", int64(len(feasible))).End(p)
		if len(feasible) == 0 {
			s.logBid(rec)
			// Hierarchical bidding: before giving up, re-auction the
			// request among the peer cells (client-originated requests
			// only — a forwarded request never hops twice).
			if fad, handled, ferr := s.tryForward(p, id, spec); handled {
				if ferr == nil {
					s.flight.Record(p, string(id), telemetry.EvCreated, "peer")
				}
				return fad, ferr
			}
			return nil, s.abortCreation(p, id, fmt.Errorf("shop %s: no plant can satisfy the request", s.name))
		}
		// Dispatch to the cheapest bidder; on a transient failure
		// (unreachable plant, crash or I/O error mid-creation — the
		// loser's partial clone is already destroyed plant-side), fail
		// over to the next-cheapest bid from the same round.
		first := true
		for len(feasible) > 0 {
			winner := s.pickWinner(feasible)
			// Stale-bid recheck: the winner bid at round start, but may
			// have begun draining — or died — since. Skip it without
			// paying a dispatch (and without counting a failover: nothing
			// was dispatched) and re-pick from the rest of the round.
			if !s.dispatchOK(winner) {
				s.mStaleBids.Inc()
				s.noteFailure(p.Now(), winner.Name())
				feasible = withoutBid(feasible, winner)
				candidates = without(candidates, winner)
				continue
			}
			if !first {
				s.mFailovers.Inc()
				sp.Set("failover", winner.Name())
				s.flight.Record(p, string(id), telemetry.EvRetried, winner.Name())
			}
			first = false
			s.flight.Record(p, string(id), telemetry.EvBidWon, winner.Name())
			retire := s.noteDispatch(winner.Name())
			ad, err := winner.Create(p, id, spec)
			retire()
			if err == nil {
				// Chaos point: the daemon can die here, after the plant
				// built the VM but before the commit record lands — the
				// window Restart's reconcile sweep repairs.
				if s.killIf("commit") {
					return nil, ErrShopDown
				}
				s.commitCreation(p, id, winner.Name())
				s.noteSuccess(winner.Name())
				rec.Winner = winner.Name()
				s.logBid(rec)
				s.routes[id] = winner
				if s.CacheAds {
					s.cache[id] = ad.Clone()
				}
				sp.Set("winner", winner.Name())
				s.flight.Record(p, string(id), telemetry.EvCreated, winner.Name())
				return ad, nil
			}
			if !errors.Is(err, ErrPlantDown) && !errors.Is(err, core.ErrTransient) {
				// A plant-internal creation failure (e.g. a configuration
				// action whose error policy aborted) is the request's
				// outcome, reported to the client: it would fail the same
				// way on every plant. Only transient failures fail over.
				s.logBid(rec)
				return nil, s.abortCreation(p, id, fmt.Errorf("shop %s: plant %s: %w", s.name, winner.Name(), err))
			}
			s.noteFailure(p.Now(), winner.Name())
			feasible = withoutBid(feasible, winner)
			candidates = without(candidates, winner)
		}
		// Every bidder of this round failed transiently; re-bid among
		// whoever is left (plants that bid infeasible, were skipped by
		// their breaker, or missed the round's deadline).
	}
	s.logBid(rec)
	// Every local plant failed transiently; a peer cell may still be
	// able to serve the request.
	if fad, handled, ferr := s.tryForward(p, id, spec); handled {
		if ferr == nil {
			s.flight.Record(p, string(id), telemetry.EvCreated, "peer")
		}
		return fad, ferr
	}
	// Safe to abort: every transient failure path destroyed its partial
	// clone plant-side, so no VM exists anywhere under this VMID.
	return nil, s.abortCreation(p, id, fmt.Errorf("shop %s: every feasible plant failed to create the VM", s.name))
}

// bid is one feasible answer from a bidding round.
type bid struct {
	h PlantHandle
	c core.Cost
	// slots is the plant's advertised admission cap (CloneSlots);
	// 0 when the plant doesn't advertise one.
	slots int
}

// pickWinner selects the cheapest bid, ties broken uniformly at random
// ("The VMShop picks one plant at random", §3.4). Under the batched
// pipeline, bids from plants whose advertised clone slots are all
// occupied by this shop's own in-flight orders are set aside first —
// unless that empties the set, in which case queuing somewhere beats
// failing. With nothing in flight the filter passes everything, so a
// serial creation draws from exactly the same candidates as before.
func (s *Shop) pickWinner(feasible []bid) PlantHandle {
	pool := feasible
	if open := s.admissible(feasible); len(open) > 0 {
		pool = open
	}
	best := pool[0].c
	for _, b := range pool[1:] {
		if b.c < best {
			best = b.c
		}
	}
	var winners []PlantHandle
	for _, b := range pool {
		if b.c == best {
			winners = append(winners, b.h)
		}
	}
	return winners[s.rng.Intn(len(winners))]
}

func withoutBid(bs []bid, drop PlantHandle) []bid {
	out := bs[:0]
	for _, b := range bs {
		if b.h != drop {
			out = append(out, b)
		}
	}
	return out
}

// collectBids runs one bidding round over the given plants and returns
// the feasible bids. With no BidTimeout it asks each plant in turn and
// waits as long as each takes — the legacy round. With a timeout it
// asks all plants concurrently and closes the round at the deadline
// with whatever arrived; responses past the deadline are discarded, a
// round that would otherwise close empty-handed extends until its
// first response (quorum ≥ 1), and plants that missed the deadline are
// charged a breaker failure.
func (s *Shop) collectBids(p *sim.Proc, round []PlantHandle, spec *core.Spec, reqAd *classad.Ad, rec *BidRecord, bidSp *telemetry.Span) []bid {
	type answer struct {
		h   PlantHandle
		c   core.Cost
		ad  *classad.Ad
		err error
	}
	var answers []answer
	if s.BidTimeout <= 0 {
		prev := p.SetTrace(bidSp.Context())
		for _, h := range round {
			c, plantAd, err := h.Estimate(p, spec)
			answers = append(answers, answer{h, c, plantAd, err})
		}
		p.SetTrace(prev)
	} else {
		st := struct {
			open    bool
			pending int
			got     []answer
		}{open: true, pending: len(round)}
		client := p
		// Captured outside the closures: bid procs are separate processes,
		// so each installs the bid span's context on itself before asking,
		// keeping estimate spans (and estimate RPC envelopes) parented
		// under this round rather than orphaned.
		bidCtx := bidSp.Context()
		for _, h := range round {
			h := h
			p.Kernel().Spawn("bid/"+h.Name(), func(bp *sim.Proc) {
				bp.SetTrace(bidCtx)
				c, plantAd, err := h.Estimate(bp, spec)
				if !st.open {
					return // the round closed without us; bid discarded
				}
				st.pending--
				st.got = append(st.got, answer{h, c, plantAd, err})
				client.WakeUp()
			})
		}
		deadline := p.Now() + s.BidTimeout
		for st.pending > 0 {
			if len(st.got) > 0 && p.Now() >= deadline {
				break
			}
			wait := deadline - p.Now()
			if wait <= 0 {
				// Past the deadline with nothing in hand: extend in
				// timeout-sized grace periods until the first response.
				wait = s.BidTimeout
			}
			p.Wait(wait)
		}
		st.open = false
		answers = st.got
		if st.pending > 0 {
			// Degraded round: proceed on partial bids; laggards count
			// as transport failures toward their breakers.
			s.mDegradedRounds.Inc()
			bidSp.SetInt("missing", int64(st.pending))
			answered := make(map[string]bool, len(answers))
			for _, a := range answers {
				answered[a.h.Name()] = true
			}
			for _, h := range round {
				if !answered[h.Name()] {
					s.noteFailure(p.Now(), h.Name())
				}
			}
		}
		s.gMissingBids.Set(int64(st.pending))
	}

	var feasible []bid
	for _, a := range answers {
		if a.err != nil {
			s.noteFailure(p.Now(), a.h.Name())
			continue
		}
		s.noteSuccess(a.h.Name())
		if !a.c.OK() {
			continue
		}
		// Classad matchmaking (Raman et al.): the request's
		// Requirements must accept the plant's resource ad, and the
		// plant's policy Requirements must accept the request.
		if a.ad != nil && !classad.Match(reqAd, a.ad) {
			continue
		}
		slots := 0
		if a.ad != nil {
			slots = int(a.ad.GetInt("CloneSlots", 0))
		}
		rec.Costs[a.h.Name()] = a.c
		feasible = append(feasible, bid{a.h, a.c, slots})
	}
	return feasible
}

// Recover rebuilds the shop's soft routing state by asking every plant
// for its VM inventory (paper §3.1: an active VM's classad "is not part
// of the state that needs to be maintained by VMShop" — it can always
// be re-learned). All existing routes are dropped first, so routes to
// unreachable plants disappear rather than being fabricated: the shop
// honestly reports not knowing those VMs until the plant returns and a
// later Recover — or a per-query recovery sweep — re-learns them. It
// returns the number of routes learned and the names of the plants it
// could not reach.
func (s *Shop) Recover(p *sim.Proc) (routes int, unreachable []string) {
	sp := s.tel.T().Start(p, "shop.recover").Set("shop", s.name)
	defer func() {
		sp.SetInt("routes", int64(routes)).
			SetInt("unreachable", int64(len(unreachable))).
			End(p)
	}()
	s.routes = make(map[core.VMID]PlantHandle)
	for _, h := range s.plants {
		ids, err := h.List(p)
		if err != nil {
			unreachable = append(unreachable, h.Name())
			s.noteFailure(p.Now(), h.Name())
			continue
		}
		s.noteSuccess(h.Name())
		for _, id := range ids {
			s.routes[id] = h
			s.journalRouteLearn(p, id, h.Name())
			routes++
		}
	}
	s.mRecoveredRts.Add(int64(routes))
	return routes, unreachable
}

func without(hs []PlantHandle, drop PlantHandle) []PlantHandle {
	out := hs[:0]
	for _, h := range hs {
		if h != drop {
			out = append(out, h)
		}
	}
	return out
}

// Query returns an active VM's classad. Unknown routes trigger
// recovery: the shop asks every plant, rebuilding its soft state.
// Forwarded creations are routed to the peer cell serving them.
func (s *Shop) Query(p *sim.Proc, id core.VMID) (*classad.Ad, error) {
	if s.down {
		return nil, ErrShopDown
	}
	if pr, ok := s.peerRouteOf(id); ok {
		ad, found, err := pr.peer.Query(p, pr.remote)
		if err == nil && found {
			if s.CacheAds {
				s.cache[id] = ad.Clone()
			}
			return ad, nil
		}
		if err == nil && !found {
			// The peer no longer holds the VM (collected there); the
			// cross-cell route is stale.
			s.dropPeerRoute(id)
			delete(s.cache, id)
		}
		// Peer unreachable: fall through to the stale-cache answer.
		if s.CacheAds {
			if ad, ok := s.cache[id]; ok {
				return ad.Clone(), nil
			}
		}
		return nil, fmt.Errorf("shop %s: peer %s serving VM %s is unreachable", s.name, pr.peer.Name(), id)
	}
	if h, ok := s.routes[id]; ok {
		ad, found, err := h.Query(p, id)
		if err == nil && found {
			if s.CacheAds {
				s.cache[id] = ad.Clone()
			}
			return ad, nil
		}
		if err == nil && !found {
			// The routed plant no longer holds the VM: it was collected
			// — or migrated to another plant. Drop the stale route and
			// fall through to the recovery sweep, which finds migrated
			// VMs and re-learns their location.
			delete(s.routes, id)
			delete(s.cache, id)
		}
		// Plant unreachable or route stale: recovery sweep below.
	}
	if ad, ok := s.recover(p, id); ok {
		return ad, nil
	}
	// Serve a stale cached ad if we have one and the plant is down.
	if s.CacheAds {
		if ad, ok := s.cache[id]; ok {
			return ad.Clone(), nil
		}
	}
	return nil, fmt.Errorf("shop %s: no plant knows VM %s", s.name, id)
}

// recover sweeps all plants for a VM the shop has no (valid) route to.
func (s *Shop) recover(p *sim.Proc, id core.VMID) (*classad.Ad, bool) {
	for _, h := range s.plants {
		ad, found, err := h.Query(p, id)
		if err != nil || !found {
			continue
		}
		s.routes[id] = h
		s.journalRouteLearn(p, id, h.Name())
		if s.CacheAds {
			s.cache[id] = ad.Clone()
		}
		return ad, true
	}
	return nil, false
}

// Destroy collects a VM. With a journal attached, a route-drop record
// makes the departure durable, so a restarted shop neither routes to
// nor re-drives a VM the client already destroyed. Forwarded creations
// are collected in the peer cell serving them.
func (s *Shop) Destroy(p *sim.Proc, id core.VMID) error {
	if s.down {
		return ErrShopDown
	}
	if pr, ok := s.peerRouteOf(id); ok {
		found, err := pr.peer.Collect(p, pr.remote)
		if err != nil {
			return err
		}
		s.dropPeerRoute(id)
		delete(s.cache, id)
		s.journalDrop(p, id)
		if !found {
			return fmt.Errorf("shop %s: VM %s no longer exists on peer %s", s.name, id, pr.peer.Name())
		}
		return nil
	}
	h, ok := s.routes[id]
	if !ok {
		if _, found := s.recover(p, id); !found {
			return fmt.Errorf("shop %s: no plant knows VM %s", s.name, id)
		}
		h = s.routes[id]
	}
	found, err := h.Collect(p, id)
	if err != nil {
		return err
	}
	delete(s.routes, id)
	delete(s.cache, id)
	s.journalDrop(p, id)
	if !found {
		return fmt.Errorf("shop %s: VM %s no longer exists", s.name, id)
	}
	return nil
}

// Publish checkpoints an active VM into the warehouse as a new golden
// image, routed to the hosting plant — or to the peer cell serving a
// forwarded creation (the image lands in that cell's warehouse and
// reaches this one through catalog gossip).
func (s *Shop) Publish(p *sim.Proc, id core.VMID, image string) error {
	if pr, ok := s.peerRouteOf(id); ok {
		return pr.peer.Publish(p, pr.remote, image)
	}
	h, ok := s.routes[id]
	if !ok {
		if _, found := s.recover(p, id); !found {
			return fmt.Errorf("shop %s: no plant knows VM %s", s.name, id)
		}
		h = s.routes[id]
	}
	return h.Publish(p, id, image)
}

// Suspend parks an active VM (checkpoint to disk, host memory freed).
func (s *Shop) Suspend(p *sim.Proc, id core.VMID) error {
	return s.lifecycle(p, id, proto.LifecycleSuspend)
}

// Resume brings a suspended VM back to running.
func (s *Shop) Resume(p *sim.Proc, id core.VMID) error {
	return s.lifecycle(p, id, proto.LifecycleResume)
}

func (s *Shop) lifecycle(p *sim.Proc, id core.VMID, op string) error {
	if pr, ok := s.peerRouteOf(id); ok {
		return pr.peer.Lifecycle(p, pr.remote, op)
	}
	h, ok := s.routes[id]
	if !ok {
		if _, found := s.recover(p, id); !found {
			return fmt.Errorf("shop %s: no plant knows VM %s", s.name, id)
		}
		h = s.routes[id]
	}
	return h.Lifecycle(p, id, op)
}

// ForgetRoutes drops the shop's soft routing state, simulating a shop
// restart; subsequent queries must recover from the plants.
func (s *Shop) ForgetRoutes() {
	s.routes = make(map[core.VMID]PlantHandle)
	s.cache = make(map[core.VMID]*classad.Ad)
}

// requestAd renders a creation request as a classad for matchmaking
// against plant resource ads.
func requestAd(spec *core.Spec) (*classad.Ad, error) {
	ad := classad.New().
		SetString("Name", spec.Name).
		SetString("Arch", spec.Hardware.Arch).
		SetInt("MemoryMB", int64(spec.Hardware.MemoryMB)).
		SetInt("DiskMB", int64(spec.Hardware.DiskMB)).
		SetString("Domain", spec.Domain).
		SetString("Backend", spec.Backend)
	if spec.Requirements != "" {
		if err := ad.SetExprString("Requirements", spec.Requirements); err != nil {
			return nil, err
		}
	}
	return ad, nil
}

// RouteOf reports which plant the shop believes hosts the VM ("" when
// unknown) — used by tests and the experiment harness. A forwarded
// creation reports "peer:<cell>".
func (s *Shop) RouteOf(id core.VMID) string {
	if pr, ok := s.peerRouteOf(id); ok {
		return "peer:" + pr.peer.Name()
	}
	if h, ok := s.routes[id]; ok {
		return h.Name()
	}
	return ""
}

// peerRouteOf reads a cross-cell route under the mutex (debug endpoints
// snapshot the table from outside the kernel).
func (s *Shop) peerRouteOf(id core.VMID) (peerRoute, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	pr, ok := s.peerRoutes[id]
	return pr, ok
}

func (s *Shop) dropPeerRoute(id core.VMID) {
	s.mu.Lock()
	delete(s.peerRoutes, id)
	s.mu.Unlock()
}
