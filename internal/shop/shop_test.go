package shop

import (
	"strings"
	"testing"

	"vmplants/internal/actions"
	"vmplants/internal/cluster"
	"vmplants/internal/core"
	"vmplants/internal/dag"
	"vmplants/internal/plant"
	"vmplants/internal/sim"
	"vmplants/internal/warehouse"
)

func act(op string, kv ...string) dag.Action {
	p := map[string]string{}
	for i := 0; i+1 < len(kv); i += 2 {
		p[kv[i]] = kv[i+1]
	}
	tgt, _ := actions.DefaultTarget(op)
	return dag.Action{Op: op, Target: tgt, Params: p}
}

func wsGraph(t testing.TB, user string) *dag.Graph {
	t.Helper()
	g, err := dag.NewBuilder().
		Add("os", act(actions.OpInstallOS, "distro", "mandrake-8.1")).
		Add("vnc", act(actions.OpInstallPackage, "name", "vnc-server"), "os").
		Add("user", act(actions.OpCreateUser, "name", user), "vnc").
		Build()
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func wsSpec(t testing.TB, user, domain string) *core.Spec {
	return &core.Spec{
		Name:     "ws-" + user,
		Hardware: core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048},
		Domain:   domain,
		Graph:    wsGraph(t, user),
	}
}

// deployment is a multi-plant rig with a shop in front.
type deployment struct {
	k       *sim.Kernel
	wh      *warehouse.Warehouse
	plants  []*plant.Plant
	handles []*LocalHandle
	shop    *Shop
}

func newDeployment(t *testing.T, nPlants int, cfg plant.Config) *deployment {
	t.Helper()
	k := sim.NewKernel()
	tb := cluster.NewTestbed(k, nPlants, cluster.DefaultParams(), 9)
	wh := warehouse.New(tb.Warehouse)
	im, err := warehouse.BuildGolden("ws-golden",
		core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048},
		warehouse.BackendVMware,
		[]dag.Action{
			act(actions.OpInstallOS, "distro", "mandrake-8.1"),
			act(actions.OpInstallPackage, "name", "vnc-server"),
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := wh.Publish(im); err != nil {
		t.Fatal(err)
	}
	d := &deployment{k: k, wh: wh}
	var phs []PlantHandle
	for i, node := range tb.Nodes {
		pl := plant.New(node.Name(), node, wh, cfg)
		h := NewLocalHandle(pl)
		d.plants = append(d.plants, pl)
		d.handles = append(d.handles, h)
		phs = append(phs, h)
		_ = i
	}
	d.shop = New("shop", phs, 1234)
	return d
}

func (d *deployment) run(t *testing.T, body func(p *sim.Proc)) {
	t.Helper()
	d.k.Spawn("client", body)
	res := d.k.Run(0)
	if len(res.Stranded) != 0 {
		t.Fatalf("stranded: %v", res.Stranded)
	}
}

func TestCreateQueryDestroyThroughShop(t *testing.T) {
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32})
	d.run(t, func(p *sim.Proc) {
		id, ad, err := d.shop.Create(p, wsSpec(t, "ivan", "ufl.edu"))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(id), "vm-shop-") {
			t.Errorf("VMID = %s", id)
		}
		if ad.GetString(core.AttrVMID, "") != string(id) {
			t.Error("classad VMID mismatch")
		}
		got, err := d.shop.Query(p, id)
		if err != nil {
			t.Fatal(err)
		}
		if got.GetString(core.AttrName, "") != "ws-ivan" {
			t.Errorf("queried ad: %s", got)
		}
		if err := d.shop.Destroy(p, id); err != nil {
			t.Fatal(err)
		}
		if _, err := d.shop.Query(p, id); err == nil {
			t.Error("destroyed VM queryable")
		}
		if err := d.shop.Destroy(p, id); err == nil {
			t.Error("double destroy succeeded")
		}
	})
}

func TestVMIDsAreUnique(t *testing.T) {
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32})
	d.run(t, func(p *sim.Proc) {
		seen := map[core.VMID]bool{}
		for i := 0; i < 5; i++ {
			id, _, err := d.shop.Create(p, wsSpec(t, "u"+string(rune('a'+i)), "ufl.edu"))
			if err != nil {
				t.Fatal(err)
			}
			if seen[id] {
				t.Fatalf("duplicate VMID %s", id)
			}
			seen[id] = true
		}
	})
}

func TestCostCrossoverAt13VMs(t *testing.T) {
	// The paper's §3.4 walk-through: 2 plants, 4 networks each, max 32
	// VMs, network cost 50, compute 4/VM. First 13 VMs of one domain
	// land on one plant; the 14th goes to the other.
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32, HostOnlyNetworks: 4})
	d.run(t, func(p *sim.Proc) {
		var first string
		for i := 0; i < 14; i++ {
			id, ad, err := d.shop.Create(p, wsSpec(t, "u"+string(rune('a'+i)), "ufl.edu"))
			if err != nil {
				t.Fatalf("request %d: %v", i+1, err)
			}
			plantName := ad.GetString(core.AttrPlant, "")
			if i == 0 {
				first = plantName
				continue
			}
			if i < 13 && plantName != first {
				t.Errorf("request %d went to %s, want %s", i+1, plantName, first)
			}
			if i == 13 && plantName == first {
				t.Errorf("request 14 stayed on %s, want the other plant", first)
			}
			_ = id
		}
	})
}

func TestBidAuditLog(t *testing.T) {
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32})
	d.run(t, func(p *sim.Proc) {
		d.shop.Create(p, wsSpec(t, "u1", "ufl.edu"))
	})
	bids := d.shop.Bids()
	if len(bids) != 1 {
		t.Fatalf("%d bid records", len(bids))
	}
	if len(bids[0].Costs) != 2 || bids[0].Winner == "" {
		t.Errorf("bid record = %+v", bids[0])
	}
	for _, c := range bids[0].Costs {
		if c != 50 {
			t.Errorf("initial bid %v, want 50", c)
		}
	}
}

func TestNoFeasiblePlant(t *testing.T) {
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32})
	d.run(t, func(p *sim.Proc) {
		s := wsSpec(t, "u1", "ufl.edu")
		s.Hardware.MemoryMB = 512 // no golden image of this size
		if _, _, err := d.shop.Create(p, s); err == nil {
			t.Error("create without feasible plant succeeded")
		}
	})
}

func TestCreateFallsBackWhenWinnerDies(t *testing.T) {
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32})
	d.run(t, func(p *sim.Proc) {
		// First create decides the preferred plant.
		_, ad, err := d.shop.Create(p, wsSpec(t, "u1", "ufl.edu"))
		if err != nil {
			t.Fatal(err)
		}
		winner := ad.GetString(core.AttrPlant, "")
		// Kill the winner: it still bids? No — Down makes Estimate fail,
		// so the shop must route to the survivor.
		for _, h := range d.handles {
			if h.Name() == winner {
				h.Down = true
			}
		}
		_, ad2, err := d.shop.Create(p, wsSpec(t, "u2", "ufl.edu"))
		if err != nil {
			t.Fatal(err)
		}
		if ad2.GetString(core.AttrPlant, "") == winner {
			t.Error("create routed to a dead plant")
		}
	})
}

func TestShopRecoversRoutesAfterRestart(t *testing.T) {
	d := newDeployment(t, 3, plant.Config{MaxVMs: 32})
	d.run(t, func(p *sim.Proc) {
		id, _, err := d.shop.Create(p, wsSpec(t, "u1", "ufl.edu"))
		if err != nil {
			t.Fatal(err)
		}
		before := d.shop.RouteOf(id)
		// Simulated shop restart: soft state gone.
		d.shop.ForgetRoutes()
		if d.shop.RouteOf(id) != "" {
			t.Fatal("routes survived restart")
		}
		// Query recovers by sweeping plants.
		ad, err := d.shop.Query(p, id)
		if err != nil {
			t.Fatalf("post-restart query: %v", err)
		}
		if ad.GetString(core.AttrVMID, "") != string(id) {
			t.Error("recovered wrong ad")
		}
		if d.shop.RouteOf(id) != before {
			t.Errorf("recovered route %q, want %q", d.shop.RouteOf(id), before)
		}
		// Destroy also works after restart.
		d.shop.ForgetRoutes()
		if err := d.shop.Destroy(p, id); err != nil {
			t.Fatalf("post-restart destroy: %v", err)
		}
	})
}

func TestCachedAdServedWhenPlantDown(t *testing.T) {
	d := newDeployment(t, 1, plant.Config{MaxVMs: 32})
	d.shop.CacheAds = true
	d.run(t, func(p *sim.Proc) {
		id, _, err := d.shop.Create(p, wsSpec(t, "u1", "ufl.edu"))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := d.shop.Query(p, id); err != nil {
			t.Fatal(err)
		}
		d.handles[0].Down = true
		ad, err := d.shop.Query(p, id)
		if err != nil {
			t.Fatalf("cached query: %v", err)
		}
		if ad.GetString(core.AttrVMID, "") != string(id) {
			t.Error("wrong cached ad")
		}
	})
}

func TestQueryUnknownVM(t *testing.T) {
	d := newDeployment(t, 1, plant.Config{})
	d.run(t, func(p *sim.Proc) {
		if _, err := d.shop.Query(p, "vm-shop-999"); err == nil {
			t.Error("query of unknown VM succeeded")
		}
		if err := d.shop.Destroy(p, "vm-shop-999"); err == nil {
			t.Error("destroy of unknown VM succeeded")
		}
	})
}

func TestLoadSpreadsWithFreeMemoryModel(t *testing.T) {
	cfgModel, err := costModel("free-memory")
	if err != nil {
		t.Fatal(err)
	}
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32, CostModel: cfgModel})
	d.run(t, func(p *sim.Proc) {
		counts := map[string]int{}
		for i := 0; i < 6; i++ {
			_, ad, err := d.shop.Create(p, wsSpec(t, "u"+string(rune('a'+i)), "ufl.edu"))
			if err != nil {
				t.Fatal(err)
			}
			counts[ad.GetString(core.AttrPlant, "")]++
		}
		// Memory-based bidding alternates plants: both get 3.
		for name, n := range counts {
			if n != 3 {
				t.Errorf("plant %s got %d VMs: %v", name, n, counts)
			}
		}
	})
}
