package shop

import (
	"fmt"
	"sync"
	"testing"

	"vmplants/internal/plant"
	"vmplants/internal/sim"
	"vmplants/internal/telemetry"
)

// TestShopTelemetry checks that a traced shop creation leaves a
// "shop.create" span with its bidding round recorded, and feeds the
// shop's counters.
func TestShopTelemetry(t *testing.T) {
	hub := telemetry.New()
	d := newDeployment(t, 3, plant.Config{MaxVMs: 32})
	d.shop.SetTelemetry(hub)
	d.run(t, func(p *sim.Proc) {
		if _, _, err := d.shop.Create(p, wsSpec(t, "tina", "ufl.edu")); err != nil {
			t.Fatal(err)
		}
	})

	var root, bid *telemetry.Span
	for _, s := range hub.Tracer.Spans() {
		s := s
		switch s.Name {
		case "shop.create":
			root = &s
		case "shop.bid":
			bid = &s
		}
	}
	if root == nil || bid == nil {
		t.Fatal("missing shop.create or shop.bid span")
	}
	if root.Err != "" {
		t.Fatalf("shop.create failed: %s", root.Err)
	}
	if root.Attr("winner") == "" {
		t.Fatal("shop.create span has no winner")
	}
	if bid.Parent != root.ID || bid.Attr("feasible") != "3" {
		t.Fatalf("bid span: parent=%d attrs=%v", bid.Parent, bid.Attrs)
	}
	if got := hub.Metrics.Counter("shop.creations").Value(); got != 1 {
		t.Fatalf("shop.creations = %d, want 1", got)
	}
	if got := hub.Metrics.Counter("shop.bid_rounds").Value(); got != 1 {
		t.Fatalf("shop.bid_rounds = %d, want 1", got)
	}
	if got := hub.Metrics.Histogram("shop.create_secs").Count(); got != 1 {
		t.Fatalf("shop.create_secs count = %d, want 1", got)
	}
}

// TestBidsConcurrentReads exercises the S1 fix: Bids must return a
// defensive copy taken under the shop's mutex while creations append
// to the audit log (run with -race).
func TestBidsConcurrentReads(t *testing.T) {
	d := newDeployment(t, 2, plant.Config{MaxVMs: 32})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				d.shop.Bids()
			}
		}
	}()
	d.run(t, func(p *sim.Proc) {
		for i := 0; i < 3; i++ {
			if _, _, err := d.shop.Create(p, wsSpec(t, fmt.Sprintf("w%d", i), "ufl.edu")); err != nil {
				t.Fatal(err)
			}
		}
	})
	close(stop)
	wg.Wait()
	if got := len(d.shop.Bids()); got != 3 {
		t.Fatalf("bid log has %d rounds, want 3", got)
	}
}

// TestMintIDConcurrent checks VMIDs stay unique under concurrent
// minting (the S1 atomic fix).
func TestMintIDConcurrent(t *testing.T) {
	s := New("shop", nil, 1)
	const workers, per = 8, 100
	ids := make(chan string, workers*per)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				ids <- string(s.mintID())
			}
		}()
	}
	wg.Wait()
	close(ids)
	seen := make(map[string]bool)
	for id := range ids {
		if seen[id] {
			t.Fatalf("duplicate VMID %s", id)
		}
		seen[id] = true
	}
	if len(seen) != workers*per {
		t.Fatalf("minted %d unique IDs, want %d", len(seen), workers*per)
	}
}
