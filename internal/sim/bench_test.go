package sim

import (
	"testing"
	"time"
)

func BenchmarkKernelEventThroughput(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	k.Spawn("ticker", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(time.Millisecond)
		}
	})
	b.ResetTimer()
	k.Run(0)
}

func BenchmarkPipeTransfers(b *testing.B) {
	b.ReportAllocs()
	k := NewKernel()
	pipe := NewPipe("d", 1e9)
	k.Spawn("xfer", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			pipe.Transfer(p, 4096, 1)
		}
	})
	b.ResetTimer()
	k.Run(0)
}
