// Package sim implements a deterministic discrete-event simulation kernel.
//
// The kernel models virtual time. Simulation actors are "processes":
// ordinary goroutines that the kernel runs one at a time, in strict
// event-timestamp order, so a simulation with a fixed RNG seed is fully
// deterministic regardless of the host scheduler. A process interacts
// with virtual time exclusively through its *Proc handle (Sleep, Wait,
// resource acquisition); while one process runs, every other process and
// the kernel's Run loop are parked, and control is handed over through a
// single baton. This mirrors the classic process-oriented simulation
// style (SimPy, CSIM). Ties on timestamps are broken by event sequence
// number, so FIFO ordering among same-time events is preserved.
package sim

import (
	"container/heap"
	"fmt"
	"math"
	"sort"
	"time"

	"vmplants/internal/telemetry"
)

// event is a scheduled resumption of a process at a virtual time.
type event struct {
	at   time.Duration
	seq  uint64
	proc *Proc
	idx  int // heap index
}

// eventQueue is a min-heap ordered by (at, seq).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].idx = i
	q[j].idx = j
}
func (q *eventQueue) Push(x any) {
	e := x.(*event)
	e.idx = len(*q)
	*q = append(*q, e)
}
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Kernel is a discrete-event simulation. The zero value is not usable;
// create one with NewKernel.
//
// A Kernel is not safe for concurrent use from multiple host goroutines:
// Run must be called from exactly one goroutine, and all process code is
// serialized by the kernel itself.
type Kernel struct {
	now        time.Duration
	seq        uint64
	dispatched uint64
	queue      eventQueue
	procs      map[int64]*Proc
	nextID     int64
	running    bool
	yielded    chan struct{}

	// Telemetry instruments (nil-safe no-ops when unset).
	gQueueDepth *telemetry.Gauge
	gQueueMax   *telemetry.Gauge
	cEvents     *telemetry.Counter
}

// NewKernel returns an empty simulation at virtual time zero.
func NewKernel() *Kernel {
	return &Kernel{
		procs:   make(map[int64]*Proc),
		yielded: make(chan struct{}),
	}
}

// Now reports the current virtual time as an offset from simulation start.
func (k *Kernel) Now() time.Duration { return k.now }

// QueueDepth reports how many events are pending.
func (k *Kernel) QueueDepth() int { return k.queue.Len() }

// Dispatched reports events dispatched over the kernel's life.
func (k *Kernel) Dispatched() uint64 { return k.dispatched }

// SetTelemetry wires the kernel's instruments: the event-queue depth
// gauge ("sim.queue_depth", with "sim.queue_depth_max" as high-water
// mark) and the dispatched-event counter ("sim.events_dispatched").
// Passing nil detaches them.
func (k *Kernel) SetTelemetry(h *telemetry.Hub) {
	k.gQueueDepth = h.Gauge("sim.queue_depth")
	k.gQueueMax = h.Gauge("sim.queue_depth_max")
	k.cEvents = h.Counter("sim.events_dispatched")
}

// ProcState describes the lifecycle of a simulation process.
type ProcState int

// Process lifecycle states.
const (
	ProcReady   ProcState = iota // spawned, not yet started
	ProcRunning                  // currently executing
	ProcBlocked                  // waiting on a queue, resource, or signal
	ProcDone                     // body returned
)

// Proc is the kernel-side handle for one simulation process. All methods
// must be called from within some running process or before Run starts,
// as documented per method.
type Proc struct {
	k      *Kernel
	id     int64
	name   string
	state  ProcState
	resume chan struct{}
	parked *event // pending wakeup, if any

	// interrupted is set when another process wakes this one out of a
	// Wait before its deadline.
	interrupted bool

	// trace is the process's current trace context — which span new
	// work on this proc should parent under. Only the proc's own
	// goroutine touches it (the kernel serializes processes), so no
	// lock is needed.
	trace telemetry.SpanContext
}

// Trace returns the process's current trace context (zero when no
// trace is active).
func (p *Proc) Trace() telemetry.SpanContext { return p.trace }

// SetTrace installs a trace context on the process and returns the
// previous one, so a caller scoping a span can restore it:
//
//	prev := p.SetTrace(sp.Context())
//	defer p.SetTrace(prev)
func (p *Proc) SetTrace(sc telemetry.SpanContext) telemetry.SpanContext {
	prev := p.trace
	p.trace = sc
	return prev
}

// ID returns the process's unique id within its kernel.
func (p *Proc) ID() int64 { return p.id }

// Name returns the name given at Spawn.
func (p *Proc) Name() string { return p.name }

// Kernel returns the owning kernel. Useful for spawning children.
func (p *Proc) Kernel() *Kernel { return p.k }

// Now reports current virtual time. Callable only while p is running.
func (p *Proc) Now() time.Duration { return p.k.now }

// State reports the process's lifecycle state.
func (p *Proc) State() ProcState { return p.state }

// Spawn registers a new process whose body is fn and schedules it to
// start at the current virtual time. Spawn may be called before Run or
// from inside a running process.
func (k *Kernel) Spawn(name string, fn func(p *Proc)) *Proc {
	k.nextID++
	p := &Proc{
		k:      k,
		id:     k.nextID,
		name:   name,
		state:  ProcReady,
		resume: make(chan struct{}),
	}
	k.procs[p.id] = p
	go func() {
		<-p.resume
		p.state = ProcRunning
		fn(p)
		p.state = ProcDone
		delete(k.procs, p.id)
		k.yielded <- struct{}{}
	}()
	p.scheduleAt(k.now)
	return p
}

// scheduleAt enqueues a wakeup for p at time at (clamped to >= now).
func (p *Proc) scheduleAt(at time.Duration) {
	k := p.k
	if at < k.now {
		at = k.now
	}
	k.seq++
	e := &event{at: at, seq: k.seq, proc: p}
	p.parked = e
	heap.Push(&k.queue, e)
}

// cancelPending removes p's scheduled wakeup, if any.
func (p *Proc) cancelPending() {
	if p.parked == nil {
		return
	}
	heap.Remove(&p.k.queue, p.parked.idx)
	p.parked = nil
}

// yield hands the baton back to the Run loop and blocks until the kernel
// resumes this process.
func (p *Proc) yield() {
	p.state = ProcBlocked
	p.k.yielded <- struct{}{}
	<-p.resume
	p.state = ProcRunning
}

// Sleep suspends the calling process for d of virtual time. A zero or
// negative d yields to other same-time events and returns.
func (p *Proc) Sleep(d time.Duration) {
	if d < 0 {
		d = 0
	}
	p.scheduleAt(p.k.now + d)
	p.yield()
	p.interrupted = false
}

// Wait suspends the calling process until another process calls WakeUp,
// or until d elapses if d >= 0 (d < 0 means wait indefinitely). It
// reports whether the process was woken explicitly (true) rather than
// timing out (false).
func (p *Proc) Wait(d time.Duration) bool {
	if d >= 0 {
		p.scheduleAt(p.k.now + d)
	}
	p.yield()
	woken := p.interrupted
	p.interrupted = false
	return woken
}

// WakeUp makes a blocked process runnable at the current virtual time.
// It must be called from another running process. Waking a process that
// is not blocked is a no-op.
func (p *Proc) WakeUp() {
	if p.state != ProcBlocked {
		return
	}
	p.cancelPending()
	p.interrupted = true
	p.scheduleAt(p.k.now)
}

// RunResult summarizes a kernel run.
type RunResult struct {
	End      time.Duration // virtual time when Run returned
	Events   uint64        // events dispatched over the kernel's life
	Stranded []string      // names of live processes left blocked forever
}

// Run drives the simulation until no events remain or virtual time would
// exceed until (until <= 0 means run to quiescence). It returns a
// summary including the names of any processes left permanently blocked;
// such processes' goroutines remain parked until the host process exits,
// so long-lived callers should treat a non-empty Stranded list as a bug.
func (k *Kernel) Run(until time.Duration) RunResult {
	if k.running {
		panic("sim: Kernel.Run called re-entrantly")
	}
	k.running = true
	defer func() { k.running = false }()
	for k.queue.Len() > 0 {
		if until > 0 && k.queue[0].at > until {
			k.now = until
			break
		}
		e := heap.Pop(&k.queue).(*event)
		if e.proc.parked != e {
			continue // stale event: the process was rescheduled
		}
		e.proc.parked = nil
		if e.at > k.now {
			k.now = e.at
		}
		k.dispatched++
		k.cEvents.Add(1)
		depth := int64(k.queue.Len())
		k.gQueueDepth.Set(depth)
		k.gQueueMax.SetMax(depth)
		e.proc.resume <- struct{}{}
		<-k.yielded
	}
	res := RunResult{End: k.now, Events: k.dispatched}
	for _, p := range k.procs {
		if p.state == ProcBlocked && p.parked == nil {
			res.Stranded = append(res.Stranded, p.name)
		}
	}
	sort.Strings(res.Stranded)
	return res
}

// Failf panics with a simulation-context message. Processes use it for
// invariant violations; tests recover it via testing's panic handling.
func (p *Proc) Failf(format string, args ...any) {
	panic(fmt.Sprintf("sim: t=%v proc=%q: %s", p.k.now, p.name, fmt.Sprintf(format, args...)))
}

// Seconds converts a float number of seconds to a time.Duration,
// saturating instead of overflowing.
func Seconds(s float64) time.Duration {
	if s <= 0 {
		return 0
	}
	f := s * float64(time.Second)
	if f > math.MaxInt64 {
		return time.Duration(math.MaxInt64)
	}
	return time.Duration(f)
}
