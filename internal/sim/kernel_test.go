package sim

import (
	"testing"
	"time"
)

func TestSleepAdvancesVirtualTime(t *testing.T) {
	k := NewKernel()
	var woke time.Duration
	k.Spawn("sleeper", func(p *Proc) {
		p.Sleep(5 * time.Second)
		woke = p.Now()
	})
	res := k.Run(0)
	if woke != 5*time.Second {
		t.Errorf("woke at %v, want 5s", woke)
	}
	if res.End != 5*time.Second {
		t.Errorf("run ended at %v, want 5s", res.End)
	}
}

func TestEventsRunInTimestampOrder(t *testing.T) {
	k := NewKernel()
	var order []string
	for _, tc := range []struct {
		name string
		d    time.Duration
	}{
		{"c", 3 * time.Second},
		{"a", 1 * time.Second},
		{"b", 2 * time.Second},
	} {
		tc := tc
		k.Spawn(tc.name, func(p *Proc) {
			p.Sleep(tc.d)
			order = append(order, tc.name)
		})
	}
	k.Run(0)
	want := []string{"a", "b", "c"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSameTimeEventsAreFIFO(t *testing.T) {
	k := NewKernel()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		k.Spawn("p", func(p *Proc) {
			p.Sleep(time.Second) // all wake at t=1s
			order = append(order, i)
		})
	}
	k.Run(0)
	for i, got := range order {
		if got != i {
			t.Fatalf("order = %v, want ascending", order)
		}
	}
}

func TestZeroSleepYields(t *testing.T) {
	k := NewKernel()
	var trace []string
	k.Spawn("first", func(p *Proc) {
		trace = append(trace, "first-before")
		p.Sleep(0)
		trace = append(trace, "first-after")
	})
	k.Spawn("second", func(p *Proc) {
		trace = append(trace, "second")
	})
	k.Run(0)
	want := []string{"first-before", "second", "first-after"}
	for i := range want {
		if trace[i] != want[i] {
			t.Fatalf("trace = %v, want %v", trace, want)
		}
	}
}

func TestWaitTimeout(t *testing.T) {
	k := NewKernel()
	var woken bool
	var at time.Duration
	k.Spawn("waiter", func(p *Proc) {
		woken = p.Wait(3 * time.Second)
		at = p.Now()
	})
	k.Run(0)
	if woken {
		t.Error("Wait reported explicit wake, want timeout")
	}
	if at != 3*time.Second {
		t.Errorf("timed out at %v, want 3s", at)
	}
}

func TestWakeUpInterruptsWait(t *testing.T) {
	k := NewKernel()
	var woken bool
	var at time.Duration
	waiter := k.Spawn("waiter", func(p *Proc) {
		woken = p.Wait(100 * time.Second)
		at = p.Now()
	})
	k.Spawn("waker", func(p *Proc) {
		p.Sleep(2 * time.Second)
		waiter.WakeUp()
	})
	k.Run(0)
	if !woken {
		t.Error("Wait reported timeout, want explicit wake")
	}
	if at != 2*time.Second {
		t.Errorf("woken at %v, want 2s", at)
	}
}

func TestIndefiniteWaitWithoutWakeIsStranded(t *testing.T) {
	k := NewKernel()
	k.Spawn("stuck", func(p *Proc) {
		p.Wait(-1)
	})
	res := k.Run(0)
	if len(res.Stranded) != 1 || res.Stranded[0] != "stuck" {
		t.Errorf("Stranded = %v, want [stuck]", res.Stranded)
	}
}

func TestRunUntilStopsEarly(t *testing.T) {
	k := NewKernel()
	var ran bool
	k.Spawn("late", func(p *Proc) {
		p.Sleep(time.Hour)
		ran = true
	})
	res := k.Run(time.Minute)
	if ran {
		t.Error("process past the horizon ran")
	}
	if res.End != time.Minute {
		t.Errorf("End = %v, want 1m", res.End)
	}
}

func TestSpawnFromRunningProcess(t *testing.T) {
	k := NewKernel()
	var childAt time.Duration
	k.Spawn("parent", func(p *Proc) {
		p.Sleep(time.Second)
		p.Kernel().Spawn("child", func(c *Proc) {
			c.Sleep(time.Second)
			childAt = c.Now()
		})
		p.Sleep(10 * time.Second)
	})
	k.Run(0)
	if childAt != 2*time.Second {
		t.Errorf("child finished at %v, want 2s", childAt)
	}
}

func TestDeterministicReplay(t *testing.T) {
	run := func() []time.Duration {
		k := NewKernel()
		g := NewRNG(42)
		var times []time.Duration
		pipe := NewPipe("disk", 1e6)
		for i := 0; i < 20; i++ {
			k.Spawn("xfer", func(p *Proc) {
				p.Sleep(Seconds(g.Exp(1.0)))
				pipe.Transfer(p, int64(g.Intn(1e6)), 1)
				times = append(times, p.Now())
			})
		}
		k.Run(0)
		return times
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverged at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSecondsConversion(t *testing.T) {
	if Seconds(1.5) != 1500*time.Millisecond {
		t.Errorf("Seconds(1.5) = %v", Seconds(1.5))
	}
	if Seconds(-1) != 0 {
		t.Errorf("Seconds(-1) = %v, want 0", Seconds(-1))
	}
	if Seconds(1e300) <= 0 {
		t.Errorf("Seconds(1e300) overflowed to %v", Seconds(1e300))
	}
}
