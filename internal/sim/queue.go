package sim

import "time"

// Mailbox is an unbounded FIFO message queue connecting simulation
// processes. Any number of producers and consumers may use it; consumers
// block in Get until a message arrives. Delivery order is FIFO and
// deterministic.
type Mailbox[T any] struct {
	name    string
	items   []T
	readers []*Proc
	closed  bool
}

// NewMailbox creates an empty mailbox.
func NewMailbox[T any](name string) *Mailbox[T] {
	return &Mailbox[T]{name: name}
}

// Name returns the mailbox name.
func (m *Mailbox[T]) Name() string { return m.name }

// Len reports the number of queued messages.
func (m *Mailbox[T]) Len() int { return len(m.items) }

// Put enqueues v and wakes the longest-waiting reader, if any. Put never
// blocks. Putting to a closed mailbox panics via p.Failf.
func (m *Mailbox[T]) Put(p *Proc, v T) {
	if m.closed {
		p.Failf("put on closed mailbox %q", m.name)
	}
	m.items = append(m.items, v)
	m.wakeOne()
}

func (m *Mailbox[T]) wakeOne() {
	for len(m.readers) > 0 {
		r := m.readers[0]
		m.readers = m.readers[1:]
		if r.State() == ProcBlocked {
			r.WakeUp()
			return
		}
	}
}

// Get dequeues the oldest message, blocking while the mailbox is empty.
// The second result is false if the mailbox was closed and drained.
func (m *Mailbox[T]) Get(p *Proc) (T, bool) {
	for len(m.items) == 0 {
		if m.closed {
			var zero T
			return zero, false
		}
		m.readers = append(m.readers, p)
		p.Wait(-1)
	}
	v := m.items[0]
	m.items = m.items[1:]
	return v, true
}

// TryGet dequeues without blocking; ok is false if the box is empty.
func (m *Mailbox[T]) TryGet() (v T, ok bool) {
	if len(m.items) == 0 {
		var zero T
		return zero, false
	}
	v = m.items[0]
	m.items = m.items[1:]
	return v, true
}

// GetTimeout dequeues the oldest message, giving up after d of virtual
// time. ok is false on timeout or close-and-drained.
func (m *Mailbox[T]) GetTimeout(p *Proc, d time.Duration) (v T, ok bool) {
	deadline := p.Now() + d
	for len(m.items) == 0 {
		if m.closed {
			var zero T
			return zero, false
		}
		remaining := deadline - p.Now()
		if remaining <= 0 {
			var zero T
			return zero, false
		}
		m.readers = append(m.readers, p)
		p.Wait(remaining)
	}
	v = m.items[0]
	m.items = m.items[1:]
	return v, true
}

// Close marks the mailbox closed and wakes all blocked readers so they
// can observe the close. Messages already queued remain retrievable.
func (m *Mailbox[T]) Close() {
	if m.closed {
		return
	}
	m.closed = true
	for _, r := range m.readers {
		if r.State() == ProcBlocked {
			r.WakeUp()
		}
	}
	m.readers = nil
}

// Closed reports whether Close has been called.
func (m *Mailbox[T]) Closed() bool { return m.closed }
