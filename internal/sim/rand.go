package sim

import (
	"math"
	"math/rand"
)

// RNG is a seeded random source with the distributions the latency
// models need. It wraps math/rand deterministically; simulations built
// from the same seed replay identically.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a deterministic generator for the given seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Float64 returns a uniform value in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform value in [0, n).
func (g *RNG) Intn(n int) int { return g.r.Intn(n) }

// Uniform returns a uniform value in [lo, hi).
func (g *RNG) Uniform(lo, hi float64) float64 {
	return lo + (hi-lo)*g.r.Float64()
}

// Normal returns a normally distributed value with the given mean and
// standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// LogNormal returns a log-normally distributed value whose underlying
// normal has mean mu and standard deviation sigma. Latency noise in the
// cluster model is log-normal: strictly positive, right-skewed, matching
// the long right tails visible in the paper's Figures 4 and 5.
func (g *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*g.r.NormFloat64())
}

// LogNormalMean returns a log-normal sample scaled to have the given
// mean: E[X] = mean, with sigma controlling the spread of the underlying
// normal (0.25 is a mild jitter, 1.0 a heavy tail).
func (g *RNG) LogNormalMean(mean, sigma float64) float64 {
	if mean <= 0 {
		return 0
	}
	mu := math.Log(mean) - sigma*sigma/2
	return g.LogNormal(mu, sigma)
}

// Exp returns an exponentially distributed value with the given mean.
func (g *RNG) Exp(mean float64) float64 {
	return g.r.ExpFloat64() * mean
}

// Bernoulli reports true with probability prob.
func (g *RNG) Bernoulli(prob float64) bool {
	return g.r.Float64() < prob
}

// Perm returns a random permutation of [0, n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Zipf draws a rank from [0, n) with P(k) ∝ 1/(k+1)^s — the skewed
// popularity law request streams follow (rank 0 is the most popular).
// Inverse-CDF over the n-term generalized harmonic sum: one uniform
// draw per sample, deterministic for a given stream, and O(n), which
// is fine for the small catalogs workloads use.
func (g *RNG) Zipf(n int, s float64) int {
	if n <= 1 {
		return 0
	}
	var total float64
	for k := 1; k <= n; k++ {
		total += 1 / math.Pow(float64(k), s)
	}
	u := g.r.Float64() * total
	for k := 1; k <= n; k++ {
		u -= 1 / math.Pow(float64(k), s)
		if u <= 0 {
			return k - 1
		}
	}
	return n - 1
}

// Child derives a new independent generator from this one's stream, so
// subsystems can be given private streams that stay decoupled as call
// patterns change.
func (g *RNG) Child() *RNG {
	return NewRNG(g.r.Int63())
}
