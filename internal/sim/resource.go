package sim

import "time"

// Resource is a counting semaphore with FIFO queuing under virtual time.
// A Resource with capacity 1 is a fair mutex. Acquisition order among
// waiters is strictly first-come-first-served in event order, which keeps
// simulations deterministic.
type Resource struct {
	name     string
	capacity int
	inUse    int
	waiters  []*waiter
}

type waiter struct {
	p *Proc
	n int
}

// NewResource creates a resource with the given capacity (>= 1).
func NewResource(name string, capacity int) *Resource {
	if capacity < 1 {
		panic("sim: resource capacity must be >= 1")
	}
	return &Resource{name: name, capacity: capacity}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// InUse reports how many units are currently held.
func (r *Resource) InUse() int { return r.inUse }

// Capacity reports the resource's total units.
func (r *Resource) Capacity() int { return r.capacity }

// QueueLen reports how many processes are waiting.
func (r *Resource) QueueLen() int { return len(r.waiters) }

// Acquire blocks the calling process until n units are available and
// then holds them. n must be between 1 and the resource capacity.
func (r *Resource) Acquire(p *Proc, n int) {
	if n < 1 || n > r.capacity {
		p.Failf("acquire %d of resource %q with capacity %d", n, r.name, r.capacity)
	}
	if len(r.waiters) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	w := &waiter{p: p, n: n}
	r.waiters = append(r.waiters, w)
	for {
		p.Wait(-1)
		// Woken by Release; check if we are at the head and fit.
		if len(r.waiters) > 0 && r.waiters[0] == w && r.inUse+n <= r.capacity {
			r.waiters = r.waiters[1:]
			r.inUse += n
			// Cascade: the next waiter may also fit now (e.g. several
			// small requests after a big release).
			r.wakeHead()
			return
		}
	}
}

// Release returns n units and wakes the head waiter if it can proceed.
func (r *Resource) Release(p *Proc, n int) {
	if n < 1 || n > r.inUse {
		p.Failf("release %d of resource %q with %d in use", n, r.name, r.inUse)
	}
	r.inUse -= n
	r.wakeHead()
}

func (r *Resource) wakeHead() {
	if len(r.waiters) > 0 && r.inUse+r.waiters[0].n <= r.capacity {
		r.waiters[0].p.WakeUp()
	}
}

// Use acquires n units, sleeps for d, and releases: the common pattern
// for modeling service time at a station.
func (r *Resource) Use(p *Proc, n int, d time.Duration) {
	r.Acquire(p, n)
	p.Sleep(d)
	r.Release(p, n)
}

// Pipe models a bandwidth-limited transfer channel (a disk, a NIC, an
// NFS server's aggregate throughput). Transfers are serialized FIFO: a
// transfer of size bytes occupies the pipe for size/bandwidth of virtual
// time. FIFO serialization (rather than processor sharing) matches how
// contention appears as queueing delay; it keeps the model deterministic
// and is a good approximation for the mostly-sequential workloads in the
// VMPlants experiments.
type Pipe struct {
	res *Resource
	// BytesPerSecond is the pipe's throughput. It may be changed between
	// transfers to model degraded devices.
	BytesPerSecond float64
	// PerTransferOverhead is a fixed setup latency added to every
	// transfer (protocol round trips, open/close).
	PerTransferOverhead time.Duration

	totalBytes int64
	transfers  int64
}

// NewPipe creates a pipe with the given throughput in bytes per second.
func NewPipe(name string, bytesPerSecond float64) *Pipe {
	if bytesPerSecond <= 0 {
		panic("sim: pipe bandwidth must be positive")
	}
	return &Pipe{res: NewResource(name, 1), BytesPerSecond: bytesPerSecond}
}

// Name returns the pipe's name.
func (pi *Pipe) Name() string { return pi.res.Name() }

// Transfer moves size bytes through the pipe, blocking the calling
// process for queueing plus transmission time. The scale factor
// multiplies the transmission time (>= 1 models a slowed device, e.g.
// a host under memory pressure); scale <= 0 is treated as 1.
func (pi *Pipe) Transfer(p *Proc, size int64, scale float64) {
	if size < 0 {
		p.Failf("negative transfer size %d on pipe %q", size, pi.Name())
	}
	if scale <= 0 {
		scale = 1
	}
	d := Seconds(float64(size) / pi.BytesPerSecond * scale)
	pi.res.Use(p, 1, pi.PerTransferOverhead+d)
	pi.totalBytes += size
	pi.transfers++
}

// Stats reports cumulative bytes moved and number of transfers.
func (pi *Pipe) Stats() (bytes int64, transfers int64) {
	return pi.totalBytes, pi.transfers
}

// QueueLen reports how many transfers are waiting for the pipe.
func (pi *Pipe) QueueLen() int { return pi.res.QueueLen() }
