package sim

import (
	"testing"
	"time"
)

func TestResourceMutualExclusion(t *testing.T) {
	k := NewKernel()
	r := NewResource("mutex", 1)
	var maxConcurrent, concurrent int
	for i := 0; i < 5; i++ {
		k.Spawn("worker", func(p *Proc) {
			r.Acquire(p, 1)
			concurrent++
			if concurrent > maxConcurrent {
				maxConcurrent = concurrent
			}
			p.Sleep(time.Second)
			concurrent--
			r.Release(p, 1)
		})
	}
	res := k.Run(0)
	if maxConcurrent != 1 {
		t.Errorf("max concurrency %d, want 1", maxConcurrent)
	}
	if res.End != 5*time.Second {
		t.Errorf("serialized work ended at %v, want 5s", res.End)
	}
}

func TestResourceFIFOOrder(t *testing.T) {
	k := NewKernel()
	r := NewResource("r", 1)
	var order []int
	for i := 0; i < 8; i++ {
		i := i
		k.Spawn("w", func(p *Proc) {
			p.Sleep(time.Duration(i) * time.Millisecond) // stagger arrival
			r.Acquire(p, 1)
			order = append(order, i)
			p.Sleep(time.Second)
			r.Release(p, 1)
		})
	}
	k.Run(0)
	for i, got := range order {
		if got != i {
			t.Fatalf("service order %v, want arrival order", order)
		}
	}
}

func TestResourceCountingCapacity(t *testing.T) {
	k := NewKernel()
	r := NewResource("pool", 3)
	var maxConcurrent, concurrent int
	for i := 0; i < 9; i++ {
		k.Spawn("w", func(p *Proc) {
			r.Use(p, 1, time.Second)
		})
		k.Spawn("obs", func(p *Proc) {})
	}
	// Track concurrency via a wrapper.
	k2 := NewKernel()
	r2 := NewResource("pool", 3)
	for i := 0; i < 9; i++ {
		k2.Spawn("w", func(p *Proc) {
			r2.Acquire(p, 1)
			concurrent++
			if concurrent > maxConcurrent {
				maxConcurrent = concurrent
			}
			p.Sleep(time.Second)
			concurrent--
			r2.Release(p, 1)
		})
	}
	res := k2.Run(0)
	if maxConcurrent != 3 {
		t.Errorf("max concurrency %d, want 3", maxConcurrent)
	}
	if res.End != 3*time.Second {
		t.Errorf("9 jobs at capacity 3 ended at %v, want 3s", res.End)
	}
	_ = r
	k.Run(0)
}

func TestResourceMultiUnitAcquire(t *testing.T) {
	k := NewKernel()
	r := NewResource("r", 4)
	var bigAt, smallAt time.Duration
	k.Spawn("big", func(p *Proc) {
		r.Acquire(p, 4)
		p.Sleep(2 * time.Second)
		r.Release(p, 4)
		bigAt = p.Now()
	})
	k.Spawn("small", func(p *Proc) {
		p.Sleep(time.Millisecond)
		r.Acquire(p, 1)
		smallAt = p.Now()
		r.Release(p, 1)
	})
	k.Run(0)
	if smallAt != 2*time.Second {
		t.Errorf("small acquired at %v, want 2s (after big released)", smallAt)
	}
	if bigAt != 2*time.Second {
		t.Errorf("big done at %v", bigAt)
	}
}

func TestResourceCascadeWake(t *testing.T) {
	// One big holder releases; two waiting small requests should both
	// proceed at the same virtual time.
	k := NewKernel()
	r := NewResource("r", 2)
	var times []time.Duration
	k.Spawn("big", func(p *Proc) {
		r.Acquire(p, 2)
		p.Sleep(time.Second)
		r.Release(p, 2)
	})
	for i := 0; i < 2; i++ {
		k.Spawn("small", func(p *Proc) {
			p.Sleep(time.Millisecond)
			r.Acquire(p, 1)
			times = append(times, p.Now())
			p.Sleep(time.Second)
			r.Release(p, 1)
		})
	}
	k.Run(0)
	if len(times) != 2 || times[0] != time.Second || times[1] != time.Second {
		t.Errorf("small acquisitions at %v, want both at 1s", times)
	}
}

func TestPipeSerializesTransfers(t *testing.T) {
	k := NewKernel()
	pipe := NewPipe("nfs", 10e6) // 10 MB/s
	var done []time.Duration
	for i := 0; i < 3; i++ {
		k.Spawn("xfer", func(p *Proc) {
			pipe.Transfer(p, 10e6, 1) // 1 second each
			done = append(done, p.Now())
		})
	}
	k.Run(0)
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("transfer completions %v, want %v", done, want)
		}
	}
	bytes, n := pipe.Stats()
	if bytes != 30e6 || n != 3 {
		t.Errorf("stats = (%d, %d), want (30e6, 3)", bytes, n)
	}
}

func TestPipeScaleSlowsTransfer(t *testing.T) {
	k := NewKernel()
	pipe := NewPipe("disk", 1e6)
	var end time.Duration
	k.Spawn("xfer", func(p *Proc) {
		pipe.Transfer(p, 1e6, 2.5)
		end = p.Now()
	})
	k.Run(0)
	if end != 2500*time.Millisecond {
		t.Errorf("scaled transfer took %v, want 2.5s", end)
	}
}

func TestMailboxFIFO(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox[int]("box")
	var got []int
	k.Spawn("consumer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			v, ok := mb.Get(p)
			if !ok {
				p.Failf("unexpected close")
			}
			got = append(got, v)
		}
	})
	k.Spawn("producer", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(time.Second)
			mb.Put(p, i)
		}
	})
	k.Run(0)
	for i, v := range got {
		if v != i {
			t.Fatalf("got %v, want 0..4 in order", got)
		}
	}
}

func TestMailboxGetTimeout(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox[string]("box")
	var ok bool
	var at time.Duration
	k.Spawn("consumer", func(p *Proc) {
		_, ok = mb.GetTimeout(p, 2*time.Second)
		at = p.Now()
	})
	k.Run(0)
	if ok {
		t.Error("GetTimeout returned ok on empty box")
	}
	if at != 2*time.Second {
		t.Errorf("timed out at %v, want 2s", at)
	}
}

func TestMailboxCloseWakesReaders(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox[int]("box")
	var ok = true
	k.Spawn("consumer", func(p *Proc) {
		_, ok = mb.Get(p)
	})
	k.Spawn("closer", func(p *Proc) {
		p.Sleep(time.Second)
		mb.Close()
	})
	res := k.Run(0)
	if ok {
		t.Error("Get returned ok after close on empty box")
	}
	if len(res.Stranded) != 0 {
		t.Errorf("stranded processes: %v", res.Stranded)
	}
}

func TestMailboxDrainAfterClose(t *testing.T) {
	k := NewKernel()
	mb := NewMailbox[int]("box")
	var got []int
	k.Spawn("producer", func(p *Proc) {
		mb.Put(p, 1)
		mb.Put(p, 2)
		mb.Close()
	})
	k.Spawn("consumer", func(p *Proc) {
		p.Sleep(time.Second)
		for {
			v, ok := mb.Get(p)
			if !ok {
				return
			}
			got = append(got, v)
		}
	})
	k.Run(0)
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("drained %v, want [1 2]", got)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
}

func TestLogNormalMeanIsCalibrated(t *testing.T) {
	g := NewRNG(1)
	const mean, n = 10.0, 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := g.LogNormalMean(mean, 0.3)
		if v <= 0 {
			t.Fatalf("non-positive lognormal sample %v", v)
		}
		sum += v
	}
	got := sum / n
	if got < mean*0.97 || got > mean*1.03 {
		t.Errorf("empirical mean %.3f, want ~%.1f", got, mean)
	}
}
