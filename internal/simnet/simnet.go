// Package simnet is the Ethernet-layer substrate for VM networking: MAC
// addresses, frames, learning switches, and the pools of host-only
// ("vmnet") networks that VMPlants allocate per client domain (paper
// §3.3: "host-only networks correspond to statically installed vmnet
// switches … which are dynamically assigned to client domains. The
// assignments must ensure that VMs from different client domains are
// never created inside the same host-only network").
//
// Delivery is synchronous and in-memory; the latency of LAN frames is
// negligible against the multi-second state copies the experiments
// measure, so no virtual time is charged here.
package simnet

import (
	"errors"
	"fmt"
	"sync"
)

// MAC is a 48-bit Ethernet address.
type MAC [6]byte

// Broadcast is the all-ones broadcast address.
var Broadcast = MAC{0xff, 0xff, 0xff, 0xff, 0xff, 0xff}

// String renders the usual colon-hex form.
func (m MAC) String() string {
	return fmt.Sprintf("%02x:%02x:%02x:%02x:%02x:%02x", m[0], m[1], m[2], m[3], m[4], m[5])
}

// ParseMAC inverts String.
func ParseMAC(s string) (MAC, error) {
	var m MAC
	n, err := fmt.Sscanf(s, "%02x:%02x:%02x:%02x:%02x:%02x", &m[0], &m[1], &m[2], &m[3], &m[4], &m[5])
	if err != nil || n != 6 {
		return MAC{}, fmt.Errorf("simnet: bad MAC %q", s)
	}
	return m, nil
}

// MACPool mints locally administered unicast MACs deterministically.
type MACPool struct {
	mu   sync.Mutex
	next uint32
	oui  [3]byte
}

// NewMACPool creates a pool under the VMware-style OUI 00:50:56.
func NewMACPool() *MACPool {
	return &MACPool{oui: [3]byte{0x00, 0x50, 0x56}}
}

// Next returns a fresh MAC.
func (p *MACPool) Next() MAC {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.next++
	n := p.next
	return MAC{p.oui[0], p.oui[1], p.oui[2], byte(n >> 16), byte(n >> 8), byte(n)}
}

// EtherType values used by the system.
const (
	EtherTypeIPv4 = 0x0800
	EtherTypeARP  = 0x0806
	EtherTypeTest = 0x88B5 // local experimental, used by tests and probes
)

// Frame is one Ethernet frame.
type Frame struct {
	Dst, Src  MAC
	EtherType uint16
	Payload   []byte
}

// Clone deep-copies the frame so receivers can't alias sender buffers.
func (f Frame) Clone() Frame {
	c := f
	c.Payload = append([]byte(nil), f.Payload...)
	return c
}

// Port is an attachment point on a switch. A port either queues frames
// for polling (NIC-style) or forwards them to a handler (VNET bridges).
type Port struct {
	name    string
	sw      *Switch
	mu      sync.Mutex
	inbox   []Frame
	handler func(Frame)
	closed  bool
}

// Name returns the port name.
func (p *Port) Name() string { return p.name }

// SetHandler routes received frames to fn instead of the inbox. It must
// be set before traffic flows.
func (p *Port) SetHandler(fn func(Frame)) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.handler = fn
}

// deliver hands a frame to this port.
func (p *Port) deliver(f Frame) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	h := p.handler
	if h == nil {
		p.inbox = append(p.inbox, f)
		p.mu.Unlock()
		return
	}
	p.mu.Unlock()
	h(f)
}

// Poll removes and returns the oldest queued frame.
func (p *Port) Poll() (Frame, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.inbox) == 0 {
		return Frame{}, false
	}
	f := p.inbox[0]
	p.inbox = p.inbox[1:]
	return f, true
}

// Pending reports queued frame count.
func (p *Port) Pending() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.inbox)
}

// Send transmits a frame from this port into the switch.
func (p *Port) Send(f Frame) error {
	p.mu.Lock()
	sw, closed := p.sw, p.closed
	p.mu.Unlock()
	if closed || sw == nil {
		return fmt.Errorf("simnet: send on detached port %q", p.name)
	}
	sw.forward(p, f.Clone())
	return nil
}

// Close detaches the port; subsequent sends fail, deliveries are dropped.
func (p *Port) Close() {
	p.mu.Lock()
	sw := p.sw
	p.closed = true
	p.sw = nil
	p.mu.Unlock()
	if sw != nil {
		sw.detach(p)
	}
}

// Switch is a learning Ethernet switch.
type Switch struct {
	name  string
	mu    sync.Mutex
	ports map[*Port]bool
	fdb   map[MAC]*Port // forwarding database: learned source addresses

	frames uint64 // forwarded frame count
	floods uint64 // frames flooded for unknown/broadcast destinations
}

// NewSwitch creates an empty switch.
func NewSwitch(name string) *Switch {
	return &Switch{name: name, ports: make(map[*Port]bool), fdb: make(map[MAC]*Port)}
}

// Name returns the switch name.
func (s *Switch) Name() string { return s.name }

// Attach creates a new port on the switch.
func (s *Switch) Attach(name string) *Port {
	p := &Port{name: name, sw: s}
	s.mu.Lock()
	s.ports[p] = true
	s.mu.Unlock()
	return p
}

// Ports reports the number of attached ports.
func (s *Switch) Ports() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.ports)
}

// Stats reports forwarded and flooded frame counts.
func (s *Switch) Stats() (frames, floods uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.frames, s.floods
}

func (s *Switch) detach(p *Port) {
	s.mu.Lock()
	delete(s.ports, p)
	for mac, port := range s.fdb {
		if port == p {
			delete(s.fdb, mac)
		}
	}
	s.mu.Unlock()
}

// forward implements learning-switch semantics: learn the source, then
// unicast to the learned destination port or flood.
func (s *Switch) forward(from *Port, f Frame) {
	s.mu.Lock()
	if f.Src != Broadcast {
		s.fdb[f.Src] = from
	}
	s.frames++
	var targets []*Port
	if f.Dst != Broadcast {
		if out, ok := s.fdb[f.Dst]; ok && out != from {
			targets = []*Port{out}
		}
	}
	if targets == nil {
		s.floods++
		for p := range s.ports {
			if p != from {
				targets = append(targets, p)
			}
		}
	}
	s.mu.Unlock()
	// Deterministic flood order: by port name.
	sortPorts(targets)
	for _, p := range targets {
		p.deliver(f)
	}
}

func sortPorts(ps []*Port) {
	for i := 1; i < len(ps); i++ {
		for j := i; j > 0 && ps[j].name < ps[j-1].name; j-- {
			ps[j], ps[j-1] = ps[j-1], ps[j]
		}
	}
}

// HostOnlyNet is one vmnet-style host-only network: a switch plus the
// client domain currently owning it.
type HostOnlyNet struct {
	ID     string
	Switch *Switch
	domain string
	vms    int
}

// Domain returns the owning client domain, "" when free.
func (h *HostOnlyNet) Domain() string { return h.domain }

// VMs returns the number of VMs attached.
func (h *HostOnlyNet) VMs() int { return h.vms }

// NetPool manages a plant's statically installed host-only networks and
// their dynamic assignment to client domains.
type NetPool struct {
	mu   sync.Mutex
	nets []*HostOnlyNet
}

// ErrExhausted is returned when every host-only network is owned by
// some other domain.
var ErrExhausted = errors.New("simnet: no free host-only network")

// NewNetPool creates n host-only networks named prefix0..prefix<n-1>.
func NewNetPool(prefix string, n int) *NetPool {
	pool := &NetPool{}
	for i := 0; i < n; i++ {
		id := fmt.Sprintf("%s%d", prefix, i)
		pool.nets = append(pool.nets, &HostOnlyNet{ID: id, Switch: NewSwitch(id)})
	}
	return pool
}

// Size returns the total number of networks.
func (p *NetPool) Size() int { return len(p.nets) }

// FreeCount returns how many networks are unowned.
func (p *NetPool) FreeCount() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	n := 0
	for _, h := range p.nets {
		if h.domain == "" {
			n++
		}
	}
	return n
}

// HasDomain reports whether the domain already owns a network here.
func (p *NetPool) HasDomain(domain string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, h := range p.nets {
		if h.domain == domain {
			return true
		}
	}
	return false
}

// Acquire returns the domain's network, allocating a free one when the
// domain holds none. allocated reports whether a fresh network was
// assigned (the event that incurs the cost model's one-time network
// cost). VM attachment counts are incremented.
func (p *NetPool) Acquire(domain string) (h *HostOnlyNet, allocated bool, err error) {
	if domain == "" {
		return nil, false, errors.New("simnet: empty domain")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, n := range p.nets {
		if n.domain == domain {
			n.vms++
			return n, false, nil
		}
	}
	for _, n := range p.nets {
		if n.domain == "" {
			n.domain = domain
			n.vms = 1
			return n, true, nil
		}
	}
	return nil, false, ErrExhausted
}

// Release decrements the domain's VM count; the network returns to the
// free pool when its last VM is collected.
func (p *NetPool) Release(domain string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, n := range p.nets {
		if n.domain == domain {
			n.vms--
			if n.vms < 0 {
				return fmt.Errorf("simnet: release imbalance for domain %q", domain)
			}
			if n.vms == 0 {
				n.domain = ""
			}
			return nil
		}
	}
	return fmt.Errorf("simnet: domain %q owns no network", domain)
}
