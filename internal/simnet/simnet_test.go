package simnet

import (
	"testing"
)

func TestMACStringRoundTrip(t *testing.T) {
	pool := NewMACPool()
	m := pool.Next()
	back, err := ParseMAC(m.String())
	if err != nil || back != m {
		t.Errorf("round trip %v → %v, %v", m, back, err)
	}
	if _, err := ParseMAC("not-a-mac"); err == nil {
		t.Error("bad MAC accepted")
	}
}

func TestMACPoolUnique(t *testing.T) {
	pool := NewMACPool()
	seen := map[MAC]bool{}
	for i := 0; i < 1000; i++ {
		m := pool.Next()
		if seen[m] {
			t.Fatalf("duplicate MAC %v", m)
		}
		seen[m] = true
		if m[0]&1 == 1 {
			t.Fatalf("multicast bit set on %v", m)
		}
	}
}

func TestUnicastAfterLearning(t *testing.T) {
	sw := NewSwitch("vmnet0")
	a := sw.Attach("a")
	b := sw.Attach("b")
	c := sw.Attach("c")
	macA, macB := MAC{1}, MAC{2}

	// First frame from A floods (B unknown).
	a.Send(Frame{Src: macA, Dst: macB, EtherType: EtherTypeTest, Payload: []byte("hi")})
	if b.Pending() != 1 || c.Pending() != 1 {
		t.Fatalf("flood delivery: b=%d c=%d", b.Pending(), c.Pending())
	}
	b.Poll()
	c.Poll()

	// Reply from B: A is learned, so unicast.
	b.Send(Frame{Src: macB, Dst: macA, EtherType: EtherTypeTest})
	if a.Pending() != 1 || c.Pending() != 0 {
		t.Errorf("unicast delivery: a=%d c=%d", a.Pending(), c.Pending())
	}
	// Now B is learned too: A→B unicast, C sees nothing.
	a.Send(Frame{Src: macA, Dst: macB, EtherType: EtherTypeTest})
	if b.Pending() != 1 || c.Pending() != 0 {
		t.Errorf("post-learning: b=%d c=%d", b.Pending(), c.Pending())
	}
	frames, floods := sw.Stats()
	if frames != 3 || floods != 1 {
		t.Errorf("stats = %d frames, %d floods", frames, floods)
	}
}

func TestBroadcastFloods(t *testing.T) {
	sw := NewSwitch("vmnet0")
	a := sw.Attach("a")
	b := sw.Attach("b")
	c := sw.Attach("c")
	a.Send(Frame{Src: MAC{1}, Dst: Broadcast, EtherType: EtherTypeARP})
	if b.Pending() != 1 || c.Pending() != 1 || a.Pending() != 0 {
		t.Errorf("broadcast: a=%d b=%d c=%d", a.Pending(), b.Pending(), c.Pending())
	}
}

func TestNoEchoToSender(t *testing.T) {
	sw := NewSwitch("s")
	a := sw.Attach("a")
	a.Send(Frame{Src: MAC{1}, Dst: MAC{1}, EtherType: EtherTypeTest})
	if a.Pending() != 0 {
		t.Error("frame echoed to sender")
	}
}

func TestHandlerReceivesInsteadOfInbox(t *testing.T) {
	sw := NewSwitch("s")
	a := sw.Attach("a")
	b := sw.Attach("b")
	var got []Frame
	b.SetHandler(func(f Frame) { got = append(got, f) })
	a.Send(Frame{Src: MAC{1}, Dst: Broadcast, Payload: []byte("x")})
	if len(got) != 1 || b.Pending() != 0 {
		t.Errorf("handler got %d frames, inbox %d", len(got), b.Pending())
	}
}

func TestPayloadIsolation(t *testing.T) {
	sw := NewSwitch("s")
	a := sw.Attach("a")
	b := sw.Attach("b")
	buf := []byte("mutable")
	a.Send(Frame{Src: MAC{1}, Dst: Broadcast, Payload: buf})
	buf[0] = 'X'
	f, ok := b.Poll()
	if !ok || string(f.Payload) != "mutable" {
		t.Errorf("payload aliased: %q", f.Payload)
	}
}

func TestClosedPortDetaches(t *testing.T) {
	sw := NewSwitch("s")
	a := sw.Attach("a")
	b := sw.Attach("b")
	b.Close()
	if sw.Ports() != 1 {
		t.Errorf("ports = %d", sw.Ports())
	}
	if err := b.Send(Frame{Src: MAC{2}, Dst: Broadcast}); err == nil {
		t.Error("send on closed port succeeded")
	}
	// Deliveries to closed port dropped silently.
	a.Send(Frame{Src: MAC{1}, Dst: Broadcast})
	if b.Pending() != 0 {
		t.Error("closed port received frame")
	}
}

func TestFDBForgetsClosedPort(t *testing.T) {
	sw := NewSwitch("s")
	a := sw.Attach("a")
	b := sw.Attach("b")
	c := sw.Attach("c")
	b.Send(Frame{Src: MAC{2}, Dst: Broadcast}) // learn MAC{2}@b
	a.Poll()
	c.Poll()
	b.Close()
	// Frame to MAC{2} must flood (b gone), reaching c.
	a.Send(Frame{Src: MAC{1}, Dst: MAC{2}})
	if c.Pending() != 1 {
		t.Error("stale FDB entry used after port close")
	}
}

func TestNetPoolDomainExclusivity(t *testing.T) {
	p := NewNetPool("vmnet", 2)
	n1, alloc1, err := p.Acquire("ufl.edu")
	if err != nil || !alloc1 {
		t.Fatalf("first acquire: %v %v", alloc1, err)
	}
	n2, alloc2, err := p.Acquire("ufl.edu")
	if err != nil || alloc2 {
		t.Fatalf("second acquire for same domain: alloc=%v err=%v", alloc2, err)
	}
	if n1 != n2 {
		t.Error("same domain got different networks")
	}
	if n1.VMs() != 2 {
		t.Errorf("vms = %d", n1.VMs())
	}
	n3, alloc3, err := p.Acquire("nwu.edu")
	if err != nil || !alloc3 {
		t.Fatalf("other-domain acquire: %v %v", alloc3, err)
	}
	if n3 == n1 {
		t.Error("two domains share a host-only network")
	}
	// Pool of 2 exhausted for a third domain.
	if _, _, err := p.Acquire("mit.edu"); err != ErrExhausted {
		t.Errorf("expected exhaustion, got %v", err)
	}
	if p.FreeCount() != 0 || !p.HasDomain("ufl.edu") {
		t.Error("accounting wrong")
	}
}

func TestNetPoolReleaseFreesOnLastVM(t *testing.T) {
	p := NewNetPool("vmnet", 1)
	p.Acquire("a.edu")
	p.Acquire("a.edu")
	if err := p.Release("a.edu"); err != nil {
		t.Fatal(err)
	}
	if p.FreeCount() != 0 {
		t.Error("network freed while VMs remain")
	}
	if err := p.Release("a.edu"); err != nil {
		t.Fatal(err)
	}
	if p.FreeCount() != 1 {
		t.Error("network not freed after last VM")
	}
	if err := p.Release("a.edu"); err == nil {
		t.Error("release for non-owning domain accepted")
	}
	// Freed network reusable by another domain.
	if _, alloc, err := p.Acquire("b.edu"); err != nil || !alloc {
		t.Errorf("reacquire: %v %v", alloc, err)
	}
}

func TestAcquireEmptyDomain(t *testing.T) {
	p := NewNetPool("vmnet", 1)
	if _, _, err := p.Acquire(""); err == nil {
		t.Error("empty domain accepted")
	}
}
