// Package stats provides the small statistics toolkit the benchmark
// harness uses to reproduce the paper's figures: fixed-width histograms
// with normalized frequencies (Figures 4 and 5), per-sample series
// (Figure 6), and summary statistics.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary holds the usual scalar statistics of a sample.
type Summary struct {
	N      int
	Mean   float64
	Stddev float64
	Min    float64
	Max    float64
	P50    float64
	P90    float64
	P99    float64
}

// Summarize computes summary statistics. An empty sample yields a zero
// Summary.
func Summarize(xs []float64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{N: len(xs), Min: math.Inf(1), Max: math.Inf(-1)}
	var sum float64
	for _, x := range xs {
		sum += x
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
	}
	s.Mean = sum / float64(len(xs))
	var ss float64
	for _, x := range xs {
		d := x - s.Mean
		ss += d * d
	}
	if len(xs) > 1 {
		s.Stddev = math.Sqrt(ss / float64(len(xs)-1))
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.P50 = percentile(sorted, 0.50)
	s.P90 = percentile(sorted, 0.90)
	s.P99 = percentile(sorted, 0.99)
	return s
}

// Quantile interpolates the q-quantile (0..1) of an unsorted sample
// without modifying it. An empty sample yields 0.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentile(sorted, q)
}

// percentile interpolates the p-quantile of a sorted sample.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := p * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f sd=%.2f min=%.2f p50=%.2f p90=%.2f p99=%.2f max=%.2f",
		s.N, s.Mean, s.Stddev, s.Min, s.P50, s.P90, s.P99, s.Max)
}

// Histogram bins samples into fixed-width buckets centered the way the
// paper's figures label them: a histogram with Width 10 and Origin 0 has
// buckets [0,10), [10,20), … labeled by their centers 5, 15, ….
type Histogram struct {
	Origin float64 // left edge of the first bucket
	Width  float64 // bucket width, > 0
	counts map[int]int
	n      int
}

// NewHistogram creates a histogram with the given origin and bucket
// width.
func NewHistogram(origin, width float64) *Histogram {
	if width <= 0 {
		panic("stats: histogram width must be positive")
	}
	return &Histogram{Origin: origin, Width: width, counts: make(map[int]int)}
}

// Add records one sample.
func (h *Histogram) Add(x float64) {
	idx := int(math.Floor((x - h.Origin) / h.Width))
	h.counts[idx]++
	h.n++
}

// AddAll records every sample in xs.
func (h *Histogram) AddAll(xs []float64) {
	for _, x := range xs {
		h.Add(x)
	}
}

// N reports the total number of samples.
func (h *Histogram) N() int { return h.n }

// Bucket is one histogram bin.
type Bucket struct {
	Center    float64 // bucket center, as the paper's x-axis labels them
	Count     int
	Frequency float64 // normalized: Count / N
}

// Buckets returns the non-empty bins in ascending order, plus any empty
// bins between them so a plotted series has no holes.
func (h *Histogram) Buckets() []Bucket {
	if h.n == 0 {
		return nil
	}
	idxs := make([]int, 0, len(h.counts))
	for i := range h.counts {
		idxs = append(idxs, i)
	}
	sort.Ints(idxs)
	lo, hi := idxs[0], idxs[len(idxs)-1]
	out := make([]Bucket, 0, hi-lo+1)
	for i := lo; i <= hi; i++ {
		c := h.counts[i]
		out = append(out, Bucket{
			Center:    h.Origin + (float64(i)+0.5)*h.Width,
			Count:     c,
			Frequency: float64(c) / float64(h.n),
		})
	}
	return out
}

// Table renders the histogram as an aligned two-column text table with
// the given axis labels, matching the rows the paper's bar charts plot.
func (h *Histogram) Table(xlabel, ylabel string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %s\n", xlabel, ylabel)
	for _, bk := range h.Buckets() {
		fmt.Fprintf(&b, "%-22.0f %.3f  (%d)\n", bk.Center, bk.Frequency, bk.Count)
	}
	return b.String()
}

// Series is an ordered sequence of (x, y) points, used for Figure 6
// style per-sequence-number plots.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds one point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len reports the number of points.
func (s *Series) Len() int { return len(s.X) }

// Downsample returns every k-th point (k >= 1), always including the
// last point, to keep printed series readable.
func (s *Series) Downsample(k int) *Series {
	if k < 1 {
		k = 1
	}
	out := &Series{Name: s.Name}
	for i := 0; i < len(s.X); i += k {
		out.Append(s.X[i], s.Y[i])
	}
	if n := len(s.X); n > 0 && (n-1)%k != 0 {
		out.Append(s.X[n-1], s.Y[n-1])
	}
	return out
}

// TrendSlope fits y = a + b·x by least squares and returns b. It is how
// the Figure 6 test asserts "cloning time grows with sequence number"
// without pinning exact values.
func (s *Series) TrendSlope() float64 {
	n := float64(len(s.X))
	if n < 2 {
		return 0
	}
	var sx, sy, sxx, sxy float64
	for i := range s.X {
		sx += s.X[i]
		sy += s.Y[i]
		sxx += s.X[i] * s.X[i]
		sxy += s.X[i] * s.Y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// MultiSeriesTable renders several series that share an x-axis into a
// single aligned table. Series of different lengths are padded with
// blanks.
func MultiSeriesTable(xlabel string, series ...*Series) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s", xlabel)
	maxLen := 0
	for _, s := range series {
		fmt.Fprintf(&b, " %12s", s.Name)
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	b.WriteByte('\n')
	for i := 0; i < maxLen; i++ {
		var x float64
		hasX := false
		for _, s := range series {
			if i < s.Len() {
				x = s.X[i]
				hasX = true
				break
			}
		}
		if !hasX {
			break
		}
		fmt.Fprintf(&b, "%-12.0f", x)
		for _, s := range series {
			if i < s.Len() {
				fmt.Fprintf(&b, " %12.2f", s.Y[i])
			} else {
				fmt.Fprintf(&b, " %12s", "")
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// MultiHistogramTable renders several histograms that share bucketing
// into one table with a frequency column per histogram (the layout of
// Figures 4 and 5, one column per golden-machine size).
func MultiHistogramTable(xlabel string, hists map[string]*Histogram, order []string) string {
	centers := map[float64]bool{}
	for _, h := range hists {
		for _, bk := range h.Buckets() {
			centers[bk.Center] = true
		}
	}
	xs := make([]float64, 0, len(centers))
	for c := range centers {
		xs = append(xs, c)
	}
	sort.Float64s(xs)

	freq := func(h *Histogram, center float64) float64 {
		for _, bk := range h.Buckets() {
			if bk.Center == center {
				return bk.Frequency
			}
		}
		return 0
	}

	var b strings.Builder
	fmt.Fprintf(&b, "%-22s", xlabel)
	for _, name := range order {
		fmt.Fprintf(&b, " %10s", name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%-22.0f", x)
		for _, name := range order {
			fmt.Fprintf(&b, " %10.3f", freq(hists[name], x))
		}
		b.WriteByte('\n')
	}
	return b.String()
}
