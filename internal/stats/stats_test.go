package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if s.N != 8 {
		t.Errorf("N = %d", s.N)
	}
	if !almost(s.Mean, 5) {
		t.Errorf("Mean = %v, want 5", s.Mean)
	}
	if s.Min != 2 || s.Max != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min, s.Max)
	}
	// Sample stddev of this classic dataset is sqrt(32/7).
	if !almost(s.Stddev, math.Sqrt(32.0/7.0)) {
		t.Errorf("Stddev = %v", s.Stddev)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 || s.Mean != 0 {
		t.Errorf("empty summary = %+v", s)
	}
}

func TestPercentileInterpolation(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if !almost(s.P50, 2.5) {
		t.Errorf("P50 = %v, want 2.5", s.P50)
	}
	one := Summarize([]float64{42})
	if one.P50 != 42 || one.P99 != 42 {
		t.Errorf("single-sample percentiles = %v/%v", one.P50, one.P99)
	}
}

func TestHistogramBucketsAndCenters(t *testing.T) {
	h := NewHistogram(0, 10)
	h.AddAll([]float64{3, 7, 12, 14, 15, 47})
	bks := h.Buckets()
	if len(bks) != 5 { // centers 5,15,25,35,45 (25 and 35 empty)
		t.Fatalf("got %d buckets: %+v", len(bks), bks)
	}
	if bks[0].Center != 5 || bks[0].Count != 2 {
		t.Errorf("bucket 0 = %+v", bks[0])
	}
	if bks[1].Center != 15 || bks[1].Count != 3 {
		t.Errorf("bucket 1 = %+v", bks[1])
	}
	if bks[2].Count != 0 || bks[3].Count != 0 {
		t.Errorf("interior empty buckets missing: %+v", bks)
	}
	if bks[4].Center != 45 || bks[4].Count != 1 {
		t.Errorf("bucket 4 = %+v", bks[4])
	}
}

func TestHistogramFrequenciesSumToOne(t *testing.T) {
	check := func(xs []float64) bool {
		if len(xs) == 0 {
			return true
		}
		h := NewHistogram(0, 7)
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return true
			}
			// Keep samples in a sane range so bucket indices fit.
			h.Add(math.Mod(x, 1e6))
		}
		var sum float64
		for _, bk := range h.Buckets() {
			sum += bk.Frequency
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(check, nil); err != nil {
		t.Error(err)
	}
}

func TestHistogramBoundaryGoesToHigherBucket(t *testing.T) {
	h := NewHistogram(0, 10)
	h.Add(10) // exactly on an edge: belongs to [10,20)
	bks := h.Buckets()
	if len(bks) != 1 || bks[0].Center != 15 {
		t.Errorf("buckets = %+v, want single bucket centered at 15", bks)
	}
}

func TestHistogramNegativeOrigin(t *testing.T) {
	h := NewHistogram(-20, 10)
	h.Add(-15)
	h.Add(-5)
	bks := h.Buckets()
	if len(bks) != 2 || bks[0].Center != -15 || bks[1].Center != -5 {
		t.Errorf("buckets = %+v", bks)
	}
}

func TestSeriesTrendSlope(t *testing.T) {
	var s Series
	for i := 0; i < 50; i++ {
		s.Append(float64(i), 3+2*float64(i))
	}
	if !almost(s.TrendSlope(), 2) {
		t.Errorf("slope = %v, want 2", s.TrendSlope())
	}
	var flat Series
	flat.Append(1, 5)
	if flat.TrendSlope() != 0 {
		t.Errorf("single-point slope = %v, want 0", flat.TrendSlope())
	}
}

func TestSeriesDownsampleKeepsLast(t *testing.T) {
	var s Series
	for i := 0; i < 10; i++ {
		s.Append(float64(i), float64(i))
	}
	d := s.Downsample(4)
	// indices 0, 4, 8, plus forced last (9)
	if d.Len() != 4 || d.X[3] != 9 {
		t.Errorf("downsampled = %+v", d)
	}
}

func TestMultiHistogramTableLayout(t *testing.T) {
	a := NewHistogram(0, 10)
	a.AddAll([]float64{5, 15, 15})
	b := NewHistogram(0, 10)
	b.AddAll([]float64{25})
	out := MultiHistogramTable("latency (s)", map[string]*Histogram{"32MB": a, "256MB": b}, []string{"32MB", "256MB"})
	if !strings.Contains(out, "32MB") || !strings.Contains(out, "256MB") {
		t.Errorf("missing headers:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + centers 5,15,25
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestMultiSeriesTable(t *testing.T) {
	a := &Series{Name: "32MB"}
	a.Append(1, 10)
	a.Append(2, 11)
	b := &Series{Name: "256MB"}
	b.Append(1, 40)
	out := MultiSeriesTable("seq", a, b)
	if !strings.Contains(out, "seq") || !strings.Contains(out, "40.00") {
		t.Errorf("table:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 {
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
}

func TestSummaryStringIsReadable(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	if !strings.Contains(str, "n=3") || !strings.Contains(str, "mean=2.00") {
		t.Errorf("summary string %q", str)
	}
}

// Property: percentiles are monotone (P50 ≤ P90 ≤ P99) and bounded by
// min/max for any sample.
func TestPercentileMonotonicityProperty(t *testing.T) {
	check := func(xs []float64) bool {
		var clean []float64
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) {
				clean = append(clean, x)
			}
		}
		if len(clean) == 0 {
			return true
		}
		s := Summarize(clean)
		return s.Min <= s.P50 && s.P50 <= s.P90 && s.P90 <= s.P99 && s.P99 <= s.Max
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: a histogram's counts sum to N for any sample.
func TestHistogramCountConservationProperty(t *testing.T) {
	check := func(xs []int16) bool {
		h := NewHistogram(-1000, 13)
		for _, x := range xs {
			h.Add(float64(x))
		}
		total := 0
		for _, b := range h.Buckets() {
			total += b.Count
		}
		return total == len(xs) && h.N() == len(xs)
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
