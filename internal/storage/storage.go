// Package storage models the paper's storage substrate under the
// discrete-event kernel: each cluster node has a local SCSI disk, and
// the VM Warehouse lives on a shared NFS server reached over switched
// 100 Mbit/s Ethernet (paper §4.2). Volumes carry a real file namespace
// (names, sizes, link targets) so the production line's link-vs-copy
// cloning decisions are observable, and every byte moved costs virtual
// time through a bandwidth pipe.
package storage

import (
	"fmt"
	"sort"
	"time"

	"vmplants/internal/sim"
)

// Device is something bytes move through at a finite rate.
type Device struct {
	name string
	pipe *sim.Pipe
	// slots caps concurrent streams for shared servers; nil means
	// unlimited concurrency is irrelevant because the pipe serializes.
	slots *sim.Resource
}

// NewDevice creates a device with the given throughput.
func NewDevice(name string, bytesPerSecond float64, perTransferOverhead time.Duration) *Device {
	p := sim.NewPipe(name, bytesPerSecond)
	p.PerTransferOverhead = perTransferOverhead
	return &Device{name: name, pipe: p}
}

// NewServer creates a shared device that admits at most maxStreams
// concurrent transfers; further clients queue.
func NewServer(name string, bytesPerSecond float64, perTransferOverhead time.Duration, maxStreams int) *Device {
	d := NewDevice(name, bytesPerSecond, perTransferOverhead)
	d.slots = sim.NewResource(name+".slots", maxStreams)
	return d
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// ShareSlots makes transfers through d also occupy other's stream slots,
// modeling a client mount whose server bounds aggregate concurrency.
func (d *Device) ShareSlots(other *Device) { d.slots = other.slots }

// transfer moves size bytes through the device; scale ≥ 1 slows the
// effective rate (memory pressure, degraded paths).
func (d *Device) transfer(p *sim.Proc, size int64, scale float64) {
	if d.slots != nil {
		d.slots.Acquire(p, 1)
		defer d.slots.Release(p, 1)
	}
	d.pipe.Transfer(p, size, scale)
}

// Transfer moves size bytes through the device directly — for paths
// with no file namespace, like the cluster's node-to-node interconnect.
func (d *Device) Transfer(p *sim.Proc, size int64, scale float64) {
	d.transfer(p, size, scale)
}

// Stats reports cumulative bytes and transfer count.
func (d *Device) Stats() (bytes, transfers int64) { return d.pipe.Stats() }

// entry is one file in a volume.
type entry struct {
	size    int64
	linkTo  string // non-empty for same-volume symlinks
	foreign *foreignRef
	// sum is the content checksum recorded when the file was written
	// (0 = unchecksummed). Integrity-aware writers record it alongside
	// the size; corruption faults scramble it so verifying readers see
	// the mismatch a real bit flip would produce.
	sum uint64
}

// foreignRef is a cross-volume symlink target (a local path pointing at
// an NFS-mounted file, the way clones reference the golden disk).
type foreignRef struct {
	vol  *Volume
	path string
}

// Volume is a named file namespace on a device.
type Volume struct {
	name  string
	dev   *Device
	files map[string]entry
	// LinkLatency is the metadata cost of creating a link (or a file
	// entry); it models the paper's "soft links rather than file copies".
	LinkLatency time.Duration
}

// NewVolume creates an empty volume on dev.
func NewVolume(name string, dev *Device) *Volume {
	return &Volume{name: name, dev: dev, files: make(map[string]entry), LinkLatency: 5 * time.Millisecond}
}

// Name returns the volume name.
func (v *Volume) Name() string { return v.name }

// ViewOn returns a view of the same namespace whose transfers are costed
// against dev — how each cluster node sees the shared NFS warehouse
// through its own mount. Namespace mutations are visible through every
// view.
func (v *Volume) ViewOn(dev *Device) *Volume {
	return &Volume{name: v.name, dev: dev, files: v.files, LinkLatency: v.LinkLatency}
}

// Device returns the backing device.
func (v *Volume) Device() *Device { return v.dev }

// Exists reports whether path is present.
func (v *Volume) Exists(path string) bool {
	_, ok := v.files[path]
	return ok
}

// Stat returns a file's logical size, resolving one level of links
// (same-volume or cross-volume).
func (v *Volume) Stat(path string) (int64, error) {
	e, ok := v.files[path]
	if !ok {
		return 0, fmt.Errorf("storage: %s: no file %q", v.name, path)
	}
	if e.foreign != nil {
		return e.foreign.vol.Stat(e.foreign.path)
	}
	if e.linkTo != "" {
		t, ok := v.files[e.linkTo]
		if !ok {
			return 0, fmt.Errorf("storage: %s: dangling link %q → %q", v.name, path, e.linkTo)
		}
		return t.size, nil
	}
	return e.size, nil
}

// List returns all paths, sorted.
func (v *Volume) List() []string {
	out := make([]string, 0, len(v.files))
	for p := range v.files {
		out = append(out, p)
	}
	sort.Strings(out)
	return out
}

// Write creates (or truncates) a file of the given size, paying the
// device's write cost.
func (v *Volume) Write(p *sim.Proc, path string, size int64, scale float64) error {
	if size < 0 {
		return fmt.Errorf("storage: negative size for %q", path)
	}
	v.dev.transfer(p, size, scale)
	v.files[path] = entry{size: size}
	return nil
}

// WriteMeta creates a zero-cost metadata-only file entry (bookkeeping
// files whose byte cost is accounted elsewhere).
func (v *Volume) WriteMeta(path string, size int64) {
	v.files[path] = entry{size: size}
}

// WriteMetaSum is WriteMeta with a recorded content checksum — how the
// warehouse lays down artifacts whose integrity clone and scrub paths
// later verify.
func (v *Volume) WriteMetaSum(path string, size int64, sum uint64) {
	v.files[path] = entry{size: size, sum: sum}
}

// Checksum returns a file's recorded content checksum, resolving one
// level of links the way Stat does. The bool reports whether the path
// exists; a present file may still carry sum 0 (unchecksummed).
func (v *Volume) Checksum(path string) (uint64, bool) {
	e, ok := v.files[path]
	if !ok {
		return 0, false
	}
	if e.foreign != nil {
		return e.foreign.vol.Checksum(e.foreign.path)
	}
	if e.linkTo != "" {
		t, ok := v.files[e.linkTo]
		if !ok {
			return 0, false
		}
		return t.sum, true
	}
	return e.sum, true
}

// SetChecksum overwrites the checksum recorded on a direct (non-link)
// entry. Repair paths use it to restore a good sum; corruption faults
// use it to scramble one.
func (v *Volume) SetChecksum(path string, sum uint64) error {
	e, ok := v.files[path]
	if !ok {
		return fmt.Errorf("storage: %s: checksum of missing %q", v.name, path)
	}
	e.sum = sum
	v.files[path] = e
	return nil
}

// Read pays the device's read cost for the whole file and returns its
// size.
func (v *Volume) Read(p *sim.Proc, path string, scale float64) (int64, error) {
	size, err := v.Stat(path)
	if err != nil {
		return 0, err
	}
	v.dev.transfer(p, size, scale)
	return size, nil
}

// Link creates a symlink dst → src on the same volume: metadata only,
// LinkLatency of virtual time, no data movement.
func (v *Volume) Link(p *sim.Proc, src, dst string) error {
	if _, ok := v.files[src]; !ok {
		return fmt.Errorf("storage: %s: link source %q missing", v.name, src)
	}
	p.Sleep(v.LinkLatency)
	v.files[dst] = entry{linkTo: src}
	return nil
}

// IsLink reports whether path is a symlink (same- or cross-volume).
func (v *Volume) IsLink(path string) bool {
	e, ok := v.files[path]
	return ok && (e.linkTo != "" || e.foreign != nil)
}

// LinkForeign creates dst on v as a symlink to srcPath on another
// volume — the production line's "soft links for the virtual hard disk"
// pointing into the NFS warehouse. Metadata only; LinkLatency applies.
func (v *Volume) LinkForeign(p *sim.Proc, src *Volume, srcPath, dst string) error {
	if !src.Exists(srcPath) {
		return fmt.Errorf("storage: %s: foreign link source %s:%q missing", v.name, src.name, srcPath)
	}
	p.Sleep(v.LinkLatency)
	v.files[dst] = entry{foreign: &foreignRef{vol: src, path: srcPath}}
	return nil
}

// CopyTo copies src on v to dstPath on dst, streaming through both
// devices: the transfer occupies the source device at the bottleneck
// rate, then pays only the destination's fixed overhead (the stream
// writes as it reads). scale further slows the effective rate.
func (v *Volume) CopyTo(p *sim.Proc, src string, dst *Volume, dstPath string, scale float64) (int64, error) {
	size, err := v.Stat(src)
	if err != nil {
		return 0, err
	}
	if scale <= 0 {
		scale = 1
	}
	srcBW := v.dev.pipe.BytesPerSecond
	dstBW := dst.dev.pipe.BytesPerSecond
	eff := srcBW
	if dstBW < eff {
		eff = dstBW
	}
	// Occupy the source device for the whole streamed copy at the
	// bottleneck rate; the destination only charges its per-transfer
	// overhead (its bandwidth is subsumed by the bottleneck rate).
	v.dev.transfer(p, size, scale*srcBW/eff)
	p.Sleep(dst.dev.pipe.PerTransferOverhead)
	// The copy carries the source's recorded checksum: a faithful byte
	// stream reproduces the content, corrupted or not.
	sum, _ := v.Checksum(src)
	dst.files[dstPath] = entry{size: size, sum: sum}
	return size, nil
}

// Append grows (or creates) a plain file by delta bytes, paying the
// device's write cost for the appended bytes only — the I/O shape of an
// append-only log flush, where each fsync writes the new suffix rather
// than rewriting the file. Links cannot be appended to. A nil proc
// records the growth without charging (setup-time appends outside the
// kernel). The new size is returned.
func (v *Volume) Append(p *sim.Proc, path string, delta int64, scale float64) (int64, error) {
	if delta < 0 {
		return 0, fmt.Errorf("storage: negative append to %q", path)
	}
	e := v.files[path] // zero value: creating the file
	if e.linkTo != "" || e.foreign != nil {
		return 0, fmt.Errorf("storage: %s: append to link %q", v.name, path)
	}
	if p != nil {
		v.dev.transfer(p, delta, scale)
	}
	e.size += delta
	v.files[path] = e
	return e.size, nil
}

// Truncate shrinks a plain file to the given size — how a journal
// replay discards a torn tail. Metadata-only: no device cost.
func (v *Volume) Truncate(path string, size int64) error {
	e, ok := v.files[path]
	if !ok {
		return fmt.Errorf("storage: %s: truncate of missing %q", v.name, path)
	}
	if e.linkTo != "" || e.foreign != nil {
		return fmt.Errorf("storage: %s: truncate of link %q", v.name, path)
	}
	if size < 0 || size > e.size {
		return fmt.Errorf("storage: %s: truncate %q to %d (size %d)", v.name, path, size, e.size)
	}
	e.size = size
	v.files[path] = e
	return nil
}

// Charge pays the device cost of moving size bytes without touching the
// namespace — for operations whose file bookkeeping happens elsewhere
// (e.g. a warehouse publish whose entries the warehouse itself records).
func (v *Volume) Charge(p *sim.Proc, size int64, scale float64) {
	if size <= 0 {
		return
	}
	v.dev.transfer(p, size, scale)
}

// Delete removes a file; it is an error if absent.
func (v *Volume) Delete(path string) error {
	if _, ok := v.files[path]; !ok {
		return fmt.Errorf("storage: %s: delete of missing %q", v.name, path)
	}
	delete(v.files, path)
	return nil
}

// UsedBytes sums the sizes of real (non-link) files.
func (v *Volume) UsedBytes() int64 {
	var n int64
	for _, e := range v.files {
		if e.linkTo == "" {
			n += e.size
		}
	}
	return n
}
