package storage

import (
	"testing"
	"time"

	"vmplants/internal/sim"
)

// run executes body as a single simulation process and returns the
// virtual time it took.
func run(t *testing.T, body func(p *sim.Proc)) time.Duration {
	t.Helper()
	k := sim.NewKernel()
	k.Spawn("test", body)
	res := k.Run(0)
	if len(res.Stranded) != 0 {
		t.Fatalf("stranded: %v", res.Stranded)
	}
	return res.End
}

func TestWriteAndReadCostTime(t *testing.T) {
	dev := NewDevice("disk", 10e6, 0)
	v := NewVolume("v", dev)
	d := run(t, func(p *sim.Proc) {
		if err := v.Write(p, "f", 20e6, 1); err != nil {
			t.Error(err)
		}
		if _, err := v.Read(p, "f", 1); err != nil {
			t.Error(err)
		}
	})
	if d != 4*time.Second { // 2s write + 2s read
		t.Errorf("elapsed %v, want 4s", d)
	}
	size, err := v.Stat("f")
	if err != nil || size != 20e6 {
		t.Errorf("Stat = %d, %v", size, err)
	}
}

func TestLinkIsCheapAndResolves(t *testing.T) {
	dev := NewDevice("disk", 10e6, 0)
	v := NewVolume("v", dev)
	d := run(t, func(p *sim.Proc) {
		v.Write(p, "base", 100e6, 1)
		if err := v.Link(p, "base", "clone"); err != nil {
			t.Error(err)
		}
	})
	// 10s for the write; the link adds only LinkLatency.
	if d >= 10*time.Second+time.Second {
		t.Errorf("elapsed %v, link not cheap", d)
	}
	if !v.IsLink("clone") || v.IsLink("base") {
		t.Error("IsLink wrong")
	}
	size, err := v.Stat("clone")
	if err != nil || size != 100e6 {
		t.Errorf("link Stat = %d, %v", size, err)
	}
}

func TestLinkToMissingSource(t *testing.T) {
	v := NewVolume("v", NewDevice("d", 1e6, 0))
	run(t, func(p *sim.Proc) {
		if err := v.Link(p, "ghost", "l"); err == nil {
			t.Error("dangling link source accepted")
		}
	})
}

func TestCopyToBottleneckRate(t *testing.T) {
	fast := NewVolume("fast", NewDevice("fastdev", 100e6, 0))
	slow := NewVolume("slow", NewDevice("slowdev", 10e6, 0))
	d := run(t, func(p *sim.Proc) {
		fast.WriteMeta("src", 50e6)
		if _, err := fast.CopyTo(p, "src", slow, "dst", 1); err != nil {
			t.Error(err)
		}
	})
	// Bottleneck is the 10 MB/s destination: 5 s.
	if d != 5*time.Second {
		t.Errorf("copy took %v, want 5s", d)
	}
	if size, _ := slow.Stat("dst"); size != 50e6 {
		t.Error("copy did not create destination entry")
	}
}

func TestCopyScaleSlowsDown(t *testing.T) {
	a := NewVolume("a", NewDevice("ad", 10e6, 0))
	b := NewVolume("b", NewDevice("bd", 10e6, 0))
	d := run(t, func(p *sim.Proc) {
		a.WriteMeta("src", 10e6)
		a.CopyTo(p, "src", b, "dst", 2)
	})
	if d != 2*time.Second {
		t.Errorf("scaled copy took %v, want 2s", d)
	}
}

func TestServerSlotsQueueTransfers(t *testing.T) {
	server := NewServer("nfs", 100e6, 0, 1) // one stream at a time
	v := NewVolume("w", server)
	var done []time.Duration
	k := sim.NewKernel()
	v.WriteMeta("f", 100e6) // 1s at full rate
	for i := 0; i < 3; i++ {
		k.Spawn("reader", func(p *sim.Proc) {
			if _, err := v.Read(p, "f", 1); err != nil {
				t.Error(err)
			}
			done = append(done, p.Now())
		})
	}
	k.Run(0)
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	for i := range want {
		if done[i] != want[i] {
			t.Fatalf("completions %v, want %v", done, want)
		}
	}
}

func TestViewSharesNamespaceChargesOwnDevice(t *testing.T) {
	serverDev := NewDevice("server", 100e6, 0)
	server := NewVolume("warehouse", serverDev)
	mountDev := NewDevice("mount", 10e6, 0)
	view := server.ViewOn(mountDev)

	d := run(t, func(p *sim.Proc) {
		server.WriteMeta("golden", 20e6)
		if !view.Exists("golden") {
			t.Error("view does not see server file")
		}
		view.Read(p, "golden", 1)
	})
	if d != 2*time.Second { // at the mount's 10 MB/s, not the server's 100
		t.Errorf("view read took %v, want 2s", d)
	}
	// Mutation through the view visible at the server.
	view.WriteMeta("x", 1)
	if !server.Exists("x") {
		t.Error("server does not see view write")
	}
}

func TestDeleteAndErrors(t *testing.T) {
	v := NewVolume("v", NewDevice("d", 1e6, 0))
	v.WriteMeta("f", 10)
	if err := v.Delete("f"); err != nil {
		t.Error(err)
	}
	if err := v.Delete("f"); err == nil {
		t.Error("double delete accepted")
	}
	if _, err := v.Stat("f"); err == nil {
		t.Error("Stat of deleted file succeeded")
	}
	run(t, func(p *sim.Proc) {
		if _, err := v.Read(p, "ghost", 1); err == nil {
			t.Error("read of missing file succeeded")
		}
		if err := v.Write(p, "neg", -1, 1); err == nil {
			t.Error("negative size accepted")
		}
	})
}

func TestDanglingLinkStat(t *testing.T) {
	v := NewVolume("v", NewDevice("d", 1e6, 0))
	v.WriteMeta("src", 10)
	run(t, func(p *sim.Proc) {
		v.Link(p, "src", "l")
	})
	v.Delete("src")
	if _, err := v.Stat("l"); err == nil {
		t.Error("dangling link Stat succeeded")
	}
}

func TestUsedBytesIgnoresLinks(t *testing.T) {
	v := NewVolume("v", NewDevice("d", 1e9, 0))
	run(t, func(p *sim.Proc) {
		v.Write(p, "a", 100, 1)
		v.Write(p, "b", 50, 1)
		v.Link(p, "a", "l")
	})
	if v.UsedBytes() != 150 {
		t.Errorf("UsedBytes = %d", v.UsedBytes())
	}
	if got := v.List(); len(got) != 3 || got[0] != "a" || got[2] != "l" {
		t.Errorf("List = %v", got)
	}
}

func TestPerTransferOverhead(t *testing.T) {
	dev := NewDevice("d", 1e6, 500*time.Millisecond)
	v := NewVolume("v", dev)
	d := run(t, func(p *sim.Proc) {
		v.Write(p, "tiny", 0, 1)
	})
	if d != 500*time.Millisecond {
		t.Errorf("zero-byte write took %v, want overhead only", d)
	}
}
