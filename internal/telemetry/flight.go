package telemetry

import (
	"sync"
	"time"
)

// The flight recorder keeps a bounded ring of typed lifecycle events
// keyed by creation/VM ID — the black box that explains what happened
// to one creation after the fact, cheaper and longer-lived than full
// spans. It is the deliberate seam for a future durable control-plane
// journal: every event already carries the identity, ordering and
// timestamps a persistent log would need.

// Flight-event kinds. Components record these at the moments a
// post-mortem cares about; the set is open — any string is accepted —
// but the stack sticks to this vocabulary.
const (
	EvSubmitted     = "submitted"      // shop accepted the creation request
	EvBidWon        = "bid-won"        // winner selected (detail: plant)
	EvAdmitted      = "admitted"       // clone admission slot acquired
	EvCloneStart    = "clone-start"    // golden-state clone began (detail: image)
	EvCloneDone     = "clone-done"     // clone finished (detail: mode)
	EvFaultInjected = "fault-injected" // an injected fault fired (detail: kind)
	EvRetried       = "retried"        // creation failed over / RPC retried
	EvQuarantineHit = "quarantine-hit" // clone refused or failed integrity verification
	EvCreated       = "created"        // creation completed (detail: plant)
	EvPublished     = "published"      // derived image published back (detail: image)
)

// FlightEvent is one recorded lifecycle event.
type FlightEvent struct {
	Seq    uint64        // global recording order
	Key    string        // creation/VM ID
	Kind   string        // one of the Ev* kinds
	Detail string        // kind-specific annotation ("" when none)
	V      time.Duration // virtual time at recording (0 without a clock)
	W      time.Time     // wall clock at recording
}

// DefaultFlightLimit bounds the flight recorder's event ring.
const DefaultFlightLimit = 16384

// FlightRecorder is a bounded, concurrency-safe lifecycle-event ring.
// A nil *FlightRecorder accepts every call as a no-op.
type FlightRecorder struct {
	mu      sync.Mutex
	limit   int
	ring    []FlightEvent
	next    int // write position once the ring is full
	seq     uint64
	dropped uint64
}

// NewFlightRecorder returns a recorder keeping the most recent limit
// events (limit <= 0 selects DefaultFlightLimit).
func NewFlightRecorder(limit int) *FlightRecorder {
	if limit <= 0 {
		limit = DefaultFlightLimit
	}
	return &FlightRecorder{limit: limit}
}

// Record appends one event. c supplies virtual time and may be nil for
// wall-only call sites.
func (f *FlightRecorder) Record(c Clock, key, kind, detail string) {
	if f == nil {
		return
	}
	ev := FlightEvent{Key: key, Kind: kind, Detail: detail, W: time.Now()}
	if c != nil {
		ev.V = c.Now()
	}
	f.mu.Lock()
	f.seq++
	ev.Seq = f.seq
	if len(f.ring) < f.limit {
		f.ring = append(f.ring, ev)
	} else {
		f.ring[f.next] = ev
		f.next = (f.next + 1) % f.limit
		f.dropped++
	}
	f.mu.Unlock()
}

// Events returns the retained events for one key in recording order;
// an empty key returns everything.
func (f *FlightRecorder) Events(key string) []FlightEvent {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]FlightEvent, 0, len(f.ring))
	emit := func(ev FlightEvent) {
		if key == "" || ev.Key == key {
			out = append(out, ev)
		}
	}
	if f.dropped > 0 {
		for i := 0; i < f.limit; i++ {
			emit(f.ring[(f.next+i)%f.limit])
		}
		return out
	}
	for _, ev := range f.ring {
		emit(ev)
	}
	return out
}

// Keys returns every distinct key with retained events, in first-seen
// order.
func (f *FlightRecorder) Keys() []string {
	if f == nil {
		return nil
	}
	seen := make(map[string]bool)
	var out []string
	for _, ev := range f.Events("") {
		if !seen[ev.Key] {
			seen[ev.Key] = true
			out = append(out, ev.Key)
		}
	}
	return out
}

// Dropped reports how many events were evicted from the ring.
func (f *FlightRecorder) Dropped() uint64 {
	if f == nil {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.dropped
}

// Reset discards all retained events (sequence numbers keep
// increasing).
func (f *FlightRecorder) Reset() {
	if f == nil {
		return
	}
	f.mu.Lock()
	f.ring = f.ring[:0]
	f.next = 0
	f.dropped = 0
	f.mu.Unlock()
}

// FlightRecord is the JSON shape of one exported flight event (see
// /debug/creation/<id>).
type FlightRecord struct {
	Seq    uint64  `json:"seq"`
	Kind   string  `json:"kind"`
	Detail string  `json:"detail,omitempty"`
	VSecs  float64 `json:"vsecs"`
	Wall   string  `json:"wall,omitempty"`
}

// Record converts an event to its export shape.
func (ev FlightEvent) Record() FlightRecord {
	r := FlightRecord{Seq: ev.Seq, Kind: ev.Kind, Detail: ev.Detail, VSecs: ev.V.Seconds()}
	if !ev.W.IsZero() {
		r.Wall = ev.W.Format(time.RFC3339Nano)
	}
	return r
}
