package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strconv"
	"time"
)

// SpanRecord is the JSON shape of one exported span — the line format
// of the JSONL trace export and of /debug/traces.
type SpanRecord struct {
	ID     uint64            `json:"id"`
	Parent uint64            `json:"parent,omitempty"`
	Name   string            `json:"name"`
	VStart float64           `json:"vstart"` // virtual start, seconds
	VSecs  float64           `json:"vsecs"`  // virtual duration, seconds
	WStart string            `json:"wstart,omitempty"`
	WSecs  float64           `json:"wsecs"` // wall duration, seconds
	Attrs  map[string]string `json:"attrs,omitempty"`
	Err    string            `json:"err,omitempty"`
}

// Record converts a span to its export shape.
func (s Span) Record() SpanRecord {
	r := SpanRecord{
		ID:     s.ID,
		Parent: s.Parent,
		Name:   s.Name,
		VStart: s.VStart.Seconds(),
		VSecs:  s.Virtual().Seconds(),
		WSecs:  s.Wall().Seconds(),
		Err:    s.Err,
	}
	if !s.WStart.IsZero() {
		r.WStart = s.WStart.Format(time.RFC3339Nano)
	}
	if len(s.Attrs) > 0 {
		r.Attrs = make(map[string]string, len(s.Attrs))
		for _, a := range s.Attrs {
			r.Attrs[a.Key] = a.Value
		}
	}
	return r
}

// WriteJSONL writes every finished span as one JSON document per line,
// oldest first — the trace export vmbench consumes.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Spans() {
		if err := enc.Encode(s.Record()); err != nil {
			return err
		}
	}
	return nil
}

// HTTPHandler serves the hub's debug endpoints:
//
//	GET /metrics              expvar-compatible JSON of every instrument
//	GET /debug/traces         finished spans as JSONL (?limit=N for the
//	                          most recent N, ?name=prefix to filter)
func (h *Hub) HTTPHandler() http.Handler {
	return h.DebugMux()
}

// DebugMux returns the hub's debug endpoints as a mux the caller can
// extend with subsystem-specific handlers (the daemons add
// /debug/warehouse) before serving.
func (h *Hub) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h.M().Snapshot())
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
		spans := h.T().Spans()
		if v := req.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, fmt.Sprintf("bad limit %q", v), http.StatusBadRequest)
				return
			}
			if n < len(spans) {
				spans = spans[len(spans)-n:]
			}
		}
		name := req.URL.Query().Get("name")
		w.Header().Set("Content-Type", "application/jsonl")
		enc := json.NewEncoder(w)
		for _, s := range spans {
			if name != "" && !hasPrefix(s.Name, name) {
				continue
			}
			enc.Encode(s.Record())
		}
	})
	return mux
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// ServeDebug starts the hub's debug HTTP server on addr in a background
// goroutine and returns the bound address (useful with ":0"). The
// listener lives until the process exits.
func (h *Hub) ServeDebug(addr string) (string, error) {
	return Serve(addr, h.HTTPHandler())
}

// Serve starts handler on addr in a background goroutine and returns
// the bound address — ServeDebug for a caller-extended mux.
func Serve(addr string, handler http.Handler) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: debug listen %s: %w", addr, err)
	}
	go http.Serve(l, handler)
	return l.Addr().String(), nil
}
