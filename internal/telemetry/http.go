package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// SpanRecord is the JSON shape of one exported span — the line format
// of the JSONL trace export and of /debug/traces.
type SpanRecord struct {
	ID     uint64            `json:"id"`
	Parent uint64            `json:"parent,omitempty"`
	Trace  uint64            `json:"trace,omitempty"`
	Name   string            `json:"name"`
	VStart float64           `json:"vstart"` // virtual start, seconds
	VSecs  float64           `json:"vsecs"`  // virtual duration, seconds
	WStart string            `json:"wstart,omitempty"`
	WSecs  float64           `json:"wsecs"` // wall duration, seconds
	Attrs  map[string]string `json:"attrs,omitempty"`
	Err    string            `json:"err,omitempty"`
}

// Record converts a span to its export shape.
func (s Span) Record() SpanRecord {
	r := SpanRecord{
		ID:     s.ID,
		Parent: s.Parent,
		Trace:  s.TraceID,
		Name:   s.Name,
		VStart: s.VStart.Seconds(),
		VSecs:  s.Virtual().Seconds(),
		WSecs:  s.Wall().Seconds(),
		Err:    s.Err,
	}
	if !s.WStart.IsZero() {
		r.WStart = s.WStart.Format(time.RFC3339Nano)
	}
	if len(s.Attrs) > 0 {
		r.Attrs = make(map[string]string, len(s.Attrs))
		for _, a := range s.Attrs {
			r.Attrs[a.Key] = a.Value
		}
	}
	return r
}

// WriteJSONL writes every finished span as one JSON document per line,
// oldest first — the trace export vmbench consumes.
func (t *Tracer) WriteJSONL(w io.Writer) error {
	enc := json.NewEncoder(w)
	for _, s := range t.Spans() {
		if err := enc.Encode(s.Record()); err != nil {
			return err
		}
	}
	return nil
}

// TraceMeta is the header line of /debug/traces: ring accounting that
// tells a remote consumer whether the span set it is about to read is
// complete.
type TraceMeta struct {
	Meta    bool   `json:"meta"`
	Spans   int    `json:"spans"`   // spans the response carries
	Dropped uint64 `json:"dropped"` // spans evicted from the ring
}

// CreationReport is the JSON document /debug/creation/<id> serves: the
// flight-recorder timeline for one creation plus every span of the
// traces that mention it.
type CreationReport struct {
	ID      string         `json:"id"`
	Events  []FlightRecord `json:"events"`
	Spans   []SpanRecord   `json:"spans"`
	Dropped uint64         `json:"dropped"` // span-ring evictions (completeness caveat)
}

// HealthReport is the JSON document /debug/health serves.
type HealthReport struct {
	VSecs      float64           `json:"vsecs"`
	Healthy    bool              `json:"healthy"`
	Objectives []ObjectiveStatus `json:"objectives"`
}

// CreationReportFor assembles the report for one creation/VM ID: its
// flight events, plus all spans of every trace containing a span whose
// "vmid" attribute matches.
func (h *Hub) CreationReportFor(id string) CreationReport {
	rep := CreationReport{ID: id, Events: []FlightRecord{}, Spans: []SpanRecord{}, Dropped: h.T().Dropped()}
	for _, ev := range h.F().Events(id) {
		rep.Events = append(rep.Events, ev.Record())
	}
	spans := h.T().Spans()
	traces := make(map[uint64]bool)
	for _, s := range spans {
		if s.TraceID != 0 && s.Attr("vmid") == id {
			traces[s.TraceID] = true
		}
	}
	for _, s := range spans {
		if traces[s.TraceID] {
			rep.Spans = append(rep.Spans, s.Record())
		}
	}
	return rep
}

// HealthReportAt evaluates the hub's SLO engine at vnow.
func (h *Hub) HealthReportAt(vnow time.Duration) HealthReport {
	rep := HealthReport{VSecs: vnow.Seconds(), Healthy: true, Objectives: []ObjectiveStatus{}}
	if h == nil || h.SLO == nil {
		return rep
	}
	for _, st := range h.SLO.Evaluate(vnow) {
		rep.Objectives = append(rep.Objectives, st)
		if !st.OK {
			rep.Healthy = false
		}
	}
	return rep
}

// HTTPHandler serves the hub's debug endpoints:
//
//	GET /metrics              expvar-compatible JSON of every instrument
//	GET /debug/traces         a meta line (span/dropped counts), then
//	                          finished spans as JSONL (?limit=N for the
//	                          most recent N, ?name=prefix to filter)
//	GET /debug/creation/<id>  one creation's flight-recorder timeline
//	                          and span trees
//	GET /debug/health         SLO evaluation at current virtual time
func (h *Hub) HTTPHandler() http.Handler {
	return h.DebugMux()
}

// DebugMux returns the hub's debug endpoints as a mux the caller can
// extend with subsystem-specific handlers (the daemons add
// /debug/warehouse) before serving.
func (h *Hub) DebugMux() *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h.M().Snapshot())
	})
	mux.HandleFunc("/debug/traces", func(w http.ResponseWriter, req *http.Request) {
		spans := h.T().Spans()
		if v := req.URL.Query().Get("limit"); v != "" {
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				http.Error(w, fmt.Sprintf("bad limit %q", v), http.StatusBadRequest)
				return
			}
			if n < len(spans) {
				spans = spans[len(spans)-n:]
			}
		}
		name := req.URL.Query().Get("name")
		var out []SpanRecord
		for _, s := range spans {
			if name != "" && !hasPrefix(s.Name, name) {
				continue
			}
			out = append(out, s.Record())
		}
		w.Header().Set("Content-Type", "application/jsonl")
		enc := json.NewEncoder(w)
		enc.Encode(TraceMeta{Meta: true, Spans: len(out), Dropped: h.T().Dropped()})
		for _, r := range out {
			enc.Encode(r)
		}
	})
	mux.HandleFunc("/debug/creation/", func(w http.ResponseWriter, req *http.Request) {
		id := strings.TrimPrefix(req.URL.Path, "/debug/creation/")
		if id == "" {
			http.Error(w, "usage: /debug/creation/<vmid>", http.StatusBadRequest)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h.CreationReportFor(id))
	})
	mux.HandleFunc("/debug/health", func(w http.ResponseWriter, _ *http.Request) {
		var vnow time.Duration
		if h != nil && h.VClock != nil {
			vnow = h.VClock.Now()
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		enc.Encode(h.HealthReportAt(vnow))
	})
	return mux
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// chromeEvent is one entry of the Chrome trace-event format ("ph":"X"
// complete events), loadable as-is by chrome://tracing and Perfetto.
type chromeEvent struct {
	Name string            `json:"name"`
	Cat  string            `json:"cat"`
	Ph   string            `json:"ph"`
	Ts   int64             `json:"ts"`  // virtual start, microseconds
	Dur  int64             `json:"dur"` // virtual duration, microseconds
	Pid  int               `json:"pid"`
	Tid  uint64            `json:"tid"` // trace ID: one creation per row
	Args map[string]string `json:"args,omitempty"`
}

// WriteChromeTrace renders spans as a Chrome trace-event JSON document.
// The timeline is virtual time (microseconds) and rows (tid) are trace
// IDs, so each creation's tree reads as one row. Wall times are
// deliberately omitted: the export of a same-seed rerun is
// byte-identical.
func WriteChromeTrace(w io.Writer, spans []Span) error {
	evs := make([]chromeEvent, 0, len(spans))
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Cat:  "vmplants",
			Ph:   "X",
			Ts:   s.VStart.Microseconds(),
			Dur:  s.Virtual().Microseconds(),
			Pid:  1,
			Tid:  s.TraceID,
		}
		args := map[string]string{
			"id":     strconv.FormatUint(s.ID, 10),
			"parent": strconv.FormatUint(s.Parent, 10),
		}
		for _, a := range s.Attrs {
			args[a.Key] = a.Value
		}
		if s.Err != "" {
			args["err"] = s.Err
		}
		ev.Args = args
		evs = append(evs, ev)
	}
	// Stable order: by (ts, tid, id) so the document is deterministic
	// regardless of span end order.
	sort.Slice(evs, func(i, j int) bool {
		if evs[i].Ts != evs[j].Ts {
			return evs[i].Ts < evs[j].Ts
		}
		if evs[i].Tid != evs[j].Tid {
			return evs[i].Tid < evs[j].Tid
		}
		return evs[i].Args["id"] < evs[j].Args["id"]
	})
	doc := struct {
		TraceEvents []chromeEvent `json:"traceEvents"`
	}{TraceEvents: evs}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(doc)
}

// ServeDebug starts the hub's debug HTTP server on addr in a background
// goroutine and returns the bound address (useful with ":0"). The
// listener lives until the process exits.
func (h *Hub) ServeDebug(addr string) (string, error) {
	return Serve(addr, h.HTTPHandler())
}

// Serve starts handler on addr in a background goroutine and returns
// the bound address — ServeDebug for a caller-extended mux.
func Serve(addr string, handler http.Handler) (string, error) {
	l, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("telemetry: debug listen %s: %w", addr, err)
	}
	go http.Serve(l, handler)
	return l.Addr().String(), nil
}
