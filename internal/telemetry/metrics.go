package telemetry

import (
	"sync"
	"sync/atomic"

	"vmplants/internal/stats"
)

// Counter is a monotonically increasing metric with an atomic hot path.
// A nil *Counter accepts every call as a no-op.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by d.
func (c *Counter) Add(d int64) {
	if c == nil {
		return
	}
	c.v.Add(d)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value reports the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. A nil *Gauge accepts every
// call as a no-op.
type Gauge struct {
	v atomic.Int64
}

// Set stores v.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// SetMax raises the gauge to v if v exceeds the current value — a
// high-water mark.
func (g *Gauge) SetMax(v int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if v <= cur || g.v.CompareAndSwap(cur, v) {
			return
		}
	}
}

// Value reports the current value.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// DefaultHistogramLimit bounds each histogram's retained sample window.
const DefaultHistogramLimit = 1 << 16

// Histogram records a stream of float64 observations and snapshots them
// with the same summary statistics the benchmark harness uses
// (stats.Summarize). Once the retention limit is reached, the oldest
// samples are overwritten (a sliding window). A nil *Histogram accepts
// every call as a no-op.
type Histogram struct {
	mu      sync.Mutex
	samples []float64
	next    int   // overwrite position once the window is full
	count   int64 // total observations, including overwritten ones
	sum     float64
	limit   int
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.count++
	h.sum += v
	if len(h.samples) < h.limit {
		h.samples = append(h.samples, v)
	} else {
		h.samples[h.next] = v
		h.next = (h.next + 1) % h.limit
	}
	h.mu.Unlock()
}

// Snapshot summarizes the retained sample window. The result is exactly
// stats.Summarize over the retained samples.
func (h *Histogram) Snapshot() stats.Summary {
	if h == nil {
		return stats.Summary{}
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return stats.Summarize(h.samples)
}

// Reset discards the retained window and zeroes the running count and
// sum. Experiment setup calls this so a sliding-window snapshot never
// mixes samples across runs sharing one hub.
func (h *Histogram) Reset() {
	if h == nil {
		return
	}
	h.mu.Lock()
	h.samples = h.samples[:0]
	h.next = 0
	h.count = 0
	h.sum = 0
	h.mu.Unlock()
}

// Quantile reports the q-quantile (0..1) of the retained sample window
// (0 when empty).
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	samples := append([]float64(nil), h.samples...)
	h.mu.Unlock()
	return stats.Quantile(samples, q)
}

// FractionAbove reports the fraction of retained samples strictly
// greater than x (0 when the window is empty) — the "bad event"
// fraction SLO burn accounting needs.
func (h *Histogram) FractionAbove(x float64) float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	if len(h.samples) == 0 {
		return 0
	}
	n := 0
	for _, v := range h.samples {
		if v > x {
			n++
		}
	}
	return float64(n) / float64(len(h.samples))
}

// Count reports total observations, including any that slid out of the
// retention window.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum reports the running sum of all observations.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// Registry is a named collection of counters, gauges and histograms.
// Lookups get-or-create under a mutex; callers on hot paths should
// resolve their instruments once and hold the pointers. A nil *Registry
// resolves every name to a nil (no-op) instrument.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter resolves (creating if needed) the named counter.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge resolves (creating if needed) the named gauge.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram resolves (creating if needed) the named histogram.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = &Histogram{limit: DefaultHistogramLimit}
		r.hists[name] = h
	}
	return h
}

// ResetHistograms resets every histogram in the registry; counters and
// gauges keep their values (they are cumulative by contract).
func (r *Registry) ResetHistograms() {
	if r == nil {
		return
	}
	r.mu.Lock()
	hists := make([]*Histogram, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()
	for _, h := range hists {
		h.Reset()
	}
}

// Snapshot renders every instrument into a JSON-ready map: counters and
// gauges as integers, histograms as {count, mean, p50, p90, p99, max}
// objects — the expvar-style document /metrics serves.
func (r *Registry) Snapshot() map[string]any {
	out := make(map[string]any)
	if r == nil {
		return out
	}
	r.mu.Lock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for name, c := range counters {
		out[name] = c.Value()
	}
	for name, g := range gauges {
		out[name] = g.Value()
	}
	for name, h := range hists {
		s := h.Snapshot()
		out[name] = map[string]any{
			"count": h.Count(),
			"sum":   h.Sum(),
			"mean":  s.Mean,
			"min":   s.Min,
			"p50":   s.P50,
			"p90":   s.P90,
			"p99":   s.P99,
			"max":   s.Max,
		}
	}
	return out
}
