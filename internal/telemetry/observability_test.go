package telemetry

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestStartCtxJoinsTrace(t *testing.T) {
	tr := NewTracer(0)
	c := &fakeClock{}
	root := tr.Start(c, "root")
	if root.TraceID != root.ID {
		t.Fatalf("root trace = %d, want its own id %d", root.TraceID, root.ID)
	}
	joined := tr.StartCtx(c, "joined", root.Context())
	if joined.TraceID != root.TraceID || joined.Parent != root.ID {
		t.Fatalf("joined = trace %d parent %d, want trace %d parent %d",
			joined.TraceID, joined.Parent, root.TraceID, root.ID)
	}
	grand := joined.Child(c, "grand")
	grand.End(c)
	joined.End(c)
	root.End(c)

	// StartCtx with a zero context roots a fresh trace.
	other := tr.StartCtx(c, "other", SpanContext{})
	other.End(c)
	if other.TraceID == root.TraceID || other.Parent != 0 {
		t.Fatalf("zero-context span joined trace %d (parent %d)", other.TraceID, other.Parent)
	}

	got := tr.SpansFor(root.TraceID)
	if len(got) != 3 {
		t.Fatalf("SpansFor returned %d spans, want 3", len(got))
	}
	for _, s := range got {
		if s.TraceID != root.TraceID {
			t.Fatalf("span %q carries trace %d, want %d", s.Name, s.TraceID, root.TraceID)
		}
	}
	if len(tr.SpansFor(0)) != 0 {
		t.Fatal("SpansFor(0) must return nothing")
	}
}

func TestSetIDBaseSeparatesInstances(t *testing.T) {
	a, b := NewTracer(0), NewTracer(0)
	a.SetIDBase(1 << 32)
	b.SetIDBase(2 << 32)
	c := &fakeClock{}
	sa := a.Start(c, "a")
	sb := b.Start(c, "b")
	sa.End(c)
	sb.End(c)
	if sa.ID == sb.ID || sa.TraceID == sb.TraceID {
		t.Fatalf("colliding ids across instances: %d vs %d", sa.ID, sb.ID)
	}
	if sa.ID>>32 != 1 || sb.ID>>32 != 2 {
		t.Fatalf("ids %d/%d not in their base ranges", sa.ID, sb.ID)
	}
}

func TestFlightRecorderPerKeyAndEviction(t *testing.T) {
	f := NewFlightRecorder(4)
	c := &fakeClock{t: 3 * time.Second}
	f.Record(c, "vm-1", EvSubmitted, "")
	f.Record(c, "vm-1", EvBidWon, "plant-a")
	f.Record(nil, "vm-2", EvSubmitted, "")
	f.Record(c, "vm-1", EvCreated, "plant-a")

	evs := f.Events("vm-1")
	if len(evs) != 3 {
		t.Fatalf("vm-1 has %d events, want 3", len(evs))
	}
	if evs[0].Kind != EvSubmitted || evs[2].Kind != EvCreated {
		t.Fatalf("event order: %v", evs)
	}
	if evs[0].V != 3*time.Second {
		t.Fatalf("virtual stamp = %v, want 3s", evs[0].V)
	}
	if keys := f.Keys(); len(keys) != 2 || keys[0] != "vm-1" || keys[1] != "vm-2" {
		t.Fatalf("keys = %v", keys)
	}

	// One past the limit: the oldest event falls off.
	f.Record(c, "vm-2", EvCreated, "")
	if f.Dropped() != 1 {
		t.Fatalf("dropped = %d, want 1", f.Dropped())
	}
	all := f.Events("")
	if len(all) != 4 || all[0].Kind != EvBidWon {
		t.Fatalf("post-eviction ring: %v", all)
	}
	for i := 1; i < len(all); i++ {
		if all[i].Seq <= all[i-1].Seq {
			t.Fatalf("out-of-order seq at %d: %v", i, all)
		}
	}

	f.Reset()
	if len(f.Events("")) != 0 || f.Dropped() != 0 {
		t.Fatal("reset must clear the ring")
	}

	var nilF *FlightRecorder
	nilF.Record(c, "vm-1", EvSubmitted, "")
	if nilF.Events("") != nil || nilF.Keys() != nil || nilF.Dropped() != 0 {
		t.Fatal("nil recorder must no-op")
	}
}

func TestHistogramResetQuantileFraction(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("secs")
	for _, v := range []float64{1, 2, 3, 4, 10} {
		h.Observe(v)
	}
	if q := h.Quantile(0.5); q != 3 {
		t.Fatalf("p50 = %v, want 3", q)
	}
	if fa := h.FractionAbove(4); fa != 0.2 {
		t.Fatalf("FractionAbove(4) = %v, want 0.2", fa)
	}
	if fa := h.FractionAbove(100); fa != 0 {
		t.Fatalf("FractionAbove(100) = %v, want 0", fa)
	}
	r.ResetHistograms()
	if h.Count() != 0 || h.Quantile(0.5) != 0 || h.FractionAbove(0) != 0 {
		t.Fatalf("histogram not reset: count=%d", h.Count())
	}
	h.Observe(7)
	if h.Count() != 1 || h.Quantile(0.99) != 7 {
		t.Fatal("histogram unusable after reset")
	}
}

func TestSLOEngineLatencyAndRatio(t *testing.T) {
	r := NewRegistry()
	e := NewSLOEngine(r,
		Objective{Name: "create.p99", Hist: "create_secs", Quantile: 0.99, MaxSeconds: 10},
		Objective{Name: "clone.success", Good: "ok", Bad: "fail", MinRatio: 0.75},
	)

	// No observations: everything healthy, zero burn.
	for _, st := range e.Evaluate(time.Second) {
		if !st.OK || st.Burn != 0 || st.Samples != 0 {
			t.Fatalf("idle objective not OK: %+v", st)
		}
	}
	if !e.Healthy(time.Second) {
		t.Fatal("idle engine must be healthy")
	}

	h := r.Histogram("create_secs")
	for i := 0; i < 99; i++ {
		h.Observe(1)
	}
	r.Counter("ok").Add(9)
	r.Counter("fail").Add(1)
	sts := e.Evaluate(2 * time.Second)
	if !sts[0].OK || sts[0].Value != 1 {
		t.Fatalf("latency objective: %+v", sts[0])
	}
	if !sts[1].OK || sts[1].Value != 0.9 {
		t.Fatalf("ratio objective: %+v", sts[1])
	}
	// Burn: 10% bad over a 25% allowance.
	if got := sts[1].Burn; got < 0.39 || got > 0.41 {
		t.Fatalf("ratio burn = %v, want 0.4", got)
	}

	// A burst of slow creations pushes p99 over the bound.
	for i := 0; i < 5; i++ {
		h.Observe(100)
	}
	sts = e.Evaluate(3 * time.Second)
	if sts[0].OK || sts[0].Value <= 10 {
		t.Fatalf("violated latency objective still OK: %+v", sts[0])
	}
	if e.Healthy(3 * time.Second) {
		t.Fatal("engine healthy despite violated objective")
	}

	var nilE *SLOEngine
	nilE.Add(Objective{Name: "x"})
	if nilE.Evaluate(0) != nil || !nilE.Healthy(0) {
		t.Fatal("nil engine must no-op healthy")
	}
}

func TestCreationAndHealthEndpoints(t *testing.T) {
	h := New()
	c := &fakeClock{}
	h.VClock = c
	h.SLO = NewSLOEngine(h.M(),
		Objective{Name: "create.p99", Hist: "plant.create_secs", Quantile: 0.99, MaxSeconds: 60})

	sp := h.T().Start(c, "shop.create").Set("vmid", "vm-9")
	child := sp.Child(c, "plant.create")
	c.t = 5 * time.Second
	child.End(c)
	sp.End(c)
	h.F().Record(c, "vm-9", EvSubmitted, "")
	h.F().Record(c, "vm-9", EvCreated, "plant-a")
	h.Histogram("plant.create_secs").Observe(5)

	addr, err := h.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/debug/creation/vm-9")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var rep CreationReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatalf("/debug/creation not JSON: %v\n%s", err, body)
	}
	if rep.ID != "vm-9" || len(rep.Events) != 2 || len(rep.Spans) != 2 {
		t.Fatalf("creation report = %+v", rep)
	}

	resp, err = http.Get("http://" + addr + "/debug/health")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var hr HealthReport
	if err := json.Unmarshal(body, &hr); err != nil {
		t.Fatalf("/debug/health not JSON: %v\n%s", err, body)
	}
	if !hr.Healthy || len(hr.Objectives) != 1 || hr.VSecs != 5 {
		t.Fatalf("health report = %+v", hr)
	}
}

func TestWriteChromeTraceDeterministic(t *testing.T) {
	render := func() string {
		tr := NewTracer(0)
		c := &fakeClock{}
		root := tr.Start(c, "shop.create").Set("vmid", "vm-1")
		c.t = time.Second
		child := root.Child(c, "clone")
		c.t = 3 * time.Second
		child.End(c)
		root.End(c)
		var buf bytes.Buffer
		if err := WriteChromeTrace(&buf, tr.Spans()); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	a, b := render(), render()
	if a != b {
		t.Fatalf("chrome trace not byte-identical:\n%s\n---\n%s", a, b)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(a), &doc); err != nil {
		t.Fatalf("chrome trace not JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		if ev["ph"] != "X" {
			t.Fatalf("event phase = %v, want X", ev["ph"])
		}
	}
	if strings.Contains(a, "wstart") {
		t.Fatal("chrome trace must not embed wall timestamps")
	}
}
