package telemetry

import (
	"fmt"
	"math"
	"sync"
	"time"
)

// The SLO engine evaluates named service-level objectives over the
// instruments already in the registry — no second measurement pipeline.
// Two objective shapes cover the stack's needs: a latency bound on a
// histogram quantile ("create.p99 < 120s") and a success-ratio floor
// over a good/bad counter pair ("clone.success > 99.9%"). Evaluation is
// in virtual time, so a simulated deployment and a live daemon share
// one definition of "healthy".

// Objective is one declared SLO. Exactly one of the two forms is used:
// the latency form when Hist is set, otherwise the ratio form.
type Objective struct {
	Name string `json:"name"`

	// Latency form: the Quantile of histogram Hist must not exceed
	// MaxSeconds.
	Hist       string  `json:"hist,omitempty"`
	Quantile   float64 `json:"quantile,omitempty"`
	MaxSeconds float64 `json:"max_seconds,omitempty"`

	// Ratio form: Good/(Good+Bad) must be at least MinRatio, over the
	// named counters.
	Good     string  `json:"good,omitempty"`
	Bad      string  `json:"bad,omitempty"`
	MinRatio float64 `json:"min_ratio,omitempty"`
}

// Kind reports "latency" or "ratio".
func (o Objective) Kind() string {
	if o.Hist != "" {
		return "latency"
	}
	return "ratio"
}

// String renders the objective the way operators read it.
func (o Objective) String() string {
	if o.Kind() == "latency" {
		return fmt.Sprintf("%s: %s.p%g <= %gs", o.Name, o.Hist, o.Quantile*100, o.MaxSeconds)
	}
	return fmt.Sprintf("%s: %s/(%s+%s) >= %g", o.Name, o.Good, o.Good, o.Bad, o.MinRatio)
}

// ObjectiveStatus is one objective's evaluation.
type ObjectiveStatus struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind"`
	OK      bool    `json:"ok"`
	Value   float64 `json:"value"`   // measured quantile (seconds) or ratio
	Bound   float64 `json:"bound"`   // MaxSeconds or MinRatio
	Samples int64   `json:"samples"` // observations behind the verdict
	// Burn is the error-budget burn: the fraction of allowed bad events
	// actually observed. 1.0 means the budget is exactly spent; above
	// 1.0 the objective is (or is about to be) violated. Reported as a
	// plain ratio, not a rate — virtual time makes windows explicit.
	Burn  float64 `json:"burn"`
	VSecs float64 `json:"vsecs"` // virtual time of evaluation
}

// SLOEngine evaluates a set of objectives against one registry. A nil
// *SLOEngine accepts every call as a no-op.
type SLOEngine struct {
	mu   sync.Mutex
	reg  *Registry
	objs []Objective
}

// NewSLOEngine returns an engine over reg with the given objectives.
func NewSLOEngine(reg *Registry, objs ...Objective) *SLOEngine {
	return &SLOEngine{reg: reg, objs: append([]Objective(nil), objs...)}
}

// Add declares another objective.
func (e *SLOEngine) Add(obj Objective) {
	if e == nil {
		return
	}
	e.mu.Lock()
	e.objs = append(e.objs, obj)
	e.mu.Unlock()
}

// Objectives returns the declared objectives.
func (e *SLOEngine) Objectives() []Objective {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Objective(nil), e.objs...)
}

// Evaluate measures every objective at virtual time vnow. An objective
// with no observations yet evaluates OK with zero burn — an idle
// service has not violated anything.
func (e *SLOEngine) Evaluate(vnow time.Duration) []ObjectiveStatus {
	if e == nil {
		return nil
	}
	e.mu.Lock()
	reg := e.reg
	objs := append([]Objective(nil), e.objs...)
	e.mu.Unlock()

	out := make([]ObjectiveStatus, 0, len(objs))
	for _, o := range objs {
		st := ObjectiveStatus{Name: o.Name, Kind: o.Kind(), VSecs: vnow.Seconds()}
		if o.Kind() == "latency" {
			h := reg.Histogram(o.Hist)
			st.Bound = o.MaxSeconds
			st.Samples = h.Count()
			st.Value = h.Quantile(o.Quantile)
			st.OK = st.Samples == 0 || st.Value <= o.MaxSeconds
			st.Burn = burn(h.FractionAbove(o.MaxSeconds), 1-o.Quantile)
		} else {
			good := reg.Counter(o.Good).Value()
			bad := reg.Counter(o.Bad).Value()
			total := good + bad
			st.Bound = o.MinRatio
			st.Samples = total
			if total == 0 {
				st.Value = 1
				st.OK = true
			} else {
				st.Value = float64(good) / float64(total)
				st.OK = st.Value >= o.MinRatio
				st.Burn = burn(1-st.Value, 1-o.MinRatio)
			}
		}
		out = append(out, st)
	}
	return out
}

// Healthy reports whether every objective holds at vnow.
func (e *SLOEngine) Healthy(vnow time.Duration) bool {
	for _, st := range e.Evaluate(vnow) {
		if !st.OK {
			return false
		}
	}
	return true
}

// burn divides the observed bad fraction by the allowed bad fraction.
// A zero allowance means any bad event is an immediate violation.
func burn(actual, allowed float64) float64 {
	if actual == 0 {
		return 0
	}
	if allowed <= 0 {
		return math.Inf(1)
	}
	return actual / allowed
}
