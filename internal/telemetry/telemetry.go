// Package telemetry is the observability substrate for the VMPlants
// stack: a span tracer whose spans carry both wall-clock and simulation
// virtual time, and a metrics registry of counters, gauges and
// histograms with atomic hot paths.
//
// Everything is nil-safe: a nil *Hub, *Tracer, *Registry, *Span,
// *Counter, *Gauge or *Histogram accepts every call as a no-op, so
// instrumented code paths need no "is telemetry enabled" branches and
// allocate nothing when telemetry is disabled. Components receive a
// *Hub (usually via their Config or a SetTelemetry method); passing nil
// disables instrumentation entirely.
package telemetry

import (
	"hash/fnv"
	"strconv"
	"sync"
	"time"
)

// Clock yields the current virtual time. *sim.Proc implements it; pass
// a nil Clock for spans that exist only in wall time (e.g. real RPCs).
type Clock interface {
	Now() time.Duration
}

// Attr is one key=value span annotation.
type Attr struct {
	Key   string `json:"key"`
	Value string `json:"value"`
}

// Span records one traced operation. Start and end are captured in both
// virtual time (the simulation kernel's clock, when a Clock is given)
// and wall-clock time. A span is mutable until End; after End it is
// published to the tracer and must not be modified.
type Span struct {
	ID      uint64
	Parent  uint64 // 0 for root spans
	TraceID uint64 // root span's ID; shared by every span of one trace
	Name    string

	VStart time.Duration // virtual time at start
	VEnd   time.Duration // virtual time at end
	WStart time.Time     // wall clock at start
	WEnd   time.Time     // wall clock at end

	Attrs []Attr
	Err   string // non-empty when the operation failed

	tr *Tracer
}

// Virtual reports the span's virtual-time duration.
func (s Span) Virtual() time.Duration { return s.VEnd - s.VStart }

// Wall reports the span's wall-clock duration.
func (s Span) Wall() time.Duration { return s.WEnd.Sub(s.WStart) }

// Attr returns the value of the named annotation ("" when absent).
func (s Span) Attr(key string) string {
	for _, a := range s.Attrs {
		if a.Key == key {
			return a.Value
		}
	}
	return ""
}

// SpanContext identifies a position inside a trace: the trace's ID and
// the span new children should parent under. It is the unit of
// propagation — carried on a *sim.Proc between components and on the
// proto.Message envelope across process boundaries. The zero value
// means "no trace"; StartCtx then begins a new root trace.
type SpanContext struct {
	TraceID uint64
	Span    uint64
}

// Valid reports whether the context carries a trace.
func (sc SpanContext) Valid() bool { return sc.TraceID != 0 }

// Context returns the span's position for propagating to children,
// possibly across a process boundary. A nil span yields the zero
// context.
func (s *Span) Context() SpanContext {
	if s == nil {
		return SpanContext{}
	}
	return SpanContext{TraceID: s.TraceID, Span: s.ID}
}

// DefaultSpanLimit bounds the tracer's finished-span ring buffer.
const DefaultSpanLimit = 8192

// Tracer collects finished spans in a bounded ring buffer. A nil
// *Tracer is a valid no-op tracer.
type Tracer struct {
	mu      sync.Mutex
	nextID  uint64
	idBase  uint64
	limit   int
	ring    []*Span
	next    int // write position once the ring is full
	dropped uint64
}

// NewTracer returns a tracer keeping the most recent limit finished
// spans (limit <= 0 selects DefaultSpanLimit).
func NewTracer(limit int) *Tracer {
	if limit <= 0 {
		limit = DefaultSpanLimit
	}
	return &Tracer{limit: limit}
}

// SetIDBase offsets every span ID this tracer mints by base, so span
// sets merged from several processes (shop daemon + plant daemons)
// never collide and a cross-process parent reference stays resolvable.
// Call it before the first span starts; daemons derive the base from
// their instance name.
func (t *Tracer) SetIDBase(base uint64) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.idBase = base
	t.mu.Unlock()
}

// IDBaseForInstance derives a SetIDBase offset from an instance name:
// a 31-bit FNV-1a hash shifted into the high half of the ID space, so
// each daemon mints from its own range and span sets merged across
// processes (shop + plants) keep parent references resolvable.
func IDBaseForInstance(name string) uint64 {
	h := fnv.New32a()
	h.Write([]byte(name))
	return uint64(h.Sum32()&0x7fffffff) << 32
}

// Start begins a root span of a new trace. c supplies virtual time and
// may be nil for wall-only spans. On a nil tracer it returns nil, which
// every Span method accepts.
func (t *Tracer) Start(c Clock, name string) *Span {
	if t == nil {
		return nil
	}
	s := &Span{Name: name, WStart: time.Now(), tr: t}
	if c != nil {
		s.VStart = c.Now()
	}
	t.mu.Lock()
	t.nextID++
	s.ID = t.idBase + t.nextID
	t.mu.Unlock()
	s.TraceID = s.ID
	return s
}

// StartCtx begins a span inside the trace sc identifies — the
// cross-boundary continuation used when the parent span lives on
// another proc or in another process. With the zero context it is
// exactly Start: a new root trace.
func (t *Tracer) StartCtx(c Clock, name string, sc SpanContext) *Span {
	s := t.Start(c, name)
	if s == nil {
		return nil
	}
	if sc.Valid() {
		s.TraceID = sc.TraceID
		s.Parent = sc.Span
	}
	return s
}

// Child begins a sub-span of s in the same trace.
func (s *Span) Child(c Clock, name string) *Span {
	if s == nil {
		return nil
	}
	cs := s.tr.Start(c, name)
	cs.Parent = s.ID
	cs.TraceID = s.TraceID
	return cs
}

// Set annotates the span, returning it for chaining.
func (s *Span) Set(key, value string) *Span {
	if s == nil {
		return nil
	}
	s.Attrs = append(s.Attrs, Attr{Key: key, Value: value})
	return s
}

// SetInt annotates the span with an integer value.
func (s *Span) SetInt(key string, v int64) *Span {
	if s == nil {
		return nil
	}
	return s.Set(key, strconv.FormatInt(v, 10))
}

// End finishes the span and publishes it to the tracer.
func (s *Span) End(c Clock) { s.EndErr(c, nil) }

// EndErr finishes the span, recording err (if any) as its outcome.
func (s *Span) EndErr(c Clock, err error) {
	if s == nil {
		return
	}
	if c != nil {
		s.VEnd = c.Now()
	}
	s.WEnd = time.Now()
	if err != nil {
		s.Err = err.Error()
	}
	s.tr.record(s)
}

// RecordChild attaches an already-measured virtual-time interval as a
// finished child span of s — how a caller decomposes an operation whose
// stage timings were measured elsewhere (e.g. vmm.CloneStats) without
// instrumenting the callee.
func (s *Span) RecordChild(name string, vstart, vend time.Duration) {
	if s == nil {
		return
	}
	now := time.Now()
	cs := s.tr.Start(nil, name)
	cs.Parent = s.ID
	cs.TraceID = s.TraceID
	cs.VStart = vstart
	cs.VEnd = vend
	cs.WStart = now
	cs.WEnd = now
	s.tr.record(cs)
}

// record appends a finished span, evicting the oldest when full.
func (t *Tracer) record(s *Span) {
	t.mu.Lock()
	if len(t.ring) < t.limit {
		t.ring = append(t.ring, s)
	} else {
		t.ring[t.next] = s
		t.next = (t.next + 1) % t.limit
		t.dropped++
	}
	t.mu.Unlock()
}

// Spans returns the finished spans, oldest first, as value copies.
func (t *Tracer) Spans() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Span, 0, len(t.ring))
	if t.dropped > 0 {
		// Ring is full: oldest entry sits at the write position.
		for i := 0; i < t.limit; i++ {
			out = append(out, *t.ring[(t.next+i)%t.limit])
		}
		return out
	}
	for _, s := range t.ring {
		out = append(out, *s)
	}
	return out
}

// SpansFor returns the finished spans belonging to one trace, oldest
// first. Spans evicted from the ring are gone — check Dropped() when a
// complete tree matters.
func (t *Tracer) SpansFor(traceID uint64) []Span {
	if t == nil || traceID == 0 {
		return nil
	}
	var out []Span
	for _, s := range t.Spans() {
		if s.TraceID == traceID {
			out = append(out, s)
		}
	}
	return out
}

// Dropped reports how many finished spans were evicted from the ring.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Reset discards all finished spans (span IDs keep increasing).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.ring = t.ring[:0]
	t.next = 0
	t.dropped = 0
	t.mu.Unlock()
}

// Hub bundles a tracer, a metrics registry, a per-creation flight
// recorder and an optional SLO engine — the single handle components
// are wired with. A nil *Hub disables all instrumentation.
type Hub struct {
	Tracer  *Tracer
	Metrics *Registry
	Flight  *FlightRecorder
	// SLO holds the hub's objectives; nil until a daemon or experiment
	// installs an engine (see NewSLOEngine).
	SLO *SLOEngine
	// VClock, when set, supplies the virtual time /debug/health
	// evaluates SLOs at (daemons point it at their service runner).
	VClock Clock
}

// New returns a hub with a default tracer, an empty registry and a
// default flight recorder.
func New() *Hub {
	return &Hub{Tracer: NewTracer(0), Metrics: NewRegistry(), Flight: NewFlightRecorder(0)}
}

// T returns the hub's tracer (nil on a nil hub).
func (h *Hub) T() *Tracer {
	if h == nil {
		return nil
	}
	return h.Tracer
}

// M returns the hub's metrics registry (nil on a nil hub).
func (h *Hub) M() *Registry {
	if h == nil {
		return nil
	}
	return h.Metrics
}

// F returns the hub's flight recorder (nil on a nil hub).
func (h *Hub) F() *FlightRecorder {
	if h == nil {
		return nil
	}
	return h.Flight
}

// Counter resolves a counter by name (nil on a nil hub).
func (h *Hub) Counter(name string) *Counter { return h.M().Counter(name) }

// Gauge resolves a gauge by name (nil on a nil hub).
func (h *Hub) Gauge(name string) *Gauge { return h.M().Gauge(name) }

// Histogram resolves a histogram by name (nil on a nil hub).
func (h *Hub) Histogram(name string) *Histogram { return h.M().Histogram(name) }
