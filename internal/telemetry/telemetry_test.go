package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"vmplants/internal/stats"
)

// fakeClock is a settable virtual clock.
type fakeClock struct{ t time.Duration }

func (c *fakeClock) Now() time.Duration { return c.t }

func TestSpanCapturesVirtualAndWallTime(t *testing.T) {
	tr := NewTracer(0)
	c := &fakeClock{t: 10 * time.Second}
	sp := tr.Start(c, "op").Set("k", "v").SetInt("n", 7)
	c.t = 25 * time.Second
	sp.End(c)

	spans := tr.Spans()
	if len(spans) != 1 {
		t.Fatalf("got %d spans, want 1", len(spans))
	}
	s := spans[0]
	if s.Name != "op" || s.Virtual() != 15*time.Second {
		t.Fatalf("span %q virtual %v, want op/15s", s.Name, s.Virtual())
	}
	if s.Attr("k") != "v" || s.Attr("n") != "7" {
		t.Fatalf("attrs = %v", s.Attrs)
	}
	if s.Wall() < 0 {
		t.Fatalf("negative wall duration %v", s.Wall())
	}
}

func TestSpanChildAndError(t *testing.T) {
	tr := NewTracer(0)
	c := &fakeClock{}
	root := tr.Start(c, "root")
	child := root.Child(c, "child")
	child.EndErr(c, fmt.Errorf("boom"))
	root.End(c)

	spans := tr.Spans()
	if len(spans) != 2 {
		t.Fatalf("got %d spans, want 2", len(spans))
	}
	// Children publish before parents (end order).
	if spans[0].Parent != root.ID {
		t.Fatalf("child parent = %d, want %d", spans[0].Parent, root.ID)
	}
	if spans[0].Err != "boom" {
		t.Fatalf("child err = %q", spans[0].Err)
	}
	if spans[1].Err != "" {
		t.Fatalf("root err = %q, want clean", spans[1].Err)
	}
}

func TestTracerRingEviction(t *testing.T) {
	tr := NewTracer(4)
	c := &fakeClock{}
	for i := 0; i < 7; i++ {
		tr.Start(c, fmt.Sprintf("s%d", i)).End(c)
	}
	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("ring holds %d, want 4", len(spans))
	}
	if got := tr.Dropped(); got != 3 {
		t.Fatalf("dropped = %d, want 3", got)
	}
	// Oldest-first order across the wrap point.
	for i, s := range spans {
		if want := fmt.Sprintf("s%d", i+3); s.Name != want {
			t.Fatalf("spans[%d] = %q, want %q", i, s.Name, want)
		}
	}
}

// TestNoopTracerZeroAlloc is the issue's zero-allocation requirement:
// a disabled (nil) tracer must cost nothing on the instrumented path.
func TestNoopTracerZeroAlloc(t *testing.T) {
	var tr *Tracer
	c := &fakeClock{}
	allocs := testing.AllocsPerRun(100, func() {
		sp := tr.Start(c, "op").Set("k", "v").SetInt("n", 42)
		child := sp.Child(c, "child")
		child.RecordChild("grand", 0, time.Second)
		child.EndErr(c, nil)
		sp.End(c)
	})
	if allocs != 0 {
		t.Fatalf("no-op tracer allocates %.0f bytes/op, want 0", allocs)
	}
}

func TestNoopMetricsZeroAlloc(t *testing.T) {
	var h *Hub
	cnt := h.Counter("c")
	g := h.Gauge("g")
	hist := h.Histogram("h")
	allocs := testing.AllocsPerRun(100, func() {
		cnt.Inc()
		cnt.Add(3)
		g.Set(5)
		g.SetMax(9)
		hist.Observe(1.5)
	})
	if allocs != 0 {
		t.Fatalf("no-op metrics allocate %.0f bytes/op, want 0", allocs)
	}
	if cnt.Value() != 0 || g.Value() != 0 || hist.Count() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
	if r.Counter("c") != c {
		t.Fatal("registry must return the same counter per name")
	}
	g := r.Gauge("g")
	g.Set(10)
	g.SetMax(7) // below current: no change
	if g.Value() != 10 {
		t.Fatalf("gauge = %d after SetMax(7), want 10", g.Value())
	}
	g.SetMax(12)
	if g.Value() != 12 {
		t.Fatalf("gauge = %d after SetMax(12), want 12", g.Value())
	}
}

// TestHistogramMatchesStatsSummarize is the issue's cross-check: a
// histogram snapshot must be exactly stats.Summarize on the same
// sample.
func TestHistogramMatchesStatsSummarize(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("h")
	sample := []float64{4, 8, 15, 16, 23, 42, 1.5, 0.25}
	for _, v := range sample {
		h.Observe(v)
	}
	got := h.Snapshot()
	want := stats.Summarize(sample)
	if got != want {
		t.Fatalf("histogram snapshot %+v != stats.Summarize %+v", got, want)
	}
	if h.Count() != int64(len(sample)) {
		t.Fatalf("count = %d, want %d", h.Count(), len(sample))
	}
}

func TestHistogramSlidingWindow(t *testing.T) {
	h := &Histogram{limit: 4}
	for i := 1; i <= 6; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 6 {
		t.Fatalf("count = %d, want 6", h.Count())
	}
	s := h.Snapshot()
	if s.N != 4 {
		t.Fatalf("retained %d samples, want 4", s.N)
	}
	// 1 and 2 slid out: retained window is {5, 6, 3, 4}.
	if s.Min != 3 || s.Max != 6 {
		t.Fatalf("window [%v, %v], want [3, 6]", s.Min, s.Max)
	}
}

func TestRegistrySnapshot(t *testing.T) {
	r := NewRegistry()
	r.Counter("creations").Add(3)
	r.Gauge("depth").Set(7)
	r.Histogram("secs").Observe(2.5)
	snap := r.Snapshot()
	if snap["creations"] != int64(3) {
		t.Fatalf("creations = %v", snap["creations"])
	}
	if snap["depth"] != int64(7) {
		t.Fatalf("depth = %v", snap["depth"])
	}
	hv, ok := snap["secs"].(map[string]any)
	if !ok || hv["count"] != int64(1) || hv["mean"] != 2.5 {
		t.Fatalf("secs = %v", snap["secs"])
	}
}

func TestHTTPEndpoints(t *testing.T) {
	h := New()
	h.Counter("plant.creations").Add(2)
	c := &fakeClock{}
	h.T().Start(c, "plant.create").Set("vmid", "vm-1").End(c)
	h.T().Start(c, "shop.create").End(c)

	addr, err := h.ServeDebug("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var snap map[string]any
	if err := json.Unmarshal(body, &snap); err != nil {
		t.Fatalf("/metrics is not JSON: %v\n%s", err, body)
	}
	if snap["plant.creations"] != float64(2) {
		t.Fatalf("plant.creations = %v, want 2", snap["plant.creations"])
	}

	resp, err = http.Get("http://" + addr + "/debug/traces?name=plant.")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	// First line is the meta record (span count, ring drops); span
	// records follow.
	if len(lines) != 2 {
		t.Fatalf("name filter returned %d lines, want meta + 1 span:\n%s", len(lines), body)
	}
	var meta TraceMeta
	if err := json.Unmarshal([]byte(lines[0]), &meta); err != nil {
		t.Fatalf("meta line is not JSON: %v", err)
	}
	if !meta.Meta || meta.Spans != 1 || meta.Dropped != 0 {
		t.Fatalf("meta record = %+v", meta)
	}
	var rec SpanRecord
	if err := json.Unmarshal([]byte(lines[1]), &rec); err != nil {
		t.Fatalf("trace line is not JSON: %v", err)
	}
	if rec.Name != "plant.create" || rec.Attrs["vmid"] != "vm-1" {
		t.Fatalf("trace record = %+v", rec)
	}
}

func TestConcurrentInstruments(t *testing.T) {
	h := New()
	c := h.Counter("c")
	g := h.Gauge("g")
	hist := h.Histogram("h")
	done := make(chan struct{})
	for i := 0; i < 4; i++ {
		go func() {
			defer func() { done <- struct{}{} }()
			for j := 0; j < 1000; j++ {
				c.Inc()
				g.SetMax(int64(j))
				hist.Observe(float64(j))
				h.T().Start(nil, "op").End(nil)
			}
		}()
	}
	for i := 0; i < 4; i++ {
		<-done
	}
	if c.Value() != 4000 {
		t.Fatalf("counter = %d, want 4000", c.Value())
	}
	if hist.Count() != 4000 {
		t.Fatalf("histogram count = %d, want 4000", hist.Count())
	}
	if got := len(h.T().Spans()) + int(h.T().Dropped()); got != 4000 {
		t.Fatalf("spans+dropped = %d, want 4000", got)
	}
	h.M().Snapshot() // must not race with writers
}
