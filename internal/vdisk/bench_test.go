package vdisk

import "testing"

func benchGolden(b *testing.B) *Disk {
	im, err := NewImage("base", 2048, 16)
	if err != nil {
		b.Fatal(err)
	}
	d := NewDisk("g", im)
	blk := make([]byte, BlockSize)
	for i := int64(0); i < 64; i++ {
		if err := d.WriteBlock(i, blk); err != nil {
			b.Fatal(err)
		}
	}
	d.Freeze()
	return d
}

func BenchmarkLinkClone(b *testing.B) {
	d := benchGolden(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.Clone("c", CloneByLink); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadThroughChain(b *testing.B) {
	d := benchGolden(b)
	res, err := d.Clone("c", CloneByLink)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := res.Disk.ReadBlock(int64(i % 64)); err != nil {
			b.Fatal(err)
		}
	}
}
