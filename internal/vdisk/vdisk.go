// Package vdisk models hosted-VMM virtual disks the way the paper's
// cloning mechanism depends on them (§3.2, §4.1): a large read-only base
// image, plus stacked copy-on-write "redo log" layers that capture all
// writes of a session. A golden machine is checkpointed with its
// configuration captured in a base redo log; cloning it either
//
//   - links the base image and copies only the (small) redo log — the
//     paper's fast path ("the Production Line uses soft links for the
//     virtual hard disk, and replicates the … base redo log"), or
//   - copies the full base image — the slow baseline the paper measures
//     at ≈210 s for a 2 GB disk.
//
// The block store is real: reads and writes move actual bytes through
// the COW chain, so tests can verify that clones see the golden state
// and never leak writes into shared layers.
package vdisk

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
)

// BlockSize is the unit of copy-on-write, in bytes.
const BlockSize = 4096

// Image is an immutable base disk image. Its content is sparse: blocks
// never written read as zeros.
type Image struct {
	name      string
	sizeMB    int
	spanFiles int // the paper's golden disk spans 16 files
	blocks    map[int64][]byte
}

// NewImage creates a sparse base image. spanFiles mirrors how hosted
// VMMs split large virtual disks across extent files; it only affects
// reporting, not content.
func NewImage(name string, sizeMB, spanFiles int) (*Image, error) {
	if sizeMB <= 0 {
		return nil, errors.New("vdisk: image size must be positive")
	}
	if spanFiles <= 0 {
		spanFiles = 1
	}
	return &Image{name: name, sizeMB: sizeMB, spanFiles: spanFiles, blocks: make(map[int64][]byte)}, nil
}

// Name returns the image name.
func (im *Image) Name() string { return im.name }

// SizeMB returns the virtual disk capacity.
func (im *Image) SizeMB() int { return im.sizeMB }

// SpanFiles returns the number of extent files the image occupies.
func (im *Image) SpanFiles() int { return im.spanFiles }

// SizeBytes returns the full (non-sparse) size to copy when cloning by
// copy: hosted VMMs ship preallocated extents, so the cost is capacity,
// not occupancy.
func (im *Image) SizeBytes() int64 { return int64(im.sizeMB) * 1024 * 1024 }

// blockCount returns the number of addressable blocks.
func (im *Image) blockCount() int64 { return im.SizeBytes() / BlockSize }

// ExtentContentHash digests the base-image content of the i-th extent
// file: the non-zero blocks whose addresses fall in that extent's span,
// in address order. Two extents with identical content — notably the
// all-zero extents of sparse installer images — hash identically, which
// is what lets a content-addressed store share one physical copy across
// every image carrying them.
func (im *Image) ExtentContentHash(i int) uint64 {
	per := im.blockCount() / int64(im.spanFiles)
	lo := int64(i) * per
	hi := lo + per
	if i == im.spanFiles-1 {
		hi = im.blockCount()
	}
	var idxs []int64
	for idx := range im.blocks {
		if idx >= lo && idx < hi {
			idxs = append(idxs, idx)
		}
	}
	sort.Slice(idxs, func(a, b int) bool { return idxs[a] < idxs[b] })
	h := fnv.New64a()
	buf := make([]byte, 8)
	var zero [BlockSize]byte
	for _, idx := range idxs {
		b := im.blocks[idx]
		if string(b) == string(zero[:]) {
			continue
		}
		for j := 0; j < 8; j++ {
			buf[j] = byte(idx >> (8 * j))
		}
		h.Write(buf)
		h.Write(b)
	}
	return h.Sum64()
}

// Populate writes raw content into the base image at creation time (an
// installer writing the initial OS). It is the only mutation an Image
// permits and must happen before the image is shared.
func (im *Image) Populate(blockIdx int64, data []byte) error {
	if err := im.checkBlock(blockIdx, data); err != nil {
		return err
	}
	im.blocks[blockIdx] = append([]byte(nil), data...)
	return nil
}

func (im *Image) checkBlock(blockIdx int64, data []byte) error {
	if blockIdx < 0 || blockIdx >= im.blockCount() {
		return fmt.Errorf("vdisk: block %d out of range (disk has %d blocks)", blockIdx, im.blockCount())
	}
	if len(data) != BlockSize {
		return fmt.Errorf("vdisk: block data must be %d bytes, got %d", BlockSize, len(data))
	}
	return nil
}

// Layer is one redo log: a sparse overlay of written blocks.
type Layer struct {
	name   string
	frozen bool
	blocks map[int64][]byte
}

// NewLayer returns an empty writable redo log.
func NewLayer(name string) *Layer {
	return &Layer{name: name, blocks: make(map[int64][]byte)}
}

// Name returns the layer name.
func (l *Layer) Name() string { return l.name }

// Frozen reports whether the layer has been made read-only.
func (l *Layer) Frozen() bool { return l.frozen }

// SizeBytes is the physical size of the redo log: written blocks plus a
// small header, the quantity that must be copied when cloning.
func (l *Layer) SizeBytes() int64 {
	const header = 64 * 1024
	return header + int64(len(l.blocks))*BlockSize
}

// copyOf duplicates the layer's content into a fresh writable layer.
func (l *Layer) copyOf(name string) *Layer {
	c := NewLayer(name)
	for idx, b := range l.blocks {
		c.blocks[idx] = append([]byte(nil), b...)
	}
	return c
}

// Disk is a virtual disk presented to a guest: a base image plus a COW
// chain, the top layer writable.
type Disk struct {
	name  string
	base  *Image
	chain []*Layer // bottom .. top
}

// NewDisk attaches a fresh disk over base with one empty redo log.
func NewDisk(name string, base *Image) *Disk {
	return &Disk{name: name, base: base, chain: []*Layer{NewLayer(name + ".redo0")}}
}

// Name returns the disk name.
func (d *Disk) Name() string { return d.name }

// Base returns the shared base image.
func (d *Disk) Base() *Image { return d.base }

// Layers returns the COW chain, bottom to top.
func (d *Disk) Layers() []*Layer { return append([]*Layer(nil), d.chain...) }

// top returns the writable layer.
func (d *Disk) top() *Layer { return d.chain[len(d.chain)-1] }

// ReadBlock reads one block through the COW chain: topmost layer that
// has the block wins, falling through to the base image, then zeros.
func (d *Disk) ReadBlock(blockIdx int64) ([]byte, error) {
	if err := d.base.checkBlock(blockIdx, make([]byte, BlockSize)); err != nil {
		return nil, err
	}
	for i := len(d.chain) - 1; i >= 0; i-- {
		if b, ok := d.chain[i].blocks[blockIdx]; ok {
			return append([]byte(nil), b...), nil
		}
	}
	if b, ok := d.base.blocks[blockIdx]; ok {
		return append([]byte(nil), b...), nil
	}
	return make([]byte, BlockSize), nil
}

// WriteBlock writes one block into the top redo log.
func (d *Disk) WriteBlock(blockIdx int64, data []byte) error {
	if err := d.base.checkBlock(blockIdx, data); err != nil {
		return err
	}
	t := d.top()
	if t.frozen {
		return fmt.Errorf("vdisk: disk %q top layer %q is frozen", d.name, t.name)
	}
	t.blocks[blockIdx] = append([]byte(nil), data...)
	return nil
}

// Freeze makes the current top layer read-only and pushes a fresh
// writable layer — the checkpoint operation that turns a configured VM
// into a golden state cloneable underneath further sessions.
func (d *Disk) Freeze() {
	d.top().frozen = true
	d.chain = append(d.chain, NewLayer(fmt.Sprintf("%s.redo%d", d.name, len(d.chain))))
}

// Snapshot freezes the disk's current state and returns an independent
// disk handle presenting exactly that state: both the original disk and
// the snapshot get fresh private top layers over the shared frozen
// chain. This is how a running VM's disk becomes publishable as a new
// golden image while the VM keeps writing.
func (d *Disk) Snapshot(name string) *Disk {
	d.Freeze()
	frozen := d.chain[:len(d.chain)-1]
	snap := &Disk{name: name, base: d.base}
	snap.chain = append(snap.chain, frozen...)
	snap.chain = append(snap.chain, NewLayer(name+".redo"))
	return snap
}

// DiscardTop throws away the writable layer's content (a non-persistent
// session ending without commit).
func (d *Disk) DiscardTop() {
	t := d.top()
	if t.frozen {
		return
	}
	t.blocks = make(map[int64][]byte)
}

// CommitTop folds the writable layer into the layer below it, which
// must exist and be frozen: the "committing changes to virtual disks …
// at the end of a session" mechanism. The lower layer is unfrozen in
// the process, so CommitTop is only legal on disks whose lower chain is
// private (e.g. publishing a new golden image), never on a link-clone
// sharing that layer.
func (d *Disk) CommitTop() error {
	if len(d.chain) < 2 {
		return errors.New("vdisk: nothing to commit into")
	}
	t := d.top()
	below := d.chain[len(d.chain)-2]
	for idx, b := range t.blocks {
		below.blocks[idx] = b
	}
	below.frozen = false
	d.chain = d.chain[:len(d.chain)-1]
	return nil
}

// CloneMode selects the cloning mechanism.
type CloneMode int

const (
	// CloneByLink shares the base image via a link and copies only redo
	// logs — the paper's fast path.
	CloneByLink CloneMode = iota
	// CloneByCopy duplicates the full base image as well — the slow
	// baseline (≈210 s for the paper's 2 GB golden disk).
	CloneByCopy
	// CloneByLazy shares the base image like CloneByLink but defers even
	// the extent links: the clone resumes after only config, redo and
	// memory state land, and extents materialize in the background (or
	// on demand when the guest touches them first).
	CloneByLazy
)

func (m CloneMode) String() string {
	switch m {
	case CloneByCopy:
		return "copy"
	case CloneByLazy:
		return "lazy"
	}
	return "link"
}

// CloneResult describes a clone and its cost.
type CloneResult struct {
	Disk *Disk
	// CopiedBytes is the physical state volume the clone operation had
	// to move: redo logs always, plus the base image under CloneByCopy.
	CopiedBytes int64
	// Files is how many files the copy touched (extent files + one per
	// redo log), feeding the storage model's per-file overhead.
	Files int
}

// Clone creates a new disk presenting the same content as d. All frozen
// layers are copied (they are the golden machine's recorded state); the
// writable top layer must be empty — golden machines are checkpointed,
// not live.
func (d *Disk) Clone(name string, mode CloneMode) (CloneResult, error) {
	if len(d.top().blocks) != 0 {
		return CloneResult{}, fmt.Errorf("vdisk: clone of %q with dirty top layer; freeze first", d.name)
	}
	var res CloneResult
	base := d.base
	if mode == CloneByCopy {
		cp, err := NewImage(base.name+"@"+name, base.sizeMB, base.spanFiles)
		if err != nil {
			return CloneResult{}, err
		}
		for idx, b := range base.blocks {
			cp.blocks[idx] = append([]byte(nil), b...)
		}
		base = cp
		res.CopiedBytes += d.base.SizeBytes()
		res.Files += d.base.spanFiles
	}
	clone := &Disk{name: name, base: base}
	for i, l := range d.chain[:len(d.chain)-1] {
		lc := l.copyOf(fmt.Sprintf("%s.redo%d", name, i))
		lc.frozen = true
		clone.chain = append(clone.chain, lc)
		res.CopiedBytes += l.SizeBytes()
		res.Files++
	}
	clone.chain = append(clone.chain, NewLayer(fmt.Sprintf("%s.redo%d", name, len(clone.chain))))
	res.Files++ // the fresh private redo log
	res.Disk = clone
	return res, nil
}

// ContentHash hashes the disk's fully resolved content (every non-zero
// block through the chain), for integrity checks in tests: a clone must
// hash identically to its golden source.
func (d *Disk) ContentHash() uint64 {
	idxSet := make(map[int64]bool)
	for idx := range d.base.blocks {
		idxSet[idx] = true
	}
	for _, l := range d.chain {
		for idx := range l.blocks {
			idxSet[idx] = true
		}
	}
	idxs := make([]int64, 0, len(idxSet))
	for idx := range idxSet {
		idxs = append(idxs, idx)
	}
	sort.Slice(idxs, func(i, j int) bool { return idxs[i] < idxs[j] })
	h := fnv.New64a()
	var zero [BlockSize]byte
	buf := make([]byte, 8)
	for _, idx := range idxs {
		b, err := d.ReadBlock(idx)
		if err != nil {
			continue
		}
		if string(b) == string(zero[:]) {
			continue
		}
		for i := 0; i < 8; i++ {
			buf[i] = byte(idx >> (8 * i))
		}
		h.Write(buf)
		h.Write(b)
	}
	return h.Sum64()
}

// RedoBytes is the total physical size of all redo logs.
func (d *Disk) RedoBytes() int64 {
	var n int64
	for _, l := range d.chain {
		n += l.SizeBytes()
	}
	return n
}
