package vdisk

import (
	"bytes"
	"testing"
	"testing/quick"
)

func block(fill byte) []byte {
	b := make([]byte, BlockSize)
	for i := range b {
		b[i] = fill
	}
	return b
}

func newTestDisk(t *testing.T, sizeMB int) *Disk {
	t.Helper()
	im, err := NewImage("base", sizeMB, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Populate(0, block(0xAA)); err != nil {
		t.Fatal(err)
	}
	if err := im.Populate(7, block(0xBB)); err != nil {
		t.Fatal(err)
	}
	return NewDisk("d0", im)
}

func TestReadThroughToBase(t *testing.T) {
	d := newTestDisk(t, 16)
	b, err := d.ReadBlock(0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, block(0xAA)) {
		t.Error("base content not visible")
	}
	z, err := d.ReadBlock(3)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(z, make([]byte, BlockSize)) {
		t.Error("unwritten block not zero")
	}
}

func TestWriteGoesToRedoNotBase(t *testing.T) {
	d := newTestDisk(t, 16)
	if err := d.WriteBlock(0, block(0x11)); err != nil {
		t.Fatal(err)
	}
	b, _ := d.ReadBlock(0)
	if !bytes.Equal(b, block(0x11)) {
		t.Error("write not visible")
	}
	if !bytes.Equal(d.Base().blocks[0], block(0xAA)) {
		t.Error("write leaked into base image")
	}
}

func TestOutOfRangeBlocks(t *testing.T) {
	d := newTestDisk(t, 1) // 256 blocks
	if _, err := d.ReadBlock(-1); err == nil {
		t.Error("negative read accepted")
	}
	if _, err := d.ReadBlock(1 << 30); err == nil {
		t.Error("huge read accepted")
	}
	if err := d.WriteBlock(0, []byte("short")); err == nil {
		t.Error("short write accepted")
	}
}

func TestFreezeMakesTopReadOnly(t *testing.T) {
	d := newTestDisk(t, 16)
	d.WriteBlock(1, block(0x22))
	d.Freeze()
	if len(d.Layers()) != 2 {
		t.Fatalf("chain length %d", len(d.Layers()))
	}
	// Write lands in the new top, old layer still readable.
	if err := d.WriteBlock(1, block(0x33)); err != nil {
		t.Fatal(err)
	}
	b, _ := d.ReadBlock(1)
	if !bytes.Equal(b, block(0x33)) {
		t.Error("new top not read first")
	}
	if !bytes.Equal(d.Layers()[0].blocks[1], block(0x22)) {
		t.Error("frozen layer mutated")
	}
}

func TestDiscardTop(t *testing.T) {
	d := newTestDisk(t, 16)
	d.WriteBlock(1, block(0x22))
	d.Freeze()
	d.WriteBlock(1, block(0x33))
	d.DiscardTop()
	b, _ := d.ReadBlock(1)
	if !bytes.Equal(b, block(0x22)) {
		t.Error("discard did not drop session writes")
	}
}

func TestCommitTopFoldsDown(t *testing.T) {
	d := newTestDisk(t, 16)
	d.WriteBlock(1, block(0x22))
	d.Freeze()
	d.WriteBlock(1, block(0x33))
	d.WriteBlock(2, block(0x44))
	if err := d.CommitTop(); err != nil {
		t.Fatal(err)
	}
	if len(d.Layers()) != 1 {
		t.Fatalf("chain length %d after commit", len(d.Layers()))
	}
	b1, _ := d.ReadBlock(1)
	b2, _ := d.ReadBlock(2)
	if !bytes.Equal(b1, block(0x33)) || !bytes.Equal(b2, block(0x44)) {
		t.Error("commit lost writes")
	}
	if d.Layers()[0].Frozen() {
		t.Error("committed-into layer still frozen")
	}
	// Single-layer disk has nothing to commit into.
	if err := d.CommitTop(); err == nil {
		t.Error("commit with one layer accepted")
	}
}

func TestLinkCloneSharesBaseCopiesRedo(t *testing.T) {
	d := newTestDisk(t, 2048)
	d.WriteBlock(1, block(0x22)) // golden configuration delta
	d.Freeze()
	res, err := d.Clone("c1", CloneByLink)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Disk
	if c.Base() != d.Base() {
		t.Error("link clone did not share base image")
	}
	// Copied bytes = redo log only, far below the 2 GB disk.
	if res.CopiedBytes >= d.Base().SizeBytes()/100 {
		t.Errorf("link clone copied %d bytes", res.CopiedBytes)
	}
	b, _ := c.ReadBlock(1)
	if !bytes.Equal(b, block(0x22)) {
		t.Error("clone lost golden delta")
	}
	// Writes to the clone must not be visible to the golden disk.
	c.WriteBlock(1, block(0x55))
	g, _ := d.ReadBlock(1)
	if !bytes.Equal(g, block(0x22)) {
		t.Error("clone write leaked into golden disk")
	}
}

func TestCopyCloneIsIndependent(t *testing.T) {
	d := newTestDisk(t, 64)
	d.WriteBlock(1, block(0x22))
	d.Freeze()
	res, err := d.Clone("c1", CloneByCopy)
	if err != nil {
		t.Fatal(err)
	}
	if res.Disk.Base() == d.Base() {
		t.Error("copy clone shares base image")
	}
	if res.CopiedBytes < d.Base().SizeBytes() {
		t.Errorf("copy clone copied only %d bytes", res.CopiedBytes)
	}
	if res.Files < d.Base().SpanFiles() {
		t.Errorf("copy clone touched %d files", res.Files)
	}
	// Content identical at clone time.
	if res.Disk.ContentHash() != d.ContentHash() {
		t.Error("copy clone content differs")
	}
}

func TestCloneRequiresCleanTop(t *testing.T) {
	d := newTestDisk(t, 16)
	d.WriteBlock(1, block(0x22))
	if _, err := d.Clone("c1", CloneByLink); err == nil {
		t.Error("clone of dirty disk accepted")
	}
}

func TestCloneContentHashMatchesGolden(t *testing.T) {
	d := newTestDisk(t, 16)
	d.WriteBlock(3, block(0x77))
	d.Freeze()
	for _, mode := range []CloneMode{CloneByLink, CloneByCopy} {
		res, err := d.Clone("c-"+mode.String(), mode)
		if err != nil {
			t.Fatal(err)
		}
		if res.Disk.ContentHash() != d.ContentHash() {
			t.Errorf("%s clone content hash differs", mode)
		}
	}
}

func TestClonesOfCloneStack(t *testing.T) {
	d := newTestDisk(t, 16)
	d.WriteBlock(1, block(0x22))
	d.Freeze()
	res, _ := d.Clone("c1", CloneByLink)
	c1 := res.Disk
	c1.WriteBlock(2, block(0x33))
	c1.Freeze()
	res2, err := c1.Clone("c2", CloneByLink)
	if err != nil {
		t.Fatal(err)
	}
	c2 := res2.Disk
	b1, _ := c2.ReadBlock(1)
	b2, _ := c2.ReadBlock(2)
	if !bytes.Equal(b1, block(0x22)) || !bytes.Equal(b2, block(0x33)) {
		t.Error("grandchild clone lost ancestor state")
	}
	if len(c2.Layers()) != 3 {
		t.Errorf("grandchild chain length %d", len(c2.Layers()))
	}
}

func TestFrozenTopRejectsWrites(t *testing.T) {
	d := newTestDisk(t, 16)
	d.top().frozen = true
	if err := d.WriteBlock(0, block(1)); err == nil {
		t.Error("write to frozen top accepted")
	}
}

func TestRedoBytesGrowWithWrites(t *testing.T) {
	d := newTestDisk(t, 16)
	before := d.RedoBytes()
	for i := int64(0); i < 10; i++ {
		d.WriteBlock(i, block(byte(i)))
	}
	if d.RedoBytes() != before+10*BlockSize {
		t.Errorf("redo bytes %d → %d", before, d.RedoBytes())
	}
}

func TestImageValidation(t *testing.T) {
	if _, err := NewImage("x", 0, 1); err == nil {
		t.Error("zero-size image accepted")
	}
	im, _ := NewImage("x", 1, 0)
	if im.SpanFiles() != 1 {
		t.Errorf("spanFiles default = %d", im.SpanFiles())
	}
	if err := im.Populate(1<<40, block(0)); err == nil {
		t.Error("out-of-range populate accepted")
	}
}

// Property: read-your-writes through arbitrary write/freeze sequences.
func TestReadYourWritesProperty(t *testing.T) {
	check := func(ops []struct {
		Idx    uint8
		Fill   byte
		Freeze bool
	}) bool {
		im, _ := NewImage("p", 1, 1) // 256 blocks
		d := NewDisk("p0", im)
		want := map[int64]byte{}
		for _, op := range ops {
			idx := int64(op.Idx)
			if op.Freeze {
				d.Freeze()
				continue
			}
			if err := d.WriteBlock(idx, block(op.Fill)); err != nil {
				return false
			}
			want[idx] = op.Fill
		}
		for idx, fill := range want {
			b, err := d.ReadBlock(idx)
			if err != nil || !bytes.Equal(b, block(fill)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(check, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
