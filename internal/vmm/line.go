package vmm

import (
	"fmt"
	"time"

	"vmplants/internal/cluster"
	"vmplants/internal/core"
	"vmplants/internal/dag"
	"vmplants/internal/sim"
	"vmplants/internal/vdisk"
	"vmplants/internal/warehouse"
)

// Timing holds the production lines' calibrated latency constants (see
// DESIGN.md §4).
type Timing struct {
	// ResumeFixedSecs is the fixed VMM cost of a resume operation on
	// top of reading the memory image back (GSX resume machinery).
	ResumeFixedSecs float64
	// ResumeSigma is the lognormal spread on the fixed resume cost.
	ResumeSigma float64
	// BootSecs is a full guest boot for boot-style (UML) clones — the
	// paper's 32 MB UML VM clones in ≈76 s via a full reboot.
	BootSecs float64
	// BootSigma is the lognormal spread on boot time.
	BootSigma float64
}

// DefaultTiming returns the calibration used by the experiments.
func DefaultTiming() Timing {
	return Timing{
		ResumeFixedSecs: 5.5,
		ResumeSigma:     0.22,
		BootSecs:        75,
		BootSigma:       0.07,
	}
}

// CloneStats reports what a clone operation did and how long its stages
// took — the quantities behind the paper's Figures 5 and 6.
type CloneStats struct {
	Mode        vdisk.CloneMode
	CopiedBytes int64         // physical state copied (redo, config, memory, extents under copy-mode)
	LinkedFiles int           // extent files satisfied by soft links
	CopyTime    time.Duration // state-copy stage
	ResumeTime  time.Duration // resume (or boot) stage
	Total       time.Duration // end-to-end clone latency (PPP clone → VM usable)
}

// Backend is one production line implementation.
type Backend interface {
	// Name returns the backend key ("vmware", "uml").
	Name() string
	// Clone instantiates the golden image as a new VM on node. mode
	// selects link-cloning (the paper's mechanism) or full copying (the
	// slow baseline).
	Clone(p *sim.Proc, node *cluster.Node, golden *warehouse.Image, id core.VMID, mode vdisk.CloneMode) (*VM, CloneStats, error)
}

// memImageBytes is the checkpoint file size for a guest of this shape.
func memImageBytes(hw core.HardwareSpec) int64 {
	return int64(hw.MemoryMB+warehouse.MemImageOverheadMB) * 1024 * 1024
}

// cloneDiskState lays down the clone's disk state files on the node:
// links or copies of the golden extents, plus a copy of the base redo
// log and the VM configuration file. Returns bytes physically copied
// and files linked.
func cloneDiskState(p *sim.Proc, node *cluster.Node, golden *warehouse.Image, id core.VMID, mode vdisk.CloneMode) (int64, int, error) {
	local := node.LocalDisk()
	wh := node.Warehouse() // the node's NFS view of the warehouse volume
	dir := "vms/" + string(id) + "/"
	var copied int64
	var linked int

	// "replicates the VM configuration file … for each clone"
	n, err := wh.CopyTo(p, golden.ConfigPath, local, dir+"vm.cfg", 1)
	if err != nil {
		return 0, 0, fmt.Errorf("vmm: replicate config: %w", err)
	}
	copied += n

	// "… and base redo log for each clone"
	n, err = wh.CopyTo(p, golden.RedoPath, local, dir+"base.redo", 1)
	if err != nil {
		return 0, 0, fmt.Errorf("vmm: copy redo log: %w", err)
	}
	copied += n

	// "uses soft links for the virtual hard disk" — or full copies for
	// the ablation baseline.
	for i, ext := range golden.ExtentPaths {
		dst := fmt.Sprintf("%sdisk-s%03d.vmdk", dir, i)
		switch mode {
		case vdisk.CloneByLink:
			if err := local.LinkForeign(p, wh, ext, dst); err != nil {
				return 0, 0, fmt.Errorf("vmm: link extent: %w", err)
			}
			linked++
		case vdisk.CloneByCopy:
			n, err := wh.CopyTo(p, ext, local, dst, 1)
			if err != nil {
				return 0, 0, fmt.Errorf("vmm: copy extent: %w", err)
			}
			copied += n
		case vdisk.CloneByLazy:
			// Deferred: the plant's hydrator materializes this extent in
			// the background after the VM resumes (or a guest touch
			// faults it in first). Nothing is laid down here.
		}
	}
	return copied, linked, nil
}

// VMware is the checkpoint-resume production line (paper §4.1): golden
// machines are suspended VMs; clones copy the memory state and resume
// without a guest boot.
type VMware struct {
	Timing Timing
}

// NewVMware returns the backend with default timing.
func NewVMware() *VMware { return &VMware{Timing: DefaultTiming()} }

// Name implements Backend.
func (b *VMware) Name() string { return warehouse.BackendVMware }

// Clone implements Backend.
func (b *VMware) Clone(p *sim.Proc, node *cluster.Node, golden *warehouse.Image, id core.VMID, mode vdisk.CloneMode) (*VM, CloneStats, error) {
	if golden.Backend != warehouse.BackendVMware {
		return nil, CloneStats{}, fmt.Errorf("vmm: vmware line cannot clone %q image %q", golden.Backend, golden.Name)
	}
	start := p.Now()
	stats := CloneStats{Mode: mode}

	copied, linked, err := cloneDiskState(p, node, golden, id, mode)
	if err != nil {
		return nil, CloneStats{}, err
	}
	stats.CopiedBytes += copied
	stats.LinkedFiles = linked

	// "The memory state is currently copied by the VMPlant
	// implementation during cloning" — the dominant per-clone cost,
	// scaling with guest memory size.
	memPath := "vms/" + string(id) + "/mem.vmss"
	// A loaded host pages while absorbing the incoming memory image, so
	// the copy slows under memory pressure too (priced as if this VM's
	// own footprint were already committed).
	copyScale := node.PressureScale(golden.Hardware.MemoryMB) * node.Jitter()
	n, err := node.Warehouse().CopyTo(p, golden.MemImagePath, node.LocalDisk(), memPath, copyScale)
	if err != nil {
		return nil, CloneStats{}, fmt.Errorf("vmm: copy memory state: %w", err)
	}
	stats.CopiedBytes += n
	stats.CopyTime = p.Now() - start

	// Resume: commit host memory, read the image back under the node's
	// current memory pressure, then the fixed VMM resume cost.
	node.Commit(golden.Hardware.MemoryMB)
	resumeStart := p.Now()
	scale := node.PressureScale(0) * node.Jitter()
	if _, err := node.LocalDisk().Read(p, memPath, scale); err != nil {
		node.Release(golden.Hardware.MemoryMB)
		return nil, CloneStats{}, err
	}
	p.Sleep(sim.Seconds(node.RNG().LogNormalMean(b.Timing.ResumeFixedSecs, b.Timing.ResumeSigma)))
	stats.ResumeTime = p.Now() - resumeStart
	stats.Total = p.Now() - start

	res, err := golden.Disk.Clone(string(id), mode)
	if err != nil {
		node.Release(golden.Hardware.MemoryMB)
		return nil, CloneStats{}, err
	}
	vm := &VM{
		id:      id,
		name:    golden.Name,
		hw:      golden.Hardware,
		backend: b.Name(),
		node:    node,
		disk:    res.Disk,
		guest:   golden.Guest.Clone(),
		state:   Running,
		memPath: memPath,
		timing:  b.Timing,
		history: append([]dag.Action(nil), golden.Performed...),
	}
	return vm, stats, nil
}

// UML is the boot-style production line (paper §4.1): clones share
// read-only copy-on-write virtual disks but boot the guest instead of
// resuming a checkpoint.
type UML struct {
	Timing Timing
}

// NewUML returns the backend with default timing.
func NewUML() *UML { return &UML{Timing: DefaultTiming()} }

// Name implements Backend.
func (b *UML) Name() string { return warehouse.BackendUML }

// Clone implements Backend.
func (b *UML) Clone(p *sim.Proc, node *cluster.Node, golden *warehouse.Image, id core.VMID, mode vdisk.CloneMode) (*VM, CloneStats, error) {
	if golden.Backend != warehouse.BackendUML {
		return nil, CloneStats{}, fmt.Errorf("vmm: uml line cannot clone %q image %q", golden.Backend, golden.Name)
	}
	start := p.Now()
	stats := CloneStats{Mode: mode}

	copied, linked, err := cloneDiskState(p, node, golden, id, mode)
	if err != nil {
		return nil, CloneStats{}, err
	}
	stats.CopiedBytes += copied
	stats.LinkedFiles = linked
	stats.CopyTime = p.Now() - start

	// "the current UML production line boots the virtual machine after
	// cloning, instead of resuming it from a checkpoint."
	node.Commit(golden.Hardware.MemoryMB)
	bootStart := p.Now()
	boot := node.RNG().LogNormalMean(b.Timing.BootSecs, b.Timing.BootSigma)
	p.Sleep(sim.Seconds(boot * node.PressureScale(0)))
	stats.ResumeTime = p.Now() - bootStart
	stats.Total = p.Now() - start

	res, err := golden.Disk.Clone(string(id), mode)
	if err != nil {
		node.Release(golden.Hardware.MemoryMB)
		return nil, CloneStats{}, err
	}
	// A freshly booted guest has the golden image's installed state but
	// nothing running: services come up configured, not started.
	guest := golden.Guest.Clone()
	for svc, st := range guest.Services {
		if st == "running" {
			guest.Services[svc] = "configured"
		}
	}
	vm := &VM{
		id:      id,
		name:    golden.Name,
		hw:      golden.Hardware,
		backend: b.Name(),
		node:    node,
		disk:    res.Disk,
		guest:   guest,
		state:   Running,
		timing:  b.Timing,
		history: append([]dag.Action(nil), golden.Performed...),
	}
	return vm, stats, nil
}

// Registry maps backend names to implementations.
type Registry map[string]Backend

// DefaultRegistry returns both production lines with default timing.
func DefaultRegistry() Registry {
	return Registry{
		warehouse.BackendVMware: NewVMware(),
		warehouse.BackendUML:    NewUML(),
	}
}

// Get resolves a backend by name; "" resolves to vmware.
func (r Registry) Get(name string) (Backend, error) {
	if name == "" {
		name = warehouse.BackendVMware
	}
	b, ok := r[name]
	if !ok {
		return nil, fmt.Errorf("vmm: no production line %q", name)
	}
	return b, nil
}
