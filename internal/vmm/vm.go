// Package vmm simulates the hosted virtual machine monitors the paper's
// production lines drive (§4.1): a VMware-GSX-style backend whose clones
// resume from a checkpointed memory image, and a UML-style backend whose
// clones boot from scratch over copy-on-write file systems. The package
// owns the VM runtime object — lifecycle, guest operating-system state,
// the guest agent that mounts configuration CD-ROMs and executes action
// scripts, and the virtual NIC on a host-only network.
package vmm

import (
	"bufio"
	"bytes"
	"fmt"
	"sort"
	"strings"

	"vmplants/internal/actions"
	"vmplants/internal/cluster"
	"vmplants/internal/core"
	"vmplants/internal/dag"
	"vmplants/internal/isofs"
	"vmplants/internal/sim"
	"vmplants/internal/simnet"
	"vmplants/internal/vdisk"
)

// RunState is the hypervisor-level state of a VM.
type RunState int

// VM run states.
const (
	Suspended RunState = iota
	Running
	Stopped
)

func (s RunState) String() string {
	switch s {
	case Suspended:
		return "suspended"
	case Running:
		return "running"
	}
	return "stopped"
}

// VM is one virtual machine instance hosted by a production line.
type VM struct {
	id      core.VMID
	name    string
	hw      core.HardwareSpec
	backend string
	node    *cluster.Node
	disk    *vdisk.Disk
	guest   *actions.State
	state   RunState

	mac simnet.MAC
	nic *simnet.Port
	net *simnet.HostOnlyNet

	memPath   string // local memory-image path ("" until first suspend for boot backends)
	timing    Timing // the production line's latency constants
	cdBlob    []byte // attached config CD image, nil when ejected
	cdActions []dag.Action

	// history is the VM's full configuration lineage: the golden image's
	// recorded actions plus everything executed on this instance, in
	// order. Publishing the VM as a new golden image records it.
	history []dag.Action

	// blockTouch, when set, is consulted before every guest block write —
	// the demand-fault seam for lazily cloned disks, whose extents may
	// not be local yet. It blocks the guest until the touched block's
	// extent is materialized, or fails the action.
	blockTouch func(p *sim.Proc, block int64) error
}

// SetBlockTouchHook installs the pre-write hook lazy cloning uses to
// fault extents in on demand (nil removes it).
func (vm *VM) SetBlockTouchHook(fn func(p *sim.Proc, block int64) error) {
	vm.blockTouch = fn
}

// History returns the VM's configuration lineage (golden history plus
// the actions executed on this instance).
func (vm *VM) History() []dag.Action {
	return append([]dag.Action(nil), vm.history...)
}

// Accessors.

// ID returns the shop-assigned identifier.
func (vm *VM) ID() core.VMID { return vm.id }

// Name returns the client-chosen label.
func (vm *VM) Name() string { return vm.name }

// Hardware returns the VM's hardware configuration.
func (vm *VM) Hardware() core.HardwareSpec { return vm.hw }

// Backend returns the production line that built the VM.
func (vm *VM) Backend() string { return vm.backend }

// State returns the hypervisor run state.
func (vm *VM) State() RunState { return vm.state }

// Guest returns the guest operating-system state (live; callers must
// mutate it only through ExecGuestAction).
func (vm *VM) Guest() *actions.State { return vm.guest }

// Disk returns the VM's virtual disk.
func (vm *VM) Disk() *vdisk.Disk { return vm.disk }

// Node returns the hosting cluster node.
func (vm *VM) Node() *cluster.Node { return vm.node }

// MAC returns the virtual NIC's address (zero until AttachNIC).
func (vm *VM) MAC() simnet.MAC { return vm.mac }

// Network returns the host-only network the NIC sits on (nil if none).
func (vm *VM) Network() *simnet.HostOnlyNet { return vm.net }

// AttachNIC connects the VM to a host-only network with the given MAC.
// The guest answers EtherTypeTest probes addressed to it — enough of a
// network stack to demonstrate end-to-end reachability through VNET.
func (vm *VM) AttachNIC(net *simnet.HostOnlyNet, mac simnet.MAC) error {
	if vm.nic != nil {
		return fmt.Errorf("vmm: %s already has a NIC", vm.id)
	}
	vm.net = net
	vm.mac = mac
	vm.nic = net.Switch.Attach("vm:" + string(vm.id))
	port := vm.nic
	vm.nic.SetHandler(func(f simnet.Frame) {
		if f.EtherType != simnet.EtherTypeTest || f.Dst != mac || vm.state != Running {
			return
		}
		reply := simnet.Frame{
			Src:       mac,
			Dst:       f.Src,
			EtherType: simnet.EtherTypeTest,
			Payload:   append([]byte("echo:"), f.Payload...),
		}
		// Best effort; a torn-down port just drops the reply.
		_ = port.Send(reply)
	})
	return nil
}

// Action-script format: the host-side production line converts DAG
// actions into scripts, burns them onto a CD image, and the in-guest
// agent parses and executes them (paper §4.1). The format is a
// shebang-style header followed by key=value lines:
//
//	#!vmplant-action
//	op=create-user
//	target=guest
//	param.name=arijit
const scriptMagic = "#!vmplant-action"

// EncodeScript renders one action as guest-script bytes.
func EncodeScript(a dag.Action) []byte {
	var b bytes.Buffer
	fmt.Fprintln(&b, scriptMagic)
	fmt.Fprintf(&b, "op=%s\n", a.Op)
	fmt.Fprintf(&b, "target=%s\n", a.Target)
	keys := make([]string, 0, len(a.Params))
	for k := range a.Params {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(&b, "param.%s=%s\n", k, a.Params[k])
	}
	return b.Bytes()
}

// ParseScript inverts EncodeScript.
func ParseScript(blob []byte) (dag.Action, error) {
	sc := bufio.NewScanner(bytes.NewReader(blob))
	if !sc.Scan() || sc.Text() != scriptMagic {
		return dag.Action{}, fmt.Errorf("vmm: script missing %q header", scriptMagic)
	}
	a := dag.Action{Params: map[string]string{}}
	for sc.Scan() {
		line := sc.Text()
		if line == "" {
			continue
		}
		key, val, ok := strings.Cut(line, "=")
		if !ok {
			return dag.Action{}, fmt.Errorf("vmm: bad script line %q", line)
		}
		switch {
		case key == "op":
			a.Op = val
		case key == "target":
			t, err := dag.ParseTarget(val)
			if err != nil {
				return dag.Action{}, err
			}
			a.Target = t
		case strings.HasPrefix(key, "param."):
			a.Params[strings.TrimPrefix(key, "param.")] = val
		default:
			return dag.Action{}, fmt.Errorf("vmm: unknown script key %q", key)
		}
	}
	if a.Op == "" {
		return dag.Action{}, fmt.Errorf("vmm: script without op")
	}
	if len(a.Params) == 0 {
		a.Params = nil
	}
	return a, nil
}

// BuildConfigCD burns a sequence of guest actions onto a CD image, one
// script per action, named so the agent executes them in order.
func BuildConfigCD(acts []dag.Action) (*isofs.Image, error) {
	im := isofs.New()
	for i, a := range acts {
		path := fmt.Sprintf("scripts/%03d-%s.sh", i, a.Op)
		if err := im.Add(path, EncodeScript(a)); err != nil {
			return nil, err
		}
	}
	return im, nil
}

// AttachCD connects a CD image to the VM; the guest agent mounts it and
// parses the scripts. A CD is already attached → error (one virtual
// CD-ROM drive).
func (vm *VM) AttachCD(p *sim.Proc, blob []byte) error {
	if vm.state != Running {
		return fmt.Errorf("vmm: %s is %s; cannot attach CD", vm.id, vm.state)
	}
	if vm.cdBlob != nil {
		return fmt.Errorf("vmm: %s already has a CD attached", vm.id)
	}
	// Host-side attach plus in-guest mount.
	p.Sleep(sim.Seconds(0.5 * vm.node.Jitter()))
	im, err := isofs.Read(blob)
	if err != nil {
		return fmt.Errorf("vmm: guest agent mount failed: %w", err)
	}
	var acts []dag.Action
	for _, path := range im.Paths() {
		data, _ := im.Lookup(path)
		a, err := ParseScript(data)
		if err != nil {
			return fmt.Errorf("vmm: guest agent: script %q: %w", path, err)
		}
		acts = append(acts, a)
	}
	vm.cdBlob = blob
	vm.cdActions = acts
	return nil
}

// CDActions returns the actions parsed from the attached CD, in
// execution order.
func (vm *VM) CDActions() []dag.Action {
	return append([]dag.Action(nil), vm.cdActions...)
}

// DetachCD ejects the CD.
func (vm *VM) DetachCD(p *sim.Proc) error {
	if vm.cdBlob == nil {
		return fmt.Errorf("vmm: %s has no CD attached", vm.id)
	}
	p.Sleep(sim.Seconds(0.2))
	vm.cdBlob = nil
	vm.cdActions = nil
	return nil
}

// ExecGuestAction has the guest agent execute one action inside the
// guest: virtual time passes per the action's duration model, then the
// semantic effect is applied to the guest state. The returned error is
// the guest-visible failure, if any.
func (vm *VM) ExecGuestAction(p *sim.Proc, a dag.Action) error {
	if vm.state != Running {
		return fmt.Errorf("vmm: %s is %s; guest agent unreachable", vm.id, vm.state)
	}
	d, err := actions.Duration(a, vm.node.RNG())
	if err != nil {
		return err
	}
	p.Sleep(d)
	if err := actions.Apply(vm.guest, a); err != nil {
		return err
	}
	// Writing configuration dirties the private redo log: one block per
	// action keeps the disk model honest.
	blk := make([]byte, vdisk.BlockSize)
	copy(blk, fmt.Sprintf("config %s %s", vm.id, a.Op))
	blocks := vm.disk.Base().SizeBytes() / vdisk.BlockSize
	idx := (blocks/2 + int64(len(vm.guest.Outputs))) % blocks
	if vm.blockTouch != nil {
		if err := vm.blockTouch(p, idx); err != nil {
			return fmt.Errorf("vmm: block %d fault: %w", idx, err)
		}
	}
	if err := vm.disk.WriteBlock(idx, blk); err != nil {
		return fmt.Errorf("vmm: config write: %w", err)
	}
	vm.history = append(vm.history, a)
	return nil
}

// ExecHostAction runs a host-side DAG action (device attach/detach …)
// against the VM's host-visible state.
func (vm *VM) ExecHostAction(p *sim.Proc, a dag.Action) error {
	d, err := actions.Duration(a, vm.node.RNG())
	if err != nil {
		return err
	}
	p.Sleep(d)
	if err := actions.Apply(vm.guest, a); err != nil {
		return err
	}
	vm.history = append(vm.history, a)
	return nil
}

// Suspend checkpoints the VM — its memory image is written to the
// node's local disk — and releases the guest's host memory. VMware-line
// VMs use the hosted VMM's native suspend; UML-line VMs use the
// SBUML-style checkpointing the paper cites ("With checkpointing
// techniques such as SBUML, it is possible to clone virtual machines
// from the corresponding snapshots and resume them without a full
// reboot").
func (vm *VM) Suspend(p *sim.Proc) error {
	if vm.state != Running {
		return fmt.Errorf("vmm: suspend of %s in state %s", vm.id, vm.state)
	}
	if vm.memPath == "" {
		vm.memPath = "vms/" + string(vm.id) + "/mem.ckpt"
	}
	scale := vm.node.PressureScale(0) * vm.node.Jitter()
	if err := vm.node.LocalDisk().Write(p, vm.memPath, memImageBytes(vm.hw), scale); err != nil {
		return err
	}
	if err := vm.node.Release(vm.hw.MemoryMB); err != nil {
		return err
	}
	vm.state = Suspended
	return nil
}

// Resume brings a suspended VM back: host memory is re-committed and
// the checkpoint read back under the node's current memory pressure,
// plus the VMM's fixed resume cost.
func (vm *VM) Resume(p *sim.Proc) error {
	if vm.state != Suspended {
		return fmt.Errorf("vmm: resume of %s in state %s", vm.id, vm.state)
	}
	vm.node.Commit(vm.hw.MemoryMB)
	scale := vm.node.PressureScale(0) * vm.node.Jitter()
	if _, err := vm.node.LocalDisk().Read(p, vm.memPath, scale); err != nil {
		vm.node.Release(vm.hw.MemoryMB)
		return err
	}
	p.Sleep(sim.Seconds(vm.node.RNG().LogNormalMean(vm.timing.ResumeFixedSecs, vm.timing.ResumeSigma)))
	vm.state = Running
	return nil
}

// DetachNIC disconnects the VM from its host-only network (migration
// re-homes the NIC on the destination plant's network).
func (vm *VM) DetachNIC() {
	if vm.nic != nil {
		vm.nic.Close()
		vm.nic = nil
		vm.net = nil
	}
}

// Migrate re-homes a suspended VM onto another cluster node: the
// checkpointed memory image and the private redo logs stream over the
// cluster's gigabit interconnect, and the shared golden state is
// re-linked from the destination's warehouse mount (no bulk disk copy —
// the same property that makes cloning fast makes migration cheap).
func (vm *VM) Migrate(p *sim.Proc, dst *cluster.Node) error {
	if vm.state != Suspended {
		return fmt.Errorf("vmm: migrate of %s in state %s (suspend first)", vm.id, vm.state)
	}
	if dst == vm.node {
		return nil
	}
	moved := vm.disk.RedoBytes()
	if vm.memPath != "" {
		moved += memImageBytes(vm.hw)
	}
	vm.node.SendTo(p, dst, moved)
	// The destination now holds the state files.
	if vm.memPath != "" {
		dst.LocalDisk().WriteMeta(vm.memPath, memImageBytes(vm.hw))
	}
	vm.node = dst
	return nil
}

// Rebrand reassigns a suspended VM's identity — how a speculatively
// pre-created clone takes on the VMID of the request it ends up
// serving.
func (vm *VM) Rebrand(id core.VMID, name string) error {
	if vm.state != Suspended {
		return fmt.Errorf("vmm: rebrand of %s in state %s", vm.id, vm.state)
	}
	vm.id = id
	vm.name = name
	return nil
}

// Collect stops the VM and releases its host resources: node memory,
// NIC port, and the discardable redo state (the paper's non-persistent
// sessions). The host-only network slot is released by the plant, which
// owns domain accounting.
func (vm *VM) Collect(p *sim.Proc) error {
	if vm.state == Stopped {
		return fmt.Errorf("vmm: %s already collected", vm.id)
	}
	p.Sleep(sim.Seconds(0.5 * vm.node.Jitter()))
	vm.disk.DiscardTop()
	if vm.nic != nil {
		vm.nic.Close()
		vm.nic = nil
	}
	if err := vm.node.Release(vm.hw.MemoryMB); err != nil {
		return err
	}
	vm.state = Stopped
	return nil
}
