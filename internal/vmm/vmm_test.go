package vmm

import (
	"strings"
	"testing"
	"time"

	"vmplants/internal/actions"
	"vmplants/internal/cluster"
	"vmplants/internal/core"
	"vmplants/internal/dag"
	"vmplants/internal/sim"
	"vmplants/internal/simnet"
	"vmplants/internal/vdisk"
	"vmplants/internal/warehouse"
)

func act(op string, kv ...string) dag.Action {
	p := map[string]string{}
	for i := 0; i+1 < len(kv); i += 2 {
		p[kv[i]] = kv[i+1]
	}
	tgt, _ := actions.DefaultTarget(op)
	return dag.Action{Op: op, Target: tgt, Params: p}
}

// rig is a one-node testbed with a published golden image.
type rig struct {
	k      *sim.Kernel
	tb     *cluster.Testbed
	wh     *warehouse.Warehouse
	golden *warehouse.Image
}

func newRig(t *testing.T, backend string, memMB int) *rig {
	t.Helper()
	k := sim.NewKernel()
	tb := cluster.NewTestbed(k, 1, cluster.DefaultParams(), 11)
	wh := warehouse.New(tb.Warehouse)
	im, err := warehouse.BuildGolden("golden-ws",
		core.HardwareSpec{Arch: "x86", MemoryMB: memMB, DiskMB: 2048},
		backend,
		[]dag.Action{
			act(actions.OpInstallOS, "distro", "mandrake-8.1"),
			act(actions.OpInstallPackage, "name", "vnc-server"),
			act(actions.OpConfigureService, "name", "vnc"),
			act(actions.OpStartService, "name", "vnc"),
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := wh.Publish(im); err != nil {
		t.Fatal(err)
	}
	return &rig{k: k, tb: tb, wh: wh, golden: im}
}

// inSim runs body as a simulation process to completion.
func (r *rig) inSim(t *testing.T, body func(p *sim.Proc)) time.Duration {
	t.Helper()
	r.k.Spawn("test", body)
	res := r.k.Run(0)
	if len(res.Stranded) != 0 {
		t.Fatalf("stranded: %v", res.Stranded)
	}
	return res.End
}

func TestVMwareCloneResumesWithGoldenState(t *testing.T) {
	r := newRig(t, warehouse.BackendVMware, 64)
	var vm *VM
	var stats CloneStats
	r.inSim(t, func(p *sim.Proc) {
		var err error
		vm, stats, err = NewVMware().Clone(p, r.tb.Nodes[0], r.golden, "vm-t-1", vdisk.CloneByLink)
		if err != nil {
			t.Errorf("clone: %v", err)
		}
	})
	if vm.State() != Running {
		t.Errorf("state = %v", vm.State())
	}
	if vm.Guest().OS != "mandrake-8.1" || !vm.Guest().Packages["vnc-server"] {
		t.Errorf("guest state: %s", vm.Guest().Summary())
	}
	if vm.Guest().Services["vnc"] != "running" {
		t.Error("resumed clone lost running service")
	}
	// Clone content equals golden content.
	if vm.Disk().ContentHash() != r.golden.Disk.ContentHash() {
		t.Error("clone disk content differs from golden")
	}
	// Link cloning: 16 extents linked, only small state copied.
	if stats.LinkedFiles != warehouse.DiskSpanFiles {
		t.Errorf("linked %d files", stats.LinkedFiles)
	}
	if stats.CopiedBytes > 100*1024*1024 {
		t.Errorf("link clone copied %d bytes", stats.CopiedBytes)
	}
	// Host memory committed.
	if r.tb.Nodes[0].VMs() != 1 {
		t.Error("node memory not committed")
	}
	// The timing envelope: a 64 MB clone on an idle node lands well
	// under a minute (paper Figure 5).
	if stats.Total < 5*time.Second || stats.Total > 40*time.Second {
		t.Errorf("64MB clone took %v", stats.Total)
	}
}

func TestVMwareCloneGuestIndependentOfGolden(t *testing.T) {
	r := newRig(t, warehouse.BackendVMware, 32)
	r.inSim(t, func(p *sim.Proc) {
		vm, _, err := NewVMware().Clone(p, r.tb.Nodes[0], r.golden, "vm-t-1", vdisk.CloneByLink)
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.ExecGuestAction(p, act(actions.OpCreateUser, "name", "ivan")); err != nil {
			t.Fatal(err)
		}
		if r.golden.Guest.Users["ivan"] {
			t.Error("clone guest mutation leaked into golden image")
		}
	})
}

func TestCloneByCopyMovesFullDisk(t *testing.T) {
	r := newRig(t, warehouse.BackendVMware, 32)
	var stats CloneStats
	took := r.inSim(t, func(p *sim.Proc) {
		_, s, err := NewVMware().Clone(p, r.tb.Nodes[0], r.golden, "vm-t-1", vdisk.CloneByCopy)
		if err != nil {
			t.Fatal(err)
		}
		stats = s
	})
	if stats.CopiedBytes < 2<<30 {
		t.Errorf("copy clone moved %d bytes", stats.CopiedBytes)
	}
	// The paper: 2 GB at NFS speed ≈ 210 s; total well above any link
	// clone.
	if took < 180*time.Second {
		t.Errorf("full copy took only %v", took)
	}
}

func TestUMLCloneBootsAt76Seconds(t *testing.T) {
	r := newRig(t, warehouse.BackendUML, 32)
	var stats CloneStats
	r.inSim(t, func(p *sim.Proc) {
		vm, s, err := NewUML().Clone(p, r.tb.Nodes[0], r.golden, "vm-t-1", vdisk.CloneByLink)
		if err != nil {
			t.Fatal(err)
		}
		stats = s
		// Booted guest: installed but services not running.
		if vm.Guest().Services["vnc"] != "configured" {
			t.Errorf("booted service state = %q", vm.Guest().Services["vnc"])
		}
	})
	secs := stats.Total.Seconds()
	if secs < 60 || secs > 95 {
		t.Errorf("UML clone took %.1fs, want ≈76s", secs)
	}
}

func TestBackendImageMismatch(t *testing.T) {
	r := newRig(t, warehouse.BackendVMware, 32)
	r.inSim(t, func(p *sim.Proc) {
		if _, _, err := NewUML().Clone(p, r.tb.Nodes[0], r.golden, "vm-x", vdisk.CloneByLink); err == nil {
			t.Error("UML line cloned a vmware image")
		}
	})
}

func TestMemoryPressureSlowsSuccessiveClones(t *testing.T) {
	// 16 × 64 MB clones on a 1.5 GB node: later resumes are slower.
	r := newRig(t, warehouse.BackendVMware, 64)
	var totals []time.Duration
	r.inSim(t, func(p *sim.Proc) {
		for i := 0; i < 16; i++ {
			_, s, err := NewVMware().Clone(p, r.tb.Nodes[0], r.golden,
				core.VMID(strings.Join([]string{"vm", string(rune('a' + i))}, "-")), vdisk.CloneByLink)
			if err != nil {
				t.Fatal(err)
			}
			totals = append(totals, s.Total)
		}
	})
	early := (totals[0] + totals[1] + totals[2]) / 3
	late := (totals[13] + totals[14] + totals[15]) / 3
	if late <= early {
		t.Errorf("no pressure growth: early %v late %v", early, late)
	}
}

func TestScriptRoundTrip(t *testing.T) {
	a := act(actions.OpCreateUser, "name", "arijit", "password", "x")
	got, err := ParseScript(EncodeScript(a))
	if err != nil {
		t.Fatal(err)
	}
	if got.Op != a.Op || got.Target != a.Target || got.Params["name"] != "arijit" || got.Params["password"] != "x" {
		t.Errorf("round trip: %+v", got)
	}
}

func TestParseScriptErrors(t *testing.T) {
	cases := []string{
		"",
		"#!/bin/sh\nrm -rf /",
		"#!vmplant-action\nbogus-line-without-equals",
		"#!vmplant-action\nmystery=1",
		"#!vmplant-action\ntarget=guest", // no op
		"#!vmplant-action\nop=x\ntarget=jupiter",
	}
	for _, src := range cases {
		if _, err := ParseScript([]byte(src)); err == nil {
			t.Errorf("ParseScript(%q) succeeded", src)
		}
	}
}

func TestConfigCDDeliversActionsInOrder(t *testing.T) {
	r := newRig(t, warehouse.BackendVMware, 32)
	r.inSim(t, func(p *sim.Proc) {
		vm, _, err := NewVMware().Clone(p, r.tb.Nodes[0], r.golden, "vm-t-1", vdisk.CloneByLink)
		if err != nil {
			t.Fatal(err)
		}
		plan := []dag.Action{
			act(actions.OpConfigureNetwork, "ip", "10.0.0.9", "mac", "00:50:56:aa"),
			act(actions.OpCreateUser, "name", "arijit"),
			act(actions.OpMountFS, "source", "nfs:/home/arijit", "mountpoint", "/home/arijit"),
		}
		cd, err := BuildConfigCD(plan)
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.AttachCD(p, cd.Bytes()); err != nil {
			t.Fatal(err)
		}
		got := vm.CDActions()
		if len(got) != 3 || got[0].Op != actions.OpConfigureNetwork || got[2].Op != actions.OpMountFS {
			t.Fatalf("CD actions = %+v", got)
		}
		// Double attach refused; execute then detach.
		if err := vm.AttachCD(p, cd.Bytes()); err == nil {
			t.Error("double attach accepted")
		}
		for _, a := range got {
			if err := vm.ExecGuestAction(p, a); err != nil {
				t.Fatal(err)
			}
		}
		if vm.Guest().IP != "10.0.0.9" || !vm.Guest().Users["arijit"] {
			t.Errorf("guest after config: %s", vm.Guest().Summary())
		}
		if err := vm.DetachCD(p); err != nil {
			t.Fatal(err)
		}
		if err := vm.DetachCD(p); err == nil {
			t.Error("double detach accepted")
		}
	})
}

func TestAttachCDRejectsCorruptImage(t *testing.T) {
	r := newRig(t, warehouse.BackendVMware, 32)
	r.inSim(t, func(p *sim.Proc) {
		vm, _, err := NewVMware().Clone(p, r.tb.Nodes[0], r.golden, "vm-t-1", vdisk.CloneByLink)
		if err != nil {
			t.Fatal(err)
		}
		cd, _ := BuildConfigCD([]dag.Action{act(actions.OpCreateUser, "name", "u")})
		blob := cd.Bytes()
		blob[len(blob)-6] ^= 0xFF
		if err := vm.AttachCD(p, blob); err == nil {
			t.Error("corrupt CD accepted")
		}
	})
}

func TestNICEchoProbe(t *testing.T) {
	r := newRig(t, warehouse.BackendVMware, 32)
	r.inSim(t, func(p *sim.Proc) {
		vm, _, err := NewVMware().Clone(p, r.tb.Nodes[0], r.golden, "vm-t-1", vdisk.CloneByLink)
		if err != nil {
			t.Fatal(err)
		}
		pool := simnet.NewNetPool("vmnet", 1)
		net, _, _ := pool.Acquire("ufl.edu")
		mac := simnet.MAC{0x00, 0x50, 0x56, 0, 0, 1}
		if err := vm.AttachNIC(net, mac); err != nil {
			t.Fatal(err)
		}
		if err := vm.AttachNIC(net, mac); err == nil {
			t.Error("double NIC attach accepted")
		}
		probe := net.Switch.Attach("probe")
		probe.Send(simnet.Frame{Src: simnet.MAC{9}, Dst: mac, EtherType: simnet.EtherTypeTest, Payload: []byte("ping")})
		f, ok := probe.Poll()
		if !ok || string(f.Payload) != "echo:ping" || f.Src != mac {
			t.Errorf("probe reply = %+v ok=%v", f, ok)
		}
		// A stopped VM goes silent.
		if err := vm.Collect(p); err != nil {
			t.Fatal(err)
		}
		probe.Send(simnet.Frame{Src: simnet.MAC{9}, Dst: mac, EtherType: simnet.EtherTypeTest, Payload: []byte("ping")})
		if _, ok := probe.Poll(); ok {
			t.Error("collected VM replied to probe")
		}
	})
}

func TestCollectReleasesResources(t *testing.T) {
	r := newRig(t, warehouse.BackendVMware, 64)
	r.inSim(t, func(p *sim.Proc) {
		vm, _, err := NewVMware().Clone(p, r.tb.Nodes[0], r.golden, "vm-t-1", vdisk.CloneByLink)
		if err != nil {
			t.Fatal(err)
		}
		vm.ExecGuestAction(p, act(actions.OpCreateUser, "name", "u"))
		if err := vm.Collect(p); err != nil {
			t.Fatal(err)
		}
		if r.tb.Nodes[0].VMs() != 0 {
			t.Error("node memory not released")
		}
		if err := vm.Collect(p); err == nil {
			t.Error("double collect accepted")
		}
		// Guest agent unreachable after collection.
		if err := vm.ExecGuestAction(p, act(actions.OpCreateUser, "name", "v")); err == nil {
			t.Error("guest action on stopped VM succeeded")
		}
	})
}

func TestSuspendWritesMemoryImage(t *testing.T) {
	r := newRig(t, warehouse.BackendVMware, 32)
	r.inSim(t, func(p *sim.Proc) {
		vm, _, err := NewVMware().Clone(p, r.tb.Nodes[0], r.golden, "vm-t-1", vdisk.CloneByLink)
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Suspend(p); err != nil {
			t.Fatal(err)
		}
		if vm.State() != Suspended {
			t.Errorf("state = %v", vm.State())
		}
		if err := vm.Suspend(p); err == nil {
			t.Error("double suspend accepted")
		}
	})
}

func TestRegistryResolution(t *testing.T) {
	reg := DefaultRegistry()
	b, err := reg.Get("")
	if err != nil || b.Name() != warehouse.BackendVMware {
		t.Errorf("default backend = %v, %v", b, err)
	}
	if _, err := reg.Get("uml"); err != nil {
		t.Errorf("uml: %v", err)
	}
	if _, err := reg.Get("xen"); err == nil {
		t.Error("unknown backend resolved")
	}
}

func TestCloneTimeScalesWithMemorySize(t *testing.T) {
	measure := func(memMB int) time.Duration {
		r := newRig(t, warehouse.BackendVMware, memMB)
		var total time.Duration
		r.inSim(t, func(p *sim.Proc) {
			_, s, err := NewVMware().Clone(p, r.tb.Nodes[0], r.golden, "vm-m", vdisk.CloneByLink)
			if err != nil {
				t.Fatal(err)
			}
			total = s.Total
		})
		return total
	}
	t32, t64, t256 := measure(32), measure(64), measure(256)
	if !(t32 < t64 && t64 < t256) {
		t.Errorf("clone times not ordered: 32MB=%v 64MB=%v 256MB=%v", t32, t64, t256)
	}
}

func TestSuspendResumeRoundTrip(t *testing.T) {
	r := newRig(t, warehouse.BackendVMware, 64)
	r.inSim(t, func(p *sim.Proc) {
		vm, _, err := NewVMware().Clone(p, r.tb.Nodes[0], r.golden, "vm-t-1", vdisk.CloneByLink)
		if err != nil {
			t.Fatal(err)
		}
		committed := r.tb.Nodes[0].CommittedMB()
		if err := vm.Suspend(p); err != nil {
			t.Fatal(err)
		}
		if r.tb.Nodes[0].CommittedMB() != 0 {
			t.Errorf("suspend left %d MB committed", r.tb.Nodes[0].CommittedMB())
		}
		// Guest agent unreachable while suspended.
		if err := vm.ExecGuestAction(p, act(actions.OpCreateUser, "name", "u")); err == nil {
			t.Error("guest action on suspended VM succeeded")
		}
		if err := vm.Resume(p); err != nil {
			t.Fatal(err)
		}
		if r.tb.Nodes[0].CommittedMB() != committed {
			t.Errorf("resume committed %d MB, want %d", r.tb.Nodes[0].CommittedMB(), committed)
		}
		if vm.State() != Running {
			t.Errorf("state = %v", vm.State())
		}
		// Double resume is an error.
		if err := vm.Resume(p); err == nil {
			t.Error("resume of running VM succeeded")
		}
		// Guest state intact across the round trip.
		if vm.Guest().OS != "mandrake-8.1" {
			t.Error("guest state lost across suspend/resume")
		}
	})
}

func TestUMLSuspendResumeSBUMLStyle(t *testing.T) {
	// The UML backend has no memory image at clone time; the first
	// suspend creates an SBUML-style checkpoint it can resume from.
	r := newRig(t, warehouse.BackendUML, 32)
	r.inSim(t, func(p *sim.Proc) {
		vm, _, err := NewUML().Clone(p, r.tb.Nodes[0], r.golden, "vm-t-1", vdisk.CloneByLink)
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Suspend(p); err != nil {
			t.Fatal(err)
		}
		start := p.Now()
		if err := vm.Resume(p); err != nil {
			t.Fatal(err)
		}
		// Resume is far below the ≈76 s boot.
		if took := p.Now() - start; took > 30*time.Second {
			t.Errorf("SBUML-style resume took %v", took)
		}
	})
}

func TestMigrateRequiresSuspend(t *testing.T) {
	k := sim.NewKernel()
	tb := cluster.NewTestbed(k, 2, cluster.DefaultParams(), 17)
	wh := warehouse.New(tb.Warehouse)
	im, err := warehouse.BuildGolden("g", core.HardwareSpec{Arch: "x86", MemoryMB: 64, DiskMB: 2048},
		warehouse.BackendVMware, []dag.Action{act(actions.OpInstallOS, "distro", "linux")})
	if err != nil {
		t.Fatal(err)
	}
	if err := wh.Publish(im); err != nil {
		t.Fatal(err)
	}
	k.Spawn("test", func(p *sim.Proc) {
		vm, _, err := NewVMware().Clone(p, tb.Nodes[0], im, "vm-1", vdisk.CloneByLink)
		if err != nil {
			t.Fatal(err)
		}
		// Running VM refuses to migrate.
		if err := vm.Migrate(p, tb.Nodes[1]); err == nil {
			t.Error("migrate of running VM succeeded")
		}
		if err := vm.Suspend(p); err != nil {
			t.Fatal(err)
		}
		if err := vm.Migrate(p, tb.Nodes[1]); err != nil {
			t.Fatal(err)
		}
		if vm.Node() != tb.Nodes[1] {
			t.Error("VM not re-homed")
		}
		// Self-migration is a no-op.
		if err := vm.Migrate(p, tb.Nodes[1]); err != nil {
			t.Errorf("self migration: %v", err)
		}
		if err := vm.Resume(p); err != nil {
			t.Fatal(err)
		}
		if tb.Nodes[1].VMs() != 1 || tb.Nodes[0].VMs() != 0 {
			t.Errorf("memory accounting: src %d, dst %d", tb.Nodes[0].VMs(), tb.Nodes[1].VMs())
		}
	})
	if res := k.Run(0); len(res.Stranded) != 0 {
		t.Fatalf("stranded: %v", res.Stranded)
	}
}

func TestRebrandOnlyWhileSuspended(t *testing.T) {
	r := newRig(t, warehouse.BackendVMware, 32)
	r.inSim(t, func(p *sim.Proc) {
		vm, _, err := NewVMware().Clone(p, r.tb.Nodes[0], r.golden, "vm-old", vdisk.CloneByLink)
		if err != nil {
			t.Fatal(err)
		}
		if err := vm.Rebrand("vm-new", "n"); err == nil {
			t.Error("rebrand of running VM succeeded")
		}
		vm.Suspend(p)
		if err := vm.Rebrand("vm-new", "n"); err != nil {
			t.Fatal(err)
		}
		if vm.ID() != "vm-new" {
			t.Errorf("ID = %s", vm.ID())
		}
	})
}
