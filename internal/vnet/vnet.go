// Package vnet implements the VNET-style virtual network overlay the
// paper integrates with (§3.3, citing Sundararaj & Dinda): a bridge
// operating at the Ethernet layer that connects a VM's host-only
// network on a remote VMPlant to the client domain's own network,
// through a proxy the client runs. Frames are tunneled over a TCP
// stream; the plant side authenticates the client domain's credential
// before attaching the bridge, and never bridges two domains together.
//
// The package works over any net.Conn, so tests use net.Pipe and the
// daemons use real TCP (optionally through the SSH tunnels the paper
// describes; tunneling is outside this package's scope).
package vnet

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"

	"vmplants/internal/simnet"
)

// Wire protocol constants.
var handshakeMagic = []byte("VNET1\n")

const (
	maxFramePayload = 9000 // jumbo-frame ceiling
	frameHeaderLen  = 6 + 6 + 2 + 2
)

// Credentials maps client domain → shared secret. The paper: "the
// client attaches to its VM request credentials for uniquely
// identifying its domain".
type Credentials map[string]string

// writeFrame serializes one frame: dst, src, ethertype, payload length,
// payload.
func writeFrame(w io.Writer, f simnet.Frame) error {
	if len(f.Payload) > maxFramePayload {
		return fmt.Errorf("vnet: payload %d exceeds %d", len(f.Payload), maxFramePayload)
	}
	var hdr [frameHeaderLen]byte
	copy(hdr[0:6], f.Dst[:])
	copy(hdr[6:12], f.Src[:])
	binary.BigEndian.PutUint16(hdr[12:14], f.EtherType)
	binary.BigEndian.PutUint16(hdr[14:16], uint16(len(f.Payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(f.Payload)
	return err
}

// readFrame parses one frame.
func readFrame(r io.Reader) (simnet.Frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return simnet.Frame{}, err
	}
	var f simnet.Frame
	copy(f.Dst[:], hdr[0:6])
	copy(f.Src[:], hdr[6:12])
	f.EtherType = binary.BigEndian.Uint16(hdr[12:14])
	n := binary.BigEndian.Uint16(hdr[14:16])
	if n > maxFramePayload {
		return simnet.Frame{}, fmt.Errorf("vnet: frame payload %d exceeds %d", n, maxFramePayload)
	}
	f.Payload = make([]byte, n)
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return simnet.Frame{}, err
	}
	return f, nil
}

// Bridge splices a switch port and a conn: frames the switch delivers
// to the port are written to the conn, frames read from the conn are
// injected into the switch.
type Bridge struct {
	port *simnet.Port
	conn net.Conn

	mu     sync.Mutex
	w      *bufio.Writer
	closed bool
	done   chan struct{}

	txFrames, rxFrames uint64
}

// newBridge starts bridging; it owns conn and port.
func newBridge(sw *simnet.Switch, portName string, conn net.Conn) *Bridge {
	b := &Bridge{
		port: sw.Attach(portName),
		conn: conn,
		w:    bufio.NewWriter(conn),
		done: make(chan struct{}),
	}
	b.port.SetHandler(b.toWire)
	go b.fromWire()
	return b
}

// toWire ships a switch-delivered frame to the remote side.
func (b *Bridge) toWire(f simnet.Frame) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.closed {
		return
	}
	if err := writeFrame(b.w, f); err != nil {
		b.closeLocked()
		return
	}
	if err := b.w.Flush(); err != nil {
		b.closeLocked()
		return
	}
	b.txFrames++
}

// fromWire injects remote frames into the local switch until the conn
// fails or the bridge closes.
func (b *Bridge) fromWire() {
	defer close(b.done)
	r := bufio.NewReader(b.conn)
	for {
		f, err := readFrame(r)
		if err != nil {
			b.Close()
			return
		}
		b.mu.Lock()
		b.rxFrames++
		closed := b.closed
		b.mu.Unlock()
		if closed {
			return
		}
		// Injecting through the port teaches the switch that the remote
		// MACs live behind this bridge.
		if err := b.port.Send(f); err != nil {
			return
		}
	}
}

// Stats reports frames bridged in each direction.
func (b *Bridge) Stats() (tx, rx uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.txFrames, b.rxFrames
}

// Close tears the bridge down and detaches its port.
func (b *Bridge) Close() {
	b.mu.Lock()
	b.closeLocked()
	b.mu.Unlock()
}

func (b *Bridge) closeLocked() {
	if b.closed {
		return
	}
	b.closed = true
	b.port.Close()
	b.conn.Close()
}

// Wait blocks until the bridge's reader loop has exited.
func (b *Bridge) Wait() { <-b.done }

// Dial performs the client-side handshake on conn, identifying domain
// with token, and bridges sw (the client-side network) on success.
func Dial(sw *simnet.Switch, domain, token string, conn net.Conn) (*Bridge, error) {
	if _, err := conn.Write(handshakeMagic); err != nil {
		conn.Close()
		return nil, err
	}
	if err := writeString(conn, domain); err != nil {
		conn.Close()
		return nil, err
	}
	if err := writeString(conn, token); err != nil {
		conn.Close()
		return nil, err
	}
	var verdict [3]byte
	if _, err := io.ReadFull(conn, verdict[:]); err != nil {
		conn.Close()
		return nil, fmt.Errorf("vnet: handshake read: %w", err)
	}
	if string(verdict[:]) != "OK\n" {
		conn.Close()
		return nil, errors.New("vnet: server rejected credentials")
	}
	return newBridge(sw, "vnet-proxy:"+domain, conn), nil
}

// NetworkLookup resolves a client domain to the host-only network its
// VMs occupy on this plant. It returns false when the domain owns no
// network here.
type NetworkLookup func(domain string) (*simnet.Switch, bool)

// Server is the plant-side VNET endpoint.
type Server struct {
	creds  Credentials
	lookup NetworkLookup

	mu      sync.Mutex
	bridges []*Bridge
}

// NewServer creates a VNET server with the given credential table and
// domain→network resolver.
func NewServer(creds Credentials, lookup NetworkLookup) *Server {
	return &Server{creds: creds, lookup: lookup}
}

// HandleConn performs the server-side handshake and, on success,
// bridges the domain's host-only network over conn. It returns the
// bridge, or an error after closing conn.
func (s *Server) HandleConn(conn net.Conn) (*Bridge, error) {
	fail := func(err error) (*Bridge, error) {
		conn.Write([]byte("NO\n"))
		conn.Close()
		return nil, err
	}
	magic := make([]byte, len(handshakeMagic))
	if _, err := io.ReadFull(conn, magic); err != nil {
		conn.Close()
		return nil, fmt.Errorf("vnet: short handshake: %w", err)
	}
	if string(magic) != string(handshakeMagic) {
		return fail(errors.New("vnet: bad magic"))
	}
	domain, err := readString(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	token, err := readString(conn)
	if err != nil {
		conn.Close()
		return nil, err
	}
	want, ok := s.creds[domain]
	if !ok || want != token {
		return fail(fmt.Errorf("vnet: bad credential for domain %q", domain))
	}
	sw, ok := s.lookup(domain)
	if !ok {
		return fail(fmt.Errorf("vnet: domain %q has no network on this plant", domain))
	}
	if _, err := conn.Write([]byte("OK\n")); err != nil {
		conn.Close()
		return nil, err
	}
	b := newBridge(sw, "vnet-handler:"+domain, conn)
	s.mu.Lock()
	s.bridges = append(s.bridges, b)
	s.mu.Unlock()
	return b, nil
}

// Serve accepts connections from l until it is closed, handling each in
// its own goroutine. Handshake failures are dropped silently (the
// caller closed them already).
func (s *Server) Serve(l net.Listener) {
	for {
		conn, err := l.Accept()
		if err != nil {
			return
		}
		go s.HandleConn(conn)
	}
}

// Close tears down every active bridge.
func (s *Server) Close() {
	s.mu.Lock()
	bs := append([]*Bridge(nil), s.bridges...)
	s.mu.Unlock()
	for _, b := range bs {
		b.Close()
	}
}

const maxStringLen = 1024

func writeString(w io.Writer, s string) error {
	if len(s) > maxStringLen {
		return fmt.Errorf("vnet: string too long (%d)", len(s))
	}
	var n [2]byte
	binary.BigEndian.PutUint16(n[:], uint16(len(s)))
	if _, err := w.Write(n[:]); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n [2]byte
	if _, err := io.ReadFull(r, n[:]); err != nil {
		return "", err
	}
	ln := binary.BigEndian.Uint16(n[:])
	if ln > maxStringLen {
		return "", fmt.Errorf("vnet: string too long (%d)", ln)
	}
	buf := make([]byte, ln)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}
