package vnet

import (
	"io"
	"net"
	"testing"
	"time"

	"vmplants/internal/simnet"
)

// bridgePair wires a plant-side network and a client-side network
// together through an in-memory conn, returning both bridges.
func bridgePair(t *testing.T, plantNet, clientNet *simnet.Switch, domain string) (*Bridge, *Bridge) {
	t.Helper()
	creds := Credentials{domain: "secret"}
	srv := NewServer(creds, func(d string) (*simnet.Switch, bool) {
		if d == domain {
			return plantNet, true
		}
		return nil, false
	})
	cConn, sConn := net.Pipe()
	var serverBridge *Bridge
	errc := make(chan error, 1)
	go func() {
		b, err := srv.HandleConn(sConn)
		serverBridge = b
		errc <- err
	}()
	clientBridge, err := Dial(clientNet, domain, "secret", cConn)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := <-errc; err != nil {
		t.Fatalf("server: %v", err)
	}
	return serverBridge, clientBridge
}

// waitFor polls until cond is true or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func TestFramesCrossTheBridge(t *testing.T) {
	plantNet := simnet.NewSwitch("vmnet0")
	clientNet := simnet.NewSwitch("client-lan")
	sb, cb := bridgePair(t, plantNet, clientNet, "ufl.edu")
	defer sb.Close()
	defer cb.Close()

	vm := plantNet.Attach("vm-nic")
	workstation := clientNet.Attach("ws-nic")
	vmMAC, wsMAC := simnet.MAC{0xA}, simnet.MAC{0xB}

	// VM broadcasts (e.g. ARP): must surface on the client LAN.
	vm.Send(simnet.Frame{Src: vmMAC, Dst: simnet.Broadcast, EtherType: simnet.EtherTypeARP, Payload: []byte("who-has")})
	waitFor(t, "broadcast to reach workstation", func() bool { return workstation.Pending() > 0 })
	f, _ := workstation.Poll()
	if f.Src != vmMAC || string(f.Payload) != "who-has" {
		t.Errorf("got frame %+v", f)
	}

	// Workstation replies unicast to the VM across the overlay.
	workstation.Send(simnet.Frame{Src: wsMAC, Dst: vmMAC, EtherType: simnet.EtherTypeIPv4, Payload: []byte("reply")})
	waitFor(t, "reply to reach VM", func() bool { return vm.Pending() > 0 })
	r, _ := vm.Poll()
	if r.Src != wsMAC || string(r.Payload) != "reply" {
		t.Errorf("got frame %+v", r)
	}
}

func TestBridgeStatsCount(t *testing.T) {
	plantNet := simnet.NewSwitch("vmnet0")
	clientNet := simnet.NewSwitch("lan")
	sb, cb := bridgePair(t, plantNet, clientNet, "d")
	defer sb.Close()
	defer cb.Close()
	vm := plantNet.Attach("vm")
	vm.Send(simnet.Frame{Src: simnet.MAC{1}, Dst: simnet.Broadcast})
	waitFor(t, "tx count", func() bool { tx, _ := sb.Stats(); return tx == 1 })
	waitFor(t, "rx count", func() bool { _, rx := cb.Stats(); return rx == 1 })
}

func TestBadCredentialRejected(t *testing.T) {
	srv := NewServer(Credentials{"d": "right"}, func(string) (*simnet.Switch, bool) {
		return simnet.NewSwitch("x"), true
	})
	cConn, sConn := net.Pipe()
	go srv.HandleConn(sConn)
	if _, err := Dial(simnet.NewSwitch("c"), "d", "wrong", cConn); err == nil {
		t.Error("bad token accepted")
	}
}

func TestUnknownDomainRejected(t *testing.T) {
	srv := NewServer(Credentials{"d": "tok"}, func(string) (*simnet.Switch, bool) { return nil, false })
	cConn, sConn := net.Pipe()
	go srv.HandleConn(sConn)
	if _, err := Dial(simnet.NewSwitch("c"), "d", "tok", cConn); err == nil {
		t.Error("domain without network accepted")
	}
}

func TestBadMagicRejected(t *testing.T) {
	srv := NewServer(Credentials{}, func(string) (*simnet.Switch, bool) { return nil, false })
	cConn, sConn := net.Pipe()
	errc := make(chan error, 1)
	go func() {
		_, err := srv.HandleConn(sConn)
		errc <- err
	}()
	go io.Copy(io.Discard, cConn) // drain the rejection so the pipe write completes
	cConn.Write([]byte("GARBAG")) // exactly magic-length, wrong bytes
	if err := <-errc; err == nil {
		t.Error("bad magic accepted")
	}
}

func TestCloseTearsDownPort(t *testing.T) {
	plantNet := simnet.NewSwitch("vmnet0")
	clientNet := simnet.NewSwitch("lan")
	sb, cb := bridgePair(t, plantNet, clientNet, "d")
	before := plantNet.Ports()
	sb.Close()
	sb.Wait()
	if plantNet.Ports() != before-1 {
		t.Errorf("plant ports %d → %d", before, plantNet.Ports())
	}
	// Closing one side unblocks the peer's reader too.
	cb.Wait()
}

func TestServeOverTCP(t *testing.T) {
	plantNet := simnet.NewSwitch("vmnet0")
	srv := NewServer(Credentials{"ufl.edu": "tok"}, func(d string) (*simnet.Switch, bool) {
		return plantNet, d == "ufl.edu"
	})
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	go srv.Serve(l)
	defer srv.Close()

	conn, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	clientNet := simnet.NewSwitch("lan")
	b, err := Dial(clientNet, "ufl.edu", "tok", conn)
	if err != nil {
		t.Fatal(err)
	}
	defer b.Close()

	ws := clientNet.Attach("ws")
	vm := plantNet.Attach("vm")
	ws.Send(simnet.Frame{Src: simnet.MAC{9}, Dst: simnet.Broadcast, Payload: []byte("over-tcp")})
	waitFor(t, "frame over real TCP", func() bool { return vm.Pending() > 0 })
	f, _ := vm.Poll()
	if string(f.Payload) != "over-tcp" {
		t.Errorf("payload %q", f.Payload)
	}
}

func TestOversizeFrameDropsBridge(t *testing.T) {
	plantNet := simnet.NewSwitch("vmnet0")
	clientNet := simnet.NewSwitch("lan")
	sb, cb := bridgePair(t, plantNet, clientNet, "d")
	defer sb.Close()
	vm := plantNet.Attach("vm")
	// Oversize payload: writeFrame refuses and the bridge closes rather
	// than corrupting the stream.
	vm.Send(simnet.Frame{Src: simnet.MAC{1}, Dst: simnet.Broadcast, Payload: make([]byte, maxFramePayload+1)})
	waitFor(t, "bridge to close", func() bool {
		return vm.Send(simnet.Frame{Src: simnet.MAC{1}, Dst: simnet.Broadcast}) == nil &&
			func() bool { sb.mu.Lock(); defer sb.mu.Unlock(); return sb.closed }()
	})
	cb.Close()
}
