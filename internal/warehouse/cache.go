package warehouse

import (
	"bytes"
	"container/list"
	"encoding/xml"
	"fmt"

	"vmplants/internal/core"
	"vmplants/internal/fault"
)

// DefaultCloneCacheSize is how many golden images' clone contexts the
// warehouse keeps hot by default. Sites publish a handful of golden
// machines (the paper's experiments use three), so a small cache holds
// the whole working set; a capacity well below the published-image
// count exercises eviction.
const DefaultCloneCacheSize = 8

// CloneContext is everything the production line needs to start cloning
// a golden image beyond the image object itself: the parsed XML
// descriptor and the extent metadata (paths and total size) that the
// cloning loop walks. Building one means re-encoding and re-parsing the
// descriptor and stat-ing every extent file — the per-clone "open the
// golden machine" work the clone cache exists to skip.
type CloneContext struct {
	Image       *Image
	Desc        Descriptor
	ExtentPaths []string
	ExtentBytes int64 // total size of the extent files
	StateBytes  int64 // redo log + memory image copied per clone
	// Epoch is the image's integrity epoch at fill time; VerifyClone
	// compares it after the state copy so a quarantine/repair landing
	// mid-clone fails the creation over instead of resuming it.
	Epoch int64
}

// cloneCache is an LRU over recently cloned images' CloneContexts. It
// is touched only by kernel processes (which the kernel serializes) and
// by setup code before Run, so it needs no lock; hit/miss counters are
// the warehouse's telemetry instruments.
type cloneCache struct {
	cap     int
	order   *list.List               // front = most recently used
	entries map[string]*list.Element // image name → element holding *CloneContext
}

func newCloneCache(capacity int) *cloneCache {
	if capacity <= 0 {
		capacity = DefaultCloneCacheSize
	}
	return &cloneCache{
		cap:     capacity,
		order:   list.New(),
		entries: make(map[string]*list.Element),
	}
}

// get returns the cached context and marks it most recently used.
func (c *cloneCache) get(name string) (*CloneContext, bool) {
	el, ok := c.entries[name]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*CloneContext), true
}

// put inserts a context, evicting the least recently used entry when
// the cache is full. It returns the evicted image name ("" when none).
func (c *cloneCache) put(name string, ctx *CloneContext) string {
	if el, ok := c.entries[name]; ok {
		el.Value = ctx
		c.order.MoveToFront(el)
		return ""
	}
	evicted := ""
	if c.order.Len() >= c.cap {
		tail := c.order.Back()
		ev := tail.Value.(*CloneContext)
		evicted = ev.Image.Name
		c.order.Remove(tail)
		delete(c.entries, evicted)
	}
	c.entries[name] = c.order.PushFront(ctx)
	return evicted
}

// drop removes an entry (image retired or republished).
func (c *cloneCache) drop(name string) {
	if el, ok := c.entries[name]; ok {
		c.order.Remove(el)
		delete(c.entries, name)
	}
}

// keys lists cached image names from most to least recently used.
func (c *cloneCache) keys() []string {
	out := make([]string, 0, c.order.Len())
	for el := c.order.Front(); el != nil; el = el.Next() {
		out = append(out, el.Value.(*CloneContext).Image.Name)
	}
	return out
}

// SetCloneCacheSize resizes the hot clone-context cache, dropping all
// current entries. Intended for setup code and tests.
func (w *Warehouse) SetCloneCacheSize(capacity int) {
	w.cache = newCloneCache(capacity)
	w.gCacheSize.Set(0)
}

// CacheKeys lists the cached images from most to least recently used —
// eviction order read back-to-front. For tests and debug endpoints.
func (w *Warehouse) CacheKeys() []string { return w.cache.keys() }

// buildCloneContext does the uncached per-clone open: serialize the
// image's descriptor, parse it back (exactly what a plant reading
// descriptor.xml off the warehouse volume does), and walk the extent
// metadata.
func (w *Warehouse) buildCloneContext(im *Image) (*CloneContext, error) {
	var buf bytes.Buffer
	if err := xml.NewEncoder(&buf).Encode(im.Descriptor()); err != nil {
		return nil, fmt.Errorf("warehouse: descriptor for %q: %w", im.Name, err)
	}
	desc, _, err := ParseDescriptor(buf.Bytes())
	if err != nil {
		return nil, err
	}
	ctx := &CloneContext{Image: im, Desc: desc}
	for _, p := range im.ExtentPaths {
		n, err := w.vol.Stat(p)
		if err != nil {
			return nil, fmt.Errorf("warehouse: extent of %q: %w", im.Name, err)
		}
		ctx.ExtentPaths = append(ctx.ExtentPaths, p)
		ctx.ExtentBytes += n
	}
	ctx.StateBytes = im.Disk.RedoBytes() + im.MemImageBytes()
	return ctx, nil
}

// OpenClone resolves a golden image for cloning through the hot cache:
// a hit skips the descriptor re-parse and extent metadata walk a cold
// open pays. No virtual time is charged either way — descriptor work is
// daemon CPU, not simulated state I/O — so cached and uncached opens
// leave creation timing byte-identical; the cache buys real (wall
// clock) work and the hit/miss counters feed the pipeline experiment.
//
// Every open refuses quarantined images with a transient error (the
// shop re-bids elsewhere). A cache miss additionally verifies the
// image's recorded checksums against the volume — the PR 3 cache is
// what amortizes integrity: verify once per fill, not per clone. The
// check is a metadata compare (no data movement), preserving the
// zero-virtual-time contract above. The clone read is also where a
// corrupt-extent fault surfaces, atomically with its detection.
func (w *Warehouse) OpenClone(name string) (*CloneContext, error) {
	im, ok := w.Lookup(name)
	if !ok {
		return nil, fmt.Errorf("warehouse: no image %q", name)
	}
	if w.IsQuarantined(name) {
		return nil, fmt.Errorf("warehouse: image %q is quarantined: %w", name, core.ErrTransient)
	}
	if ctx, ok := w.cache.get(name); ok {
		w.mCacheHits.Inc()
		return ctx, nil
	}
	w.mCacheMisses.Inc()
	if w.faults.Should(integritySite, fault.CorruptExtent, "clone") {
		w.corruptPath(corruptTarget(im))
	}
	if bad := w.badArtifacts(im); len(bad) > 0 {
		w.detect(im, bad, "clone")
		return nil, fmt.Errorf("warehouse: image %q failed checksum verification (%s): %w",
			name, bad[0], core.ErrTransient)
	}
	ctx, err := w.buildCloneContext(im)
	if err != nil {
		return nil, err
	}
	ctx.Epoch = im.epoch
	w.cache.put(name, ctx)
	w.gCacheSize.Set(int64(w.cache.order.Len()))
	return ctx, nil
}

// CacheStats reports cumulative clone-cache hits and misses.
func (w *Warehouse) CacheStats() (hits, misses int64) {
	return w.mCacheHits.Value(), w.mCacheMisses.Value()
}
