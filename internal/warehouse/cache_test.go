package warehouse

import (
	"fmt"
	"reflect"
	"testing"

	"vmplants/internal/telemetry"
)

// publishN publishes n golden images named g0..g(n-1).
func publishN(t *testing.T, w *Warehouse, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		im, err := BuildGolden(fmt.Sprintf("g%d", i), hw(), BackendVMware, history())
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Publish(im); err != nil {
			t.Fatal(err)
		}
	}
}

func TestOpenCloneHitMiss(t *testing.T) {
	w := newWarehouse()
	hub := telemetry.New()
	w.SetTelemetry(hub)
	publishN(t, w, 1)

	ctx, err := w.OpenClone("g0")
	if err != nil {
		t.Fatal(err)
	}
	if ctx.Image.Name != "g0" {
		t.Errorf("image = %q", ctx.Image.Name)
	}
	if ctx.Desc.Name != "g0" || ctx.Desc.MemoryMB != 64 {
		t.Errorf("descriptor = %+v", ctx.Desc)
	}
	if len(ctx.ExtentPaths) != DiskSpanFiles {
		t.Errorf("%d extent paths, want %d", len(ctx.ExtentPaths), DiskSpanFiles)
	}
	if ctx.ExtentBytes != int64(hw().DiskMB)*1024*1024 {
		t.Errorf("extent bytes = %d", ctx.ExtentBytes)
	}
	again, err := w.OpenClone("g0")
	if err != nil {
		t.Fatal(err)
	}
	if again != ctx {
		t.Error("second open did not return the cached context")
	}
	if hits, misses := w.CacheStats(); hits != 1 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 1/1", hits, misses)
	}
	if _, err := w.OpenClone("nope"); err == nil {
		t.Error("open of unpublished image succeeded")
	}
}

func TestCloneCacheLRUEviction(t *testing.T) {
	w := newWarehouse()
	w.SetTelemetry(telemetry.New())
	w.SetCloneCacheSize(3)
	publishN(t, w, 5)

	for _, n := range []string{"g0", "g1", "g2"} {
		if _, err := w.OpenClone(n); err != nil {
			t.Fatal(err)
		}
	}
	// Most→least recent: g2 g1 g0.
	if got := w.CacheKeys(); !reflect.DeepEqual(got, []string{"g2", "g1", "g0"}) {
		t.Fatalf("cache order %v", got)
	}
	// Touch g0 — it moves to the front.
	if _, err := w.OpenClone("g0"); err != nil {
		t.Fatal(err)
	}
	if got := w.CacheKeys(); !reflect.DeepEqual(got, []string{"g0", "g2", "g1"}) {
		t.Fatalf("cache order after touch %v", got)
	}
	// Insert g3: g1 is now least recently used and must be the victim.
	if _, err := w.OpenClone("g3"); err != nil {
		t.Fatal(err)
	}
	if got := w.CacheKeys(); !reflect.DeepEqual(got, []string{"g3", "g0", "g2"}) {
		t.Fatalf("cache order after eviction %v", got)
	}
	// Insert g4: g2 goes next — strict recency order, not insertion order.
	if _, err := w.OpenClone("g4"); err != nil {
		t.Fatal(err)
	}
	if got := w.CacheKeys(); !reflect.DeepEqual(got, []string{"g4", "g3", "g0"}) {
		t.Fatalf("cache order after second eviction %v", got)
	}
	// A re-open of an evicted image is a miss that re-builds the context.
	if _, err := w.OpenClone("g1"); err != nil {
		t.Fatal(err)
	}
	if hits, misses := w.CacheStats(); hits != 1 || misses != 6 {
		t.Errorf("hits=%d misses=%d, want 1/6", hits, misses)
	}
}

func TestCloneCacheInvalidatedOnRemove(t *testing.T) {
	w := newWarehouse()
	publishN(t, w, 2)
	if _, err := w.OpenClone("g0"); err != nil {
		t.Fatal(err)
	}
	if err := w.Remove("g0"); err != nil {
		t.Fatal(err)
	}
	if got := w.CacheKeys(); len(got) != 0 {
		t.Errorf("cache still holds %v after Remove", got)
	}
	if _, err := w.OpenClone("g0"); err == nil {
		t.Error("open of removed image succeeded")
	}
}
