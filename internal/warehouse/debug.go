package warehouse

import (
	"encoding/json"
	"net/http"
)

// quarantineEntry is the JSON shape of one quarantined image on the
// debug endpoint.
type quarantineEntry struct {
	Image  string `json:"image"`
	Reason string `json:"reason"`
}

// DebugHandler serves the warehouse's integrity state as JSON — the
// current quarantine list with reasons. Only quarantine state is
// exposed: it lives under its own mutex precisely so out-of-kernel
// readers like this handler never race the kernel-owned image maps.
func (w *Warehouse) DebugHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		entries := []quarantineEntry{}
		for _, name := range w.Quarantined() {
			reason, _ := w.QuarantineReason(name)
			entries = append(entries, quarantineEntry{Image: name, Reason: reason})
		}
		rw.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		enc.Encode(struct {
			Quarantine []quarantineEntry `json:"quarantine"`
		}{entries})
	})
}
