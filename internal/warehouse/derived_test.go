package warehouse

import (
	"errors"
	"strings"
	"testing"
	"time"

	"vmplants/internal/actions"
	"vmplants/internal/dag"
	"vmplants/internal/telemetry"
)

func seedImage(t *testing.T, w *Warehouse, name string) *Image {
	t.Helper()
	im, err := BuildGolden(name, hw(), BackendVMware, history())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(im); err != nil {
		t.Fatal(err)
	}
	return im
}

func derivedOf(t *testing.T, parent *Image, name string, extra ...string) *Image {
	t.Helper()
	performed := append([]dag.Action{}, parent.Performed...)
	for _, pkg := range extra {
		performed = append(performed, act(actions.OpInstallPackage, "name", pkg))
	}
	im, err := BuildDerived(name, parent, performed)
	if err != nil {
		t.Fatal(err)
	}
	return im
}

// Regression (leak bugfix): a descriptor encode failure during Publish
// must leave the volume untouched and the image unregistered. The
// pre-fix code laid every state file down before encoding, leaking them
// on failure.
func TestPublishEncodeFailureLeavesVolumeUntouched(t *testing.T) {
	orig := encodeDescriptor
	encodeDescriptor = func(Descriptor) ([]byte, error) {
		return nil, errors.New("forced encode failure")
	}
	defer func() { encodeDescriptor = orig }()

	w := newWarehouse()
	im, err := BuildGolden("leaky", hw(), BackendVMware, history())
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Publish(im); err == nil || !strings.Contains(err.Error(), "forced encode failure") {
		t.Fatalf("Publish error = %v", err)
	}
	if files := w.Volume().List(); len(files) != 0 {
		t.Errorf("encode failure leaked %d state files: %v", len(files), files)
	}
	if _, ok := w.Lookup("leaky"); ok {
		t.Error("failed publish registered the image")
	}
	if w.BytesUsed() != 0 {
		t.Errorf("failed publish accounted %d bytes", w.BytesUsed())
	}
}

// Same ordering guarantee on the derived-publish path.
func TestPublishDerivedEncodeFailureLeavesVolumeUntouched(t *testing.T) {
	w := newWarehouse()
	parent := seedImage(t, w, "seed")
	before := len(w.Volume().List())

	orig := encodeDescriptor
	encodeDescriptor = func(Descriptor) ([]byte, error) {
		return nil, errors.New("forced encode failure")
	}
	defer func() { encodeDescriptor = orig }()

	im := derivedOf(t, parent, "derived-x", "matlab")
	if err := w.PublishDerived(im, 0); err == nil {
		t.Fatal("PublishDerived succeeded with a failing encoder")
	}
	if got := len(w.Volume().List()); got != before {
		t.Errorf("failed derived publish changed the volume: %d files, was %d", got, before)
	}
	if parent.Refs() != 0 {
		t.Errorf("failed derived publish left a parent reference: %d", parent.Refs())
	}
}

// Regression (Remove wedge bugfix): a removal retried after a partial
// delete — some state files already gone — must sweep the remaining
// files and unregister the image. The pre-fix code aborted on the first
// missing path, leaving the image permanently stuck: registered, but
// impossible to remove.
func TestRemoveRetriesAfterPartialDelete(t *testing.T) {
	w := newWarehouse()
	im := seedImage(t, w, "torn")

	// Simulate the first, interrupted removal: one state file is gone.
	if err := w.Volume().Delete(im.RedoPath); err != nil {
		t.Fatal(err)
	}
	if err := w.Remove("torn"); err != nil {
		t.Fatalf("retried removal failed: %v", err)
	}
	if files := w.Volume().List(); len(files) != 0 {
		t.Errorf("removal left %d files: %v", len(files), files)
	}
	if _, ok := w.Lookup("torn"); ok {
		t.Error("image still registered after removal")
	}
	if err := w.Remove("torn"); err == nil || !strings.Contains(err.Error(), "no image") {
		t.Errorf("second removal error = %v", err)
	}
}

func TestPublishDerivedSharesParentExtents(t *testing.T) {
	w := newWarehouse()
	parent := seedImage(t, w, "seed")
	seedBytes := w.BytesUsed()
	seedFiles := len(w.Volume().List())
	extentPhys := w.ExtentStatsNow().PhysicalBytes

	im := derivedOf(t, parent, "derived-a", "matlab")
	if err := w.PublishDerived(im, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if parent.Refs() != 1 {
		t.Errorf("parent refs = %d, want 1 (held by the derived image)", parent.Refs())
	}
	if got := w.DerivedCount(); got != 1 {
		t.Errorf("DerivedCount = %d", got)
	}
	// The checkpoint shares the parent's extents: it reads base blocks
	// through them and lays no extent files of its own.
	if len(im.ExtentPaths) != len(parent.ExtentPaths) {
		t.Errorf("derived extents %d, parent %d", len(im.ExtentPaths), len(parent.ExtentPaths))
	}
	for i, p := range im.ExtentPaths {
		if p != parent.ExtentPaths[i] {
			t.Errorf("extent %d: %q != parent's %q", i, p, parent.ExtentPaths[i])
		}
	}
	// Only config, redo, mem image and descriptor are new on the volume.
	if got := len(w.Volume().List()); got != seedFiles+4 {
		t.Errorf("derived publish laid %d files, want 4", got-seedFiles)
	}
	added := w.BytesUsed() - seedBytes
	if added != im.Bytes() || added <= 0 {
		t.Errorf("accounted %d bytes, image says %d", added, im.Bytes())
	}
	// ...and no new extent state: the parent's extents are shared, not
	// copied, so the content store's footprint is untouched.
	if st := w.ExtentStatsNow(); st.PhysicalBytes != extentPhys {
		t.Errorf("derived publish changed extent store physical bytes: %d -> %d",
			extentPhys, st.PhysicalBytes)
	}
	// Removal releases the parent reference and the accounting.
	if err := w.Remove("derived-a"); err != nil {
		t.Fatal(err)
	}
	if parent.Refs() != 0 {
		t.Errorf("parent refs = %d after removing the derived image", parent.Refs())
	}
	if w.BytesUsed() != seedBytes {
		t.Errorf("bytes used %d, want %d after removal", w.BytesUsed(), seedBytes)
	}
	if got := len(w.Volume().List()); got != seedFiles {
		t.Errorf("volume has %d files, want %d: parent extents must survive", got, seedFiles)
	}
}

func TestPublishDerivedValidation(t *testing.T) {
	w := newWarehouse()
	parent := seedImage(t, w, "seed")

	// Not marked derived.
	plain := derivedOf(t, parent, "plain", "matlab")
	plain.Derived = false
	if err := w.PublishDerived(plain, 0); err == nil {
		t.Error("accepted an image not marked derived")
	}
	// Unknown parent.
	orphan := derivedOf(t, parent, "orphan", "matlab")
	orphan.Parent = "no-such-seed"
	if err := w.PublishDerived(orphan, 0); err == nil {
		t.Error("accepted a derived image with no parent")
	}
	// Derived-of-derived is forbidden: checkpoints root at seeds.
	first := derivedOf(t, parent, "first", "matlab")
	if err := w.PublishDerived(first, 0); err != nil {
		t.Fatal(err)
	}
	second := derivedOf(t, parent, "second", "matlab", "octave")
	second.Parent = "first"
	if err := w.PublishDerived(second, 0); err == nil {
		t.Error("accepted a derived image rooted at another derived image")
	}
	// Seed-path Publish refuses derived images.
	stray := derivedOf(t, parent, "stray", "gnuplot")
	if err := w.Publish(stray); err == nil {
		t.Error("Publish accepted a derived image")
	}
}

func TestRetirementEvictsLowestUtility(t *testing.T) {
	w := newWarehouse()
	parent := seedImage(t, w, "seed")

	a := derivedOf(t, parent, "derived-a", "matlab")
	if err := w.PublishDerived(a, 1*time.Second); err != nil {
		t.Fatal(err)
	}
	b := derivedOf(t, parent, "derived-b", "octave")
	if err := w.PublishDerived(b, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// a is the more useful image: two high-score uses vs one.
	w.NoteUse("derived-a", 3, 3*time.Second)
	w.NoteUse("derived-a", 3, 4*time.Second)
	w.NoteUse("derived-b", 3, 5*time.Second)

	// No room for a third derived image: the budget fits the current
	// residents plus 1 MB of slack (snapshot-chain overhead grows each
	// checkpoint slightly), so the next publish must evict exactly one.
	w.SetCapacity(w.BytesUsed() + 1<<20)
	c := derivedOf(t, parent, "derived-c", "gnuplot")
	if err := w.PublishDerived(c, 6*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Lookup("derived-b"); ok {
		t.Error("derived-b (lowest utility) survived")
	}
	if _, ok := w.Lookup("derived-a"); !ok {
		t.Error("derived-a (highest utility) was evicted")
	}
	if w.Retirements() != 1 {
		t.Errorf("retirements = %d", w.Retirements())
	}
	if w.BytesUsed() > w.Capacity() {
		t.Errorf("bytes used %d exceed capacity %d", w.BytesUsed(), w.Capacity())
	}
	// Seed is untouchable regardless of pressure.
	if _, ok := w.Lookup("seed"); !ok {
		t.Error("seed image was evicted")
	}
}

func TestRetirementBreaksScoreTiesTowardLRU(t *testing.T) {
	w := newWarehouse()
	parent := seedImage(t, w, "seed")
	a := derivedOf(t, parent, "derived-a", "matlab")
	if err := w.PublishDerived(a, 1*time.Second); err != nil {
		t.Fatal(err)
	}
	b := derivedOf(t, parent, "derived-b", "octave")
	if err := w.PublishDerived(b, 2*time.Second); err != nil {
		t.Fatal(err)
	}
	// Equal scores; a used longer ago than b.
	w.NoteUse("derived-a", 2, 3*time.Second)
	w.NoteUse("derived-b", 2, 9*time.Second)

	w.SetCapacity(w.BytesUsed() + 1<<20)
	c := derivedOf(t, parent, "derived-c", "gnuplot")
	if err := w.PublishDerived(c, 10*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, ok := w.Lookup("derived-a"); ok {
		t.Error("least-recently-used tie loser survived")
	}
	if _, ok := w.Lookup("derived-b"); !ok {
		t.Error("recently used image was evicted on a tie")
	}
}

func TestRetirementNeverEvictsReferencedImages(t *testing.T) {
	w := newWarehouse()
	parent := seedImage(t, w, "seed")
	a := derivedOf(t, parent, "derived-a", "matlab")
	if err := w.PublishDerived(a, 1*time.Second); err != nil {
		t.Fatal(err)
	}
	a.Ref() // a live clone of the derived image

	w.SetCapacity(w.BytesUsed())
	b := derivedOf(t, parent, "derived-b", "octave")
	err := w.PublishDerived(b, 2*time.Second)
	if err == nil {
		t.Fatal("publish succeeded with every derived image referenced")
	}
	if !strings.Contains(err.Error(), "referenced") {
		t.Errorf("error = %v", err)
	}
	if _, ok := w.Lookup("derived-a"); !ok {
		t.Error("referenced derived image was evicted")
	}
	// Refused publication must not leak state files.
	if _, ok := w.Lookup("derived-b"); ok {
		t.Error("refused image registered")
	}
}

// Regression (quarantined-use bugfix): NoteUse must not credit utility
// to a quarantined image — it is unservable, so a "use" recorded while
// it is out of service (a racing creation that bound just before the
// quarantine landed) would inflate its retirement score with work it
// never saved.
func TestNoteUseIgnoredDuringQuarantine(t *testing.T) {
	w := newWarehouse()
	parent := seedImage(t, w, "seed")
	a := derivedOf(t, parent, "derived-a", "matlab")
	if err := w.PublishDerived(a, 1*time.Second); err != nil {
		t.Fatal(err)
	}
	w.NoteUse("derived-a", 2, 2*time.Second)
	w.Quarantine("derived-a", "operator hold")
	w.NoteUse("derived-a", 5, 3*time.Second)
	if a.Uses() != 1 || a.Utility() != 2 {
		t.Errorf("uses=%d utility=%d; a use was credited during quarantine", a.Uses(), a.Utility())
	}
	// Back in service, uses count again.
	w.Unquarantine("derived-a")
	w.NoteUse("derived-a", 5, 4*time.Second)
	if a.Uses() != 2 || a.Utility() != 7 {
		t.Errorf("uses=%d utility=%d after unquarantine, want 2/7", a.Uses(), a.Utility())
	}
}

func TestDerivedNameIsHistoryFingerprint(t *testing.T) {
	h1 := history()
	h2 := append(append([]dag.Action{}, history()...), act(actions.OpInstallPackage, "name", "matlab"))

	a := DerivedName(BackendVMware, h1)
	if b := DerivedName(BackendVMware, h1); b != a {
		t.Errorf("same history, different names: %q %q", a, b)
	}
	if c := DerivedName(BackendVMware, h2); c == a {
		t.Errorf("different histories collide on %q", a)
	}
	if u := DerivedName(BackendUML, h1); u == a {
		t.Error("backend not part of the name")
	}
	if !strings.HasPrefix(a, "derived-"+BackendVMware+"-") {
		t.Errorf("name %q lacks the derived prefix", a)
	}
}

// Regression (stale gauge bugfix): resizing the clone cache drops every
// entry, so the "warehouse.cache_size" gauge must drop to zero with
// them. The pre-fix code left it at the old entry count until the next
// OpenClone.
func TestSetCloneCacheSizeResetsGauge(t *testing.T) {
	w := newWarehouse()
	hub := telemetry.New()
	w.SetTelemetry(hub)
	seedImage(t, w, "g0")
	seedImage(t, w, "g1")
	for _, n := range []string{"g0", "g1"} {
		if _, err := w.OpenClone(n); err != nil {
			t.Fatal(err)
		}
	}
	gauge := hub.Gauge("warehouse.cache_size")
	if gauge.Value() != 2 {
		t.Fatalf("cache_size = %d before resize", gauge.Value())
	}
	w.SetCloneCacheSize(16)
	if gauge.Value() != 0 {
		t.Errorf("cache_size = %d after resize, want 0 (cache was emptied)", gauge.Value())
	}
	if len(w.CacheKeys()) != 0 {
		t.Errorf("cache still holds %v", w.CacheKeys())
	}
}
