// Durable warehouse state: catalog and quarantine events journaled to
// the shared control-plane event log, and a Restart path that replays
// them.
//
// The warehouse's image files live on a volume, so the catalog itself
// survives a daemon death. What used to die was everything in process
// memory: the quarantine set, the scrubber's repair counters, the hot
// clone cache. Losing the clone cache costs latency; losing the
// quarantine set is amnesia — a restarted daemon would happily match a
// corrupted image it had already taken out of service. With a journal
// attached, every quarantine entry/exit and every publish/retire is
// appended as a typed record, and Restart rebuilds the quarantine set
// by replay (for images still in the catalog) instead of forgetting it.
package warehouse

import (
	"vmplants/internal/journal"
)

// SetJournal attaches the warehouse's durable event log. Catalog and
// quarantine transitions are journaled from now on; Restart replays
// them. Warehouse mutations happen outside kernel processes (publish
// is an off-line installer step, quarantine decisions ride scrubber
// bookkeeping), so appends carry no virtual-time cost and are durable
// immediately.
//
// Attaching to a warehouse with an existing catalog imports it: any
// cataloged image the journal's publish/retire history does not know
// gets an image-publish record (origin "import"), so a later Restart's
// cross-check starts clean. Re-attaching an up-to-date journal is a
// no-op.
func (w *Warehouse) SetJournal(j *journal.Journal) {
	w.jnl = j
	if j == nil {
		return
	}
	published := make(map[string]bool)
	_, _ = j.Replay(func(r journal.Record) error {
		switch r.Kind {
		case journal.ImagePublish:
			published[r.Key] = true
		case journal.ImageRetire:
			delete(published, r.Key)
		}
		return nil
	})
	for _, name := range w.List() {
		if published[name] {
			continue
		}
		im := w.images[name]
		fields := map[string]string{"origin": "import"}
		if im.Derived {
			fields["parent"] = im.Parent
		}
		w.journalEvent(journal.ImagePublish, name, fields)
		if !im.Derived {
			// Import the seed's extent references too, or a later
			// Restart's replay would see a catalog entry with no put
			// trail and rebuild the store short.
			base := im.Disk.Base()
			extent := base.SizeBytes() / int64(DiskSpanFiles)
			for i := 0; i < DiskSpanFiles; i++ {
				key := extentKey(extent, base.ExtentContentHash(i))
				w.journalEvent(journal.ExtentPut, keyString(key), map[string]string{
					"size": sizeString(extent),
					"hash": keyString(base.ExtentContentHash(i)),
				})
			}
		}
	}
}

// Journal returns the attached journal (nil when none).
func (w *Warehouse) Journal() *journal.Journal { return w.jnl }

// journalEvent appends one warehouse record (no-op without a journal).
func (w *Warehouse) journalEvent(kind journal.Kind, key string, fields map[string]string) {
	if w.jnl == nil {
		return
	}
	w.jnl.AppendSync(nil, journal.Record{Kind: kind, Key: key, Fields: fields})
}

// RestartStats reports what a warehouse restart rebuilt.
type RestartStats struct {
	// Replayed is how many journal records the replay scanned.
	Replayed int
	// TornTails is how many damaged records the replay truncated.
	TornTails int
	// QuarantineRestored is how many quarantine entries were rebuilt.
	QuarantineRestored int
	// CatalogMismatch counts disagreements between the journal's
	// publish/retire history and the catalog scanned from the volume —
	// zero on a healthy restart.
	CatalogMismatch int
	// ExtentRefsRebuilt is the extent-store reference count after replay
	// and reconciliation.
	ExtentRefsRebuilt int
	// ExtentOrphansReleased is how many replayed references belonged to
	// no cataloged image — the trail of a publish or retire the daemon
	// died inside — and were released during reconciliation.
	ExtentOrphansReleased int
}

// Restart models the warehouse daemon restarting: process memory — the
// quarantine set, the scrubber's repair counters, the hot clone cache —
// is gone, while the volume-backed catalog survives. With a journal
// attached, the quarantine set is rebuilt by replay (entries for images
// no longer in the catalog are skipped) and the journal's catalog
// history is cross-checked against the volume scan. Without one, this
// is exactly the amnesia the regression test documents: the quarantine
// set comes back empty.
func (w *Warehouse) Restart() RestartStats {
	w.qmu.Lock()
	w.quarantine = make(map[string]string)
	w.repairFails = make(map[string]int)
	w.qmu.Unlock()
	w.cache = newCloneCache(w.cache.cap)
	w.gCacheSize.Set(0)
	w.gQuarantine.Set(0)

	var st RestartStats
	if w.jnl == nil {
		return st
	}
	published := make(map[string]bool)
	restored := make(map[string]string)
	extents := make(map[uint64]*extentEntry)
	rst, _ := w.jnl.Replay(func(r journal.Record) error {
		switch r.Kind {
		case journal.ImagePublish:
			published[r.Key] = true
		case journal.ImageRetire:
			delete(published, r.Key)
			delete(restored, r.Key)
		case journal.QuarantineEnter:
			restored[r.Key] = r.Field("reason")
		case journal.QuarantineExit:
			delete(restored, r.Key)
		case journal.ExtentPut:
			key, okK := parseHex(r.Key)
			size, okS := parseSize(r.Field("size"))
			hash, okH := parseHex(r.Field("hash"))
			if !okK || !okS || !okH {
				return nil // damaged fields; reconciliation squares it
			}
			e := extents[key]
			if e == nil {
				e = &extentEntry{size: size, hash: hash}
				extents[key] = e
			}
			e.refs++
		case journal.ExtentRelease:
			if key, ok := parseHex(r.Key); ok {
				if e := extents[key]; e != nil {
					e.refs--
				}
			}
		}
		return nil
	})
	st.Replayed = rst.Records
	st.TornTails = rst.TornTails
	for name := range published {
		if _, live := w.images[name]; !live {
			st.CatalogMismatch++
		}
	}
	for name := range w.images {
		if !published[name] {
			st.CatalogMismatch++
		}
	}
	w.qmu.Lock()
	for name, reason := range restored {
		im, live := w.images[name]
		if !live {
			continue
		}
		w.quarantine[name] = reason
		// Clone contexts opened before the restart must not resume from
		// a quarantined image: advance its integrity epoch, exactly as a
		// live Quarantine would.
		im.epoch++
		st.QuarantineRestored++
	}
	n := len(w.quarantine)
	w.qmu.Unlock()
	w.gQuarantine.Set(int64(n))
	st.ExtentRefsRebuilt, st.ExtentOrphansReleased = w.reconcileExtents(extents)
	return st
}
