package warehouse

import (
	"testing"

	"vmplants/internal/journal"
	"vmplants/internal/storage"
)

func testJournal(t *testing.T) *journal.Journal {
	t.Helper()
	vol := storage.NewVolume("whlog", storage.NewDevice("whlog-disk", 8<<20, 0))
	return journal.Open(vol, "journal/warehouse")
}

// Regression (quarantine amnesia): before the journal, a warehouse
// daemon restart forgot the quarantine set, so a corrupted image it had
// already taken out of service became matchable again. This test pins
// the broken behavior of a journal-less restart — it is the failure
// mode the journaled path below exists to fix.
func TestRestartWithoutJournalForgetsQuarantine(t *testing.T) {
	w := newWarehouse()
	im := seedImage(t, w, "amnesia")
	if !w.Quarantine(im.Name, "scrub: checksum mismatch") {
		t.Fatal("quarantine refused")
	}

	st := w.Restart()
	if st.Replayed != 0 || st.QuarantineRestored != 0 {
		t.Fatalf("journal-less restart replayed state: %+v", st)
	}
	if w.IsQuarantined(im.Name) {
		t.Fatal("quarantine survived without a journal — amnesia fixed at the wrong layer?")
	}
	// The amnesia in one line: the suspect image is matchable again.
	if got := len(w.Candidates(BackendVMware)); got != 1 {
		t.Fatalf("candidates = %d, want 1 (quarantined image visible again)", got)
	}
}

// The fix: with a journal attached, a quarantined image stays
// matcher-invisible across a daemon restart.
func TestQuarantineSurvivesRestart(t *testing.T) {
	w := newWarehouse()
	w.SetJournal(testJournal(t))
	good := seedImage(t, w, "clean")
	bad := seedImage(t, w, "suspect")
	if !w.Quarantine(bad.Name, "scrub: checksum mismatch on extent 0") {
		t.Fatal("quarantine refused")
	}
	epochBefore := bad.Epoch()

	st := w.Restart()
	if st.QuarantineRestored != 1 {
		t.Fatalf("QuarantineRestored = %d, want 1 (stats %+v)", st.QuarantineRestored, st)
	}
	if st.CatalogMismatch != 0 {
		t.Fatalf("CatalogMismatch = %d, want 0", st.CatalogMismatch)
	}
	if !w.IsQuarantined(bad.Name) {
		t.Fatal("quarantine lost across restart")
	}
	if reason, _ := w.QuarantineReason(bad.Name); reason != "scrub: checksum mismatch on extent 0" {
		t.Fatalf("quarantine reason = %q", reason)
	}
	if bad.Epoch() <= epochBefore {
		t.Fatal("integrity epoch did not advance on restore: stale clone contexts would verify")
	}
	cands := w.Candidates(BackendVMware)
	if len(cands) != 1 || cands[0].ID != good.Name {
		t.Fatalf("candidates = %v, want only %q", cands, good.Name)
	}

	// A repair after the restart clears it for good: a second restart
	// replays enter followed by exit and restores nothing.
	if !w.Unquarantine(bad.Name) {
		t.Fatal("unquarantine refused")
	}
	st = w.Restart()
	if st.QuarantineRestored != 0 {
		t.Fatalf("QuarantineRestored = %d after repair, want 0", st.QuarantineRestored)
	}
	if got := len(w.Candidates(BackendVMware)); got != 2 {
		t.Fatalf("candidates = %d after repair+restart, want 2", got)
	}
}

// A retired image's quarantine entry must not be resurrected, and the
// journal's publish/retire history must agree with the volume catalog.
func TestRestartSkipsRetiredImages(t *testing.T) {
	w := newWarehouse()
	w.SetJournal(testJournal(t))
	parent := seedImage(t, w, "parent")
	der := derivedOf(t, parent, "derived", "gcc")
	if err := w.PublishDerived(der, 0); err != nil {
		t.Fatal(err)
	}
	if !w.Quarantine(der.Name, "scrub: unrepairable") {
		t.Fatal("quarantine refused")
	}
	// The scrubber's give-up path: retire the unrepairable derived image.
	w.unregister(der)

	st := w.Restart()
	if st.QuarantineRestored != 0 {
		t.Fatalf("QuarantineRestored = %d, want 0 (image retired)", st.QuarantineRestored)
	}
	if st.CatalogMismatch != 0 {
		t.Fatalf("CatalogMismatch = %d, want 0", st.CatalogMismatch)
	}
	if w.IsQuarantined(der.Name) {
		t.Fatal("retired image resurrected into quarantine")
	}
}
