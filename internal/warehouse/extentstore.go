// Content-addressed extent store: PR 5 gave every disk extent a content
// checksum for verification; here those sums are promoted to identity.
// An extent's store key digests its (size, base-image content), so
// byte-identical extents — across seed publications, derived
// publications and replica mirrors — share one physical copy on the
// warehouse volume, under one canonical path, refcounted by the images
// that carry them.
//
// The sharing composes with the integrity machinery for free: the
// canonical path appears in every referencing image's Sums map, so a
// corruption detected on it quarantines every image whose state
// includes the poisoned extent (poison-by-content-key), the scrubber
// repairs the single shared copy once, and the replica mirrors one file
// per distinct extent instead of one per image.
//
// References are journaled (extent-put / extent-release) so a daemon
// killed between store operations leaves a trail Restart can replay:
// refcounts are rebuilt from the journal, cross-checked against the
// catalog, and orphaned references (a publish or retire that died
// half-way) are released — deleting the physical copy when the last
// reference goes.
package warehouse

import (
	"fmt"
	"strconv"
	"strings"

	"vmplants/internal/fault"
	"vmplants/internal/journal"
)

// extentEntry is one distinct extent held by the store.
type extentEntry struct {
	size int64
	hash uint64 // base-image content hash (vdisk.Image.ExtentContentHash)
	refs int
}

// extentStore maps content keys to refcounted entries. It is mutated
// only by warehouse operations (kernel-serialized or setup-time), so it
// needs no lock.
type extentStore struct {
	entries map[uint64]*extentEntry
}

func newExtentStore() *extentStore {
	return &extentStore{entries: make(map[uint64]*extentEntry)}
}

// extentKey derives the store key: a digest of size and content, so
// identity is exactly "same bytes".
func extentKey(size int64, hash uint64) uint64 {
	return artifactSum("extent", size, hash)
}

// extentPath is the canonical on-volume path of a stored extent.
func extentPath(key uint64) string {
	return fmt.Sprintf("extents/%016x.vmdk", key)
}

// keyString and sizeString are the journal-field encodings of extent
// identity (keys and hashes render like the canonical path's hex stem);
// parseHex and parseSize are their replay-side inverses.
func keyString(v uint64) string { return fmt.Sprintf("%016x", v) }
func sizeString(v int64) string { return fmt.Sprintf("%d", v) }

func parseHex(s string) (uint64, bool) {
	v, err := strconv.ParseUint(s, 16, 64)
	return v, err == nil
}

func parseSize(s string) (int64, bool) {
	v, err := strconv.ParseInt(s, 10, 64)
	return v, err == nil && v > 0
}

// parseExtentKey recovers the content key from a canonical extent path.
func parseExtentKey(path string) (uint64, bool) {
	if !strings.HasPrefix(path, "extents/") || !strings.HasSuffix(path, ".vmdk") {
		return 0, false
	}
	var key uint64
	if _, err := fmt.Sscanf(strings.TrimSuffix(strings.TrimPrefix(path, "extents/"), ".vmdk"),
		"%016x", &key); err != nil {
		return 0, false
	}
	return key, true
}

// acquireExtent takes one reference on the extent identified by
// (size, hash), laying the physical file down (and mirroring it to the
// replica) on the first reference, and journaling the put. It returns
// the canonical path the referencing image records.
func (w *Warehouse) acquireExtent(size int64, hash uint64) string {
	key := extentKey(size, hash)
	path := extentPath(key)
	e, ok := w.extents.entries[key]
	if !ok {
		e = &extentEntry{size: size, hash: hash}
		w.extents.entries[key] = e
		w.vol.WriteMetaSum(path, size, artifactSum(path, size, hash))
		w.mirrorExtent(key, e)
	}
	e.refs++
	w.journalEvent(journal.ExtentPut, keyString(key), map[string]string{
		"size": sizeString(size),
		"hash": keyString(hash),
	})
	w.updateExtentGauges()
	return path
}

// releaseExtent drops one reference, journaling the release; the last
// reference deletes the physical copy from the volume and the replica.
func (w *Warehouse) releaseExtent(key uint64) {
	e, ok := w.extents.entries[key]
	if !ok {
		return
	}
	e.refs--
	w.journalEvent(journal.ExtentRelease, keyString(key), nil)
	if e.refs <= 0 {
		path := extentPath(key)
		if w.vol.Exists(path) {
			_ = w.vol.Delete(path)
		}
		if w.replica != nil && w.replica.Exists(path) {
			_ = w.replica.Delete(path)
		}
		delete(w.extents.entries, key)
	}
	w.updateExtentGauges()
}

// releaseExtentPath releases one reference held under a canonical path
// (how unregister walks an image's ExtentPaths back into keys).
func (w *Warehouse) releaseExtentPath(path string) {
	if key, ok := parseExtentKey(path); ok {
		w.releaseExtent(key)
	}
}

// mirrorExtent lays one stored extent down on the replica volume with
// its canonical checksum (no-op without a replica).
func (w *Warehouse) mirrorExtent(key uint64, e *extentEntry) {
	if w.replica == nil {
		return
	}
	path := extentPath(key)
	w.replica.WriteMetaSum(path, e.size, artifactSum(path, e.size, e.hash))
}

// mirrorExtents mirrors every stored extent — how a freshly attached
// replica catches up (SetReplica).
func (w *Warehouse) mirrorExtents() {
	for key, e := range w.extents.entries {
		w.mirrorExtent(key, e)
	}
}

// ExtentStats is the dedup snapshot experiments and debug surfaces read.
type ExtentStats struct {
	// Entries is how many distinct extents the store holds.
	Entries int
	// Refs is the total reference count across entries.
	Refs int
	// LogicalBytes is what the referencing images would occupy without
	// dedup (refs × size); PhysicalBytes is what they actually occupy.
	LogicalBytes  int64
	PhysicalBytes int64
}

// SavedBytes is the volume space dedup is currently saving.
func (s ExtentStats) SavedBytes() int64 { return s.LogicalBytes - s.PhysicalBytes }

// DedupRatio is logical over physical bytes (1.0 = no sharing).
func (s ExtentStats) DedupRatio() float64 {
	if s.PhysicalBytes == 0 {
		return 1
	}
	return float64(s.LogicalBytes) / float64(s.PhysicalBytes)
}

// ExtentStatsNow snapshots the store.
func (w *Warehouse) ExtentStatsNow() ExtentStats {
	var st ExtentStats
	for _, e := range w.extents.entries {
		st.Entries++
		st.Refs += e.refs
		st.LogicalBytes += int64(e.refs) * e.size
		st.PhysicalBytes += e.size
	}
	return st
}

func (w *Warehouse) updateExtentGauges() {
	st := w.ExtentStatsNow()
	w.gExtentEntries.Set(int64(st.Entries))
	w.gExtentLogical.Set(st.LogicalBytes)
	w.gExtentPhysical.Set(st.PhysicalBytes)
	w.gBytesUsed.Set(w.BytesUsed())
}

// killpoint is a kill -9 injection seam for the crash-restart sweep:
// warehouse operations that take or release several store references
// check it between steps (op "publish:3" = die before the fourth
// acquire), modelling a daemon killed mid-operation.
func (w *Warehouse) killpoint(op string, i int) bool {
	return w.faults.Should(integritySite, fault.DaemonKill, fmt.Sprintf("%s:%d", op, i))
}

// reconcileExtents rebuilds the store from a journal replay's put/release
// trail and squares it against the catalog: every live seed image's
// extent slots are the references that should exist. References beyond
// them are orphans from a publish or retire that died half-way, and are
// released; shortfalls (a cataloged seed whose puts never made the
// journal) are re-acquired. Both directions journal compensating
// records, so the next replay starts balanced. Returns (refs rebuilt,
// orphans released).
func (w *Warehouse) reconcileExtents(replayed map[uint64]*extentEntry) (rebuilt, orphans int) {
	type want struct {
		refs int
		size int64
		hash uint64
	}
	expected := make(map[uint64]*want)
	for _, name := range w.List() {
		im := w.images[name]
		if im.Derived {
			continue // derived images reference extents through their parent
		}
		base := im.Disk.Base()
		extent := base.SizeBytes() / int64(DiskSpanFiles)
		for i := 0; i < DiskSpanFiles; i++ {
			hash := base.ExtentContentHash(i)
			key := extentKey(extent, hash)
			if expected[key] == nil {
				expected[key] = &want{size: extent, hash: hash}
			}
			expected[key].refs++
		}
	}
	w.extents.entries = make(map[uint64]*extentEntry)
	for key, e := range replayed {
		if e.refs <= 0 {
			continue
		}
		w.extents.entries[key] = &extentEntry{size: e.size, hash: e.hash, refs: e.refs}
	}
	for key, e := range w.extents.entries {
		target := 0
		if ex := expected[key]; ex != nil {
			target = ex.refs
		}
		for e.refs > target {
			w.releaseExtent(key)
			orphans++
		}
	}
	for key, ex := range expected {
		have := 0
		if e := w.extents.entries[key]; e != nil {
			have = e.refs
		}
		for ; have < ex.refs; have++ {
			w.acquireExtent(ex.size, ex.hash)
		}
	}
	for _, e := range w.extents.entries {
		rebuilt += e.refs
	}
	w.updateExtentGauges()
	return rebuilt, orphans
}
