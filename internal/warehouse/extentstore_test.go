package warehouse

import (
	"fmt"
	"strings"
	"testing"

	"vmplants/internal/fault"
)

// Two seeds with byte-identical extents (both freshly installed sparse
// images of the same size) must share physical extent storage: the
// content-addressed store holds one copy per distinct extent, refcounted
// by the images referencing it.
func TestExtentDedupAcrossSeeds(t *testing.T) {
	w := newWarehouse()
	a := seedImage(t, w, "seed-a")
	oneSeed := w.ExtentStatsNow()
	if oneSeed.Entries == 0 || oneSeed.Refs != DiskSpanFiles {
		t.Fatalf("one seed: %+v, want %d refs", oneSeed, DiskSpanFiles)
	}
	b := seedImage(t, w, "seed-b")
	st := w.ExtentStatsNow()
	if st.Entries != oneSeed.Entries {
		t.Errorf("second identical seed added entries: %d -> %d", oneSeed.Entries, st.Entries)
	}
	if st.PhysicalBytes != oneSeed.PhysicalBytes {
		t.Errorf("second identical seed added physical bytes: %d -> %d",
			oneSeed.PhysicalBytes, st.PhysicalBytes)
	}
	if st.Refs != 2*DiskSpanFiles {
		t.Errorf("refs = %d, want %d", st.Refs, 2*DiskSpanFiles)
	}
	if st.DedupRatio() < 2 {
		t.Errorf("dedup ratio %.2f, want >= 2 for two identical seeds", st.DedupRatio())
	}
	for i, p := range a.ExtentPaths {
		if p != b.ExtentPaths[i] {
			t.Errorf("slot %d: %q != %q — identical content, different canonical path", i, p, b.ExtentPaths[i])
		}
	}

	// Removing one referencing seed must not touch the shared copy...
	if err := w.Remove("seed-a"); err != nil {
		t.Fatal(err)
	}
	if got := w.ExtentStatsNow(); got.Refs != DiskSpanFiles || got.Entries != st.Entries {
		t.Errorf("after first removal: %+v", got)
	}
	for _, p := range b.ExtentPaths {
		if !w.Volume().Exists(p) {
			t.Errorf("shared extent %s deleted while seed-b still references it", p)
		}
	}
	// ...and removing the last reference deletes it.
	if err := w.Remove("seed-b"); err != nil {
		t.Fatal(err)
	}
	if got := w.ExtentStatsNow(); got.Entries != 0 || got.Refs != 0 {
		t.Errorf("store not empty after last removal: %+v", got)
	}
	if files := w.Volume().List(); len(files) != 0 {
		t.Errorf("volume holds %d files after all removals: %v", len(files), files)
	}
	if w.BytesUsed() != 0 {
		t.Errorf("BytesUsed = %d after all removals", w.BytesUsed())
	}
}

// The replica mirrors the store — one file per distinct extent, shared
// by every seed — whether attached before or after the publishes, and a
// released last reference cleans the replica copy too.
func TestExtentReplicaMirrorsStore(t *testing.T) {
	w := newWarehouse()
	im := seedImage(t, w, "early")
	replica := newReplica()
	w.SetReplica(replica) // attach after: must catch up
	for _, p := range im.ExtentPaths {
		if !replica.Exists(p) {
			t.Errorf("replica missing %s after late attach", p)
		}
	}
	seedImage(t, w, "late") // attach before: mirrors as it lands
	distinct := make(map[string]bool)
	for _, p := range im.ExtentPaths {
		distinct[p] = true
	}
	if files := replica.List(); len(files) != len(distinct) {
		t.Errorf("replica holds %d files, want %d (one per distinct extent): %v",
			len(files), len(distinct), files)
	}
	if err := w.Remove("early"); err != nil {
		t.Fatal(err)
	}
	for _, p := range im.ExtentPaths {
		if !replica.Exists(p) {
			t.Errorf("replica copy of %s swept while a referencing seed lives", p)
		}
	}
	if err := w.Remove("late"); err != nil {
		t.Fatal(err)
	}
	if files := replica.List(); len(files) != 0 {
		t.Errorf("replica leaked %d files after last reference: %v", len(files), files)
	}
}

// crashWarehouse builds a journaled warehouse with one healthy seed and
// a fault registry armed to kill the daemon at one specific store
// operation index.
func crashWarehouse(t *testing.T) (*Warehouse, *fault.Registry) {
	t.Helper()
	w := newWarehouse()
	w.SetJournal(testJournal(t))
	reg := fault.NewRegistry(1)
	w.SetFaults(reg)
	return w, reg
}

// Property-style kill-point sweep over publish: for every extent index
// k, a daemon killed right before the k-th store acquire leaves k
// journaled references with no cataloged owner. Restart's replay plus
// reconciliation must rebuild exactly the surviving seed's refcounts and
// release the k orphans — at every kill point.
func TestExtentRefsRebuiltAfterCrashMidPublish(t *testing.T) {
	for k := 0; k < DiskSpanFiles; k++ {
		t.Run(fmt.Sprintf("kill-at-%d", k), func(t *testing.T) {
			w, reg := crashWarehouse(t)
			seedImage(t, w, "survivor")
			reg.Arm(integritySite, fault.DaemonKill, fmt.Sprintf("publish:%d", k), 1)

			im, err := BuildGolden("victim", hw(), BackendVMware, history())
			if err != nil {
				t.Fatal(err)
			}
			if err := w.Publish(im); err == nil || !strings.Contains(err.Error(), "killed") {
				t.Fatalf("publish survived the kill point: err=%v", err)
			}
			if _, ok := w.Lookup("victim"); ok {
				t.Fatal("killed publish registered the image")
			}

			st := w.Restart()
			if st.ExtentRefsRebuilt != DiskSpanFiles {
				t.Errorf("rebuilt %d refs, want %d", st.ExtentRefsRebuilt, DiskSpanFiles)
			}
			if st.ExtentOrphansReleased != k {
				t.Errorf("released %d orphans, want %d", st.ExtentOrphansReleased, k)
			}
			got := w.ExtentStatsNow()
			if got.Refs != DiskSpanFiles {
				t.Errorf("store refs = %d after restart, want %d", got.Refs, DiskSpanFiles)
			}
			surv := w.images["survivor"]
			for _, p := range surv.ExtentPaths {
				if !w.Volume().Exists(p) {
					t.Errorf("survivor extent %s missing after restart", p)
				}
			}
			// A second restart replays the compensating releases and finds
			// the books already balanced.
			st = w.Restart()
			if st.ExtentOrphansReleased != 0 || st.ExtentRefsRebuilt != DiskSpanFiles {
				t.Errorf("second restart not balanced: %+v", st)
			}
		})
	}
}

// The retire-side sweep: a daemon killed before releasing the k-th
// extent reference leaves 16-k orphaned references (the retire record is
// already durable, so the image is gone from the catalog). Restart must
// release exactly those and keep the surviving seed's extents intact.
func TestExtentRefsRebuiltAfterCrashMidRetire(t *testing.T) {
	for k := 0; k < DiskSpanFiles; k++ {
		t.Run(fmt.Sprintf("kill-at-%d", k), func(t *testing.T) {
			w, reg := crashWarehouse(t)
			seedImage(t, w, "survivor")
			seedImage(t, w, "victim")
			reg.Arm(integritySite, fault.DaemonKill, fmt.Sprintf("retire:%d", k), 1)

			if err := w.Remove("victim"); err != nil {
				t.Fatal(err)
			}
			if _, ok := w.Lookup("victim"); ok {
				t.Fatal("killed retire left the image registered")
			}

			st := w.Restart()
			if st.ExtentRefsRebuilt != DiskSpanFiles {
				t.Errorf("rebuilt %d refs, want %d", st.ExtentRefsRebuilt, DiskSpanFiles)
			}
			if st.ExtentOrphansReleased != DiskSpanFiles-k {
				t.Errorf("released %d orphans, want %d", st.ExtentOrphansReleased, DiskSpanFiles-k)
			}
			surv := w.images["survivor"]
			for _, p := range surv.ExtentPaths {
				if !w.Volume().Exists(p) {
					t.Errorf("survivor extent %s missing after restart", p)
				}
			}
			if got := w.ExtentStatsNow(); got.Refs != DiskSpanFiles {
				t.Errorf("store refs = %d after restart, want %d", got.Refs, DiskSpanFiles)
			}
		})
	}
}
