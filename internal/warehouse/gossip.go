// Catalog gossip: the cross-cell half of the warehouse.
//
// A federation of shops keeps one warehouse per cell. Derived images —
// the checkpoints the learning loop publishes back — are the knowledge
// worth sharing: a configuration history checkpointed in one cell saves
// the same work in every cell. Cells therefore gossip their derived
// catalogs: ExportCatalog serializes each derived image as its XML
// descriptor (the image's manifest, integrity sums included) plus its
// quarantine status, and ImportCatalog materializes entries the local
// cell is missing. Replication is lazy and metadata-first: the importer
// rebuilds the copy-on-write checkpoint over its own copy of the parent
// seed image (every cell is seeded with the same installer-built golden
// machines), so no bulk extent data crosses cells — exactly the PR-5
// replica machinery, driven by a descriptor instead of a local clone.
//
// Quarantine state travels with the entry: a cell that pulled an image
// out of service poisons it federation-wide on the next gossip round,
// so no cell clones state another cell already caught corrupting.
package warehouse

import (
	"fmt"
	"time"
)

// CatalogEntry is one derived image as gossiped between cells: the XML
// descriptor carries the full configuration history and integrity sums,
// so the receiver can rebuild and verify the checkpoint locally.
type CatalogEntry struct {
	Name    string `json:"name"`
	Parent  string `json:"parent"`
	Backend string `json:"backend"`
	// Descriptor is the image's XML manifest (DescriptorXML).
	Descriptor []byte `json:"descriptor"`
	// Quarantined/Reason propagate the exporter's integrity verdict.
	Quarantined bool   `json:"quarantined,omitempty"`
	Reason      string `json:"reason,omitempty"`
}

// ExportCatalog serializes the cell's derived images for gossip, in
// deterministic (name) order. Seed images are omitted: every cell is
// installer-seeded identically, so only learned state is news.
func (w *Warehouse) ExportCatalog() ([]CatalogEntry, error) {
	var out []CatalogEntry
	for _, n := range w.List() {
		im := w.images[n]
		if !im.Derived {
			continue
		}
		blob, err := im.DescriptorXML()
		if err != nil {
			return nil, fmt.Errorf("warehouse: export %q: %w", n, err)
		}
		e := CatalogEntry{Name: im.Name, Parent: im.Parent, Backend: im.Backend, Descriptor: blob}
		if reason, q := w.QuarantineReason(n); q {
			e.Quarantined, e.Reason = true, reason
		}
		out = append(out, e)
	}
	return out, nil
}

// ImportStats reports what one gossip round changed locally.
type ImportStats struct {
	// Imported counts derived images materialized from entries.
	Imported int
	// Known counts entries already published here (idempotent re-gossip).
	Known int
	// Deferred counts entries skipped because their parent seed is not
	// (yet) published in this cell; a later round retries them.
	Deferred int
	// Rejected counts entries whose descriptor failed to parse or whose
	// rebuilt checkpoint failed publication validation.
	Rejected int
	// Quarantined counts images newly pulled out of service here because
	// the exporting cell had quarantined them.
	Quarantined int
}

// ImportCatalog merges a peer cell's catalog into this warehouse.
// Unknown derived images are rebuilt over the local copy of their
// parent seed and published; known ones are left alone. Either way the
// entry's quarantine verdict is applied — corruption caught anywhere
// poisons the image everywhere. Import is idempotent: re-gossiping the
// same catalog is a no-op.
func (w *Warehouse) ImportCatalog(entries []CatalogEntry, now time.Duration) ImportStats {
	var st ImportStats
	for _, e := range entries {
		if _, ok := w.images[e.Name]; ok {
			st.Known++
			st.Quarantined += w.applyQuarantine(e)
			continue
		}
		_, perf, err := ParseDescriptor(e.Descriptor)
		if err != nil {
			st.Rejected++
			continue
		}
		parent, ok := w.images[e.Parent]
		if !ok || parent.Derived {
			// The parent seed has not reached this cell (or the entry is
			// malformed about its lineage); leave the entry for a later
			// round rather than fabricating state.
			st.Deferred++
			continue
		}
		im, err := BuildDerived(e.Name, parent, perf)
		if err != nil {
			st.Rejected++
			continue
		}
		if err := w.PublishDerived(im, now); err != nil {
			st.Rejected++
			continue
		}
		st.Imported++
		st.Quarantined += w.applyQuarantine(e)
	}
	return st
}

// applyQuarantine enforces an entry's quarantine verdict locally,
// reporting 1 when the image was newly pulled out of service.
func (w *Warehouse) applyQuarantine(e CatalogEntry) int {
	if !e.Quarantined {
		return 0
	}
	reason := e.Reason
	if reason == "" {
		reason = "quarantined by peer cell"
	}
	if w.Quarantine(e.Name, reason) {
		return 1
	}
	return 0
}
