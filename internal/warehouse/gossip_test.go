package warehouse

import (
	"testing"
	"time"
)

// gossipPair builds two cells seeded with the same golden image, plus a
// derived checkpoint published only in the first.
func gossipPair(t *testing.T) (a, b *Warehouse) {
	t.Helper()
	a, b = newWarehouse(), newWarehouse()
	seedA := seedImage(t, a, "seed")
	seedImage(t, b, "seed")
	d := derivedOf(t, seedA, "derived-ckpt", "mpich")
	if err := a.PublishDerived(d, 0); err != nil {
		t.Fatal(err)
	}
	return a, b
}

// One gossip round replicates a derived checkpoint, metadata-first: the
// receiver rebuilds it over its own copy of the parent seed, and the
// copy is clonable knowledge, not a quarantined stub.
func TestGossipReplicatesDerivedImages(t *testing.T) {
	a, b := gossipPair(t)
	entries, err := a.ExportCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name != "derived-ckpt" {
		t.Fatalf("export = %+v, want only the derived image (seeds are never gossiped)", entries)
	}
	st := b.ImportCatalog(entries, time.Second)
	if st.Imported != 1 || st.Rejected != 0 || st.Deferred != 0 {
		t.Fatalf("import stats = %+v, want 1 imported", st)
	}
	im, ok := b.Lookup("derived-ckpt")
	if !ok || !im.Derived || im.Parent != "seed" {
		t.Fatalf("imported image = %+v %v, want a derived child of seed", im, ok)
	}
	if _, q := b.QuarantineReason("derived-ckpt"); q {
		t.Error("clean import arrived quarantined")
	}
}

// Re-gossiping the same catalog is a no-op: entries already present
// count as known, and nothing is rebuilt or double-published.
func TestGossipReimportIsIdempotent(t *testing.T) {
	a, b := gossipPair(t)
	entries, err := a.ExportCatalog()
	if err != nil {
		t.Fatal(err)
	}
	b.ImportCatalog(entries, time.Second)
	used := b.BytesUsed()
	st := b.ImportCatalog(entries, 2*time.Second)
	if st.Imported != 0 || st.Known != 1 {
		t.Errorf("re-import stats = %+v, want 1 known, 0 imported", st)
	}
	if b.BytesUsed() != used {
		t.Errorf("re-import changed byte accounting: %d -> %d", used, b.BytesUsed())
	}
}

// An entry whose parent seed has not reached the cell is deferred, not
// fabricated; once the seed arrives, the next round materializes it.
func TestGossipDefersUntilParentSeedArrives(t *testing.T) {
	a, _ := gossipPair(t)
	c := newWarehouse() // unseeded cell
	entries, err := a.ExportCatalog()
	if err != nil {
		t.Fatal(err)
	}
	st := c.ImportCatalog(entries, time.Second)
	if st.Deferred != 1 || st.Imported != 0 {
		t.Fatalf("unseeded import stats = %+v, want 1 deferred", st)
	}
	if _, ok := c.Lookup("derived-ckpt"); ok {
		t.Fatal("deferred entry was materialized anyway")
	}
	seedImage(t, c, "seed")
	st = c.ImportCatalog(entries, 2*time.Second)
	if st.Imported != 1 {
		t.Fatalf("post-seed import stats = %+v, want 1 imported", st)
	}
}

// A quarantine verdict travels with the catalog: a cell that caught an
// image corrupting poisons it in every cell that imports the entry —
// including cells that already hold a clean-looking copy.
func TestGossipPropagatesQuarantine(t *testing.T) {
	a, b := gossipPair(t)
	entries, err := a.ExportCatalog()
	if err != nil {
		t.Fatal(err)
	}
	b.ImportCatalog(entries, time.Second) // b now holds a healthy copy
	if !a.Quarantine("derived-ckpt", "checksum mismatch on clone read") {
		t.Fatal("quarantine refused")
	}
	entries, err = a.ExportCatalog()
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || !entries[0].Quarantined {
		t.Fatalf("export after quarantine = %+v, want the verdict attached", entries)
	}
	st := b.ImportCatalog(entries, 2*time.Second)
	if st.Quarantined != 1 || st.Known != 1 {
		t.Fatalf("verdict import stats = %+v, want 1 known + 1 quarantined", st)
	}
	reason, q := b.QuarantineReason("derived-ckpt")
	if !q || reason != "checksum mismatch on clone read" {
		t.Errorf("peer quarantine = %q %v, want the exporter's reason", reason, q)
	}
	// The verdict is sticky on re-gossip, not double-counted.
	if st := b.ImportCatalog(entries, 3*time.Second); st.Quarantined != 0 {
		t.Errorf("re-import re-quarantined: %+v", st)
	}
}
